// Command player streams a video from a running chunkserver over real TCP
// and prints the paper's per-chunk milestones as it goes, plus the session
// QoE summary.
//
// Usage:
//
//	player -server http://127.0.0.1:8639 -video 1 -chunks 10 -kbps 1050
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"vidperf/internal/httpstream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("player: ")

	var (
		server = flag.String("server", "http://127.0.0.1:8639", "chunkserver base URL")
		video  = flag.Int("video", 1, "video ID to stream")
		chunks = flag.Int("chunks", 10, "number of chunks to fetch")
		kbps   = flag.Int("kbps", 1050, "bitrate (chunk size = kbps*6s/8)")
	)
	flag.Parse()

	res, err := playSession(*server, *video, *chunks, *kbps)
	if err != nil {
		log.Fatal(err)
	}
	renderResult(os.Stdout, res)
}

// playSession streams one session against the chunkserver — the
// command's whole network path, shared with the smoke test.
func playSession(server string, video, chunks, kbps int) (httpstream.PlayResult, error) {
	return httpstream.NewPlayer(server, kbps).Play(1, video, chunks)
}

// renderResult prints the per-chunk milestone table and the session QoE
// summary.
func renderResult(w io.Writer, res httpstream.PlayResult) {
	fmt.Fprintf(w, "%-6s %-8s %-10s %-10s %-10s %-8s %-6s\n",
		"chunk", "cache", "DFB ms", "DLB ms", "Dcdn ms", "DBE ms", "retry")
	for _, c := range res.Chunks {
		fmt.Fprintf(w, "%-6d %-8s %-10.2f %-10.2f %-10.2f %-8.2f %-6v\n",
			c.ChunkID, c.CacheLevel, c.DFBms, c.DLBms, c.DreadMS, c.DBEms, c.RetryTimer)
	}
	fmt.Fprintf(w, "\nstartup %.1f ms; rebuffers %d (%.1f ms, rate %.2f%%)\n",
		res.StartupMS, res.RebufCount, res.RebufDurMS, 100*res.RebufferRate)
}
