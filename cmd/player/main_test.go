package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vidperf/internal/httpstream"
)

// TestPlayerSmoke runs the command's whole path — player over real TCP
// against a live chunk server — and checks the session result and the
// rendered report.
func TestPlayerSmoke(t *testing.T) {
	ts := httptest.NewServer(httpstream.NewServer(httpstream.ServerConfig{
		CacheBytes:     4 << 20,
		OpenRetryDelay: time.Millisecond,
		BackendDelay:   2 * time.Millisecond,
	}))
	defer ts.Close()

	res, err := playSession(ts.URL, 1, 5, 235)
	if err != nil {
		t.Fatalf("playSession: %v", err)
	}
	if len(res.Chunks) != 5 {
		t.Fatalf("played %d chunks, want 5", len(res.Chunks))
	}
	if res.StartupMS <= 0 {
		t.Fatalf("startup = %g ms", res.StartupMS)
	}
	for i, c := range res.Chunks {
		if c.ChunkID != i {
			t.Fatalf("chunk %d has ID %d", i, c.ChunkID)
		}
		if c.DFBms < 0 || c.DreadMS < 0 {
			t.Fatalf("chunk %d has negative milestone: %+v", i, c)
		}
	}

	var out bytes.Buffer
	renderResult(&out, res)
	report := out.String()
	if !strings.Contains(report, "startup") {
		t.Fatalf("report lacks the QoE summary:\n%s", report)
	}
	// Header line plus one row per chunk plus the summary.
	if lines := strings.Count(strings.TrimSpace(report), "\n"); lines < 6 {
		t.Fatalf("report has %d lines:\n%s", lines, report)
	}

	// A dead server is an error, not a broken report.
	ts.Close()
	if _, err := playSession(ts.URL, 1, 1, 235); err == nil {
		t.Fatal("playing against a closed server did not error")
	}
}
