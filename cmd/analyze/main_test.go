package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vidperf/internal/core"
	"vidperf/internal/diagnose"
	"vidperf/internal/figures"
	"vidperf/internal/live"
	"vidperf/internal/proxydetect"
	"vidperf/internal/proxypop"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
	"vidperf/internal/timeline"
	"vidperf/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenSnapshots builds the two fixture snapshots the golden tests
// render: a warm and a cold diagnosed campaign at laptop scale. The
// whole pipeline is deterministic (same seed ⇒ same snapshot ⇒ same
// table bytes), which is what lets CLI output be golden-tested at all.
func goldenSnapshots(t *testing.T) (warm, cold *telemetry.Snapshot) {
	t.Helper()
	build := func(coldStart bool) *telemetry.Snapshot {
		res, err := session.Execute(workload.Scenario{
			Seed: 5, NumSessions: 500, NumPrefixes: 120,
			ColdStart: coldStart, Parallelism: 1,
		}, session.Options{Telemetry: true, SketchK: 64, Diagnose: &diagnose.Config{}})
		if err != nil {
			t.Fatal(err)
		}
		sn := res.Snapshot
		// The labels RunCell would attach, pinned so the table header is
		// stable.
		name := "cold=false"
		if coldStart {
			name = "cold=true"
		}
		sn.Labels = map[string]string{"spec": "golden", "cell": name, "diagnosis": "on"}
		return sn
	}
	return build(false), build(true)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: go test ./cmd/analyze -run TestGolden -update)", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from golden file;\n got:\n%s\nwant:\n%s\n(refresh intentionally with -update)",
			name, got, want)
	}
}

// goldenTimelineSnapshot builds the fixture a -windows golden render
// pins: a diagnosed campaign with a mid-window network-degradation
// phase, so the table shows QoE collapsing during the phase and
// recovering after it.
func goldenTimelineSnapshot(t *testing.T) *telemetry.Snapshot {
	t.Helper()
	sc := workload.Scenario{
		Seed: 5, NumSessions: 500, NumPrefixes: 120, Parallelism: 1,
	}.WithDefaults()
	sc.Timeline = timeline.Timeline{Phases: []timeline.Phase{{
		Name:    "degrade",
		StartMS: 10 * 60e3,
		EndMS:   20 * 60e3,
		Effects: timeline.Effects{ThroughputFactor: 0.33, ExtraLossProb: 0.015, ExtraRTTms: 60},
	}}}
	res, err := session.Execute(sc, session.Options{
		Telemetry: true, SketchK: 64, Diagnose: &diagnose.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	sn := res.Snapshot
	sn.Labels = map[string]string{"spec": "golden", "cell": "base", "diagnosis": "on", "timeline": "1-phase"}
	return sn
}

// TestGoldenWindows pins the analyze -windows per-window QoE and
// diagnosis tables byte for byte.
func TestGoldenWindows(t *testing.T) {
	checkGolden(t, "windows-degrade.golden", renderWindows(goldenTimelineSnapshot(t)))
}

// TestWindowsCoverageInvariant: the rendered report passes exactly when
// the window counts cover every session; dropping one window's counter
// must flip it to a failing result, and a windowless snapshot must fail
// with the explanatory note.
func TestWindowsCoverageInvariant(t *testing.T) {
	sn := goldenTimelineSnapshot(t)
	delete(sn.Counters, telemetry.WindowSessionsKey(sn.Windows[0].Name))
	if got := renderWindows(sn); !strings.Contains(got, "SHAPE MISMATCH") {
		t.Errorf("report with missing window counts did not fail: %s", got)
	}
	warm, _ := goldenSnapshots(t)
	if got := renderWindows(warm); !strings.Contains(got, "no timeline windows") {
		t.Errorf("windowless snapshot did not explain itself: %s", got)
	}
}

// goldenLiveSnapshot builds the fixture the live goldens pin: a
// diagnosed live campaign — six channels on the shared publish clock
// with one expected switch per viewing minute — so the cause-share
// table carries the live-edge-limited row and the snapshot rendering
// includes the stream-live figure.
func goldenLiveSnapshot(t *testing.T) *telemetry.Snapshot {
	t.Helper()
	res, err := session.Execute(workload.Scenario{
		Seed: 5, NumSessions: 500, NumPrefixes: 120, Parallelism: 1,
		Live: live.Config{Channels: 6, SwitchPerMin: 1},
	}, session.Options{Telemetry: true, SketchK: 64, Diagnose: &diagnose.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	sn := res.Snapshot
	sn.Labels = map[string]string{
		"spec": "golden", "cell": "base", "diagnosis": "on", "live": "6-channel",
	}
	return sn
}

// TestGoldenLive pins the live-campaign renderings byte for byte: the
// analyze diagnose cause-share table (with its live-edge-limited row)
// and the full analyze snapshot figure set including stream-live.
func TestGoldenLive(t *testing.T) {
	sn := goldenLiveSnapshot(t)
	checkGolden(t, "diagnose-live.golden", renderDiagnose(sn))
	var b strings.Builder
	for _, res := range figures.AllStreaming(sn) {
		b.WriteString(res.Render() + "\n")
	}
	checkGolden(t, "snapshot-live.golden", b.String())
}

// goldenProxyScenario is the fixture world the proxy goldens pin: a
// diagnosed proxied campaign at laptop scale. Two cohorts keep each
// egress safely above the rule-(ii) volume threshold (≈92
// sessions/cohort vs the default 50) at this session count.
func goldenProxyScenario() workload.Scenario {
	return workload.Scenario{
		Seed: 5, NumSessions: 800, NumPrefixes: 120, Parallelism: 1,
		Proxy: proxypop.Config{Share: 0.23, Cohorts: 2, EgressKbps: 25000},
	}
}

// TestGoldenProxy pins the proxied-campaign renderings byte for byte:
// the analyze diagnose cause-share table (with its proxy-tromboned
// row), the full analyze snapshot figure set including stream-proxy,
// and the analyze detect-proxies report with its ablation.
func TestGoldenProxy(t *testing.T) {
	res, err := session.Execute(goldenProxyScenario(), session.Options{
		Telemetry: true, SketchK: 64, Diagnose: &diagnose.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	sn := res.Snapshot
	sn.Labels = map[string]string{
		"spec": "golden", "cell": "base", "diagnosis": "on", "proxy": "share=0.23",
	}
	checkGolden(t, "diagnose-proxy.golden", renderDiagnose(sn))
	var b strings.Builder
	for _, fr := range figures.AllStreaming(sn) {
		b.WriteString(fr.Render() + "\n")
	}
	checkGolden(t, "snapshot-proxy.golden", b.String())

	dres, err := session.Execute(goldenProxyScenario(), session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "detect-proxies.golden", renderDetectProxies(dres.Dataset, proxydetect.Config{}))
}

// TestDetectProxiesGroundTruthGate: the detect-proxies report passes on
// the proxied fixture and, with the ground truth stripped from the
// records (a trace from a proxy-less world), degrades to the
// reported-only note instead of claiming accuracy.
func TestDetectProxiesGroundTruthGate(t *testing.T) {
	res, err := session.Execute(goldenProxyScenario(), session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds := res.Dataset
	if fig := figures.ProxyDetection(ds, proxydetect.Config{}); !fig.Pass {
		t.Errorf("detect-proxies failed on the proxied fixture:\n%s", fig.Render())
	}
	stripped := &core.Dataset{Sessions: append([]core.SessionRecord(nil), ds.Sessions...), Chunks: ds.Chunks}
	for i := range stripped.Sessions {
		stripped.Sessions[i].Proxied = false
		stripped.Sessions[i].ProxyCohort = 0
	}
	fig := figures.ProxyDetection(stripped, proxydetect.Config{})
	if !strings.Contains(fig.Note, "no ground-truth") {
		t.Errorf("truth-less trace did not get the reported-only note: %+v", fig)
	}
}

// TestGoldenDiagnose pins the analyze -diagnose cause-share table byte
// for byte.
func TestGoldenDiagnose(t *testing.T) {
	warm, cold := goldenSnapshots(t)
	checkGolden(t, "diagnose-warm.golden", renderDiagnose(warm))
	checkGolden(t, "diagnose-cold.golden", renderDiagnose(cold))
}

// TestGoldenCompare pins the analyze -compare delta table — including
// the diag_share_* cause-share rows — byte for byte.
func TestGoldenCompare(t *testing.T) {
	warm, cold := goldenSnapshots(t)
	checkGolden(t, "compare-warm-cold.golden", renderCompare(warm, cold))
}

// TestDiagnoseCoverageInvariant: the rendered report passes exactly when
// the label counts cover every session; stripping the labels must flip
// it to a failing, noted result.
func TestDiagnoseCoverageInvariant(t *testing.T) {
	warm, _ := goldenSnapshots(t)
	for key := range warm.Counters {
		// Drop one label counter: coverage breaks.
		if key == telemetry.DiagSessionsKey(diagnose.Healthy) {
			delete(warm.Counters, key)
		}
	}
	got := renderDiagnose(warm)
	if !strings.Contains(got, "SHAPE MISMATCH") {
		t.Errorf("report with missing label counts did not fail: %s", got)
	}
}
