// Command analyze reads a trace produced by cmd/vodsim and regenerates the
// paper's figures and tables from it, printing each with the paper's
// reported result alongside the measured one.
//
// Usage:
//
//	analyze -trace trace.jsonl [-only fig05,table4] [-max-rank 6000]
//	analyze -snapshot snap.json [-only stream-cdn]
//	analyze -compare baseline.json candidate.json
//	analyze -diagnose snap.json
//	analyze -windows snap.json
//
// With -snapshot the input is a telemetry snapshot from
// cmd/vodsim -stream: the sketch-backed subset of the figures is rendered
// from the bounded-memory aggregates instead of per-record data. Proxy
// preprocessing does not apply to snapshots (it needs the joined
// dataset), so -filter-proxies is ignored in that mode.
//
// With -compare two snapshots are diffed instead of rendered: the flag
// value is the baseline, the positional argument the candidate, and the
// output is the A/B delta table (quantile shifts per sketch metric,
// counter movements, derived rates — including per-label cause-share
// deltas when the snapshots carry diagnosis labels). This is how
// campaign cells produced by cmd/sweep or vodsim -spec are contrasted
// after the fact.
//
// With -diagnose the input must be a snapshot from a diagnosis-enabled
// run (vodsim -stream -diagnose, or a spec with "diagnosis": true): the
// per-layer cause-share table and per-label QoE sketches are rendered,
// and the command fails unless every session carries exactly one label.
//
// With -windows the input must be a snapshot from a timeline run (a
// spec with a "timeline" block, e.g. the pop-outage preset): the
// per-window QoE table — before/during/after each injected fault or
// degradation phase — is rendered, plus the per-window diagnosis-label
// mix when the run also classified sessions. The command fails unless
// the windows cover every session (the coverage invariant).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vidperf/internal/core"
	"vidperf/internal/figures"
	"vidperf/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")

	var (
		trace    = flag.String("trace", "trace.jsonl", "input JSONL trace (from vodsim)")
		snapshot = flag.String("snapshot", "", "input telemetry snapshot (from vodsim -stream); replaces -trace")
		compare  = flag.String("compare", "", "baseline telemetry snapshot; diffs the positional candidate snapshot against it")
		diagnose = flag.String("diagnose", "", "telemetry snapshot with diagnosis labels (from vodsim -stream -diagnose); renders the per-layer cause-share report")
		windows  = flag.String("windows", "", "telemetry snapshot with timeline windows (from a spec with a \"timeline\" block); renders the per-window QoE/diagnosis report")
		only     = flag.String("only", "", "comma-separated figure IDs to render (default all)")
		maxRank  = flag.Int("max-rank", 6000, "catalog size used for Fig. 6 rank thresholds")
		filter   = flag.Bool("filter-proxies", true, "apply §3 proxy preprocessing before analysis (trace mode only)")
	)
	flag.Parse()

	traceSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "trace" {
			traceSet = true
		}
	})
	if *snapshot != "" && traceSet {
		log.Fatal("invalid flags: -trace and -snapshot are mutually exclusive")
	}
	if *compare != "" {
		if traceSet || *snapshot != "" || *diagnose != "" || *windows != "" {
			log.Fatal("invalid flags: -compare excludes -trace, -snapshot, -diagnose and -windows")
		}
		if flag.NArg() != 1 {
			log.Fatalf("usage: analyze -compare baseline.json candidate.json (got %d candidates)", flag.NArg())
		}
		runCompare(*compare, flag.Arg(0))
		return
	}
	if *diagnose != "" {
		if traceSet || *snapshot != "" || *windows != "" {
			log.Fatal("invalid flags: -diagnose excludes -trace, -snapshot and -windows (it is a snapshot mode of its own)")
		}
		runDiagnose(*diagnose)
		return
	}
	if *windows != "" {
		if traceSet || *snapshot != "" {
			log.Fatal("invalid flags: -windows excludes -trace and -snapshot (it is a snapshot mode of its own)")
		}
		runWindows(*windows)
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToLower(id)] = true
		}
	}

	var results []figures.Result
	if *snapshot != "" {
		sn := loadSnapshot(*snapshot)
		log.Printf("loaded snapshot: %d sessions, %d chunks, %d sketches (k=%d)",
			sn.Counter(telemetry.CounterSessions), sn.Counter(telemetry.CounterChunks),
			len(sn.Sketches), sn.SketchK)
		results = figures.AllStreaming(sn)
	} else {
		f, err := os.Open(*trace)
		if err != nil {
			log.Fatal(err)
		}
		ds, err := core.ReadJSONL(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %s", ds)

		if *filter {
			res := core.FilterProxies(ds, core.ProxyFilterConfig{})
			log.Printf("proxy filtering kept %d/%d sessions (%.1f%%)",
				res.KeptSessions, res.TotalSessions, 100*res.KeptFraction)
			ds = res.Kept
		}
		results = figures.All(ds, *maxRank)
	}

	pass, fail := 0, 0
	for _, res := range results {
		if len(want) > 0 && !want[res.ID] {
			continue
		}
		fmt.Println(res.Render())
		if res.Pass {
			pass++
		} else {
			fail++
		}
	}
	if len(want) > 0 && pass+fail == 0 {
		// A filter that matches nothing must not look like success —
		// trace figures (fig05…) and snapshot figures (stream-*) live
		// in different namespaces, and a stale -only crossing them
		// would otherwise exit 0 having checked nothing.
		ids := make([]string, len(results))
		for i, res := range results {
			ids[i] = res.ID
		}
		log.Fatalf("-only %q matched no figure (this mode renders: %s)", *only, strings.Join(ids, ", "))
	}
	fmt.Printf("== %d figures reproduce, %d shape mismatches ==\n", pass, fail)
	if fail > 0 {
		os.Exit(1)
	}
}

// runCompare loads two snapshots and prints the A/B delta table.
func runCompare(basePath, candPath string) {
	base := loadSnapshot(basePath)
	cand := loadSnapshot(candPath)
	log.Printf("baseline %s: %d sessions; candidate %s: %d sessions",
		basePath, base.Counter(telemetry.CounterSessions),
		candPath, cand.Counter(telemetry.CounterSessions))
	fmt.Print(renderCompare(base, cand))
}

// renderCompare is the -compare output (a function of the two snapshots
// alone, so the golden tests can pin the table bytes).
func renderCompare(base, cand *telemetry.Snapshot) string {
	return figures.StreamCompare(base, cand).Render() + "\n"
}

// runDiagnose loads a diagnosis-enabled snapshot and prints the
// cause-share report. A snapshot without labels, or whose label counts
// fail to cover every session, exits non-zero — the coverage invariant
// is the report's integrity check.
func runDiagnose(path string) {
	sn := loadSnapshot(path)
	log.Printf("loaded snapshot: %d sessions, %d chunks (k=%d)",
		sn.Counter(telemetry.CounterSessions), sn.Counter(telemetry.CounterChunks), sn.SketchK)
	res := figures.StreamDiagnosis(sn)
	fmt.Print(res.Render() + "\n")
	if !res.Pass {
		os.Exit(1)
	}
}

// renderDiagnose is the -diagnose output (pinned by the golden tests).
func renderDiagnose(sn *telemetry.Snapshot) string {
	return figures.StreamDiagnosis(sn).Render() + "\n"
}

// runWindows loads a timeline-run snapshot and prints the per-window
// QoE/diagnosis report. A snapshot without windows, or whose window
// counts fail to cover every session, exits non-zero — the coverage
// invariant is the report's integrity check.
func runWindows(path string) {
	sn := loadSnapshot(path)
	log.Printf("loaded snapshot: %d sessions, %d windows (k=%d)",
		sn.Counter(telemetry.CounterSessions), len(sn.Windows), sn.SketchK)
	res := figures.StreamWindows(sn)
	fmt.Print(res.Render() + "\n")
	if !res.Pass {
		os.Exit(1)
	}
}

// renderWindows is the -windows output (pinned by the golden tests).
func renderWindows(sn *telemetry.Snapshot) string {
	return figures.StreamWindows(sn).Render() + "\n"
}

func loadSnapshot(path string) *telemetry.Snapshot {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sn, err := telemetry.ReadSnapshot(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return sn
}
