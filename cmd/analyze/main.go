// Command analyze reads a trace produced by cmd/vodsim and regenerates the
// paper's figures and tables from it, printing each with the paper's
// reported result alongside the measured one.
//
// Usage:
//
//	analyze -trace trace.jsonl [-only fig05,table4] [-max-rank 6000]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"vidperf/internal/core"
	"vidperf/internal/figures"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")

	var (
		trace   = flag.String("trace", "trace.jsonl", "input JSONL trace (from vodsim)")
		only    = flag.String("only", "", "comma-separated figure IDs to render (default all)")
		maxRank = flag.Int("max-rank", 6000, "catalog size used for Fig. 6 rank thresholds")
		filter  = flag.Bool("filter-proxies", true, "apply §3 proxy preprocessing before analysis")
	)
	flag.Parse()

	f, err := os.Open(*trace)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.ReadJSONL(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s", ds)

	if *filter {
		res := core.FilterProxies(ds, core.ProxyFilterConfig{})
		log.Printf("proxy filtering kept %d/%d sessions (%.1f%%)",
			res.KeptSessions, res.TotalSessions, 100*res.KeptFraction)
		ds = res.Kept
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToLower(id)] = true
		}
	}

	pass, fail := 0, 0
	for _, res := range figures.All(ds, *maxRank) {
		if len(want) > 0 && !want[res.ID] {
			continue
		}
		fmt.Println(res.Render())
		if res.Pass {
			pass++
		} else {
			fail++
		}
	}
	fmt.Printf("== %d figures reproduce, %d shape mismatches ==\n", pass, fail)
	if fail > 0 {
		os.Exit(1)
	}
}
