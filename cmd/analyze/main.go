// Command analyze is the reporting side of the pipeline: it renders
// paper figures from traces and snapshots, diffs runs, and fronts the
// campaign store (internal/store) that turns sweep directories into
// queryable league tables.
//
// Usage:
//
//	analyze trace [-only fig05,table4] [-max-rank 6000] [-filter-proxies=false] [trace.jsonl]
//	analyze snapshot [-only stream-cdn] snap.json
//	analyze compare baseline.json candidate.json
//	analyze diagnose snap.json
//	analyze windows snap.json
//	analyze detect-proxies [-max-sessions-per-egress 50] trace.jsonl
//	analyze ingest -store campaigns.json [-sweep name] dir|snap.json ...
//	analyze query -store campaigns.json [-sweep name] [-where k=v,...] [-group-by axis] [-rank metric] [-desc] [-limit n] [-json]
//	analyze diff-sweep -store campaigns.json [-json] base candidate
//
// analyze trace reads a JSONL trace produced by cmd/vodsim and
// regenerates the paper's figures and tables, printing each with the
// paper's reported result alongside the measured one. analyze snapshot
// does the same from a telemetry snapshot (vodsim -stream): the
// sketch-backed subset of the figures is rendered from the
// bounded-memory aggregates instead of per-record data. Proxy
// preprocessing needs the joined dataset, so -filter-proxies exists
// only in trace mode.
//
// analyze compare diffs two snapshots: the first argument is the
// baseline, the second the candidate, and the output is the A/B delta
// table (quantile shifts per sketch metric, counter movements, derived
// rates — including per-label cause-share deltas when the snapshots
// carry diagnosis labels).
//
// analyze diagnose renders the per-layer cause-share table from a
// diagnosis-enabled run (vodsim -stream -diagnose, or a spec with
// "diagnosis": true), failing unless every session carries exactly one
// label. analyze windows renders the per-window QoE table from a
// timeline run, failing unless the windows cover every session.
//
// analyze detect-proxies runs the paper's §3 proxy-detection rules over
// a JSONL trace (vodsim -spec ... -trace): sessions whose CDN-seen HTTP
// client IP disagrees with their beacon IP, or whose IP carries more
// than -max-sessions-per-egress sessions, are flagged as proxied. The
// report grades the detector against the trace's proxypop ground truth
// (precision/recall, detected vs configured share) and prints the
// filtered-vs-unfiltered ablation — what the paper's CV(SRTT), startup
// and re-buffering quantiles would look like had proxies stayed in.
//
// analyze ingest folds snapshots into the campaign store: a directory
// argument must hold a manifest.json from sweep -out (the manifest
// drives the cell list and pins the sweep to one spec content hash —
// mixing different specs under one sweep name is refused), while a
// .json argument ingests a single loose snapshot (its "cell" label or
// file name names the cell). Ingest is idempotent and the store's
// bytes are independent of ingest order.
//
// analyze query filters the store by label (-where preset=paper),
// optionally groups by a spec axis (-group-by zipf_s), and ranks rows
// by any extracted scalar metric (-rank startup_ms_p95); -rank "" is
// an error listing the available metrics. analyze diff-sweep
// regression-diffs two ingested sweeps cell-by-cell under the default
// thresholds and exits non-zero when the candidate regresses the base.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"vidperf/internal/core"
	"vidperf/internal/experiment"
	"vidperf/internal/figures"
	"vidperf/internal/proxydetect"
	"vidperf/internal/store"
	"vidperf/internal/telemetry"
)

func usage() {
	fmt.Fprint(os.Stderr, `usage: analyze <subcommand> [flags] [args]

subcommands:
  trace       render paper figures from a JSONL trace
  snapshot    render streaming figures from a telemetry snapshot
  compare     diff two snapshots (baseline candidate)
  diagnose    render the root-cause share report from a diagnosed snapshot
  windows     render the per-window QoE report from a timeline snapshot
  detect-proxies  run the §3 proxy-detection rules + ablation over a trace
  ingest      fold sweep directories or loose snapshots into a campaign store
  query       filter/group/rank the campaign store into a league table
  diff-sweep  regression-diff two ingested sweeps cell-by-cell

run 'analyze <subcommand> -h' for that subcommand's flags.
`)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "trace":
		cmdTrace(args)
	case "snapshot":
		cmdSnapshot(args)
	case "compare":
		cmdCompare(args)
	case "diagnose":
		cmdDiagnose(args)
	case "windows":
		cmdWindows(args)
	case "detect-proxies":
		cmdDetectProxies(args)
	case "ingest":
		cmdIngest(args)
	case "query":
		cmdQuery(args)
	case "diff-sweep":
		cmdDiffSweep(args)
	case "help", "-h", "-help", "--help":
		usage()
	default:
		if strings.HasPrefix(cmd, "-") {
			log.Fatalf("flag-style invocation was replaced by subcommands (e.g. 'analyze snapshot %s'); run 'analyze help'", strings.TrimLeft(cmd, "-"))
		}
		log.Fatalf("unknown subcommand %q; run 'analyze help'", cmd)
	}
}

// cmdTrace renders the trace-backed figures (the original analyze
// mode).
func cmdTrace(args []string) {
	fs := flag.NewFlagSet("analyze trace", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated figure IDs to render (default all)")
	maxRank := fs.Int("max-rank", 6000, "catalog size used for Fig. 6 rank thresholds")
	filter := fs.Bool("filter-proxies", true, "apply §3 proxy preprocessing before analysis")
	fs.Parse(args)
	path := "trace.jsonl"
	switch fs.NArg() {
	case 0:
	case 1:
		path = fs.Arg(0)
	default:
		log.Fatalf("usage: analyze trace [flags] [trace.jsonl] (got %d args)", fs.NArg())
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.ReadJSONL(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s", ds)
	if *filter {
		res := core.FilterProxies(ds, core.ProxyFilterConfig{})
		log.Printf("proxy filtering kept %d/%d sessions (%.1f%%)",
			res.KeptSessions, res.TotalSessions, 100*res.KeptFraction)
		ds = res.Kept
	}
	renderFigures(figures.All(ds, *maxRank), *only)
}

// cmdSnapshot renders the sketch-backed figures from one snapshot.
func cmdSnapshot(args []string) {
	fs := flag.NewFlagSet("analyze snapshot", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated figure IDs to render (default all)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatalf("usage: analyze snapshot [flags] snap.json (got %d args)", fs.NArg())
	}
	sn := loadSnapshot(fs.Arg(0))
	log.Printf("loaded snapshot: %d sessions, %d chunks, %d sketches (k=%d)",
		sn.Counter(telemetry.CounterSessions), sn.Counter(telemetry.CounterChunks),
		len(sn.Sketches), sn.SketchK)
	renderFigures(figures.AllStreaming(sn), *only)
}

// renderFigures prints the selected figures and exits non-zero on any
// shape mismatch, exactly as the flag-based modes always did.
func renderFigures(results []figures.Result, only string) {
	want := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToLower(id)] = true
		}
	}
	pass, fail := 0, 0
	for _, res := range results {
		if len(want) > 0 && !want[res.ID] {
			continue
		}
		fmt.Println(res.Render())
		if res.Pass {
			pass++
		} else {
			fail++
		}
	}
	if len(want) > 0 && pass+fail == 0 {
		// A filter that matches nothing must not look like success —
		// trace figures (fig05…) and snapshot figures (stream-*) live
		// in different namespaces, and a stale -only crossing them
		// would otherwise exit 0 having checked nothing.
		ids := make([]string, len(results))
		for i, res := range results {
			ids[i] = res.ID
		}
		log.Fatalf("-only %q matched no figure (this mode renders: %s)", only, strings.Join(ids, ", "))
	}
	fmt.Printf("== %d figures reproduce, %d shape mismatches ==\n", pass, fail)
	if fail > 0 {
		os.Exit(1)
	}
}

// cmdCompare diffs two snapshots (baseline first).
func cmdCompare(args []string) {
	fs := flag.NewFlagSet("analyze compare", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		log.Fatalf("usage: analyze compare baseline.json candidate.json (got %d args)", fs.NArg())
	}
	base := loadSnapshot(fs.Arg(0))
	cand := loadSnapshot(fs.Arg(1))
	log.Printf("baseline %s: %d sessions; candidate %s: %d sessions",
		fs.Arg(0), base.Counter(telemetry.CounterSessions),
		fs.Arg(1), cand.Counter(telemetry.CounterSessions))
	fmt.Print(renderCompare(base, cand))
}

// renderCompare is the compare output (a function of the two snapshots
// alone, so the golden tests can pin the table bytes).
func renderCompare(base, cand *telemetry.Snapshot) string {
	return figures.StreamCompare(base, cand).Render() + "\n"
}

// cmdDiagnose renders the cause-share report. A snapshot without
// labels, or whose label counts fail to cover every session, exits
// non-zero — the coverage invariant is the report's integrity check.
func cmdDiagnose(args []string) {
	fs := flag.NewFlagSet("analyze diagnose", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatalf("usage: analyze diagnose snap.json (got %d args)", fs.NArg())
	}
	sn := loadSnapshot(fs.Arg(0))
	log.Printf("loaded snapshot: %d sessions, %d chunks (k=%d)",
		sn.Counter(telemetry.CounterSessions), sn.Counter(telemetry.CounterChunks), sn.SketchK)
	res := figures.StreamDiagnosis(sn)
	fmt.Print(res.Render() + "\n")
	if !res.Pass {
		os.Exit(1)
	}
}

// renderDiagnose is the diagnose output (pinned by the golden tests).
func renderDiagnose(sn *telemetry.Snapshot) string {
	return figures.StreamDiagnosis(sn).Render() + "\n"
}

// cmdWindows renders the per-window QoE/diagnosis report, failing
// unless the windows cover every session.
func cmdWindows(args []string) {
	fs := flag.NewFlagSet("analyze windows", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatalf("usage: analyze windows snap.json (got %d args)", fs.NArg())
	}
	sn := loadSnapshot(fs.Arg(0))
	log.Printf("loaded snapshot: %d sessions, %d windows (k=%d)",
		sn.Counter(telemetry.CounterSessions), len(sn.Windows), sn.SketchK)
	res := figures.StreamWindows(sn)
	fmt.Print(res.Render() + "\n")
	if !res.Pass {
		os.Exit(1)
	}
}

// renderWindows is the windows output (pinned by the golden tests).
func renderWindows(sn *telemetry.Snapshot) string {
	return figures.StreamWindows(sn).Render() + "\n"
}

// cmdDetectProxies runs the §3 detector over a materialized trace and
// renders the detection report with its ablation, exiting non-zero when
// the trace carries ground truth and the detector misses its accuracy
// bars.
func cmdDetectProxies(args []string) {
	fs := flag.NewFlagSet("analyze detect-proxies", flag.ExitOnError)
	maxPerEgress := fs.Int("max-sessions-per-egress", proxydetect.DefaultMaxSessionsPerEgress,
		"rule-(ii) volume threshold: more sessions than this behind one IP flags it as a shared egress")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatalf("usage: analyze detect-proxies [flags] trace.jsonl (got %d args)", fs.NArg())
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	ds, err := core.ReadJSONL(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s", ds)
	res := figures.ProxyDetection(ds, proxydetect.Config{MaxSessionsPerEgress: *maxPerEgress})
	fmt.Print(res.Render() + "\n")
	if !res.Pass {
		os.Exit(1)
	}
}

// renderDetectProxies is the detect-proxies output (pinned by the
// golden tests).
func renderDetectProxies(ds *core.Dataset, cfg proxydetect.Config) string {
	return figures.ProxyDetection(ds, cfg).Render() + "\n"
}

// cmdIngest folds sweep directories and loose snapshots into the
// campaign store, then saves it atomically.
func cmdIngest(args []string) {
	fs := flag.NewFlagSet("analyze ingest", flag.ExitOnError)
	storePath := fs.String("store", "campaigns.json", "campaign store file (created if missing)")
	sweep := fs.String("sweep", "", "sweep name to ingest under (default: the directory manifest's spec name; required for loose snapshots)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		log.Fatal("usage: analyze ingest -store campaigns.json [-sweep name] dir|snap.json ...")
	}
	st, err := store.Open(*storePath)
	if err != nil {
		log.Fatal(err)
	}
	for _, path := range fs.Args() {
		info, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		if info.IsDir() {
			name := *sweep
			if name == "" {
				m, err := experiment.ReadManifestFile(path)
				if err != nil {
					log.Fatal(err)
				}
				name = m.Spec
			}
			n, err := st.IngestDir(name, path)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("ingested %d cells from %s into sweep %q", n, path, name)
			continue
		}
		if *sweep == "" {
			log.Fatalf("%s: loose snapshots need -sweep (there is no manifest to name the sweep)", path)
		}
		if err := st.IngestSnapshotFile(*sweep, path); err != nil {
			log.Fatal(err)
		}
		log.Printf("ingested %s into sweep %q", path, *sweep)
	}
	if err := st.Save(*storePath); err != nil {
		log.Fatal(err)
	}
	log.Printf("store %s: %d entries across sweeps %v", *storePath, st.Len(), st.Sweeps())
}

// cmdQuery runs a filter/group/rank query against the store and prints
// the league table (or rows as JSON with -json).
func cmdQuery(args []string) {
	fs := flag.NewFlagSet("analyze query", flag.ExitOnError)
	storePath := fs.String("store", "campaigns.json", "campaign store file")
	sweep := fs.String("sweep", "", "restrict to one sweep (default all)")
	where := fs.String("where", "", "comma-separated label filters, e.g. preset=paper,diagnosis=on")
	groupBy := fs.String("group-by", "", "aggregate by a spec axis (or any label) instead of listing cells")
	rank := fs.String("rank", "", "metric to rank by, e.g. startup_ms_p95, rebuffer_rate_p99, hit_ratio")
	desc := fs.Bool("desc", false, "rank descending (largest value first)")
	limit := fs.Int("limit", 0, "cap the number of rows (0 = all)")
	asJSON := fs.Bool("json", false, "emit rows as JSON instead of the table")
	fs.Parse(args)
	if fs.NArg() != 0 {
		log.Fatalf("usage: analyze query [flags] (got %d stray args)", fs.NArg())
	}
	st, err := store.Open(*storePath)
	if err != nil {
		log.Fatal(err)
	}
	if *rank == "" {
		log.Fatalf("-rank is required; metrics in this store: %s", strings.Join(st.Metrics(*sweep), ", "))
	}
	q := store.Query{Sweep: *sweep, GroupBy: *groupBy, Rank: *rank, Desc: *desc, Limit: *limit}
	if *where != "" {
		q.Where, err = parseWhere(*where)
		if err != nil {
			log.Fatal(err)
		}
	}
	rows, err := st.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		printJSON(rows)
		return
	}
	fmt.Print(renderQuery(q, rows))
}

// parseWhere splits "k=v,k2=v2" into a label filter map.
func parseWhere(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("-where: %q is not label=value", pair)
		}
		out[k] = v
	}
	return out, nil
}

// renderQuery is the query league table (a pure function of the query
// and rows, so goldens can pin the bytes). Values print with exact
// round-trip formatting — the table is as deterministic as the store.
func renderQuery(q store.Query, rows []store.Row) string {
	var b strings.Builder
	dir := "ascending"
	if q.Desc {
		dir = "descending"
	}
	scope := q.Sweep
	if scope == "" {
		scope = "all sweeps"
	}
	fmt.Fprintf(&b, "== query %s: rank by %s (%s) ==\n", scope, q.Rank, dir)
	if len(q.Where) > 0 {
		keys := make([]string, 0, len(q.Where))
		for k := range q.Where {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			keys[i] = k + "=" + q.Where[k]
		}
		fmt.Fprintf(&b, "where: %s\n", strings.Join(keys, ", "))
	}
	if q.GroupBy != "" {
		fmt.Fprintf(&b, "group-by: %s (mean over group)\n", q.GroupBy)
	}
	if len(rows) == 0 {
		b.WriteString("(no rows matched)\n")
		return b.String()
	}
	keyHeader := "cell"
	if q.GroupBy != "" {
		keyHeader = q.GroupBy
	}
	keyWidth := len(keyHeader)
	for _, r := range rows {
		if len(r.Key) > keyWidth {
			keyWidth = len(r.Key)
		}
	}
	fmt.Fprintf(&b, "%4s  %-*s  %3s  %s\n", "rank", keyWidth, keyHeader, "n", q.Rank)
	for i, r := range rows {
		fmt.Fprintf(&b, "%4d  %-*s  %3d  %s\n", i+1, keyWidth, r.Key, r.N, formatValue(r.Value))
	}
	return b.String()
}

// formatValue prints a metric value exactly (shortest round-trip form),
// so two runs over the same store bytes render the same table bytes.
func formatValue(v float64) string {
	return fmt.Sprintf("%g", v)
}

// cmdDiffSweep regression-diffs two ingested sweeps and exits non-zero
// when the candidate regresses the base.
func cmdDiffSweep(args []string) {
	fs := flag.NewFlagSet("analyze diff-sweep", flag.ExitOnError)
	storePath := fs.String("store", "campaigns.json", "campaign store file")
	asJSON := fs.Bool("json", false, "emit the full diff as JSON instead of the table")
	fs.Parse(args)
	if fs.NArg() != 2 {
		log.Fatalf("usage: analyze diff-sweep -store campaigns.json base candidate (got %d args)", fs.NArg())
	}
	st, err := store.Open(*storePath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := st.CompareSweeps(fs.Arg(0), fs.Arg(1), nil)
	if err != nil {
		log.Fatal(err)
	}
	if *asJSON {
		printJSON(d)
	} else {
		fmt.Print(renderDiffSweep(d))
	}
	if d.Regressions > 0 {
		os.Exit(1)
	}
}

// renderDiffSweep is the diff-sweep report: one line per compared
// metric per cell, regressions flagged, missing/added cells listed.
func renderDiffSweep(d *store.SweepDiff) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== diff-sweep: %s -> %s ==\n", d.Base, d.New)
	for _, cd := range d.Cells {
		for _, md := range cd.Metrics {
			flag := "ok"
			if md.Regression {
				flag = "REGRESSION"
			}
			fmt.Fprintf(&b, "%-24s %-24s %12s -> %-12s delta %-12s %s\n",
				cd.Cell, md.Metric, formatValue(md.Base), formatValue(md.New), formatValue(md.Delta), flag)
		}
	}
	for _, name := range d.Missing {
		fmt.Fprintf(&b, "%-24s MISSING from candidate sweep (counts as a regression)\n", name)
	}
	for _, name := range d.Added {
		fmt.Fprintf(&b, "%-24s added in candidate sweep (not in base)\n", name)
	}
	fmt.Fprintf(&b, "== %d regressions ==\n", d.Regressions)
	return b.String()
}

// printJSON emits v indented, the machine-readable twin of the tables.
func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
}

func loadSnapshot(path string) *telemetry.Snapshot {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sn, err := telemetry.ReadSnapshot(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return sn
}
