package main

import (
	"strings"
	"testing"

	"vidperf/internal/store"
	"vidperf/internal/telemetry"
)

// queryFixtureStore builds a deterministic three-cell store the league
// table goldens pin: one axis, fixed counters, one fixed sketch per
// cell, so render bytes depend on nothing but this function.
func queryFixtureStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	cells := []struct {
		name    string
		axisVal string
		hit     uint64
		startup []float64
	}{
		{"zipf_s=0.6", "0.6", 700, []float64{220, 340, 470, 910}},
		{"zipf_s=0.9", "0.9", 900, []float64{180, 230, 310, 620}},
		{"zipf_s=1.1", "1.1", 950, []float64{150, 200, 260, 480}},
	}
	for _, c := range cells {
		sn := &telemetry.Snapshot{
			Schema:  telemetry.SnapshotSchema,
			SketchK: 64,
			Labels: map[string]string{
				"spec": "zipf-sweep", "cell": c.name, "preset": "paper",
				"axis:zipf_s": c.axisVal,
			},
			Sketches:   map[string]*telemetry.QuantileSketch{},
			Histograms: map[string]*telemetry.Histogram{},
			Counters: map[string]uint64{
				"sessions": 100, "chunks": 1000, "chunks_hit": c.hit,
			},
		}
		sk := telemetry.NewSketch(64)
		for _, v := range c.startup {
			sk.Add(v)
		}
		sn.Sketches["startup_ms"] = sk
		if err := s.Add("zipf-sweep", c.name, sn); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestGoldenQueryTable pins the analyze query league table byte for
// byte, in both per-cell and grouped-by-axis forms.
func TestGoldenQueryTable(t *testing.T) {
	s := queryFixtureStore(t)

	q := store.Query{Sweep: "zipf-sweep", Rank: "startup_ms_p95", Desc: true}
	rows, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "query-cells.golden", renderQuery(q, rows))

	q = store.Query{
		Sweep:   "zipf-sweep",
		Where:   map[string]string{"preset": "paper"},
		GroupBy: "zipf_s",
		Rank:    "hit_ratio",
	}
	rows, err = s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "query-grouped.golden", renderQuery(q, rows))
}

// TestRenderQueryEmpty: an unmatched filter renders an explicit
// no-rows note, never an empty table that could pass unnoticed.
func TestRenderQueryEmpty(t *testing.T) {
	q := store.Query{Rank: "hit_ratio"}
	if got := renderQuery(q, nil); !strings.Contains(got, "no rows matched") {
		t.Errorf("empty result renders silently: %q", got)
	}
}

// TestRenderDiffSweepSelf: a sweep diffed against itself renders a
// zero-regression report.
func TestRenderDiffSweepSelf(t *testing.T) {
	s := queryFixtureStore(t)
	d, err := s.CompareSweeps("zipf-sweep", "zipf-sweep", nil)
	if err != nil {
		t.Fatal(err)
	}
	got := renderDiffSweep(d)
	if !strings.Contains(got, "== 0 regressions ==") {
		t.Errorf("self-diff report:\n%s", got)
	}
	if strings.Contains(got, "REGRESSION") || strings.Contains(got, "MISSING") {
		t.Errorf("self-diff flags spurious regressions:\n%s", got)
	}
}
