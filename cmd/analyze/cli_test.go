package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vidperf/internal/experiment"
	"vidperf/internal/telemetry"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed, so the subcommand entry points can be exercised end to end
// (their error paths log.Fatal and are covered by the CI smoke jobs
// instead).
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// cliSweepDir runs a tiny campaign into a temp dir for the CLI tests.
func cliSweepDir(t *testing.T) string {
	t.Helper()
	sp, err := experiment.Load(strings.NewReader(`{
		"name": "cli-test",
		"scenario": {"seed": 7, "sessions": 60, "prefixes": 40, "videos": 200},
		"axes": [{"name": "cold", "values": [false, true]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := experiment.RunCampaign(sp, experiment.RunOptions{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCLIIngestQueryDiffSweep drives the store subcommands through
// their real entry points: ingest a sweep directory, query it, and
// self-diff it (which must report zero regressions and not exit).
func TestCLIIngestQueryDiffSweep(t *testing.T) {
	dir := cliSweepDir(t)
	storePath := filepath.Join(t.TempDir(), "campaigns.json")

	cmdIngest([]string{"-store", storePath, dir})
	if _, err := os.Stat(storePath); err != nil {
		t.Fatalf("ingest left no store behind: %v", err)
	}

	out := captureStdout(t, func() {
		cmdQuery([]string{"-store", storePath, "-sweep", "cli-test",
			"-group-by", "cold", "-rank", "hit_ratio", "-desc", "-limit", "2"})
	})
	if !strings.Contains(out, "rank by hit_ratio (descending)") || !strings.Contains(out, "cold") {
		t.Errorf("query table missing expected header:\n%s", out)
	}

	jsonOut := captureStdout(t, func() {
		cmdQuery([]string{"-store", storePath, "-json", "-rank", "sessions"})
	})
	if !strings.Contains(jsonOut, `"key"`) {
		t.Errorf("query -json emitted no rows:\n%s", jsonOut)
	}

	diff := captureStdout(t, func() {
		cmdDiffSweep([]string{"-store", storePath, "cli-test", "cli-test"})
	})
	if !strings.Contains(diff, "== 0 regressions ==") {
		t.Errorf("self diff-sweep reported regressions:\n%s", diff)
	}
	diffJSON := captureStdout(t, func() {
		cmdDiffSweep([]string{"-store", storePath, "-json", "cli-test", "cli-test"})
	})
	if !strings.Contains(diffJSON, `"regressions": 0`) {
		t.Errorf("self diff-sweep -json reported regressions:\n%s", diffJSON)
	}
}

// TestCLIIngestLooseSnapshot: a bare snapshot file ingests under an
// explicit sweep name.
func TestCLIIngestLooseSnapshot(t *testing.T) {
	dir := cliSweepDir(t)
	m, err := experiment.ReadManifestFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(t.TempDir(), "s.json")
	cmdIngest([]string{"-store", storePath, "-sweep", "ops", filepath.Join(dir, m.Cells[0].File)})
	out := captureStdout(t, func() {
		cmdQuery([]string{"-store", storePath, "-sweep", "ops", "-rank", "sessions"})
	})
	if !strings.Contains(out, "ops/"+m.Cells[0].Name) {
		t.Errorf("loose ingest did not surface in query:\n%s", out)
	}
}

// TestCLISnapshotReports drives compare, diagnose, and windows through
// their entry points on passing fixtures (coverage invariants hold, so
// none of them exit).
func TestCLISnapshotReports(t *testing.T) {
	warm, cold := goldenSnapshots(t)
	dir := t.TempDir()
	write := func(name string, sn *telemetry.Snapshot) string {
		path := filepath.Join(dir, name)
		f := mustCreateFile(t, path)
		if err := telemetry.WriteSnapshot(f, sn); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	warmPath := write("warm.json", warm)
	coldPath := write("cold.json", cold)
	tlPath := write("timeline.json", goldenTimelineSnapshot(t))

	out := captureStdout(t, func() { cmdCompare([]string{warmPath, coldPath}) })
	if !strings.Contains(out, "diag_share") {
		t.Errorf("compare output missing cause-share deltas:\n%s", out)
	}
	out = captureStdout(t, func() { cmdDiagnose([]string{warmPath}) })
	if !strings.Contains(out, "healthy") {
		t.Errorf("diagnose output missing label rows:\n%s", out)
	}
	out = captureStdout(t, func() { cmdWindows([]string{tlPath}) })
	if !strings.Contains(out, "degrade") {
		t.Errorf("windows output missing the phase window:\n%s", out)
	}
}

// TestParseWhere covers the label-filter grammar.
func TestParseWhere(t *testing.T) {
	got, err := parseWhere("preset=paper, diagnosis=on,")
	if err != nil {
		t.Fatal(err)
	}
	if got["preset"] != "paper" || got["diagnosis"] != "on" || len(got) != 2 {
		t.Fatalf("parseWhere = %v", got)
	}
	if _, err := parseWhere("orphan"); err == nil {
		t.Fatal("parseWhere accepted a pair without =")
	}
	if _, err := parseWhere("=value"); err == nil {
		t.Fatal("parseWhere accepted an empty label name")
	}
}

func mustCreateFile(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
