// serve.go implements `vodsim serve`: continuous service mode. The
// subcommand builds an internal/serve engine — from scenario flags, from
// an experiment spec's scenario + "serve" block, or from a checkpoint
// (-resume) — exposes its live state over HTTP, and runs service windows
// until SIGTERM/interrupt or -max-windows.
//
//	vodsim serve -seed 7 -sessions-per-window 2000 -window-min 30 \
//	       -pace 60 -listen 127.0.0.1:9632 -checkpoint state.ckpt
//	vodsim serve -spec examples/specs/serve-steady.json
//	vodsim serve -resume state.ckpt -max-windows 48 -out snapshot.json
//
// Flag precedence in spec mode: an explicitly-set flag beats the spec's
// serve block, which beats the flag's default. With -resume, every
// determinism-relevant setting comes from the checkpoint and only
// runtime flags (-listen, -pace, -checkpoint, -checkpoint-every,
// -max-windows, -out, -parallel, -log-format) may be set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vidperf/internal/catalog"
	"vidperf/internal/experiment"
	"vidperf/internal/serve"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// serveFlags carries the parsed serve flag values through validation and
// engine construction.
type serveFlags struct {
	spec    string
	resume  string
	seed    uint64
	abrName string
	cold    bool

	sessionsPerWindow int
	prefixes          int
	videos            int
	parallel          int
	sketchK           int
	diagnose          bool

	windowMin       float64
	ring            int
	pace            float64
	listen          string
	checkpoint      string
	checkpointEvery int
	maxWindows      int
	out             string
}

func serveMain(args []string) {
	fs := flag.NewFlagSet("vodsim serve", flag.ExitOnError)
	var f serveFlags
	fs.StringVar(&f.spec, "spec", "", "single-cell experiment spec (JSON) providing the scenario and optional serve block")
	fs.StringVar(&f.resume, "resume", "", "resume from this checkpoint file instead of starting fresh")
	fs.Uint64Var(&f.seed, "seed", 1, "serve seed (window w runs at serve.WindowSeed(seed, w))")
	fs.StringVar(&f.abrName, "abr", "hybrid", "ABR algorithm for every window")
	fs.BoolVar(&f.cold, "cold", false, "skip CDN cache pre-warming in every window")
	fs.IntVar(&f.sessionsPerWindow, "sessions-per-window", 2000, "sessions generated per service window")
	fs.IntVar(&f.prefixes, "prefixes", 2500, "number of client /24 prefixes")
	fs.IntVar(&f.videos, "videos", 6000, "catalog size (titles)")
	fs.IntVar(&f.parallel, "parallel", 0, "max server-slot shards simulated concurrently (0 = GOMAXPROCS; output is identical at any setting)")
	fs.IntVar(&f.sketchK, "sketch-k", telemetry.DefaultSketchK, "quantile-sketch compaction parameter (error bound ≈ 4/k)")
	fs.BoolVar(&f.diagnose, "diagnose", false, "classify every session's dominant bottleneck, enabling /diagnose")
	fs.Float64Var(&f.windowMin, "window-min", 30, "virtual length of one service window, in minutes")
	fs.IntVar(&f.ring, "ring", 12, "closed windows retained for /windows")
	fs.Float64Var(&f.pace, "pace", 0, "virtual-to-wall speed factor (60 plays a 30-minute window in 30s wall; 0 = max speed)")
	fs.StringVar(&f.listen, "listen", "127.0.0.1:9632", "HTTP listen address for /snapshot /windows /diagnose /metrics /status /checkpoint (empty disables HTTP)")
	fs.StringVar(&f.checkpoint, "checkpoint", "", "checkpoint file path (written on POST /checkpoint, every -checkpoint-every windows, and at shutdown)")
	fs.IntVar(&f.checkpointEvery, "checkpoint-every", 0, "write a checkpoint after every n-th closed window (0 = only on demand and at shutdown)")
	fs.IntVar(&f.maxWindows, "max-windows", 0, "stop after this many total closed windows (0 = run until signalled)")
	fs.StringVar(&f.out, "out", "", "write the final cumulative snapshot (JSON) here on exit")
	logFormat := fs.String("log-format", "text", "stderr log format: text or json")
	fs.Parse(args)

	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodsim serve:", err)
		os.Exit(1)
	}
	set := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })

	if err := validateServeFlags(set, f, fs.Args()); err != nil {
		fatal(log, "invalid flags", slog.Any("err", err))
	}

	eng, err := buildServeEngine(set, f, log)
	if err != nil {
		fatal(log, "serve setup failed", slog.Any("err", err))
	}
	cfg := eng.Config()
	log.Info("serving",
		slog.Uint64("seed", cfg.Scenario.Seed),
		slog.Int("sessions_per_window", cfg.SessionsPerWindow),
		slog.Float64("window_ms", cfg.WindowMS),
		slog.Float64("pace", cfg.Pace),
		slog.Int("windows_done", eng.WindowsDone()),
		slog.Int("max_windows", cfg.MaxWindows),
		slog.Bool("diagnose", cfg.Diagnose))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var srv *http.Server
	if f.listen != "" {
		ln, err := net.Listen("tcp", f.listen)
		if err != nil {
			fatal(log, "listen failed", slog.Any("err", err))
		}
		srv = &http.Server{Handler: eng.Handler()}
		log.Info("http listening", slog.String("addr", ln.Addr().String()))
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("http server failed", slog.Any("err", err))
			}
		}()
	}

	runErr := eng.Run(ctx)
	stop()
	if srv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(shutCtx)
		cancel()
	}
	if runErr != nil {
		fatal(log, "serve run failed", slog.Any("err", runErr))
	}
	log.Info("serve stopped",
		slog.Int("windows_done", eng.WindowsDone()),
		slog.Float64("virtual_ms", eng.VirtualMS()))

	if f.out != "" {
		if err := writeFile(f.out, func(file *os.File) error { return eng.WriteSnapshot(file) }); err != nil {
			fatal(log, "write failed", slog.Any("err", err))
		}
		log.Info("wrote snapshot", slog.String("path", f.out))
	}
}

// serveRuntimeFlags are the flags that may accompany -resume: they
// schedule and persist work but never feed the simulation.
var serveRuntimeFlags = map[string]bool{
	"resume": true, "listen": true, "pace": true, "checkpoint": true,
	"checkpoint-every": true, "max-windows": true, "out": true,
	"parallel": true, "log-format": true,
}

// serveSpecBlockedFlags are the flags a spec-driven serve run may not
// set: the spec owns the simulated world, and a checkpoint resume owns
// everything.
var serveSpecBlockedFlags = map[string]bool{
	"abr": true, "cold": true, "seed": true, "resume": true,
}

// validateServeFlags rejects serve flag combinations that contradict the
// mode (fresh, spec, resume) before any engine work starts.
func validateServeFlags(set map[string]bool, f serveFlags, extra []string) error {
	if len(extra) > 0 {
		return fmt.Errorf("unexpected arguments %q (all options are flags)", extra)
	}
	if f.resume != "" {
		for name := range set {
			if !serveRuntimeFlags[name] {
				return fmt.Errorf("-%s cannot be combined with -resume (the checkpoint defines the run; only runtime flags -listen/-pace/-checkpoint/-checkpoint-every/-max-windows/-out/-parallel/-log-format apply)", name)
			}
		}
	} else if f.spec != "" {
		for name := range set {
			if serveSpecBlockedFlags[name] {
				return fmt.Errorf("-%s cannot be combined with -spec in serve mode (the spec defines the scenario)", name)
			}
		}
	}
	if f.sessionsPerWindow < 1 {
		return fmt.Errorf("-sessions-per-window must be >= 1 (got %d)", f.sessionsPerWindow)
	}
	if f.prefixes < 1 {
		return fmt.Errorf("-prefixes must be >= 1 (got %d)", f.prefixes)
	}
	if f.videos < 1 {
		return fmt.Errorf("-videos must be >= 1 (got %d)", f.videos)
	}
	if f.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (got %d); 0 means GOMAXPROCS", f.parallel)
	}
	if f.sketchK < 8 {
		return fmt.Errorf("-sketch-k must be >= 8 (got %d)", f.sketchK)
	}
	if f.windowMin <= 0 {
		return fmt.Errorf("-window-min must be > 0 (got %g)", f.windowMin)
	}
	if f.ring < 1 {
		return fmt.Errorf("-ring must be >= 1 (got %d)", f.ring)
	}
	if f.pace < 0 {
		return fmt.Errorf("-pace must be >= 0 (got %g); 0 means max speed", f.pace)
	}
	if f.checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0 (got %d)", f.checkpointEvery)
	}
	if f.maxWindows < 0 {
		return fmt.Errorf("-max-windows must be >= 0 (got %d)", f.maxWindows)
	}
	if f.checkpointEvery > 0 && f.checkpoint == "" && f.resume == "" {
		return fmt.Errorf("-checkpoint-every needs -checkpoint (nowhere to write)")
	}
	return nil
}

// buildServeEngine constructs the engine for the selected mode: resumed
// from a checkpoint, configured by a spec (flags overriding its serve
// block), or configured by flags alone.
func buildServeEngine(set map[string]bool, f serveFlags, log *slog.Logger) (*serve.Engine, error) {
	if f.resume != "" {
		ck, err := serve.LoadCheckpoint(f.resume)
		if err != nil {
			return nil, err
		}
		ckptPath := f.checkpoint
		if ckptPath == "" {
			// Resuming without -checkpoint keeps checkpointing to the file
			// being resumed — the natural reading of "pick up where the
			// service left off".
			ckptPath = f.resume
		}
		return serve.ResumeEngine(ck, serve.Runtime{
			Pace:                   f.pace,
			CheckpointPath:         ckptPath,
			CheckpointEveryWindows: f.checkpointEvery,
			MaxWindows:             f.maxWindows,
			Parallelism:            f.parallel,
		}, log)
	}

	cfg := serve.Config{
		SketchK:                f.sketchK,
		Diagnose:               f.diagnose,
		Ring:                   f.ring,
		Pace:                   f.pace,
		CheckpointPath:         f.checkpoint,
		CheckpointEveryWindows: f.checkpointEvery,
		MaxWindows:             f.maxWindows,
		SessionsPerWindow:      f.sessionsPerWindow,
		WindowMS:               f.windowMin * 60 * 1000,
	}
	if f.spec == "" {
		cfg.Scenario = workload.Scenario{
			Seed:        f.seed,
			NumPrefixes: f.prefixes,
			Catalog:     catalog.Config{NumVideos: f.videos},
			ABRName:     f.abrName,
			ColdStart:   f.cold,
			Parallelism: f.parallel,
		}
		return serve.NewEngine(cfg, log)
	}

	sp, err := experiment.LoadFile(f.spec)
	if err != nil {
		return nil, err
	}
	cells, err := sp.Expand()
	if err != nil {
		return nil, err
	}
	if len(cells) != 1 {
		return nil, fmt.Errorf("spec %s expands to %d cells; vodsim serve runs single-cell specs", sp.Name, len(cells))
	}
	cfg.Scenario = cells[0].Scenario
	if set["prefixes"] {
		cfg.Scenario.NumPrefixes = f.prefixes
	}
	if set["videos"] {
		cfg.Scenario.Catalog.NumVideos = f.videos
	}
	if set["parallel"] {
		cfg.Scenario.Parallelism = f.parallel
	}
	if !set["sketch-k"] && sp.SketchK > 0 {
		cfg.SketchK = sp.SketchK
	}
	if !set["diagnose"] {
		cfg.Diagnose = sp.Diagnosis
	}
	// The spec's serve block fills every serve knob the command line left
	// at its default; an explicitly-set flag wins.
	if sv := sp.Serve; sv != nil {
		if !set["sessions-per-window"] && sv.SessionsPerWindow > 0 {
			cfg.SessionsPerWindow = sv.SessionsPerWindow
		} else if !set["sessions-per-window"] {
			cfg.SessionsPerWindow = cfg.Scenario.NumSessions
		}
		if !set["window-min"] && sv.WindowMin > 0 {
			cfg.WindowMS = sv.WindowMS()
		}
		if !set["ring"] && sv.Ring > 0 {
			cfg.Ring = sv.Ring
		}
		if !set["pace"] && sv.Pace > 0 {
			cfg.Pace = sv.Pace
		}
		if !set["checkpoint-every"] && sv.CheckpointEveryWindows > 0 {
			cfg.CheckpointEveryWindows = sv.CheckpointEveryWindows
		}
	} else if !set["sessions-per-window"] {
		cfg.SessionsPerWindow = cfg.Scenario.NumSessions
	}
	return serve.NewEngine(cfg, log)
}
