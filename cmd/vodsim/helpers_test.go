package main

import (
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestNewLogger(t *testing.T) {
	for _, format := range []string{"", "text", "json"} {
		if _, err := newLogger(format); err != nil {
			t.Errorf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("yaml"); err == nil {
		t.Error("newLogger accepted an unknown format")
	}
}

func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := writeFile(path, func(f *os.File) error {
		_, err := f.WriteString("hello\n")
		return err
	}); err != nil {
		t.Fatalf("writeFile: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(got) != "hello\n" {
		t.Fatalf("file holds %q", got)
	}

	if err := writeFile(filepath.Join(t.TempDir(), "missing", "out.txt"),
		func(f *os.File) error { return nil }); err == nil {
		t.Fatal("writeFile into a missing directory did not error")
	}
	boom := errors.New("boom")
	if err := writeFile(filepath.Join(t.TempDir(), "out.txt"),
		func(f *os.File) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("writeFile swallowed the writer error: %v", err)
	}
}

func testScenarioSmall(seed uint64) workload.Scenario {
	return workload.Scenario{
		Seed:        seed,
		NumSessions: 120,
		NumPrefixes: 80,
		Catalog:     catalog.Config{NumVideos: 400},
	}
}

func TestWriteTrace(t *testing.T) {
	res, err := session.Execute(testScenarioSmall(4), session.Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	ds := res.Dataset
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := writeTrace(path, ds); err != nil {
		t.Fatalf("writeTrace: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat trace: %v", err)
	}
	if info.Size() == 0 {
		t.Fatal("trace file is empty")
	}
}

// TestRunStreamingWritesSnapshot drives the -stream helper end to end:
// the run streams and the out file is a loadable snapshot with the
// scenario's session count.
func TestRunStreamingWritesSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "snapshot.json")
	runStreaming(discardLogger(), testScenarioSmall(4), 64, true, out)
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	defer f.Close()
	sn, err := telemetry.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got := sn.Counter(telemetry.CounterSessions); got != 120 {
		t.Fatalf("snapshot has %d sessions, want 120", got)
	}
}

// TestRunSpecAppliesOverrides runs the -spec helper against a shipped
// spec with the CI-style override flags set and checks the overrides
// reached the written snapshot.
func TestRunSpecAppliesOverrides(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cell.json")
	set := map[string]bool{
		"sessions": true, "prefixes": true, "videos": true,
		"seed": true, "parallel": true, "sketch-k": true, "diagnose": true,
	}
	runSpec(discardLogger(), "../../examples/specs/paper-baseline.json", set,
		150, 100, 500, 9, 2, 64, false, false, out)
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	defer f.Close()
	sn, err := telemetry.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got := sn.Counter(telemetry.CounterSessions); got != 150 {
		t.Fatalf("snapshot has %d sessions, want the -sessions override 150", got)
	}
	if sn.SketchK != 64 {
		t.Fatalf("snapshot sketch k = %d, want the -sketch-k override 64", sn.SketchK)
	}
}

func TestStartProfiles(t *testing.T) {
	// No profile paths: setup and stop are both no-ops that must not fail.
	stop := startProfiles(discardLogger(), "", "")
	stop()

	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop = startProfiles(discardLogger(), cpu, mem)
	stop()
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if info.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}
