// Command vodsim runs the end-to-end video-streaming simulation and writes
// the joined instrumentation trace (player + CDN + TCP, per chunk and per
// session) to a JSONL file, plus optional CSV exports. The trace is the
// input to cmd/analyze.
//
// Usage:
//
//	vodsim -sessions 20000 -seed 1 -out trace.jsonl [-chunks-csv chunks.csv]
//	       [-sessions-csv sessions.csv] [-abr hybrid] [-cold] [-filter-proxies]
//	       [-parallel 0]
//
// The simulation is sharded by PoP and executed on up to -parallel engines
// at once; the written trace is byte-identical at every -parallel value.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/session"
	"vidperf/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vodsim: ")

	var (
		sessions    = flag.Int("sessions", 20000, "number of sessions to simulate")
		prefixes    = flag.Int("prefixes", 2500, "number of client /24 prefixes")
		videos      = flag.Int("videos", 6000, "catalog size (titles)")
		seed        = flag.Uint64("seed", 1, "master scenario seed")
		abrName     = flag.String("abr", "hybrid", "ABR algorithm (hybrid, rate-smoothed, rate-instant, rate-instant-screened, buffer-based, server-signal, fixed-low, fixed-high)")
		cold        = flag.Bool("cold", false, "skip CDN cache pre-warming (cold-start ablation)")
		parallel    = flag.Int("parallel", 0, "max PoP shards simulated concurrently (0 = GOMAXPROCS, 1 = sequential; output is identical at any setting)")
		filterProxy = flag.Bool("filter-proxies", false, "apply the §3 proxy preprocessing before writing")
		out         = flag.String("out", "trace.jsonl", "output JSONL trace path")
		chunksCSV   = flag.String("chunks-csv", "", "optional CSV export of the chunk table")
		sessCSV     = flag.String("sessions-csv", "", "optional CSV export of the session table")
	)
	flag.Parse()

	sc := workload.Scenario{
		Seed:        *seed,
		NumSessions: *sessions,
		NumPrefixes: *prefixes,
		Catalog:     catalog.Config{NumVideos: *videos},
		ABRName:     *abrName,
		ColdStart:   *cold,
		Parallelism: *parallel,
	}
	log.Printf("simulating %d sessions (seed=%d, abr=%s, cold=%v, parallel=%d)",
		*sessions, *seed, *abrName, *cold, *parallel)
	ds, err := session.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("generated %s", ds)

	if *filterProxy {
		res := core.FilterProxies(ds, core.ProxyFilterConfig{})
		log.Printf("proxy filtering kept %d/%d sessions (%.1f%%)",
			res.KeptSessions, res.TotalSessions, 100*res.KeptFraction)
		ds = res.Kept
	}

	if err := writeTrace(*out, ds); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)

	if *chunksCSV != "" {
		if err := writeFile(*chunksCSV, func(f *os.File) error {
			return core.WriteChunksCSV(f, ds.Chunks)
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *chunksCSV)
	}
	if *sessCSV != "" {
		if err := writeFile(*sessCSV, func(f *os.File) error {
			return core.WriteSessionsCSV(f, ds.Sessions)
		}); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *sessCSV)
	}
}

func writeTrace(path string, ds *core.Dataset) error {
	return writeFile(path, func(f *os.File) error { return core.WriteJSONL(f, ds) })
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
