// Command vodsim runs the end-to-end video-streaming simulation and writes
// the joined instrumentation trace (player + CDN + TCP, per chunk and per
// session) to a JSONL file, plus optional CSV exports. The trace is the
// input to cmd/analyze.
//
// Usage:
//
//	vodsim -sessions 20000 -seed 1 -out trace.jsonl [-chunks-csv chunks.csv]
//	       [-sessions-csv sessions.csv] [-abr hybrid] [-cold] [-filter-proxies]
//	       [-parallel 0] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	vodsim serve [...]   (continuous service mode; see below)
//
// Progress and errors go to stderr as structured logs (log/slog); pass
// -log-format=json for machine-parsable output (the default is the text
// handler).
//
// -cpuprofile and -memprofile (usable in every mode, including -spec)
// write runtime/pprof profiles of the actual campaign for go tool pprof;
// see ARCHITECTURE.md's "Performance model" for the profiling workflow.
//
// The simulation is sharded by CDN server and executed on up to -parallel engines
// at once; the written trace is byte-identical at every -parallel value.
//
// With -stream the campaign runs through the internal/telemetry subsystem
// instead: finished sessions fold into mergeable sketches, histograms and
// counters as each shard produces them, no record is ever materialized,
// and -out receives a JSON telemetry snapshot (input to
// `analyze snapshot`) rather than a JSONL trace. Peak memory is
// O(sketch), independent of the record volume, so -stream is the mode for
// 10M+-session campaigns. -stream cannot be combined with the CSV exports
// or -filter-proxies, which need the full joined dataset.
//
// With -stream -diagnose (or -spec ... -diagnose) every finished session
// is additionally classified by internal/diagnose — which layer (server
// cache/backend, network throughput/loss, client download stack, ABR)
// dominated its problems — and the snapshot carries one session counter
// and three QoE sketches per label. `analyze diagnose` renders the
// cause-share table from them.
//
// With -spec the scenario comes from a declarative experiment spec
// (internal/experiment; see examples/specs/) instead of individual
// flags:
//
//	vodsim -spec examples/specs/paper-baseline.json -out snapshot.json
//
// The spec must expand to a single cell (multi-cell campaigns belong to
// cmd/sweep); the run always streams, writing a labelled telemetry
// snapshot. Only -out, -parallel, -seed, -sessions, -prefixes, -videos,
// -sketch-k and -diagnose may be combined with -spec, overriding the
// spec's values — the overrides the CI determinism gate uses to replay
// one spec at several -parallel settings and byte-compare the snapshots.
//
// A spec with a "timeline" block (see docs/SPECS.md) injects timed
// faults and degradations — PoP outages, backend brownouts, cache
// shrinks, path degradation, flash crowds — and the snapshot gains
// per-window telemetry: `analyze windows` renders QoE
// before/during/after each phase. Timelines change nothing about the
// determinism contract.
//
// The serve subcommand (vodsim serve, see serve.go in this package) runs
// the streaming pipeline as a long-lived service: open-ended session
// windows on a virtual clock, live /snapshot /windows /diagnose /metrics
// endpoints, and synchronous checkpoint/resume with byte-identical
// replay. See README.md, "Continuous service mode".
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/diagnose"
	"vidperf/internal/experiment"
	"vidperf/internal/profiling"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}

	var (
		sessions    = flag.Int("sessions", 20000, "number of sessions to simulate")
		prefixes    = flag.Int("prefixes", 2500, "number of client /24 prefixes")
		videos      = flag.Int("videos", 6000, "catalog size (titles)")
		seed        = flag.Uint64("seed", 1, "master scenario seed")
		abrName     = flag.String("abr", "hybrid", "ABR algorithm (hybrid, rate-smoothed, rate-instant, rate-instant-screened, buffer-based, server-signal, fixed-low, fixed-high)")
		cold        = flag.Bool("cold", false, "skip CDN cache pre-warming (cold-start ablation)")
		parallel    = flag.Int("parallel", 0, "max server-slot shards simulated concurrently (0 = GOMAXPROCS, 1 = sequential; output is identical at any setting)")
		filterProxy = flag.Bool("filter-proxies", false, "apply the §3 proxy preprocessing before writing")
		stream      = flag.Bool("stream", false, "streaming telemetry mode: aggregate into bounded-memory sketches and write a snapshot instead of a trace")
		diagnoseF   = flag.Bool("diagnose", false, "classify every session's dominant bottleneck (internal/diagnose) during the streamed run; requires -stream or -spec")
		spec        = flag.String("spec", "", "run a single-cell experiment spec (JSON, see examples/specs/) in streaming mode; replaces the scenario flags")
		traceOut    = flag.Bool("trace", false, "with -spec: materialize the full JSONL trace instead of a streaming snapshot (input to `analyze detect-proxies`)")
		sketchK     = flag.Int("sketch-k", telemetry.DefaultSketchK, "quantile-sketch compaction parameter in -stream mode (error bound ≈ 4/k)")
		out         = flag.String("out", "trace.jsonl", "output path (JSONL trace, or JSON snapshot with -stream)")
		chunksCSV   = flag.String("chunks-csv", "", "optional CSV export of the chunk table")
		sessCSV     = flag.String("sessions-csv", "", "optional CSV export of the session table")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file on successful exit (go tool pprof)")
		logFormat   = flag.String("log-format", "text", "stderr log format: text or json")
	)
	flag.Parse()

	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vodsim:", err)
		os.Exit(1)
	}

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *spec != "" {
		if err := validateSpecFlags(set, *sketchK, flag.Args()); err != nil {
			fatal(log, "invalid flags", slog.Any("err", err))
		}
		stopProfiles := startProfiles(log, *cpuProfile, *memProfile)
		defer stopProfiles()
		runSpec(log, *spec, set, *sessions, *prefixes, *videos, *seed, *parallel, *sketchK, *diagnoseF, *traceOut, *out)
		return
	}
	if *traceOut {
		fatal(log, "invalid flags", slog.Any("err",
			fmt.Errorf("-trace only applies to -spec runs (plain runs already write a JSONL trace)")))
	}

	if err := validateFlags(*sessions, *prefixes, *videos, *parallel, *sketchK,
		*stream, *diagnoseF, *filterProxy, *chunksCSV, *sessCSV, flag.Args()); err != nil {
		fatal(log, "invalid flags", slog.Any("err", err))
	}
	stopProfiles := startProfiles(log, *cpuProfile, *memProfile)
	defer stopProfiles()

	sc := workload.Scenario{
		Seed:        *seed,
		NumSessions: *sessions,
		NumPrefixes: *prefixes,
		Catalog:     catalog.Config{NumVideos: *videos},
		ABRName:     *abrName,
		ColdStart:   *cold,
		Parallelism: *parallel,
	}
	log.Info("simulating",
		slog.Int("sessions", *sessions), slog.Uint64("seed", *seed),
		slog.String("abr", *abrName), slog.Bool("cold", *cold),
		slog.Int("parallel", *parallel), slog.Bool("stream", *stream),
		slog.Bool("diagnose", *diagnoseF))

	if *stream {
		runStreaming(log, sc, *sketchK, *diagnoseF, *out)
		return
	}

	res, err := session.Execute(sc, session.Options{})
	if err != nil {
		fatal(log, "run failed", slog.Any("err", err))
	}
	ds := res.Dataset
	log.Info("generated dataset", slog.String("dataset", ds.String()))

	if *filterProxy {
		res := core.FilterProxies(ds, core.ProxyFilterConfig{})
		log.Info("proxy filtering done",
			slog.Int("kept", res.KeptSessions), slog.Int("total", res.TotalSessions),
			slog.Float64("kept_frac", res.KeptFraction))
		ds = res.Kept
	}

	if err := writeTrace(*out, ds); err != nil {
		fatal(log, "write failed", slog.Any("err", err))
	}
	log.Info("wrote trace", slog.String("path", *out))

	if *chunksCSV != "" {
		if err := writeFile(*chunksCSV, func(f *os.File) error {
			return core.WriteChunksCSV(f, ds.Chunks)
		}); err != nil {
			fatal(log, "write failed", slog.Any("err", err))
		}
		log.Info("wrote chunk CSV", slog.String("path", *chunksCSV))
	}
	if *sessCSV != "" {
		if err := writeFile(*sessCSV, func(f *os.File) error {
			return core.WriteSessionsCSV(f, ds.Sessions)
		}); err != nil {
			fatal(log, "write failed", slog.Any("err", err))
		}
		log.Info("wrote session CSV", slog.String("path", *sessCSV))
	}
}

// validateFlags rejects flag combinations that would otherwise silently
// misbehave, before any simulation work starts.
func validateFlags(sessions, prefixes, videos, parallel, sketchK int,
	stream, diagnose, filterProxy bool, chunksCSV, sessCSV string, extra []string) error {
	if len(extra) > 0 {
		return fmt.Errorf("unexpected arguments %q (all options are flags)", extra)
	}
	if sessions < 1 {
		return fmt.Errorf("-sessions must be >= 1 (got %d)", sessions)
	}
	if prefixes < 1 {
		return fmt.Errorf("-prefixes must be >= 1 (got %d)", prefixes)
	}
	if videos < 1 {
		return fmt.Errorf("-videos must be >= 1 (got %d)", videos)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (got %d); 0 means GOMAXPROCS", parallel)
	}
	if stream {
		if sketchK < 8 {
			return fmt.Errorf("-sketch-k must be >= 8 (got %d)", sketchK)
		}
		if chunksCSV != "" || sessCSV != "" {
			return fmt.Errorf("-stream keeps no per-record tables; drop -chunks-csv/-sessions-csv or run without -stream")
		}
		if filterProxy {
			return fmt.Errorf("-filter-proxies needs the full joined dataset; it is unavailable with -stream")
		}
	} else if diagnose {
		return fmt.Errorf("-diagnose classifies sessions inside the streaming aggregator; combine it with -stream (or -spec)")
	}
	return nil
}

// specOverridableFlags are the flags that may accompany -spec, each
// overriding the spec's value when explicitly set.
var specOverridableFlags = map[string]bool{
	"spec": true, "out": true, "parallel": true, "seed": true,
	"sessions": true, "prefixes": true, "videos": true, "sketch-k": true,
	"diagnose": true, "trace": true, "cpuprofile": true, "memprofile": true,
	"log-format": true,
}

// validateSpecFlags rejects flag combinations that contradict spec mode:
// the spec is the scenario, so only the override allowlist may be set,
// and overrides obey the same bounds as their -stream counterparts.
func validateSpecFlags(set map[string]bool, sketchK int, extra []string) error {
	if len(extra) > 0 {
		return fmt.Errorf("unexpected arguments %q (all options are flags)", extra)
	}
	for name := range set {
		if !specOverridableFlags[name] {
			return fmt.Errorf("-%s cannot be combined with -spec (the spec defines the scenario; only -out/-parallel/-seed/-sessions/-prefixes/-videos/-sketch-k/-diagnose override)", name)
		}
	}
	if set["sketch-k"] && sketchK < 8 {
		return fmt.Errorf("-sketch-k must be >= 8 (got %d)", sketchK)
	}
	return nil
}

// runSpec executes a single-cell experiment spec in streaming mode,
// applying any explicitly-set override flags, and writes the labelled
// snapshot to out. An explicit -diagnose / -diagnose=false overrides
// the spec's diagnosis toggle in either direction, like every other
// override flag (it is an output toggle, so the simulated world — and
// every non-diagnosis byte of the snapshot state — is unchanged). With
// -trace the same cell instead materializes the full joined dataset and
// out receives the JSONL trace — the input `analyze detect-proxies`
// needs, since the §3 detector reads per-session records, not sketches.
func runSpec(log *slog.Logger, path string, set map[string]bool, sessions, prefixes, videos int,
	seed uint64, parallel, sketchK int, diagnose, trace bool, out string) {
	sp, err := experiment.LoadFile(path)
	if err != nil {
		fatal(log, "spec load failed", slog.Any("err", err))
	}
	cells, err := sp.Expand()
	if err != nil {
		fatal(log, "spec expansion failed", slog.Any("err", err))
	}
	if len(cells) != 1 {
		fatal(log, "multi-cell spec",
			slog.String("spec", path), slog.Int("cells", len(cells)),
			slog.String("hint", "vodsim -spec runs single-cell specs (use cmd/sweep for campaigns)"))
	}
	cell := cells[0]
	if set["sessions"] {
		cell.Scenario.NumSessions = sessions
	}
	if set["prefixes"] {
		cell.Scenario.NumPrefixes = prefixes
	}
	if set["videos"] {
		cell.Scenario.Catalog.NumVideos = videos
	}
	if set["seed"] {
		cell.Scenario.Seed = seed
	}
	if set["parallel"] {
		cell.Scenario.Parallelism = parallel
	}
	if set["sketch-k"] {
		sp.SketchK = sketchK
	}
	if set["diagnose"] {
		sp.Diagnosis = diagnose
	}
	sc := cell.Scenario.WithDefaults()
	log.Info("running spec cell",
		slog.String("spec", sp.Name), slog.String("cell", cell.Name),
		slog.Int("sessions", sc.NumSessions), slog.Uint64("seed", sc.Seed),
		slog.String("abr", sc.ABRName), slog.Int("parallel", cell.Scenario.Parallelism),
		slog.Bool("trace", trace))
	if trace {
		res, err := session.Execute(cell.Scenario, session.Options{})
		if err != nil {
			fatal(log, "cell run failed", slog.Any("err", err))
		}
		log.Info("generated dataset", slog.String("dataset", res.Dataset.String()))
		if err := writeTrace(out, res.Dataset); err != nil {
			fatal(log, "write failed", slog.Any("err", err))
		}
		log.Info("wrote trace", slog.String("path", out))
		return
	}
	res, err := experiment.RunCell(sp, cell, "")
	if err != nil {
		fatal(log, "cell run failed", slog.Any("err", err))
	}
	writeSnapshotFile(log, out, res.Snapshot)
}

// runStreaming executes the campaign through per-shard telemetry
// accumulators and writes the merged snapshot.
func runStreaming(log *slog.Logger, sc workload.Scenario, sketchK int, diag bool, out string) {
	opt := session.Options{Telemetry: true, SketchK: sketchK}
	if diag {
		opt.Diagnose = &diagnose.Config{}
	}
	res, err := session.Execute(sc, opt)
	if err != nil {
		fatal(log, "streaming run failed", slog.Any("err", err))
	}
	writeSnapshotFile(log, out, res.Snapshot)
}

// writeSnapshotFile logs the snapshot's totals and writes it to out.
func writeSnapshotFile(log *slog.Logger, out string, sn *telemetry.Snapshot) {
	log.Info("streamed campaign",
		slog.Uint64("sessions", sn.Counter(telemetry.CounterSessions)),
		slog.Uint64("chunks", sn.Counter(telemetry.CounterChunks)),
		slog.Int("sketches", len(sn.Sketches)), slog.Int("sketch_k", sn.SketchK))
	if err := writeFile(out, func(f *os.File) error {
		return telemetry.WriteSnapshot(f, sn)
	}); err != nil {
		fatal(log, "write failed", slog.Any("err", err))
	}
	log.Info("wrote snapshot", slog.String("path", out))
}

// startProfiles wires the -cpuprofile/-memprofile flags. The returned
// stop runs on main's normal exit; fatal error paths (os.Exit) skip it,
// which is fine — a run that died produced no profile worth keeping.
func startProfiles(log *slog.Logger, cpuPath, memPath string) func() {
	stop, err := profiling.Start(cpuPath, memPath)
	if err != nil {
		fatal(log, "profiling setup failed", slog.Any("err", err))
	}
	return func() {
		if err := stop(); err != nil {
			log.Error("profiling stop failed", slog.Any("err", err))
		}
	}
}

func writeTrace(path string, ds *core.Dataset) error {
	return writeFile(path, func(f *os.File) error { return core.WriteJSONL(f, ds) })
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create %s: %w", path, err)
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
