package main

import (
	"context"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/serve"
	"vidperf/internal/workload"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// defaultServeFlags mirrors the flag defaults serveMain registers.
func defaultServeFlags() serveFlags {
	return serveFlags{
		seed: 1, abrName: "hybrid",
		sessionsPerWindow: 2000, prefixes: 2500, videos: 6000, sketchK: 256,
		windowMin: 30, ring: 12, listen: "127.0.0.1:9632",
	}
}

func TestValidateServeFlags(t *testing.T) {
	ok := func(name string, set map[string]bool, mut func(*serveFlags)) {
		t.Helper()
		f := defaultServeFlags()
		if mut != nil {
			mut(&f)
		}
		if err := validateServeFlags(set, f, nil); err != nil {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
	bad := func(name string, set map[string]bool, mut func(*serveFlags), wantSub string) {
		t.Helper()
		f := defaultServeFlags()
		if mut != nil {
			mut(&f)
		}
		err := validateServeFlags(set, f, nil)
		if err == nil {
			t.Errorf("%s: expected an error", name)
			return
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	ok("defaults", nil, nil)
	ok("resume with runtime flags",
		map[string]bool{"resume": true, "pace": true, "max-windows": true, "out": true},
		func(f *serveFlags) { f.resume = "x.ckpt" })
	ok("spec with serve overrides",
		map[string]bool{"spec": true, "window-min": true, "sessions-per-window": true},
		func(f *serveFlags) { f.spec = "s.json" })
	ok("checkpoint-every with checkpoint",
		map[string]bool{"checkpoint": true, "checkpoint-every": true},
		func(f *serveFlags) { f.checkpoint = "x.ckpt"; f.checkpointEvery = 4 })

	bad("resume with scenario flag",
		map[string]bool{"resume": true, "seed": true},
		func(f *serveFlags) { f.resume = "x.ckpt" }, "-seed")
	bad("resume with spec",
		map[string]bool{"resume": true, "spec": true},
		func(f *serveFlags) { f.resume = "x.ckpt"; f.spec = "s.json" }, "-spec")
	bad("spec with abr",
		map[string]bool{"spec": true, "abr": true},
		func(f *serveFlags) { f.spec = "s.json" }, "-abr")
	bad("spec with seed",
		map[string]bool{"spec": true, "seed": true},
		func(f *serveFlags) { f.spec = "s.json" }, "-seed")
	bad("zero sessions per window", nil,
		func(f *serveFlags) { f.sessionsPerWindow = 0 }, "-sessions-per-window")
	bad("zero window", nil,
		func(f *serveFlags) { f.windowMin = 0 }, "-window-min")
	bad("negative pace", nil,
		func(f *serveFlags) { f.pace = -1 }, "-pace")
	bad("tiny sketch", nil,
		func(f *serveFlags) { f.sketchK = 4 }, "-sketch-k")
	bad("zero ring", nil,
		func(f *serveFlags) { f.ring = 0 }, "-ring")
	bad("checkpoint-every without checkpoint",
		map[string]bool{"checkpoint-every": true},
		func(f *serveFlags) { f.checkpointEvery = 4 }, "-checkpoint-every")

	if err := validateServeFlags(nil, defaultServeFlags(), []string{"stray"}); err == nil {
		t.Error("positional arguments were accepted")
	}
}

// TestBuildServeEngineFromFlags: flag-only construction carries every
// scenario and serve knob into the engine's effective config.
func TestBuildServeEngineFromFlags(t *testing.T) {
	f := defaultServeFlags()
	f.seed = 42
	f.sessionsPerWindow = 500
	f.windowMin = 5
	f.ring = 3
	f.diagnose = true
	eng, err := buildServeEngine(nil, f, testLogger())
	if err != nil {
		t.Fatalf("buildServeEngine: %v", err)
	}
	cfg := eng.Config()
	if cfg.Scenario.Seed != 42 || cfg.SessionsPerWindow != 500 ||
		cfg.WindowMS != 5*60*1000 || cfg.Ring != 3 || !cfg.Diagnose {
		t.Fatalf("effective config = %+v", cfg)
	}
}

// TestBuildServeEngineFromSpec: the spec's scenario and serve block fill
// the engine config; explicitly-set flags win over the block.
func TestBuildServeEngineFromSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "serve.json")
	spec := `{
		"name": "serve-test",
		"scenario": {"sessions": 900, "seed": 7},
		"sketch_k": 128,
		"serve": {"window_min": 10, "sessions_per_window": 250, "ring": 6, "pace": 60}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	f := defaultServeFlags()
	f.spec = path
	eng, err := buildServeEngine(map[string]bool{"spec": true}, f, testLogger())
	if err != nil {
		t.Fatalf("buildServeEngine(spec): %v", err)
	}
	cfg := eng.Config()
	if cfg.Scenario.Seed != 7 || cfg.SessionsPerWindow != 250 ||
		cfg.WindowMS != 10*60*1000 || cfg.Ring != 6 || cfg.Pace != 60 || cfg.SketchK != 128 {
		t.Fatalf("spec-driven config = %+v", cfg)
	}

	// An explicit flag beats the serve block.
	f.windowMin = 2
	f.pace = 0
	eng, err = buildServeEngine(map[string]bool{"spec": true, "window-min": true, "pace": true}, f, testLogger())
	if err != nil {
		t.Fatalf("buildServeEngine(spec+flags): %v", err)
	}
	cfg = eng.Config()
	if cfg.WindowMS != 2*60*1000 || cfg.Pace != 0 {
		t.Fatalf("flag overrides lost: %+v", cfg)
	}
}

// TestBuildServeEngineResume writes a real checkpoint by running a small
// engine, then rebuilds through the -resume flag path: determinism state
// comes from the checkpoint, runtime knobs from the flags, and an
// unset -checkpoint keeps writing to the resumed file.
func TestBuildServeEngineResume(t *testing.T) {
	ckptPath := filepath.Join(t.TempDir(), "svc.ckpt")
	src, err := serve.NewEngine(serve.Config{
		Scenario: workload.Scenario{
			Seed:        31,
			NumPrefixes: 100,
			Catalog:     catalog.Config{NumVideos: 500},
			Parallelism: 1,
		},
		SessionsPerWindow: 80,
		WindowMS:          60000,
		SketchK:           64,
		MaxWindows:        1,
		CheckpointPath:    ckptPath,
	}, testLogger())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := src.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}

	f := defaultServeFlags()
	f.resume = ckptPath
	f.maxWindows = 3
	f.parallel = 4
	f.pace = 12
	set := map[string]bool{"resume": true, "max-windows": true, "parallel": true, "pace": true}
	eng, err := buildServeEngine(set, f, testLogger())
	if err != nil {
		t.Fatalf("buildServeEngine: %v", err)
	}
	cfg := eng.Config()
	if cfg.Scenario.Seed != 31 || cfg.SessionsPerWindow != 80 || cfg.SketchK != 64 {
		t.Fatalf("resumed config lost checkpoint state: %+v", cfg)
	}
	if cfg.MaxWindows != 3 || cfg.Pace != 12 || cfg.Scenario.Parallelism != 4 {
		t.Fatalf("runtime flags did not apply: %+v", cfg)
	}
	if cfg.CheckpointPath != ckptPath {
		t.Fatalf("checkpoint path = %q, want the resumed file %q", cfg.CheckpointPath, ckptPath)
	}
	if eng.WindowsDone() != 1 {
		t.Fatalf("resumed engine reports %d windows done, want 1", eng.WindowsDone())
	}

	f.resume = filepath.Join(t.TempDir(), "missing.ckpt")
	if _, err := buildServeEngine(map[string]bool{"resume": true}, f, testLogger()); err == nil {
		t.Fatal("resume from a missing checkpoint did not error")
	}
}
