package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	ok := func(sessions, prefixes, videos, parallel, sketchK int,
		stream, filterProxy bool, chunksCSV, sessCSV string, extra []string) error {
		return validateFlags(sessions, prefixes, videos, parallel, sketchK,
			stream, false, filterProxy, chunksCSV, sessCSV, extra)
	}
	// -diagnose rides the streaming aggregator: fine with -stream, an
	// error in batch mode.
	if err := validateFlags(100, 50, 50, 0, 256, true, true, false, "", "", nil); err != nil {
		t.Fatalf("-stream -diagnose rejected: %v", err)
	}
	if err := validateFlags(100, 50, 50, 0, 256, false, true, false, "", "", nil); err == nil ||
		!strings.Contains(err.Error(), "-diagnose") {
		t.Fatalf("batch -diagnose: want -diagnose error, got %v", err)
	}
	if err := ok(100, 50, 50, 0, 256, false, false, "", "", nil); err != nil {
		t.Fatalf("valid batch flags rejected: %v", err)
	}
	if err := ok(100, 50, 50, 4, 256, true, false, "", "", nil); err != nil {
		t.Fatalf("valid stream flags rejected: %v", err)
	}
	// -sketch-k only matters in stream mode; batch runs ignore it.
	if err := ok(100, 50, 50, 0, 2, false, false, "", "", nil); err != nil {
		t.Fatalf("batch run rejected over unused -sketch-k: %v", err)
	}
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"negative parallel", ok(100, 50, 50, -1, 256, false, false, "", "", nil), "-parallel"},
		{"zero sessions", ok(0, 50, 50, 0, 256, false, false, "", "", nil), "-sessions"},
		{"negative prefixes", ok(100, -3, 50, 0, 256, false, false, "", "", nil), "-prefixes"},
		{"zero videos", ok(100, 50, 0, 0, 256, false, false, "", "", nil), "-videos"},
		{"tiny sketch-k", ok(100, 50, 50, 0, 2, true, false, "", "", nil), "-sketch-k"},
		{"stream+chunks-csv", ok(100, 50, 50, 0, 256, true, false, "c.csv", "", nil), "-chunks-csv"},
		{"stream+sessions-csv", ok(100, 50, 50, 0, 256, true, false, "", "s.csv", nil), "-stream"},
		{"stream+filter-proxies", ok(100, 50, 50, 0, 256, true, true, "", "", nil), "-filter-proxies"},
		{"positional args", ok(100, 50, 50, 0, 256, false, false, "", "", []string{"trace.jsonl"}), "unexpected"},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(c.err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, c.err, c.want)
		}
	}
}

func TestValidateSpecFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{"spec": true}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	// The override allowlist is fine, alone or together.
	if err := validateSpecFlags(set(), 256, nil); err != nil {
		t.Errorf("bare -spec rejected: %v", err)
	}
	if err := validateSpecFlags(set("out", "parallel", "seed", "sessions", "prefixes", "videos", "sketch-k", "diagnose"), 256, nil); err != nil {
		t.Errorf("override flags rejected: %v", err)
	}
	// Scenario-defining flags must not fight the spec.
	for _, bad := range []string{"abr", "cold", "stream", "filter-proxies", "chunks-csv", "sessions-csv"} {
		err := validateSpecFlags(set(bad), 256, nil)
		if err == nil {
			t.Errorf("-%s combined with -spec accepted", bad)
			continue
		}
		if !strings.Contains(err.Error(), bad) {
			t.Errorf("-%s: error %q does not name the flag", bad, err)
		}
	}
	if err := validateSpecFlags(set(), 256, []string{"extra.json"}); err == nil {
		t.Error("positional args with -spec accepted")
	}
	// The -stream bound on -sketch-k applies in spec mode too: an
	// out-of-range override must error, not silently clamp.
	if err := validateSpecFlags(set("sketch-k"), 2, nil); err == nil ||
		!strings.Contains(err.Error(), "sketch-k") {
		t.Errorf("tiny -sketch-k with -spec: %v", err)
	}
	// An unset -sketch-k carries the flag default; no bound check applies.
	if err := validateSpecFlags(set(), 2, nil); err != nil {
		t.Errorf("unset sketch-k value checked anyway: %v", err)
	}
}
