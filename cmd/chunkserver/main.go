// Command chunkserver runs the miniature caching chunk server on a real
// socket. Pair it with cmd/player to see the paper's instrumentation on an
// actual network stack.
//
// Usage:
//
//	chunkserver -addr :8639 [-cache-mb 64] [-retry-ms 10] [-backend-ms 80]
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"vidperf/internal/httpstream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chunkserver: ")

	var (
		addr      = flag.String("addr", ":8639", "listen address")
		cacheMB   = flag.Int64("cache-mb", 64, "RAM cache size in MiB")
		retryMS   = flag.Int("retry-ms", 10, "open-read retry timer (ms)")
		backendMS = flag.Int("backend-ms", 80, "emulated backend latency on miss (ms)")
	)
	flag.Parse()

	srv := buildServer(*cacheMB, *retryMS, *backendMS)
	log.Printf("serving chunks on %s (cache %d MiB, retry %d ms, backend %d ms)",
		*addr, *cacheMB, *retryMS, *backendMS)
	log.Printf("chunk URL format: /video/{videoID}/chunk/{chunkID}?kbps={bitrate}")
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// buildServer wires the flag values into the chunk server exactly as the
// command serves it; the smoke test drives the same construction.
func buildServer(cacheMB int64, retryMS, backendMS int) *httpstream.Server {
	return httpstream.NewServer(httpstream.ServerConfig{
		CacheBytes:     cacheMB << 20,
		OpenRetryDelay: time.Duration(retryMS) * time.Millisecond,
		BackendDelay:   time.Duration(backendMS) * time.Millisecond,
	})
}
