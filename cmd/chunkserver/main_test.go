package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestChunkServerSmoke drives the command's exact server construction
// over a real socket: a chunk request succeeds with the documented URL
// shape, carries the instrumentation headers, repeats deterministically
// in size, and turns into a cache hit on re-request.
func TestChunkServerSmoke(t *testing.T) {
	ts := httptest.NewServer(buildServer(4, 1, 5))
	defer ts.Close()

	get := func(url string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read body: %v", err)
		}
		return resp, body
	}

	url := ts.URL + "/video/1/chunk/0?kbps=235"
	resp, body := get(url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET chunk = %d", resp.StatusCode)
	}
	if len(body) == 0 {
		t.Fatal("chunk body is empty")
	}
	if resp.Header.Get("X-Cache") == "" {
		t.Fatal("no X-Cache instrumentation header")
	}

	// The same chunk again: same bytes served, now from cache.
	resp2, body2 := get(url)
	if len(body2) != len(body) {
		t.Fatalf("re-request returned %d bytes, first returned %d", len(body2), len(body))
	}
	if lvl := resp2.Header.Get("X-Cache"); lvl != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", lvl)
	}

	// Malformed chunk paths are rejected, not served.
	if resp, _ := get(ts.URL + "/video/not-a-number/chunk/0?kbps=235"); resp.StatusCode == http.StatusOK {
		t.Fatal("malformed video ID was served")
	}
}
