// Command benchdiff is the CI bench-regression gate: it parses `go test
// -bench` output, aggregates repeated counts per benchmark (taking the
// minimum, the least noisy statistic for a regression check), and
// compares ns/op, B/op and allocs/op against a committed baseline JSON
// (BENCH_BASELINE.json), failing when any of them regresses beyond the
// threshold. Gating allocs/op alongside B/op catches regressions that
// trade a few big allocations for millions of small ones — same bytes,
// very different GC bill.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkRunParallel$|BenchmarkStreamingRun$' -benchtime=1x -count=5 -benchmem | \
//	    go run ./cmd/benchdiff -baseline BENCH_BASELINE.json -threshold 0.25
//
// Regenerate the baseline after an intentional perf change with:
//
//	go test -run '^$' -bench ... -count=5 -benchmem | go run ./cmd/benchdiff -update -baseline BENCH_BASELINE.json
//
// Benchmark names are matched with the -GOMAXPROCS suffix stripped, so a
// baseline recorded on an N-core machine still gates runners with a
// different core count (the 25% default threshold is deliberately loose
// for the same reason). Benchmarks present in only one side are reported
// but never fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference file.
type Baseline struct {
	Schema     int                  `json:"schema"`
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]BenchStat `json:"benchmarks"`
}

// BenchStat is one benchmark's reference numbers. Zero BPerOp or
// AllocsPerOp means the bench was recorded without -benchmem and that
// metric is not gated.
type BenchStat struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "committed baseline JSON")
		in           = flag.String("in", "", "bench output file (default stdin)")
		threshold    = flag.Float64("threshold", 0.25, "fail when ns/op or B/op regress by more than this fraction")
		update       = flag.Bool("update", false, "write the parsed results to -baseline instead of comparing")
	)
	flag.Parse()
	if len(flag.Args()) > 0 {
		log.Fatalf("unexpected arguments %q", flag.Args())
	}
	if *threshold <= 0 {
		log.Fatalf("-threshold must be > 0 (got %g)", *threshold)
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	got, err := ParseBench(r)
	if err != nil {
		log.Fatal(err)
	}
	if len(got) == 0 {
		log.Fatal("no benchmark results in input")
	}

	if *update {
		if err := writeBaseline(*baselinePath, got); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d benchmarks to %s", len(got), *baselinePath)
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	regressions := Compare(os.Stdout, base.Benchmarks, got, *threshold)
	if regressions > 0 {
		log.Fatalf("%d regression(s) beyond %.0f%%", regressions, *threshold*100)
	}
	fmt.Printf("no regressions beyond %.0f%%\n", *threshold*100)
}

// benchLine matches one result line of go test -bench output, e.g.
//
//	BenchmarkStreamingRun/stream-8   1   927442806 ns/op   12 B/op   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)\s+\d+\s+(.+)$`)

// cpuSuffix is the trailing -GOMAXPROCS go test appends to bench names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// ParseBench extracts per-benchmark ns/op and B/op from go test -bench
// output, keeping the minimum across repeated counts of the same
// benchmark and stripping the "Benchmark" prefix and -GOMAXPROCS suffix
// from names.
func ParseBench(r io.Reader) (map[string]BenchStat, error) {
	out := map[string]BenchStat{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(strings.TrimPrefix(m[1], "Benchmark"), "")
		stat, ok := parseMetrics(m[2])
		if !ok {
			continue
		}
		if prev, dup := out[name]; dup {
			if stat.NsPerOp > prev.NsPerOp {
				stat.NsPerOp = prev.NsPerOp
			}
			if prev.BPerOp != 0 && (stat.BPerOp == 0 || stat.BPerOp > prev.BPerOp) {
				stat.BPerOp = prev.BPerOp
			}
			if prev.AllocsPerOp != 0 && (stat.AllocsPerOp == 0 || stat.AllocsPerOp > prev.AllocsPerOp) {
				stat.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[name] = stat
	}
	return out, sc.Err()
}

// parseMetrics reads the "value unit" pairs after the iteration count.
func parseMetrics(s string) (BenchStat, bool) {
	fields := strings.Fields(s)
	var st BenchStat
	found := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return st, false
		}
		switch fields[i+1] {
		case "ns/op":
			st.NsPerOp = v
			found = true
		case "B/op":
			st.BPerOp = v
		case "allocs/op":
			st.AllocsPerOp = v
		}
	}
	return st, found
}

// Compare prints the delta table and returns how many benchmarks
// regressed beyond the threshold on ns/op, B/op or allocs/op.
// Benchmarks missing from either side are reported informationally.
func Compare(w io.Writer, base, got map[string]BenchStat, threshold float64) int {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "%-34s %14s %14s %8s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "base ns/op", "new ns/op", "Δ%", "base B/op", "new B/op", "Δ%",
		"base allocs", "new allocs", "Δ%")
	for _, name := range names {
		b := base[name]
		g, ok := got[name]
		if !ok {
			fmt.Fprintf(w, "%-34s (not run)\n", name)
			continue
		}
		nsBad := b.NsPerOp > 0 && g.NsPerOp > b.NsPerOp*(1+threshold)
		bBad := b.BPerOp > 0 && g.BPerOp > b.BPerOp*(1+threshold)
		allocsBad := b.AllocsPerOp > 0 && g.AllocsPerOp > b.AllocsPerOp*(1+threshold)
		flag := ""
		if nsBad || bBad || allocsBad {
			flag = "  << REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-34s %14.0f %14.0f %7.1f%% %14.0f %14.0f %7.1f%% %12.0f %12.0f %7.1f%%%s\n",
			name, b.NsPerOp, g.NsPerOp, relPct(b.NsPerOp, g.NsPerOp),
			b.BPerOp, g.BPerOp, relPct(b.BPerOp, g.BPerOp),
			b.AllocsPerOp, g.AllocsPerOp, relPct(b.AllocsPerOp, g.AllocsPerOp), flag)
	}
	extra := make([]string, 0)
	for name := range got {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		fmt.Fprintf(w, "%-34s (no baseline; run benchdiff -update to record)\n", name)
	}
	return regressions
}

func relPct(base, got float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (got - base) / base
}

func readBaseline(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var b Baseline
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != 1 {
		return nil, fmt.Errorf("%s: baseline schema %d, want 1", path, b.Schema)
	}
	return &b, nil
}

func writeBaseline(path string, got map[string]BenchStat) error {
	b := Baseline{
		Schema:     1,
		Note:       "min over -count repetitions of go test -bench; regenerate with: go test -run '^$' -bench 'BenchmarkRunParallel$|BenchmarkStreamingRun$' -benchtime=1x -count=5 -benchmem | go run ./cmd/benchdiff -update",
		Benchmarks: got,
	}
	buf, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
