package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: vidperf
cpu: Fake CPU @ 2.00GHz
BenchmarkRunParallel/p1-8         	       1	2000000000 ns/op	       900 chunks
BenchmarkRunParallel/p1-8         	       1	1800000000 ns/op	       900 chunks
BenchmarkStreamingRun/stream-8    	       1	 950000000 ns/op	 120000000 B/op	   50000 allocs/op
BenchmarkStreamingRun/stream-8    	       1	 900000000 ns/op	 121000000 B/op	   49000 allocs/op
PASS
ok  	vidperf	12.3s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	p1, ok := got["RunParallel/p1"]
	if !ok {
		t.Fatalf("RunParallel/p1 missing (cpu suffix not stripped?): %v", got)
	}
	if p1.NsPerOp != 1.8e9 {
		t.Errorf("RunParallel/p1 ns/op = %g, want min 1.8e9", p1.NsPerOp)
	}
	if p1.BPerOp != 0 {
		t.Errorf("RunParallel/p1 B/op = %g, want 0 (no -benchmem)", p1.BPerOp)
	}
	st, ok := got["StreamingRun/stream"]
	if !ok {
		t.Fatalf("StreamingRun/stream missing: %v", got)
	}
	if st.NsPerOp != 9e8 || st.BPerOp != 1.2e8 || st.AllocsPerOp != 49000 {
		t.Errorf("StreamingRun/stream = %+v, want min ns=9e8 B=1.2e8 allocs=49000", st)
	}
	if len(got) != 2 {
		t.Errorf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
}

func TestCompareThreshold(t *testing.T) {
	base := map[string]BenchStat{
		"fast":    {NsPerOp: 100, BPerOp: 1000},
		"mem":     {NsPerOp: 100, BPerOp: 1000},
		"missing": {NsPerOp: 100},
	}
	var sb strings.Builder
	// Within threshold: +20% ns, B/op flat.
	n := Compare(&sb, base, map[string]BenchStat{
		"fast": {NsPerOp: 120, BPerOp: 1000},
		"mem":  {NsPerOp: 100, BPerOp: 1100},
		"new":  {NsPerOp: 5},
	}, 0.25)
	if n != 0 {
		t.Fatalf("within-threshold run reported %d regressions:\n%s", n, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "missing") || !strings.Contains(out, "(not run)") {
		t.Errorf("missing benchmark not reported:\n%s", out)
	}
	if !strings.Contains(out, "new") || !strings.Contains(out, "no baseline") {
		t.Errorf("unknown benchmark not reported:\n%s", out)
	}

	// ns/op regression beyond threshold.
	sb.Reset()
	if n := Compare(&sb, base, map[string]BenchStat{
		"fast": {NsPerOp: 130, BPerOp: 1000},
		"mem":  {NsPerOp: 100, BPerOp: 1000},
	}, 0.25); n != 1 {
		t.Errorf("ns/op regression: got %d, want 1\n%s", n, sb.String())
	}

	// B/op regression beyond threshold, ns/op fine.
	sb.Reset()
	if n := Compare(&sb, base, map[string]BenchStat{
		"fast": {NsPerOp: 100, BPerOp: 1000},
		"mem":  {NsPerOp: 100, BPerOp: 1300},
	}, 0.25); n != 1 {
		t.Errorf("B/op regression: got %d, want 1\n%s", n, sb.String())
	}
}

func TestCompareAllocsGate(t *testing.T) {
	base := map[string]BenchStat{
		"mem": {NsPerOp: 100, BPerOp: 1000, AllocsPerOp: 500},
		"old": {NsPerOp: 100}, // recorded without -benchmem: allocs not gated
	}

	// allocs/op regression beyond threshold while ns/op and B/op are flat.
	var sb strings.Builder
	if n := Compare(&sb, base, map[string]BenchStat{
		"mem": {NsPerOp: 100, BPerOp: 1000, AllocsPerOp: 700},
		"old": {NsPerOp: 100, AllocsPerOp: 1e9},
	}, 0.25); n != 1 {
		t.Errorf("allocs/op regression: got %d, want 1\n%s", n, sb.String())
	}

	// Within threshold passes.
	sb.Reset()
	if n := Compare(&sb, base, map[string]BenchStat{
		"mem": {NsPerOp: 100, BPerOp: 1000, AllocsPerOp: 600},
		"old": {NsPerOp: 100},
	}, 0.25); n != 0 {
		t.Errorf("within-threshold allocs reported %d regressions\n%s", n, sb.String())
	}
}
