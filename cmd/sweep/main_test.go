package main

import (
	"os"
	"path/filepath"
	"testing"

	"vidperf/internal/diagnose"
	"vidperf/internal/experiment"
	"vidperf/internal/telemetry"
)

// TestPaperBaselineWithDiagnosisSmoke runs the paper-baseline preset
// through the campaign runner with diagnosis enabled at laptop scale —
// the cmd/sweep path the CI gate also exercises — and checks the
// snapshot contract end to end: the cell file exists, carries the
// diagnosis label, and its per-label session counts cover the campaign.
func TestPaperBaselineWithDiagnosisSmoke(t *testing.T) {
	sp, ok := experiment.Preset("paper-baseline")
	if !ok {
		t.Fatal("paper-baseline preset missing")
	}
	sp.Diagnosis = true
	sp.Scenario.Sessions = 400
	sp.Scenario.Prefixes = 100
	sp.Scenario.Videos = 300
	sp.SketchK = 64

	dir := t.TempDir()
	res, err := experiment.RunCampaign(&sp, experiment.RunOptions{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("paper-baseline expanded to %d cells, want 1", len(res.Cells))
	}
	sn := res.Cells[0].Snapshot
	if sn.Label("diagnosis") != "on" {
		t.Errorf("snapshot labels = %v, want diagnosis=on", sn.Labels)
	}

	sessions := sn.Counter(telemetry.CounterSessions)
	if sessions != 400 {
		t.Fatalf("sessions = %d, want 400", sessions)
	}
	var labelled uint64
	for _, l := range diagnose.Labels() {
		labelled += sn.Counter(telemetry.DiagSessionsKey(l))
	}
	if labelled != sessions {
		t.Fatalf("label counts sum to %d, want %d", labelled, sessions)
	}

	// The written snapshot round-trips and matches the in-memory one.
	path := filepath.Join(dir, res.Cells[0].Cell.FileName())
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	onDisk, err := telemetry.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range diagnose.Labels() {
		key := telemetry.DiagSessionsKey(l)
		if onDisk.Counter(key) != sn.Counter(key) {
			t.Errorf("%s: on-disk %d != in-memory %d", key, onDisk.Counter(key), sn.Counter(key))
		}
	}
}

// TestSummaryHelpersZeroSafe: the table helpers must not divide by zero
// on an empty snapshot (a cell that simulated nothing).
func TestSummaryHelpersZeroSafe(t *testing.T) {
	sn := &telemetry.Snapshot{Schema: telemetry.SnapshotSchema}
	if got := hitRatio(sn); got != 0 {
		t.Errorf("hitRatio(empty) = %v", got)
	}
	if got := retryShare(sn); got != 0 {
		t.Errorf("retryShare(empty) = %v", got)
	}
}
