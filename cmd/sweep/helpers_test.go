package main

import (
	"io"
	"log/slog"
	"strings"
	"testing"

	"vidperf/internal/experiment"
	"vidperf/internal/telemetry"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func TestNewLogger(t *testing.T) {
	for _, format := range []string{"", "text", "json"} {
		if _, err := newLogger(format); err != nil {
			t.Errorf("newLogger(%q): %v", format, err)
		}
	}
	if _, err := newLogger("yaml"); err == nil {
		t.Error("newLogger accepted an unknown format")
	}
}

func TestRatiosOnEmptySnapshot(t *testing.T) {
	sn := &telemetry.Snapshot{}
	if r := hitRatio(sn); r != 0 {
		t.Fatalf("hitRatio of an empty snapshot = %g", r)
	}
	if r := retryShare(sn); r != 0 {
		t.Fatalf("retryShare of an empty snapshot = %g", r)
	}
}

func TestQuantileList(t *testing.T) {
	qs := quantileList()
	if !strings.Contains(qs, "p50") || !strings.Contains(qs, "/") {
		t.Fatalf("quantileList = %q, want a /-separated list including p50", qs)
	}
}

// TestLoadSpec exercises both happy paths of the flag-driven loader; the
// error paths exit the process and are covered by the validation logic
// they delegate to.
func TestLoadSpec(t *testing.T) {
	restoreSpec, restorePreset := *specPath, *preset
	defer func() { *specPath, *preset = restoreSpec, restorePreset }()

	*specPath, *preset = "../../examples/specs/paper-baseline.json", ""
	if sp := loadSpec(discardLogger()); sp.Name == "" {
		t.Fatal("spec file loaded with no name")
	}

	names := experiment.Presets()
	if len(names) == 0 {
		t.Fatal("no built-in presets")
	}
	*specPath, *preset = "", names[0]
	if sp := loadSpec(discardLogger()); sp.Name == "" {
		t.Fatalf("preset %q loaded with no name", names[0])
	}
}

// TestPrintSummary runs a small two-cell campaign and renders its table:
// both the baseline row and a delta row must appear.
func TestPrintSummary(t *testing.T) {
	sp, err := experiment.LoadFile("../../examples/specs/diagnosed-cold-start.json")
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	sp.Scenario.Sessions = 150
	res, err := experiment.RunCampaign(sp, experiment.RunOptions{Workers: 2})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	printSummary(res) // must not panic; rows go to stdout

	base := res.Baseline()
	if base == nil {
		t.Fatal("campaign has no baseline cell")
	}
	if len(res.Cells) < 2 {
		t.Fatalf("campaign ran %d cells, want >= 2 so the delta column renders", len(res.Cells))
	}
	if hitRatio(base.Snapshot) <= 0 {
		t.Fatal("baseline cell has a zero hit ratio")
	}
}
