// Command sweep runs one-factor sensitivity sweeps over the simulator's
// main design knobs and prints how the paper's headline metrics respond —
// useful for checking which findings are robust to the substitution
// choices DESIGN.md documents and which are calibration-sensitive.
//
// Usage:
//
//	sweep [-sessions 2000] [-factor all|zipf|ram|retry|abr|buffer] [-parallel 0]
package main

import (
	"flag"
	"fmt"
	"log"

	"vidperf/internal/analysis"
	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/session"
	"vidperf/internal/stats"
	"vidperf/internal/workload"
)

var (
	sessions = flag.Int("sessions", 2000, "sessions per sweep point")
	factor   = flag.String("factor", "all", "which factor to sweep (all|zipf|ram|retry|abr|buffer)")
	parallel = flag.Int("parallel", 0, "max PoP shards simulated concurrently per sweep point (0 = GOMAXPROCS)")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	flag.Parse()

	switch *factor {
	case "all":
		sweepZipf()
		sweepRAM()
		sweepRetry()
		sweepABR()
		sweepBuffer()
	case "zipf":
		sweepZipf()
	case "ram":
		sweepRAM()
	case "retry":
		sweepRetry()
	case "abr":
		sweepABR()
	case "buffer":
		sweepBuffer()
	default:
		log.Fatalf("unknown factor %q", *factor)
	}
}

func baseScenario(seed uint64) workload.Scenario {
	return workload.Scenario{
		Seed:        seed,
		NumSessions: *sessions,
		NumPrefixes: 400,
		Catalog:     catalog.Config{NumVideos: 1500},
		Parallelism: *parallel,
	}
}

func run(sc workload.Scenario) *core.Dataset {
	ds, err := session.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	return core.FilterProxies(ds, core.ProxyFilterConfig{}).Kept
}

func sweepZipf() {
	fmt.Println("== popularity skew (Zipf exponent) vs cache behaviour ==")
	fmt.Printf("%-8s %12s %14s %16s\n", "alpha", "top10 share", "miss rate %", "retry share %")
	for _, a := range []float64{0.6, 0.8, 0.9, 1.0, 1.1} {
		sc := baseScenario(11)
		sc.Catalog.ZipfExponent = a
		ds := run(sc)
		st := analysis.ComputeDatasetStats(ds)
		br := analysis.BreakdownCDNLatency(ds)
		fmt.Printf("%-8.1f %11.1f%% %13.2f%% %15.1f%%\n",
			a, 100*st.Top10VideoShare, 100*st.OverallMissRate, 100*br.RetryTimerChunkShare)
	}
	fmt.Println()
}

func sweepRAM() {
	fmt.Println("== server RAM cache size vs the retry-timer finding ==")
	fmt.Printf("%-10s %16s %14s %14s\n", "RAM", "retry share %", "med hit ms", "med miss ms")
	for _, gb := range []float64{0.25, 0.5, 1, 2, 4} {
		sc := baseScenario(12)
		sc.Fleet.Server.RAMBytes = int64(gb * float64(1<<30))
		ds := run(sc)
		br := analysis.BreakdownCDNLatency(ds)
		fmt.Printf("%-9.2fG %15.1f%% %14.2f %14.1f\n",
			gb, 100*br.RetryTimerChunkShare, br.MedianHitMS, br.MedianMissMS)
	}
	fmt.Println()
}

func sweepRetry() {
	fmt.Println("== ATS open-read retry timer vs Dread (ablation A2) ==")
	fmt.Printf("%-10s %14s %14s\n", "timer ms", "p75 Dread ms", "p95 Dread ms")
	for _, ms := range []float64{10, 5, 2, 0.5} {
		sc := baseScenario(13)
		sc.Fleet.Server.OpenRetryMS = ms
		ds := run(sc)
		br := analysis.BreakdownCDNLatency(ds)
		fmt.Printf("%-10.1f %14.2f %14.2f\n",
			ms, br.Dread.Quantile(0.75), br.Dread.Quantile(0.95))
	}
	fmt.Println()
}

func sweepABR() {
	fmt.Println("== ABR algorithm vs QoE (ablation A6) ==")
	fmt.Printf("%-24s %12s %12s\n", "abr", "kbps(avg)", "rebuf %")
	for _, name := range []string{"hybrid", "buffer-based", "rate-smoothed", "rate-instant", "server-signal"} {
		sc := baseScenario(14)
		sc.ABRName = name
		ds := run(sc)
		var br, rb stats.Summary
		for i := range ds.Sessions {
			br.Add(ds.Sessions[i].AvgBitrateKbps)
			rb.Add(ds.Sessions[i].RebufferRate)
		}
		fmt.Printf("%-24s %12.0f %11.2f%%\n", name, br.Mean(), 100*rb.Mean())
	}
	fmt.Println()
}

func sweepBuffer() {
	fmt.Println("== player buffer high-water mark vs re-buffering ==")
	fmt.Printf("%-10s %12s %16s\n", "target s", "rebuf %", "startup ms(med)")
	for _, s := range []float64{10, 18, 30, 60} {
		sc := baseScenario(15)
		sc.MaxBufferSec = s
		ds := run(sc)
		var rb stats.Summary
		var st []float64
		for i := range ds.Sessions {
			rb.Add(ds.Sessions[i].RebufferRate)
			if v := ds.Sessions[i].StartupMS; v == v {
				st = append(st, v)
			}
		}
		fmt.Printf("%-10.0f %11.2f%% %16.0f\n", s, 100*rb.Mean(), stats.Median(st))
	}
	fmt.Println()
}
