// Command sweep runs a declarative experiment campaign: it expands a
// spec (a JSON file from examples/specs/ or a built-in preset) into its
// cell grid, executes every cell through the streaming-telemetry
// pipeline with bounded parallelism, and prints a per-cell summary table
// plus the A/B deltas of each cell against the spec's baseline cell.
// The hardcoded one-factor sweeps this command used to contain now live
// as specs: examples/specs/zipf-sweep.json expands to exactly the
// scenarios the old -factor zipf code built (internal/experiment's
// parity tests pin every cell's scenario and the runner's snapshot
// bytes). Reported metrics differ from the old sweep in one declared
// way: they come from the streaming telemetry pipeline, which keeps no
// joined dataset and therefore cannot apply the §3 proxy preprocessing
// the old sweep ran before measuring.
//
// Usage:
//
//	sweep -spec examples/specs/zipf-sweep.json [-out snapshots/] [-workers 2]
//	sweep -preset cache-policy-matrix [-sessions 1000]
//	sweep -list
//
// With -out each cell writes its labelled snapshot to <dir>/<cell>.json
// alongside a manifest.json recording the generating spec (name,
// content hash, cell list, seeds) — the provenance record `analyze
// ingest` uses to fold the whole directory into a campaign store. A
// directory already claimed by a different spec's manifest is refused
// rather than silently overwritten. The snapshots are also directly
// readable by `analyze snapshot`, `analyze compare`, `analyze
// diagnose`, and (for specs with a "timeline" block) `analyze
// windows`. -sessions/-parallel
// override every cell (the old sweep's laptop-scale knobs); -full-deltas
// appends the complete per-metric delta table for every non-baseline
// cell instead of the compact summary columns. -cpuprofile/-memprofile
// write runtime/pprof profiles covering the whole campaign (see
// ARCHITECTURE.md, "Performance model", for the profiling workflow).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync"

	"vidperf/internal/analysis"
	"vidperf/internal/experiment"
	"vidperf/internal/figures"
	"vidperf/internal/profiling"
	"vidperf/internal/telemetry"
)

var (
	specPath   = flag.String("spec", "", "experiment spec file (JSON; see examples/specs/)")
	preset     = flag.String("preset", "", "built-in spec name (see -list); alternative to -spec")
	list       = flag.Bool("list", false, "list built-in presets and exit")
	outDir     = flag.String("out", "", "directory for per-cell snapshot files (omit to keep snapshots in memory)")
	workers    = flag.Int("workers", 1, "max cells simulated concurrently")
	sessions   = flag.Int("sessions", 0, "override every cell's session count (0 = per spec)")
	parallel   = flag.Int("parallel", 0, "override every cell's shard parallelism (0 = per spec)")
	fullDeltas = flag.Bool("full-deltas", false, "print the full per-metric delta table for each non-baseline cell")
	cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file (go tool pprof)")
	memProfile = flag.String("memprofile", "", "write an allocation profile to this file on successful exit (go tool pprof)")
	logFormat  = flag.String("log-format", "text", "stderr log format: text or json")
)

func main() {
	flag.Parse()
	log, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if len(flag.Args()) > 0 {
		fatal(log, "invalid flags",
			slog.String("err", fmt.Sprintf("unexpected arguments %q (all options are flags)", flag.Args())))
	}

	if *list {
		for _, name := range experiment.Presets() {
			sp, _ := experiment.Preset(name)
			fmt.Printf("%-22s %s\n", name, sp.Description)
		}
		return
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(log, "profiling setup failed", slog.Any("err", err))
	}
	// Runs on the normal exit path; fatal error paths (os.Exit) skip it,
	// which is fine — a campaign that died produced no profile worth
	// keeping.
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Error("profiling stop failed", slog.Any("err", err))
		}
	}()

	sp := loadSpec(log)
	// Cell scenarios inherit the spec scenario, so the laptop-scale
	// overrides apply once here and reach every cell through Expand.
	if *sessions > 0 {
		sp.Scenario.Sessions = *sessions
	}
	if *parallel > 0 {
		sp.Scenario.Parallel = *parallel
	}
	cells, err := sp.Expand()
	if err != nil {
		fatal(log, "spec expansion failed", slog.Any("err", err))
	}

	log.Info("campaign starting",
		slog.String("campaign", sp.Name), slog.Int("cells", len(cells)),
		slog.Int("workers", *workers), slog.Int("sketch_k", sp.EffectiveSketchK()))
	var mu sync.Mutex
	done := 0
	res, err := experiment.RunCampaign(sp, experiment.RunOptions{
		Workers: *workers,
		OutDir:  *outDir,
		Progress: func(cell experiment.Cell, err error) {
			mu.Lock()
			done++
			n := done
			mu.Unlock()
			if err != nil {
				log.Error("cell failed", slog.Int("n", n), slog.Int("cells", len(cells)),
					slog.String("cell", cell.Name), slog.Any("err", err))
				return
			}
			log.Info("cell done", slog.Int("n", n), slog.Int("cells", len(cells)),
				slog.String("cell", cell.Name))
		},
	})
	if err != nil {
		fatal(log, "campaign failed", slog.Any("err", err))
	}

	printSummary(res)
	if *fullDeltas {
		base := res.Baseline()
		for i := range res.Cells {
			if i == res.BaselineIndex {
				continue
			}
			fmt.Println(figures.StreamCompare(base.Snapshot, res.Cells[i].Snapshot).Render())
		}
	}
	if *outDir != "" {
		log.Info("wrote snapshots", slog.Int("cells", len(res.Cells)), slog.String("dir", *outDir),
			slog.String("manifest", experiment.ManifestFileName))
	}
}

func loadSpec(log *slog.Logger) *experiment.Spec {
	switch {
	case *specPath != "" && *preset != "":
		fatal(log, "invalid flags", slog.String("err", "-spec and -preset are mutually exclusive"))
	case *specPath != "":
		sp, err := experiment.LoadFile(*specPath)
		if err != nil {
			fatal(log, "spec load failed", slog.Any("err", err))
		}
		return sp
	case *preset != "":
		sp, ok := experiment.Preset(*preset)
		if !ok {
			fatal(log, "unknown preset", slog.String("preset", *preset),
				slog.String("have", strings.Join(experiment.Presets(), ", ")))
		}
		return &sp
	}
	fatal(log, "invalid flags", slog.String("err", "one of -spec, -preset, or -list is required"))
	return nil
}

// printSummary renders the per-cell table: headline metrics per cell
// plus compact deltas against the baseline cell.
func printSummary(res *experiment.CampaignResult) {
	base := res.Baseline()
	fmt.Printf("\n== campaign %s: %d cells, baseline %s ==\n",
		res.Spec.Name, len(res.Cells), base.Cell.Name)
	fmt.Printf("%-34s %10s %9s %8s %8s %11s %10s %9s\n",
		"cell", "seed", "sessions", "hit%", "retry%", "startup p50", "rebuf p90", "Δhit%")
	for i := range res.Cells {
		c := &res.Cells[i]
		sn := c.Snapshot
		marker := ""
		dHit := "-"
		if i == res.BaselineIndex {
			marker = " *"
		} else {
			dHit = fmt.Sprintf("%+.2f", 100*(hitRatio(sn)-hitRatio(base.Snapshot)))
		}
		fmt.Printf("%-34s %10d %9d %8.2f %8.2f %11.0f %10.4f %9s%s\n",
			c.Cell.Name, c.Cell.Scenario.Seed,
			sn.Counter(telemetry.CounterSessions),
			100*hitRatio(sn),
			100*retryShare(sn),
			sn.Sketch(telemetry.MetricStartupMS).Quantile(0.5),
			sn.Sketch(telemetry.MetricRebufferRate).Quantile(0.9),
			dHit, marker)
	}
	fmt.Println("(* baseline; Δ columns are candidate − baseline. analysis quantiles:",
		quantileList(), "— run with -full-deltas or analyze compare for the full tables)")
}

func hitRatio(sn *telemetry.Snapshot) float64 {
	chunks := sn.Counter(telemetry.CounterChunks)
	if chunks == 0 {
		return 0
	}
	return float64(sn.Counter(telemetry.CounterChunksHit)) / float64(chunks)
}

func retryShare(sn *telemetry.Snapshot) float64 {
	chunks := sn.Counter(telemetry.CounterChunks)
	if chunks == 0 {
		return 0
	}
	return float64(sn.Counter(telemetry.CounterChunksRetryTimer)) / float64(chunks)
}

func quantileList() string {
	parts := make([]string, len(analysis.CompareQuantiles))
	for i, q := range analysis.CompareQuantiles {
		parts[i] = fmt.Sprintf("p%.0f", q*100)
	}
	return strings.Join(parts, "/")
}
