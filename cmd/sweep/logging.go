package main

import (
	"fmt"
	"log/slog"
	"os"
)

// newLogger builds the command's structured logger on stderr: the
// human-oriented text handler by default, or JSON for machine-parsed
// deployments (-log-format=json) — serve mode's logs line up with the
// rest of an observability pipeline that way. Timestamps stay on; the
// level floor is Info.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("-log-format must be text or json (got %q)", format)
}

// fatal logs the error at Error level and exits non-zero — the
// structured-logging counterpart of log.Fatal.
func fatal(log *slog.Logger, msg string, args ...any) {
	log.Error(msg, args...)
	os.Exit(1)
}
