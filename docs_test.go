// docs_test.go is the documentation gate: relative markdown links must
// resolve, and every internal package must carry a package comment.
// CI runs these in its docs job; they also run with plain `go test`.
package vidperf

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markdownFiles lists every tracked *.md in the repo (skipping
// generated/vendored trees; none exist today, but be explicit).
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("no markdown files found")
	}
	return out
}

var mdLink = regexp.MustCompile(`\]\(([^)#\s]+)(#[^)\s]*)?\)`)

// TestMarkdownLinksResolve: every relative link target in every *.md
// must exist on disk (external URLs are skipped — the gate must not
// depend on the network).
func TestMarkdownLinksResolve(t *testing.T) {
	for _, md := range markdownFiles(t) {
		body, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (%s does not exist)", md, target, resolved)
			}
		}
	}
}

// TestInternalPackagesHaveComments: every package under internal/ (and
// every command under cmd/) must carry a package comment — the
// satellite doc-debt rule, ratcheted so new packages cannot ship bare.
func TestInternalPackagesHaveComments(t *testing.T) {
	for _, root := range []string{"internal", "cmd"} {
		dirs, err := os.ReadDir(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dirs {
			if !d.IsDir() {
				continue
			}
			dir := filepath.Join(root, d.Name())
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", dir, err)
			}
			for name, pkg := range pkgs {
				documented := false
				for _, f := range pkg.Files {
					if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
						documented = true
						break
					}
				}
				if !documented {
					t.Errorf("package %s (%s) has no package comment", name, dir)
				}
			}
		}
	}
}
