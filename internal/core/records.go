// Package core is the paper's contribution as a reusable library: the
// end-to-end, per-chunk instrumentation schema (player delivery, player
// rendering, CDN application layer, CDN TCP layer — Tables 2 and 3), the
// session join keyed by (sessionID, chunkID), the §3 proxy-filtering
// preprocessing, and the §4 diagnosis methods (Eq. 1 latency
// decomposition, Eq. 2 performance score, Eq. 4 download-stack outlier
// detection, Eq. 5 persistent download-stack bound).
package core

import (
	"fmt"
)

// ChunkRecord is the joined per-chunk view of one HTTP chunk fetch,
// combining the player-side and CDN-side measurements that share a
// (SessionID, ChunkID) key. Fields mirror the paper's Table 2.
type ChunkRecord struct {
	SessionID uint64
	ChunkID   int // 0-based position within the session

	// Player, delivery path.
	DFBms       float64 // first-byte delay as the player sees it
	DLBms       float64 // last-byte delay (first byte -> last byte)
	BitrateKbps int
	SizeBytes   int64
	DurationSec float64 // seconds of video in the chunk (τ)

	// Player, rendering path.
	BufCount       int     // rebuffering events charged to this chunk
	BufDurMS       float64 // rebuffering time charged to this chunk
	Visible        bool    // player visibility during playout
	AvgFPS         float64
	DroppedFrames  int
	TotalFrames    int
	HardwareRender bool

	// CDN, application layer.
	DwaitMS    float64
	DopenMS    float64
	DreadMS    float64
	DBEms      float64
	CacheHit   bool   // served without a backend fetch
	CacheLevel string // "ram", "disk", "miss"
	RetryTimer bool   // the ATS open-read retry timer fired

	// CDN, TCP layer (kernel snapshot at chunk completion plus per-chunk
	// deltas derived from the 500 ms sampling).
	CWND      int
	SRTTms    float64
	SRTTVarMS float64
	MSS       int
	RetxTotal int // cumulative connection retransmissions at chunk end
	SegsSent  int // segments sent for this chunk
	SegsLost  int // segments retransmitted for this chunk

	// ProxyCohort is the session's 1-based shared-egress cohort
	// (internal/proxypop); 0 for direct sessions.
	ProxyCohort int

	// Model ground truth, present only in simulated traces. Analyses must
	// not read these; tests use them to validate the detection methods.
	TruthDDSms     float64
	TruthTransient bool
}

// LossRate returns the chunk's retransmission rate.
func (c ChunkRecord) LossRate() float64 {
	if c.SegsSent == 0 {
		return 0
	}
	return float64(c.SegsLost) / float64(c.SegsSent)
}

// DCDNms returns the CDN service latency Dwait + Dopen + Dread.
func (c ChunkRecord) DCDNms() float64 { return c.DwaitMS + c.DopenMS + c.DreadMS }

// ServerLatencyMS returns the total server-side latency D_CDN + D_BE.
func (c ChunkRecord) ServerLatencyMS() float64 { return c.DCDNms() + c.DBEms }

// RTT0UpperBoundMS is the Eq. 1 rearrangement the paper uses as an upper
// bound on the chunk's initial network round trip:
// D_FB − (D_CDN + D_BE) = rtt0 + D_DS >= rtt0.
func (c ChunkRecord) RTT0UpperBoundMS() float64 {
	v := c.DFBms - c.DCDNms() - c.DBEms
	if v < 0 {
		return 0
	}
	return v
}

// BaselineRTTSampleMS is the per-chunk baseline latency sample used in
// §4.2: min(SRTT, rtt0-upper-bound), filtering out self-loading inflation.
func (c ChunkRecord) BaselineRTTSampleMS() float64 {
	rtt0 := c.RTT0UpperBoundMS()
	if c.SRTTms > 0 && c.SRTTms < rtt0 {
		return c.SRTTms
	}
	return rtt0
}

// DownloadRateSecPerSec is the paper's §4.4 chunk download rate
// τ / (D_FB + D_LB), in seconds of video per wall-clock second.
func (c ChunkRecord) DownloadRateSecPerSec() float64 {
	wall := (c.DFBms + c.DLBms) / 1000
	if wall <= 0 {
		return 0
	}
	return c.DurationSec / wall
}

// PerfScore is Eq. 2: τ / (D_FB + D_LB). Scores below 1 mark chunks that
// drain the playback buffer.
func (c ChunkRecord) PerfScore() float64 { return c.DownloadRateSecPerSec() }

// InstantThroughputKbps is the player's naive per-chunk throughput
// estimate: chunk bits / D_LB — the quantity download-stack buffering
// inflates.
func (c ChunkRecord) InstantThroughputKbps() float64 {
	if c.DLBms <= 0 {
		return 0
	}
	return float64(c.SizeBytes) * 8 / c.DLBms
}

// ConnThroughputKbps is the server-side Eq. 3 estimate MSS·CWND/SRTT.
func (c ChunkRecord) ConnThroughputKbps() float64 {
	if c.SRTTms <= 0 {
		return 0
	}
	return float64(c.MSS*c.CWND) * 8 / c.SRTTms
}

// DroppedFrac returns the chunk's dropped-frame fraction.
func (c ChunkRecord) DroppedFrac() float64 {
	if c.TotalFrames == 0 {
		return 0
	}
	return float64(c.DroppedFrames) / float64(c.TotalFrames)
}

// SessionRecord is the per-session metadata and QoE summary (Table 3).
type SessionRecord struct {
	SessionID uint64

	// Client identity as the CDN and the beacon pipeline each see it.
	HTTPClientIP   string // source IP of the HTTP requests at the CDN
	BeaconIP       string // IP reported by the player beacon
	UserAgent      string
	OS             string
	Browser        string
	PopularBrowser bool

	// Content.
	VideoID     int
	VideoRank   int
	VideoLenSec float64
	NumChunks   int // chunks actually fetched

	// Topology.
	PrefixID   int
	Prefix     string // "/24" label
	Country    string
	US         bool
	PoP        int
	ServerID   int
	OrgName    string  // ISP or enterprise label
	OrgType    string  // "residential" | "enterprise" | "small-business"
	ConnType   string  // access technology label
	DistanceKM float64 // client to serving PoP

	// ArrivalMS is the session's virtual arrival time within the
	// campaign's arrival window. Windowed telemetry (internal/telemetry)
	// charges the session to the timeline window containing it.
	ArrivalMS float64

	// QoE.
	StartupMS      float64
	RebufCount     int
	RebufDurMS     float64
	RebufferRate   float64 // fraction of session time stalled
	AvgBitrateKbps float64
	PlayedSec      float64

	// TCP summary over the session's 500 ms kernel samples.
	SRTTMinMS  float64
	SRTTMeanMS float64
	SRTTStdMS  float64
	SRTTCV     float64
	RetxRate   float64 // lost/sent over the whole session
	HadLoss    bool

	// Client environment (from the beacon).
	GPU      bool
	CPUCores int
	CPULoad  float64

	// Live-mode summary (internal/live); zero for VoD sessions.
	// LiveEdgeLagMS is the total time the session spent waiting on the
	// publish clock — stalls caused by the medium, not the delivery path.
	Live          bool
	LiveChannel   int // channel joined at arrival
	LiveJoinChunk int // absolute channel chunk playback started at
	LiveSwitches  int // mid-stream channel switches
	LiveEdgeLagMS float64

	// Shared-egress summary (internal/proxypop); zero for direct
	// sessions. Proxied and ProxyCohort are model ground truth —
	// detection code (internal/proxydetect, §3 preprocessing) must not
	// read them; they exist so tests can score the detectors.
	Proxied     bool
	ProxyCohort int // 1-based cohort ID

	// Filled by preprocessing.
	ProxySuspected bool
}

// RecordSink consumes finished sessions as a runner produces them. It is
// the seam between simulation and aggregation: a Dataset sink materializes
// every record for the exact batch analyses, while a streaming sink (e.g.
// internal/telemetry's Accumulator) folds each session into bounded-memory
// aggregates and discards it.
//
// ConsumeSession receives the session record and its chunks in ChunkID
// order. The chunks slice is valid only for the duration of the call: the
// caller recycles the backing array for later sessions, so sinks must not
// mutate it and must copy (not alias) anything they keep — Dataset's
// append of the chunk values does exactly that. Implementations need not
// be safe for concurrent use — the sharded runner gives every shard its
// own sink.
type RecordSink interface {
	ConsumeSession(s SessionRecord, chunks []ChunkRecord)
}

// TeeSink fans one record stream out to several sinks in order, letting a
// run feed an exact Dataset and a streaming aggregate simultaneously
// (which is how the parity tests compare the two paths on identical data).
func TeeSink(sinks ...RecordSink) RecordSink { return teeSink(sinks) }

type teeSink []RecordSink

func (t teeSink) ConsumeSession(s SessionRecord, chunks []ChunkRecord) {
	for _, sink := range t {
		sink.ConsumeSession(s, chunks)
	}
}

// Dataset is a joined trace: one SessionRecord per session and its
// ChunkRecords in (SessionID, ChunkID) order.
type Dataset struct {
	Sessions []SessionRecord
	Chunks   []ChunkRecord

	byID map[uint64]int // session index
}

// RecordReserver is optionally implemented by sinks that can pre-size
// their storage. The sharded runner calls it right after building a
// shard's sink with the shard's session count and planned chunk total
// (an upper bound — abandonment shortens sessions), which spares a
// materializing sink the incremental append growth.
type RecordReserver interface {
	ReserveRecords(sessions, chunks int)
}

// ConsumeSession implements RecordSink by appending the records; the
// canonical order is restored by Merge/SortCanonical afterwards.
func (d *Dataset) ConsumeSession(s SessionRecord, chunks []ChunkRecord) {
	d.Sessions = append(d.Sessions, s)
	d.Chunks = append(d.Chunks, chunks...)
}

// ReserveRecords implements RecordReserver: it grows the session and
// chunk buffers once, to their final (or slightly over-estimated) size.
func (d *Dataset) ReserveRecords(sessions, chunks int) {
	if need := len(d.Sessions) + sessions; cap(d.Sessions) < need {
		s := make([]SessionRecord, len(d.Sessions), need)
		copy(s, d.Sessions)
		d.Sessions = s
	}
	if need := len(d.Chunks) + chunks; cap(d.Chunks) < need {
		c := make([]ChunkRecord, len(d.Chunks), need)
		copy(c, d.Chunks)
		d.Chunks = c
	}
}

// Index builds the session lookup table; call after mutating Sessions.
func (d *Dataset) Index() {
	d.byID = make(map[uint64]int, len(d.Sessions))
	for i := range d.Sessions {
		d.byID[d.Sessions[i].SessionID] = i
	}
}

// Session returns the session record for id, or nil.
func (d *Dataset) Session(id uint64) *SessionRecord {
	if d.byID == nil {
		d.Index()
	}
	if i, ok := d.byID[id]; ok {
		return &d.Sessions[i]
	}
	return nil
}

// ChunksBySession groups chunk indices by session ID, preserving order.
func (d *Dataset) ChunksBySession() map[uint64][]int {
	m := make(map[uint64][]int, len(d.Sessions))
	for i := range d.Chunks {
		m[d.Chunks[i].SessionID] = append(m[d.Chunks[i].SessionID], i)
	}
	return m
}

// String summarizes the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("dataset{%d sessions, %d chunks}", len(d.Sessions), len(d.Chunks))
}
