package core

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteJSONL streams the dataset as JSON lines: one {"session": ...} or
// {"chunk": ...} object per line, sessions first. The format is the
// trace-exchange format between cmd/vodsim and cmd/analyze.
func WriteJSONL(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range d.Sessions {
		s := &d.Sessions[i]
		if err := enc.Encode(jsonlLine{Session: &jsonSession{s, jsonFloat(s.StartupMS)}}); err != nil {
			return fmt.Errorf("core: write session: %w", err)
		}
	}
	for i := range d.Chunks {
		if err := enc.Encode(jsonlLine{Chunk: &d.Chunks[i]}); err != nil {
			return fmt.Errorf("core: write chunk: %w", err)
		}
	}
	return bw.Flush()
}

type jsonlLine struct {
	Session *jsonSession `json:"session,omitempty"`
	Chunk   *ChunkRecord `json:"chunk,omitempty"`
}

// jsonSession shadows SessionRecord.StartupMS with a null-tolerant float:
// sessions that never started playback carry StartupMS = NaN, which JSON
// cannot represent, so the wire format uses null instead.
type jsonSession struct {
	*SessionRecord
	StartupMS jsonFloat
}

type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// ReadJSONL loads a dataset written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var line jsonlLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("core: read trace: %w", err)
		}
		switch {
		case line.Session != nil:
			rec := SessionRecord{}
			if line.Session.SessionRecord != nil {
				rec = *line.Session.SessionRecord
			}
			rec.StartupMS = float64(line.Session.StartupMS)
			d.Sessions = append(d.Sessions, rec)
		case line.Chunk != nil:
			d.Chunks = append(d.Chunks, *line.Chunk)
		}
	}
	d.Index()
	return d, nil
}

// WriteChunksCSV exports the chunk table for external tooling
// (spreadsheets, pandas). Ground-truth columns are intentionally omitted.
func WriteChunksCSV(w io.Writer, chunks []ChunkRecord) error {
	cw := csv.NewWriter(w)
	header := []string{
		"session_id", "chunk_id", "dfb_ms", "dlb_ms", "bitrate_kbps",
		"size_bytes", "duration_sec", "dwait_ms", "dopen_ms", "dread_ms",
		"dbe_ms", "cache_hit", "cache_level", "retry_timer",
		"cwnd", "srtt_ms", "srttvar_ms", "mss", "retx_total",
		"segs_sent", "segs_lost", "buf_count", "buf_dur_ms",
		"visible", "avg_fps", "dropped_frames", "total_frames", "hw_render",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range chunks {
		c := &chunks[i]
		rec := []string{
			strconv.FormatUint(c.SessionID, 10),
			strconv.Itoa(c.ChunkID),
			f(c.DFBms), f(c.DLBms),
			strconv.Itoa(c.BitrateKbps),
			strconv.FormatInt(c.SizeBytes, 10),
			f(c.DurationSec),
			f(c.DwaitMS), f(c.DopenMS), f(c.DreadMS), f(c.DBEms),
			b(c.CacheHit), c.CacheLevel, b(c.RetryTimer),
			strconv.Itoa(c.CWND), f(c.SRTTms), f(c.SRTTVarMS),
			strconv.Itoa(c.MSS), strconv.Itoa(c.RetxTotal),
			strconv.Itoa(c.SegsSent), strconv.Itoa(c.SegsLost),
			strconv.Itoa(c.BufCount), f(c.BufDurMS),
			b(c.Visible), f(c.AvgFPS),
			strconv.Itoa(c.DroppedFrames), strconv.Itoa(c.TotalFrames),
			b(c.HardwareRender),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteSessionsCSV exports the session table.
func WriteSessionsCSV(w io.Writer, sessions []SessionRecord) error {
	cw := csv.NewWriter(w)
	header := []string{
		"session_id", "user_agent", "os", "browser", "video_id", "video_rank",
		"video_len_sec", "num_chunks", "prefix", "country", "us", "pop",
		"server_id", "org_name", "org_type", "conn_type", "distance_km",
		"startup_ms", "rebuf_count", "rebuf_dur_ms", "rebuffer_rate",
		"avg_bitrate_kbps", "played_sec", "srtt_min_ms", "srtt_mean_ms",
		"srtt_std_ms", "srtt_cv", "retx_rate", "had_loss",
		"gpu", "cpu_cores", "cpu_load",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range sessions {
		s := &sessions[i]
		rec := []string{
			strconv.FormatUint(s.SessionID, 10),
			s.UserAgent, s.OS, s.Browser,
			strconv.Itoa(s.VideoID), strconv.Itoa(s.VideoRank),
			f(s.VideoLenSec), strconv.Itoa(s.NumChunks),
			s.Prefix, s.Country, b(s.US), strconv.Itoa(s.PoP),
			strconv.Itoa(s.ServerID), s.OrgName, s.OrgType, s.ConnType,
			f(s.DistanceKM), f(s.StartupMS),
			strconv.Itoa(s.RebufCount), f(s.RebufDurMS), f(s.RebufferRate),
			f(s.AvgBitrateKbps), f(s.PlayedSec),
			f(s.SRTTMinMS), f(s.SRTTMeanMS), f(s.SRTTStdMS), f(s.SRTTCV),
			f(s.RetxRate), b(s.HadLoss),
			b(s.GPU), strconv.Itoa(s.CPUCores), f(s.CPULoad),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func b(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
