package core

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteJSONL streams the dataset as JSON lines: one {"session": ...} or
// {"chunk": ...} object per line, sessions first. The format is the
// trace-exchange format between cmd/vodsim and cmd/analyze.
func WriteJSONL(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range d.Sessions {
		s := &d.Sessions[i]
		if err := enc.Encode(jsonlLine{Session: &jsonSession{s, jsonFloat(s.StartupMS)}}); err != nil {
			return fmt.Errorf("core: write session: %w", err)
		}
	}
	for i := range d.Chunks {
		if err := enc.Encode(jsonlLine{Chunk: &d.Chunks[i]}); err != nil {
			return fmt.Errorf("core: write chunk: %w", err)
		}
	}
	return bw.Flush()
}

type jsonlLine struct {
	Session *jsonSession `json:"session,omitempty"`
	Chunk   *ChunkRecord `json:"chunk,omitempty"`
}

// jsonSession shadows SessionRecord.StartupMS with a null-tolerant float:
// sessions that never started playback carry StartupMS = NaN, which JSON
// cannot represent, so the wire format uses null instead.
type jsonSession struct {
	*SessionRecord
	StartupMS jsonFloat
}

type jsonFloat float64

func (f jsonFloat) MarshalJSON() ([]byte, error) {
	if math.IsNaN(float64(f)) {
		return []byte("null"), nil
	}
	return json.Marshal(float64(f))
}

func (f *jsonFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = jsonFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = jsonFloat(v)
	return nil
}

// ReadJSONL loads a dataset written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Dataset, error) {
	d := &Dataset{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var line jsonlLine
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("core: read trace: %w", err)
		}
		switch {
		case line.Session != nil:
			rec := SessionRecord{}
			if line.Session.SessionRecord != nil {
				rec = *line.Session.SessionRecord
			}
			rec.StartupMS = float64(line.Session.StartupMS)
			d.Sessions = append(d.Sessions, rec)
		case line.Chunk != nil:
			d.Chunks = append(d.Chunks, *line.Chunk)
		}
	}
	d.Index()
	return d, nil
}

// WriteChunksCSV exports the chunk table for external tooling
// (spreadsheets, pandas). Ground-truth columns are intentionally omitted.
func WriteChunksCSV(w io.Writer, chunks []ChunkRecord) error {
	cw := csv.NewWriter(w)
	header := []string{
		"session_id", "chunk_id", "dfb_ms", "dlb_ms", "bitrate_kbps",
		"size_bytes", "duration_sec", "dwait_ms", "dopen_ms", "dread_ms",
		"dbe_ms", "cache_hit", "cache_level", "retry_timer",
		"cwnd", "srtt_ms", "srttvar_ms", "mss", "retx_total",
		"segs_sent", "segs_lost", "buf_count", "buf_dur_ms",
		"visible", "avg_fps", "dropped_frames", "total_frames", "hw_render",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range chunks {
		c := &chunks[i]
		rec := []string{
			strconv.FormatUint(c.SessionID, 10),
			strconv.Itoa(c.ChunkID),
			f(c.DFBms), f(c.DLBms),
			strconv.Itoa(c.BitrateKbps),
			strconv.FormatInt(c.SizeBytes, 10),
			f(c.DurationSec),
			f(c.DwaitMS), f(c.DopenMS), f(c.DreadMS), f(c.DBEms),
			b(c.CacheHit), c.CacheLevel, b(c.RetryTimer),
			strconv.Itoa(c.CWND), f(c.SRTTms), f(c.SRTTVarMS),
			strconv.Itoa(c.MSS), strconv.Itoa(c.RetxTotal),
			strconv.Itoa(c.SegsSent), strconv.Itoa(c.SegsLost),
			strconv.Itoa(c.BufCount), f(c.BufDurMS),
			b(c.Visible), f(c.AvgFPS),
			strconv.Itoa(c.DroppedFrames), strconv.Itoa(c.TotalFrames),
			b(c.HardwareRender),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sessionsCSVHeader is the column order shared by WriteSessionsCSV and
// ReadSessionsCSV.
var sessionsCSVHeader = []string{
	"session_id", "user_agent", "os", "browser", "video_id", "video_rank",
	"video_len_sec", "num_chunks", "prefix", "country", "us", "pop",
	"server_id", "org_name", "org_type", "conn_type", "distance_km",
	"startup_ms", "rebuf_count", "rebuf_dur_ms", "rebuffer_rate",
	"avg_bitrate_kbps", "played_sec", "srtt_min_ms", "srtt_mean_ms",
	"srtt_std_ms", "srtt_cv", "retx_rate", "had_loss",
	"gpu", "cpu_cores", "cpu_load",
}

// WriteSessionsCSV exports the session table. Sessions that never started
// playback carry StartupMS = NaN; they serialize as an empty startup_ms
// field, matching the JSONL sink's null.
func WriteSessionsCSV(w io.Writer, sessions []SessionRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sessionsCSVHeader); err != nil {
		return err
	}
	for i := range sessions {
		s := &sessions[i]
		rec := []string{
			strconv.FormatUint(s.SessionID, 10),
			s.UserAgent, s.OS, s.Browser,
			strconv.Itoa(s.VideoID), strconv.Itoa(s.VideoRank),
			f(s.VideoLenSec), strconv.Itoa(s.NumChunks),
			s.Prefix, s.Country, b(s.US), strconv.Itoa(s.PoP),
			strconv.Itoa(s.ServerID), s.OrgName, s.OrgType, s.ConnType,
			f(s.DistanceKM), fOrEmpty(s.StartupMS),
			strconv.Itoa(s.RebufCount), f(s.RebufDurMS), f(s.RebufferRate),
			f(s.AvgBitrateKbps), f(s.PlayedSec),
			f(s.SRTTMinMS), f(s.SRTTMeanMS), f(s.SRTTStdMS), f(s.SRTTCV),
			f(s.RetxRate), b(s.HadLoss),
			b(s.GPU), strconv.Itoa(s.CPUCores), f(s.CPULoad),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSessionsCSV loads a session table written by WriteSessionsCSV. An
// empty startup_ms field reads back as NaN, so write → read → write is
// byte-identical. Fields the CSV omits (beacon IPs, prefix ID, proxy flag)
// are zero in the returned records.
func ReadSessionsCSV(r io.Reader) ([]SessionRecord, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("core: read sessions CSV header: %w", err)
	}
	if len(header) != len(sessionsCSVHeader) {
		return nil, fmt.Errorf("core: sessions CSV has %d columns, want %d",
			len(header), len(sessionsCSVHeader))
	}
	for i, col := range sessionsCSVHeader {
		if header[i] != col {
			return nil, fmt.Errorf("core: sessions CSV column %d is %q, want %q", i, header[i], col)
		}
	}
	var out []SessionRecord
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("core: read sessions CSV: %w", err)
		}
		p := rowParser{row: row}
		s := SessionRecord{
			SessionID: p.uint64(), UserAgent: p.str(), OS: p.str(), Browser: p.str(),
			VideoID: p.int(), VideoRank: p.int(),
			VideoLenSec: p.float(), NumChunks: p.int(),
			Prefix: p.str(), Country: p.str(), US: p.bool(), PoP: p.int(),
			ServerID: p.int(), OrgName: p.str(), OrgType: p.str(), ConnType: p.str(),
			DistanceKM: p.float(), StartupMS: p.float(),
			RebufCount: p.int(), RebufDurMS: p.float(), RebufferRate: p.float(),
			AvgBitrateKbps: p.float(), PlayedSec: p.float(),
			SRTTMinMS: p.float(), SRTTMeanMS: p.float(), SRTTStdMS: p.float(),
			SRTTCV: p.float(), RetxRate: p.float(), HadLoss: p.bool(),
			GPU: p.bool(), CPUCores: p.int(), CPULoad: p.float(),
		}
		if p.err != nil {
			return nil, fmt.Errorf("core: sessions CSV line %d: %w", line, p.err)
		}
		out = append(out, s)
	}
	return out, nil
}

// rowParser consumes one CSV row field by field, latching the first error.
type rowParser struct {
	row []string
	i   int
	err error
}

func (p *rowParser) next() string {
	v := p.row[p.i]
	p.i++
	return v
}

func (p *rowParser) str() string { return p.next() }

func (p *rowParser) float() float64 {
	s := p.next()
	if s == "" {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil && p.err == nil {
		p.err = err
	}
	return v
}

func (p *rowParser) int() int {
	v, err := strconv.Atoi(p.next())
	if err != nil && p.err == nil {
		p.err = err
	}
	return v
}

func (p *rowParser) uint64() uint64 {
	v, err := strconv.ParseUint(p.next(), 10, 64)
	if err != nil && p.err == nil {
		p.err = err
	}
	return v
}

func (p *rowParser) bool() bool {
	switch p.next() {
	case "1":
		return true
	case "0":
		return false
	default:
		if p.err == nil {
			p.err = fmt.Errorf("bad boolean field %d", p.i-1)
		}
		return false
	}
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// fOrEmpty formats like f but writes NaN as an empty field, the CSV
// counterpart of the JSONL null for sessions that never started playback.
func fOrEmpty(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return f(v)
}

func b(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
