package core

import "sync"

// SpanCollector assembles shard record streams into one dataset whose
// backing arrays are allocated exactly once. Collector (above) has every
// shard fill a private Dataset and then copies the union — two full
// passes of allocation for a campaign-sized trace. SpanCollector instead
// uses the shards' ReserveRecords hints to carve one pair of backing
// arrays into disjoint per-shard spans up front: shards append into
// their spans concurrently without locks, and Dataset() compacts the
// spans in place, sorts canonically, and indexes. The result is
// byte-identical to the Collector+Merge path — canonical order erases
// span layout — for roughly half the allocation.
//
// Usage: call NewSink once per shard from the runner's sequential plan
// phase (NewSink is not safe for concurrent use), let the runner reserve
// each sink, run the shards, then call Dataset exactly once.
type SpanCollector struct {
	once  sync.Once
	sinks []*spanSink
	ds    Dataset
}

// NewSink registers and returns the sink for one shard. The runner's
// ReserveRecords call on it declares the span size: session counts are
// exact, chunk counts an upper bound.
func (c *SpanCollector) NewSink() RecordSink {
	s := &spanSink{col: c}
	c.sinks = append(c.sinks, s)
	return s
}

// materialize sums the reserved span sizes, performs the one allocation,
// and hands each sink its sub-slice. It runs under once on the first
// ConsumeSession, which happens-after every NewSink/ReserveRecords (the
// plan phase completes before any shard runs).
func (c *SpanCollector) materialize() {
	var ts, tc int
	for _, s := range c.sinks {
		ts += s.resSessions
		tc += s.resChunks
	}
	sessions := make([]SessionRecord, ts)
	chunks := make([]ChunkRecord, tc)
	var so, co int
	for _, s := range c.sinks {
		s.sessions = sessions[so : so : so+s.resSessions]
		s.chunks = chunks[co : co : co+s.resChunks]
		so += s.resSessions
		co += s.resChunks
	}
	c.ds.Sessions = sessions[:0]
	c.ds.Chunks = chunks[:0]
}

// Dataset compacts the spans, restores canonical order, indexes, and
// returns the combined dataset. Call once, after every shard finishes.
func (c *SpanCollector) Dataset() *Dataset {
	c.once.Do(c.materialize) // zero-session runs still need the arrays
	var ns, nc int
	for _, s := range c.sinks {
		ns += len(s.sessions)
		nc += len(s.chunks)
	}
	sessions, chunks := c.ds.Sessions[:0], c.ds.Chunks[:0]
	if ns > cap(sessions) || nc > cap(chunks) {
		// A sink outgrew its reservation (its appends spilled to a fresh
		// array). The spans still hold every record, so fall back to a
		// plain copy into correctly sized arrays.
		sessions = make([]SessionRecord, 0, ns)
		chunks = make([]ChunkRecord, 0, nc)
	}
	for _, s := range c.sinks {
		// In the in-place case each span's records move left or stay put
		// (earlier spans only shrink), so the overlapping copies are safe.
		sessions = append(sessions, s.sessions...)
		chunks = append(chunks, s.chunks...)
	}
	c.ds.Sessions = sessions
	c.ds.Chunks = chunks
	c.ds.SortCanonical()
	c.ds.Index()
	return &c.ds
}

// spanSink is one shard's window into the shared backing arrays. The
// three-index sub-slices cap appends at the reservation, so a shard that
// exceeds its declared span spills into a private array instead of
// overwriting its neighbour.
type spanSink struct {
	col                    *SpanCollector
	resSessions, resChunks int
	sessions               []SessionRecord
	chunks                 []ChunkRecord
}

// ReserveRecords implements RecordReserver by recording the span sizes.
func (s *spanSink) ReserveRecords(sessions, chunks int) {
	s.resSessions, s.resChunks = sessions, chunks
}

// ConsumeSession implements RecordSink by appending into the shard's
// span (copying the chunk values, per the RecordSink aliasing contract).
func (s *spanSink) ConsumeSession(rec SessionRecord, chunks []ChunkRecord) {
	s.col.once.Do(s.col.materialize)
	s.sessions = append(s.sessions, rec)
	s.chunks = append(s.chunks, chunks...)
}
