package core

import (
	"sort"
	"sync"
)

// SortCanonical puts the dataset into its canonical order: sessions
// ascending by SessionID, chunks ascending by (SessionID, ChunkID). Every
// writer emits this order, so two datasets with equal contents serialize
// to identical bytes regardless of how their records were produced —
// the property the sharded runner's determinism guarantee rests on.
func (d *Dataset) SortCanonical() {
	sort.Slice(d.Sessions, func(i, j int) bool {
		return d.Sessions[i].SessionID < d.Sessions[j].SessionID
	})
	sort.Slice(d.Chunks, func(i, j int) bool {
		a, b := &d.Chunks[i], &d.Chunks[j]
		if a.SessionID != b.SessionID {
			return a.SessionID < b.SessionID
		}
		return a.ChunkID < b.ChunkID
	})
}

// Merge combines shard datasets into one canonically ordered, indexed
// dataset. nil parts are skipped; the inputs are not modified.
func Merge(parts ...*Dataset) *Dataset {
	var ns, nc int
	for _, p := range parts {
		if p == nil {
			continue
		}
		ns += len(p.Sessions)
		nc += len(p.Chunks)
	}
	m := &Dataset{
		Sessions: make([]SessionRecord, 0, ns),
		Chunks:   make([]ChunkRecord, 0, nc),
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		m.Sessions = append(m.Sessions, p.Sessions...)
		m.Chunks = append(m.Chunks, p.Chunks...)
	}
	m.SortCanonical()
	m.Index()
	return m
}

// Collector assembles per-shard datasets from concurrent producers. Each
// shard fills its own private Dataset (no locking on the hot path) and
// hands it over once; Merge then builds the canonical combined dataset,
// so the completion order of the shards never leaks into the result.
type Collector struct {
	mu    sync.Mutex
	parts []*Dataset
}

// Add contributes one shard's finished dataset. Safe for concurrent use.
func (c *Collector) Add(d *Dataset) {
	if d == nil {
		return
	}
	c.mu.Lock()
	c.parts = append(c.parts, d)
	c.mu.Unlock()
}

// Merge returns the canonical union of everything added so far.
func (c *Collector) Merge() *Dataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Merge(c.parts...)
}
