package core

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"sync"
	"testing"

	"vidperf/internal/stats"
)

func sampleChunk() ChunkRecord {
	return ChunkRecord{
		SessionID: 1, ChunkID: 0,
		DFBms: 150, DLBms: 2000,
		BitrateKbps: 1050, SizeBytes: 787500, DurationSec: 6,
		DwaitMS: 0.2, DopenMS: 0.4, DreadMS: 1.4, DBEms: 0,
		CacheHit: true, CacheLevel: "ram",
		CWND: 40, SRTTms: 60, SRTTVarMS: 6, MSS: 1460,
		SegsSent: 540, SegsLost: 5,
		Visible: true, TotalFrames: 180, DroppedFrames: 9,
	}
}

func TestChunkDerivedMetrics(t *testing.T) {
	c := sampleChunk()
	if got := c.DCDNms(); got != 2.0 {
		t.Errorf("DCDN = %v", got)
	}
	if got := c.ServerLatencyMS(); got != 2.0 {
		t.Errorf("server latency = %v", got)
	}
	if got := c.RTT0UpperBoundMS(); got != 148 {
		t.Errorf("rtt0 bound = %v", got)
	}
	// Baseline sample takes SRTT when below the rtt0 bound.
	if got := c.BaselineRTTSampleMS(); got != 60 {
		t.Errorf("baseline = %v", got)
	}
	// perfscore = 6 / 2.15 ≈ 2.79 — a good chunk.
	if got := c.PerfScore(); math.Abs(got-6/2.15) > 1e-9 {
		t.Errorf("perfscore = %v", got)
	}
	if got := c.LossRate(); math.Abs(got-5.0/540) > 1e-12 {
		t.Errorf("loss rate = %v", got)
	}
	if got := c.InstantThroughputKbps(); math.Abs(got-787500*8/2000.0) > 1e-9 {
		t.Errorf("tp inst = %v", got)
	}
	if got := c.ConnThroughputKbps(); math.Abs(got-1460*40*8/60.0) > 1e-9 {
		t.Errorf("eq3 = %v", got)
	}
	if got := c.DroppedFrac(); got != 0.05 {
		t.Errorf("dropped frac = %v", got)
	}
	if got := LatencyShare(c); math.Abs(got-150.0/2150) > 1e-12 {
		t.Errorf("latency share = %v", got)
	}
}

func TestEdgeCaseMetrics(t *testing.T) {
	var c ChunkRecord
	if c.LossRate() != 0 || c.PerfScore() != 0 || c.InstantThroughputKbps() != 0 ||
		c.ConnThroughputKbps() != 0 || c.DroppedFrac() != 0 || LatencyShare(c) != 0 {
		t.Error("zero-value chunk metrics should be 0")
	}
	c.DFBms = 1 // DCDN 0, rtt0 bound 1
	if c.RTT0UpperBoundMS() != 1 {
		t.Error("rtt0 bound wrong")
	}
	c.DBEms = 5 // bound would be negative
	if c.RTT0UpperBoundMS() != 0 {
		t.Error("negative rtt0 bound should clamp to 0")
	}
}

func TestEstimateDDS(t *testing.T) {
	c := sampleChunk()
	// RTO_paper = 200 + 60 + 24 = 284; DFB - 2 - 284 < 0 -> no evidence.
	if got := EstimateDDSms(c); got != 0 {
		t.Errorf("clean chunk DDS estimate = %v", got)
	}
	c.DFBms = 1500 // stack-delayed chunk
	want := 1500 - 2 - 284.0
	if got := EstimateDDSms(c); math.Abs(got-want) > 1e-9 {
		t.Errorf("DDS estimate = %v, want %v", got, want)
	}
}

func TestSplitByPerfScore(t *testing.T) {
	good := sampleChunk() // score ~2.8
	bad := sampleChunk()
	bad.DLBms = 10000 // score 6/10.15 < 1
	s := SplitByPerfScore([]ChunkRecord{good, bad, good})
	if len(s.Good) != 2 || len(s.Bad) != 1 {
		t.Fatalf("split = %d good, %d bad", len(s.Good), len(s.Bad))
	}
	if s.Bad[0] != 1 {
		t.Error("wrong bad index")
	}
}

func TestDetectStackOutliers(t *testing.T) {
	r := stats.NewRand(3)
	var chunks []ChunkRecord
	for i := 0; i < 20; i++ {
		c := sampleChunk()
		c.ChunkID = i
		c.DFBms = 140 + r.Uniform(0, 20)
		c.DLBms = 1900 + r.Uniform(0, 200)
		chunks = append(chunks, c)
	}
	// Inject the Fig. 17 signature at chunk 7: huge DFB, tiny DLB
	// (=> huge TPinst), ordinary SRTT/server/CWND.
	chunks[7].DFBms = 2600
	chunks[7].DLBms = 40
	rep := DetectStackOutliers(chunks)
	if len(rep.Outliers) != 1 || rep.Outliers[0] != 7 {
		t.Fatalf("outliers = %v, want [7]", rep.Outliers)
	}
}

func TestDetectStackOutliersIgnoresNetworkSpikes(t *testing.T) {
	r := stats.NewRand(4)
	var chunks []ChunkRecord
	for i := 0; i < 20; i++ {
		c := sampleChunk()
		c.ChunkID = i
		c.DFBms = 140 + r.Uniform(0, 20)
		chunks = append(chunks, c)
	}
	// A genuine network-latency spike: DFB up AND SRTT up -> not a stack
	// problem, must not be flagged.
	chunks[5].DFBms = 2600
	chunks[5].DLBms = 40
	chunks[5].SRTTms = 900
	rep := DetectStackOutliers(chunks)
	for _, idx := range rep.Outliers {
		if idx == 5 {
			t.Fatal("network spike misattributed to the download stack")
		}
	}
}

func TestDetectStackOutliersShortSession(t *testing.T) {
	if got := DetectStackOutliers(make([]ChunkRecord, 3)); len(got.Outliers) != 0 {
		t.Error("short session should yield nothing")
	}
}

func TestComputeSessionChunkStats(t *testing.T) {
	a := sampleChunk()
	b := sampleChunk()
	b.ChunkID = 1
	b.SegsLost = 0
	b.SRTTms = 50
	cs := ComputeSessionChunkStats([]ChunkRecord{a, b})
	if cs.TotalSent != 1080 || cs.TotalLost != 5 {
		t.Errorf("totals = %+v", cs)
	}
	if !cs.AnyLoss {
		t.Error("loss not detected")
	}
	if math.Abs(cs.FirstLossRate-5.0/540) > 1e-12 {
		t.Errorf("first loss rate = %v", cs.FirstLossRate)
	}
	if cs.BaselineRTTms != 50 {
		t.Errorf("baseline = %v", cs.BaselineRTTms)
	}
	if math.Abs(cs.RetxRate()-5.0/1080) > 1e-12 {
		t.Errorf("retx rate = %v", cs.RetxRate())
	}
	empty := ComputeSessionChunkStats(nil)
	if empty.BaselineRTTms != 0 || empty.RetxRate() != 0 {
		t.Error("empty session stats wrong")
	}
}

func TestFilterProxies(t *testing.T) {
	d := &Dataset{}
	// 10 clean sessions, 3 with IP mismatch, and 60 behind one egress IP.
	id := uint64(1)
	add := func(http, beacon string) {
		d.Sessions = append(d.Sessions, SessionRecord{
			SessionID: id, HTTPClientIP: http, BeaconIP: beacon,
		})
		d.Chunks = append(d.Chunks, ChunkRecord{SessionID: id})
		id++
	}
	for i := 0; i < 10; i++ {
		ip := "10.0.0." + string(rune('a'+i))
		add(ip, ip)
	}
	for i := 0; i < 3; i++ {
		add("proxy-X", "10.1.0."+string(rune('a'+i)))
	}
	for i := 0; i < 60; i++ {
		add("proxy-Y", "proxy-Y") // volume rule only
	}
	res := FilterProxies(d, ProxyFilterConfig{MaxSessionsPerIP: 50})
	if res.KeptSessions != 10 {
		t.Fatalf("kept %d, want 10", res.KeptSessions)
	}
	if res.IPMismatch != 3 {
		t.Errorf("ip mismatches = %d", res.IPMismatch)
	}
	if res.HighVolumeIP != 60 {
		t.Errorf("high-volume = %d", res.HighVolumeIP)
	}
	if len(res.Kept.Chunks) != 10 {
		t.Errorf("kept chunks = %d", len(res.Kept.Chunks))
	}
	if math.Abs(res.KeptFraction-10.0/73) > 1e-9 {
		t.Errorf("kept fraction = %v", res.KeptFraction)
	}
}

func TestDatasetIndexAndLookup(t *testing.T) {
	d := &Dataset{
		Sessions: []SessionRecord{{SessionID: 5}, {SessionID: 9}},
		Chunks:   []ChunkRecord{{SessionID: 5}, {SessionID: 9}, {SessionID: 5, ChunkID: 1}},
	}
	if s := d.Session(9); s == nil || s.SessionID != 9 {
		t.Error("Session lookup failed")
	}
	if d.Session(404) != nil {
		t.Error("missing session should be nil")
	}
	g := d.ChunksBySession()
	if len(g[5]) != 2 || len(g[9]) != 1 {
		t.Errorf("grouping = %v", g)
	}
	if !strings.Contains(d.String(), "2 sessions") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestCSVExports(t *testing.T) {
	var cb, sb bytes.Buffer
	if err := WriteChunksCSV(&cb, []ChunkRecord{sampleChunk()}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("chunk csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "session_id,chunk_id,dfb_ms") {
		t.Errorf("chunk header = %q", lines[0])
	}
	if strings.Contains(lines[0], "truth") {
		t.Error("ground truth leaked into CSV export")
	}
	if err := WriteSessionsCSV(&sb, []SessionRecord{{SessionID: 3, Browser: "Firefox"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Firefox") {
		t.Error("session csv missing data")
	}
}

func sampleSession(id uint64) SessionRecord {
	return SessionRecord{
		SessionID: id, HTTPClientIP: "10.0.0.1", BeaconIP: "10.0.0.1",
		UserAgent: "ua", OS: "Windows", Browser: "Chrome", PopularBrowser: true,
		VideoID: 7, VideoRank: 3, VideoLenSec: 600, NumChunks: 2,
		PrefixID: 4, Prefix: "prefix-0004/24", Country: "US", US: true,
		PoP: 1, ServerID: 19, OrgName: "ResidentialISP#1", OrgType: "residential",
		ConnType: "cable", DistanceKM: 120.5,
		StartupMS: 900, RebufCount: 1, RebufDurMS: 300, RebufferRate: 0.01,
		AvgBitrateKbps: 1750, PlayedSec: 55,
		SRTTMinMS: 40, SRTTMeanMS: 45, SRTTStdMS: 2, SRTTCV: 0.04,
		RetxRate: 0.001, HadLoss: true, GPU: true, CPUCores: 4, CPULoad: 0.2,
	}
}

// TestJSONLRoundTrip checks that a write/read cycle reproduces the
// dataset exactly, including the NaN startup time of sessions that never
// began playback (encoded as null on the wire).
func TestJSONLRoundTrip(t *testing.T) {
	ds := &Dataset{Sessions: []SessionRecord{sampleSession(1), sampleSession(2)}}
	ds.Sessions[1].StartupMS = math.NaN()
	c0 := sampleChunk()
	c1 := sampleChunk()
	c1.ChunkID = 1
	c1.CacheHit = false
	c1.CacheLevel = "miss"
	c1.DBEms = 80
	ds.Chunks = []ChunkRecord{c0, c1}
	ds.Index()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, ds); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got.Sessions) != 2 || len(got.Chunks) != 2 {
		t.Fatalf("round trip lost records: %s", got)
	}
	if got.Sessions[0] != ds.Sessions[0] {
		t.Errorf("session 1 changed:\n got %+v\nwant %+v", got.Sessions[0], ds.Sessions[0])
	}
	if !math.IsNaN(got.Sessions[1].StartupMS) {
		t.Errorf("NaN startup came back as %v", got.Sessions[1].StartupMS)
	}
	// Compare session 2 field-wise around the NaN (NaN != NaN).
	s2 := got.Sessions[1]
	s2.StartupMS = 0
	want2 := ds.Sessions[1]
	want2.StartupMS = 0
	if s2 != want2 {
		t.Errorf("session 2 changed:\n got %+v\nwant %+v", s2, want2)
	}
	for i := range got.Chunks {
		if got.Chunks[i] != ds.Chunks[i] {
			t.Errorf("chunk %d changed:\n got %+v\nwant %+v", i, got.Chunks[i], ds.Chunks[i])
		}
	}
	// A second write must be byte-identical (the determinism contract the
	// sharded runner's tests rely on).
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, got); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("write -> read -> write is not byte-stable")
	}
}

// TestCSVRoundTrip parses the CSV exports back and spot-checks that the
// tables carry the same rows and key fields.
func TestCSVRoundTrip(t *testing.T) {
	sessions := []SessionRecord{sampleSession(1), sampleSession(9)}
	chunks := []ChunkRecord{sampleChunk()}

	var cb bytes.Buffer
	if err := WriteChunksCSV(&cb, chunks); err != nil {
		t.Fatalf("WriteChunksCSV: %v", err)
	}
	rows, err := csv.NewReader(&cb).ReadAll()
	if err != nil {
		t.Fatalf("parse chunks csv: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("chunk csv rows = %d, want header+1", len(rows))
	}
	if len(rows[0]) != len(rows[1]) {
		t.Fatalf("header has %d cols, row has %d", len(rows[0]), len(rows[1]))
	}
	if rows[1][0] != "1" || rows[1][1] != "0" {
		t.Errorf("chunk key columns = %v", rows[1][:2])
	}
	if rows[1][11] != "1" || rows[1][12] != "ram" {
		t.Errorf("cache columns = %v", rows[1][11:13])
	}

	var sb bytes.Buffer
	if err := WriteSessionsCSV(&sb, sessions); err != nil {
		t.Fatalf("WriteSessionsCSV: %v", err)
	}
	srows, err := csv.NewReader(&sb).ReadAll()
	if err != nil {
		t.Fatalf("parse sessions csv: %v", err)
	}
	if len(srows) != 3 {
		t.Fatalf("session csv rows = %d, want header+2", len(srows))
	}
	if srows[1][0] != "1" || srows[2][0] != "9" {
		t.Errorf("session ids = %v, %v", srows[1][0], srows[2][0])
	}
	if len(srows[0]) != len(srows[1]) {
		t.Fatalf("header has %d cols, row has %d", len(srows[0]), len(srows[1]))
	}
}

// TestMergeCanonicalOrder checks the deterministic merge: shard order and
// completion order must not affect the result.
func TestMergeCanonicalOrder(t *testing.T) {
	mk := func(ids ...uint64) *Dataset {
		d := &Dataset{}
		for _, id := range ids {
			s := sampleSession(id)
			d.Sessions = append(d.Sessions, s)
			for ci := 0; ci < 2; ci++ {
				c := sampleChunk()
				c.SessionID = id
				c.ChunkID = ci
				d.Chunks = append(d.Chunks, c)
			}
		}
		return d
	}
	a := Merge(mk(3, 1), nil, mk(4, 2))
	b := Merge(mk(2, 4), mk(1, 3))
	if len(a.Sessions) != 4 || len(a.Chunks) != 8 {
		t.Fatalf("merged sizes wrong: %s", a)
	}
	for i := range a.Sessions {
		if a.Sessions[i].SessionID != uint64(i+1) {
			t.Fatalf("sessions not in canonical order: %d at %d", a.Sessions[i].SessionID, i)
		}
		if a.Sessions[i] != b.Sessions[i] {
			t.Fatal("merge depends on shard order")
		}
	}
	for i := range a.Chunks {
		if a.Chunks[i] != b.Chunks[i] {
			t.Fatal("chunk merge depends on shard order")
		}
	}
	if a.Session(3) == nil || a.Session(3).SessionID != 3 {
		t.Error("merged dataset not indexed")
	}
}

// TestCollectorConcurrentAdd exercises the shard-sink path under real
// concurrency.
func TestCollectorConcurrentAdd(t *testing.T) {
	var col Collector
	var wg sync.WaitGroup
	for i := 1; i <= 16; i++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			col.Add(&Dataset{Sessions: []SessionRecord{sampleSession(id)}})
		}(uint64(i))
	}
	wg.Wait()
	m := col.Merge()
	if len(m.Sessions) != 16 {
		t.Fatalf("collector lost sessions: %d/16", len(m.Sessions))
	}
	for i := range m.Sessions {
		if m.Sessions[i].SessionID != uint64(i+1) {
			t.Fatalf("not canonical at %d: %d", i, m.Sessions[i].SessionID)
		}
	}
}

// TestSessionsCSVNeverStarted checks the NaN handling of the session CSV
// sink: never-started sessions must serialize startup_ms as an empty
// field (parity with the JSONL null), and the reader must round-trip the
// table byte-for-byte.
func TestSessionsCSVNeverStarted(t *testing.T) {
	sessions := []SessionRecord{sampleSession(1), sampleSession(2)}
	sessions[1].StartupMS = math.NaN()

	var buf bytes.Buffer
	if err := WriteSessionsCSV(&buf, sessions); err != nil {
		t.Fatalf("WriteSessionsCSV: %v", err)
	}
	if s := buf.String(); strings.Contains(s, "NaN") {
		t.Fatal("CSV export contains the literal string NaN")
	}
	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	startupCol := -1
	for i, col := range rows[0] {
		if col == "startup_ms" {
			startupCol = i
		}
	}
	if startupCol < 0 {
		t.Fatal("no startup_ms column")
	}
	if rows[1][startupCol] != "900" {
		t.Errorf("started session startup_ms = %q", rows[1][startupCol])
	}
	if rows[2][startupCol] != "" {
		t.Errorf("never-started session startup_ms = %q, want empty", rows[2][startupCol])
	}

	back, err := ReadSessionsCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSessionsCSV: %v", err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d sessions, want 2", len(back))
	}
	if back[0].StartupMS != 900 || !math.IsNaN(back[1].StartupMS) {
		t.Errorf("startup round-trip: %v, %v", back[0].StartupMS, back[1].StartupMS)
	}
	if back[0].SessionID != 1 || back[0].OrgName != "ResidentialISP#1" ||
		back[0].PoP != 1 || !back[0].HadLoss || back[0].CPUCores != 4 {
		t.Errorf("fields lost in round-trip: %+v", back[0])
	}

	var again bytes.Buffer
	if err := WriteSessionsCSV(&again, back); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("write → read → write is not byte-identical")
	}
}

// TestReadSessionsCSVRejectsBadInput covers the reader's error paths.
func TestReadSessionsCSVRejectsBadInput(t *testing.T) {
	if _, err := ReadSessionsCSV(strings.NewReader("not,the,header\n")); err == nil {
		t.Error("wrong header accepted")
	}
	var buf bytes.Buffer
	if err := WriteSessionsCSV(&buf, []SessionRecord{sampleSession(1)}); err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(buf.String(), "900", "not-a-number", 1)
	if _, err := ReadSessionsCSV(strings.NewReader(mangled)); err == nil {
		t.Error("bad numeric field accepted")
	}
}

// TestTeeSinkFansOut checks that TeeSink delivers every session to every
// sink in order.
func TestTeeSinkFansOut(t *testing.T) {
	a, b := &Dataset{}, &Dataset{}
	tee := TeeSink(a, b)
	s := sampleSession(5)
	chunks := []ChunkRecord{sampleChunk(), sampleChunk()}
	tee.ConsumeSession(s, chunks)
	for _, d := range []*Dataset{a, b} {
		if len(d.Sessions) != 1 || len(d.Chunks) != 2 {
			t.Fatalf("sink got %d sessions / %d chunks", len(d.Sessions), len(d.Chunks))
		}
		if d.Sessions[0].SessionID != 5 {
			t.Fatalf("wrong session: %+v", d.Sessions[0])
		}
	}
}
