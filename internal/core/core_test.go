package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vidperf/internal/stats"
)

func sampleChunk() ChunkRecord {
	return ChunkRecord{
		SessionID: 1, ChunkID: 0,
		DFBms: 150, DLBms: 2000,
		BitrateKbps: 1050, SizeBytes: 787500, DurationSec: 6,
		DwaitMS: 0.2, DopenMS: 0.4, DreadMS: 1.4, DBEms: 0,
		CacheHit: true, CacheLevel: "ram",
		CWND: 40, SRTTms: 60, SRTTVarMS: 6, MSS: 1460,
		SegsSent: 540, SegsLost: 5,
		Visible: true, TotalFrames: 180, DroppedFrames: 9,
	}
}

func TestChunkDerivedMetrics(t *testing.T) {
	c := sampleChunk()
	if got := c.DCDNms(); got != 2.0 {
		t.Errorf("DCDN = %v", got)
	}
	if got := c.ServerLatencyMS(); got != 2.0 {
		t.Errorf("server latency = %v", got)
	}
	if got := c.RTT0UpperBoundMS(); got != 148 {
		t.Errorf("rtt0 bound = %v", got)
	}
	// Baseline sample takes SRTT when below the rtt0 bound.
	if got := c.BaselineRTTSampleMS(); got != 60 {
		t.Errorf("baseline = %v", got)
	}
	// perfscore = 6 / 2.15 ≈ 2.79 — a good chunk.
	if got := c.PerfScore(); math.Abs(got-6/2.15) > 1e-9 {
		t.Errorf("perfscore = %v", got)
	}
	if got := c.LossRate(); math.Abs(got-5.0/540) > 1e-12 {
		t.Errorf("loss rate = %v", got)
	}
	if got := c.InstantThroughputKbps(); math.Abs(got-787500*8/2000.0) > 1e-9 {
		t.Errorf("tp inst = %v", got)
	}
	if got := c.ConnThroughputKbps(); math.Abs(got-1460*40*8/60.0) > 1e-9 {
		t.Errorf("eq3 = %v", got)
	}
	if got := c.DroppedFrac(); got != 0.05 {
		t.Errorf("dropped frac = %v", got)
	}
	if got := LatencyShare(c); math.Abs(got-150.0/2150) > 1e-12 {
		t.Errorf("latency share = %v", got)
	}
}

func TestEdgeCaseMetrics(t *testing.T) {
	var c ChunkRecord
	if c.LossRate() != 0 || c.PerfScore() != 0 || c.InstantThroughputKbps() != 0 ||
		c.ConnThroughputKbps() != 0 || c.DroppedFrac() != 0 || LatencyShare(c) != 0 {
		t.Error("zero-value chunk metrics should be 0")
	}
	c.DFBms = 1 // DCDN 0, rtt0 bound 1
	if c.RTT0UpperBoundMS() != 1 {
		t.Error("rtt0 bound wrong")
	}
	c.DBEms = 5 // bound would be negative
	if c.RTT0UpperBoundMS() != 0 {
		t.Error("negative rtt0 bound should clamp to 0")
	}
}

func TestEstimateDDS(t *testing.T) {
	c := sampleChunk()
	// RTO_paper = 200 + 60 + 24 = 284; DFB - 2 - 284 < 0 -> no evidence.
	if got := EstimateDDSms(c); got != 0 {
		t.Errorf("clean chunk DDS estimate = %v", got)
	}
	c.DFBms = 1500 // stack-delayed chunk
	want := 1500 - 2 - 284.0
	if got := EstimateDDSms(c); math.Abs(got-want) > 1e-9 {
		t.Errorf("DDS estimate = %v, want %v", got, want)
	}
}

func TestSplitByPerfScore(t *testing.T) {
	good := sampleChunk() // score ~2.8
	bad := sampleChunk()
	bad.DLBms = 10000 // score 6/10.15 < 1
	s := SplitByPerfScore([]ChunkRecord{good, bad, good})
	if len(s.Good) != 2 || len(s.Bad) != 1 {
		t.Fatalf("split = %d good, %d bad", len(s.Good), len(s.Bad))
	}
	if s.Bad[0] != 1 {
		t.Error("wrong bad index")
	}
}

func TestDetectStackOutliers(t *testing.T) {
	r := stats.NewRand(3)
	var chunks []ChunkRecord
	for i := 0; i < 20; i++ {
		c := sampleChunk()
		c.ChunkID = i
		c.DFBms = 140 + r.Uniform(0, 20)
		c.DLBms = 1900 + r.Uniform(0, 200)
		chunks = append(chunks, c)
	}
	// Inject the Fig. 17 signature at chunk 7: huge DFB, tiny DLB
	// (=> huge TPinst), ordinary SRTT/server/CWND.
	chunks[7].DFBms = 2600
	chunks[7].DLBms = 40
	rep := DetectStackOutliers(chunks)
	if len(rep.Outliers) != 1 || rep.Outliers[0] != 7 {
		t.Fatalf("outliers = %v, want [7]", rep.Outliers)
	}
}

func TestDetectStackOutliersIgnoresNetworkSpikes(t *testing.T) {
	r := stats.NewRand(4)
	var chunks []ChunkRecord
	for i := 0; i < 20; i++ {
		c := sampleChunk()
		c.ChunkID = i
		c.DFBms = 140 + r.Uniform(0, 20)
		chunks = append(chunks, c)
	}
	// A genuine network-latency spike: DFB up AND SRTT up -> not a stack
	// problem, must not be flagged.
	chunks[5].DFBms = 2600
	chunks[5].DLBms = 40
	chunks[5].SRTTms = 900
	rep := DetectStackOutliers(chunks)
	for _, idx := range rep.Outliers {
		if idx == 5 {
			t.Fatal("network spike misattributed to the download stack")
		}
	}
}

func TestDetectStackOutliersShortSession(t *testing.T) {
	if got := DetectStackOutliers(make([]ChunkRecord, 3)); len(got.Outliers) != 0 {
		t.Error("short session should yield nothing")
	}
}

func TestComputeSessionChunkStats(t *testing.T) {
	a := sampleChunk()
	b := sampleChunk()
	b.ChunkID = 1
	b.SegsLost = 0
	b.SRTTms = 50
	cs := ComputeSessionChunkStats([]ChunkRecord{a, b})
	if cs.TotalSent != 1080 || cs.TotalLost != 5 {
		t.Errorf("totals = %+v", cs)
	}
	if !cs.AnyLoss {
		t.Error("loss not detected")
	}
	if math.Abs(cs.FirstLossRate-5.0/540) > 1e-12 {
		t.Errorf("first loss rate = %v", cs.FirstLossRate)
	}
	if cs.BaselineRTTms != 50 {
		t.Errorf("baseline = %v", cs.BaselineRTTms)
	}
	if math.Abs(cs.RetxRate()-5.0/1080) > 1e-12 {
		t.Errorf("retx rate = %v", cs.RetxRate())
	}
	empty := ComputeSessionChunkStats(nil)
	if empty.BaselineRTTms != 0 || empty.RetxRate() != 0 {
		t.Error("empty session stats wrong")
	}
}

func TestFilterProxies(t *testing.T) {
	d := &Dataset{}
	// 10 clean sessions, 3 with IP mismatch, and 60 behind one egress IP.
	id := uint64(1)
	add := func(http, beacon string) {
		d.Sessions = append(d.Sessions, SessionRecord{
			SessionID: id, HTTPClientIP: http, BeaconIP: beacon,
		})
		d.Chunks = append(d.Chunks, ChunkRecord{SessionID: id})
		id++
	}
	for i := 0; i < 10; i++ {
		ip := "10.0.0." + string(rune('a'+i))
		add(ip, ip)
	}
	for i := 0; i < 3; i++ {
		add("proxy-X", "10.1.0."+string(rune('a'+i)))
	}
	for i := 0; i < 60; i++ {
		add("proxy-Y", "proxy-Y") // volume rule only
	}
	res := FilterProxies(d, ProxyFilterConfig{MaxSessionsPerIP: 50})
	if res.KeptSessions != 10 {
		t.Fatalf("kept %d, want 10", res.KeptSessions)
	}
	if res.IPMismatch != 3 {
		t.Errorf("ip mismatches = %d", res.IPMismatch)
	}
	if res.HighVolumeIP != 60 {
		t.Errorf("high-volume = %d", res.HighVolumeIP)
	}
	if len(res.Kept.Chunks) != 10 {
		t.Errorf("kept chunks = %d", len(res.Kept.Chunks))
	}
	if math.Abs(res.KeptFraction-10.0/73) > 1e-9 {
		t.Errorf("kept fraction = %v", res.KeptFraction)
	}
}

func TestDatasetIndexAndLookup(t *testing.T) {
	d := &Dataset{
		Sessions: []SessionRecord{{SessionID: 5}, {SessionID: 9}},
		Chunks:   []ChunkRecord{{SessionID: 5}, {SessionID: 9}, {SessionID: 5, ChunkID: 1}},
	}
	if s := d.Session(9); s == nil || s.SessionID != 9 {
		t.Error("Session lookup failed")
	}
	if d.Session(404) != nil {
		t.Error("missing session should be nil")
	}
	g := d.ChunksBySession()
	if len(g[5]) != 2 || len(g[9]) != 1 {
		t.Errorf("grouping = %v", g)
	}
	if !strings.Contains(d.String(), "2 sessions") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	d := &Dataset{
		Sessions: []SessionRecord{{SessionID: 1, Browser: "Chrome", StartupMS: 900}},
		Chunks: []ChunkRecord{
			sampleChunk(),
			{SessionID: 1, ChunkID: 1, DFBms: 80, CacheLevel: "disk"},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sessions) != 1 || len(got.Chunks) != 2 {
		t.Fatalf("round trip lost records: %v", got)
	}
	if got.Chunks[0] != d.Chunks[0] {
		t.Error("chunk did not round-trip")
	}
	if got.Sessions[0].Browser != "Chrome" {
		t.Error("session did not round-trip")
	}
}

func TestCSVExports(t *testing.T) {
	var cb, sb bytes.Buffer
	if err := WriteChunksCSV(&cb, []ChunkRecord{sampleChunk()}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("chunk csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "session_id,chunk_id,dfb_ms") {
		t.Errorf("chunk header = %q", lines[0])
	}
	if strings.Contains(lines[0], "truth") {
		t.Error("ground truth leaked into CSV export")
	}
	if err := WriteSessionsCSV(&sb, []SessionRecord{{SessionID: 3, Browser: "Firefox"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Firefox") {
		t.Error("session csv missing data")
	}
}
