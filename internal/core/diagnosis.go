package core

import (
	"math"

	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
)

// OutlierReport is the result of the Eq. 4 download-stack outlier
// detection over one session.
type OutlierReport struct {
	// Outliers holds indices (into the session's chunk slice) of chunks
	// flagged as buffered by the client download stack.
	Outliers []int
}

// DetectStackOutliers implements the paper's Eq. 4 screening over one
// session's chunks: a chunk is a download-stack outlier when its
// first-byte delay AND instantaneous throughput are both extreme
// (> mean + 2σ) while network and server-side metrics stay ordinary
// (< mean + σ). The method needs a handful of chunks to estimate the
// session's own baseline; sessions shorter than minChunks return nothing.
func DetectStackOutliers(chunks []ChunkRecord) OutlierReport {
	const minChunks = 5
	var rep OutlierReport
	if len(chunks) < minChunks {
		return rep
	}
	var dfb, tp, srtt, server, cwnd stats.Summary
	for i := range chunks {
		dfb.Add(chunks[i].DFBms)
		tp.Add(chunks[i].InstantThroughputKbps())
		srtt.Add(chunks[i].SRTTms)
		server.Add(chunks[i].ServerLatencyMS())
		cwnd.Add(float64(chunks[i].CWND))
	}
	for i := range chunks {
		c := &chunks[i]
		if c.DFBms <= dfb.Mean()+2*dfb.Std() {
			continue
		}
		if c.InstantThroughputKbps() <= tp.Mean()+2*tp.Std() {
			continue
		}
		if c.SRTTms > srtt.Mean()+srtt.Std() {
			continue
		}
		if c.ServerLatencyMS() > server.Mean()+server.Std() {
			continue
		}
		if float64(c.CWND) > cwnd.Mean()+cwnd.Std() {
			continue
		}
		rep.Outliers = append(rep.Outliers, i)
	}
	return rep
}

// EstimateDDSms implements the paper's Eq. 5 conservative lower bound on a
// chunk's download-stack latency:
//
//	D_DS >= D_FB − D_CDN − D_BE − RTO,  RTO = 200ms + srtt + 4·srttvar.
//
// Negative estimates clamp to zero (no evidence of stack latency).
func EstimateDDSms(c ChunkRecord) float64 {
	est := c.DFBms - c.DCDNms() - c.DBEms - tcpmodel.RTOPaperms(c.SRTTms, c.SRTTVarMS)
	if est < 0 || math.IsNaN(est) {
		return 0
	}
	return est
}

// PerfSplit classifies chunks by the Eq. 2 score and reports the latency
// and throughput shares of each class (Fig. 16's inputs).
type PerfSplit struct {
	Good, Bad []int // chunk indices with score >= 1 / < 1
}

// SplitByPerfScore partitions chunk indices by perfscore ≥ 1.
func SplitByPerfScore(chunks []ChunkRecord) PerfSplit {
	var s PerfSplit
	for i := range chunks {
		if chunks[i].PerfScore() >= 1 {
			s.Good = append(s.Good, i)
		} else {
			s.Bad = append(s.Bad, i)
		}
	}
	return s
}

// LatencyShare returns D_FB/(D_FB+D_LB) for a chunk — the paper's measure
// of whether latency or throughput dominates its delivery time.
func LatencyShare(c ChunkRecord) float64 {
	total := c.DFBms + c.DLBms
	if total <= 0 {
		return 0
	}
	return c.DFBms / total
}

// SessionChunkStats derives the per-session aggregates §4.2 uses from the
// chunk records: baseline RTT, loss, and first-chunk behaviour.
type SessionChunkStats struct {
	BaselineRTTms float64 // min over per-chunk baseline samples
	TotalSent     int
	TotalLost     int
	FirstLossRate float64 // loss rate of chunk 0
	AnyLoss       bool
}

// ComputeSessionChunkStats aggregates one session's chunks.
func ComputeSessionChunkStats(chunks []ChunkRecord) SessionChunkStats {
	out := SessionChunkStats{BaselineRTTms: math.Inf(1)}
	for i := range chunks {
		c := &chunks[i]
		if b := c.BaselineRTTSampleMS(); b > 0 && b < out.BaselineRTTms {
			out.BaselineRTTms = b
		}
		out.TotalSent += c.SegsSent
		out.TotalLost += c.SegsLost
		if c.ChunkID == 0 {
			out.FirstLossRate = c.LossRate()
		}
		if c.SegsLost > 0 {
			out.AnyLoss = true
		}
	}
	if math.IsInf(out.BaselineRTTms, 1) {
		out.BaselineRTTms = 0
	}
	return out
}

// RetxRate returns the session-wide retransmission rate.
func (s SessionChunkStats) RetxRate() float64 {
	if s.TotalSent == 0 {
		return 0
	}
	return float64(s.TotalLost) / float64(s.TotalSent)
}
