package core

// ProxyFilterConfig tunes the §3 preprocessing that removes sessions
// behind enterprise/ISP HTTP proxies, whose server-side network
// measurements describe the server→proxy path rather than the client.
type ProxyFilterConfig struct {
	// MaxSessionsPerIP flags client IPs that appear in implausibly many
	// sessions ("more minutes of video per day than there are minutes in
	// a day"). Default 50 for the laptop-scale traces.
	MaxSessionsPerIP int
}

// ProxyFilterResult reports what preprocessing found and kept.
type ProxyFilterResult struct {
	Kept          *Dataset
	TotalSessions int
	KeptSessions  int
	IPMismatch    int // rule (i): HTTP IP != beacon IP
	HighVolumeIP  int // rule (ii): shared egress IP over threshold
	KeptFraction  float64
}

// FilterProxies applies the paper's two detection rules and returns the
// retained dataset (the paper keeps 77% of sessions). The input dataset is
// not modified; ProxySuspected is set on the returned copy's sessions.
func FilterProxies(d *Dataset, cfg ProxyFilterConfig) ProxyFilterResult {
	if cfg.MaxSessionsPerIP == 0 {
		cfg.MaxSessionsPerIP = 50
	}
	res := ProxyFilterResult{TotalSessions: len(d.Sessions)}

	perIP := make(map[string]int)
	for i := range d.Sessions {
		perIP[d.Sessions[i].HTTPClientIP]++
	}

	keep := make(map[uint64]bool, len(d.Sessions))
	kept := &Dataset{}
	for i := range d.Sessions {
		s := d.Sessions[i] // copy
		mismatch := s.HTTPClientIP != s.BeaconIP
		volume := perIP[s.HTTPClientIP] > cfg.MaxSessionsPerIP
		if mismatch {
			res.IPMismatch++
		}
		if volume {
			res.HighVolumeIP++
		}
		if mismatch || volume {
			continue
		}
		s.ProxySuspected = false
		kept.Sessions = append(kept.Sessions, s)
		keep[s.SessionID] = true
	}
	for i := range d.Chunks {
		if keep[d.Chunks[i].SessionID] {
			kept.Chunks = append(kept.Chunks, d.Chunks[i])
		}
	}
	kept.Index()
	res.Kept = kept
	res.KeptSessions = len(kept.Sessions)
	if res.TotalSessions > 0 {
		res.KeptFraction = float64(res.KeptSessions) / float64(res.TotalSessions)
	}
	return res
}
