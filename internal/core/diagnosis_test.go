// diagnosis_test.go tests the §4.3 detection methods directly (they were
// previously covered only through the session-level analyses): the Eq. 4
// minChunks floor boundary and the Eq. 5 lower bound's monotonicity and
// clamping behaviour.
package core

import (
	"math"
	"testing"

	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
)

// stackSession builds n baseline chunks with the Fig. 17 stack-buffering
// signature injected at index outlierAt (pass -1 for none).
func stackSession(n, outlierAt int) []ChunkRecord {
	r := stats.NewRand(9)
	chunks := make([]ChunkRecord, n)
	for i := range chunks {
		c := sampleChunk()
		c.ChunkID = i
		c.DFBms = 140 + r.Uniform(0, 20)
		c.DLBms = 1900 + r.Uniform(0, 200)
		chunks[i] = c
	}
	if outlierAt >= 0 {
		chunks[outlierAt].DFBms = 2600
		chunks[outlierAt].DLBms = 40
	}
	return chunks
}

// TestDetectStackOutliersMinChunksBoundary pins the minChunks floor and
// the statistical floor right above it. Below 5 chunks the method
// returns early. At exactly 5 the screen runs but a single outlier is
// mathematically undetectable: against the population σ the method uses,
// one extreme point's z-score is bounded by √(n−1), which is exactly the
// 2σ threshold at n = 5 — the screen is conservative by construction at
// the floor. From 6 chunks (√5 ≈ 2.24 > 2) a lone outlier is caught.
func TestDetectStackOutliersMinChunksBoundary(t *testing.T) {
	if got := DetectStackOutliers(stackSession(4, 2)); len(got.Outliers) != 0 {
		t.Fatalf("4 chunks: outliers = %v, want none (below the minChunks floor)", got.Outliers)
	}
	if got := DetectStackOutliers(stackSession(5, 2)); len(got.Outliers) != 0 {
		t.Fatalf("5 chunks: outliers = %v, want none (single outlier z ≤ 2 at n = 5)", got.Outliers)
	}
	got := DetectStackOutliers(stackSession(6, 2))
	if len(got.Outliers) != 1 || got.Outliers[0] != 2 {
		t.Fatalf("6 chunks: outliers = %v, want [2]", got.Outliers)
	}
}

// TestDetectStackOutliersEmptyAndNil: degenerate sessions return an
// empty report, never panic.
func TestDetectStackOutliersEmptyAndNil(t *testing.T) {
	if got := DetectStackOutliers(nil); len(got.Outliers) != 0 {
		t.Error("nil chunks produced outliers")
	}
	if got := DetectStackOutliers([]ChunkRecord{}); len(got.Outliers) != 0 {
		t.Error("empty chunks produced outliers")
	}
}

// TestDetectStackOutliersUniformSession: with no extreme chunk, nothing
// is flagged (every chunk sits within 2σ of the session's own baseline).
func TestDetectStackOutliersUniformSession(t *testing.T) {
	if got := DetectStackOutliers(stackSession(20, -1)); len(got.Outliers) != 0 {
		t.Fatalf("uniform session flagged %v", got.Outliers)
	}
}

// ddsChunk builds a chunk whose Eq. 5 terms are all explicit.
func ddsChunk(dfb, dcdn, dbe, srtt, srttVar float64) ChunkRecord {
	return ChunkRecord{
		DFBms: dfb, DreadMS: dcdn, DBEms: dbe,
		SRTTms: srtt, SRTTVarMS: srttVar,
	}
}

// TestEstimateDDSLowerBoundMonotone: the bound is monotone in every
// term — nonincreasing in each subtracted latency (D_CDN, D_BE, srtt,
// srttvar) and nondecreasing in D_FB — across a grid of values.
func TestEstimateDDSLowerBoundMonotone(t *testing.T) {
	base := ddsChunk(2000, 10, 50, 60, 8)
	prev := EstimateDDSms(base)
	if prev <= 0 {
		t.Fatalf("base estimate %v, want > 0", prev)
	}
	// Nondecreasing in D_FB.
	last := -1.0
	for dfb := 300.0; dfb <= 3000; dfb += 100 {
		got := EstimateDDSms(ddsChunk(dfb, 10, 50, 60, 8))
		if got < last {
			t.Fatalf("DDS not nondecreasing in DFB: f(%v) = %v < %v", dfb, got, last)
		}
		last = got
	}
	// Nonincreasing in each subtracted term.
	sweep := func(name string, f func(v float64) ChunkRecord) {
		last := math.Inf(1)
		for v := 0.0; v <= 1200; v += 50 {
			got := EstimateDDSms(f(v))
			if got > last {
				t.Fatalf("DDS not nonincreasing in %s: f(%v) = %v > %v", name, v, got, last)
			}
			if got < 0 {
				t.Fatalf("DDS went negative in %s sweep: %v", name, got)
			}
			last = got
		}
	}
	sweep("DCDN", func(v float64) ChunkRecord { return ddsChunk(2000, v, 50, 60, 8) })
	sweep("DBE", func(v float64) ChunkRecord { return ddsChunk(2000, 10, v, 60, 8) })
	sweep("srtt", func(v float64) ChunkRecord { return ddsChunk(2000, 10, 50, v, 8) })
	sweep("srttvar", func(v float64) ChunkRecord { return ddsChunk(2000, 10, 50, 60, v) })
}

// TestEstimateDDSClampsAndExactValue: the bound clamps at zero (no
// negative stack latency) and matches the Eq. 5 arithmetic when
// positive; NaN inputs clamp instead of propagating.
func TestEstimateDDSClampsAndExactValue(t *testing.T) {
	c := ddsChunk(2000, 10, 50, 60, 8)
	want := 2000 - 10 - 50 - tcpmodel.RTOPaperms(60, 8)
	if got := EstimateDDSms(c); math.Abs(got-want) > 1e-9 {
		t.Fatalf("DDS = %v, want %v", got, want)
	}
	// Fast chunk: everything accounted for, bound clamps to zero.
	if got := EstimateDDSms(ddsChunk(100, 10, 50, 60, 8)); got != 0 {
		t.Fatalf("fast chunk DDS = %v, want 0", got)
	}
	// NaN first-byte delay must not leak NaN into aggregates.
	if got := EstimateDDSms(ddsChunk(math.NaN(), 10, 50, 60, 8)); got != 0 {
		t.Fatalf("NaN DFB DDS = %v, want 0", got)
	}
}
