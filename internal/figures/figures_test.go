package figures

import (
	"strings"
	"sync"
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

var (
	figOnce sync.Once
	figDS   *core.Dataset
)

const figMaxRank = 3000

func figDataset() *core.Dataset {
	figOnce.Do(func() {
		res, err := session.Execute(workload.Scenario{
			Seed:              2016,
			NumSessions:       6000,
			NumPrefixes:       900,
			MeanWatchedChunks: 12,
			Catalog:           catalog.Config{NumVideos: figMaxRank},
		}, session.Options{})
		if err != nil {
			panic(err)
		}
		raw := res.Dataset
		figDS = core.FilterProxies(raw, core.ProxyFilterConfig{}).Kept
	})
	return figDS
}

func TestAllFiguresPass(t *testing.T) {
	results := All(figDataset(), figMaxRank)
	if len(results) != 23 {
		t.Fatalf("got %d results, want 23 (every table and figure)", len(results))
	}
	seen := map[string]bool{}
	for _, res := range results {
		if seen[res.ID] {
			t.Errorf("duplicate figure id %s", res.ID)
		}
		seen[res.ID] = true
		if res.Title == "" || res.Paper == "" || res.Measured == "" {
			t.Errorf("%s: incomplete metadata: %+v", res.ID, res)
		}
		if len(res.Lines) == 0 {
			t.Errorf("%s: no rendered series", res.ID)
		}
		if !res.Pass {
			t.Errorf("%s: shape check failed — measured %q", res.ID, res.Measured)
		}
	}
	for _, want := range []string{"fig03", "fig04", "fig05", "fig06", "fig07",
		"fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22",
		"table1", "table4", "table5"} {
		if !seen[want] {
			t.Errorf("missing figure %s", want)
		}
	}
}

func TestRenderFormat(t *testing.T) {
	res := Fig13() // self-contained, fast
	out := res.Render()
	for _, want := range []string{"FIG13", "paper:", "measured:", "```"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
	bad := Result{ID: "x", Title: "t", Paper: "p", Measured: "m", Pass: false}
	if !strings.Contains(bad.Render(), "SHAPE MISMATCH") {
		t.Error("failing result should render SHAPE MISMATCH")
	}
}

func TestScriptedFiguresDeterministic(t *testing.T) {
	a, b := Fig13(), Fig13()
	if a.Measured != b.Measured {
		t.Error("Fig13 not deterministic")
	}
	c, d := Fig17(), Fig17()
	if c.Measured != d.Measured {
		t.Error("Fig17 not deterministic")
	}
	e, f := Fig20(), Fig20()
	if e.Measured != f.Measured {
		t.Error("Fig20 not deterministic")
	}
}

// figSnapshot replays the shared dataset through a telemetry Campaign so
// the streaming figures render from the same records the exact ones use.
func figSnapshot() *telemetry.Snapshot {
	ds := figDataset()
	camp := telemetry.NewCampaign(0)
	byS := ds.ChunksBySession()
	for i := range ds.Sessions {
		s := ds.Sessions[i]
		chunks := make([]core.ChunkRecord, 0, s.NumChunks)
		for _, ci := range byS[s.SessionID] {
			chunks = append(chunks, ds.Chunks[ci])
		}
		camp.Sink(s.PoP).ConsumeSession(s, chunks)
	}
	return camp.Snapshot()
}

// TestStreamingFiguresPass checks the sketch-backed figures the same way
// TestAllFiguresPass checks the exact ones.
func TestStreamingFiguresPass(t *testing.T) {
	results := AllStreaming(figSnapshot())
	if len(results) != 3 {
		t.Fatalf("got %d streaming results, want 3", len(results))
	}
	seen := map[string]bool{}
	for _, res := range results {
		if seen[res.ID] {
			t.Errorf("duplicate figure id %s", res.ID)
		}
		seen[res.ID] = true
		if res.Title == "" || res.Paper == "" || res.Measured == "" {
			t.Errorf("%s: incomplete metadata: %+v", res.ID, res)
		}
		if len(res.Lines) == 0 {
			t.Errorf("%s: no rendered series", res.ID)
		}
		if !res.Pass {
			t.Errorf("%s: shape check failed — measured %q", res.ID, res.Measured)
		}
	}
	for _, want := range []string{"stream-cdn", "stream-mix", "stream-qoe"} {
		if !seen[want] {
			t.Errorf("missing streaming figure %s", want)
		}
	}
}
