// Package figures regenerates every table and figure in the paper's
// evaluation from a simulated dataset: each builder runs the corresponding
// internal/analysis computation, renders the same rows/series the paper
// plots, states the paper's reported result next to the measured one, and
// judges whether the qualitative shape (who wins, directions, crossovers)
// holds. cmd/repro assembles the output into EXPERIMENTS.md; bench_test.go
// exposes one benchmark per figure.
package figures

import (
	"fmt"
	"math"
	"strings"

	"vidperf/internal/stats"
)

// Result is one regenerated figure or table.
type Result struct {
	ID    string // e.g. "fig05", "table4"
	Title string
	// Paper states what the paper reports for this figure/table.
	Paper string
	// Measured is the headline number(s) from the simulated dataset.
	Measured string
	// Lines are the rendered rows/series.
	Lines []string
	// Pass records whether the qualitative shape reproduces.
	Pass bool
	// Note documents known scale-induced deviations.
	Note string
}

// Render returns the result as a markdown section.
func (r Result) Render() string {
	var b strings.Builder
	status := "OK"
	if !r.Pass {
		status = "SHAPE MISMATCH"
	}
	fmt.Fprintf(&b, "### %s — %s [%s]\n\n", strings.ToUpper(r.ID), r.Title, status)
	fmt.Fprintf(&b, "- paper:    %s\n", r.Paper)
	fmt.Fprintf(&b, "- measured: %s\n", r.Measured)
	if r.Note != "" {
		fmt.Fprintf(&b, "- note:     %s\n", r.Note)
	}
	b.WriteString("\n```\n")
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	b.WriteString("```\n")
	return b.String()
}

// cdfLine renders an ECDF as quantile columns.
func cdfLine(label string, e *stats.ECDF) string {
	if e == nil || e.N() == 0 {
		return fmt.Sprintf("%-22s (no samples)", label)
	}
	return fmt.Sprintf("%-22s n=%-7d p10=%-9.3g p25=%-9.3g p50=%-9.3g p75=%-9.3g p90=%-9.3g p99=%-9.3g",
		label, e.N(), e.Quantile(0.10), e.Quantile(0.25), e.Quantile(0.50),
		e.Quantile(0.75), e.Quantile(0.90), e.Quantile(0.99))
}

// binLines renders a binned-scatter series.
func binLines(xUnit, yUnit string, bins []stats.BinStat) []string {
	out := []string{fmt.Sprintf("%-16s %8s %10s %10s %10s %10s",
		xUnit, "n", "mean "+yUnit, "median", "p25", "p75")}
	for _, b := range bins {
		if b.N == 0 {
			continue
		}
		out = append(out, fmt.Sprintf("[%6.4g,%6.4g) %8d %10.3f %10.3f %10.3f %10.3f",
			b.Lo, b.Hi, b.N, b.Mean, b.Median, b.P25, b.P75))
	}
	return out
}

// seriesLine renders an indexed series (per chunk ID).
func seriesLine(label string, xs []float64) string {
	parts := make([]string, 0, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		parts = append(parts, fmt.Sprintf("%d:%.2f", i, x))
	}
	return fmt.Sprintf("%-28s %s", label, strings.Join(parts, " "))
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
