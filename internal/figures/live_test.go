package figures

import (
	"strings"
	"testing"

	"vidperf/internal/diagnose"
	"vidperf/internal/live"
	"vidperf/internal/session"
	"vidperf/internal/workload"
)

// TestStreamLiveFigure checks the live report the way
// TestStreamingFiguresPass checks the VoD set: a live campaign's
// snapshot adds the stream-live (and, with diagnosis on, the
// stream-diagnosis) figure, its coverage invariant holds, and a channel
// row renders per channel.
func TestStreamLiveFigure(t *testing.T) {
	res, err := session.Execute(workload.Scenario{
		Seed:        41,
		NumSessions: 600,
		NumPrefixes: 150,
		Live:        live.Config{Channels: 5, SwitchPerMin: 1},
	}, session.Options{Telemetry: true, SketchK: 64, Diagnose: &diagnose.Config{}})
	if err != nil {
		t.Fatal(err)
	}

	seen := map[string]Result{}
	for _, r := range AllStreaming(res.Snapshot) {
		seen[r.ID] = r
	}
	lv, ok := seen["stream-live"]
	if !ok {
		t.Fatal("live snapshot rendered no stream-live figure")
	}
	if !lv.Pass {
		t.Fatalf("stream-live shape check failed — measured %q", lv.Measured)
	}
	if lv.Title == "" || lv.Paper == "" || lv.Measured == "" {
		t.Fatalf("stream-live incomplete metadata: %+v", lv)
	}
	channels := 0
	for _, line := range lv.Lines {
		if strings.HasPrefix(line, "channel=") {
			channels++
		}
	}
	if channels != 5 {
		t.Errorf("stream-live rendered %d channel rows, want 5", channels)
	}
	dg, ok := seen["stream-diagnosis"]
	if !ok {
		t.Fatal("diagnosed snapshot rendered no stream-diagnosis figure")
	}
	if !dg.Pass {
		t.Fatalf("stream-diagnosis shape check failed — measured %q", dg.Measured)
	}
	if !strings.Contains(dg.Render(), string(diagnose.LiveEdgeLimited)) {
		t.Errorf("stream-diagnosis omits the %s row", diagnose.LiveEdgeLimited)
	}
}
