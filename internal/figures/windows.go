// windows.go renders the timeline-window report: per-window QoE and —
// when diagnosis ran too — the per-window cause-label mix, the
// before/during/after evidence a fault-injection timeline
// (internal/timeline) exists to produce. cmd/analyze -windows prints it.
package figures

import (
	"fmt"

	"vidperf/internal/analysis"
	"vidperf/internal/telemetry"
)

// StreamWindows renders the windowed QoE/diagnosis tables from a
// snapshot produced by a timeline run. The coverage invariant is the
// pass condition: the windows partition the arrival window, so every
// session must be charged to exactly one of them.
func StreamWindows(sn *telemetry.Snapshot) Result {
	return streamWindowsResult(analysis.StreamWindows(sn))
}

func streamWindowsResult(w analysis.StreamingWindows) Result {
	r := Result{
		ID:    "stream-windows",
		Title: "QoE by timeline window (before/during/after injected events)",
		Paper: "transients the paper characterizes — cache-miss storms, backend slowdowns, path degradation — degrade QoE inside the event window and recover after it",
		Measured: fmt.Sprintf("windows=%d sessions=%d assigned=%d",
			len(w.Rows), w.Sessions, w.Assigned),
	}
	r.Lines = append(r.Lines, fmt.Sprintf("%-16s %15s %9s %8s %14s %12s %14s",
		"window", "span (min)", "sessions", "share", "startup p50", "rebuf p90", "bitrate p50"))
	for _, row := range w.Rows {
		r.Lines = append(r.Lines, fmt.Sprintf("%-16s [%6.1f,%6.1f) %9d %8s %14.4g %12.4g %14.4g",
			row.Window.Name, row.Window.StartMS/60000, row.Window.EndMS/60000,
			row.Sessions, pct(row.Share),
			row.Startup.Quantile(0.5), row.RebufferRate.Quantile(0.9),
			row.Bitrate.Quantile(0.5)))
	}
	if w.Diagnosed {
		r.Lines = append(r.Lines, "", "diagnosis-label share per window:")
		header := fmt.Sprintf("%-16s", "window")
		for _, ls := range w.Rows[0].Diag {
			header += fmt.Sprintf(" %18s", ls.Label)
		}
		r.Lines = append(r.Lines, header)
		for _, row := range w.Rows {
			line := fmt.Sprintf("%-16s", row.Window.Name)
			for _, ls := range row.Diag {
				line += fmt.Sprintf(" %18s", pct(ls.Share))
			}
			r.Lines = append(r.Lines, line)
		}
	}
	r.Pass = w.Covered()
	if !w.Enabled() {
		r.Note = "snapshot carries no timeline windows (re-run a spec with a \"timeline\" block, e.g. the pop-outage preset)"
	}
	return r
}
