package figures

import (
	"strings"
	"testing"

	"vidperf/internal/core"
	"vidperf/internal/diagnose"
	"vidperf/internal/proxydetect"
	"vidperf/internal/proxypop"
	"vidperf/internal/session"
	"vidperf/internal/workload"
)

// proxyScenario is the in-package proxied fixture: two cohorts sit
// safely above the §3 volume threshold at this session count.
func proxyScenario() workload.Scenario {
	return workload.Scenario{
		Seed:        17,
		NumSessions: 800,
		NumPrefixes: 150,
		Proxy:       proxypop.Config{Share: 0.23, Cohorts: 2, EgressKbps: 25000},
	}
}

// TestStreamProxyFigure: a proxied campaign's snapshot adds the
// stream-proxy figure, its coverage invariant holds, a per-egress row
// renders per cohort, and with diagnosis on the cause-share table
// carries the proxy-tromboned row.
func TestStreamProxyFigure(t *testing.T) {
	res, err := session.Execute(proxyScenario(), session.Options{
		Telemetry: true, SketchK: 64, Diagnose: &diagnose.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]Result{}
	for _, r := range AllStreaming(res.Snapshot) {
		seen[r.ID] = r
	}
	pr, ok := seen["stream-proxy"]
	if !ok {
		t.Fatal("proxied snapshot rendered no stream-proxy figure")
	}
	if !pr.Pass {
		t.Fatalf("stream-proxy shape check failed — measured %q", pr.Measured)
	}
	if pr.Title == "" || pr.Paper == "" || pr.Measured == "" {
		t.Fatalf("stream-proxy incomplete metadata: %+v", pr)
	}
	cohorts := 0
	for _, line := range pr.Lines {
		if strings.HasPrefix(line, "egress=") {
			cohorts++
		}
	}
	if cohorts != 2 {
		t.Errorf("stream-proxy rendered %d egress rows, want 2", cohorts)
	}
	dg, ok := seen["stream-diagnosis"]
	if !ok {
		t.Fatal("diagnosed snapshot rendered no stream-diagnosis figure")
	}
	if !strings.Contains(dg.Render(), string(diagnose.ProxyTromboned)) {
		t.Errorf("stream-diagnosis omits the %s row", diagnose.ProxyTromboned)
	}
	// A plain campaign must not render the figure.
	plain, err := session.Execute(workload.Scenario{
		Seed: 17, NumSessions: 200, NumPrefixes: 80,
	}, session.Options{Telemetry: true, SketchK: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range AllStreaming(plain.Snapshot) {
		if r.ID == "stream-proxy" {
			t.Fatal("plain snapshot rendered a stream-proxy figure")
		}
	}
}

// TestProxyDetectionFigure: the trace-backed §3 report passes on a
// proxied trace (precision, share error, tail deflation), renders the
// per-rule and ablation lines, and degrades to the reported-only note
// on a trace without ground truth.
func TestProxyDetectionFigure(t *testing.T) {
	res, err := session.Execute(proxyScenario(), session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := ProxyDetection(res.Dataset, proxydetect.Config{})
	if !r.Pass {
		t.Fatalf("detection report failed on the proxied fixture:\n%s", r.Render())
	}
	text := r.Render()
	for _, want := range []string{"rule (i)", "rule (ii)", "confusion:", "CV(SRTT)", "| kept"} {
		if !strings.Contains(text, want) {
			t.Errorf("report omits %q:\n%s", want, text)
		}
	}

	stripped := &core.Dataset{Sessions: append([]core.SessionRecord(nil), res.Dataset.Sessions...)}
	for i := range stripped.Sessions {
		stripped.Sessions[i].Proxied = false
		stripped.Sessions[i].ProxyCohort = 0
	}
	nr := ProxyDetection(stripped, proxydetect.Config{})
	if !strings.Contains(nr.Note, "no ground-truth") {
		t.Errorf("truth-less trace did not get the reported-only note: %+v", nr)
	}
	if !nr.Pass {
		t.Error("reported-only mode must still pass on a non-empty trace")
	}
}
