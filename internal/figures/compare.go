// compare.go renders A/B snapshot deltas (analysis.CompareSnapshots) as
// a Result: the table cmd/analyze -compare prints and the per-cell delta
// report cmd/sweep appends for each non-baseline cell of a campaign.
package figures

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vidperf/internal/analysis"
	"vidperf/internal/telemetry"
)

// StreamCompare diffs candidate b against baseline a. It is
// informational (Pass is always true): a delta table has no paper shape
// to verify, it is the evidence the comparative specs exist to produce.
func StreamCompare(a, b *telemetry.Snapshot) Result {
	cmp := analysis.CompareSnapshots(a, b)
	r := Result{
		ID:    "compare",
		Title: "A/B snapshot delta (candidate vs baseline)",
		Paper: "n/a — campaign delta report",
		Measured: fmt.Sprintf("baseline %s vs candidate %s: %d shared metrics, %d counters",
			snapshotLabel(cmp.LabelsA), snapshotLabel(cmp.LabelsB),
			len(cmp.Metrics), len(cmp.Counters)),
		Pass: true,
	}

	r.Lines = append(r.Lines, fmt.Sprintf("%-20s %5s %12s %12s %12s %9s",
		"metric", "q", "baseline", "candidate", "delta", "delta%"))
	for _, m := range cmp.Metrics {
		if m.NA == 0 && m.NB == 0 {
			continue
		}
		for _, qd := range m.Quantiles {
			r.Lines = append(r.Lines, fmt.Sprintf("%-20s %5s %12.4g %12.4g %+12.4g %9s",
				m.Name, fmt.Sprintf("p%02.0f", qd.Q*100), qd.A, qd.B, qd.Delta, pctOrDash(qd.RelDelta)))
		}
	}

	r.Lines = append(r.Lines, "", fmt.Sprintf("%-26s %12s %12s %12s %9s",
		"counter", "baseline", "candidate", "delta", "delta%"))
	for _, c := range cmp.Counters {
		r.Lines = append(r.Lines, fmt.Sprintf("%-26s %12d %12d %+12d %9s",
			c.Name, c.A, c.B, c.Delta, pctOrDash(c.RelDelta)))
	}
	for _, rt := range cmp.Rates {
		r.Lines = append(r.Lines, fmt.Sprintf("%-26s %12.4f %12.4f %+12.4f %9s",
			rt.Name, rt.A, rt.B, rt.Delta, "-"))
	}
	return r
}

// snapshotLabel names one side of the comparison from its labels.
func snapshotLabel(labels map[string]string) string {
	if cell := labels["cell"]; cell != "" {
		if spec := labels["spec"]; spec != "" {
			return spec + "/" + cell
		}
		return cell
	}
	if len(labels) == 0 {
		return "(unlabelled)"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

func pctOrDash(rel float64) string {
	if math.IsNaN(rel) || math.IsInf(rel, 0) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*rel)
}
