// streaming.go renders the sketch-backed figures: the subset of the
// paper's evaluation that survives one-pass aggregation, computed from a
// telemetry.Snapshot instead of a materialized dataset. cmd/analyze
// -snapshot renders these for campaigns too large to ever hold as
// records.
package figures

import (
	"fmt"

	"vidperf/internal/analysis"
	"vidperf/internal/telemetry"
)

// sketchLine renders a quantile sketch as the same quantile columns
// cdfLine uses for exact ECDFs.
func sketchLine(label string, s *telemetry.QuantileSketch) string {
	if s == nil || s.N() == 0 {
		return fmt.Sprintf("%-22s (no samples)", label)
	}
	return fmt.Sprintf("%-22s n=%-7d p10=%-9.3g p25=%-9.3g p50=%-9.3g p75=%-9.3g p90=%-9.3g p99=%-9.3g",
		label, s.N(), s.Quantile(0.10), s.Quantile(0.25), s.Quantile(0.50),
		s.Quantile(0.75), s.Quantile(0.90), s.Quantile(0.99))
}

// StreamCDN is the sketch-backed Fig. 5: the CDN latency breakdown with
// the same shape checks, within sketch error.
func StreamCDN(sn *telemetry.Snapshot) Result {
	br := analysis.StreamBreakdownCDNLatency(sn)
	r := Result{
		ID:    "stream-cdn",
		Title: "CDN latency breakdown (streaming sketches)",
		Paper: "Dwait/Dopen sub-ms; Dread bimodal (~10 ms retry-timer gap); median hit ≪ miss (40x)",
		Measured: fmt.Sprintf("median hit=%.1f ms miss=%.1f ms (%.0fx); retry-timer share=%s",
			br.MedianHitMS, br.MedianMissMS, br.MedianMissMS/br.MedianHitMS,
			pct(br.RetryTimerChunkShare)),
	}
	r.Lines = append(r.Lines,
		sketchLine("Dwait (ms)", br.Dwait),
		sketchLine("Dopen (ms)", br.Dopen),
		sketchLine("Dread (ms)", br.Dread),
		sketchLine("total server, hit", br.TotalHit),
		sketchLine("total server, miss", br.TotalMiss),
	)
	r.Pass = br.TotalHit.N() > 0 && br.TotalMiss.N() > 0 &&
		br.MedianMissMS/br.MedianHitMS > 10 &&
		br.Dread.Quantile(0.95) > 10 && br.Dread.Quantile(0.5) < 10
	return r
}

// StreamQoE renders the per-session QoE distributions from sketches.
func StreamQoE(sn *telemetry.Snapshot) Result {
	q := analysis.StreamQoESummary(sn)
	lat := analysis.StreamLatencyDistributions(sn)
	r := Result{
		ID:    "stream-qoe",
		Title: "Session QoE and chunk latency distributions (streaming sketches)",
		Paper: "startup concentrated near the buffering threshold; re-buffering rare; D_LB dominates D_FB",
		Measured: fmt.Sprintf("sessions=%d never-started=%s; startup p50=%.2f s; rebuf p90=%s",
			q.Sessions, pct(q.NeverStartedShare),
			q.Startup.Quantile(0.5)/1000, pct(q.RebufferRate.Quantile(0.9))),
	}
	r.Lines = append(r.Lines,
		sketchLine("startup (ms)", q.Startup),
		sketchLine("rebuffer rate", q.RebufferRate),
		sketchLine("D_FB (ms)", lat.DFB),
		sketchLine("D_LB (ms)", lat.DLB),
		sketchLine("srtt (ms)", lat.SRTT),
		sketchLine("server latency (ms)", lat.Server),
	)
	r.Pass = q.Sessions > 0 && q.NeverStartedShare < 0.1 &&
		q.Startup.Quantile(0.5) > 100 && q.Startup.Quantile(0.5) < 10000 &&
		lat.DLB.Quantile(0.5) > lat.DFB.Quantile(0.5)
	return r
}

// StreamMix renders the dimensioned-counter tables: hit ratio by PoP and
// cache level, the bitrate ladder mix, and sessions by org type. These
// are exact counts even in streaming mode.
func StreamMix(sn *telemetry.Snapshot) Result {
	mix := analysis.StreamHitRatios(sn)
	r := Result{
		ID:    "stream-mix",
		Title: "Cache hit ratio and traffic mix by dimension (streaming counters)",
		Paper: "high steady-state hit ratio at every PoP; RAM serves most hits; ladder spans 235–3000 kbps",
		Measured: fmt.Sprintf("chunks=%d hit ratio=%s across %d PoPs, %d ladder rungs",
			mix.Chunks, pct(mix.Overall), len(mix.ByPoP), len(mix.Bitrates)),
	}
	r.Lines = append(r.Lines, fmt.Sprintf("%-10s %10s %10s %10s", "pop", "chunks", "hits", "hit %"))
	for _, row := range mix.ByPoP {
		r.Lines = append(r.Lines, fmt.Sprintf("%-10d %10d %10d %10.2f",
			row.PoP, row.Chunks, row.Hits, 100*row.HitRatio))
	}
	for _, d := range mix.ByLevel {
		r.Lines = append(r.Lines, fmt.Sprintf("cache=%-8s %10d chunks", d.Value, d.N))
	}
	for _, d := range mix.Bitrates {
		r.Lines = append(r.Lines, fmt.Sprintf("bitrate=%-6d %8d chunks", d.IntValue(), d.N))
	}
	for _, d := range mix.Orgs {
		r.Lines = append(r.Lines, fmt.Sprintf("org=%-12s %8d sessions", d.Value, d.N))
	}
	minPoPHit := 1.0
	for _, row := range mix.ByPoP {
		if row.HitRatio < minPoPHit {
			minPoPHit = row.HitRatio
		}
	}
	r.Pass = mix.Chunks > 0 && mix.Overall > 0.5 && mix.Overall < 1 &&
		len(mix.ByPoP) > 1 && minPoPHit > 0.3 && len(mix.Bitrates) >= 3
	return r
}

// StreamDiagnosis renders the per-session root-cause report: the share
// of sessions charged to each layer label (internal/diagnose) and the
// per-label QoE sketches — the paper's §5–§6 "which layer hurt this
// session?" breakdown at campaign scale. The coverage invariant is the
// pass condition: every session must carry exactly one label, so the
// label counts must sum to the campaign's session count.
func StreamDiagnosis(sn *telemetry.Snapshot) Result {
	return streamDiagnosisResult(analysis.StreamDiagnosis(sn))
}

func streamDiagnosisResult(d analysis.StreamingDiagnosis) Result {
	r := Result{
		ID:    "stream-diagnosis",
		Title: "Per-session root-cause attribution (diagnosis labels)",
		Paper: "§5-§6: per-layer problem classes — server (cache/backend), network (throughput/loss), client stack, ABR",
		Measured: fmt.Sprintf("sessions=%d labelled=%d degraded share=%s",
			d.Sessions, d.Labelled, pct(d.DegradedShare())),
	}
	r.Lines = append(r.Lines, fmt.Sprintf("%-20s %9s %8s %14s %12s %14s",
		"label", "sessions", "share", "startup p50", "rebuf p90", "bitrate p50"))
	for _, row := range d.Rows {
		r.Lines = append(r.Lines, fmt.Sprintf("%-20s %9d %8s %14.3g %12.4g %14.4g",
			row.Label, row.Sessions, pct(row.Share),
			row.Startup.Quantile(0.5), row.RebufferRate.Quantile(0.9),
			row.Bitrate.Quantile(0.5)))
	}
	r.Pass = d.Enabled() && d.Labelled == d.Sessions
	if !d.Enabled() {
		r.Note = "snapshot carries no diagnosis labels (re-run with -diagnose or a diagnosis-enabled spec)"
	}
	return r
}

// StreamLive renders the live-streaming report: the join-time and
// live-edge-lag distributions, the per-channel audience mix, and the
// channel-switch count (internal/live). Only rendered for snapshots
// from live campaigns.
func StreamLive(sn *telemetry.Snapshot) Result {
	return streamLiveResult(analysis.StreamLive(sn))
}

func streamLiveResult(l analysis.StreamingLive) Result {
	var joined uint64
	for _, d := range l.Channels {
		joined += d.N
	}
	r := Result{
		ID:    "stream-live",
		Title: "Live channels: join time, live-edge lag, audience mix",
		Paper: "live/linear extension: sessions join at the live edge; the publish clock, not the path, bounds lead",
		Measured: fmt.Sprintf("sessions=%d channels=%d switches=%d; join p50=%.3g ms lag p90=%.3g ms",
			l.Sessions, len(l.Channels), l.Switches,
			l.JoinTime.Quantile(0.5), l.EdgeLag.Quantile(0.9)),
	}
	r.Lines = append(r.Lines,
		sketchLine("join time (ms)", l.JoinTime),
		sketchLine("live-edge lag (ms)", l.EdgeLag),
	)
	for _, d := range l.Channels {
		r.Lines = append(r.Lines, fmt.Sprintf("channel=%-6d %8d sessions", d.IntValue(), d.N))
	}
	// Coverage invariant: every session joined exactly one channel.
	r.Pass = l.Sessions > 0 && joined == l.Sessions && len(l.Channels) > 0
	return r
}

// AllStreaming renders every sketch-backed figure from a snapshot. The
// diagnosis, timeline-window, live, and proxy reports join the set only
// when the snapshot carries their state, so plain -stream snapshots
// render exactly as before.
func AllStreaming(sn *telemetry.Snapshot) []Result {
	out := []Result{StreamCDN(sn), StreamMix(sn), StreamQoE(sn)}
	if d := analysis.StreamDiagnosis(sn); d.Enabled() {
		out = append(out, streamDiagnosisResult(d))
	}
	if w := analysis.StreamWindows(sn); w.Enabled() {
		out = append(out, streamWindowsResult(w))
	}
	if l := analysis.StreamLive(sn); l.Enabled() {
		out = append(out, streamLiveResult(l))
	}
	if p := analysis.StreamProxy(sn); p.Enabled() {
		out = append(out, streamProxyResult(p))
	}
	return out
}
