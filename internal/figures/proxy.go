// proxy.go renders the proxied-population views: the sketch-backed
// STREAM-PROXY figure (Fig. 9/Table 4 shape — CV(SRTT) with and without
// proxied cohorts) and the trace-backed §3 detection report with its
// filtered-vs-unfiltered ablation (internal/proxydetect).
package figures

import (
	"fmt"

	"vidperf/internal/analysis"
	"vidperf/internal/core"
	"vidperf/internal/proxydetect"
	"vidperf/internal/telemetry"
)

// StreamProxy renders the proxied-population report: the proxied-vs-
// direct CV(SRTT) and startup splits, the per-egress audience mix, and
// the detector-signal counters (internal/proxypop). Only rendered for
// snapshots from proxied campaigns.
func StreamProxy(sn *telemetry.Snapshot) Result {
	return streamProxyResult(analysis.StreamProxy(sn))
}

func streamProxyResult(p analysis.StreamingProxy) Result {
	r := Result{
		ID:    "stream-proxy",
		Title: "Proxied populations: CV(SRTT) and startup, proxied vs direct",
		Paper: "§3/§4.2, Fig. 9 + Table 4: tromboned shared-egress cohorts dominate the high-CV(SRTT) tail",
		Measured: fmt.Sprintf("sessions=%d proxied=%d (%s) mismatch=%d cohorts=%d; CV p90 proxied=%.3g direct=%.3g",
			p.Sessions, p.Proxied, pct(p.ProxiedShare()), p.IPMismatch, len(p.Cohorts),
			p.CVProxied.Quantile(0.9), p.CVClear.Quantile(0.9)),
	}
	r.Lines = append(r.Lines,
		sketchLine("CV(SRTT), proxied", p.CVProxied),
		sketchLine("CV(SRTT), direct", p.CVClear),
		sketchLine("startup (ms), proxied", p.StartupProxied),
		sketchLine("startup (ms), direct", p.StartupClear),
	)
	for _, d := range p.Cohorts {
		r.Lines = append(r.Lines, fmt.Sprintf("egress=%-6d %8d sessions", d.IntValue(), d.N))
	}
	// Coverage invariant (every session lands in exactly one CV split)
	// plus the Table 4 shape: the proxied tail sits above the direct one.
	r.Pass = p.Sessions > 0 && p.Proxied > 0 &&
		p.CVProxied.N()+p.CVClear.N() == p.Sessions &&
		p.CVProxied.Quantile(0.9) > p.CVClear.Quantile(0.9)
	return r
}

// ProxyDetection runs the §3 detector over a materialized trace and
// renders the detection report: detected share, precision/recall
// against the model's ground truth, per-rule counts, and the
// filtered-vs-unfiltered ablation (what the paper's numbers would look
// like had proxies stayed in).
func ProxyDetection(ds *core.Dataset, cfg proxydetect.Config) Result {
	verdicts := proxydetect.Detect(ds.Sessions, cfg)
	rep := proxydetect.Evaluate(ds.Sessions, verdicts)
	abl := proxydetect.Ablate(ds.Sessions, verdicts)
	eff := cfg.WithDefaults()

	r := Result{
		ID:    "detect-proxies",
		Title: "§3 proxy detection: rules (i)+(ii) vs ground truth, with ablation",
		Paper: "§3: IP-mismatch + shared-egress volume rules remove ~23% of sessions; the paper keeps 77%",
		Measured: fmt.Sprintf("sessions=%d detected=%d (%s) truth=%d (%s) precision=%.3f recall=%.3f",
			rep.Sessions, rep.Detected, pct(rep.DetectedShare()),
			rep.TruthProxied, pct(rep.TruthShare()), rep.Precision(), rep.Recall()),
	}
	r.Lines = append(r.Lines,
		fmt.Sprintf("rule (i)  ip-mismatch   %8d sessions", rep.MismatchDetected),
		fmt.Sprintf("rule (ii) volume>%-5d  %8d sessions", eff.MaxSessionsPerEgress, rep.VolumeDetected),
		fmt.Sprintf("confusion: tp=%d fp=%d fn=%d", rep.TruePositives, rep.FalsePositives, rep.FalseNegatives),
		ablationLine("CV(SRTT)", abl.All.SRTTCV, abl.Kept.SRTTCV),
		ablationLine("startup (ms)", abl.All.StartupMS, abl.Kept.StartupMS),
		ablationLine("rebuffer rate", abl.All.RebufferRate, abl.Kept.RebufferRate),
	)
	if rep.TruthProxied > 0 {
		// Judged against ground truth: the detector must recover the
		// configured share (±3 points), be near-certain about what it
		// removes, and removing it must deflate the CV(SRTT) tail — the
		// Table 4/Fig. 9 shape of the ablation.
		shareErr := rep.DetectedShare() - rep.TruthShare()
		if shareErr < 0 {
			shareErr = -shareErr
		}
		r.Pass = rep.Precision() >= 0.95 && shareErr <= 0.03 &&
			abl.Kept.SRTTCV.P90 < abl.All.SRTTCV.P90
	} else {
		r.Pass = rep.Sessions > 0
		r.Note = "trace carries no ground-truth proxied sessions; detection reported, accuracy not judged"
	}
	return r
}

// ablationLine renders one metric's all-vs-kept quantile comparison.
func ablationLine(label string, all, kept proxydetect.Quantiles) string {
	return fmt.Sprintf("%-14s all  n=%-7d p50=%-9.3g p90=%-9.3g p99=%-9.3g | kept n=%-7d p50=%-9.3g p90=%-9.3g p99=%-9.3g",
		label, all.N, all.P50, all.P90, all.P99,
		kept.N, kept.P50, kept.P90, kept.P99)
}
