package figures

import (
	"fmt"
	"math"
	"sort"

	"vidperf/internal/analysis"
	"vidperf/internal/clientstack"
	"vidperf/internal/core"
	"vidperf/internal/session"
	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
)

// Fig03 regenerates the dataset characterization: video-length CCDF (3a)
// and rank-vs-popularity (3b).
func Fig03(ds *core.Dataset) Result {
	st := analysis.ComputeDatasetStats(ds)
	r := Result{
		ID:    "fig03",
		Title: "Length and popularity of videos in the dataset",
		Paper: "heavy-tailed durations (10^1..10^4 s); top 10% of videos ≈ 66% of playbacks",
		Measured: fmt.Sprintf("duration p50=%.0fs p99=%.0fs; top-10%% share=%s",
			st.VideoLenCCDF.Quantile(0.5), st.VideoLenCCDF.Quantile(0.99),
			pct(st.Top10VideoShare)),
	}
	r.Lines = append(r.Lines, cdfLine("video length (s)", st.VideoLenCCDF))
	r.Lines = append(r.Lines, "rank vs normalized play frequency (log-spaced ranks):")
	for _, q := range []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1.0} {
		idx := int(q*float64(len(st.RankPlays))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(st.RankPlays) {
			idx = len(st.RankPlays) - 1
		}
		p := st.RankPlays[idx]
		r.Lines = append(r.Lines, fmt.Sprintf("  norm-rank %-8.4g -> norm-freq %.6g", p.X, p.Y))
	}
	r.Pass = st.Top10VideoShare > 0.5 && st.Top10VideoShare < 0.85 &&
		st.VideoLenCCDF.Quantile(0.99) > 4*st.VideoLenCCDF.Quantile(0.5)
	return r
}

// Fig04 regenerates startup time vs first-chunk server latency.
func Fig04(ds *core.Dataset) Result {
	fig := analysis.StartupVsServerLatency(ds, 50, 600)
	first, last := firstLastNonEmpty(fig.Bins)
	r := Result{
		ID:    "fig04",
		Title: "Impact of server latency on QoE (startup time)",
		Paper: "startup grows from ~0.5-1 s to ~2.5 s as first-chunk server latency goes 0→600 ms",
		Measured: fmt.Sprintf("median startup %.2f s (server<50ms) -> %.2f s (highest populated bin)",
			first.Median, last.Median),
		Lines: binLines("server lat (ms)", "startup (s)", fig.Bins),
		Pass:  last.Median > first.Median,
	}
	return r
}

// Fig05 regenerates the CDN latency breakdown.
func Fig05(ds *core.Dataset) Result {
	br := analysis.BreakdownCDNLatency(ds)
	r := Result{
		ID:    "fig05",
		Title: "CDN latency breakdown across all chunks",
		Paper: "Dwait/Dopen sub-ms; Dread bimodal (~10 ms retry-timer gap); median hit 2 ms vs miss 80 ms (40x)",
		Measured: fmt.Sprintf("median hit=%.1f ms miss=%.1f ms (%.0fx); retry-timer share=%s",
			br.MedianHitMS, br.MedianMissMS, br.MedianMissMS/br.MedianHitMS,
			pct(br.RetryTimerChunkShare)),
	}
	r.Lines = append(r.Lines,
		cdfLine("Dwait (ms)", br.Dwait),
		cdfLine("Dopen (ms)", br.Dopen),
		cdfLine("Dread (ms)", br.Dread),
		cdfLine("total server, hit", br.TotalHit),
		cdfLine("total server, miss", br.TotalMiss),
	)
	r.Pass = br.MedianMissMS/br.MedianHitMS > 10 &&
		br.Dread.Quantile(0.95) > 10 && br.Dread.Quantile(0.5) < 10
	return r
}

// Fig06 regenerates performance vs popularity.
func Fig06(ds *core.Dataset, maxRank int) Result {
	ths := []int{0, maxRank / 4, maxRank / 2, maxRank * 3 / 4, maxRank * 4 / 5}
	pts := analysis.PerformanceVsPopularity(ds, ths)
	r := Result{
		ID:    "fig06",
		Title: "Performance vs popularity: miss rate and CDN latency vs rank",
		Paper: "miss %% rises sharply for unpopular videos; median hit-side server delay rises with rank",
	}
	r.Lines = append(r.Lines, fmt.Sprintf("%-10s %10s %10s %16s", "rank>=x", "chunks", "miss %", "med hit lat ms"))
	for _, p := range pts {
		r.Lines = append(r.Lines, fmt.Sprintf("%-10d %10d %10.2f %16.2f",
			p.RankMin, p.Chunks, p.MissPct, p.MedianHitServerMS))
	}
	first, last := pts[0], pts[len(pts)-1]
	// The hit-latency gradient is judged over the mid-catalog thresholds:
	// in the deepest bucket, a re-request arriving within our short
	// window hits RAM via promotion (in the paper the gap is days, so
	// the tail re-read comes from disk).
	maxMidLat := 0.0
	for _, p := range pts[1:] {
		if p.MedianHitServerMS > maxMidLat {
			maxMidLat = p.MedianHitServerMS
		}
	}
	r.Measured = fmt.Sprintf("miss%%: %.2f→%.2f; med hit latency: %.2f ms (popular) vs %.2f ms (unpopular max)",
		first.MissPct, last.MissPct, first.MedianHitServerMS, maxMidLat)
	r.Note = "deepest-rank hit latency dips from within-window RAM promotion; the paper's tail re-reads are days apart"
	r.Pass = last.MissPct > first.MissPct && maxMidLat > first.MedianHitServerMS
	return r
}

// Fig07 regenerates startup vs first-chunk SRTT.
func Fig07(ds *core.Dataset) Result {
	fig := analysis.StartupVsSRTT(ds, 50, 600)
	first, last := firstLastNonEmpty(fig.Bins)
	return Result{
		ID:    "fig07",
		Title: "Startup delay vs network latency (first-chunk SRTT)",
		Paper: "startup grows with SRTT of the first chunk",
		Measured: fmt.Sprintf("median startup %.2f s (srtt<50ms) -> %.2f s (highest populated bin)",
			first.Median, last.Median),
		Lines: binLines("srtt (ms)", "startup (s)", fig.Bins),
		Pass:  last.Median > first.Median,
	}
}

// Fig08 regenerates the per-session baseline/variation latency CDFs.
func Fig08(ds *core.Dataset) Result {
	ld := analysis.ComputeLatencyDistributions(ds)
	tail := ld.SRTTMin.CCDFAt(100)
	return Result{
		ID:    "fig08",
		Title: "CDF of baseline (srtt_min) and variation (σ_srtt) across sessions",
		Paper: "most sessions have low baselines; a tail exceeds 100 ms; σ_srtt spans decades",
		Measured: fmt.Sprintf("median srtt_min=%.1f ms; P(srtt_min>100ms)=%s; median σ=%.1f ms",
			ld.SRTTMin.Quantile(0.5), pct(tail), ld.SRTTStd.Quantile(0.5)),
		Lines: []string{
			cdfLine("srtt_min (ms)", ld.SRTTMin),
			cdfLine("sigma_srtt (ms)", ld.SRTTStd),
		},
		Pass: ld.SRTTMin.Quantile(0.5) < 100 && tail > 0 && tail < 0.5,
	}
}

// Fig09 regenerates the tail-prefix distance analysis.
func Fig09(ds *core.Dataset) Result {
	tp := analysis.ComputeTailPrefixes(ds, 100, 80)
	r := Result{
		ID:    "fig09",
		Title: "Mean distance of US tail-latency prefixes from CDN servers",
		Paper: "75% of tail prefixes are non-US; among close-by US tail prefixes ~90% are enterprises",
		Measured: fmt.Sprintf("tail prefixes=%d non-US=%s; close(<=%.0fkm) US tail enterprise share=%s",
			tp.TailPrefixes, pct(tp.NonUSShare), tp.CloseKM, pct(tp.CloseUSEnterpriseShare)),
		Note: "enterprise dominance of the close tail is diluted at laptop scale by bufferbloated DSL prefixes the paper's 18-day minimum filters out",
	}
	r.Lines = append(r.Lines, cdfLine("US tail prefix dist km", tp.USDistanceCDF))
	r.Pass = tp.TailPrefixes > 0 && tp.NonUSShare > 0.2 && tp.CloseUSEnterpriseShare > 0.3
	return r
}

// Fig10 regenerates the per-path CV(srtt) distribution.
func Fig10(ds *core.Dataset) Result {
	pv := analysis.ComputePathVariation(ds, 3)
	return Result{
		ID:    "fig10",
		Title: "CDF of latency fluctuation per (prefix, PoP) path",
		Paper: "~40% of paths show CV(srtt) > 1",
		Measured: fmt.Sprintf("paths=%d high-CV share=%s p99 CV=%.2f",
			pv.Paths, pct(pv.HighCVShare), pv.CVs.Quantile(0.99)),
		Lines: []string{cdfLine("CV(srtt) per path", pv.CVs)},
		Note:  "high-CV share is structurally below the paper's 40%: a 30-minute arrival window cannot reproduce 18 days of diurnal spread",
		Pass:  pv.HighCVShare > 0.015 && pv.CVs.Quantile(0.99) > 1,
	}
}

// Table4 regenerates the org-variability ranking.
func Table4(ds *core.Dataset) Result {
	ov := analysis.ComputeOrgVariability(ds, 20, 5)
	r := Result{
		ID:    "table4",
		Title: "Organizations with highest share of sessions with CV(SRTT) > 1",
		Paper: "top five are enterprises at ~40-43%; residential ISPs ~1%",
	}
	r.Lines = append(r.Lines, fmt.Sprintf("%-20s %10s %10s %8s", "org", "cv>1", "sessions", "%"))
	ent := 0
	for _, row := range ov.Top {
		r.Lines = append(r.Lines, fmt.Sprintf("%-20s %10d %10d %8.1f",
			row.OrgName, row.HighCV, row.Sessions, row.Percentage))
		if row.Enterprise {
			ent++
		}
	}
	r.Lines = append(r.Lines, fmt.Sprintf("residential baseline: %.1f%% of sessions with CV>1",
		ov.ResidentialHighCVPct))
	top := 0.0
	if len(ov.Top) > 0 {
		top = ov.Top[0].Percentage
	}
	r.Measured = fmt.Sprintf("top org %.1f%%; %d/%d top orgs are enterprises; residential %.1f%%",
		top, ent, len(ov.Top), ov.ResidentialHighCVPct)
	r.Pass = len(ov.Top) > 0 && ent >= (len(ov.Top)+1)/2 &&
		top > 3*math.Max(ov.ResidentialHighCVPct, 0.5) && ov.ResidentialHighCVPct < 10
	return r
}

// Fig11 regenerates the with/without-loss session comparison.
func Fig11(ds *core.Dataset) Result {
	ls := analysis.SplitByLoss(ds)
	r := Result{
		ID:    "fig11",
		Title: "Session length, bitrate and re-buffering with vs without loss",
		Paper: "length & bitrate distributions similar; re-buffering clearly worse with loss; ~40% of sessions loss-free; >90% below 10% retx",
		Measured: fmt.Sprintf("no-loss share=%s; sub-10%%-retx share=%s; P(rebuf>1%%): loss=%s vs clean=%s",
			pct(ls.NoLossShare), pct(ls.SubTenPctShare),
			pct(ls.RebufLoss.CCDFAt(1)), pct(ls.RebufNoLoss.CCDFAt(1))),
	}
	r.Lines = append(r.Lines,
		cdfLine("len (chunks), loss", ls.LenLoss),
		cdfLine("len (chunks), clean", ls.LenNoLoss),
		cdfLine("bitrate kbps, loss", ls.BitrateLoss),
		cdfLine("bitrate kbps, clean", ls.BitrateNoLoss),
		cdfLine("rebuf %, loss", ls.RebufLoss),
		cdfLine("rebuf %, clean", ls.RebufNoLoss),
	)
	r.Pass = ls.RebufLoss.CCDFAt(1) > ls.RebufNoLoss.CCDFAt(1) &&
		ls.SubTenPctShare > 0.85 && ls.NoLossShare > 0.15
	return r
}

// Fig12 regenerates re-buffering vs retransmission rate.
func Fig12(ds *core.Dataset) Result {
	bins := analysis.RebufVsRetx(ds, 2, 10)
	lo, hi := firstLastNonEmpty(bins)
	return Result{
		ID:    "fig12",
		Title: "Re-buffering rate vs session retransmission rate",
		Paper: "re-buffering rises with loss rate",
		Measured: fmt.Sprintf("mean rebuf %.2f%% (retx<2%%) -> %.2f%% (highest populated bin)",
			lo.Mean, hi.Mean),
		Lines: binLines("retx (%)", "rebuf (%)", bins),
		Pass:  hi.Mean > lo.Mean,
	}
}

// Fig13 runs the scripted early-vs-late loss case study: a path where the
// chosen bitrate is sustainable but marginal (rate ≈ 1.7), so losses while
// the buffer is shallow stall playback while the same losses later do not.
func Fig13() Result {
	path := tcpmodel.Params{
		BaseRTTms: 45, JitterMS: 1, BottleneckKbps: 1900,
		BufferBytes: 96 << 10, RcvWindowBytes: 128 << 10,
	}
	base := session.Script{Seed: 13, Path: path, Chunks: 10, BitrateKbps: 1050, ServerLatencyMS: 2}
	early := base
	early.LossProbByChunk = map[int]float64{0: 0.18, 1: 0.18}
	late := base
	late.LossProbByChunk = map[int]float64{5: 0.22}
	recsE := session.RunScripted(early)
	recsL := session.RunScripted(late)

	r := Result{
		ID:    "fig13",
		Title: "Case study: loss early vs late in a session",
		Paper: "case #1 (loss at chunk 0, 0.75% overall) re-buffers; case #2 (22% loss at chunk 4, buffer built) does not",
	}
	lossRow := func(label string, recs []core.ChunkRecord) (string, int) {
		var parts []string
		rebufs := 0
		for i, c := range recs {
			parts = append(parts, fmt.Sprintf("%d:%.1f%%", i, c.LossRate()*100))
			rebufs += c.BufCount
		}
		return fmt.Sprintf("%-18s %s", label, joinStrings(parts)), rebufs
	}
	l1, rb1 := lossRow("early-loss case", recsE)
	l2, rb2 := lossRow("late-loss case", recsL)
	r.Lines = append(r.Lines, l1, fmt.Sprintf("  rebuffer events: %d", rb1), l2,
		fmt.Sprintf("  rebuffer events: %d", rb2))
	r.Measured = fmt.Sprintf("early-loss rebuffers=%d; late-loss rebuffers=%d", rb1, rb2)
	r.Pass = rb1 > rb2 && recsE[0].LossRate() > 0 && recsL[5].LossRate() > 0.05
	return r
}

// Fig14 regenerates re-buffering frequency by chunk position.
func Fig14(ds *core.Dataset) Result {
	rb := analysis.ComputeRebufByChunkID(ds, 16)
	early := (rb.PRebufGivenLoss[1] + rb.PRebufGivenLoss[2]) / 2
	late := (rb.PRebufGivenLoss[10] + rb.PRebufGivenLoss[11] + rb.PRebufGivenLoss[12]) / 3
	return Result{
		ID:    "fig14",
		Title: "P(rebuffering at chunk X) and P(rebuffering | loss at chunk X)",
		Paper: "conditioning on loss raises re-buffering probability, most strongly for early chunks",
		Measured: fmt.Sprintf("early conditional=%.2f%% late=%.2f%%; conditional>unconditional at chunk 1: %.2f%%>%.2f%%",
			early, late, rb.PRebufGivenLoss[1], rb.PRebuf[1]),
		Lines: []string{
			seriesLine("P(rebuf at X) %", rb.PRebuf),
			seriesLine("P(rebuf|loss at X) %", rb.PRebufGivenLoss),
		},
		Pass: rb.PRebufGivenLoss[1] > rb.PRebuf[1] && early > late,
	}
}

// Fig15 regenerates the per-chunk retransmission-rate series.
func Fig15(ds *core.Dataset) Result {
	rates := analysis.RetxByChunkID(ds, 16)
	laterMax := 0.0
	for _, v := range rates[2:] {
		if !math.IsNaN(v) && v > laterMax {
			laterMax = v
		}
	}
	return Result{
		ID:       "fig15",
		Title:    "Average per-chunk retransmission rate",
		Paper:    "the first chunk has the highest retransmission rate (slow-start burst loss)",
		Measured: fmt.Sprintf("chunk0=%.3f%% vs max(chunk>=2)=%.3f%%", rates[0], laterMax),
		Lines:    []string{seriesLine("mean retx % by chunk", rates)},
		Pass:     rates[0] > laterMax,
	}
}

// Fig16 regenerates the latency-vs-throughput split by perfscore.
func Fig16(ds *core.Dataset) Result {
	ps := analysis.SplitPerfScores(ds)
	dlbGap := ps.BadDLB.Quantile(0.5) / ps.GoodDLB.Quantile(0.5)
	dfbGap := ps.BadDFB.Quantile(0.5) / ps.GoodDFB.Quantile(0.5)
	r := Result{
		ID:    "fig16",
		Title: "Latency share, D_FB and D_LB by performance score",
		Paper: "bad chunks (score<1) are throughput-limited: D_LB gap dwarfs the D_FB gap; their latency share is lower",
		Measured: fmt.Sprintf("bad-chunk share=%s; median D_LB gap=%.1fx vs D_FB gap=%.1fx",
			pct(ps.BadChunkFrac), dlbGap, dfbGap),
	}
	r.Lines = append(r.Lines,
		cdfLine("latency share, good", ps.GoodShare),
		cdfLine("latency share, bad", ps.BadShare),
		cdfLine("D_FB ms, good", ps.GoodDFB),
		cdfLine("D_FB ms, bad", ps.BadDFB),
		cdfLine("D_LB ms, good", ps.GoodDLB),
		cdfLine("D_LB ms, bad", ps.BadDLB),
	)
	r.Pass = dlbGap > 2 && dlbGap > dfbGap &&
		ps.BadShare.Quantile(0.5) < ps.GoodShare.Quantile(0.5)
	return r
}

// Fig17 runs the scripted download-stack buffering case study.
func Fig17() Result {
	path := tcpmodel.Params{
		BaseRTTms: 50, JitterMS: 2, BottleneckKbps: 20000,
		BufferBytes: 256 << 10, RcvWindowBytes: 256 << 10,
	}
	script := session.Script{
		Seed: 17, Path: path, Chunks: 22, BitrateKbps: 1750, ServerLatencyMS: 2,
		TransientAtChunk: map[int]float64{7: 1800},
	}
	recs := session.RunScripted(script)
	rep := core.DetectStackOutliers(recs)

	r := Result{
		ID:    "fig17",
		Title: "Case study: a download-stack-buffered chunk (chunk 7)",
		Paper: "chunk 7 shows a D_FB spike and impossible instantaneous throughput with normal SRTT/server latency; Eq. 4 flags it",
	}
	var dfbs, tps []string
	for i, c := range recs {
		dfbs = append(dfbs, fmt.Sprintf("%d:%.0f", i, c.DFBms))
		tps = append(tps, fmt.Sprintf("%d:%.1f", i, c.InstantThroughputKbps()/1000))
	}
	r.Lines = append(r.Lines,
		"D_FB (ms) by chunk:      "+joinStrings(dfbs),
		"TP_inst (Mbps) by chunk: "+joinStrings(tps),
		fmt.Sprintf("Eq.4 flagged chunks: %v", rep.Outliers),
	)
	flagged7 := len(rep.Outliers) == 1 && rep.Outliers[0] == 7
	r.Measured = fmt.Sprintf("chunk7 D_FB=%.0f ms TPinst=%.1f Mbps; Eq.4 flags exactly chunk 7: %v",
		recs[7].DFBms, recs[7].InstantThroughputKbps()/1000, flagged7)
	r.Pass = flagged7
	return r
}

// Table5 regenerates the persistent download-stack ranking.
func Table5(ds *core.Dataset) Result {
	ps := analysis.ComputePersistentStack(ds, 50, 8)
	r := Result{
		ID:    "table5",
		Title: "OS/browser pairs with highest mean D_DS (Eq. 5)",
		Paper: "Safari off-Mac ~1030 ms ≫ Firefox/other ~280 ms; 17.6% of chunks non-zero; stack dominates D_FB in 84% of them",
	}
	r.Lines = append(r.Lines, fmt.Sprintf("%-22s %12s %8s", "platform", "mean D_DS ms", "chunks"))
	for _, row := range ps.Top {
		r.Lines = append(r.Lines, fmt.Sprintf("%-22s %12.0f %8d",
			row.Browser+"/"+row.OS, row.MeanDDS, row.Chunks))
	}
	r.Measured = fmt.Sprintf("non-zero D_DS share=%s; stack-dominant share=%s",
		pct(ps.NonZeroShare), pct(ps.DominantShare))
	pass := len(ps.Top) > 0 && ps.NonZeroShare > 0.03 && ps.NonZeroShare < 0.4 &&
		ps.DominantShare > 0.5
	// Ordering check: any Safari-off-Mac row must beat any Chrome row.
	var safariOff, chrome float64 = -1, -1
	for _, row := range ps.Top {
		if row.Browser == "Safari" && row.OS != "Mac" && safariOff < 0 {
			safariOff = row.MeanDDS
		}
		if row.Browser == "Chrome" && chrome < 0 {
			chrome = row.MeanDDS
		}
	}
	if safariOff > 0 && chrome > 0 && safariOff < chrome {
		pass = false
	}
	r.Pass = pass
	return r
}

// Fig18 regenerates the first-vs-other chunk D_FB comparison.
func Fig18(ds *core.Dataset) Result {
	f := analysis.ComputeFirstChunkDFB(ds, analysis.EquivalentSetConfig{
		SRTTMinMS: 40, SRTTMaxMS: 80, MaxDCDNms: 5, MinCWND: 10,
	})
	return Result{
		ID:    "fig18",
		Title: "D_FB of first vs other chunks under equivalent conditions",
		Paper: "first chunks pay ~300 ms more median D_FB (Flash event registration/data-path setup)",
		Measured: fmt.Sprintf("median gap=%.0f ms (first n=%d, other n=%d, srtt band %.0f-%.0f ms)",
			f.MedianGapMS, f.FirstN, f.OtherN, f.SRTTBandMS[0], f.SRTTBandMS[1]),
		Lines: []string{
			cdfLine("D_FB ms, first chunks", f.First),
			cdfLine("D_FB ms, other chunks", f.Other),
		},
		Pass: f.FirstN > 10 && f.OtherN > 10 && f.MedianGapMS > 100,
	}
}

// Fig19 regenerates dropped frames vs download rate.
func Fig19(ds *core.Dataset) Result {
	f := analysis.ComputeDropsVsRate(ds, 0.5, 5)
	rh := analysis.CheckRateHypothesis(ds)
	var low, mid, high stats.BinStat
	for _, b := range f.Bins {
		switch {
		case b.Lo == 0.5:
			low = b
		case b.Lo == 1.0:
			mid = b
		case b.Lo == 2.0:
			high = b
		}
	}
	r := Result{
		ID:    "fig19",
		Title: "Dropped frames vs chunk download rate (sec/sec)",
		Paper: "drops fall with rate and flatten past 1.5 sec/sec; hardware rendering near zero; 85.5% of chunks confirm the 1.5 rule",
		Measured: fmt.Sprintf("mean drops %.1f%%@[0.5,1) %.1f%%@[1,1.5) %.1f%%@[2,2.5); HW bar=%.2f%%; rule-confirm=%s",
			low.Mean, mid.Mean, high.Mean, f.HardwareMeanPct, pct(rh.ConfirmShare)),
	}
	r.Lines = append(r.Lines, binLines("rate (sec/sec)", "drop %", f.Bins)...)
	r.Lines = append(r.Lines, fmt.Sprintf("hardware-rendering bar: %.2f%%", f.HardwareMeanPct))
	r.Pass = low.Mean > mid.Mean && mid.Mean > high.Mean &&
		f.HardwareMeanPct < 2 && rh.ConfirmShare > 0.6
	return r
}

// Fig20 runs the controlled CPU-load rendering experiment: one 10-chunk
// session replayed at increasing background load on an 8-core machine,
// plus the GPU reference bar.
func Fig20() Result {
	r := Result{
		ID:    "fig20",
		Title: "Dropped frames vs CPU load (controlled experiment, 8 cores)",
		Paper: "drops rise as cores are loaded; GPU bar near zero",
	}
	rng := stats.NewRand(20)
	gpu := meanDropAtLoad(clientstack.Platform{OS: clientstack.MacOS,
		Browser: clientstack.Firefox, CPUCores: 8, GPU: true}, 0.5, rng)
	r.Lines = append(r.Lines, fmt.Sprintf("GPU (hardware rendering): %5.2f%%", gpu))
	var series []float64
	for cores := 1; cores <= 8; cores++ {
		load := float64(cores) / 8
		drop := meanDropAtLoad(clientstack.Platform{OS: clientstack.MacOS,
			Browser: clientstack.Firefox, CPUCores: 8, CPULoad: load}, load, rng)
		series = append(series, drop)
		r.Lines = append(r.Lines, fmt.Sprintf("%d/8 cores loaded: %5.2f%%", cores, drop))
	}
	r.Measured = fmt.Sprintf("GPU=%.2f%%; software 1-core-loaded=%.2f%% -> 8-cores-loaded=%.2f%%",
		gpu, series[0], series[7])
	r.Pass = gpu < 1 && series[7] > series[0] && series[7] > 2
	return r
}

func meanDropAtLoad(p clientstack.Platform, load float64, r *stats.Rand) float64 {
	p.CPULoad = load
	if p.GPU {
		p.CPULoad = 0.5
	}
	var s stats.Summary
	for i := 0; i < 10; i++ { // the paper's 10-chunk sample video
		out := clientstack.RenderChunk(p, true, 4.0, 1500, 30, 6, 20, r)
		s.Add(out.DroppedFrac() * 100)
	}
	return s.Mean()
}

// Fig21 regenerates browser share and rendering quality per platform.
func Fig21(ds *core.Dataset) Result {
	rows := analysis.ComputeBrowserRendering(ds)
	r := Result{
		ID:    "fig21",
		Title: "Browser popularity and rendering quality (Windows vs Mac)",
		Paper: "integrated-runtime browsers (Chrome, Safari/Mac) drop fewer frames; unpopular browsers worst",
	}
	r.Lines = append(r.Lines, fmt.Sprintf("%-9s %-10s %10s %10s", "platform", "browser", "% chunks", "% dropped"))
	var chromeWin, firefoxWin analysis.BrowserRenderRow
	for _, row := range rows {
		r.Lines = append(r.Lines, fmt.Sprintf("%-9s %-10s %10.1f %10.2f",
			row.OS, row.Browser, row.ChunkShare, row.DroppedPct))
		if row.OS == "Windows" && row.Browser == "Chrome" {
			chromeWin = row
		}
		if row.OS == "Windows" && row.Browser == "Firefox" {
			firefoxWin = row
		}
	}
	r.Measured = fmt.Sprintf("Windows: Chrome %.1f%% of chunks / %.2f%% drops; Firefox %.1f%% / %.2f%%",
		chromeWin.ChunkShare, chromeWin.DroppedPct, firefoxWin.ChunkShare, firefoxWin.DroppedPct)
	r.Pass = chromeWin.ChunkShare > 25 && firefoxWin.ChunkShare > 20 &&
		chromeWin.DroppedPct < firefoxWin.DroppedPct
	return r
}

// Fig22 regenerates the unpopular-browser rendering comparison.
func Fig22(ds *core.Dataset) Result {
	rep := analysis.ComputeUnpopularBrowsers(ds, 30)
	r := Result{
		ID:    "fig22",
		Title: "Dropped % of unpopular (browser, OS) pairs at rate >= 1.5, visible",
		Paper: "Yandex, Vivaldi, Opera, Safari-on-Windows all well above the popular-browser average",
	}
	pass := len(rep.Rows) > 0
	for _, row := range rep.Rows {
		r.Lines = append(r.Lines, fmt.Sprintf("%-22s %8.2f%% (n=%d)", row.Label, row.DroppedPct, row.Chunks))
		if row.DroppedPct <= rep.RestAverage {
			pass = false
		}
	}
	r.Lines = append(r.Lines, fmt.Sprintf("%-22s %8.2f%%", "average in the rest", rep.RestAverage))
	worst := 0.0
	if len(rep.Rows) > 0 {
		worst = rep.Rows[0].DroppedPct
	}
	r.Measured = fmt.Sprintf("worst unpopular pair %.2f%% vs popular average %.2f%%", worst, rep.RestAverage)
	r.Pass = pass
	return r
}

// Table1 cross-checks the summary-of-findings table: one boolean per
// paper finding, derived from the other analyses.
func Table1(ds *core.Dataset) Result {
	br := analysis.BreakdownCDNLatency(ds)
	mp := analysis.ComputeMissPersistence(ds)
	lp := analysis.ComputeLoadParadox(ds)
	ls := analysis.SplitByLoss(ds)
	rates := analysis.RetxByChunkID(ds, 12)
	ps := analysis.SplitPerfScores(ds)
	so := analysis.DetectStackOutliersDataset(ds)
	f18 := analysis.ComputeFirstChunkDFB(ds, analysis.EquivalentSetConfig{SRTTMinMS: 40, SRTTMaxMS: 80})
	rh := analysis.CheckRateHypothesis(ds)
	ub := analysis.ComputeUnpopularBrowsers(ds, 30)

	type finding struct {
		name string
		ok   bool
	}
	laterMax := 0.0
	for _, v := range rates[2:] {
		if !math.IsNaN(v) && v > laterMax {
			laterMax = v
		}
	}
	unpopularWorse := len(ub.Rows) > 0
	for _, row := range ub.Rows {
		if row.DroppedPct <= ub.RestAverage {
			unpopularWorse = false
		}
	}
	findings := []finding{
		{"CDN-1 async disk-read timer adds server delay", br.Dread.Quantile(0.95) > 10},
		{"CDN-2 cache misses cost an order of magnitude", br.MedianMissMS/br.MedianHitMS > 10},
		{"CDN-3 unpopular videos: persistent miss/slow reads", mp.MeanMissRatioGivenMiss > 0.3},
		{"CDN-4 lightly loaded servers can be slower", lp.Correlation < 0},
		{"NET-3 earlier losses hurt more (chunk-0 retx peak)", rates[0] > laterMax},
		{"NET-4 throughput limits more than latency", ps.BadDLB.Quantile(0.5)/ps.GoodDLB.Quantile(0.5) > ps.BadDFB.Quantile(0.5)/ps.GoodDFB.Quantile(0.5)},
		{"CLI-1 stack buffering detected (Eq.4)", so.OutlierChunks > 0},
		{"CLI-2 first chunk has higher stack latency", f18.MedianGapMS > 100},
		{"CLI-3 unpopular browsers drop more frames", unpopularWorse},
		{"CLI-4 1.5 sec/sec rule holds", rh.ConfirmShare > 0.6},
		{"CLI-x loss-free sessions rebuffer less", ls.RebufLoss.CCDFAt(1) > ls.RebufNoLoss.CCDFAt(1)},
	}
	r := Result{ID: "table1", Title: "Summary of key findings (cross-check)",
		Paper: "all findings reproduce qualitatively"}
	okAll := true
	okCount := 0
	for _, f := range findings {
		mark := "ok"
		if !f.ok {
			mark = "FAIL"
			okAll = false
		} else {
			okCount++
		}
		r.Lines = append(r.Lines, fmt.Sprintf("[%-4s] %s", mark, f.name))
	}
	r.Measured = fmt.Sprintf("%d/%d findings reproduce", okCount, len(findings))
	r.Pass = okAll
	return r
}

// All regenerates every figure/table from a dataset (scripted and
// controlled figures are self-contained). maxRank is the catalog size for
// Fig. 6's thresholds.
func All(ds *core.Dataset, maxRank int) []Result {
	results := []Result{
		Fig03(ds), Fig04(ds), Fig05(ds), Fig06(ds, maxRank), Fig07(ds),
		Fig08(ds), Fig09(ds), Fig10(ds), Table4(ds),
		Fig11(ds), Fig12(ds), Fig13(), Fig14(ds), Fig15(ds), Fig16(ds),
		Fig17(), Table5(ds), Fig18(ds), Fig19(ds), Fig20(), Fig21(ds),
		Fig22(ds), Table1(ds),
	}
	sort.SliceStable(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	return results
}

func firstLastNonEmpty(bins []stats.BinStat) (stats.BinStat, stats.BinStat) {
	first, last := bins[0], bins[0]
	for i := range bins {
		if bins[i].N > 5 {
			first = bins[i]
			break
		}
	}
	for i := len(bins) - 1; i >= 0; i-- {
		if bins[i].N > 5 {
			last = bins[i]
			break
		}
	}
	return first, last
}

func joinStrings(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
