package player

import (
	"math"
	"testing"
	"testing/quick"

	"vidperf/internal/stats"
)

func TestStartupAtThreshold(t *testing.T) {
	p := New(6)
	p.OnChunkDownloaded(800, 6)
	if !p.Started() {
		t.Fatal("playback did not start at threshold")
	}
	if p.StartupMS() != 800 {
		t.Errorf("startup = %v, want 800", p.StartupMS())
	}
}

func TestStartupWaitsForThreshold(t *testing.T) {
	p := New(12)
	p.OnChunkDownloaded(500, 6)
	if p.Started() {
		t.Fatal("started below threshold")
	}
	p.OnChunkDownloaded(1200, 6)
	if !p.Started() || p.StartupMS() != 1200 {
		t.Errorf("startup = %v, want 1200", p.StartupMS())
	}
}

func TestSmoothPlaybackNoRebuffer(t *testing.T) {
	p := New(6)
	now := 0.0
	for i := 0; i < 10; i++ {
		now += 2000 // each 6 s chunk arrives in 2 s: buffer grows
		p.OnChunkDownloaded(now, 6)
	}
	p.Finish()
	if p.RebufCount() != 0 {
		t.Errorf("rebuffers = %d, want 0", p.RebufCount())
	}
	if math.Abs(p.PlayedSec()-60) > 1e-6 {
		t.Errorf("played %v sec, want 60", p.PlayedSec())
	}
}

func TestRebufferWhenStarved(t *testing.T) {
	p := New(6)
	p.OnChunkDownloaded(1000, 6) // starts, buffer 6 s
	// Next chunk takes 10 s: buffer (6 s) drains at t=7000, stall until
	// the chunk lands and refills to threshold.
	p.OnChunkDownloaded(11000, 6)
	if p.RebufCount() != 1 {
		t.Fatalf("rebuffers = %d, want 1", p.RebufCount())
	}
	if math.Abs(p.RebufDurMS()-4000) > 1 {
		t.Errorf("rebuffer duration = %v, want 4000", p.RebufDurMS())
	}
	if p.Stalled() {
		t.Error("should have resumed at threshold")
	}
}

func TestRebufferRate(t *testing.T) {
	p := New(6)
	p.OnChunkDownloaded(0, 6)
	p.OnChunkDownloaded(12000, 6) // 6 s stall ends at 12 s
	p.Finish()
	// Played 12 s total, stalled 6 s: rate = 6/(12+6) = 1/3.
	if math.Abs(p.RebufferRate()-1.0/3) > 0.01 {
		t.Errorf("rebuffer rate = %v, want ~0.333", p.RebufferRate())
	}
}

func TestFinishDrainsBuffer(t *testing.T) {
	p := New(6)
	p.OnChunkDownloaded(1000, 6)
	p.OnChunkDownloaded(1500, 6)
	p.Finish()
	if p.BufferSec() != 0 {
		t.Errorf("buffer = %v after finish", p.BufferSec())
	}
	if math.Abs(p.PlayedSec()-12) > 1e-6 {
		t.Errorf("played = %v, want 12", p.PlayedSec())
	}
}

func TestAdvanceBackwardsIgnored(t *testing.T) {
	p := New(6)
	p.OnChunkDownloaded(1000, 6)
	p.AdvanceTo(500) // must be a no-op
	if p.BufferSec() != 6 {
		t.Errorf("buffer = %v", p.BufferSec())
	}
}

func TestDefaultThreshold(t *testing.T) {
	p := New(0)
	if p.StartThresholdSec != 6 {
		t.Errorf("default threshold = %v", p.StartThresholdSec)
	}
}

func TestNoStartNoRebuffer(t *testing.T) {
	p := New(6)
	p.AdvanceTo(100000)
	if p.RebufCount() != 0 || p.RebufDurMS() != 0 {
		t.Error("rebuffering counted before playback started")
	}
}

// Property: buffer never goes negative, played seconds never exceed
// delivered seconds, and rebuffer duration is non-negative, for arbitrary
// arrival schedules.
func TestPlayerInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		p := New(6)
		now, delivered := 0.0, 0.0
		for i := 0; i < 50; i++ {
			now += r.Uniform(100, 15000)
			dur := r.Uniform(2, 6)
			delivered += dur
			p.OnChunkDownloaded(now, dur)
			if p.BufferSec() < 0 {
				return false
			}
			if p.PlayedSec() > delivered+1e-6 {
				return false
			}
			if p.RebufDurMS() < 0 {
				return false
			}
		}
		p.Finish()
		return math.Abs(p.PlayedSec()-delivered) < 1e-6 || !p.Started()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: rebuffer rate is always within [0, 1].
func TestRebufferRateBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		p := New(6)
		now := 0.0
		for i := 0; i < 30; i++ {
			now += r.Uniform(500, 20000)
			p.OnChunkDownloaded(now, 6)
		}
		p.Finish()
		rate := p.RebufferRate()
		return rate >= 0 && rate <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
