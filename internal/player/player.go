// Package player implements the client playback model: the playback
// buffer chunks drain into, startup and re-buffering accounting, and the
// per-session QoE summary (startup delay, re-buffering rate, average
// bitrate, rendering quality) that prior work ties to engagement and the
// paper uses as its impact metrics.
package player

// Player tracks playback-buffer occupancy against wall-clock time.
// Time is in milliseconds, buffer contents in seconds of video.
type Player struct {
	// StartThresholdSec is the buffered video needed to begin playback
	// (also the resume threshold after a stall).
	StartThresholdSec float64

	bufferSec  float64
	clockMS    float64
	started    bool
	startupMS  float64
	stalled    bool // started but buffer empty
	stallBegan float64

	rebufCount  int
	rebufDurMS  float64
	playedSec   float64
	sessionEnds bool
}

// New returns a player that starts playback once threshold seconds are
// buffered (a typical production value is one chunk's worth).
func New(thresholdSec float64) *Player {
	if thresholdSec <= 0 {
		thresholdSec = 6
	}
	return &Player{StartThresholdSec: thresholdSec}
}

// AdvanceTo moves wall time forward to nowMS, draining the buffer if
// playing and recording a stall when it runs dry.
func (p *Player) AdvanceTo(nowMS float64) {
	if nowMS <= p.clockMS {
		return
	}
	dt := nowMS - p.clockMS
	p.clockMS = nowMS
	if !p.started {
		return
	}
	if p.stalled {
		p.rebufDurMS += dt
		return
	}
	playSec := dt / 1000
	if playSec <= p.bufferSec {
		p.bufferSec -= playSec
		p.playedSec += playSec
		// Exactly empty is a stall only if more video is still expected;
		// OnChunkDownloaded/Finish resolve that, so mark tentative stall.
		if p.bufferSec <= 0 {
			p.bufferSec = 0
			p.beginStall(nowMS)
		}
		return
	}
	// Buffer ran dry partway through the interval.
	playedMS := p.bufferSec * 1000
	p.playedSec += p.bufferSec
	p.bufferSec = 0
	p.beginStall(nowMS - (dt - playedMS))
	p.rebufDurMS += dt - playedMS
}

func (p *Player) beginStall(atMS float64) {
	if p.stalled {
		return
	}
	p.stalled = true
	p.stallBegan = atMS
	p.rebufCount++
}

// OnChunkDownloaded credits durationSec of video at nowMS, starting or
// resuming playback when the threshold is met.
func (p *Player) OnChunkDownloaded(nowMS, durationSec float64) {
	p.AdvanceTo(nowMS)
	p.bufferSec += durationSec
	if !p.started && p.bufferSec >= p.StartThresholdSec {
		p.started = true
		p.startupMS = nowMS
	}
	if p.stalled && p.bufferSec >= p.StartThresholdSec {
		p.stalled = false
	}
}

// Finish drains the remaining buffer at session end. A stall in progress
// when the last chunk has already arrived is cancelled retroactively only
// in the sense that no further rebuffer time accrues; the event stays
// counted if real.
func (p *Player) Finish() {
	if p.started && p.bufferSec > 0 {
		p.playedSec += p.bufferSec
		p.clockMS += p.bufferSec * 1000
		p.bufferSec = 0
	}
	p.sessionEnds = true
}

// BufferSec returns current buffer occupancy in seconds of video.
func (p *Player) BufferSec() float64 { return p.bufferSec }

// Started reports whether playback has begun.
func (p *Player) Started() bool { return p.started }

// Stalled reports whether the player is currently re-buffering.
func (p *Player) Stalled() bool { return p.stalled }

// StartupMS returns the wall time at which playback started (the paper's
// Fig. 4/7 "startup time"), or 0 if it never did.
func (p *Player) StartupMS() float64 { return p.startupMS }

// RebufCount returns the number of re-buffering events so far.
func (p *Player) RebufCount() int { return p.rebufCount }

// RebufDurMS returns total time spent re-buffering.
func (p *Player) RebufDurMS() float64 { return p.rebufDurMS }

// PlayedSec returns seconds of video played out.
func (p *Player) PlayedSec() float64 { return p.playedSec }

// RebufferRate returns the fraction of post-startup session time spent
// re-buffering: rebufDur / (playTime + rebufDur).
func (p *Player) RebufferRate() float64 {
	denom := p.playedSec*1000 + p.rebufDurMS
	if denom <= 0 {
		return 0
	}
	return p.rebufDurMS / denom
}
