package workload

import (
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/timeline"
)

// timelineScenario wraps the whole arrival window in one phase so every
// session is planned under its effects.
func timelineScenario(seed uint64, e timeline.Effects) Scenario {
	sc := Scenario{
		Seed:        seed,
		NumSessions: 200,
		NumPrefixes: 100,
		Catalog:     catalog.Config{NumVideos: 500},
	}.WithDefaults()
	sc.Timeline = timeline.Timeline{Phases: []timeline.Phase{{
		Name: "all", StartMS: 0, EndMS: sc.ArrivalWindowMS, Effects: e,
	}}}
	return sc
}

// TestPlanEffectsApplied: a phase covering the whole window must shift
// every plan's path parameters and backend factor relative to the same
// seed without a timeline, leaving all RNG-drawn fields untouched.
func TestPlanEffectsApplied(t *testing.T) {
	base := Build(timelineScenario(3, timeline.Effects{}).WithDefaults())
	degraded := Build(timelineScenario(3, timeline.Effects{
		ExtraRTTms:           40,
		ExtraLossProb:        0.02,
		ThroughputFactor:     0.5,
		BackendLatencyFactor: 3,
	}))
	for id := uint64(1); id <= 200; id++ {
		a, b := base.PlanSession(id), degraded.PlanSession(id)
		if b.PathParams.BaseRTTms != a.PathParams.BaseRTTms+40 {
			t.Fatalf("session %d: RTT %g, want %g+40", id, b.PathParams.BaseRTTms, a.PathParams.BaseRTTms)
		}
		if b.PathParams.RandomLossProb != a.PathParams.RandomLossProb+0.02 {
			t.Fatalf("session %d: loss %g, want %g+0.02", id, b.PathParams.RandomLossProb, a.PathParams.RandomLossProb)
		}
		want := a.PathParams.BottleneckKbps * 0.5
		if want < 300 {
			want = 300
		}
		if b.PathParams.BottleneckKbps != want {
			t.Fatalf("session %d: bw %g, want %g", id, b.PathParams.BottleneckKbps, want)
		}
		if a.BackendFactor != 1 || b.BackendFactor != 3 {
			t.Fatalf("session %d: backend factors %g/%g, want 1/3", id, a.BackendFactor, b.BackendFactor)
		}
		// Drawn fields must be identical: effects are overlays, not extra
		// RNG draws.
		if a.ArrivalMS != b.ArrivalMS || a.Video.ID != b.Video.ID ||
			a.WatchChunks != b.WatchChunks || a.Platform != b.Platform {
			t.Fatalf("session %d: drawn plan fields diverged", id)
		}
	}
}

// TestEmptyTimelineIsTransparent: the zero timeline must produce plans
// identical to the pre-timeline code path, field for field.
func TestEmptyTimelineIsTransparent(t *testing.T) {
	sc := Scenario{Seed: 5, NumSessions: 100, NumPrefixes: 60,
		Catalog: catalog.Config{NumVideos: 400}}
	pop := Build(sc)
	for id := uint64(1); id <= 100; id++ {
		plan := pop.PlanSession(id)
		if plan.ServingPoP != plan.Prefix.PoP {
			t.Fatalf("session %d: ServingPoP %d != prefix PoP %d", id, plan.ServingPoP, plan.Prefix.PoP)
		}
		if plan.BackendFactor != 1 || plan.FailedOver {
			t.Fatalf("session %d: unexpected effect fields %+v", id, plan)
		}
		if got := pop.SessionArrival(id); got != plan.ArrivalMS {
			t.Fatalf("session %d: SessionArrival %g != plan %g", id, got, plan.ArrivalMS)
		}
		if got := pop.SessionPoP(id); got != plan.ServingPoP {
			t.Fatalf("session %d: SessionPoP %d != plan %d", id, got, plan.ServingPoP)
		}
	}
}

// TestFailoverConsistency: with an outage phase, SessionPoP (the
// partitioner's view) must match PlanSession's ServingPoP for every
// session, and redirected sessions must carry the extra RTT.
func TestFailoverConsistency(t *testing.T) {
	sc := timelineScenario(7, timeline.Effects{
		PoPDown: []int{1, 2}, FailoverPoP: 0, FailoverExtraRTTms: 55,
	})
	pop := Build(sc)
	base := Build(timelineScenario(7, timeline.Effects{}))
	redirected := 0
	for id := uint64(1); id <= 200; id++ {
		plan := pop.PlanSession(id)
		if got := pop.SessionPoP(id); got != plan.ServingPoP {
			t.Fatalf("session %d: SessionPoP %d != plan ServingPoP %d", id, got, plan.ServingPoP)
		}
		if plan.Prefix.PoP == 1 || plan.Prefix.PoP == 2 {
			if plan.ServingPoP != 0 || !plan.FailedOver {
				t.Fatalf("session %d on down PoP %d not redirected: %+v", id, plan.Prefix.PoP, plan)
			}
			a := base.PlanSession(id)
			if plan.PathParams.BaseRTTms != a.PathParams.BaseRTTms+55 {
				t.Fatalf("session %d: failover RTT %g, want %g+55", id,
					plan.PathParams.BaseRTTms, a.PathParams.BaseRTTms)
			}
			redirected++
		} else if plan.ServingPoP != plan.Prefix.PoP || plan.FailedOver {
			t.Fatalf("session %d on healthy PoP was redirected: %+v", id, plan)
		}
	}
	if redirected == 0 {
		t.Fatal("no session mapped to the down PoPs (test not exercising failover)")
	}
	// The partition must place every session on its serving shard: down
	// PoPs' buckets stay empty.
	parts := pop.PartitionByPoP(sc.Fleet.WithDefaults().NumPoPs)
	if len(parts[1]) != 0 || len(parts[2]) != 0 {
		t.Fatalf("partition kept %d/%d sessions on down PoPs", len(parts[1]), len(parts[2]))
	}
}

// TestWarpedArrivalConsistency: with an arrival surge, SessionArrival
// must replay exactly the warped arrival PlanSession embeds.
func TestWarpedArrivalConsistency(t *testing.T) {
	sc := Scenario{
		Seed: 11, NumSessions: 200, NumPrefixes: 100,
		Catalog: catalog.Config{NumVideos: 500},
	}.WithDefaults()
	sc.Timeline = timeline.Timeline{Phases: []timeline.Phase{{
		Name: "crowd", StartMS: 5 * 60e3, EndMS: 10 * 60e3,
		Effects: timeline.Effects{ArrivalRateFactor: 5},
	}}}
	pop := Build(sc)
	for id := uint64(1); id <= 200; id++ {
		plan := pop.PlanSession(id)
		if got := pop.SessionArrival(id); got != plan.ArrivalMS {
			t.Fatalf("session %d: SessionArrival %g != plan %g", id, got, plan.ArrivalMS)
		}
		if plan.ArrivalMS < 0 || plan.ArrivalMS >= sc.ArrivalWindowMS {
			t.Fatalf("session %d: warped arrival %g escaped the window", id, plan.ArrivalMS)
		}
	}
}
