package workload

import (
	"math"
	"testing"

	"vidperf/internal/clientstack"
	"vidperf/internal/netpath"
	"vidperf/internal/stats"
)

func testPop() *Population {
	return Build(Scenario{Seed: 1, NumSessions: 1000, NumPrefixes: 800})
}

func TestBuildDefaults(t *testing.T) {
	p := testPop()
	if len(p.Prefixes) != 800 {
		t.Fatalf("prefixes = %d", len(p.Prefixes))
	}
	if p.Catalog == nil || len(p.PoPs) != 6 {
		t.Fatal("catalog/PoPs missing")
	}
	sc := p.Scenario
	if sc.ABRName != "hybrid" || sc.MeanWatchedChunks != 10 {
		t.Errorf("defaults not applied: %+v", sc)
	}
}

func TestPrefixMix(t *testing.T) {
	p := testPop()
	var us, ent, proxy int
	for i := range p.Prefixes {
		pre := &p.Prefixes[i]
		if pre.US {
			us++
		}
		if pre.Profile.Org == netpath.Enterprise {
			ent++
		}
		if pre.Profile.Proxy {
			proxy++
			if pre.EgressIP == "" {
				t.Fatal("proxy prefix without egress IP")
			}
		}
		if pre.PoP < 0 || pre.PoP >= 6 {
			t.Fatalf("bad PoP %d", pre.PoP)
		}
		if pre.DistKM < 0 {
			t.Fatal("negative distance")
		}
		if pre.Profile.OrgName == "" {
			t.Fatal("unnamed org")
		}
	}
	usFrac := float64(us) / 800
	if usFrac < 0.88 || usFrac > 0.98 {
		t.Errorf("US fraction = %v, want ~0.93", usFrac)
	}
	entFrac := float64(ent) / 800
	if entFrac < 0.05 || entFrac > 0.16 {
		t.Errorf("enterprise fraction = %v, want ~0.10", entFrac)
	}
	if proxy == 0 {
		t.Error("no proxy prefixes")
	}
}

func TestNonUSFartherThanUS(t *testing.T) {
	p := testPop()
	var usD, intlD stats.Summary
	for i := range p.Prefixes {
		if p.Prefixes[i].US {
			usD.Add(p.Prefixes[i].DistKM)
		} else {
			intlD.Add(p.Prefixes[i].DistKM)
		}
	}
	if intlD.Mean() <= usD.Mean() {
		t.Errorf("international clients (%.0f km) not farther than US (%.0f km)",
			intlD.Mean(), usD.Mean())
	}
}

func TestPlanSessionDeterministic(t *testing.T) {
	p := testPop()
	a, b := p.PlanSession(42), p.PlanSession(42)
	if a.Prefix.ID != b.Prefix.ID || a.Video.ID != b.Video.ID ||
		a.WatchChunks != b.WatchChunks || a.Platform != b.Platform {
		t.Error("plans differ for same id")
	}
	c := p.PlanSession(43)
	if a.ArrivalMS == c.ArrivalMS && a.Video.ID == c.Video.ID && a.Prefix.ID == c.Prefix.ID {
		t.Error("different ids produced identical plans")
	}
}

func TestPlanBasics(t *testing.T) {
	p := testPop()
	for id := uint64(1); id <= 500; id++ {
		plan := p.PlanSession(id)
		if plan.WatchChunks < 1 || plan.WatchChunks > plan.Video.NumChunks {
			t.Fatalf("watch chunks %d out of range", plan.WatchChunks)
		}
		if plan.ArrivalMS < 0 || plan.ArrivalMS > p.Scenario.ArrivalWindowMS {
			t.Fatalf("arrival %v out of window", plan.ArrivalMS)
		}
		if plan.PathParams.BaseRTTms <= 0 || plan.PathParams.BottleneckKbps <= 0 {
			t.Fatalf("bad path params %+v", plan.PathParams)
		}
		if plan.HTTPIP == "" || plan.ClientIP == "" {
			t.Fatal("missing IPs")
		}
		if plan.Prefix.EgressIP == "" && plan.HTTPIP != plan.ClientIP {
			t.Fatal("non-proxy session with IP mismatch")
		}
	}
}

func TestPlatformMixMatchesPaper(t *testing.T) {
	p := testPop()
	counts := map[clientstack.Browser]int{}
	oses := map[clientstack.OS]int{}
	n := 20000
	for id := 1; id <= n; id++ {
		plan := p.PlanSession(uint64(id))
		counts[plan.Platform.Browser]++
		oses[plan.Platform.OS]++
	}
	frac := func(c int) float64 { return float64(c) / float64(n) }
	if f := frac(oses[clientstack.Windows]); math.Abs(f-0.885) > 0.02 {
		t.Errorf("Windows share = %.3f, want 0.885", f)
	}
	if f := frac(oses[clientstack.MacOS]); math.Abs(f-0.094) > 0.02 {
		t.Errorf("Mac share = %.3f, want 0.094", f)
	}
	if f := frac(counts[clientstack.Chrome]); math.Abs(f-0.43) > 0.03 {
		t.Errorf("Chrome share = %.3f, want ~0.43", f)
	}
	if f := frac(counts[clientstack.Firefox]); math.Abs(f-0.37) > 0.03 {
		t.Errorf("Firefox share = %.3f, want ~0.37", f)
	}
	if f := frac(counts[clientstack.InternetExplorer]); math.Abs(f-0.13) > 0.02 {
		t.Errorf("IE share = %.3f, want ~0.13", f)
	}
	// The long tail exists (Fig. 22 needs them).
	for _, b := range []clientstack.Browser{clientstack.Opera, clientstack.Vivaldi, clientstack.Yandex} {
		if counts[b] == 0 {
			t.Errorf("no %v sessions generated", b)
		}
	}
	// Safari off-Mac exists (Table 5 lists Safari on Windows and Linux).
	safariOffMac := 0
	for id := 1; id <= n; id++ {
		plan := p.PlanSession(uint64(id))
		if plan.Platform.Browser == clientstack.Safari && plan.Platform.OS != clientstack.MacOS {
			safariOffMac++
		}
	}
	if safariOffMac == 0 {
		t.Error("no Safari-off-Mac sessions")
	}
}

func TestSamplePrefixFollowsWeights(t *testing.T) {
	p := testPop()
	r := stats.NewRand(5)
	counts := make(map[int]int)
	for i := 0; i < 50000; i++ {
		counts[p.SamplePrefix(r).ID]++
	}
	// The heaviest prefix should be sampled far more than the median one.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 150 {
		t.Errorf("weight skew missing: max count %d", maxC)
	}
}

func TestConnTypeLabel(t *testing.T) {
	r := stats.NewRand(6)
	ent := Prefix{Profile: netpath.EnterpriseProfile(10, r)}
	if ConnTypeLabel(&ent) != "enterprise" {
		t.Error("enterprise label wrong")
	}
	res := Prefix{Profile: netpath.ResidentialProfile(10, r)}
	got := ConnTypeLabel(&res)
	if got != "fiber" && got != "cable" && got != "dsl" {
		t.Errorf("residential label = %q", got)
	}
}

func TestSessionPoPMatchesPlan(t *testing.T) {
	p := testPop()
	for id := uint64(1); id <= 500; id++ {
		if got, want := p.SessionPoP(id), p.PlanSession(id).Prefix.PoP; got != want {
			t.Fatalf("session %d: SessionPoP %d != plan PoP %d", id, got, want)
		}
	}
}

func TestPartitionByPoPCoversAllSessions(t *testing.T) {
	p := testPop()
	parts := p.PartitionByPoP(6)
	if len(parts) != 6 {
		t.Fatalf("got %d buckets", len(parts))
	}
	seen := map[uint64]int{}
	for pop, ids := range parts {
		last := uint64(0)
		for _, id := range ids {
			if id <= last {
				t.Fatalf("pop %d: IDs not strictly ascending at %d", pop, id)
			}
			last = id
			seen[id]++
			if got := p.SessionPoP(id); got != pop {
				t.Fatalf("session %d in bucket %d but SessionPoP = %d", id, pop, got)
			}
		}
	}
	for id := uint64(1); id <= uint64(p.Scenario.NumSessions); id++ {
		if seen[id] != 1 {
			t.Fatalf("session %d appears %d times", id, seen[id])
		}
	}
	// Clamping: with a single bucket, everything lands in PoP 0.
	one := p.PartitionByPoP(1)
	if len(one) != 1 || len(one[0]) != p.Scenario.NumSessions {
		t.Fatalf("clamped partition sizes wrong: %d buckets", len(one))
	}
}

// TestSessionArrivalMatchesPlan pins the arrival-only replay to the full
// plan: the runner schedules from SessionArrival and rebuilds the plan at
// arrival time, so the two must agree exactly for every session.
func TestSessionArrivalMatchesPlan(t *testing.T) {
	pop := Build(Scenario{Seed: 42, NumSessions: 500, NumPrefixes: 120})
	for id := uint64(1); id <= 500; id++ {
		if got, want := pop.SessionArrival(id), pop.PlanSession(id).ArrivalMS; got != want {
			t.Fatalf("session %d: SessionArrival %v != plan arrival %v", id, got, want)
		}
	}
}
