package workload

import (
	"testing"

	"vidperf/internal/proxypop"
)

// TestProxyDisabledPathAddsNoAllocations guards the cost of the proxy
// model when it is switched off: a scenario carrying a zero-valued
// proxy config must build no cohort table and plan sessions with
// exactly the allocation count of a scenario that never mentions
// proxies. This is what keeps BenchmarkRunParallel's ns/op and B/op —
// and the benchdiff gate against BENCH_BASELINE.json — unchanged by
// the proxy subsystem: the benchmark scenarios exercise precisely this
// disabled path.
func TestProxyDisabledPathAddsNoAllocations(t *testing.T) {
	base := Scenario{Seed: 7, NumSessions: 512, NumPrefixes: 64}
	withZero := base
	withZero.Proxy = proxypop.Config{}

	plain := Build(base)
	zero := Build(withZero)
	if zero.proxyCohorts != nil {
		t.Fatalf("disabled proxy config built a %d-entry cohort table", len(zero.proxyCohorts))
	}

	// Cycle a fixed window of ids so both measurements average over the
	// same per-session code paths (hidden-session draw, watch clamp, ...).
	plan := func(p *Population) func() {
		id := uint64(0)
		return func() {
			p.PlanSession(id%uint64(p.Scenario.NumSessions) + 1)
			id++
		}
	}
	const rounds = 2000
	plainAllocs := testing.AllocsPerRun(rounds, plan(plain))
	zeroAllocs := testing.AllocsPerRun(rounds, plan(zero))
	if zeroAllocs != plainAllocs {
		t.Fatalf("disabled proxy path changed PlanSession allocations: %.2f vs %.2f per plan",
			zeroAllocs, plainAllocs)
	}

	// And the enabled path must confine its extra cost to proxied
	// sessions: membership is one draw and the cohort table is shared,
	// so the per-plan overhead stays bounded (a handful of allocs for
	// the rewritten identity strings at most).
	enabled := base
	enabled.Proxy = proxypop.Config{Share: 0.23, Cohorts: 3, EgressKbps: 25000}
	enabledAllocs := testing.AllocsPerRun(rounds, plan(Build(enabled)))
	if enabledAllocs > plainAllocs+2 {
		t.Fatalf("enabled proxy path allocates %.2f per plan vs %.2f plain — more than the identity rewrite should cost",
			enabledAllocs, plainAllocs)
	}
}
