// Package workload generates the synthetic population that replays the
// paper's §3 dataset statistics: client /24 prefixes with geography and
// organization types, the browser/OS mix (Chrome 43 / Firefox 37 / IE 13 /
// Safari 6 / other 2; Windows 88.5 / OS X 9.4), Zipf-popular videos,
// proxy-funneled sessions (≈23% removed by preprocessing), and per-session
// plans (platform, path, watch length) the session runner executes.
package workload

import (
	"fmt"

	"vidperf/internal/catalog"
	"vidperf/internal/cdn"
	"vidperf/internal/clientstack"
	"vidperf/internal/geo"
	"vidperf/internal/live"
	"vidperf/internal/netpath"
	"vidperf/internal/proxypop"
	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
	"vidperf/internal/timeline"
)

// Scenario is the master configuration of one simulated measurement
// campaign. Zero fields take defaults that reproduce the paper's shapes at
// laptop scale.
type Scenario struct {
	Seed        uint64
	NumSessions int // default 20000
	NumPrefixes int // default 2500

	Catalog catalog.Config
	Fleet   cdn.FleetConfig

	// ABRName selects the adaptation algorithm ("hybrid" default;
	// see internal/abr for the ablation variants).
	ABRName string

	// Population mix.
	NonUSFrac            float64 // default 0.07 (paper: >93% North America)
	EnterprisePrefixFrac float64 // default 0.10
	SmallBizPrefixFrac   float64 // default 0.08
	ResidentialProxyFrac float64 // default 0.21 (transparent ISP proxies)

	// Session behaviour.
	MeanWatchedChunks float64 // default 10 (geometric-ish abandonment)
	StartThresholdSec float64 // default 6 (one chunk)
	MaxBufferSec      float64 // default 18 (player high-water mark)
	FPS               float64 // default 30

	// ArrivalWindowMS spreads session starts uniformly over this window
	// (default 30 minutes), interleaving sessions at the servers.
	ArrivalWindowMS float64

	// ArrivalOffsetMS shifts every arrival (and the timeline, if any) by a
	// constant virtual-time offset without changing a single RNG draw: the
	// plan head still draws arrivals relative to the window, and the offset
	// is added afterwards. Continuous service mode (internal/serve) uses it
	// to stack an open-ended sequence of window campaigns end to end on one
	// virtual clock; the zero value is byte-identical to the pre-offset
	// behaviour.
	ArrivalOffsetMS float64

	// GPUFrac is the share of clients with hardware rendering
	// (default 0.45).
	GPUFrac float64

	// ColdStart skips cache pre-warming, simulating a freshly deployed
	// CDN instead of the steady state the paper measures (ablation).
	ColdStart bool

	// Parallelism caps how many server-slot shards the session runner executes
	// concurrently: 0 uses GOMAXPROCS, 1 runs the shards sequentially.
	// Sessions never cross PoPs and every shard's randomness derives from
	// (Seed, PoP) alone, so the merged trace is byte-identical at every
	// setting — Parallelism only changes wall-clock time.
	Parallelism int

	// Timeline injects faults and degradations at scheduled virtual
	// times (internal/timeline): PoP outages with failover, backend
	// brownouts, cache shrinks, path degradation, and flash-crowd
	// arrival surges. Per-session effects latch at each session's
	// (possibly rate-warped) arrival time, so the zero value — no
	// phases — is byte-identical to a scenario without a timeline.
	Timeline timeline.Timeline

	// Live switches the catalog from on-demand titles to linear channels
	// (internal/live): sessions join a channel at the live edge and may
	// only request chunks the publish clock has released. The zero value
	// (no channels) is byte-identical to a scenario without live mode —
	// the one channel draw it adds happens only when live is enabled.
	Live live.Config

	// Proxy assigns a share of sessions to shared-egress cohorts with
	// tromboned paths (internal/proxypop) — the populations the paper's
	// §3 preprocessing filters out, modeled instead of discarded. The
	// zero value (no share) is byte-identical to a scenario without the
	// block — the one placement draw it adds happens only when enabled.
	Proxy proxypop.Config
}

// WithDefaults returns the effective scenario with zero fields replaced
// by their defaults — the values Build itself will simulate. Spec loaders
// (internal/experiment) and tests use it to report or assert the
// effective configuration without re-stating the default table.
func (s Scenario) WithDefaults() Scenario {
	if s.NumSessions == 0 {
		s.NumSessions = 20000
	}
	if s.NumPrefixes == 0 {
		s.NumPrefixes = 2500
	}
	if s.ABRName == "" {
		s.ABRName = "hybrid"
	}
	if s.NonUSFrac == 0 {
		s.NonUSFrac = 0.07
	}
	if s.EnterprisePrefixFrac == 0 {
		s.EnterprisePrefixFrac = 0.10
	}
	if s.SmallBizPrefixFrac == 0 {
		s.SmallBizPrefixFrac = 0.08
	}
	if s.ResidentialProxyFrac == 0 {
		s.ResidentialProxyFrac = 0.21
	}
	if s.MeanWatchedChunks == 0 {
		s.MeanWatchedChunks = 10
	}
	if s.StartThresholdSec == 0 {
		s.StartThresholdSec = 6
	}
	if s.MaxBufferSec == 0 {
		// Players pace requests once the buffer reaches the high-water
		// mark; 18 s is a typical production target and gives sessions
		// the idle gaps the 500 ms kernel sampler observes.
		s.MaxBufferSec = 18
	}
	if s.FPS == 0 {
		s.FPS = 30
	}
	if s.ArrivalWindowMS == 0 {
		s.ArrivalWindowMS = 30 * 60 * 1000
	}
	if s.GPUFrac == 0 {
		s.GPUFrac = 0.45
	}
	s.Live = s.Live.WithDefaults()
	s.Proxy = s.Proxy.WithDefaults()
	return s
}

// Prefix is one client /24 with its persistent location and path profile.
type Prefix struct {
	ID      int
	Label   string // synthetic CIDR label
	City    string
	Country string
	US      bool
	Loc     geo.Coord
	PoP     int
	DistKM  float64
	Profile netpath.Profile
	Weight  float64
	// EgressIP is non-empty when the prefix sits behind a proxy; all its
	// sessions share it at the CDN.
	EgressIP string
}

// Population is the generated client+content world.
type Population struct {
	Scenario Scenario
	Prefixes []Prefix
	Catalog  *catalog.Catalog
	PoPs     []geo.PoP

	cumWeights []float64
	// warp is the timeline's precomputed arrival-rate transform (nil =
	// identity); built once here because the planner warps twice per
	// session.
	warp *timeline.ArrivalWarp

	// liveVideos are the per-channel synthetic assets of a live scenario
	// (empty otherwise); liveWeights is the channel-popularity mass the
	// join draw samples from.
	liveVideos  []catalog.Video
	liveWeights []float64

	// proxyCohorts is the shared-egress cohort table of a proxied
	// scenario (empty otherwise), indexed by Cohort.ID-1.
	proxyCohorts []proxypop.Cohort
}

// liveVideoIDBase offsets channel video IDs far above any catalog title
// ID, so live chunk keys can never collide with VoD chunk keys. Channel
// chunk indices stay well under catalog.ChunkKey's 20-bit index field
// (a 30-minute window at 1-second chunks is ~1800 chunks).
const liveVideoIDBase = 1 << 20

// liveSlackChunks extends each channel's schedule past the live edge at
// the end of the arrival window, so late joiners still have a full watch
// length of chunks ahead of them.
const liveSlackChunks = 2048

// Build generates the population for sc. The same seed yields the same
// population.
func Build(sc Scenario) *Population {
	sc = sc.WithDefaults()
	r := stats.NewRand(sc.Seed ^ 0xa5a5a5a5deadbeef)
	pop := &Population{
		Scenario: sc,
		Catalog:  catalog.New(sc.Catalog, r.Split()),
		PoPs:     geo.DefaultPoPs(),
		warp:     sc.Timeline.NewArrivalWarp(sc.ArrivalWindowMS),
	}
	pop.buildPrefixes(r.Split())
	pop.buildLiveChannels()
	pop.buildProxyCohorts()
	return pop
}

// buildProxyCohorts materializes the shared-egress cohort table of a
// proxied scenario. Cohort penalties hash from (seed, cohort ID) and
// the egress contention is a closed-form mean-field share, so building
// the table consumes no RNG draws — the population draw streams are
// byte-identical with the block disabled or absent.
func (p *Population) buildProxyCohorts() {
	pc := p.Scenario.Proxy
	if !pc.Enabled() {
		return
	}
	chunkSec := p.Catalog.ChunkDuration
	if p.Scenario.Live.Enabled() {
		chunkSec = p.Scenario.Live.ChunkDurationSec
	}
	conc := pc.ExpectedConcurrent(p.Scenario.NumSessions, p.Scenario.MeanWatchedChunks,
		chunkSec, p.Scenario.ArrivalWindowMS)
	p.proxyCohorts = pc.BuildCohorts(p.Scenario.Seed, pc.PerSessionEgressKbps(conc))
}

// ProxyCohort returns cohort id's table entry (1-based, matching
// SessionPlan.ProxyCohort). Valid only for proxied scenarios and
// 1 <= id <= Proxy.Cohorts.
func (p *Population) ProxyCohort(id int) *proxypop.Cohort { return &p.proxyCohorts[id-1] }

// buildLiveChannels materializes one synthetic asset per linear channel:
// a long-running "video" whose chunk i the publish clock releases at
// i·chunk_dur. Channel popularity is uniform or zipf-skewed per the live
// config. Channel ranks sit above any PartitionTopRanks setting on
// purpose: a channel consistent-hashes to ONE server slot per PoP (like
// a real live CDN pinning a stream to an edge server), so every viewer
// of a channel shares that server's synchronized hot edge. Per-session
// top-rank spreading would fragment the edge into one miss per slot.
func (p *Population) buildLiveChannels() {
	lc := p.Scenario.Live
	if !lc.Enabled() {
		return
	}
	n := lc.EdgeChunk(p.Scenario.ArrivalWindowMS) + 1 + liveSlackChunks
	p.liveVideos = make([]catalog.Video, lc.Channels)
	p.liveWeights = make([]float64, lc.Channels)
	var zipf *stats.Zipf
	if lc.JoinDist == live.JoinZipf {
		zipf = stats.NewZipf(lc.Channels, lc.JoinZipfS)
	}
	for ch := range p.liveVideos {
		p.liveVideos[ch] = catalog.Video{
			ID:          liveVideoIDBase + ch,
			Rank:        liveVideoIDBase + ch,
			DurationSec: float64(n) * lc.ChunkDurationSec,
			NumChunks:   n,
		}
		if zipf != nil {
			p.liveWeights[ch] = zipf.Prob(ch)
		} else {
			p.liveWeights[ch] = 1
		}
	}
}

// LiveVideo returns channel ch's synthetic asset. Valid only for live
// scenarios and 0 <= ch < Live.Channels.
func (p *Population) LiveVideo(ch int) *catalog.Video { return &p.liveVideos[ch] }

func (p *Population) buildPrefixes(r *stats.Rand) {
	sc := p.Scenario
	usCities := geo.USCities()
	intlCities := geo.InternationalCities()
	usW := cityWeights(usCities)
	intlW := cityWeights(intlCities)

	enterpriseOrg := 0
	resISPs := []string{
		"ResidentialISP#1", "ResidentialISP#2", "ResidentialISP#3",
		"ResidentialISP#4", "ResidentialISP#5",
		"RegionalISP#1", "RegionalISP#2", "RegionalISP#3",
	}
	resISPW := []float64{22, 19, 15, 12, 10, 3, 2, 2}

	for i := 0; i < sc.NumPrefixes; i++ {
		var city geo.City
		us := !r.Bool(sc.NonUSFrac)
		if us {
			city = usCities[r.Choice(usW)]
		} else {
			city = intlCities[r.Choice(intlW)]
		}
		// Scatter clients around the metro center.
		loc := geo.Coord{
			Lat: city.Loc.Lat + r.Norm(0, 0.35),
			Lon: city.Loc.Lon + r.Norm(0, 0.35),
		}
		popIdx, dist := geo.NearestPoP(loc, p.PoPs)
		prop := geo.PropagationRTTms(dist, r.Uniform(1.6, 2.4))

		pr := Prefix{
			ID:      i,
			Label:   fmt.Sprintf("prefix-%04d/24", i),
			City:    city.Name,
			Country: city.Country,
			US:      us,
			Loc:     loc,
			PoP:     popIdx,
			DistKM:  dist,
		}

		switch {
		case r.Bool(sc.EnterprisePrefixFrac):
			pr.Profile = netpath.EnterpriseProfile(prop, r)
			// Enterprises cluster into orgs of a few prefixes; org sizes
			// are heavy-tailed so Table 4's session counts span decades.
			if enterpriseOrg == 0 || r.Bool(0.3) {
				enterpriseOrg++
			}
			pr.Profile.OrgName = fmt.Sprintf("Enterprise#%d", enterpriseOrg)
			pr.Weight = r.Pareto(0.4, 1.3)
		case r.Bool(sc.SmallBizPrefixFrac / (1 - sc.EnterprisePrefixFrac)):
			pr.Profile = netpath.SmallBusinessProfile(prop, r)
			pr.Profile.OrgName = fmt.Sprintf("SmallBiz#%d", i%97)
			pr.Weight = r.Pareto(0.3, 1.4)
		default:
			pr.Profile = netpath.ResidentialProfile(prop, r)
			isp := r.Choice(resISPW)
			pr.Profile.OrgName = resISPs[isp]
			pr.Profile.Proxy = r.Bool(sc.ResidentialProxyFrac)
			pr.Weight = r.Pareto(1.0, 1.6)
		}
		if pr.Profile.Proxy {
			pr.EgressIP = fmt.Sprintf("proxy-%s", pr.Profile.OrgName)
		}
		p.Prefixes = append(p.Prefixes, pr)
	}

	p.cumWeights = make([]float64, len(p.Prefixes))
	var cum float64
	for i := range p.Prefixes {
		cum += p.Prefixes[i].Weight
		p.cumWeights[i] = cum
	}
}

func cityWeights(cs []geo.City) []float64 {
	w := make([]float64, len(cs))
	for i, c := range cs {
		w[i] = c.Weight
	}
	return w
}

// SamplePrefix draws a prefix proportionally to session weight.
func (p *Population) SamplePrefix(r *stats.Rand) *Prefix {
	x := r.Float64() * p.cumWeights[len(p.cumWeights)-1]
	lo, hi := 0, len(p.cumWeights)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cumWeights[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &p.Prefixes[lo]
}

// SessionPlan is everything one session needs to run.
type SessionPlan struct {
	ID        uint64
	ArrivalMS float64
	Prefix    *Prefix
	Video     *catalog.Video
	// WatchChunks is how many chunks the viewer stays for.
	WatchChunks int
	Platform    clientstack.Platform
	// HiddenProb is the per-chunk probability the player is not visible.
	HiddenProb float64
	PathParams tcpmodel.Params
	Stack      clientstack.StackProfile
	// ClientIP / EgressIP implement the §3 proxy-detection signals.
	ClientIP string
	HTTPIP   string

	// Live marks a live-mode session: Video is channel LiveChannel's
	// synthetic asset and playback starts at absolute chunk
	// LiveJoinChunk (the live edge at arrival, minus the join margin),
	// not chunk 0. The runner gates every request on the publish clock.
	Live          bool
	LiveChannel   int
	LiveJoinChunk int

	// Proxied marks a session placed behind a shared egress by the
	// proxy block; ProxyCohort is its 1-based cohort ID (0 otherwise).
	// The cohort's trombone is already folded into PathParams and its
	// egress identity into HTTPIP (and, for non-mismatch sessions,
	// ClientIP), so the session runner only carries the labels through.
	Proxied     bool
	ProxyCohort int

	// ServingPoP is the PoP that serves the session: the prefix's PoP
	// unless a timeline phase has it down at the session's arrival, in
	// which case it is the phase's failover PoP.
	ServingPoP int
	// BackendFactor scales D_BE for the session's cache-miss fetches
	// (timeline backend brownout); 1 outside brownout phases.
	BackendFactor float64
	// FailedOver marks sessions redirected by a PoP outage phase.
	FailedOver bool
}

// PlanSession draws session id's plan. Plans are deterministic in
// (scenario seed, id). The prefix draw must stay the first use of r so
// that SessionPoP predicts the same serving PoP without building a plan.
//
// When the scenario has a timeline, the uniform arrival draw is warped
// through the timeline's arrival-rate function and the phase active at
// the warped arrival (if any) overlays its per-session effects: path
// degradation, backend brownout factor, PoP failover. Both steps are
// pure transforms — no extra RNG draws — so an empty timeline yields
// exactly the pre-timeline plan.
func (p *Population) PlanSession(id uint64) SessionPlan {
	r, pre, video, watch, arrival, lv := p.planHead(id)
	plan := SessionPlan{
		ID:            id,
		ArrivalMS:     arrival,
		Prefix:        pre,
		Video:         video,
		WatchChunks:   watch,
		Live:          p.Scenario.Live.Enabled(),
		LiveChannel:   lv.Channel,
		LiveJoinChunk: lv.Join,
		Platform:      samplePlatform(r, p.Scenario.GPUFrac),
		PathParams:    pre.Profile.SessionParams(r),
		ClientIP:      fmt.Sprintf("10.%d.%d.%d", pre.ID/250, pre.ID%250, 1+r.Intn(250)),
		ServingPoP:    pre.PoP,
		BackendFactor: 1,
	}
	plan.Stack = clientstack.NewStackProfile(plan.Platform, r)
	if r.Bool(0.15) {
		plan.HiddenProb = 0.5
	}
	plan.HTTPIP = plan.ClientIP
	switch {
	case p.Scenario.Proxy.Enabled():
		// The proxy block supersedes the legacy per-prefix egress: one
		// placement draw decides membership, cohort, and beacon
		// mismatch, so the configured share is the exact ground truth.
		if a := p.Scenario.Proxy.Assign(r.Float64()); a.Proxied {
			co := p.ProxyCohort(a.Cohort)
			plan.Proxied = true
			plan.ProxyCohort = a.Cohort
			plan.HTTPIP = co.EgressIP
			if !a.Mismatch {
				// The beacon itself egresses through the proxy: both
				// addresses agree and only the shared-IP volume rule
				// (§3 rule ii) can catch the session.
				plan.ClientIP = co.EgressIP
			}
			plan.PathParams = co.Trombone.Apply(plan.PathParams)
		}
	case pre.EgressIP != "":
		plan.HTTPIP = pre.EgressIP
		// Most proxies also expose the IP mismatch between the CDN's
		// view and the player beacon (§3 rule i); the rest are caught by
		// the shared-IP volume rule (ii).
		if !r.Bool(0.7) {
			plan.ClientIP = plan.HTTPIP
		}
	}
	// Phase effects latch on the window-relative arrival; the constant
	// campaign offset is added last so a timeline and an offset compose as
	// a rigid shift of the whole window.
	p.applyPhaseEffects(&plan)
	plan.ArrivalMS += p.Scenario.ArrivalOffsetMS
	return plan
}

// warpArrival maps a nominal uniform arrival draw through the timeline's
// precomputed arrival-rate transform (identity without a timeline).
func (p *Population) warpArrival(u float64) float64 {
	return p.warp.At(u)
}

// liveHead is the live-mode part of a plan head: the joined channel and
// the arrival-derived start chunk. Zero for VoD scenarios.
type liveHead struct {
	Channel int
	Join    int
}

// planHead replays the shared head of session id's plan — the prefix,
// video, watch-length, and (warped) arrival draws, in exactly the order
// PlanSession consumes them — and returns the RNG positioned for the
// remaining draws. It is the single place that draw order lives, so the
// partitioner, the arrival scheduler, and the full planner can never
// disagree. The returned arrival is window-relative: timeline phase
// lookups key on it, and callers that need the virtual-clock arrival add
// Scenario.ArrivalOffsetMS themselves.
//
// In live mode one extra draw (the channel) follows the arrival draw,
// the channel's asset replaces the sampled title, and the join chunk
// derives from the arrival with no further randomness — so a disabled
// live block leaves the draw stream untouched.
func (p *Population) planHead(id uint64) (r *stats.Rand, pre *Prefix, video *catalog.Video, watch int, arrival float64, lv liveHead) {
	r = stats.NewRand(p.Scenario.Seed ^ (id * 0x9e3779b97f4a7c15))
	pre = p.SamplePrefix(r)
	video = p.Catalog.Sample(r)
	rawWatch := 1 + int(r.Exp(p.Scenario.MeanWatchedChunks-1))
	watch = rawWatch
	if watch > video.NumChunks {
		watch = video.NumChunks
	}
	arrival = p.warpArrival(r.Uniform(0, p.Scenario.ArrivalWindowMS))
	if p.Scenario.Live.Enabled() {
		lv.Channel = r.Choice(p.liveWeights)
		video = &p.liveVideos[lv.Channel]
		lv.Join = p.Scenario.Live.JoinChunk(arrival)
		watch = rawWatch
		if max := video.NumChunks - lv.Join; watch > max {
			watch = max
		}
		if watch < 1 {
			watch = 1
		}
	}
	return r, pre, video, watch, arrival, lv
}

// servingPoP applies the timeline's PoP-outage failover (if any) to a
// session's home PoP at its arrival time — the same rule
// applyPhaseEffects uses for the full plan.
func (p *Population) servingPoP(home int, arrival float64) int {
	if ph := p.Scenario.Timeline.PhaseAt(arrival); ph != nil && ph.Effects.PoPIsDown(home) {
		return ph.Effects.FailoverPoP
	}
	return home
}

// applyPhaseEffects overlays the per-session effects of the timeline
// phase active at the plan's arrival time: network-path degradation,
// the backend brownout factor, and PoP failover. All mutations are pure
// functions of the already-drawn plan, so determinism and the
// plan-replay contracts (SessionArrival, SessionPoP) are preserved.
func (p *Population) applyPhaseEffects(plan *SessionPlan) {
	ph := p.Scenario.Timeline.PhaseAt(plan.ArrivalMS)
	if ph == nil {
		return
	}
	e := ph.Effects
	plan.PathParams.BaseRTTms += e.ExtraRTTms
	plan.PathParams.RandomLossProb += e.ExtraLossProb
	if plan.PathParams.RandomLossProb > 1 {
		plan.PathParams.RandomLossProb = 1
	}
	if e.ThroughputFactor > 0 {
		plan.PathParams.BottleneckKbps *= e.ThroughputFactor
		// Keep the floor SessionParams enforces: a degraded link still
		// moves some bytes.
		if plan.PathParams.BottleneckKbps < 300 {
			plan.PathParams.BottleneckKbps = 300
		}
	}
	plan.BackendFactor = e.BackendFactor()
	if e.PoPIsDown(plan.Prefix.PoP) {
		plan.ServingPoP = e.FailoverPoP
		plan.FailedOver = true
		plan.PathParams.BaseRTTms += e.FailoverExtraRTTms
	}
}

// SessionArrival returns session id's arrival time, replaying only the
// plan draws that precede it (prefix, video, watch length) without
// building the platform, path, or stack state. The sharded runner no
// longer calls it per arrival — PartitionBySlot caches arrivals during
// partitioning — but it remains the contract that pins the arrival draw
// position inside the plan.
func (p *Population) SessionArrival(id uint64) float64 {
	_, _, _, _, arrival, _ := p.planHead(id)
	return arrival + p.Scenario.ArrivalOffsetMS
}

// SessionPoP returns the PoP that will serve session id. It must agree
// with PlanSession's ServingPoP, because the partitioner assigns each
// session to the shard that owns its serving PoP's servers.
func (p *Population) SessionPoP(id uint64) int {
	if !p.Scenario.Timeline.HasPoPOutage() {
		r := stats.NewRand(p.Scenario.Seed ^ (id * 0x9e3779b97f4a7c15))
		return p.SamplePrefix(r).PoP
	}
	_, pre, _, _, arrival, _ := p.planHead(id)
	return p.servingPoP(pre.PoP, arrival)
}

// PartitionByPoP buckets session IDs 1..NumSessions by serving PoP,
// clamping PoPs outside [0, numPoPs) into bucket 0 (the same fallback
// Fleet.ServerFor applies). Within a bucket IDs stay ascending, so shard
// event scheduling matches the order a single global engine would use.
func (p *Population) PartitionByPoP(numPoPs int) [][]uint64 {
	if numPoPs < 1 {
		numPoPs = 1
	}
	parts := make([][]uint64, numPoPs)
	for id := uint64(1); id <= uint64(p.Scenario.NumSessions); id++ {
		pop := p.SessionPoP(id)
		if pop < 0 || pop >= numPoPs {
			pop = 0
		}
		parts[pop] = append(parts[pop], id)
	}
	return parts
}

// SessionRef is the compact per-session record a partition retains: the
// ID plus the already-computed arrival time, so the runner schedules
// arrivals without replaying the plan head a second time. Sixteen bytes
// per session keeps 10M-session campaigns cheap to stage.
type SessionRef struct {
	ID        uint64
	ArrivalMS float64
}

// PartitionBySlot buckets session IDs 1..NumSessions by (serving PoP,
// server slot) — the true interaction granularity of the simulation:
// a session's chunks all land on one server (see cdn.SlotFor), and
// sessions on different servers share no mutable state, so every bucket
// is an independent event system. The returned slice is indexed by
// pop*ServersPerPoP+slot; serving PoPs outside [0, NumPoPs) clamp to
// PoP 0, mirroring Fleet.ServerFor. Within a bucket IDs stay ascending,
// so shard event scheduling matches a single global engine's order.
//
// Each session's plan head is replayed exactly once here; the arrival
// time rides along in the SessionRef instead of being re-derived at
// scheduling time.
//
// The second result is each bucket's planned chunk total (the sum of the
// sessions' watch lengths) — an upper bound on the records the bucket
// will emit (abandonment can only shorten sessions), which lets sinks
// pre-size their buffers.
func (p *Population) PartitionBySlot(cfg cdn.FleetConfig) ([][]SessionRef, []int) {
	cfg = cfg.WithDefaults()
	parts := make([][]SessionRef, cfg.NumPoPs*cfg.ServersPerPoP)
	chunks := make([]int, len(parts))
	for id := uint64(1); id <= uint64(p.Scenario.NumSessions); id++ {
		_, pre, video, watch, arrival, _ := p.planHead(id)
		pop := p.servingPoP(pre.PoP, arrival)
		if pop < 0 || pop >= cfg.NumPoPs {
			pop = 0
		}
		slot := cdn.SlotFor(cfg, video.ID, video.Rank, id)
		b := pop*cfg.ServersPerPoP + slot
		parts[b] = append(parts[b], SessionRef{ID: id, ArrivalMS: arrival + p.Scenario.ArrivalOffsetMS})
		chunks[b] += watch
	}
	return parts, chunks
}

// samplePlatform draws the OS/browser/hardware mix of §3.
func samplePlatform(r *stats.Rand, gpuFrac float64) clientstack.Platform {
	var pl clientstack.Platform
	switch r.Choice([]float64{88.5, 9.4, 2.1}) {
	case 0:
		pl.OS = clientstack.Windows
		pl.Browser = pick(r, []clientstack.Browser{
			clientstack.Chrome, clientstack.Firefox, clientstack.InternetExplorer,
			clientstack.Edge, clientstack.Safari, clientstack.Opera,
			clientstack.Vivaldi, clientstack.Yandex, clientstack.SeaMonkey,
			clientstack.OtherBrowser,
		}, []float64{44, 39, 14.3, 1.2, 0.25, 0.45, 0.2, 0.25, 0.1, 0.25})
	case 1:
		pl.OS = clientstack.MacOS
		pl.Browser = pick(r, []clientstack.Browser{
			clientstack.Safari, clientstack.Chrome, clientstack.Firefox,
			clientstack.Opera, clientstack.OtherBrowser,
		}, []float64{55, 29, 13, 1.5, 1.5})
	default:
		pl.OS = clientstack.Linux
		pl.Browser = pick(r, []clientstack.Browser{
			clientstack.Firefox, clientstack.Chrome, clientstack.Safari,
			clientstack.OtherBrowser,
		}, []float64{55, 40, 1, 4})
	}
	pl.FlashInternal = pl.Browser == clientstack.Chrome ||
		(pl.Browser == clientstack.Safari && pl.OS == clientstack.MacOS)
	pl.GPU = r.Bool(gpuFrac)
	switch r.Choice([]float64{5, 30, 45, 20}) {
	case 0:
		pl.CPUCores = 1
	case 1:
		pl.CPUCores = 2
	case 2:
		pl.CPUCores = 4
	default:
		pl.CPUCores = 8
	}
	if r.Bool(0.2) {
		pl.CPULoad = r.Uniform(0.5, 0.95)
	} else {
		pl.CPULoad = r.Uniform(0.05, 0.45)
	}
	return pl
}

func pick(r *stats.Rand, bs []clientstack.Browser, w []float64) clientstack.Browser {
	return bs[r.Choice(w)]
}

// ConnTypeLabel names the access technology for the session record.
func ConnTypeLabel(pr *Prefix) string {
	switch pr.Profile.Org {
	case netpath.Enterprise:
		return "enterprise"
	case netpath.SmallBusiness:
		return "business"
	}
	switch {
	case pr.Profile.AccessKbps >= 50000:
		return "fiber"
	case pr.Profile.AccessKbps >= 10000:
		return "cable"
	default:
		return "dsl"
	}
}
