package proxydetect

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vidperf/internal/core"
)

// synthSessions builds a deterministic synthetic trace: nClear direct
// sessions on unique IPs, plus shared-egress groups of the given sizes
// (each group one IP, mismatchEvery'th member beaconing its true
// address).
func synthSessions(nClear int, groups []int, mismatchEvery int) []core.SessionRecord {
	var out []core.SessionRecord
	id := uint64(1)
	for i := 0; i < nClear; i++ {
		ip := fmt.Sprintf("10.0.%d.%d", i/250, i%250+1)
		out = append(out, core.SessionRecord{
			SessionID: id, HTTPClientIP: ip, BeaconIP: ip,
			SRTTCV: 0.1, StartupMS: 500, RebufferRate: 0,
		})
		id++
	}
	for g, size := range groups {
		egress := fmt.Sprintf("egress-%04d", g+1)
		for m := 0; m < size; m++ {
			beacon := egress
			if mismatchEvery > 0 && m%mismatchEvery == 0 {
				beacon = fmt.Sprintf("10.9.%d.%d", g, m%250+1)
			}
			out = append(out, core.SessionRecord{
				SessionID: id, HTTPClientIP: egress, BeaconIP: beacon,
				Proxied: true, ProxyCohort: g + 1,
				SRTTCV: 0.9, StartupMS: 2500, RebufferRate: 0.2,
			})
			id++
		}
	}
	return out
}

func detectedCount(vs []Verdict) int {
	n := 0
	for _, v := range vs {
		if v.Suspected() {
			n++
		}
	}
	return n
}

// TestDetectThresholdMonotoneProperty: raising the rule-(ii) volume
// threshold can only shrink (never grow) the detected set — the
// detected share is monotone non-increasing in the threshold.
func TestDetectThresholdMonotoneProperty(t *testing.T) {
	prop := func(seed int64, thrA, thrB uint8) bool {
		r := rand.New(rand.NewSource(seed))
		groups := make([]int, 1+r.Intn(5))
		for i := range groups {
			groups[i] = 1 + r.Intn(120)
		}
		sessions := synthSessions(r.Intn(200), groups, 3)
		lo, hi := int(thrA%100)+1, int(thrB%100)+1
		if lo > hi {
			lo, hi = hi, lo
		}
		nLo := detectedCount(Detect(sessions, Config{MaxSessionsPerEgress: lo}))
		nHi := detectedCount(Detect(sessions, Config{MaxSessionsPerEgress: hi}))
		return nHi <= nLo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestDetectCleanTraceZeroDetections: a trace from a world without a
// proxy block — every session beacons its own low-volume IP — yields
// zero detections, and Evaluate reports perfect scores on it.
func TestDetectCleanTraceZeroDetections(t *testing.T) {
	sessions := synthSessions(300, nil, 0)
	verdicts := Detect(sessions, Config{})
	if n := detectedCount(verdicts); n != 0 {
		t.Fatalf("clean trace produced %d detections", n)
	}
	rep := Evaluate(sessions, verdicts)
	if rep.Precision() != 1 || rep.Recall() != 1 || rep.DetectedShare() != 0 {
		t.Fatalf("clean-trace report off: %+v", rep)
	}
	abl := Ablate(sessions, verdicts)
	if abl.Kept.SRTTCV.N != abl.All.SRTTCV.N {
		t.Fatalf("clean-trace ablation dropped sessions: %+v", abl)
	}
}

// TestDetectPurePermutationInvariant: the detector is a pure function
// of the session multiset — shuffling the input permutes the verdicts
// identically, so any sharding of the trace labels each session the
// same way.
func TestDetectPurePermutationInvariant(t *testing.T) {
	sessions := synthSessions(120, []int{60, 40, 7}, 2)
	base := Detect(sessions, Config{})
	byID := make(map[uint64]Verdict, len(sessions))
	for i := range sessions {
		byID[sessions[i].SessionID] = base[i]
	}
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		perm := append([]core.SessionRecord(nil), sessions...)
		r.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := Detect(perm, Config{})
		for i := range perm {
			if got[i] != byID[perm[i].SessionID] {
				t.Fatalf("trial %d: session %d verdict %+v changed under permutation (want %+v)",
					trial, perm[i].SessionID, got[i], byID[perm[i].SessionID])
			}
		}
	}
	again := Detect(sessions, Config{})
	for i := range base {
		if base[i] != again[i] {
			t.Fatal("Detect is not deterministic on identical input")
		}
	}
}

// TestDetectRules pins the two rules on a hand-built trace: the
// mismatch rule fires exactly on beacon disagreement, the volume rule
// exactly above the threshold, and detection never reads the
// ground-truth fields.
func TestDetectRules(t *testing.T) {
	// One 60-member cohort (volume fires), one 7-member cohort (volume
	// silent; only its mismatching members are caught).
	sessions := synthSessions(10, []int{60, 7}, 2)
	verdicts := Detect(sessions, Config{MaxSessionsPerEgress: 50})
	for i := range sessions {
		s := &sessions[i]
		v := verdicts[i]
		if v.Mismatch != (s.HTTPClientIP != s.BeaconIP) {
			t.Fatalf("session %d mismatch rule %v with IPs %q vs %q",
				s.SessionID, v.Mismatch, s.HTTPClientIP, s.BeaconIP)
		}
		if s.HTTPClientIP == "egress-0001" && !v.HighVolume {
			t.Fatalf("60-member egress not flagged high-volume")
		}
		if s.HTTPClientIP == "egress-0002" && v.HighVolume {
			t.Fatalf("7-member egress flagged high-volume at threshold 50")
		}
	}
	// Ground truth must not leak into detection: flipping Proxied on a
	// copy changes no verdict.
	flipped := append([]core.SessionRecord(nil), sessions...)
	for i := range flipped {
		flipped[i].Proxied = !flipped[i].Proxied
	}
	got := Detect(flipped, Config{MaxSessionsPerEgress: 50})
	for i := range verdicts {
		if got[i] != verdicts[i] {
			t.Fatal("detection read the ground-truth Proxied field")
		}
	}
}

// TestEvaluateConfusion pins the confusion-matrix arithmetic and the
// degenerate-denominator conventions.
func TestEvaluateConfusion(t *testing.T) {
	sessions := synthSessions(10, []int{60}, 2)
	rep := Evaluate(sessions, Detect(sessions, Config{MaxSessionsPerEgress: 50}))
	if rep.Sessions != 70 || rep.TruthProxied != 60 {
		t.Fatalf("report totals off: %+v", rep)
	}
	if rep.TruePositives != 60 || rep.FalsePositives != 0 || rep.FalseNegatives != 0 {
		t.Fatalf("confusion off: %+v", rep)
	}
	if rep.Precision() != 1 || rep.Recall() != 1 {
		t.Fatalf("scores off: precision=%g recall=%g", rep.Precision(), rep.Recall())
	}
	if got := rep.DetectedShare() - rep.TruthShare(); math.Abs(got) > 1e-12 {
		t.Fatalf("share delta %g on a fully-volume-detected cohort", got)
	}
}

// TestAblateSplitsKept: the ablation keeps exactly the unsuspected
// sessions, skips NaN startups, and shows the tromboned tail deflating
// once proxied sessions are removed.
func TestAblateSplitsKept(t *testing.T) {
	sessions := synthSessions(100, []int{60}, 1)
	sessions[0].StartupMS = math.NaN() // a never-started direct session
	verdicts := Detect(sessions, Config{MaxSessionsPerEgress: 50})
	abl := Ablate(sessions, verdicts)
	if abl.All.SRTTCV.N != 160 || abl.Kept.SRTTCV.N != 100 {
		t.Fatalf("ablation sizes off: all=%d kept=%d", abl.All.SRTTCV.N, abl.Kept.SRTTCV.N)
	}
	if abl.All.StartupMS.N != 159 || abl.Kept.StartupMS.N != 99 {
		t.Fatalf("NaN startup not skipped: all=%d kept=%d", abl.All.StartupMS.N, abl.Kept.StartupMS.N)
	}
	if !(abl.Kept.SRTTCV.P90 < abl.All.SRTTCV.P90) {
		t.Fatalf("removing tromboned sessions did not deflate the CV tail: %+v", abl)
	}
	if q := quantiles(nil); q.N != 0 || !math.IsNaN(q.P50) {
		t.Fatalf("empty quantiles = %+v", q)
	}
}

// TestEvaluateEdgeCases pins the degenerate-denominator conventions
// (empty trace, nothing detected, nothing proxied) and the
// false-positive arm: a clear session swept up by a shared-IP beacon
// mismatch counts against precision.
func TestEvaluateEdgeCases(t *testing.T) {
	if rep := Evaluate(nil, nil); rep.DetectedShare() != 0 || rep.TruthShare() != 0 ||
		rep.Precision() != 1 || rep.Recall() != 1 {
		t.Fatalf("empty report conventions off: %+v", rep)
	}
	// A direct session whose beacon disagrees (e.g. a mobile client that
	// changed networks mid-session) is a false positive of rule (i).
	sessions := synthSessions(5, []int{60}, 0)
	sessions[0].BeaconIP = "172.16.0.9"
	rep := Evaluate(sessions, Detect(sessions, Config{MaxSessionsPerEgress: 50}))
	if rep.FalsePositives != 1 || rep.TruePositives != 60 {
		t.Fatalf("confusion off: %+v", rep)
	}
	if rep.Precision() >= 1 || rep.Recall() != 1 {
		t.Fatalf("scores off: precision=%g recall=%g", rep.Precision(), rep.Recall())
	}
	if rep.MismatchDetected != 1 || rep.VolumeDetected != 60 {
		t.Fatalf("per-rule tallies off: %+v", rep)
	}
}
