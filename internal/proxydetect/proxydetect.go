// Package proxydetect reproduces the paper's §3 proxy-detection
// preprocessing as a scoreable, pure-function detector. It applies the
// two published rules to a session trace — (i) the CDN-seen HTTP client
// IP disagrees with the player-beacon IP, (ii) one client IP carries
// implausibly many sessions — and, because simulated traces carry the
// proxypop ground truth, it can also grade itself (precision/recall
// against SessionRecord.Proxied) and quantify the ablation: what the
// paper's QoE numbers would look like had proxied sessions stayed in.
//
// Detection reads only the evidence a real beacon pipeline has
// (HTTPClientIP, BeaconIP, per-IP session counts) — never the
// ground-truth Proxied/ProxyCohort fields, which are reserved for
// Evaluate's scoring. Every function is deterministic and
// permutation-invariant over the session order.
package proxydetect

import (
	"math"

	"vidperf/internal/core"
	"vidperf/internal/stats"
)

// DefaultMaxSessionsPerEgress is the rule-(ii) volume threshold: more
// sessions behind one IP than this flags the IP as a shared egress. 50
// matches core.ProxyFilterConfig's laptop-scale default.
const DefaultMaxSessionsPerEgress = 50

// Config tunes the detector.
type Config struct {
	// MaxSessionsPerEgress is the rule-(ii) threshold; <= 0 selects
	// DefaultMaxSessionsPerEgress.
	MaxSessionsPerEgress int
}

// WithDefaults returns the config with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.MaxSessionsPerEgress <= 0 {
		c.MaxSessionsPerEgress = DefaultMaxSessionsPerEgress
	}
	return c
}

// Verdict is one session's detection outcome, aligned by index with the
// input sessions.
type Verdict struct {
	// Mismatch fires rule (i): HTTPClientIP != BeaconIP.
	Mismatch bool
	// HighVolume fires rule (ii): the session's HTTP client IP carries
	// more than the threshold's worth of sessions.
	HighVolume bool
}

// Suspected reports whether either rule fired.
func (v Verdict) Suspected() bool { return v.Mismatch || v.HighVolume }

// Detect applies the two §3 rules to every session and returns one
// verdict per input session, in input order. It is a pure function of
// the multiset of sessions: the per-IP counts make each verdict depend
// only on the session itself plus IP totals, so permuting or sharding
// the input permutes the verdicts identically.
func Detect(sessions []core.SessionRecord, cfg Config) []Verdict {
	cfg = cfg.WithDefaults()
	perIP := make(map[string]int, len(sessions))
	for i := range sessions {
		perIP[sessions[i].HTTPClientIP]++
	}
	out := make([]Verdict, len(sessions))
	for i := range sessions {
		s := &sessions[i]
		out[i] = Verdict{
			Mismatch:   s.HTTPClientIP != s.BeaconIP,
			HighVolume: perIP[s.HTTPClientIP] > cfg.MaxSessionsPerEgress,
		}
	}
	return out
}

// Report scores the verdicts against the trace's ground truth.
type Report struct {
	Sessions int
	Detected int
	// TruthProxied counts sessions the model placed behind a shared
	// egress (SessionRecord.Proxied — ground truth, used for scoring
	// only).
	TruthProxied int

	// Confusion counts: detected∧proxied, detected∧direct, missed
	// proxied.
	TruePositives  int
	FalsePositives int
	FalseNegatives int

	// Per-rule detection counts (a session can fire both).
	MismatchDetected int
	VolumeDetected   int
}

// DetectedShare is the fraction of sessions the detector would remove.
func (r Report) DetectedShare() float64 {
	if r.Sessions == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Sessions)
}

// TruthShare is the ground-truth proxied fraction.
func (r Report) TruthShare() float64 {
	if r.Sessions == 0 {
		return 0
	}
	return float64(r.TruthProxied) / float64(r.Sessions)
}

// Precision is TP/(TP+FP), defined as 1 when nothing was detected.
func (r Report) Precision() float64 {
	if r.Detected == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositives)
}

// Recall is TP/(TP+FN), defined as 1 when nothing was proxied.
func (r Report) Recall() float64 {
	if r.TruthProxied == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegatives)
}

// Evaluate scores verdicts (from Detect) against the sessions' ground
// truth. sessions and verdicts must be index-aligned.
func Evaluate(sessions []core.SessionRecord, verdicts []Verdict) Report {
	rep := Report{Sessions: len(sessions)}
	for i := range sessions {
		truth := sessions[i].Proxied
		det := verdicts[i].Suspected()
		if truth {
			rep.TruthProxied++
		}
		if det {
			rep.Detected++
			if verdicts[i].Mismatch {
				rep.MismatchDetected++
			}
			if verdicts[i].HighVolume {
				rep.VolumeDetected++
			}
		}
		switch {
		case det && truth:
			rep.TruePositives++
		case det && !truth:
			rep.FalsePositives++
		case !det && truth:
			rep.FalseNegatives++
		}
	}
	return rep
}

// Quantiles summarizes one metric's distribution with exact (sorted)
// order statistics — the ablation compares small filtered populations,
// where sketch error would drown the deltas.
type Quantiles struct {
	N             int
	P50, P90, P99 float64
}

// quantiles computes the summary, skipping NaNs (never-started startup).
func quantiles(xs []float64) Quantiles {
	vals := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			vals = append(vals, x)
		}
	}
	q := Quantiles{N: len(vals)}
	if len(vals) == 0 {
		q.P50, q.P90, q.P99 = math.NaN(), math.NaN(), math.NaN()
		return q
	}
	q.P50 = stats.Quantile(vals, 0.50)
	q.P90 = stats.Quantile(vals, 0.90)
	q.P99 = stats.Quantile(vals, 0.99)
	return q
}

// Ablation is the filtered-vs-unfiltered comparison of §3: the QoE and
// path statistics over every session (proxies in, what the paper never
// reports) versus the sessions the detector keeps (proxies out, the
// paper's published view).
type Ablation struct {
	All  AblationSide
	Kept AblationSide
}

// AblationSide is one side's distribution summaries.
type AblationSide struct {
	SRTTCV       Quantiles
	StartupMS    Quantiles
	RebufferRate Quantiles
}

// Ablate computes the filtered-vs-unfiltered snapshot delta from the
// verdicts: Kept covers only sessions no rule fired on. sessions and
// verdicts must be index-aligned.
func Ablate(sessions []core.SessionRecord, verdicts []Verdict) Ablation {
	var allCV, allStart, allRebuf []float64
	var keptCV, keptStart, keptRebuf []float64
	for i := range sessions {
		s := &sessions[i]
		allCV = append(allCV, s.SRTTCV)
		allStart = append(allStart, s.StartupMS)
		allRebuf = append(allRebuf, s.RebufferRate)
		if !verdicts[i].Suspected() {
			keptCV = append(keptCV, s.SRTTCV)
			keptStart = append(keptStart, s.StartupMS)
			keptRebuf = append(keptRebuf, s.RebufferRate)
		}
	}
	return Ablation{
		All: AblationSide{
			SRTTCV:       quantiles(allCV),
			StartupMS:    quantiles(allStart),
			RebufferRate: quantiles(allRebuf),
		},
		Kept: AblationSide{
			SRTTCV:       quantiles(keptCV),
			StartupMS:    quantiles(keptStart),
			RebufferRate: quantiles(keptRebuf),
		},
	}
}
