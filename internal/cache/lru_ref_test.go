package cache

import (
	"container/list"
	"testing"

	"vidperf/internal/stats"
)

// refLRU is the straightforward container/list implementation the
// arena-backed LRU replaced. It exists only as a differential-testing
// oracle: the two must agree on every observable (hit/miss outcomes,
// eviction order, size accounting) for any operation sequence.
type refLRU struct {
	capacity int64
	size     int64
	ll       *list.List
	items    map[uint64]*list.Element
}

type refEntry struct {
	key  uint64
	size int64
}

func newRefLRU(capacity int64) *refLRU {
	return &refLRU{capacity: capacity, ll: list.New(), items: make(map[uint64]*list.Element)}
}

func (c *refLRU) Get(key uint64) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.MoveToFront(el)
	return true
}

func (c *refLRU) Put(key uint64, size int64) {
	if size <= 0 || size > c.capacity {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*refEntry)
		c.size += size - e.size
		e.size = size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&refEntry{key: key, size: size})
		c.size += size
	}
	for c.size > c.capacity {
		el := c.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*refEntry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.size -= e.size
	}
}

func (c *refLRU) Contains(key uint64) bool { _, ok := c.items[key]; return ok }

func (c *refLRU) Remove(key uint64) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*refEntry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.size -= e.size
	}
}

func (c *refLRU) Resize(capacity int64) {
	if capacity < 1 {
		capacity = 1
	}
	c.capacity = capacity
	for c.size > c.capacity && c.ll.Len() > 0 {
		el := c.ll.Back()
		e := el.Value.(*refEntry)
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.size -= e.size
	}
}

// recencyOrder returns the reference cache's keys from most to least
// recently used.
func (c *refLRU) recencyOrder() []uint64 {
	var out []uint64
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*refEntry).key)
	}
	return out
}

// recencyOrder walks the arena list from head (MRU) to tail (LRU).
func (c *LRU) recencyOrder() []uint64 {
	var out []uint64
	for n := c.head; n != lruNil; n = c.next[n] {
		out = append(out, c.keys[n])
	}
	return out
}

// TestLRUMatchesReference drives the arena LRU and the container/list
// oracle through long randomized operation sequences (gets, puts,
// re-puts, removals, resizes over a small key space so evictions and
// collisions are constant) and demands identical observables after every
// step — including the full recency order, which pins eviction order
// exactly.
func TestLRUMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := stats.NewRand(seed)
		c := NewLRU(10_000)
		ref := newRefLRU(10_000)
		for op := 0; op < 20_000; op++ {
			key := uint64(r.Intn(400))
			switch r.Intn(10) {
			case 0:
				c.Remove(key)
				ref.Remove(key)
			case 1:
				if got, want := c.Get(key), ref.Get(key); got != want {
					t.Fatalf("seed %d op %d: Get(%d) = %v, reference %v", seed, op, key, got, want)
				}
			case 2:
				// Occasionally resize within a band that forces evictions.
				cap := int64(2_000 + r.Intn(12_000))
				c.Resize(cap)
				ref.Resize(cap)
			default:
				size := int64(1 + r.Intn(1_500))
				c.Put(key, size)
				ref.Put(key, size)
			}
			if c.Size() != ref.size || c.Len() != len(ref.items) {
				t.Fatalf("seed %d op %d: size/len = %d/%d, reference %d/%d",
					seed, op, c.Size(), c.Len(), ref.size, len(ref.items))
			}
		}
		got, want := c.recencyOrder(), ref.recencyOrder()
		if len(got) != len(want) {
			t.Fatalf("seed %d: recency length %d, reference %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: recency[%d] = %d, reference %d", seed, i, got[i], want[i])
			}
		}
	}
}

// TestLRUDegenerateOps covers the paths randomized runs hit rarely:
// oversized and non-positive puts, removing absent keys, and resizing an
// empty cache.
func TestLRUDegenerateOps(t *testing.T) {
	c := NewLRU(100)
	c.Put(1, 0)
	c.Put(2, -5)
	c.Put(3, 101)
	if c.Len() != 0 || c.Size() != 0 {
		t.Fatalf("degenerate puts were admitted: len=%d size=%d", c.Len(), c.Size())
	}
	c.Remove(42)
	c.Resize(0) // clamps to 1
	if c.Capacity() != 1 {
		t.Fatalf("Resize(0) capacity = %d, want 1", c.Capacity())
	}
	c.Resize(10)
	c.Put(7, 10)
	if !c.Contains(7) || c.Size() != 10 {
		t.Fatalf("exact-fit put failed: contains=%v size=%d", c.Contains(7), c.Size())
	}
	c.Put(8, 10)
	if c.Contains(7) || !c.Contains(8) {
		t.Fatalf("eviction on exact-capacity replacement failed")
	}
}
