// policy_test.go hardens the priority-cache policies at the level the
// ablation benches depend on: exact eviction order, deterministic
// tie-breaking, and byte accounting across in-place updates — plus the
// multi-level RAM/disk promotion and demotion cycle.
package cache

import "testing"

// TestGDSizeEvictionOrder: GD-Size priority is L + 1e6/size, so larger
// objects go first, in size order, until the newcomer fits.
func TestGDSizeEvictionOrder(t *testing.T) {
	c := NewGDSize(1000)
	c.Put(1, 500) // lowest priority (largest)
	c.Put(2, 300)
	c.Put(3, 200)
	// 400 bytes arrive: evicting key 1 alone (500 bytes) must suffice;
	// the smaller, higher-priority keys stay.
	c.Put(4, 400)
	if c.Contains(1) {
		t.Error("largest (lowest-priority) object survived")
	}
	for _, k := range []uint64{2, 3, 4} {
		if !c.Contains(k) {
			t.Errorf("key %d evicted out of priority order", k)
		}
	}
	if c.Size() != 900 {
		t.Errorf("size = %d, want 900", c.Size())
	}
	// Next pressure round: key 4 (400 bytes) is now the largest resident.
	c.Put(5, 300)
	if c.Contains(4) {
		t.Error("eviction order wrong on second round")
	}
	if !c.Contains(2) || !c.Contains(3) || !c.Contains(5) {
		t.Error("higher-priority objects evicted")
	}
}

// TestGDSizeTieBreaking: equal sizes mean equal priorities; the older
// insertion is evicted first (heap ties break on insertion tick).
func TestGDSizeTieBreaking(t *testing.T) {
	c := NewGDSize(300)
	c.Put(10, 100)
	c.Put(11, 100)
	c.Put(12, 100)
	c.Put(13, 100) // one must go: key 10, the oldest of the equal class
	if c.Contains(10) {
		t.Error("tie did not evict the oldest entry")
	}
	for _, k := range []uint64{11, 12, 13} {
		if !c.Contains(k) {
			t.Errorf("key %d evicted despite younger tie-break rank", k)
		}
	}
}

// TestGreedyDualByteAccountingAfterUpdate: re-putting a resident key
// with a new size must adjust Size by the delta, and shrinking must not
// trigger eviction.
func TestGreedyDualByteAccountingAfterUpdate(t *testing.T) {
	for _, c := range []Policy{NewGDSize(1000), NewGDSF(1000)} {
		c.Put(1, 400)
		c.Put(2, 400)
		if c.Size() != 800 {
			t.Fatalf("%s: size = %d, want 800", c.Name(), c.Size())
		}
		c.Put(1, 100) // shrink in place
		if c.Size() != 500 || c.Len() != 2 {
			t.Errorf("%s: after shrink size = %d len = %d, want 500/2", c.Name(), c.Size(), c.Len())
		}
		c.Put(1, 600) // grow in place: 600+400 fits exactly
		if c.Size() != 1000 || !c.Contains(1) || !c.Contains(2) {
			t.Errorf("%s: after grow size = %d, want 1000 with both resident", c.Name(), c.Size())
		}
		// Grow beyond capacity: must evict, never overflow. At 700 bytes
		// key 1's priority (∝ 1/size) drops below key 2's, so GD-Size
		// evicts the freshly-grown object itself — the correct victim.
		c.Put(1, 700)
		if c.Size() > c.Capacity() {
			t.Errorf("%s: size %d exceeds capacity %d after growth eviction", c.Name(), c.Size(), c.Capacity())
		}
		if c.Contains(1) || !c.Contains(2) || c.Size() != 400 {
			t.Errorf("%s: after growth eviction contains(1)=%v contains(2)=%v size=%d, want false/true/400",
				c.Name(), c.Contains(1), c.Contains(2), c.Size())
		}
	}
}

// TestLFUTieBreaking: equal frequencies evict the older insertion first.
func TestLFUTieBreaking(t *testing.T) {
	c := NewLFU(300)
	c.Put(1, 100)
	c.Put(2, 100)
	c.Put(3, 100)
	c.Put(4, 100) // all at frequency 1: key 1 is the tie-break victim
	if c.Contains(1) {
		t.Error("tie did not evict the oldest equal-frequency entry")
	}
	if !c.Contains(2) || !c.Contains(3) || !c.Contains(4) {
		t.Error("younger equal-frequency entries evicted")
	}
}

// TestLFUByteAccountingAfterUpdate: a resident re-Put keeps one entry
// and tracks the byte delta; eviction under growth respects frequency.
func TestLFUByteAccountingAfterUpdate(t *testing.T) {
	c := NewLFU(1000)
	c.Put(1, 400)
	c.Put(2, 400)
	c.Get(1) // key 1 now hotter
	c.Put(1, 900)
	if c.Len() != 1 || !c.Contains(1) || c.Contains(2) {
		t.Fatalf("growth eviction kept the cold key: len=%d", c.Len())
	}
	if c.Size() != 900 {
		t.Errorf("size = %d, want 900", c.Size())
	}
	c.Remove(1)
	if c.Size() != 0 || c.Len() != 0 {
		t.Errorf("after remove: size = %d len = %d", c.Size(), c.Len())
	}
}

// TestMultiLevelDemotionCycle: a RAM eviction demotes an object to
// disk-only; the next lookup is a disk hit that re-promotes it, evicting
// its rival in turn.
func TestMultiLevelDemotionCycle(t *testing.T) {
	m := NewLRUMultiLevel(100, 1000)
	m.Insert(1, 60)
	m.Insert(2, 60) // RAM (100B) can hold only one: key 1 demoted
	if m.RAM.Contains(1) {
		t.Fatal("RAM kept both objects past capacity")
	}
	if !m.Disk.Contains(1) || !m.Disk.Contains(2) {
		t.Fatal("demotion lost the disk copy")
	}
	// Looking key 1 up again: a disk hit that promotes it back to RAM,
	// demoting key 2.
	if lv := m.Lookup(1, 60); lv != LevelDisk {
		t.Fatalf("demoted object looked up at level %v, want disk", lv)
	}
	if !m.RAM.Contains(1) || m.RAM.Contains(2) {
		t.Fatal("disk hit did not re-promote / demote")
	}
	if lv := m.Lookup(1, 60); lv != LevelRAM {
		t.Fatalf("promoted object looked up at level %v, want ram", lv)
	}
	// Both copies still on disk; stats recorded one RAM hit, two RAM
	// misses... (three lookups total: disk-hit, ram-hit).
	if got := m.RAMStats.Requests(); got != 2 {
		t.Errorf("RAM lookups = %d, want 2", got)
	}
	if m.DiskStats.Hits != 1 {
		t.Errorf("disk hits = %d, want 1", m.DiskStats.Hits)
	}
}
