package cache

import "container/heap"

// priorityCache is the shared heap machinery behind LFU, perfect-LFU and
// the GreedyDual family: a byte-capacity cache that always evicts the
// resident object with the smallest priority.
type priorityCache struct {
	capacity int64
	size     int64
	items    map[uint64]*pcEntry
	heap     pcHeap
	tick     uint64 // insertion counter for deterministic tie-breaking

	// evicted is a reusable scratch list of keys the last insert displaced,
	// so policies can release per-key metadata without scanning.
	evicted []uint64
}

type pcEntry struct {
	key      uint64
	size     int64
	priority float64
	tick     uint64
	index    int // heap index
}

type pcHeap []*pcEntry

func (h pcHeap) Len() int { return len(h) }
func (h pcHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].tick < h[j].tick // older entry evicted first on ties
}
func (h pcHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *pcHeap) Push(x interface{}) {
	e := x.(*pcEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *pcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func newPriorityCache(capacity int64) priorityCache {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	return priorityCache{capacity: capacity, items: make(map[uint64]*pcEntry)}
}

func (c *priorityCache) contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

func (c *priorityCache) setPriority(key uint64, p float64) {
	if e, ok := c.items[key]; ok {
		e.priority = p
		heap.Fix(&c.heap, e.index)
	}
}

// insert adds key, evicting minimum-priority entries until it fits.
// It returns the priority of the last evicted entry (the GreedyDual "L"
// update), or 0 if nothing was evicted.
func (c *priorityCache) insert(key uint64, size int64, priority float64) (lastEvicted float64) {
	c.evicted = c.evicted[:0]
	if size <= 0 || size > c.capacity {
		return 0
	}
	if e, ok := c.items[key]; ok {
		c.size += size - e.size
		e.size = size
		e.priority = priority
		heap.Fix(&c.heap, e.index)
	} else {
		c.tick++
		e := &pcEntry{key: key, size: size, priority: priority, tick: c.tick}
		c.items[key] = e
		heap.Push(&c.heap, e)
		c.size += size
	}
	for c.size > c.capacity && len(c.heap) > 0 {
		ev := heap.Pop(&c.heap).(*pcEntry)
		delete(c.items, ev.key)
		c.size -= ev.size
		c.evicted = append(c.evicted, ev.key)
		lastEvicted = ev.priority
	}
	return lastEvicted
}

// resize sets a new capacity and evicts minimum-priority entries until
// the resident set fits, recording them in c.evicted so policies can
// release per-key metadata.
func (c *priorityCache) resize(capacity int64) {
	if capacity < 1 {
		capacity = 1
	}
	c.capacity = capacity
	c.evicted = c.evicted[:0]
	for c.size > c.capacity && len(c.heap) > 0 {
		ev := heap.Pop(&c.heap).(*pcEntry)
		delete(c.items, ev.key)
		c.size -= ev.size
		c.evicted = append(c.evicted, ev.key)
	}
}

func (c *priorityCache) remove(key uint64) {
	if e, ok := c.items[key]; ok {
		heap.Remove(&c.heap, e.index)
		delete(c.items, key)
		c.size -= e.size
	}
}

// LFU evicts the resident object with the fewest accesses since insertion
// (in-cache frequency only; counts are lost on eviction).
type LFU struct {
	pc    priorityCache
	freqs map[uint64]float64
}

// NewLFU returns an in-cache LFU policy with the given byte capacity.
func NewLFU(capacity int64) *LFU {
	return &LFU{pc: newPriorityCache(capacity), freqs: make(map[uint64]float64)}
}

// Name implements Policy.
func (c *LFU) Name() string { return "lfu" }

// Get implements Policy.
func (c *LFU) Get(key uint64) bool {
	if !c.pc.contains(key) {
		return false
	}
	c.freqs[key]++
	c.pc.setPriority(key, c.freqs[key])
	return true
}

// Put implements Policy.
func (c *LFU) Put(key uint64, size int64) {
	if !c.pc.contains(key) {
		c.freqs[key] = 1
	}
	c.pc.insert(key, size, c.freqs[key])
	// In-cache LFU: counters die with eviction.
	for _, k := range c.pc.evicted {
		delete(c.freqs, k)
	}
}

// Contains implements Policy.
func (c *LFU) Contains(key uint64) bool { return c.pc.contains(key) }

// Remove implements Policy.
func (c *LFU) Remove(key uint64) {
	c.pc.remove(key)
	delete(c.freqs, key)
}

// Len implements Policy.
func (c *LFU) Len() int { return len(c.pc.items) }

// Size implements Policy.
func (c *LFU) Size() int64 { return c.pc.size }

// Capacity implements Policy.
func (c *LFU) Capacity() int64 { return c.pc.capacity }

// Resize implements Policy; in-cache counters die with resize evictions,
// exactly as with insert evictions.
func (c *LFU) Resize(capacity int64) {
	c.pc.resize(capacity)
	for _, k := range c.pc.evicted {
		delete(c.freqs, k)
	}
}

var _ Policy = (*LFU)(nil)

// PerfectLFU evicts by all-time access frequency: counts survive eviction,
// which is the "perfect-LFU" policy the paper's §4.1 take-away suggests for
// popularity-heavy workloads (after Breslau et al.).
type PerfectLFU struct {
	pc    priorityCache
	freqs map[uint64]float64 // persists across evictions
}

// NewPerfectLFU returns a perfect-LFU policy with the given byte capacity.
func NewPerfectLFU(capacity int64) *PerfectLFU {
	return &PerfectLFU{pc: newPriorityCache(capacity), freqs: make(map[uint64]float64)}
}

// Name implements Policy.
func (c *PerfectLFU) Name() string { return "perfect-lfu" }

// Get implements Policy.
func (c *PerfectLFU) Get(key uint64) bool {
	c.freqs[key]++
	if !c.pc.contains(key) {
		return false
	}
	c.pc.setPriority(key, c.freqs[key])
	return true
}

// Put implements Policy.
func (c *PerfectLFU) Put(key uint64, size int64) {
	if c.freqs[key] == 0 {
		c.freqs[key] = 1
	}
	c.pc.insert(key, size, c.freqs[key])
}

// Contains implements Policy.
func (c *PerfectLFU) Contains(key uint64) bool { return c.pc.contains(key) }

// Remove implements Policy.
func (c *PerfectLFU) Remove(key uint64) { c.pc.remove(key) }

// Len implements Policy.
func (c *PerfectLFU) Len() int { return len(c.pc.items) }

// Size implements Policy.
func (c *PerfectLFU) Size() int64 { return c.pc.size }

// Capacity implements Policy.
func (c *PerfectLFU) Capacity() int64 { return c.pc.capacity }

// Resize implements Policy; all-time frequency counts survive, as they
// do for ordinary evictions.
func (c *PerfectLFU) Resize(capacity int64) { c.pc.resize(capacity) }

var _ Policy = (*PerfectLFU)(nil)
