package cache

import "container/list"

// LRU is a least-recently-used byte-capacity cache, the Apache Traffic
// Server default eviction policy the paper's CDN runs.
type LRU struct {
	capacity int64
	size     int64
	ll       *list.List // front = most recent
	items    map[uint64]*list.Element
}

type lruEntry struct {
	key  uint64
	size int64
}

// NewLRU returns an LRU cache holding at most capacity bytes.
// It panics if capacity <= 0.
func NewLRU(capacity int64) *LRU {
	if capacity <= 0 {
		panic("cache: NewLRU capacity must be positive")
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[uint64]*list.Element),
	}
}

// Name implements Policy.
func (c *LRU) Name() string { return "lru" }

// Get implements Policy.
func (c *LRU) Get(key uint64) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.MoveToFront(el)
	return true
}

// Put implements Policy.
func (c *LRU) Put(key uint64, size int64) {
	if size <= 0 || size > c.capacity {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.size += size - e.size
		e.size = size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, size: size})
		c.size += size
	}
	for c.size > c.capacity {
		c.evictOldest()
	}
}

func (c *LRU) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.size -= e.size
}

// Contains implements Policy.
func (c *LRU) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Remove implements Policy.
func (c *LRU) Remove(key uint64) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.size -= e.size
	}
}

// Len implements Policy.
func (c *LRU) Len() int { return len(c.items) }

// Size implements Policy.
func (c *LRU) Size() int64 { return c.size }

// Capacity implements Policy.
func (c *LRU) Capacity() int64 { return c.capacity }

// Resize implements Policy: least-recent entries are evicted until the
// resident set fits the new capacity.
func (c *LRU) Resize(capacity int64) {
	if capacity < 1 {
		capacity = 1
	}
	c.capacity = capacity
	for c.size > c.capacity && c.ll.Len() > 0 {
		c.evictOldest()
	}
}

var _ Policy = (*LRU)(nil)
