package cache

import "math"

// LRU is a least-recently-used byte-capacity cache, the Apache Traffic
// Server default eviction policy the paper's CDN runs.
//
// The implementation is allocation-conscious: entries live in a flat
// arena of parallel pointer-free slices (key, size, prev/next links as
// int32 indexes — an intrusive doubly-linked list with a free list), and
// the key index is an open-addressing table that stores a 16-bit hash
// fingerprint plus the arena index, resolving fingerprint collisions
// against the arena's full keys. A warmed CDN-sized cache therefore
// costs 20 bytes per resident object plus 6 bytes per index slot, all
// pointer-free, where the previous container/list+map implementation
// allocated a list element and a map cell per insert and made the GC
// trace millions of long-lived pointers. The observable behaviour
// (hit/miss outcomes and eviction order) is bit-for-bit the policy
// behaviour LRU has always had.
//
// Object sizes are stored as int32: anything larger than 2 GiB - 1 is
// treated as uncacheable (Put is a no-op), the same way objects larger
// than the capacity already are. Chunk sizes in this simulator top out
// in the megabytes.
type LRU struct {
	capacity int64
	size     int64

	// Arena: parallel per-node slices, linked by int32 indexes.
	keys  []uint64
	sizes []int32
	prev  []int32
	next  []int32

	free int32 // head of the free-node list (chained via next), lruNil if empty
	head int32 // most recently used, lruNil if empty
	tail int32 // least recently used, lruNil if empty

	index lruTable
}

// lruNil marks "no node" in arena links.
const lruNil = int32(-1)

// NewLRU returns an LRU cache holding at most capacity bytes.
// It panics if capacity <= 0.
func NewLRU(capacity int64) *LRU {
	if capacity <= 0 {
		panic("cache: NewLRU capacity must be positive")
	}
	c := &LRU{capacity: capacity, free: lruNil, head: lruNil, tail: lruNil}
	c.index.init(16)
	return c
}

// Name implements Policy.
func (c *LRU) Name() string { return "lru" }

// Get implements Policy.
func (c *LRU) Get(key uint64) bool {
	n, ok := c.index.get(c.keys, key)
	if !ok {
		return false
	}
	c.moveToFront(n)
	return true
}

// Put implements Policy.
func (c *LRU) Put(key uint64, size int64) {
	if size <= 0 || size > c.capacity || size > math.MaxInt32 {
		return
	}
	if n, ok := c.index.get(c.keys, key); ok {
		c.size += size - int64(c.sizes[n])
		c.sizes[n] = int32(size)
		c.moveToFront(n)
	} else {
		n := c.allocNode(key, int32(size))
		c.pushFront(n)
		c.index.put(c.keys, key, n)
		c.size += size
	}
	for c.size > c.capacity {
		c.evictOldest()
	}
}

func (c *LRU) evictOldest() {
	n := c.tail
	if n == lruNil {
		return
	}
	c.size -= int64(c.sizes[n])
	c.index.del(c.keys, c.keys[n])
	c.unlink(n)
	c.freeNode(n)
}

// Contains implements Policy.
func (c *LRU) Contains(key uint64) bool {
	_, ok := c.index.get(c.keys, key)
	return ok
}

// Remove implements Policy.
func (c *LRU) Remove(key uint64) {
	n, ok := c.index.get(c.keys, key)
	if !ok {
		return
	}
	c.size -= int64(c.sizes[n])
	c.index.del(c.keys, key)
	c.unlink(n)
	c.freeNode(n)
}

// Len implements Policy.
func (c *LRU) Len() int { return c.index.n }

// Size implements Policy.
func (c *LRU) Size() int64 { return c.size }

// Capacity implements Policy.
func (c *LRU) Capacity() int64 { return c.capacity }

// Reserve pre-sizes the arena and the key index for n resident entries,
// so a bulk load (fleet warmup) performs no incremental growth. It never
// shrinks and does not change the cache's contents or capacity in bytes.
func (c *LRU) Reserve(n int) {
	if cap(c.keys) < n {
		keys := make([]uint64, len(c.keys), n)
		copy(keys, c.keys)
		c.keys = keys
		sizes := make([]int32, len(c.sizes), n)
		copy(sizes, c.sizes)
		c.sizes = sizes
		prev := make([]int32, len(c.prev), n)
		copy(prev, c.prev)
		c.prev = prev
		next := make([]int32, len(c.next), n)
		copy(next, c.next)
		c.next = next
	}
	c.index.reserve(c.keys, n)
}

// Resize implements Policy: least-recent entries are evicted until the
// resident set fits the new capacity.
func (c *LRU) Resize(capacity int64) {
	if capacity < 1 {
		capacity = 1
	}
	c.capacity = capacity
	for c.size > c.capacity && c.tail != lruNil {
		c.evictOldest()
	}
}

// --- intrusive list over the arena ---------------------------------------

func (c *LRU) allocNode(key uint64, size int32) int32 {
	if n := c.free; n != lruNil {
		c.free = c.next[n]
		c.keys[n] = key
		c.sizes[n] = size
		c.prev[n] = lruNil
		c.next[n] = lruNil
		return n
	}
	c.keys = append(c.keys, key)
	c.sizes = append(c.sizes, size)
	c.prev = append(c.prev, lruNil)
	c.next = append(c.next, lruNil)
	return int32(len(c.keys) - 1)
}

func (c *LRU) freeNode(n int32) {
	c.keys[n] = 0
	c.sizes[n] = 0
	c.prev[n] = lruNil
	c.next[n] = c.free
	c.free = n
}

func (c *LRU) pushFront(n int32) {
	c.prev[n] = lruNil
	c.next[n] = c.head
	if c.head != lruNil {
		c.prev[c.head] = n
	}
	c.head = n
	if c.tail == lruNil {
		c.tail = n
	}
}

func (c *LRU) unlink(n int32) {
	prev, next := c.prev[n], c.next[n]
	if prev != lruNil {
		c.next[prev] = next
	} else {
		c.head = next
	}
	if next != lruNil {
		c.prev[next] = prev
	} else {
		c.tail = prev
	}
}

func (c *LRU) moveToFront(n int32) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// --- open-addressing index ------------------------------------------------

// lruTable maps chunk keys to arena node indexes with linear probing and
// backward-shift deletion (no tombstones, so heavy churn from evictions
// never degrades probes). Each slot stores a 16-bit fingerprint (the top
// hash bits — disjoint from the low bits that pick the probe start for
// any table up to 2^48 slots) and the arena index; a fingerprint match
// is confirmed against the arena's full key, so lookups stay exact. The
// table never stores full keys, which is what gets it to 6 bytes per
// slot. Capacity is a power of two; load stays <= 3/4.
type lruTable struct {
	fps  []uint16
	vals []int32 // arena node index; lruNil marks an empty slot
	mask uint64
	n    int
}

func (t *lruTable) init(capacity int) {
	t.fps = make([]uint16, capacity)
	t.vals = make([]int32, capacity)
	for i := range t.vals {
		t.vals[i] = lruNil
	}
	t.mask = uint64(capacity - 1)
	t.n = 0
}

// lruHash is the splitmix64 finalizer; chunk keys are already widely
// spread, but the finalizer makes the probe sequence safe for any keys.
func lruHash(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (t *lruTable) get(keys []uint64, key uint64) (int32, bool) {
	h := lruHash(key)
	fp := uint16(h >> 48)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		v := t.vals[i]
		if v == lruNil {
			return 0, false
		}
		if t.fps[i] == fp && keys[v] == key {
			return v, true
		}
	}
}

func (t *lruTable) put(keys []uint64, key uint64, val int32) {
	if 4*(t.n+1) > 3*len(t.vals) {
		t.grow(keys)
	}
	h := lruHash(key)
	fp := uint16(h >> 48)
	for i := h & t.mask; ; i = (i + 1) & t.mask {
		v := t.vals[i]
		if v == lruNil {
			t.fps[i] = fp
			t.vals[i] = val
			t.n++
			return
		}
		if t.fps[i] == fp && keys[v] == key {
			t.vals[i] = val
			return
		}
	}
}

// del removes key. The arena entry it maps to must still hold the key
// (callers delete from the index before freeing the node), as must every
// other live entry's node, since backward shifting recomputes their home
// slots from the arena keys.
func (t *lruTable) del(keys []uint64, key uint64) {
	h := lruHash(key)
	fp := uint16(h >> 48)
	i := h & t.mask
	for {
		v := t.vals[i]
		if v == lruNil {
			return
		}
		if t.fps[i] == fp && keys[v] == key {
			break
		}
		i = (i + 1) & t.mask
	}
	t.n--
	// Backward-shift deletion: pull later probe-chain members into the
	// vacated slot so lookups never need tombstones.
	j := i
	for {
		j = (j + 1) & t.mask
		if t.vals[j] == lruNil {
			break
		}
		hj := lruHash(keys[t.vals[j]]) & t.mask
		// Move j down iff its ideal slot does not sit strictly between
		// the hole and j (cyclically) — i.e. its probe passed the hole.
		if (j-hj)&t.mask >= (j-i)&t.mask {
			t.fps[i] = t.fps[j]
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	t.vals[i] = lruNil
}

// reserve grows the table so n entries fit under the load bound without
// further growth, rehashing the current entries once.
func (t *lruTable) reserve(keys []uint64, n int) {
	target := len(t.vals)
	for 4*n > 3*target {
		target *= 2
	}
	if target == len(t.vals) {
		return
	}
	t.rehash(keys, target)
}

func (t *lruTable) grow(keys []uint64) {
	t.rehash(keys, 2*len(t.vals))
}

func (t *lruTable) rehash(keys []uint64, capacity int) {
	oldVals := t.vals
	t.init(capacity)
	for _, v := range oldVals {
		if v != lruNil {
			t.put(keys, keys[v], v)
		}
	}
}

var _ Policy = (*LRU)(nil)
