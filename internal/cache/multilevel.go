package cache

// Level identifies where a lookup was satisfied in the multi-level cache.
type Level int

// Lookup outcomes, ordered fastest to slowest.
const (
	LevelRAM  Level = iota // served from main memory
	LevelDisk              // served from local disk (incurs the read/retry delay)
	LevelMiss              // not resident; must be fetched from the backend
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelRAM:
		return "ram"
	case LevelDisk:
		return "disk"
	case LevelMiss:
		return "miss"
	}
	return "unknown"
}

// MultiLevel composes a small RAM cache over a large disk cache, matching
// the ATS layout the paper describes ("multi-level ... between the main
// memory and the local disk ... with an LRU replacement policy"). A disk
// hit promotes the object into RAM; a backend fill writes both levels.
type MultiLevel struct {
	RAM  Policy
	Disk Policy

	RAMStats  Stats
	DiskStats Stats
}

// NewMultiLevel builds a two-level cache with the given policies.
func NewMultiLevel(ram, disk Policy) *MultiLevel {
	return &MultiLevel{RAM: ram, Disk: disk}
}

// NewLRUMultiLevel builds the ATS default: LRU at both levels.
func NewLRUMultiLevel(ramBytes, diskBytes int64) *MultiLevel {
	return NewMultiLevel(NewLRU(ramBytes), NewLRU(diskBytes))
}

// Lookup finds key, records per-level statistics, performs the disk→RAM
// promotion, and returns where the object was found. size is used for the
// promotion insert.
func (m *MultiLevel) Lookup(key uint64, size int64) Level {
	if m.RAM.Get(key) {
		m.RAMStats.Record(true)
		return LevelRAM
	}
	m.RAMStats.Record(false)
	if m.Disk.Get(key) {
		m.DiskStats.Record(true)
		m.RAM.Put(key, size) // promote
		return LevelDisk
	}
	m.DiskStats.Record(false)
	return LevelMiss
}

// Insert admits a backend-fetched object into both levels.
func (m *MultiLevel) Insert(key uint64, size int64) {
	m.Disk.Put(key, size)
	m.RAM.Put(key, size)
}

// Contains reports residency at either level without side effects.
func (m *MultiLevel) Contains(key uint64) bool {
	return m.RAM.Contains(key) || m.Disk.Contains(key)
}

// Resize changes both levels' capacities (shrinking evicts in each
// level's policy order). Timed cache-degradation phases use it to shrink
// a serving cache mid-campaign and restore it afterwards.
func (m *MultiLevel) Resize(ramBytes, diskBytes int64) {
	m.RAM.Resize(ramBytes)
	m.Disk.Resize(diskBytes)
}

// OverallMissRatio returns the fraction of lookups that reached the backend.
func (m *MultiLevel) OverallMissRatio() float64 {
	if m.RAMStats.Requests() == 0 {
		return 0
	}
	return float64(m.DiskStats.Misses) / float64(m.RAMStats.Requests())
}
