package cache

import "testing"

// resizePolicies builds one of each policy at the given capacity.
func resizePolicies(capacity int64) []Policy {
	return []Policy{
		NewLRU(capacity), NewLFU(capacity), NewPerfectLFU(capacity),
		NewGDSize(capacity), NewGDSF(capacity),
	}
}

// TestResizeShrinkEvicts: shrinking must evict down to the new capacity
// in each policy's normal order, and growth back must not resurrect
// anything.
func TestResizeShrinkEvicts(t *testing.T) {
	for _, p := range resizePolicies(1000) {
		t.Run(p.Name(), func(t *testing.T) {
			for k := uint64(1); k <= 10; k++ {
				p.Put(k, 100)
			}
			if p.Size() != 1000 || p.Len() != 10 {
				t.Fatalf("setup: size=%d len=%d", p.Size(), p.Len())
			}
			p.Resize(250)
			if p.Capacity() != 250 {
				t.Fatalf("Capacity() = %d after Resize(250)", p.Capacity())
			}
			if p.Size() > 250 {
				t.Fatalf("size %d exceeds shrunk capacity", p.Size())
			}
			if p.Len() != 2 {
				t.Fatalf("len = %d after shrink, want 2", p.Len())
			}
			evicted := p.Len()
			p.Resize(1000)
			if p.Len() != evicted {
				t.Fatalf("growing resurrected entries: len %d", p.Len())
			}
			// And the restored capacity admits new objects again.
			p.Put(99, 700)
			if !p.Contains(99) {
				t.Fatal("restored capacity did not admit a new object")
			}
		})
	}
}

// TestResizeEvictionOrder: LRU must shed the least-recently-used entries
// on shrink, exactly as demand eviction would.
func TestResizeEvictionOrder(t *testing.T) {
	c := NewLRU(300)
	c.Put(1, 100)
	c.Put(2, 100)
	c.Put(3, 100)
	c.Get(1) // 2 is now the oldest
	c.Resize(200)
	if c.Contains(2) {
		t.Fatal("LRU shrink kept the least-recent entry")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Fatal("LRU shrink evicted a recent entry")
	}
}

// TestResizeClampsToOneByte: capacities below one byte clamp instead of
// panicking (a timeline cache factor can be arbitrarily small).
func TestResizeClampsToOneByte(t *testing.T) {
	for _, p := range resizePolicies(100) {
		p.Put(1, 50)
		p.Resize(0)
		if p.Capacity() != 1 {
			t.Fatalf("%s: Capacity() = %d after Resize(0), want 1", p.Name(), p.Capacity())
		}
		if p.Len() != 0 {
			t.Fatalf("%s: %d entries survived a 1-byte cache", p.Name(), p.Len())
		}
	}
}

// TestResizeInCacheCountersDie: LFU/GDSF in-cache frequency state must be
// released for entries a resize evicts (same contract as demand
// eviction), so a later re-admission starts fresh.
func TestResizeInCacheCountersDie(t *testing.T) {
	c := NewLFU(200)
	c.Put(1, 100)
	c.Put(2, 100)
	c.Get(1)
	c.Get(1) // freq(1)=3, freq(2)=1
	c.Resize(100)
	if c.Contains(2) {
		t.Fatal("LFU shrink evicted the frequent entry")
	}
	if got := c.freqs[2]; got != 0 {
		t.Fatalf("evicted entry kept in-cache frequency %v", got)
	}
	// PerfectLFU keeps all-time counts across resize evictions.
	p := NewPerfectLFU(200)
	p.Put(1, 100)
	p.Put(2, 100)
	p.Get(2)
	p.Resize(100)
	if p.freqs[1] == 0 {
		t.Fatal("PerfectLFU resize dropped the all-time count")
	}
}

// TestMultiLevelResize: both levels shrink and restore together, and a
// shrunk multi-level cache demotes lookups to misses.
func TestMultiLevelResize(t *testing.T) {
	m := NewLRUMultiLevel(1000, 2000)
	for k := uint64(1); k <= 10; k++ {
		m.Insert(k, 100)
	}
	m.Resize(100, 200)
	if m.RAM.Capacity() != 100 || m.Disk.Capacity() != 200 {
		t.Fatalf("capacities = %d/%d", m.RAM.Capacity(), m.Disk.Capacity())
	}
	if m.RAM.Size() > 100 || m.Disk.Size() > 200 {
		t.Fatalf("sizes = %d/%d exceed shrunk capacities", m.RAM.Size(), m.Disk.Size())
	}
	misses := 0
	for k := uint64(1); k <= 10; k++ {
		if m.Lookup(k, 100) == LevelMiss {
			misses++
		}
	}
	if misses < 7 {
		t.Fatalf("only %d/10 lookups missed a 3-object cache", misses)
	}
}
