package cache

import (
	"testing"
	"testing/quick"

	"vidperf/internal/stats"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU(100)
	c.Put(1, 40)
	c.Put(2, 40)
	if !c.Get(1) || !c.Get(2) {
		t.Fatal("expected both resident")
	}
	if c.Len() != 2 || c.Size() != 80 {
		t.Fatalf("len=%d size=%d", c.Len(), c.Size())
	}
	// Touch 1, then insert 3: 2 is now least recent and must be evicted.
	c.Get(1)
	c.Put(3, 40)
	if c.Contains(2) {
		t.Error("LRU should have evicted key 2")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("keys 1 and 3 should be resident")
	}
}

func TestLRUOversizedRejected(t *testing.T) {
	c := NewLRU(100)
	c.Put(1, 101)
	if c.Contains(1) || c.Size() != 0 {
		t.Error("oversized object admitted")
	}
	c.Put(2, 0)
	if c.Contains(2) {
		t.Error("zero-size object admitted")
	}
}

func TestLRUUpdateSize(t *testing.T) {
	c := NewLRU(100)
	c.Put(1, 30)
	c.Put(1, 60)
	if c.Size() != 60 || c.Len() != 1 {
		t.Errorf("size=%d len=%d after resize", c.Size(), c.Len())
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU(100)
	c.Put(1, 30)
	c.Remove(1)
	if c.Contains(1) || c.Size() != 0 || c.Len() != 0 {
		t.Error("Remove did not clear entry")
	}
	c.Remove(99) // no-op must not panic
}

func TestLRUCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive capacity")
		}
	}()
	NewLRU(0)
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(100)
	c.Put(1, 40)
	c.Put(2, 40)
	c.Get(1)
	c.Get(1) // key 1 frequency 3 (put counts once), key 2 frequency 1
	c.Put(3, 40)
	if c.Contains(2) {
		t.Error("LFU should evict the least-frequently-used key 2")
	}
	if !c.Contains(1) {
		t.Error("hot key 1 evicted")
	}
}

func TestLFUNewInsertBouncesAgainstHotSet(t *testing.T) {
	// The classic LFU admission behaviour: a fresh frequency-1 insert that
	// does not fit is itself the minimum-priority entry, so it bounces and
	// the hot resident survives.
	c := NewLFU(100)
	c.Put(1, 60)
	for i := 0; i < 10; i++ {
		c.Get(1)
	}
	c.Put(2, 60)
	if !c.Contains(1) {
		t.Error("hot key 1 should survive")
	}
	if c.Contains(2) {
		t.Error("cold oversubscribing insert should bounce")
	}
}

func TestLFUForgetsOnEviction(t *testing.T) {
	// In-cache LFU: once evicted, a key's frequency history is gone.
	c := NewLFU(100)
	c.Put(1, 60)
	for i := 0; i < 10; i++ {
		c.Get(1) // freq 11
	}
	c.Remove(1) // simulate departure
	c.Put(2, 60)
	c.Get(2)
	c.Get(2) // freq 3
	// Re-inserted key 1 starts back at freq 1 and must lose to key 2.
	c.Put(1, 60)
	if c.Contains(1) {
		t.Error("re-inserted key kept stale frequency across eviction")
	}
	if !c.Contains(2) {
		t.Error("key 2 should survive")
	}
}

func TestPerfectLFUKeepsHistory(t *testing.T) {
	// Same sequence as TestLFUForgetsOnEviction, but with perfect LFU the
	// all-time frequency (11) survives eviction, so key 1 wins re-admission
	// against key 2 (freq 3).
	c := NewPerfectLFU(100)
	c.Put(1, 60)
	for i := 0; i < 10; i++ {
		c.Get(1) // freq 11
	}
	c.Remove(1)
	c.Put(2, 60)
	c.Get(2)
	c.Get(2) // freq 3
	c.Put(1, 60)
	if !c.Contains(1) {
		t.Error("perfect-LFU lost frequency history across eviction")
	}
	if c.Contains(2) {
		t.Error("low-history key 2 should have been displaced")
	}
}

func TestPerfectLFUHighFreqEvictionForSpace(t *testing.T) {
	// A hot object still leaves when everything else resident is hotter.
	c := NewPerfectLFU(100)
	c.Put(1, 60) // freq 1
	for i := 0; i < 30; i++ {
		c.Get(2) // build history for key 2 while absent: freq 30
	}
	c.Put(2, 60) // 120 > 100: evict min = key 1
	if c.Contains(1) {
		t.Error("key 1 (freq 2) should lose to key 2 (freq 31)")
	}
	if !c.Contains(2) {
		t.Error("key 2 should be admitted on history")
	}
}

func TestGDSizePrefersSmallObjects(t *testing.T) {
	c := NewGDSize(100)
	c.Put(1, 80) // large
	c.Put(2, 10) // small
	c.Put(3, 15) // forces eviction; GD-Size evicts the large low-value object
	if c.Contains(1) {
		t.Error("GD-Size should evict the large object first")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("small objects should survive")
	}
}

func TestGDSFFrequencyWins(t *testing.T) {
	c := NewGDSF(100)
	c.Put(1, 50)
	c.Put(2, 50)
	for i := 0; i < 20; i++ {
		c.Get(1)
	}
	c.Put(3, 50) // must evict 2 (same size, far lower frequency)
	if c.Contains(2) {
		t.Error("GDSF should evict the low-frequency object")
	}
	if !c.Contains(1) {
		t.Error("high-frequency object evicted")
	}
}

func TestGreedyDualAging(t *testing.T) {
	// After many evictions L rises, so a new cold object can displace an
	// old once-popular one: the cache does not fossilize.
	c := NewGDSF(100)
	c.Put(1, 50)
	for i := 0; i < 5; i++ {
		c.Get(1)
	}
	for k := uint64(10); k < 200; k++ {
		c.Put(k, 50)
	}
	if c.Contains(1) {
		t.Error("GreedyDual aging failed: stale hot object still resident")
	}
}

func TestNewPolicy(t *testing.T) {
	for _, name := range []string{"lru", "lfu", "perfect-lfu", "gd-size", "gdsf"} {
		p, ok := NewPolicy(name, 1000)
		if !ok || p == nil {
			t.Errorf("NewPolicy(%q) failed", name)
			continue
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
		if p.Capacity() != 1000 {
			t.Errorf("capacity = %d", p.Capacity())
		}
	}
	if _, ok := NewPolicy("bogus", 1000); ok {
		t.Error("unknown policy accepted")
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Record(true)
	s.Record(true)
	s.Record(false)
	if s.Requests() != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRatio() != 2.0/3.0 {
		t.Errorf("hit ratio = %v", s.HitRatio())
	}
	var empty Stats
	if empty.HitRatio() != 0 || empty.MissRatio() != 0 {
		t.Error("empty stats ratios should be 0")
	}
}

func TestMultiLevelPromotion(t *testing.T) {
	m := NewLRUMultiLevel(100, 1000)
	if got := m.Lookup(1, 50); got != LevelMiss {
		t.Fatalf("first lookup = %v, want miss", got)
	}
	m.Insert(1, 50)
	if got := m.Lookup(1, 50); got != LevelRAM {
		t.Fatalf("after insert = %v, want ram", got)
	}
	// Push key 1 out of RAM (capacity 100) but not disk.
	m.Insert(2, 60)
	m.Insert(3, 60)
	if m.RAM.Contains(1) {
		t.Fatal("key 1 should have left RAM")
	}
	if got := m.Lookup(1, 50); got != LevelDisk {
		t.Fatalf("lookup = %v, want disk", got)
	}
	// The disk hit promotes back into RAM.
	if got := m.Lookup(1, 50); got != LevelRAM {
		t.Fatalf("post-promotion lookup = %v, want ram", got)
	}
}

func TestMultiLevelMissRatio(t *testing.T) {
	m := NewLRUMultiLevel(100, 1000)
	m.Lookup(1, 10) // miss
	m.Insert(1, 10)
	m.Lookup(1, 10) // ram hit
	m.Lookup(2, 10) // miss
	if got := m.OverallMissRatio(); got != 2.0/3.0 {
		t.Errorf("overall miss ratio = %v, want 2/3", got)
	}
}

func TestLevelString(t *testing.T) {
	if LevelRAM.String() != "ram" || LevelDisk.String() != "disk" || LevelMiss.String() != "miss" {
		t.Error("Level strings wrong")
	}
	if Level(42).String() != "unknown" {
		t.Error("unknown level string wrong")
	}
}

// Property: under any request stream, every policy maintains
// Size() <= Capacity(), non-negative size, and Len consistent with Size.
func TestPolicyInvariantsProperty(t *testing.T) {
	policies := []string{"lru", "lfu", "perfect-lfu", "gd-size", "gdsf"}
	for _, name := range policies {
		name := name
		f := func(seed uint64) bool {
			r := stats.NewRand(seed)
			p, _ := NewPolicy(name, 1000)
			for i := 0; i < 500; i++ {
				key := uint64(r.Intn(50))
				switch r.Intn(3) {
				case 0:
					p.Put(key, int64(1+r.Intn(400)))
				case 1:
					p.Get(key)
				case 2:
					p.Remove(key)
				}
				if p.Size() > p.Capacity() || p.Size() < 0 {
					return false
				}
				if (p.Len() == 0) != (p.Size() == 0) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: Contains agrees with Get-visibility (Get(k) true implies the
// object was resident; after Put of admissible size the object is
// resident unless capacity forced its own eviction group).
func TestContainsGetConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		p := NewLRU(500)
		for i := 0; i < 300; i++ {
			key := uint64(r.Intn(30))
			size := int64(1 + r.Intn(100))
			p.Put(key, size)
			if !p.Contains(key) {
				return false // admissible put must leave the key resident
			}
			if p.Contains(key) != p.Get(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// On a Zipf-skewed stream, frequency-aware policies should beat plain LRU
// on object hit ratio — the premise of the paper's §4.1 take-away.
func TestPolicyOrderingOnZipfStream(t *testing.T) {
	run := func(p Policy) float64 {
		r := stats.NewRand(42)
		z := stats.NewZipf(2000, 1.0)
		var st Stats
		for i := 0; i < 60000; i++ {
			key := uint64(z.Sample(r))
			size := int64(400 + 50*int(key%7))
			if p.Get(key) {
				st.Record(true)
			} else {
				st.Record(false)
				p.Put(key, size)
			}
		}
		return st.HitRatio()
	}
	lru := run(NewLRU(40000))
	plfu := run(NewPerfectLFU(40000))
	gdsf := run(NewGDSF(40000))
	if plfu <= lru {
		t.Errorf("perfect-LFU (%.3f) should beat LRU (%.3f) on Zipf stream", plfu, lru)
	}
	if gdsf <= lru {
		t.Errorf("GDSF (%.3f) should beat LRU (%.3f) on Zipf stream", gdsf, lru)
	}
}
