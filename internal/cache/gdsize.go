package cache

// GreedyDual implements the GreedyDual-Size family of policies (Cao &
// Irani): each resident object carries priority L + f(frequency) * cost /
// size, where L inflates to the priority of the last evicted object, aging
// out stale entries without explicit timestamps. With cost=1 and no
// frequency term this is GD-Size(1); with the frequency term it is GDSF.
// The paper's §4.1 take-away recommends GD-Size over ATS's default LRU for
// popularity-heavy video workloads.
type GreedyDual struct {
	pc        priorityCache
	l         float64
	useFreq   bool
	name      string
	freqs     map[uint64]float64
	costBytes float64 // constant per-object cost numerator (1 => size-aware)
}

// NewGDSize returns a GreedyDual-Size(1) policy: priority = L + 1/size.
// Small objects are cheap to re-fetch relative to the space they free, so
// large rarely-used objects are evicted first.
func NewGDSize(capacity int64) *GreedyDual {
	return &GreedyDual{
		pc:        newPriorityCache(capacity),
		name:      "gd-size",
		freqs:     make(map[uint64]float64),
		costBytes: 1,
	}
}

// NewGDSF returns a GreedyDual-Size-Frequency policy:
// priority = L + frequency/size.
func NewGDSF(capacity int64) *GreedyDual {
	return &GreedyDual{
		pc:        newPriorityCache(capacity),
		name:      "gdsf",
		useFreq:   true,
		freqs:     make(map[uint64]float64),
		costBytes: 1,
	}
}

// Name implements Policy.
func (c *GreedyDual) Name() string { return c.name }

func (c *GreedyDual) priorityFor(key uint64, size int64) float64 {
	f := 1.0
	if c.useFreq {
		f = c.freqs[key]
		if f < 1 {
			f = 1
		}
	}
	// Scale by 1e6 so priorities for megabyte-scale video chunks are not
	// lost to float underflow against the accumulating L term.
	return c.l + f*c.costBytes*1e6/float64(size)
}

// Get implements Policy.
func (c *GreedyDual) Get(key uint64) bool {
	e, ok := c.pc.items[key]
	if !ok {
		return false
	}
	c.freqs[key]++
	c.pc.setPriority(key, c.priorityFor(key, e.size))
	return true
}

// Put implements Policy.
func (c *GreedyDual) Put(key uint64, size int64) {
	if size <= 0 || size > c.pc.capacity {
		return
	}
	if c.freqs[key] == 0 {
		c.freqs[key] = 1
	}
	if evicted := c.pc.insert(key, size, c.priorityFor(key, size)); evicted > c.l {
		c.l = evicted
	}
	// GDSF uses in-cache frequency: counters die with eviction.
	for _, k := range c.pc.evicted {
		delete(c.freqs, k)
	}
}

// Contains implements Policy.
func (c *GreedyDual) Contains(key uint64) bool { return c.pc.contains(key) }

// Remove implements Policy.
func (c *GreedyDual) Remove(key uint64) {
	c.pc.remove(key)
	delete(c.freqs, key)
}

// Len implements Policy.
func (c *GreedyDual) Len() int { return len(c.pc.items) }

// Size implements Policy.
func (c *GreedyDual) Size() int64 { return c.pc.size }

// Capacity implements Policy.
func (c *GreedyDual) Capacity() int64 { return c.pc.capacity }

// Resize implements Policy. Resize evictions do not advance the aging
// term L (they are capacity events, not demand evictions); in-cache
// frequency counters die with the evicted entries as usual.
func (c *GreedyDual) Resize(capacity int64) {
	c.pc.resize(capacity)
	for _, k := range c.pc.evicted {
		delete(c.freqs, k)
	}
}

var _ Policy = (*GreedyDual)(nil)

// NewPolicy constructs a policy by name: "lru", "lfu", "perfect-lfu",
// "gd-size" or "gdsf". It returns false for an unknown name.
func NewPolicy(name string, capacity int64) (Policy, bool) {
	switch name {
	case "lru":
		return NewLRU(capacity), true
	case "lfu":
		return NewLFU(capacity), true
	case "perfect-lfu":
		return NewPerfectLFU(capacity), true
	case "gd-size":
		return NewGDSize(capacity), true
	case "gdsf":
		return NewGDSF(capacity), true
	}
	return nil, false
}
