// Package cache implements the byte-capacity object caches used by the CDN
// substrate: LRU (the ATS default the paper measures), in-cache LFU,
// perfect LFU, and GreedyDual-Size / GDSF (the "better suited policies for
// popularity-heavy workloads" the paper's §4.1 take-away recommends).
// A two-level RAM+disk composition mirrors the ATS "multi-level" cache.
//
// All policies share the Policy interface and count hits and misses so the
// eviction-policy ablation bench can compare them on identical request
// streams.
package cache

// Policy is a byte-capacity cache eviction policy. Implementations are not
// safe for concurrent use; the CDN server model serializes access.
type Policy interface {
	// Name identifies the policy (e.g. "lru", "gdsf").
	Name() string
	// Get looks up key and, on a hit, records the access (recency and/or
	// frequency update). It reports whether the object was resident.
	Get(key uint64) bool
	// Put inserts key with the given size in bytes, evicting as needed.
	// Objects larger than the capacity are not admitted. Re-putting a
	// resident key refreshes it.
	Put(key uint64, size int64)
	// Contains reports residency without recording an access.
	Contains(key uint64) bool
	// Remove evicts key if resident.
	Remove(key uint64)
	// Len returns the number of resident objects.
	Len() int
	// Size returns the total resident bytes.
	Size() int64
	// Capacity returns the configured byte capacity.
	Capacity() int64
	// Resize changes the byte capacity, evicting in normal policy order
	// until the resident set fits (a shrinking cache behaves exactly as
	// if the displaced objects had lost an eviction contest). Capacities
	// below one byte clamp to one. Growing never evicts. This is the
	// hook behind timed cache-degradation phases (internal/timeline).
	Resize(capacity int64)
}

// Stats counts cache outcomes for a request stream.
type Stats struct {
	Hits   int64
	Misses int64
}

// Record adds one lookup outcome.
func (s *Stats) Record(hit bool) {
	if hit {
		s.Hits++
	} else {
		s.Misses++
	}
}

// Requests returns the total number of recorded lookups.
func (s *Stats) Requests() int64 { return s.Hits + s.Misses }

// HitRatio returns Hits/Requests, or 0 before any request.
func (s *Stats) HitRatio() float64 {
	if n := s.Requests(); n > 0 {
		return float64(s.Hits) / float64(n)
	}
	return 0
}

// MissRatio returns 1 - HitRatio for a non-empty stream, else 0.
func (s *Stats) MissRatio() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return 1 - s.HitRatio()
}
