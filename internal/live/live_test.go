package live

import (
	"math"
	"testing"
	"testing/quick"
)

// TestValidate pins the accepted and rejected config shapes.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value (disabled)", Config{}, true},
		{"disabled ignores junk", Config{ChunkDurationSec: -5, JoinDist: "banana"}, true},
		{"minimal enabled", Config{Channels: 1}, true},
		{"full enabled", Config{Channels: 12, ChunkDurationSec: 4, SwitchPerMin: 2,
			JoinDist: JoinZipf, JoinZipfS: 1.1, JoinBehindChunks: 3}, true},
		{"max channels", Config{Channels: MaxChannels}, true},
		{"negative channels", Config{Channels: -1}, false},
		{"too many channels", Config{Channels: MaxChannels + 1}, false},
		{"chunk too short", Config{Channels: 2, ChunkDurationSec: 0.5}, false},
		{"chunk too long", Config{Channels: 2, ChunkDurationSec: 61}, false},
		{"chunk at bounds", Config{Channels: 2, ChunkDurationSec: MinChunkSec}, true},
		{"negative switch rate", Config{Channels: 2, SwitchPerMin: -1}, false},
		{"switch rate too high", Config{Channels: 2, SwitchPerMin: MaxSwitchPerMin + 1}, false},
		{"unknown join dist", Config{Channels: 2, JoinDist: "lognormal"}, false},
		{"uniform join", Config{Channels: 2, JoinDist: JoinUniform}, true},
		{"negative zipf skew", Config{Channels: 2, JoinDist: JoinZipf, JoinZipfS: -0.1}, false},
		{"negative join behind", Config{Channels: 2, JoinBehindChunks: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestWithDefaults: a disabled config passes through untouched (the
// byte-identity invariant depends on the zero value staying zero), and
// an enabled config fills exactly the zero knobs.
func TestWithDefaults(t *testing.T) {
	if got := (Config{}).WithDefaults(); got != (Config{}) {
		t.Fatalf("disabled WithDefaults = %+v, want zero", got)
	}
	got := Config{Channels: 8}.WithDefaults()
	want := Config{
		Channels:         8,
		ChunkDurationSec: DefaultChunkDurationSec,
		JoinDist:         JoinUniform,
		JoinZipfS:        DefaultJoinZipfS,
		JoinBehindChunks: DefaultJoinBehindChunks,
	}
	if got != want {
		t.Fatalf("WithDefaults = %+v, want %+v", got, want)
	}
	full := Config{Channels: 3, ChunkDurationSec: 2, SwitchPerMin: 1,
		JoinDist: JoinZipf, JoinZipfS: 0.8, JoinBehindChunks: 5}
	if got := full.WithDefaults(); got != full {
		t.Fatalf("set fields overwritten: %+v", got)
	}
	if err := (Config{Channels: 8}).WithDefaults().Validate(); err != nil {
		t.Fatalf("defaulted config invalid: %v", err)
	}
}

// TestPublishClockTable pins the clock arithmetic by example.
func TestPublishClockTable(t *testing.T) {
	c := Config{Channels: 4, ChunkDurationSec: 6, JoinBehindChunks: 2}
	cases := []struct {
		atMS       float64
		edge, join int
	}{
		{-100, 0, 0},
		{0, 0, 0},
		{5999, 0, 0},
		{6000, 1, 0},
		{12000, 2, 0},
		{18000, 3, 1},
		{59999, 9, 7},
		{600000, 100, 98},
	}
	for _, tc := range cases {
		if got := c.EdgeChunk(tc.atMS); got != tc.edge {
			t.Errorf("EdgeChunk(%g) = %d, want %d", tc.atMS, got, tc.edge)
		}
		if got := c.JoinChunk(tc.atMS); got != tc.join {
			t.Errorf("JoinChunk(%g) = %d, want %d", tc.atMS, got, tc.join)
		}
	}
	if got := c.PublishMS(3); got != 18000 {
		t.Errorf("PublishMS(3) = %g", got)
	}
	if got := c.PublishMS(-1); got != 0 {
		t.Errorf("PublishMS(-1) = %g", got)
	}
	if got := c.SwitchProb(); got != 0 {
		t.Errorf("SwitchProb with zero rate = %g", got)
	}
	if got := (Config{Channels: 2, ChunkDurationSec: 6, SwitchPerMin: 2}).SwitchProb(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("SwitchProb(2/min, 6s chunks) = %g, want 0.2", got)
	}
	if got := (Config{Channels: 2, ChunkDurationSec: 60, SwitchPerMin: 60}).SwitchProb(); got != 1 {
		t.Errorf("SwitchProb clamp = %g, want 1", got)
	}
}

// clockConfig maps arbitrary quick inputs onto a valid enabled config.
// The chunk duration is quantized to whole seconds so every quantity in
// the properties below (durations in ms, publish times, whole-ms join
// times) is an exactly-representable float64 integer — the properties
// assert exact clock arithmetic, not float tolerance.
func clockConfig(chunkSec float64, behind int) Config {
	sec := MinChunkSec + math.Mod(math.Abs(chunkSec), MaxChunkSec-MinChunkSec)
	if math.IsNaN(sec) || math.IsInf(sec, 0) {
		sec = DefaultChunkDurationSec
	}
	sec = math.Floor(sec)
	if behind < 0 {
		behind = -behind
	}
	return Config{Channels: 4, ChunkDurationSec: sec, JoinBehindChunks: behind % 64}
}

// joinTime maps arbitrary quick inputs onto a finite non-negative
// whole-millisecond virtual time (integral and bounded so the float
// arithmetic in the properties stays exact).
func joinTime(t float64) float64 {
	v := math.Abs(t)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Floor(math.Mod(v, 1e10))
}

// TestJoinNeverAheadOfClock: for any arrival or switch time t >= 0, the
// join target is already published — PublishMS(JoinChunk(t)) <= t — and
// sits in [0, EdgeChunk(t)]. This is the property that makes the first
// request after a join or switch wait-free.
func TestJoinNeverAheadOfClock(t *testing.T) {
	prop := func(chunkSec float64, behind int, at float64) bool {
		c := clockConfig(chunkSec, behind)
		tm := joinTime(at)
		j := c.JoinChunk(tm)
		return j >= 0 && j <= c.EdgeChunk(tm) && c.PublishMS(j) <= tm
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestClockNeverRewinds: the publish clock is global and monotonic — at
// any later time the edge (and so every switch's re-join target) is at
// least what it was earlier. A channel switch therefore can never rewind
// any channel's clock: the switched-to channel's edge is the same edge.
func TestClockNeverRewinds(t *testing.T) {
	prop := func(chunkSec float64, behind int, at1, at2 float64) bool {
		c := clockConfig(chunkSec, behind)
		t1, t2 := joinTime(at1), joinTime(at2)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return c.EdgeChunk(t1) <= c.EdgeChunk(t2) && c.JoinChunk(t1) <= c.JoinChunk(t2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPublishEdgeInverse: EdgeChunk is the inverse of PublishMS — the
// edge chunk is published, the next one is not.
func TestPublishEdgeInverse(t *testing.T) {
	prop := func(chunkSec float64, at float64) bool {
		c := clockConfig(chunkSec, 0)
		tm := joinTime(at)
		e := c.EdgeChunk(tm)
		return c.PublishMS(e) <= tm && tm < c.PublishMS(e+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSwitchProbClamped: the per-chunk switch probability is a
// probability for every config Validate accepts.
func TestSwitchProbClamped(t *testing.T) {
	prop := func(chunkSec, perMin float64) bool {
		c := clockConfig(chunkSec, 0)
		c.SwitchPerMin = math.Mod(math.Abs(perMin), MaxSwitchPerMin)
		if math.IsNaN(c.SwitchPerMin) || math.IsInf(c.SwitchPerMin, 0) {
			c.SwitchPerMin = 0
		}
		p := c.SwitchProb()
		return p >= 0 && p <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
