// Package live models linear ("live") channels: a channel publishes
// chunk i at virtual time i·chunk_dur on a shared publish clock, so the
// whole audience wants the same chunk at the same moment (the
// synchronized hot edge VoD workloads cannot express). Sessions join a
// channel in progress at the live edge — the start chunk derives from
// the arrival time, not chunk 0 — and may only request chunks the clock
// has published: a player that drains its buffer waits on the publish
// clock, accruing live-edge lag instead of unbounded rebuffering.
//
// Everything here is pure arithmetic on virtual time. The publish clock
// is global — every channel publishes chunk i at the same instant — so
// it never rewinds, a channel switch can never land ahead of the edge,
// and no RNG draws are involved: the byte-identity invariant (any
// parallelism) extends to live scenarios unchanged.
package live

import "fmt"

// Defaults for the zero-valued knobs of an enabled Config.
const (
	// DefaultChunkDurationSec matches the VoD chunk length (§2 of the
	// paper), so live and VoD ladders stay size-comparable.
	DefaultChunkDurationSec = 6
	// DefaultJoinBehindChunks is the live-latency safety margin: sessions
	// start this many chunks behind the edge so the first requests are
	// already published and the player can buffer without waiting.
	DefaultJoinBehindChunks = 2
	// DefaultJoinZipfS is the channel-popularity skew used when
	// JoinDist is "zipf".
	DefaultJoinZipfS = 1.1
)

// Channel-popularity distributions sessions join under.
const (
	JoinUniform = "uniform"
	JoinZipf    = "zipf"
)

// Bounds enforced by Validate.
const (
	MaxChannels     = 4096
	MinChunkSec     = 1.0
	MaxChunkSec     = 60.0
	MaxSwitchPerMin = 60.0
)

// Config is the live-channel block of a workload scenario. The zero
// value (Channels == 0) disables live mode entirely; an enabled config
// uses the neutral-zero convention for the remaining knobs (0/"" selects
// the default, like every other scenario field).
type Config struct {
	// Channels is the number of linear channels on air. 0 disables live
	// mode (the scenario runs as plain VoD).
	Channels int
	// ChunkDurationSec is the published chunk length in seconds; chunk i
	// of every channel becomes fetchable at i·ChunkDurationSec.
	// 0 selects DefaultChunkDurationSec.
	ChunkDurationSec float64
	// SwitchPerMin is the expected per-session channel switches per
	// minute of playback (0 = sessions stay on their join channel).
	SwitchPerMin float64
	// JoinDist is the channel-popularity distribution sessions join
	// under: JoinUniform (default) or JoinZipf.
	JoinDist string
	// JoinZipfS is the zipf skew exponent when JoinDist is JoinZipf;
	// 0 selects DefaultJoinZipfS.
	JoinZipfS float64
	// JoinBehindChunks is how many chunks behind the live edge a session
	// starts; 0 selects DefaultJoinBehindChunks.
	JoinBehindChunks int
}

// Enabled reports whether the scenario runs in live mode.
func (c Config) Enabled() bool { return c.Channels > 0 }

// WithDefaults fills the zero-valued knobs of an enabled config. A
// disabled config is returned unchanged, so a scenario without live mode
// stays byte-for-byte the zero value.
func (c Config) WithDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.ChunkDurationSec == 0 {
		c.ChunkDurationSec = DefaultChunkDurationSec
	}
	if c.JoinDist == "" {
		c.JoinDist = JoinUniform
	}
	if c.JoinZipfS == 0 {
		c.JoinZipfS = DefaultJoinZipfS
	}
	if c.JoinBehindChunks == 0 {
		c.JoinBehindChunks = DefaultJoinBehindChunks
	}
	return c
}

// Validate checks the config's bounds. A disabled config (Channels == 0)
// is always valid regardless of the other fields; Validate accepts both
// raw and defaulted configs (0 means "default" everywhere).
func (c Config) Validate() error {
	if c.Channels < 0 {
		return fmt.Errorf("live: channels must be >= 0, got %d", c.Channels)
	}
	if !c.Enabled() {
		return nil
	}
	if c.Channels > MaxChannels {
		return fmt.Errorf("live: channels must be <= %d, got %d", MaxChannels, c.Channels)
	}
	if c.ChunkDurationSec != 0 && (c.ChunkDurationSec < MinChunkSec || c.ChunkDurationSec > MaxChunkSec) {
		return fmt.Errorf("live: chunk duration must be in [%g, %g] seconds, got %g",
			MinChunkSec, MaxChunkSec, c.ChunkDurationSec)
	}
	if c.SwitchPerMin < 0 || c.SwitchPerMin > MaxSwitchPerMin {
		return fmt.Errorf("live: switch rate must be in [0, %g] per minute, got %g",
			MaxSwitchPerMin, c.SwitchPerMin)
	}
	switch c.JoinDist {
	case "", JoinUniform, JoinZipf:
	default:
		return fmt.Errorf("live: join distribution must be %q or %q, got %q",
			JoinUniform, JoinZipf, c.JoinDist)
	}
	if c.JoinZipfS < 0 {
		return fmt.Errorf("live: join zipf skew must be >= 0, got %g", c.JoinZipfS)
	}
	if c.JoinBehindChunks < 0 {
		return fmt.Errorf("live: join-behind chunks must be >= 0, got %d", c.JoinBehindChunks)
	}
	return nil
}

// ChunkDurMS is the publish period in virtual milliseconds.
func (c Config) ChunkDurMS() float64 { return c.ChunkDurationSec * 1000 }

// PublishMS returns the virtual time (ms since the campaign clock's
// zero) at which chunk i of every channel becomes fetchable.
func (c Config) PublishMS(chunk int) float64 {
	if chunk < 0 {
		return 0
	}
	return float64(chunk) * c.ChunkDurMS()
}

// EdgeChunk returns the live edge at virtual time atMS: the highest
// chunk index already published. It is monotonic in atMS and never
// negative (chunk 0 publishes at time 0).
func (c Config) EdgeChunk(atMS float64) int {
	dur := c.ChunkDurMS()
	if atMS <= 0 || dur <= 0 {
		return 0
	}
	return int(atMS / dur)
}

// JoinChunk returns the chunk a session arriving (or switching) at
// virtual time atMS starts from: JoinBehindChunks behind the live edge,
// clamped at 0. PublishMS(JoinChunk(t)) <= t always holds, so the first
// request after a join never waits on the publish clock.
func (c Config) JoinChunk(atMS float64) int {
	j := c.EdgeChunk(atMS) - c.JoinBehindChunks
	if j < 0 {
		return 0
	}
	return j
}

// SwitchProb converts the per-minute switch rate into a per-chunk
// switch probability (one decision after each played chunk), clamped
// to [0, 1].
func (c Config) SwitchProb() float64 {
	p := c.SwitchPerMin * c.ChunkDurationSec / 60
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
