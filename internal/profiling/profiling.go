// Package profiling backs the CLIs' -cpuprofile/-memprofile flags with
// runtime/pprof, so a slow or allocation-heavy campaign can be profiled
// in situ (the exact scenario, spec and flags under investigation)
// instead of reconstructed as a benchmark. The output files feed
// `go tool pprof`; ARCHITECTURE.md's "Performance model" section
// documents the workflow.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling when cpuPath is non-empty and returns a
// stop function that ends the CPU profile and, when memPath is
// non-empty, writes an allocation profile there. Either path may be
// empty; the returned stop is always safe to call exactly once. Call it
// on the normal exit path — a run that dies mid-way has no profile
// worth keeping.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close %s: %w", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			// Flush pending frees so the "inuse" view reflects reachable
			// memory, not GC timing; the "alloc" view is unaffected.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				f.Close()
				return fmt.Errorf("profiling: write %s: %w", memPath, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("profiling: close %s: %w", memPath, err)
			}
		}
		return nil
	}, nil
}
