// Package serve turns the batch streaming pipeline into a long-lived
// service: an engine generates an open-ended sequence of session-arrival
// windows against the simulated CDN, folds each closed window's
// telemetry into a rolling ring and a cumulative snapshot, and exposes
// the state over HTTP (/snapshot, /windows, /diagnose, /metrics) with
// synchronous checkpointing (POST /checkpoint, plus checkpoint-on-exit)
// for byte-identical resume.
//
// The determinism invariant extends the batch one: virtual time is an
// infinite sequence of service windows, window w covering
// [w·W, (w+1)·W) on the virtual clock, and each window is an ordinary
// batch sub-campaign — SessionsPerWindow sessions, arrival window W,
// arrival offset w·W, and seed WindowSeed(base, w). Window 0 runs at the
// base seed with offset 0, so a one-window serve run is the literal
// batch `vodsim -stream` campaign, byte for byte. The cumulative
// snapshot is the fold (telemetry.MergeSnapshots) of the closed windows'
// window-stripped snapshots in window order; a checkpoint stores the
// fold, the ring, and the window counter, and a resumed engine replays
// windows k, k+1, … exactly as the uninterrupted run would, at any
// Scenario.Parallelism. Wall-clock pacing (Config.Pace) only schedules
// when windows run — it never feeds the simulation.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"vidperf/internal/diagnose"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
	"vidperf/internal/timeline"
	"vidperf/internal/workload"
)

// Config parameterizes one serve engine. The zero value of the optional
// fields takes the documented defaults; Validate rejects configurations
// the engine cannot run deterministically.
type Config struct {
	// Scenario is the base per-window scenario: its Seed is the serve
	// seed, and its population/fleet/ABR knobs apply to every window.
	// NumSessions and ArrivalWindowMS act as defaults for
	// SessionsPerWindow and WindowMS; ArrivalOffsetMS must be zero (the
	// engine owns the virtual clock) and Timeline must be empty (phase
	// injection is a batch-campaign feature).
	Scenario workload.Scenario

	// SessionsPerWindow is the number of sessions each service window
	// generates (<= 0 uses the effective Scenario.NumSessions).
	SessionsPerWindow int
	// WindowMS is the virtual length of one service window
	// (<= 0 uses the effective Scenario.ArrivalWindowMS, 30 minutes).
	WindowMS float64
	// Ring is how many closed windows /windows retains (default 12).
	Ring int
	// SketchK is the quantile-sketch parameter (<= 0 selects
	// telemetry.DefaultSketchK).
	SketchK int
	// Diagnose classifies every session with internal/diagnose, enabling
	// /diagnose and the per-label Prometheus counters.
	Diagnose bool

	// Pace is the virtual-to-wall speed factor: pace 60 plays a 30-minute
	// window every 30 wall-seconds. Zero (or negative) runs windows back
	// to back at full speed.
	Pace float64
	// CheckpointPath, when set, is where checkpoints are written: on
	// POST /checkpoint, every CheckpointEveryWindows windows, and when
	// Run exits (SIGTERM shutdown included).
	CheckpointPath string
	// CheckpointEveryWindows writes a checkpoint after every n-th closed
	// window (0 = only on demand and at exit).
	CheckpointEveryWindows int
	// MaxWindows stops the engine after this many total closed windows
	// (0 = run until the context is cancelled).
	MaxWindows int
}

// withDefaults resolves the optional fields against the scenario's
// effective configuration.
func (c Config) withDefaults() Config {
	eff := c.Scenario.WithDefaults()
	if c.SessionsPerWindow <= 0 {
		c.SessionsPerWindow = eff.NumSessions
	}
	if c.WindowMS <= 0 {
		c.WindowMS = eff.ArrivalWindowMS
	}
	if c.Ring <= 0 {
		c.Ring = 12
	}
	return c
}

// Validate rejects configurations that would break the serve
// determinism contract.
func (c Config) Validate() error {
	if !c.Scenario.Timeline.Empty() {
		return errors.New("serve: scenario timelines are not supported in serve mode (phase injection is a batch-campaign feature)")
	}
	if c.Scenario.ArrivalOffsetMS != 0 {
		return errors.New("serve: Scenario.ArrivalOffsetMS is owned by the serve engine and must be zero")
	}
	return nil
}

// seedGamma is the Weyl increment that spaces per-window seed inputs;
// the same constant the per-session RNG streams use.
const seedGamma = 0x9e3779b97f4a7c15

// WindowSeed derives service window idx's scenario seed from the serve
// seed. Window 0 *is* the base seed — a one-window serve run and the
// equivalent batch run share every RNG stream — and later windows mix
// the index through a splitmix64 finalizer so their session streams are
// statistically independent of each other and of the base.
func WindowSeed(base uint64, idx int) uint64 {
	if idx <= 0 {
		return base
	}
	z := base ^ uint64(idx)*seedGamma
	z += seedGamma
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// WindowName names service window idx. The zero-padded index keeps
// lexicographic key order equal to time order in snapshot counters, like
// timeline window names.
func WindowName(idx int) string {
	return fmt.Sprintf("w%06d", idx)
}

// WindowResult is one closed window's entry in the ring: its index, its
// span on the virtual clock, and its full windowed snapshot (stamped
// with the window's end time).
type WindowResult struct {
	Index    int                 `json:"index"`
	Window   timeline.Window     `json:"window"`
	Snapshot *telemetry.Snapshot `json:"snapshot"`
}

// Engine is the serve loop plus its published state. Run drives it from
// one goroutine; the HTTP handlers (http.go) read the published state
// under the mutex, so snapshots are always of whole closed windows.
type Engine struct {
	cfg Config
	log *slog.Logger

	// live is the in-flight window's progress, read lock-free by /metrics
	// and /status.
	live session.Progress

	mu        sync.RWMutex
	cum       *telemetry.Snapshot // fold of closed windows, window-stripped
	ring      []WindowResult      // last Config.Ring closed windows, ascending
	done      int                 // closed windows, ever (survives resume)
	virtualMS float64             // done * WindowMS
	lastRate  float64             // records/sec of the last closed window (wall clock)
	startWall time.Time

	// ckptReq carries synchronous checkpoint requests from the HTTP
	// handler to the engine goroutine, which services them only at window
	// boundaries — the only instants the state is checkpointable.
	ckptReq chan chan ckptReply
}

// NewEngine builds an engine for a fresh run (virtual time zero).
func NewEngine(cfg Config, log *slog.Logger) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if _, err := session.NewABR(cfg.Scenario.ABRName); err != nil {
		return nil, err
	}
	if log == nil {
		log = slog.Default()
	}
	return &Engine{
		cfg:     cfg.withDefaults(),
		log:     log,
		ckptReq: make(chan chan ckptReply, 16),
	}, nil
}

// Config returns the engine's effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// WindowsDone returns how many windows have closed (including windows
// restored from a checkpoint).
func (e *Engine) WindowsDone() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.done
}

// VirtualMS returns the virtual-clock time covered by the closed
// windows.
func (e *Engine) VirtualMS() float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.virtualMS
}

// Run executes service windows until the context is cancelled or
// MaxWindows is reached, then — when CheckpointPath is set — writes a
// final checkpoint so a SIGTERM'd run resumes where it stopped. A
// cancellation arriving mid-window lets the window finish (the
// discrete-event shards are not interruptible) and is honoured at the
// next boundary.
func (e *Engine) Run(ctx context.Context) error {
	e.startWall = time.Now()
	done0 := e.WindowsDone()
	for {
		idx := e.WindowsDone()
		if ctx.Err() != nil || (e.cfg.MaxWindows > 0 && idx >= e.cfg.MaxWindows) {
			break
		}
		wallStart := time.Now()
		sn, w, err := e.runWindow(idx)
		if err != nil {
			e.failCheckpointWaiters(err)
			return err
		}
		e.publish(idx, w, sn, time.Since(wallStart))
		e.log.Info("window closed",
			slog.Int("window", idx),
			slog.Float64("virtual_ms", w.EndMS),
			slog.Uint64("sessions", sn.Counter(telemetry.CounterSessions)),
			slog.Uint64("chunks", sn.Counter(telemetry.CounterChunks)),
			slog.Duration("wall", time.Since(wallStart)))
		if e.cfg.CheckpointEveryWindows > 0 && (idx+1)%e.cfg.CheckpointEveryWindows == 0 {
			if err := e.checkpointNow(); err != nil {
				e.failCheckpointWaiters(err)
				return err
			}
		}
		e.drainCheckpointRequests()
		if !e.pace(ctx, done0) {
			break
		}
	}
	var err error
	if e.cfg.CheckpointPath != "" && e.WindowsDone() > 0 {
		err = e.checkpointNow()
	}
	e.drainCheckpointRequests()
	return err
}

// runWindow executes service window idx as a batch sub-campaign: the
// base scenario at the window's derived seed, offset onto the virtual
// clock, with a single report window covering its span so the snapshot
// carries the per-window counters the ring serves.
func (e *Engine) runWindow(idx int) (*telemetry.Snapshot, timeline.Window, error) {
	sc := e.cfg.Scenario
	sc.Seed = WindowSeed(e.cfg.Scenario.Seed, idx)
	sc.NumSessions = e.cfg.SessionsPerWindow
	sc.ArrivalWindowMS = e.cfg.WindowMS
	sc.ArrivalOffsetMS = float64(idx) * e.cfg.WindowMS
	w := timeline.Window{
		Name:    WindowName(idx),
		StartMS: sc.ArrivalOffsetMS,
		EndMS:   sc.ArrivalOffsetMS + e.cfg.WindowMS,
	}
	opt := session.Options{
		Telemetry: true,
		SketchK:   e.cfg.SketchK,
		Windows:   []timeline.Window{w},
		Progress:  &e.live,
	}
	if e.cfg.Diagnose {
		opt.Diagnose = &diagnose.Config{}
	}
	res, err := session.Execute(sc, opt)
	if err != nil {
		return nil, w, fmt.Errorf("serve: window %d: %w", idx, err)
	}
	return res.Snapshot, w, nil
}

// publish folds one closed window into the published state: the stamped
// windowed snapshot joins the ring, and its window-stripped view joins
// the cumulative fold. Stripping before folding is what keeps the
// cumulative snapshot byte-identical to the equivalent batch run — the
// base aggregates of a windowed run are exactly the batch run's (window
// attribution only adds keys next to them).
func (e *Engine) publish(idx int, w timeline.Window, sn *telemetry.Snapshot, wall time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sn.VirtualMS = w.EndMS
	e.ring = append(e.ring, WindowResult{Index: idx, Window: w, Snapshot: sn})
	if len(e.ring) > e.cfg.Ring {
		e.ring = e.ring[len(e.ring)-e.cfg.Ring:]
	}
	cum, err := telemetry.MergeSnapshots(e.cum, telemetry.WithoutWindows(sn))
	if err != nil {
		// Unreachable with a fixed sketch k and the fixed histogram
		// shapes; a panic here means published state would diverge from
		// the fold contract, which must not go unnoticed.
		panic(err)
	}
	e.cum = cum
	e.done = idx + 1
	e.virtualMS = w.EndMS
	if s := wall.Seconds(); s > 0 {
		e.lastRate = float64(sn.Counter(telemetry.CounterChunks)) / s
	}
}

// pace sleeps until the wall-clock target for the number of windows
// closed since Run started, servicing checkpoint requests while it
// waits. It returns false when the context is cancelled.
func (e *Engine) pace(ctx context.Context, done0 int) bool {
	if e.cfg.Pace <= 0 {
		return ctx.Err() == nil
	}
	wallPerWindow := time.Duration(e.cfg.WindowMS / e.cfg.Pace * float64(time.Millisecond))
	target := e.startWall.Add(time.Duration(e.WindowsDone()-done0) * wallPerWindow)
	for {
		d := time.Until(target)
		if d <= 0 {
			return ctx.Err() == nil
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return false
		case reply := <-e.ckptReq:
			t.Stop()
			e.serviceCheckpointRequest(reply)
		case <-t.C:
			return ctx.Err() == nil
		}
	}
}
