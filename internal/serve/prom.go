// prom.go renders the engine state in the Prometheus text exposition
// format (version 0.0.4), hand-rolled on the standard library: HELP and
// TYPE lines per family, escaped label values, one sample per line. The
// write order is a fixed code path, so two scrapes of the same state are
// byte-identical — /metrics inherits the repo's determinism posture even
// though nothing in CI diffs scrapes.
package serve

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"

	"vidperf/internal/diagnose"
	"vidperf/internal/telemetry"
)

// summaryQuantiles are the per-distribution quantiles /metrics exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// writeMetrics renders every metric family. The cumulative counters
// cover closed windows only; the live-window gauges cover the in-flight
// window, so their sum is the instantaneous total.
func (e *Engine) writeMetrics(w io.Writer) {
	e.mu.RLock()
	cum := e.cum
	done := e.done
	virtualMS := e.virtualMS
	lastRate := e.lastRate
	diagOn := e.cfg.Diagnose
	e.mu.RUnlock()

	counter := func(name string) uint64 {
		if cum == nil {
			return 0
		}
		return cum.Counter(name)
	}

	writeFamily(w, "vodsim_windows_completed_total", "counter",
		"Service windows closed since virtual time zero (checkpoint-resumed windows included).")
	writeSample(w, "vodsim_windows_completed_total", nil, float64(done))

	writeFamily(w, "vodsim_virtual_ms", "gauge",
		"Virtual-clock time covered by the closed windows, in milliseconds.")
	writeSample(w, "vodsim_virtual_ms", nil, virtualMS)

	writeFamily(w, "vodsim_sessions_total", "counter", "Sessions finished in closed windows.")
	writeSample(w, "vodsim_sessions_total", nil, float64(counter(telemetry.CounterSessions)))

	writeFamily(w, "vodsim_sessions_never_started_total", "counter",
		"Sessions that abandoned before playback started.")
	writeSample(w, "vodsim_sessions_never_started_total", nil,
		float64(counter(telemetry.CounterSessionsNeverStart)))

	writeFamily(w, "vodsim_chunks_total", "counter", "Chunk requests served in closed windows.")
	writeSample(w, "vodsim_chunks_total", nil, float64(counter(telemetry.CounterChunks)))

	writeFamily(w, "vodsim_chunks_hit_total", "counter", "Chunk requests served from CDN cache.")
	writeSample(w, "vodsim_chunks_hit_total", nil, float64(counter(telemetry.CounterChunksHit)))

	writeFamily(w, "vodsim_chunks_retry_timer_total", "counter",
		"Chunk requests that hit the client retry timer.")
	writeSample(w, "vodsim_chunks_retry_timer_total", nil,
		float64(counter(telemetry.CounterChunksRetryTimer)))

	writeFamily(w, "vodsim_cache_hit_ratio", "gauge",
		"Cumulative CDN cache hit ratio over closed windows.")
	hitRatio := 0.0
	if chunks := counter(telemetry.CounterChunks); chunks > 0 {
		hitRatio = float64(counter(telemetry.CounterChunksHit)) / float64(chunks)
	}
	writeSample(w, "vodsim_cache_hit_ratio", nil, hitRatio)

	if cum != nil {
		writeSummary(w, "vodsim_startup_ms",
			"Session startup delay in milliseconds (started sessions only).",
			cum.Sketch(telemetry.MetricStartupMS), cum.Histogram(telemetry.MetricStartupMS))
		writeSummary(w, "vodsim_rebuffer_rate",
			"Per-session fraction of playback time spent stalled.",
			cum.Sketch(telemetry.MetricRebufferRate), cum.Histogram(telemetry.MetricRebufferRate))
	}

	if diagOn {
		writeFamily(w, "vodsim_sessions_diag_total", "counter",
			"Sessions per diagnosis label (internal/diagnose).")
		for _, l := range diagnose.Labels() {
			writeSample(w, "vodsim_sessions_diag_total",
				[][2]string{{"label", string(l)}},
				float64(counter(telemetry.DiagSessionsKey(l))))
		}
	}

	writeFamily(w, "vodsim_live_window_sessions", "gauge",
		"Sessions finished so far in the in-flight window.")
	writeSample(w, "vodsim_live_window_sessions", nil, float64(e.live.Sessions.Load()))

	writeFamily(w, "vodsim_live_window_chunks", "gauge",
		"Chunk records emitted so far in the in-flight window.")
	writeSample(w, "vodsim_live_window_chunks", nil, float64(e.live.Chunks.Load()))

	writeFamily(w, "vodsim_shard_queue_depth", "gauge",
		"Planned shards of the in-flight window not yet drained.")
	writeSample(w, "vodsim_shard_queue_depth", nil, float64(e.live.QueueDepth()))

	writeFamily(w, "vodsim_records_per_second", "gauge",
		"Chunk records per wall-clock second over the last closed window.")
	writeSample(w, "vodsim_records_per_second", nil, lastRate)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeFamily(w, "vodsim_goroutines", "gauge", "Goroutines in the serve process.")
	writeSample(w, "vodsim_goroutines", nil, float64(runtime.NumGoroutine()))
	writeFamily(w, "vodsim_heap_alloc_bytes", "gauge", "Live heap bytes (runtime.MemStats.HeapAlloc).")
	writeSample(w, "vodsim_heap_alloc_bytes", nil, float64(ms.HeapAlloc))
}

// writeSummary renders one distribution as a Prometheus summary:
// quantile-labelled samples from the sketch plus _sum and _count from
// the exact histogram. Quantile samples are skipped while the
// distribution is empty so the exposition never carries NaN.
func writeSummary(w io.Writer, name, help string, sk *telemetry.QuantileSketch, h *telemetry.Histogram) {
	writeFamily(w, name, "summary", help)
	if sk != nil && sk.N() > 0 {
		for _, q := range summaryQuantiles {
			writeSample(w, name, [][2]string{{"quantile", fmt.Sprintf("%g", q)}}, sk.Quantile(q))
		}
	}
	var sum float64
	var count uint64
	if h != nil && h.N() > 0 {
		count = h.N()
		sum = h.Mean() * float64(h.N())
	}
	writeSample(w, name+"_sum", nil, sum)
	writeSample(w, name+"_count", nil, float64(count))
}

// writeFamily emits the HELP and TYPE lines for one metric family.
func writeFamily(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// writeSample emits one sample line, with labels when given.
func writeSample(w io.Writer, name string, labels [][2]string, v float64) {
	if len(labels) == 0 {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		// %q escapes backslash, quote, and newline — the three characters
		// the exposition format requires escaped in label values.
		parts[i] = fmt.Sprintf("%s=%q", l[0], l[1])
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, strings.Join(parts, ","), formatValue(v))
}

// formatValue renders a sample value; the exposition format spells
// specials as NaN/+Inf/-Inf (the writer avoids emitting them, but the
// formatter stays total).
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// escapeHelp escapes a HELP text (backslash and newline).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// nanToZero maps NaN to 0 for JSON reports (JSON has no NaN).
func nanToZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}
