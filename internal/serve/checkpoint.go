// checkpoint.go is the serve checkpoint codec: a checkpoint is the
// engine's complete resumable state at a window boundary — the effective
// config (seed and virtual clock geometry included), the window counter,
// the cumulative fold, and the ring. Sketches, histograms, and counters
// all round-trip JSON exactly (their wire formats encode the full
// internal state), so a resumed engine's published snapshots are
// byte-identical to the uninterrupted run's.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	"vidperf/internal/telemetry"
)

// CheckpointSchema is the checkpoint wire-format version.
const CheckpointSchema = 1

// Checkpoint is the serialized engine state.
type Checkpoint struct {
	Schema int `json:"schema"`
	// Config is the effective configuration of the checkpointed run.
	// Resume takes every determinism-relevant field (scenario, seed,
	// window geometry, sketch k, diagnosis) from here; only runtime
	// fields (pace, checkpoint path/interval, max windows) come from the
	// resuming caller.
	Config      Config              `json:"config"`
	WindowsDone int                 `json:"windows_done"`
	VirtualMS   float64             `json:"virtual_ms"`
	Cumulative  *telemetry.Snapshot `json:"cumulative,omitempty"`
	Ring        []WindowResult      `json:"ring,omitempty"`
}

// ckptReply is the engine's answer to one synchronous checkpoint
// request.
type ckptReply struct {
	Path        string  `json:"path"`
	WindowsDone int     `json:"windows_done"`
	VirtualMS   float64 `json:"virtual_ms"`
	err         error
}

// checkpoint assembles the engine's current state. Callers hold at least
// the read lock.
func (e *Engine) checkpointLocked() *Checkpoint {
	return &Checkpoint{
		Schema:      CheckpointSchema,
		Config:      e.cfg,
		WindowsDone: e.done,
		VirtualMS:   e.virtualMS,
		Cumulative:  e.cum,
		Ring:        e.ring,
	}
}

// checkpointNow writes the current state to Config.CheckpointPath
// atomically (temp file + rename, so a crash mid-write never corrupts
// the previous checkpoint). Only the engine goroutine calls it, at
// window boundaries.
func (e *Engine) checkpointNow() error {
	if e.cfg.CheckpointPath == "" {
		return errors.New("serve: no checkpoint path configured")
	}
	e.mu.RLock()
	ck := e.checkpointLocked()
	buf, err := json.Marshal(ck)
	e.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("serve: encode checkpoint: %w", err)
	}
	dir, base := filepath.Split(e.cfg.CheckpointPath)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: write checkpoint: %w", err)
	}
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), e.cfg.CheckpointPath); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("serve: write checkpoint: %w", err)
	}
	e.log.Info("checkpoint written",
		slog.String("path", e.cfg.CheckpointPath),
		slog.Int("windows_done", ck.WindowsDone),
		slog.Float64("virtual_ms", ck.VirtualMS))
	return nil
}

// serviceCheckpointRequest answers one POST /checkpoint waiter: write
// the checkpoint, report what it covers.
func (e *Engine) serviceCheckpointRequest(reply chan ckptReply) {
	err := e.checkpointNow()
	e.mu.RLock()
	r := ckptReply{
		Path:        e.cfg.CheckpointPath,
		WindowsDone: e.done,
		VirtualMS:   e.virtualMS,
		err:         err,
	}
	e.mu.RUnlock()
	reply <- r
}

// drainCheckpointRequests services every queued checkpoint request
// without blocking. The engine calls it at each window boundary (and on
// exit), so a request issued mid-window waits at most one window.
func (e *Engine) drainCheckpointRequests() {
	for {
		select {
		case reply := <-e.ckptReq:
			e.serviceCheckpointRequest(reply)
		default:
			return
		}
	}
}

// failCheckpointWaiters unblocks queued checkpoint waiters when the
// engine dies so their HTTP requests error instead of hanging.
func (e *Engine) failCheckpointWaiters(err error) {
	for {
		select {
		case reply := <-e.ckptReq:
			reply <- ckptReply{err: fmt.Errorf("serve: engine stopped: %w", err)}
		default:
			return
		}
	}
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load checkpoint: %w", err)
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// ReadCheckpoint decodes a checkpoint written by the engine.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("serve: decode checkpoint: %w", err)
	}
	if ck.Schema != CheckpointSchema {
		return nil, fmt.Errorf("serve: checkpoint schema %d, want %d", ck.Schema, CheckpointSchema)
	}
	if ck.WindowsDone < 0 || (ck.WindowsDone > 0 && ck.Cumulative == nil) {
		return nil, fmt.Errorf("serve: checkpoint has %d windows done but no cumulative snapshot", ck.WindowsDone)
	}
	if len(ck.Ring) > ck.WindowsDone {
		return nil, fmt.Errorf("serve: checkpoint ring holds %d windows but only %d are done", len(ck.Ring), ck.WindowsDone)
	}
	return &ck, nil
}

// Runtime are the Config fields a resumed run may change without
// touching the replay: they schedule and persist work but never feed the
// simulation.
type Runtime struct {
	Pace                   float64
	CheckpointPath         string
	CheckpointEveryWindows int
	MaxWindows             int
	// Parallelism overrides Scenario.Parallelism when > 0 — shard
	// concurrency is determinism-neutral by the repo's core invariant.
	Parallelism int
}

// ResumeEngine rebuilds an engine from a checkpoint. Determinism-
// relevant configuration comes from the checkpoint; rt supplies the
// runtime knobs of the new process. The resumed engine's next window is
// ck.WindowsDone, so the window sequence — and therefore every snapshot
// — continues exactly as the uninterrupted run would.
func ResumeEngine(ck *Checkpoint, rt Runtime, log *slog.Logger) (*Engine, error) {
	cfg := ck.Config
	cfg.Pace = rt.Pace
	cfg.CheckpointPath = rt.CheckpointPath
	cfg.CheckpointEveryWindows = rt.CheckpointEveryWindows
	cfg.MaxWindows = rt.MaxWindows
	if rt.Parallelism > 0 {
		cfg.Scenario.Parallelism = rt.Parallelism
	}
	e, err := NewEngine(cfg, log)
	if err != nil {
		return nil, err
	}
	// The fold is deep-copied: the engine merges into its cumulative
	// snapshot in place, and sharing it with the checkpoint would corrupt
	// a second resume from the same loaded state.
	cum, err := telemetry.MergeSnapshots(nil, ck.Cumulative)
	if err != nil {
		return nil, err
	}
	e.cum = cum
	e.ring = append([]WindowResult(nil), ck.Ring...)
	e.done = ck.WindowsDone
	e.virtualMS = ck.VirtualMS
	return e, nil
}
