package serve_test

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"path/filepath"
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/serve"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
	"vidperf/internal/timeline"
	"vidperf/internal/workload"
)

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testScenario(seed uint64, par int) workload.Scenario {
	return workload.Scenario{
		Seed:        seed,
		NumSessions: 300,
		NumPrefixes: 150,
		Catalog:     catalog.Config{NumVideos: 800},
		Parallelism: par,
	}
}

func testConfig(seed uint64, par int) serve.Config {
	return serve.Config{
		Scenario:          testScenario(seed, par),
		SessionsPerWindow: 120,
		WindowMS:          60000,
		SketchK:           64,
	}
}

// runEngine builds an engine, runs it to MaxWindows, and returns it.
func runEngine(t *testing.T, cfg serve.Config) *serve.Engine {
	t.Helper()
	eng, err := serve.NewEngine(cfg, quietLog())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := eng.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return eng
}

func engineSnapshotBytes(t *testing.T, eng *serve.Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// TestOneWindowMatchesBatchRun pins the anchor of the serve determinism
// contract: window 0 runs at the base seed with offset 0, so a one-window
// serve run's cumulative snapshot is byte-identical to the equivalent
// batch `vodsim -stream` campaign.
func TestOneWindowMatchesBatchRun(t *testing.T) {
	cfg := testConfig(11, 1)
	cfg.MaxWindows = 1
	eng := runEngine(t, cfg)

	sc := testScenario(11, 1)
	sc.NumSessions = cfg.SessionsPerWindow
	sc.ArrivalWindowMS = cfg.WindowMS
	res, err := session.Execute(sc, session.Options{Telemetry: true, SketchK: cfg.SketchK})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sn := res.Snapshot
	var batch bytes.Buffer
	if err := telemetry.WriteSnapshot(&batch, sn); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if got := engineSnapshotBytes(t, eng); !bytes.Equal(got, batch.Bytes()) {
		t.Fatalf("one-window serve snapshot differs from batch run (%d vs %d bytes)",
			len(got), batch.Len())
	}
}

// TestServeParallelismByteIdentical extends the repo's core determinism
// invariant to serve mode: the cumulative snapshot after several windows
// is byte-identical at any Scenario.Parallelism.
func TestServeParallelismByteIdentical(t *testing.T) {
	build := func(par int) []byte {
		cfg := testConfig(23, par)
		cfg.MaxWindows = 3
		return engineSnapshotBytes(t, runEngine(t, cfg))
	}
	seq := build(1)
	for _, par := range []int{2, 8} {
		if got := build(par); !bytes.Equal(seq, got) {
			t.Fatalf("Parallelism=%d serve snapshot differs from sequential (%d vs %d bytes)",
				par, len(got), len(seq))
		}
	}
}

// TestCheckpointResumeByteIdentical is the checkpoint/resume contract: a
// run checkpointed after window 2 and resumed to window 4 produces a
// cumulative snapshot (and ring) byte-identical to the uninterrupted
// 4-window run — including when the resumed process uses a different
// parallelism.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	refCfg := testConfig(31, 1)
	refCfg.MaxWindows = 4
	ref := runEngine(t, refCfg)
	refBytes := engineSnapshotBytes(t, ref)
	refRing := windowsBody(t, ref)

	ckptPath := filepath.Join(t.TempDir(), "serve.ckpt")
	firstCfg := testConfig(31, 1)
	firstCfg.MaxWindows = 2
	firstCfg.CheckpointPath = ckptPath
	runEngine(t, firstCfg) // Run writes a final checkpoint on exit.

	ck, err := serve.LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if ck.WindowsDone != 2 {
		t.Fatalf("checkpoint covers %d windows, want 2", ck.WindowsDone)
	}
	for _, par := range []int{1, 4} {
		resumed, err := serve.ResumeEngine(ck, serve.Runtime{
			CheckpointPath: ckptPath,
			MaxWindows:     4,
			Parallelism:    par,
		}, quietLog())
		if err != nil {
			t.Fatalf("ResumeEngine(par=%d): %v", par, err)
		}
		if err := resumed.Run(context.Background()); err != nil {
			t.Fatalf("resumed Run(par=%d): %v", par, err)
		}
		if got := engineSnapshotBytes(t, resumed); !bytes.Equal(got, refBytes) {
			t.Fatalf("resumed snapshot (par=%d) differs from uninterrupted run (%d vs %d bytes)",
				par, len(got), len(refBytes))
		}
		if got := windowsBody(t, resumed); !bytes.Equal(got, refRing) {
			t.Fatalf("resumed /windows body (par=%d) differs from uninterrupted run", par)
		}
	}
}

// TestCheckpointRoundTripsThroughJSON: the file the engine writes loads
// back into an identical checkpoint — re-marshalling changes nothing.
func TestCheckpointRoundTripsThroughJSON(t *testing.T) {
	ckptPath := filepath.Join(t.TempDir(), "serve.ckpt")
	cfg := testConfig(47, 0)
	cfg.MaxWindows = 2
	cfg.CheckpointPath = ckptPath
	cfg.CheckpointEveryWindows = 1
	runEngine(t, cfg)

	ck, err := serve.LoadCheckpoint(ckptPath)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if ck.VirtualMS != 2*cfg.WindowMS {
		t.Fatalf("checkpoint VirtualMS = %g, want %g", ck.VirtualMS, 2*cfg.WindowMS)
	}
	if len(ck.Ring) != 2 {
		t.Fatalf("checkpoint ring holds %d windows, want 2", len(ck.Ring))
	}
	resumed, err := serve.ResumeEngine(ck, serve.Runtime{CheckpointPath: ckptPath}, quietLog())
	if err != nil {
		t.Fatalf("ResumeEngine: %v", err)
	}
	if resumed.WindowsDone() != 2 || resumed.VirtualMS() != ck.VirtualMS {
		t.Fatalf("resumed engine at window %d / %gms, want 2 / %gms",
			resumed.WindowsDone(), resumed.VirtualMS(), ck.VirtualMS)
	}
}

// TestWindowSeed: window 0 is the base seed (the batch-equivalence
// anchor); later windows get distinct, deterministic seeds.
func TestWindowSeed(t *testing.T) {
	if got := serve.WindowSeed(99, 0); got != 99 {
		t.Fatalf("WindowSeed(99, 0) = %d, want the base seed", got)
	}
	seen := map[uint64]int{99: 0}
	for idx := 1; idx <= 1000; idx++ {
		s := serve.WindowSeed(99, idx)
		if prev, dup := seen[s]; dup {
			t.Fatalf("WindowSeed(99, %d) collides with window %d", idx, prev)
		}
		seen[s] = idx
		if s != serve.WindowSeed(99, idx) {
			t.Fatalf("WindowSeed(99, %d) is not deterministic", idx)
		}
	}
}

// TestConfigValidation: the engine refuses configurations that would
// break the serve determinism contract.
func TestConfigValidation(t *testing.T) {
	cfg := testConfig(1, 0)
	cfg.Scenario.ArrivalOffsetMS = 5
	if _, err := serve.NewEngine(cfg, quietLog()); err == nil {
		t.Fatal("NewEngine accepted a non-zero ArrivalOffsetMS")
	}
	cfg = testConfig(1, 0)
	cfg.Scenario.Timeline = timeline.Timeline{Phases: []timeline.Phase{
		{Name: "outage", StartMS: 0, EndMS: 1000},
	}}
	if _, err := serve.NewEngine(cfg, quietLog()); err == nil {
		t.Fatal("NewEngine accepted a scenario timeline")
	}
	cfg = testConfig(1, 0)
	cfg.Scenario.ABRName = "no-such-abr"
	if _, err := serve.NewEngine(cfg, quietLog()); err == nil {
		t.Fatal("NewEngine accepted an unknown ABR")
	}
}

// TestReadCheckpointRejectsCorruptState: schema and shape violations are
// load-time errors, not silent divergence later.
func TestReadCheckpointRejectsCorruptState(t *testing.T) {
	for name, body := range map[string]string{
		"bad schema":     `{"schema": 2, "config": {}, "windows_done": 0}`,
		"missing fold":   `{"schema": 1, "config": {}, "windows_done": 3}`,
		"negative count": `{"schema": 1, "config": {}, "windows_done": -1}`,
		"oversized ring": `{"schema": 1, "config": {}, "windows_done": 0, "ring": [{"index": 0}]}`,
		"not a document": `]`,
	} {
		if _, err := serve.ReadCheckpoint(bytes.NewReader([]byte(body))); err == nil {
			t.Errorf("ReadCheckpoint accepted %s", name)
		}
	}
}
