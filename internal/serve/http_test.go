package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vidperf/internal/serve"
	"vidperf/internal/telemetry"
)

// get performs one request against the engine's handler.
func doReq(t *testing.T, eng *serve.Engine, method, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	eng.Handler().ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

// windowsBody returns the /windows response body (the ring fold).
func windowsBody(t *testing.T, eng *serve.Engine) []byte {
	t.Helper()
	rec := doReq(t, eng, http.MethodGet, "/windows")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /windows = %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes()
}

// TestHandlerBeforeFirstWindow: a freshly-started engine serves health
// and status but 503s the telemetry views, and /checkpoint without a
// configured path is a 409.
func TestHandlerBeforeFirstWindow(t *testing.T) {
	eng, err := serve.NewEngine(testConfig(5, 0), quietLog())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if rec := doReq(t, eng, http.MethodGet, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("GET /healthz = %d", rec.Code)
	}
	for _, path := range []string{"/snapshot", "/windows"} {
		if rec := doReq(t, eng, http.MethodGet, path); rec.Code != http.StatusServiceUnavailable {
			t.Errorf("GET %s before any window = %d, want 503", path, rec.Code)
		}
	}
	if rec := doReq(t, eng, http.MethodGet, "/diagnose"); rec.Code != http.StatusNotFound {
		t.Errorf("GET /diagnose with diagnosis off = %d, want 404", rec.Code)
	}
	if rec := doReq(t, eng, http.MethodPost, "/checkpoint"); rec.Code != http.StatusConflict {
		t.Errorf("POST /checkpoint without a path = %d, want 409", rec.Code)
	}
	if rec := doReq(t, eng, http.MethodPost, "/snapshot"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /snapshot = %d, want 405", rec.Code)
	}
	rec := doReq(t, eng, http.MethodGet, "/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /status = %d", rec.Code)
	}
	var st map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	if st["windows_done"] != float64(0) {
		t.Errorf("fresh engine windows_done = %v", st["windows_done"])
	}
	// /metrics works from the first scrape, before any window closes.
	if rec := doReq(t, eng, http.MethodGet, "/metrics"); rec.Code != http.StatusOK {
		t.Errorf("GET /metrics before any window = %d", rec.Code)
	}
}

// TestHandlerAfterWindows: the telemetry views come alive once windows
// close, /snapshot serves the exact cumulative bytes, and /windows
// serves a windowed snapshot covering the ring.
func TestHandlerAfterWindows(t *testing.T) {
	cfg := testConfig(7, 0)
	cfg.MaxWindows = 2
	cfg.Diagnose = true
	eng := runEngine(t, cfg)

	rec := doReq(t, eng, http.MethodGet, "/snapshot")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /snapshot = %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), engineSnapshotBytes(t, eng)) {
		t.Error("/snapshot body differs from WriteSnapshot")
	}
	sn, err := telemetry.ReadSnapshot(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("/snapshot is not a readable snapshot: %v", err)
	}
	if sn.Counter(telemetry.CounterSessions) != 2*uint64(cfg.SessionsPerWindow) {
		t.Errorf("cumulative sessions = %d, want %d",
			sn.Counter(telemetry.CounterSessions), 2*cfg.SessionsPerWindow)
	}
	if len(sn.Windows) != 0 || sn.VirtualMS != 0 {
		t.Error("/snapshot carries serve-only decoration; its bytes must match the batch artifact")
	}

	wsn, err := telemetry.ReadSnapshot(bytes.NewReader(windowsBody(t, eng)))
	if err != nil {
		t.Fatalf("/windows is not a readable snapshot: %v", err)
	}
	if len(wsn.Windows) != 2 {
		t.Fatalf("/windows covers %d windows, want 2", len(wsn.Windows))
	}
	if wsn.VirtualMS != 2*cfg.WindowMS {
		t.Errorf("/windows virtual_ms = %g, want %g", wsn.VirtualMS, 2*cfg.WindowMS)
	}
	for i, w := range wsn.Windows {
		if w.Name != serve.WindowName(i) {
			t.Errorf("window %d named %q, want %q", i, w.Name, serve.WindowName(i))
		}
		if got := wsn.Counter(telemetry.WindowSessionsKey(w.Name)); got != uint64(cfg.SessionsPerWindow) {
			t.Errorf("window %s sessions = %d, want %d", w.Name, got, cfg.SessionsPerWindow)
		}
	}

	rec = doReq(t, eng, http.MethodGet, "/diagnose")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /diagnose = %d: %s", rec.Code, rec.Body.String())
	}
	var rep struct {
		Sessions uint64 `json:"sessions"`
		Labelled uint64 `json:"labelled"`
		Rows     []struct {
			Label string `json:"label"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("diagnose JSON: %v", err)
	}
	if rep.Sessions != 2*uint64(cfg.SessionsPerWindow) || len(rep.Rows) == 0 {
		t.Errorf("diagnose report covers %d sessions with %d rows", rep.Sessions, len(rep.Rows))
	}

	var st struct {
		WindowsDone int     `json:"windows_done"`
		VirtualMS   float64 `json:"virtual_ms"`
		RingHeld    int     `json:"ring_held"`
	}
	rec = doReq(t, eng, http.MethodGet, "/status")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	if st.WindowsDone != 2 || st.VirtualMS != 2*cfg.WindowMS || st.RingHeld != 2 {
		t.Errorf("status = %+v", st)
	}
}

// TestRingTrimming: the /windows view holds at most Config.Ring closed
// windows, dropping the oldest.
func TestRingTrimming(t *testing.T) {
	cfg := testConfig(9, 0)
	cfg.SessionsPerWindow = 40
	cfg.Ring = 2
	cfg.MaxWindows = 4
	eng := runEngine(t, cfg)
	wsn, err := telemetry.ReadSnapshot(bytes.NewReader(windowsBody(t, eng)))
	if err != nil {
		t.Fatalf("/windows: %v", err)
	}
	if len(wsn.Windows) != 2 {
		t.Fatalf("ring holds %d windows, want 2", len(wsn.Windows))
	}
	names := []string{wsn.Windows[0].Name, wsn.Windows[1].Name}
	if names[0] != serve.WindowName(2) || names[1] != serve.WindowName(3) {
		t.Fatalf("ring kept %v, want the two newest windows", strings.Join(names, ", "))
	}
}
