package serve_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"vidperf/internal/serve"
)

// TestPacedRunServicesLiveCheckpoints runs a paced engine (real wall
// sleeps between windows) while POSTing /checkpoint from the outside:
// the request must be serviced at a boundary or during the pace wait,
// and the written checkpoint must load.
func TestPacedRunServicesLiveCheckpoints(t *testing.T) {
	cfg := testConfig(21, 2)
	cfg.SessionsPerWindow = 60
	cfg.MaxWindows = 2
	// 60000 virtual ms per window at pace 200 → 300 wall ms per window,
	// far longer than the ~ms simulation, so Run spends most of its time
	// in the pace wait where requests are serviced.
	cfg.Pace = 200
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "svc.ckpt")

	eng, err := serve.NewEngine(cfg, quietLog())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- eng.Run(context.Background()) }()

	h := eng.Handler()
	deadline := time.Now().Add(30 * time.Second)
	var ckptOK bool
	for !ckptOK && time.Now().Before(deadline) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/checkpoint", nil))
		if rec.Code == http.StatusOK {
			ckptOK = true
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !ckptOK {
		t.Fatal("no POST /checkpoint succeeded while the paced engine ran")
	}
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}
	ck, err := serve.LoadCheckpoint(cfg.CheckpointPath)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if ck.WindowsDone < 1 || ck.WindowsDone > cfg.MaxWindows {
		t.Fatalf("checkpoint covers %d windows, want 1..%d", ck.WindowsDone, cfg.MaxWindows)
	}
}

// TestPacedRunStopsOnCancel cancels a paced open-ended run mid-wait: Run
// must return promptly and cleanly instead of sleeping out the window.
func TestPacedRunStopsOnCancel(t *testing.T) {
	cfg := testConfig(22, 2)
	cfg.SessionsPerWindow = 60
	// MaxWindows 0 (run forever) at a pace slow enough — 10 wall seconds
	// per window — that the test cancels during the first pace wait.
	cfg.Pace = 6
	eng, err := serve.NewEngine(cfg, quietLog())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- eng.Run(ctx) }()

	deadline := time.Now().Add(30 * time.Second)
	for eng.WindowsDone() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if eng.WindowsDone() == 0 {
		t.Fatal("first window never closed")
	}
	cancel()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("cancelled Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	if eng.WindowsDone() != 1 {
		t.Fatalf("engine closed %d windows, want exactly 1", eng.WindowsDone())
	}
}

// TestHandleCheckpointBackpressure pins the two refusal paths of the
// HTTP checkpoint handler on an idle engine: a cancelled request context
// returns 503 without hanging, and once the request queue is full
// further requests are refused immediately.
func TestHandleCheckpointBackpressure(t *testing.T) {
	cfg := testConfig(23, 1)
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "svc.ckpt")
	eng, err := serve.NewEngine(cfg, quietLog())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	h := eng.Handler()
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	// The queue holds 16 requests; each cancelled request returns but
	// leaves its entry queued because no engine goroutine is draining.
	for i := 0; i < 16; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/checkpoint", nil).WithContext(cancelled)
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("cancelled checkpoint request %d = %d, want 503", i, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/checkpoint", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request against a full queue = %d, want 503", rec.Code)
	}
}

// TestEngineConfigDefaults pins the effective configuration the Config
// accessor reports after default resolution.
func TestEngineConfigDefaults(t *testing.T) {
	cfg := serve.Config{Scenario: testScenario(5, 1)}
	eng, err := serve.NewEngine(cfg, quietLog())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	eff := eng.Config()
	if eff.SessionsPerWindow != 300 {
		t.Fatalf("SessionsPerWindow defaulted to %d, want the scenario's 300", eff.SessionsPerWindow)
	}
	if eff.WindowMS <= 0 {
		t.Fatalf("WindowMS defaulted to %g", eff.WindowMS)
	}
	if eff.Ring != 12 {
		t.Fatalf("Ring defaulted to %d, want 12", eff.Ring)
	}
}
