package serve_test

import (
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family of a text exposition.
type promFamily struct {
	help    string
	typ     string
	samples []promSample
}

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parsePromText validates a Prometheus text-format (0.0.4) exposition
// line by line — HELP/TYPE ordering, metric and label name charsets,
// quoted label values, parseable sample values — and returns the
// families. Any violation fails the test.
func parsePromText(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	var current string
	for ln, line := range strings.Split(text, "\n") {
		fail := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d %q: %s", ln+1, line, fmt.Sprintf(format, args...))
		}
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				fail("malformed HELP line")
			}
			if _, dup := families[name]; dup {
				fail("family %s declared twice", name)
			}
			families[name] = &promFamily{help: help}
			current = name
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name != current {
				fail("TYPE does not follow its HELP line")
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				fail("unknown type %q", typ)
			}
			families[name].typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			fail("unknown comment form")
		}

		// Sample line: name[{labels}] value
		nameAndLabels, valueStr, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(valueStr, " ") {
			fail("sample line is not `name value`")
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			fail("unparseable value: %v", err)
		}
		name := nameAndLabels
		labels := map[string]string{}
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			if !strings.HasSuffix(nameAndLabels, "}") {
				fail("unterminated label set")
			}
			name = nameAndLabels[:i]
			for _, pair := range splitLabels(t, nameAndLabels[i+1:len(nameAndLabels)-1]) {
				k, quoted, ok := strings.Cut(pair, "=")
				if !ok || !promLabelRe.MatchString(k) {
					fail("malformed label pair %q", pair)
				}
				v, err := strconv.Unquote(quoted)
				if err != nil {
					fail("label value %s is not a quoted string: %v", quoted, err)
				}
				labels[k] = v
			}
		}
		if !promNameRe.MatchString(name) {
			fail("invalid metric name %q", name)
		}
		fam := name
		if families[fam] == nil {
			// Summary/histogram children attach to their base family.
			for _, suffix := range []string{"_sum", "_count", "_bucket"} {
				if base, ok := strings.CutSuffix(name, suffix); ok && families[base] != nil {
					fam = base
					break
				}
			}
		}
		if families[fam] == nil {
			fail("sample for undeclared family %q", name)
		}
		if fam != current {
			fail("sample appears outside its family's block")
		}
		families[fam].samples = append(families[fam].samples,
			promSample{name: name, labels: labels, value: value})
	}
	return families
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(t *testing.T, body string) []string {
	t.Helper()
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		parts = append(parts, body[start:])
	}
	return parts
}

// TestMetricsExpositionFormat scrapes a running engine and validates the
// whole exposition with the strict parser: every expected family is
// present and typed, counters carry consistent totals, summaries have
// quantile samples plus _sum/_count, and no sample is NaN.
func TestMetricsExpositionFormat(t *testing.T) {
	cfg := testConfig(13, 0)
	cfg.MaxWindows = 2
	cfg.Diagnose = true
	eng := runEngine(t, cfg)

	rec := doReq(t, eng, http.MethodGet, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	if strings.Contains(rec.Body.String(), "NaN") {
		t.Error("exposition contains NaN")
	}
	families := parsePromText(t, rec.Body.String())

	wantTyped := map[string]string{
		"vodsim_windows_completed_total":      "counter",
		"vodsim_virtual_ms":                   "gauge",
		"vodsim_sessions_total":               "counter",
		"vodsim_sessions_never_started_total": "counter",
		"vodsim_chunks_total":                 "counter",
		"vodsim_chunks_hit_total":             "counter",
		"vodsim_chunks_retry_timer_total":     "counter",
		"vodsim_cache_hit_ratio":              "gauge",
		"vodsim_startup_ms":                   "summary",
		"vodsim_rebuffer_rate":                "summary",
		"vodsim_sessions_diag_total":          "counter",
		"vodsim_live_window_sessions":         "gauge",
		"vodsim_live_window_chunks":           "gauge",
		"vodsim_shard_queue_depth":            "gauge",
		"vodsim_records_per_second":           "gauge",
		"vodsim_goroutines":                   "gauge",
		"vodsim_heap_alloc_bytes":             "gauge",
	}
	for name, typ := range wantTyped {
		fam := families[name]
		if fam == nil {
			t.Errorf("family %s missing", name)
			continue
		}
		if fam.typ != typ {
			t.Errorf("family %s typed %q, want %q", name, fam.typ, typ)
		}
		if len(fam.samples) == 0 {
			t.Errorf("family %s has no samples", name)
		}
		if fam.help == "" {
			t.Errorf("family %s has no help text", name)
		}
	}

	single := func(name string) float64 {
		t.Helper()
		fam := families[name]
		if fam == nil || len(fam.samples) != 1 {
			t.Fatalf("family %s: want exactly one sample", name)
		}
		return fam.samples[0].value
	}
	if got := single("vodsim_windows_completed_total"); got != 2 {
		t.Errorf("windows_completed = %g", got)
	}
	if got := single("vodsim_sessions_total"); got != float64(2*cfg.SessionsPerWindow) {
		t.Errorf("sessions_total = %g, want %d", got, 2*cfg.SessionsPerWindow)
	}
	if got := single("vodsim_virtual_ms"); got != 2*cfg.WindowMS {
		t.Errorf("virtual_ms = %g, want %g", got, 2*cfg.WindowMS)
	}
	hits, chunks := single("vodsim_chunks_hit_total"), single("vodsim_chunks_total")
	if chunks <= 0 || hits > chunks {
		t.Errorf("chunk counters inconsistent: hit=%g total=%g", hits, chunks)
	}
	if got := single("vodsim_cache_hit_ratio"); got != hits/chunks {
		t.Errorf("cache_hit_ratio = %g, want %g", got, hits/chunks)
	}

	// Summaries: three quantile samples, _sum, and _count, with the count
	// matching the sessions that actually started.
	startup := families["vodsim_startup_ms"]
	var quantiles, count int
	for _, s := range startup.samples {
		switch s.name {
		case "vodsim_startup_ms":
			if _, ok := s.labels["quantile"]; !ok {
				t.Error("startup sample without quantile label")
			}
			quantiles++
		case "vodsim_startup_ms_count":
			count++
			if s.value <= 0 {
				t.Errorf("startup count = %g", s.value)
			}
		}
	}
	if quantiles != 3 || count != 1 {
		t.Errorf("startup summary has %d quantile samples and %d counts", quantiles, count)
	}

	// Diagnosis counters are labelled and sum to the session total.
	var diagSum float64
	for _, s := range families["vodsim_sessions_diag_total"].samples {
		if s.labels["label"] == "" {
			t.Error("diag sample without label")
		}
		diagSum += s.value
	}
	if diagSum != float64(2*cfg.SessionsPerWindow) {
		t.Errorf("diag labels sum to %g, want %d", diagSum, 2*cfg.SessionsPerWindow)
	}
}

// TestMetricsScrapeDeterministic: two scrapes of the same engine state
// differ only in the process gauges (goroutines, heap) — the telemetry
// families are byte-identical, matching the fixed write order.
func TestMetricsScrapeDeterministic(t *testing.T) {
	cfg := testConfig(17, 0)
	cfg.SessionsPerWindow = 40
	cfg.MaxWindows = 1
	eng := runEngine(t, cfg)
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "goroutines") || strings.Contains(line, "heap_alloc") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	a := doReq(t, eng, http.MethodGet, "/metrics").Body.String()
	b := doReq(t, eng, http.MethodGet, "/metrics").Body.String()
	if strip(a) != strip(b) {
		t.Fatal("two scrapes of unchanged state differ outside the process gauges")
	}
}
