package serve

import (
	"errors"
	"io"
	"log/slog"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"vidperf/internal/workload"
)

func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func internalEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := NewEngine(cfg, discardLog())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng
}

func TestFormatValueSpecials(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{1.5, "1.5"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := formatValue(c.v); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestNanToZero(t *testing.T) {
	if got := nanToZero(math.NaN()); got != 0 {
		t.Fatalf("nanToZero(NaN) = %g", got)
	}
	if got := nanToZero(2.5); got != 2.5 {
		t.Fatalf("nanToZero(2.5) = %g", got)
	}
}

func TestCheckpointNowWithoutPath(t *testing.T) {
	eng := internalEngine(t, Config{Scenario: workload.Scenario{NumPrefixes: 10}})
	if err := eng.checkpointNow(); err == nil {
		t.Fatal("checkpointNow with no path configured did not error")
	}
}

func TestCheckpointNowUnwritableDir(t *testing.T) {
	cfg := Config{
		Scenario:       workload.Scenario{NumPrefixes: 10},
		CheckpointPath: filepath.Join(t.TempDir(), "no-such-dir", "svc.ckpt"),
	}
	eng := internalEngine(t, cfg)
	if err := eng.checkpointNow(); err == nil {
		t.Fatal("checkpointNow into a missing directory did not error")
	}
}

// TestDrainCheckpointRequests queues a synchronous checkpoint request and
// lets the boundary drain answer it: the checkpoint lands on disk and the
// reply reports the covered state.
func TestDrainCheckpointRequests(t *testing.T) {
	cfg := Config{
		Scenario:       workload.Scenario{NumPrefixes: 10},
		CheckpointPath: filepath.Join(t.TempDir(), "svc.ckpt"),
	}
	eng := internalEngine(t, cfg)
	reply := make(chan ckptReply, 1)
	eng.ckptReq <- reply
	eng.drainCheckpointRequests()
	rep := <-reply
	if rep.err != nil {
		t.Fatalf("checkpoint request failed: %v", rep.err)
	}
	if rep.Path != cfg.CheckpointPath {
		t.Fatalf("reply path = %q, want %q", rep.Path, cfg.CheckpointPath)
	}
	if _, err := LoadCheckpoint(cfg.CheckpointPath); err != nil {
		t.Fatalf("written checkpoint does not load: %v", err)
	}
	// An empty queue drains as a no-op.
	eng.drainCheckpointRequests()
}

// TestFailCheckpointWaiters pins the engine-death path: queued waiters
// get an error instead of hanging forever.
func TestFailCheckpointWaiters(t *testing.T) {
	eng := internalEngine(t, Config{Scenario: workload.Scenario{NumPrefixes: 10}})
	reply := make(chan ckptReply, 1)
	eng.ckptReq <- reply
	eng.failCheckpointWaiters(errors.New("window exploded"))
	rep := <-reply
	if rep.err == nil {
		t.Fatal("waiter got a nil error from a dead engine")
	}
	if !strings.Contains(rep.err.Error(), "engine stopped") {
		t.Fatalf("waiter error = %v, want an engine-stopped wrapper", rep.err)
	}
	eng.failCheckpointWaiters(errors.New("again")) // empty queue: no-op
}
