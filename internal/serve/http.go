// http.go is the engine's observability surface. Handlers read the
// published state under the read lock and encode into a buffer before
// writing, so a slow client never holds the engine's lock. /snapshot
// deliberately emits the cumulative fold with no serve-only decoration —
// its bytes are the batch-equivalence artifact the determinism gate
// compares.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"vidperf/internal/analysis"
	"vidperf/internal/telemetry"
)

// Handler returns the engine's HTTP mux:
//
//	GET  /snapshot   cumulative telemetry.Snapshot JSON (batch-identical bytes)
//	GET  /windows    rolling-window snapshot (the shape analyze -windows consumes)
//	GET  /diagnose   live cause-share table (requires Config.Diagnose)
//	GET  /metrics    Prometheus text exposition
//	GET  /status     engine status JSON
//	GET  /healthz    liveness probe
//	POST /checkpoint synchronous checkpoint at the next window boundary
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /snapshot", e.handleSnapshot)
	mux.HandleFunc("GET /windows", e.handleWindows)
	mux.HandleFunc("GET /diagnose", e.handleDiagnose)
	mux.HandleFunc("GET /metrics", e.handleMetrics)
	mux.HandleFunc("GET /status", e.handleStatus)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /checkpoint", e.handleCheckpoint)
	return mux
}

// WriteSnapshot writes the cumulative snapshot — exactly the bytes the
// equivalent batch run's -out file holds. It errors until the first
// window closes.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.cum == nil {
		return fmt.Errorf("serve: no completed windows yet")
	}
	return telemetry.WriteSnapshot(w, e.cum)
}

func (e *Engine) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := e.WriteSnapshot(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// ringSnapshot folds the ring into one windowed snapshot: window list in
// time order plus the per-window counters and sketches — the same shape
// a timeline run's snapshot has, so cmd/analyze -windows renders it
// directly.
func (e *Engine) ringSnapshot() (*telemetry.Snapshot, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var acc *telemetry.Snapshot
	var err error
	for _, wr := range e.ring {
		acc, err = telemetry.MergeSnapshots(acc, wr.Snapshot)
		if err != nil {
			return nil, err
		}
	}
	return acc, nil
}

func (e *Engine) handleWindows(w http.ResponseWriter, r *http.Request) {
	acc, err := e.ringSnapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if acc == nil {
		http.Error(w, "serve: no completed windows yet", http.StatusServiceUnavailable)
		return
	}
	var buf bytes.Buffer
	if err := telemetry.WriteSnapshot(&buf, acc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// diagRow is one label's row of the /diagnose JSON report.
type diagRow struct {
	Label       string  `json:"label"`
	Sessions    uint64  `json:"sessions"`
	Share       float64 `json:"share"`
	StartupP50  float64 `json:"startup_p50_ms"`
	RebufferP90 float64 `json:"rebuffer_p90"`
}

// diagReport is the /diagnose JSON body.
type diagReport struct {
	VirtualMS     float64   `json:"virtual_ms"`
	Sessions      uint64    `json:"sessions"`
	Labelled      uint64    `json:"labelled"`
	DegradedShare float64   `json:"degraded_share"`
	Rows          []diagRow `json:"rows"`
}

func (e *Engine) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if !e.cfg.Diagnose {
		http.Error(w, "serve: diagnosis is off (start with diagnosis enabled)", http.StatusNotFound)
		return
	}
	e.mu.RLock()
	cum, virtualMS := e.cum, e.virtualMS
	e.mu.RUnlock()
	if cum == nil {
		http.Error(w, "serve: no completed windows yet", http.StatusServiceUnavailable)
		return
	}
	d := analysis.StreamDiagnosis(cum)
	rep := diagReport{
		VirtualMS:     virtualMS,
		Sessions:      d.Sessions,
		Labelled:      d.Labelled,
		DegradedShare: d.DegradedShare(),
	}
	for _, row := range d.Rows {
		rep.Rows = append(rep.Rows, diagRow{
			Label:       string(row.Label),
			Sessions:    row.Sessions,
			Share:       row.Share,
			StartupP50:  nanToZero(row.Startup.Quantile(0.5)),
			RebufferP90: nanToZero(row.RebufferRate.Quantile(0.9)),
		})
	}
	writeJSON(w, rep)
}

// statusReport is the /status JSON body.
type statusReport struct {
	WindowsDone       int     `json:"windows_done"`
	VirtualMS         float64 `json:"virtual_ms"`
	WindowMS          float64 `json:"window_ms"`
	SessionsPerWindow int     `json:"sessions_per_window"`
	Ring              int     `json:"ring"`
	RingHeld          int     `json:"ring_held"`
	Pace              float64 `json:"pace"`
	Diagnose          bool    `json:"diagnose"`
	Seed              uint64  `json:"seed"`
	SessionsTotal     uint64  `json:"sessions_total"`
	ChunksTotal       uint64  `json:"chunks_total"`
	LiveSessions      uint64  `json:"live_window_sessions"`
	LiveChunks        uint64  `json:"live_window_chunks"`
	ShardQueueDepth   int64   `json:"shard_queue_depth"`
	RecordsPerSec     float64 `json:"records_per_sec"`
	UptimeSec         float64 `json:"uptime_sec"`
}

func (e *Engine) status() statusReport {
	e.mu.RLock()
	st := statusReport{
		WindowsDone:       e.done,
		VirtualMS:         e.virtualMS,
		WindowMS:          e.cfg.WindowMS,
		SessionsPerWindow: e.cfg.SessionsPerWindow,
		Ring:              e.cfg.Ring,
		RingHeld:          len(e.ring),
		Pace:              e.cfg.Pace,
		Diagnose:          e.cfg.Diagnose,
		Seed:              e.cfg.Scenario.Seed,
		RecordsPerSec:     e.lastRate,
	}
	if e.cum != nil {
		st.SessionsTotal = e.cum.Counter(telemetry.CounterSessions)
		st.ChunksTotal = e.cum.Counter(telemetry.CounterChunks)
	}
	if !e.startWall.IsZero() {
		st.UptimeSec = time.Since(e.startWall).Seconds()
	}
	e.mu.RUnlock()
	st.LiveSessions = e.live.Sessions.Load()
	st.LiveChunks = e.live.Chunks.Load()
	st.ShardQueueDepth = e.live.QueueDepth()
	return st
}

func (e *Engine) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, e.status())
}

func (e *Engine) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	e.writeMetrics(&buf)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

// handleCheckpoint requests a synchronous checkpoint from the engine
// goroutine and waits (bounded by the request context) for it to land at
// the next window boundary.
func (e *Engine) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if e.cfg.CheckpointPath == "" {
		http.Error(w, "serve: no checkpoint path configured (start with a checkpoint path)", http.StatusConflict)
		return
	}
	reply := make(chan ckptReply, 1)
	select {
	case e.ckptReq <- reply:
	default:
		http.Error(w, "serve: checkpoint queue full", http.StatusServiceUnavailable)
		return
	}
	select {
	case rep := <-reply:
		if rep.err != nil {
			http.Error(w, rep.err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rep)
	case <-r.Context().Done():
		http.Error(w, "serve: checkpoint request cancelled", http.StatusServiceUnavailable)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
