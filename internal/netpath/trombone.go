package netpath

import "vidperf/internal/tcpmodel"

// Trombone is the path effect of funneling a session through a shared
// proxy/NAT egress (internal/proxypop): the detour adds a fixed RTT
// penalty, multiplies jitter (two extra queues on the path), optionally
// caps throughput at the cohort's per-session share of the egress
// uplink, and overlays a shared-egress queueing process on the prefix's
// congestion profile. The zero value is a no-op on both Params and
// Profile, matching the disabled==absent convention.
type Trombone struct {
	// ExtraRTTMS is the detour's round-trip penalty, added to the path
	// floor the way EnterpriseProfile's backhaul term is.
	ExtraRTTMS float64
	// JitterFactor multiplies the prefix's per-round jitter (<= 0 or 1
	// leaves it unchanged).
	JitterFactor float64
	// EgressKbps, when > 0, caps the session's bottleneck at its share
	// of the cohort's egress uplink.
	EgressKbps float64

	// Shared-egress queueing: concurrent cohort members contend for one
	// proxy uplink, so on/off episodes are both more frequent and larger
	// than a clean residential path's. Each knob only ever worsens the
	// base profile (see CongestionProfile).
	QueueOnProb      float64
	QueueOffProb     float64
	QueueDelayMeanMS float64
}

// Apply overlays the trombone on one session's drawn path parameters.
// Pure arithmetic, no RNG draws — it runs inside PlanSession after the
// path draw, like timeline phase effects.
func (t Trombone) Apply(p tcpmodel.Params) tcpmodel.Params {
	p.BaseRTTms += t.ExtraRTTMS
	if t.JitterFactor > 0 {
		p.JitterMS *= t.JitterFactor
	}
	if t.EgressKbps > 0 && p.BottleneckKbps > t.EgressKbps {
		p.BottleneckKbps = t.EgressKbps
	}
	// Keep the floor SessionParams enforces.
	if p.BottleneckKbps < 300 {
		p.BottleneckKbps = 300
	}
	return p
}

// CongestionProfile overlays the shared-egress queueing process on the
// prefix's congestion knobs, never improving any of them: episodes get
// at least as frequent (on-prob up), at least as sticky (off-prob
// down), and at least as large (delay up). Org is preserved, so the
// per-session busy-hour scale draws in NewCongestion are unchanged —
// which keeps the plan/session draw streams aligned with the
// non-proxied world.
func (t Trombone) CongestionProfile(p Profile) Profile {
	if t.QueueOnProb > p.CongOnProb {
		p.CongOnProb = t.QueueOnProb
	}
	if t.QueueOffProb > 0 && t.QueueOffProb < p.CongOffProb {
		p.CongOffProb = t.QueueOffProb
	}
	if t.QueueDelayMeanMS > p.CongDelayMeanMS {
		p.CongDelayMeanMS = t.QueueDelayMeanMS
	}
	p.Proxy = true
	return p
}
