// Package netpath models the long-lived network characteristics of client
// /24 prefixes: the organization type behind them (residential ISP,
// enterprise, small business), baseline latency built from geographic
// propagation plus access- and backhaul components, jitter, access-link
// bandwidth, random loss, and a Markov on/off cross-traffic congestion
// process. These are the knobs behind the paper's §4.2 findings:
// enterprises dominate the high-CV(SRTT) list (Table 4) and the close-by
// tail-latency prefixes (Fig. 9), while residential ISPs sit near 1%
// high-CV sessions.
package netpath

import (
	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
)

// OrgType classifies the organization that owns a client prefix.
type OrgType int

// Organization types, in decreasing share of the session mix.
const (
	Residential OrgType = iota
	Enterprise
	SmallBusiness
)

// String implements fmt.Stringer.
func (o OrgType) String() string {
	switch o {
	case Residential:
		return "residential"
	case Enterprise:
		return "enterprise"
	case SmallBusiness:
		return "small-business"
	}
	return "unknown"
}

// Profile is the persistent path character of one /24 prefix. All sessions
// from the prefix sample their connection parameters from it, which is what
// makes the paper's prefix-level problems *persistent*.
type Profile struct {
	Org     OrgType
	OrgName string // e.g. "Enterprise#17", "ResidentialISP#2"

	// BaseRTTms is the prefix's floor round trip to its PoP: propagation
	// (distance-derived) + access + (enterprises) proxy/VPN backhaul.
	BaseRTTms float64
	// JitterMS is the per-round RTT noise level.
	JitterMS float64
	// AccessKbps is the prefix's typical access-link rate.
	AccessKbps float64
	// LossProb is the per-segment random (non-congestive) loss rate.
	LossProb float64

	// Congestion episodes: a per-chunk Markov on/off process that adds
	// CongDelayMeanMS (exponential) to the path RTT while on. Enterprises
	// have busy uplinks -> high on-probability and magnitude.
	CongOnProb      float64 // P(off -> on) evaluated per chunk
	CongOffProb     float64 // P(on -> off) evaluated per chunk
	CongDelayMeanMS float64

	// Proxy marks prefixes behind an enterprise/ISP HTTP proxy; their
	// sessions are the ones the paper's §3 preprocessing filters out.
	Proxy bool
}

// ResidentialProfile builds a typical home-broadband prefix at the given
// propagation RTT. The 2015-era access mix is mostly cable/fiber with a
// DSL tail.
func ResidentialProfile(propRTTms float64, r *stats.Rand) Profile {
	p := Profile{
		Org:       Residential,
		BaseRTTms: propRTTms + r.Uniform(4, 14), // last-mile + home equipment
		JitterMS:  r.Uniform(0.5, 3),
		// Loss is bimodal across prefixes: most lines are clean, a
		// minority (interference-prone wifi, bad copper) lose 0.1–1% of
		// segments persistently. This yields the paper's ~40% loss-free
		// sessions with a spread reaching several percent.
		LossProb: lossyPrefixProb(r, 0.55, 0.0025),
		// Rare evening-congestion episodes, modest magnitude.
		CongOnProb:      0.004,
		CongOffProb:     0.5,
		CongDelayMeanMS: 40,
	}
	switch r.Choice([]float64{0.25, 0.55, 0.20}) {
	case 0: // fiber
		p.AccessKbps = r.Uniform(50000, 300000)
	case 1: // cable
		p.AccessKbps = r.Uniform(10000, 100000)
	default: // DSL
		p.AccessKbps = r.Uniform(1500, 12000)
	}
	return p
}

// EnterpriseProfile builds a corporate prefix: close to the PoP
// geographically but behind proxies, VPN concentrators and busy uplinks —
// the paper's explanation for close-by prefixes with bad, highly variable
// latency.
func EnterpriseProfile(propRTTms float64, r *stats.Rand) Profile {
	return Profile{
		Org: Enterprise,
		// Backhaul/VPN detour dominates the geographic term: traffic
		// trombones through a proxy or VPN concentrator, which is why the
		// paper finds geographically close prefixes with >100 ms floors.
		BaseRTTms: propRTTms + r.Uniform(25, 200),
		JitterMS:  r.Uniform(3, 18),
		// Shared office uplink, often shaped.
		AccessKbps: r.Uniform(2000, 40000),
		LossProb:   lossyPrefixProb(r, 0.40, 0.004),
		// Busy-hour congestion on the shared uplink: episodes short enough
		// that a session mixes both states, and large (many times the base
		// RTT — saturated office uplinks queue for seconds) so the mixture
		// pushes CV(SRTT) past 1 for busy-hour sessions.
		CongOnProb:      0.22,
		CongOffProb:     0.60,
		CongDelayMeanMS: 1000,
		Proxy:           r.Bool(0.55),
	}
}

// SmallBusinessProfile sits between the two.
func SmallBusinessProfile(propRTTms float64, r *stats.Rand) Profile {
	return Profile{
		Org:             SmallBusiness,
		BaseRTTms:       propRTTms + r.Uniform(6, 30),
		JitterMS:        r.Uniform(1, 8),
		AccessKbps:      r.Uniform(5000, 60000),
		LossProb:        lossyPrefixProb(r, 0.50, 0.003),
		CongOnProb:      0.06,
		CongOffProb:     0.50,
		CongDelayMeanMS: 250,
		Proxy:           r.Bool(0.15),
	}
}

// lossyPrefixProb draws a prefix's random-loss rate: cleanFrac of prefixes
// are lossless, the rest exponential with the given mean.
func lossyPrefixProb(r *stats.Rand, cleanFrac, mean float64) float64 {
	if r.Bool(cleanFrac) {
		return 0
	}
	return r.Exp(mean)
}

// SessionParams derives one session's TCP path parameters from the prefix
// profile: small per-session variation around the persistent baseline,
// plus the client-side draws (modem buffer, receive window) that make
// sessions from the same prefix behave differently.
func (p Profile) SessionParams(r *stats.Rand) tcpmodel.Params {
	// The lognormal multiplier stands in for diurnal variation: the
	// paper's 18-day trace samples each prefix at all hours, so sessions
	// from one prefix see meaningfully different baselines.
	base := p.BaseRTTms * r.LogNormal(0, 0.35)
	bw := p.AccessKbps * r.Uniform(0.75, 1.05)
	if bw < 300 {
		bw = 300
	}
	// Droptail buffer: a fixed device buffer, NOT scaled to the path's
	// BDP — which is precisely why slow links bufferbloat (hundreds of
	// ms of standing queue) while fast ones barely queue.
	var buf int64
	if p.Org == Enterprise {
		buf = int64(r.Uniform(32<<10, 256<<10)) // shaper queues are shallow
	} else {
		buf = int64(r.Uniform(48<<10, 512<<10)) // home modem/AP buffers
	}
	if buf < 32*1460 {
		buf = 32 * 1460
	}
	// Advertised receive window: Flash-era clients frequently pinned it
	// below path capacity, keeping the session loss-free but
	// throughput-limited.
	rcvChoices := []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20, 4 << 20}
	rcv := rcvChoices[r.Choice([]float64{15, 25, 25, 20, 15})]
	return tcpmodel.Params{
		BaseRTTms:      base,
		JitterMS:       p.JitterMS * r.Uniform(0.8, 1.3),
		BottleneckKbps: bw,
		BufferBytes:    buf,
		RandomLossProb: p.LossProb,
		RcvWindowBytes: rcv,
	}
}

// Congestion is the per-session instantiation of the prefix's on/off
// cross-traffic process. Call Step before each chunk and feed the returned
// extra delay to tcpmodel.Conn.SetExtraDelayMS.
type Congestion struct {
	prof  Profile
	scale float64 // per-session busy-hour factor
	on    bool
	mag   float64
}

// NewCongestion starts a session's congestion process in the off state.
// The per-session scale models time of day: an enterprise uplink at 3 am
// is quiet, at 11 am it is saturated — which is what makes ~40% of
// enterprise sessions cross CV(SRTT) > 1 (Table 4) while others stay
// clean.
func (p Profile) NewCongestion(r *stats.Rand) *Congestion {
	scale := 1.0
	switch p.Org {
	case Enterprise:
		if r.Bool(0.40) {
			scale = r.Uniform(0, 0.25) // off-hours session
		} else {
			scale = r.LogNormal(0.3, 0.9) // busy-hour, heavy-tailed
		}
	case SmallBusiness:
		if r.Bool(0.55) {
			scale = r.Uniform(0, 0.3)
		} else {
			scale = r.LogNormal(0, 0.7)
		}
	}
	return &Congestion{prof: p, scale: scale}
}

// Step advances the Markov chain one chunk and returns the extra path
// delay (ms) in effect for that chunk.
func (c *Congestion) Step(r *stats.Rand) float64 {
	if c.on {
		if r.Bool(c.prof.CongOffProb) {
			c.on = false
			c.mag = 0
		}
	} else {
		if r.Bool(c.prof.CongOnProb) {
			c.on = true
			c.mag = r.Exp(c.prof.CongDelayMeanMS * c.scale)
		}
	}
	if !c.on {
		return 0
	}
	// Magnitude wobbles while the episode lasts.
	return c.mag * r.Uniform(0.4, 1.8)
}

// LossBoost converts an episode's extra delay into the elevated drop rate
// of the congested queue causing it (capped at 8%). Sessions feed it to
// the connection alongside SetExtraDelayMS, coupling latency spikes with
// loss the way a saturated uplink does.
func LossBoost(extraDelayMS float64) float64 {
	boost := extraDelayMS * 6e-5
	if boost > 0.08 {
		boost = 0.08
	}
	return boost
}

// On reports whether an episode is currently active.
func (c *Congestion) On() bool { return c.on }
