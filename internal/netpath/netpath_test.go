package netpath

import (
	"testing"

	"vidperf/internal/stats"
)

func TestOrgTypeString(t *testing.T) {
	if Residential.String() != "residential" ||
		Enterprise.String() != "enterprise" ||
		SmallBusiness.String() != "small-business" {
		t.Error("OrgType strings wrong")
	}
	if OrgType(9).String() != "unknown" {
		t.Error("unknown OrgType string wrong")
	}
}

func TestResidentialProfileRanges(t *testing.T) {
	r := stats.NewRand(1)
	for i := 0; i < 500; i++ {
		p := ResidentialProfile(10, r)
		if p.Org != Residential {
			t.Fatal("wrong org")
		}
		if p.BaseRTTms < 10 || p.BaseRTTms > 30 {
			t.Fatalf("base RTT %v outside propagation+last-mile range", p.BaseRTTms)
		}
		if p.AccessKbps < 1500 {
			t.Fatalf("access %v below DSL floor", p.AccessKbps)
		}
		if p.JitterMS > 3 {
			t.Fatalf("residential jitter %v too high", p.JitterMS)
		}
	}
}

func TestEnterpriseWorseThanResidential(t *testing.T) {
	r := stats.NewRand(2)
	var resRTT, entRTT, resJit, entJit stats.Summary
	proxies := 0
	for i := 0; i < 2000; i++ {
		res := ResidentialProfile(10, r)
		ent := EnterpriseProfile(10, r)
		resRTT.Add(res.BaseRTTms)
		entRTT.Add(ent.BaseRTTms)
		resJit.Add(res.JitterMS)
		entJit.Add(ent.JitterMS)
		if ent.Proxy {
			proxies++
		}
	}
	if entRTT.Mean() <= resRTT.Mean() {
		t.Errorf("enterprise base RTT %v not above residential %v", entRTT.Mean(), resRTT.Mean())
	}
	if entJit.Mean() <= resJit.Mean() {
		t.Errorf("enterprise jitter %v not above residential %v", entJit.Mean(), resJit.Mean())
	}
	// ~55% of enterprise prefixes sit behind proxies.
	frac := float64(proxies) / 2000
	if frac < 0.45 || frac > 0.65 {
		t.Errorf("enterprise proxy fraction = %v", frac)
	}
}

func TestSessionParamsDerivation(t *testing.T) {
	r := stats.NewRand(3)
	p := ResidentialProfile(20, r)
	for i := 0; i < 200; i++ {
		sp := p.SessionParams(r)
		// Lognormal(0, 0.35) diurnal multiplier: within ~3.5σ of 1.
		if sp.BaseRTTms < p.BaseRTTms*0.25 || sp.BaseRTTms > p.BaseRTTms*3.5 {
			t.Fatalf("session RTT %v strays from profile %v", sp.BaseRTTms, p.BaseRTTms)
		}
		if sp.BottleneckKbps < 300 {
			t.Fatalf("bottleneck %v below floor", sp.BottleneckKbps)
		}
		if sp.BufferBytes < 32*1460 {
			t.Fatalf("buffer %v below floor", sp.BufferBytes)
		}
	}
}

func TestCongestionMarkov(t *testing.T) {
	r := stats.NewRand(4)
	prof := EnterpriseProfile(10, r)
	c := prof.NewCongestion(r)
	onChunks, total := 0, 20000
	for i := 0; i < total; i++ {
		d := c.Step(r)
		if c.On() {
			onChunks++
			if d <= 0 {
				t.Fatal("on episode with zero delay")
			}
		} else if d != 0 {
			t.Fatal("off state returned delay")
		}
	}
	// Stationary on-fraction ≈ pOn/(pOn+pOff) = 0.22/0.52 ≈ 0.42.
	frac := float64(onChunks) / float64(total)
	if frac < 0.25 || frac > 0.60 {
		t.Errorf("on fraction = %v, want ~0.42", frac)
	}
}

func TestResidentialCongestionRare(t *testing.T) {
	r := stats.NewRand(5)
	prof := ResidentialProfile(10, r)
	c := prof.NewCongestion(r)
	onChunks := 0
	for i := 0; i < 20000; i++ {
		c.Step(r)
		if c.On() {
			onChunks++
		}
	}
	frac := float64(onChunks) / 20000
	if frac > 0.03 {
		t.Errorf("residential on fraction = %v, want <3%%", frac)
	}
}

func TestEnterpriseBusyHourVariation(t *testing.T) {
	// Sessions from the same enterprise prefix must differ widely in
	// congestion level (busy-hour vs off-hours), which is what drives
	// Table 4's per-session CV(SRTT) split.
	r := stats.NewRand(6)
	prof := EnterpriseProfile(10, r)
	var sessionMeans []float64
	for s := 0; s < 300; s++ {
		c := prof.NewCongestion(r)
		var sum float64
		for i := 0; i < 30; i++ {
			sum += c.Step(r)
		}
		sessionMeans = append(sessionMeans, sum/30)
	}
	quiet, busy := 0, 0
	for _, m := range sessionMeans {
		if m < 60 {
			quiet++
		}
		if m > 300 {
			busy++
		}
	}
	if quiet < 30 || busy < 30 {
		t.Errorf("busy-hour split missing: quiet=%d busy=%d of 300", quiet, busy)
	}
}
