package netpath

import (
	"math"
	"testing"

	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
)

// TestTromboneApply pins the path-parameter overlay: the zero trombone
// is a no-op, the detour adds RTT and multiplies jitter, the egress cap
// only ever lowers the bottleneck, and the 300 kbit/s floor holds.
func TestTromboneApply(t *testing.T) {
	base := tcpmodel.Params{BaseRTTms: 40, JitterMS: 5, BottleneckKbps: 8000}
	if got := (Trombone{}).Apply(base); got != base {
		t.Fatalf("zero trombone changed params: %+v", got)
	}
	tr := Trombone{ExtraRTTMS: 120, JitterFactor: 3, EgressKbps: 2000}
	got := tr.Apply(base)
	if got.BaseRTTms != 160 {
		t.Errorf("BaseRTTms = %g, want 160", got.BaseRTTms)
	}
	if got.JitterMS != 15 {
		t.Errorf("JitterMS = %g, want 15", got.JitterMS)
	}
	if got.BottleneckKbps != 2000 {
		t.Errorf("BottleneckKbps = %g, want the 2000 egress cap", got.BottleneckKbps)
	}
	// A session already below the cap keeps its own bottleneck.
	slow := base
	slow.BottleneckKbps = 1200
	if got := tr.Apply(slow); got.BottleneckKbps != 1200 {
		t.Errorf("cap raised a slow session to %g", got.BottleneckKbps)
	}
	// The floor holds even against an absurdly starved egress share.
	if got := (Trombone{EgressKbps: 50}).Apply(base); got.BottleneckKbps != 300 {
		t.Errorf("floor breached: %g", got.BottleneckKbps)
	}
}

// TestTromboneCongestionProfile: the shared-egress queueing overlay
// never improves any congestion knob — episodes only get more frequent,
// stickier, and larger — and it marks the profile proxied.
func TestTromboneCongestionProfile(t *testing.T) {
	base := Profile{CongOnProb: 0.02, CongOffProb: 0.4, CongDelayMeanMS: 80}
	tr := Trombone{QueueOnProb: 0.05, QueueOffProb: 0.2, QueueDelayMeanMS: 200}
	got := tr.CongestionProfile(base)
	if got.CongOnProb != 0.05 || got.CongOffProb != 0.2 || got.CongDelayMeanMS != 200 {
		t.Fatalf("overlay did not worsen the profile: %+v", got)
	}
	if !got.Proxy {
		t.Fatal("overlay did not mark the profile proxied")
	}
	// A trombone milder than the prefix's own congestion changes nothing:
	// max/min semantics, never an improvement.
	mild := Trombone{QueueOnProb: 0.001, QueueOffProb: 0.9, QueueDelayMeanMS: 10}
	got = mild.CongestionProfile(base)
	if got.CongOnProb != base.CongOnProb || got.CongOffProb != base.CongOffProb ||
		got.CongDelayMeanMS != base.CongDelayMeanMS {
		t.Fatalf("mild trombone improved the profile: %+v", got)
	}
}

// TestSmallBusinessProfile sanity-checks the small-business prefix
// builder: plausible knobs above the propagation floor.
func TestSmallBusinessProfile(t *testing.T) {
	p := SmallBusinessProfile(30, stats.NewRand(7))
	if p.Org != SmallBusiness {
		t.Errorf("Org = %v", p.Org)
	}
	if p.BaseRTTms <= 30 {
		t.Errorf("BaseRTTms = %g, want > propagation floor", p.BaseRTTms)
	}
	if p.AccessKbps <= 0 || p.CongOnProb <= 0 || p.CongOffProb <= 0 {
		t.Errorf("degenerate profile: %+v", p)
	}
}

// TestLossBoost: congestion delay maps to a proportional drop rate,
// capped at 8%.
func TestLossBoost(t *testing.T) {
	if got := LossBoost(0); got != 0 {
		t.Errorf("LossBoost(0) = %g", got)
	}
	if got := LossBoost(500); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("LossBoost(500) = %g, want 0.03", got)
	}
	if got := LossBoost(1e6); got != 0.08 {
		t.Errorf("LossBoost(1e6) = %g, want the 0.08 cap", got)
	}
}
