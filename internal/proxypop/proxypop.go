// Package proxypop models proxied-enterprise populations: the ~23% of
// sessions the paper's §3 preprocessing removes because they reach the
// CDN through a shared HTTP proxy or NAT/VPN egress. Instead of
// discarding them, a proxy block assigns a configurable share of
// sessions to shared-egress cohorts. Each cohort owns one egress
// identity (the IP every member presents to the CDN) and a tromboned
// path (netpath.Trombone): the detour through the concentrator adds
// RTT, inflates jitter, overlays shared-egress queueing — the §4.2
// mechanism behind enterprises dominating the high-CV(SRTT) tail
// (Table 4, Fig. 9) — and optionally divides the egress uplink among
// concurrent members.
//
// Everything here is pure arithmetic: cohort membership consumes
// exactly one unit draw per session (Assign), cohort tables hash from
// the scenario seed with no RNG (BuildCohorts), and the zero-valued
// Config is byte-identical to the block never existing, so the
// byte-identity invariant at any parallelism is preserved.
package proxypop

import (
	"fmt"
	"math"

	"vidperf/internal/netpath"
)

// Defaults for the zero-valued knobs of an enabled Config.
const (
	// DefaultCohorts is the number of shared-egress identities the
	// proxied share splits into.
	DefaultCohorts = 12
	// DefaultExtraRTTMinMS / DefaultExtraRTTMaxMS bound the per-cohort
	// trombone penalty, mirroring the enterprise backhaul detour term
	// (netpath.EnterpriseProfile draws Uniform(25, 200)).
	DefaultExtraRTTMinMS = 25
	DefaultExtraRTTMaxMS = 200
	// DefaultJitterFactor multiplies prefix jitter for tromboned paths:
	// two extra queues (client→proxy, proxy→CDN) on every round trip.
	DefaultJitterFactor = 3
	// DefaultBeaconMismatchProb is the share of proxied sessions whose
	// player beacon still reports the true client address (§3 rule i
	// evidence); the rest are only catchable by the shared-IP volume
	// rule (ii).
	DefaultBeaconMismatchProb = 0.7
)

// Bounds enforced by Validate.
const (
	MaxCohorts = 4096
	// MinEgressKbps floors the per-session share of a contended egress
	// uplink — the same floor netpath.SessionParams enforces.
	MinEgressKbps = 300
)

// Shared-egress queueing overlay constants (see netpath.Trombone): the
// proxy uplink mixes many flows, so queue episodes are frequent, sticky
// enough that a session samples both states, and sized in proportion to
// the detour (a farther concentrator fronts a bigger office).
const (
	queueOnProb      = 0.18
	queueOffProb     = 0.55
	queueDelayPerRTT = 4
	queueDelayMinMS  = 300
)

// Config is the proxy block of a workload scenario. The zero value
// (Share == 0) disables proxied populations entirely; an enabled config
// uses the neutral-zero convention for the remaining knobs (0 selects
// the default, like every other scenario field).
type Config struct {
	// Share is the fraction of sessions behind a shared egress. 0
	// disables the block; the paper's trace measured ≈0.23.
	Share float64
	// Cohorts is how many egress identities the proxied share splits
	// into; 0 selects DefaultCohorts.
	Cohorts int
	// ExtraRTTMinMS / ExtraRTTMaxMS bound the per-cohort trombone RTT
	// penalty; 0 selects the defaults.
	ExtraRTTMinMS float64
	ExtraRTTMaxMS float64
	// JitterFactor multiplies prefix jitter on tromboned paths; 0
	// selects DefaultJitterFactor.
	JitterFactor float64
	// EgressKbps is each cohort's shared uplink capacity, divided among
	// the expected concurrent members (0 = uncontended egress).
	EgressKbps float64
	// BeaconMismatchProb is the share of proxied sessions whose beacon
	// IP disagrees with the CDN-seen egress IP; 0 selects
	// DefaultBeaconMismatchProb.
	BeaconMismatchProb float64
}

// Enabled reports whether the scenario models proxied populations.
func (c Config) Enabled() bool { return c.Share > 0 }

// WithDefaults fills the zero-valued knobs of an enabled config. A
// disabled config is returned unchanged, so a scenario without a proxy
// block stays byte-for-byte the zero value.
func (c Config) WithDefaults() Config {
	if !c.Enabled() {
		return c
	}
	if c.Cohorts == 0 {
		c.Cohorts = DefaultCohorts
	}
	if c.ExtraRTTMinMS == 0 {
		c.ExtraRTTMinMS = DefaultExtraRTTMinMS
	}
	if c.ExtraRTTMaxMS == 0 {
		c.ExtraRTTMaxMS = DefaultExtraRTTMaxMS
	}
	if c.JitterFactor == 0 {
		c.JitterFactor = DefaultJitterFactor
	}
	if c.BeaconMismatchProb == 0 {
		c.BeaconMismatchProb = DefaultBeaconMismatchProb
	}
	return c
}

// Validate checks the config's bounds. A disabled config (Share == 0)
// is always valid apart from a negative share; Validate accepts both
// raw and defaulted configs (0 means "default" everywhere).
func (c Config) Validate() error {
	if c.Share < 0 || c.Share > 1 {
		return fmt.Errorf("proxy: share must be in [0, 1], got %g", c.Share)
	}
	if !c.Enabled() {
		return nil
	}
	if c.Cohorts < 0 || c.Cohorts > MaxCohorts {
		return fmt.Errorf("proxy: cohorts must be in [0, %d], got %d", MaxCohorts, c.Cohorts)
	}
	if c.ExtraRTTMinMS < 0 || c.ExtraRTTMaxMS < 0 {
		return fmt.Errorf("proxy: extra RTT bounds must be >= 0, got [%g, %g]",
			c.ExtraRTTMinMS, c.ExtraRTTMaxMS)
	}
	if c.ExtraRTTMinMS != 0 && c.ExtraRTTMaxMS != 0 && c.ExtraRTTMinMS > c.ExtraRTTMaxMS {
		return fmt.Errorf("proxy: extra RTT min %g exceeds max %g",
			c.ExtraRTTMinMS, c.ExtraRTTMaxMS)
	}
	if c.JitterFactor != 0 && c.JitterFactor < 1 {
		return fmt.Errorf("proxy: jitter factor must be >= 1, got %g", c.JitterFactor)
	}
	if c.EgressKbps < 0 {
		return fmt.Errorf("proxy: egress kbps must be >= 0, got %g", c.EgressKbps)
	}
	if c.BeaconMismatchProb < 0 || c.BeaconMismatchProb > 1 {
		return fmt.Errorf("proxy: beacon mismatch prob must be in [0, 1], got %g",
			c.BeaconMismatchProb)
	}
	return nil
}

// Assignment is one session's proxy placement, derived from a single
// unit draw.
type Assignment struct {
	// Proxied marks the session as behind a shared egress.
	Proxied bool
	// Cohort is the 1-based shared-egress cohort (0 when not proxied);
	// 0 stays "no cohort" everywhere downstream.
	Cohort int
	// Mismatch reports whether the player beacon carries the true
	// client address while the CDN sees the egress (§3 rule i). When
	// false the beacon itself egresses through the proxy, so both
	// addresses agree and only the volume rule can catch the session.
	Mismatch bool
}

// Assign converts one unit draw u ∈ [0, 1) into the session's proxy
// placement. The share is clamped to [0, 1] defensively (Validate
// rejects out-of-range specs at the boundary); cohort membership and
// the beacon-mismatch decision both reuse sub-intervals of the same
// draw, so an enabled block costs exactly one extra draw per session.
func (c Config) Assign(u float64) Assignment {
	share := c.Share
	if share > 1 {
		share = 1
	}
	if share <= 0 || u < 0 || u >= share {
		return Assignment{}
	}
	n := c.Cohorts
	if n < 1 {
		n = 1
	}
	scaled := u / share * float64(n)
	cohort := int(scaled) + 1
	if cohort < 1 {
		cohort = 1
	}
	if cohort > n {
		cohort = n
	}
	frac := scaled - math.Floor(scaled)
	return Assignment{
		Proxied:  true,
		Cohort:   cohort,
		Mismatch: frac < c.BeaconMismatchProb,
	}
}

// Cohort is one shared-egress identity: the IP all member sessions
// present to the CDN and the tromboned path every member traverses.
type Cohort struct {
	// ID is the 1-based cohort number (Assignment.Cohort).
	ID int
	// EgressIP is the cohort's single CDN-visible address.
	EgressIP string
	// Trombone is the member path effect, including the per-session
	// share of a contended egress uplink.
	Trombone netpath.Trombone
}

// BuildCohorts materializes the cohort table for a campaign seed. The
// per-cohort trombone penalty hashes from (seed, cohort ID) with a
// splitmix finalizer — no RNG draws — so building the table leaves the
// population's draw streams untouched. perSessionKbps is the contended
// per-member egress share (see PerSessionEgressKbps; 0 = uncontended).
// Call on a defaulted, validated config.
func (c Config) BuildCohorts(seed uint64, perSessionKbps float64) []Cohort {
	if !c.Enabled() {
		return nil
	}
	n := c.Cohorts
	if n < 1 {
		n = 1
	}
	out := make([]Cohort, n)
	for i := range out {
		id := i + 1
		u := unitFloat(splitmix64(seed ^ uint64(id)*0x9e3779b97f4a7c15 ^ cohortSalt))
		extra := c.ExtraRTTMinMS + u*(c.ExtraRTTMaxMS-c.ExtraRTTMinMS)
		if extra < 0 {
			extra = 0
		}
		qDelay := queueDelayPerRTT * extra
		if qDelay < queueDelayMinMS {
			qDelay = queueDelayMinMS
		}
		out[i] = Cohort{
			ID:       id,
			EgressIP: fmt.Sprintf("egress-%04d", id),
			Trombone: netpath.Trombone{
				ExtraRTTMS:       extra,
				JitterFactor:     c.JitterFactor,
				EgressKbps:       perSessionKbps,
				QueueOnProb:      queueOnProb,
				QueueOffProb:     queueOffProb,
				QueueDelayMeanMS: qDelay,
			},
		}
	}
	return out
}

// cohortSalt separates the cohort hash stream from every seed-derived
// RNG stream in the simulator.
const cohortSalt = 0x70726f787970 // "proxyp"

// ExpectedConcurrent estimates how many cohort members stream at once —
// the mean-field occupancy (members × mean session seconds / window
// seconds), floored at one so an uncontended-looking cohort still
// divides by something. A closed form keeps contention deterministic
// and shard-free: no cross-shard session counting, so the byte-identity
// invariant survives any parallelism.
func (c Config) ExpectedConcurrent(sessions int, meanWatchedChunks, chunkSec, windowMS float64) float64 {
	n := c.Cohorts
	if n < 1 {
		n = 1
	}
	share := c.Share
	if share > 1 {
		share = 1
	}
	members := share * float64(sessions) / float64(n)
	if windowMS <= 0 || meanWatchedChunks <= 0 || chunkSec <= 0 {
		return 1
	}
	conc := members * meanWatchedChunks * chunkSec * 1000 / windowMS
	if conc < 1 {
		return 1
	}
	return conc
}

// PerSessionEgressKbps divides the cohort uplink among the expected
// concurrent members, floored at MinEgressKbps. 0 in, 0 out: an
// unconfigured egress stays uncontended.
func (c Config) PerSessionEgressKbps(concurrent float64) float64 {
	if c.EgressKbps <= 0 {
		return 0
	}
	if concurrent < 1 {
		concurrent = 1
	}
	kbps := c.EgressKbps / concurrent
	if kbps < MinEgressKbps {
		kbps = MinEgressKbps
	}
	return kbps
}

// splitmix64 is the splitmix finalizer (same constants as
// experiment.DeriveSeed's mixer): a bijective avalanche that turns
// structured (seed, ID) keys into uncorrelated 64-bit values.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a hash to [0, 1) with 53-bit precision.
func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }
