package proxypop

import (
	"math"
	"testing"
	"testing/quick"
)

// TestConfigDefaults: zero fields pick up the calibrated defaults, a
// disabled config passes through WithDefaults untouched (the byte-
// identity invariant depends on it), and explicit values survive.
func TestConfigDefaults(t *testing.T) {
	var zero Config
	if zero.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if got := zero.WithDefaults(); got != zero {
		t.Fatalf("WithDefaults mutated the disabled config: %+v", got)
	}
	c := Config{Share: 0.23}.WithDefaults()
	if c.Cohorts != DefaultCohorts || c.ExtraRTTMinMS != DefaultExtraRTTMinMS ||
		c.ExtraRTTMaxMS != DefaultExtraRTTMaxMS || c.JitterFactor != DefaultJitterFactor ||
		c.BeaconMismatchProb != DefaultBeaconMismatchProb {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	custom := Config{Share: 0.5, Cohorts: 3, JitterFactor: 2}.WithDefaults()
	if custom.Cohorts != 3 || custom.JitterFactor != 2 {
		t.Fatalf("explicit value overwritten: %+v", custom)
	}
	if err := custom.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestValidateRejects pins the rejection cases: share outside [0, 1]
// (checked even when the block is disabled), inverted RTT bounds, a
// jitter factor below 1, and out-of-range knobs.
func TestValidateRejects(t *testing.T) {
	for name, c := range map[string]Config{
		"share>1":        {Share: 1.5},
		"share<0":        {Share: -0.1},
		"cohorts>max":    {Share: 0.2, Cohorts: MaxCohorts + 1},
		"cohorts<0":      {Share: 0.2, Cohorts: -1},
		"rtt-min<0":      {Share: 0.2, ExtraRTTMinMS: -1},
		"rtt-inverted":   {Share: 0.2, ExtraRTTMinMS: 200, ExtraRTTMaxMS: 25},
		"jitter<1":       {Share: 0.2, JitterFactor: 0.5},
		"egress<0":       {Share: 0.2, EgressKbps: -1},
		"mismatch>1":     {Share: 0.2, BeaconMismatchProb: 1.5},
		"disabled-share": {Share: -2},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, c)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("disabled zero config rejected: %v", err)
	}
}

// TestAssignShareClampedProperty: for any share (including garbage
// beyond 1) and any u in [0, 1), the assignment is total and in range —
// the effective share is clamped to [0, 1], the cohort is in
// [1, Cohorts], and a disabled share never assigns.
func TestAssignShareClampedProperty(t *testing.T) {
	prop := func(share, u float64, cohorts uint8) bool {
		u = math.Abs(math.Mod(u, 1))
		c := Config{Share: share, Cohorts: int(cohorts%64) + 1}.WithDefaults()
		a := c.Assign(u)
		if share <= 0 && a.Proxied {
			return false
		}
		if !a.Proxied {
			return a.Cohort == 0
		}
		// Proxied only when u fell inside the clamped share.
		eff := math.Min(share, 1)
		return u < eff && a.Cohort >= 1 && a.Cohort <= c.Cohorts
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestAssignRealizedShare: over a uniform grid of u, the realized
// proxied fraction matches the configured share to grid resolution.
func TestAssignRealizedShare(t *testing.T) {
	for _, share := range []float64{0.1, 0.23, 0.5, 1} {
		c := Config{Share: share}.WithDefaults()
		const n = 10000
		proxied := 0
		for i := 0; i < n; i++ {
			if c.Assign((float64(i) + 0.5) / n).Proxied {
				proxied++
			}
		}
		got := float64(proxied) / n
		if math.Abs(got-share) > 1e-3 {
			t.Errorf("share %g: realized %g", share, got)
		}
	}
}

// TestBuildCohortsRTTNeverNegativeProperty: for any seed and any legal
// RTT window, every cohort's trombone penalty lands inside
// [min, max] — never negative — and the cohort table is a pure
// function of (seed, config).
func TestBuildCohortsRTTNeverNegativeProperty(t *testing.T) {
	prop := func(seed uint64, lo, hi float64, cohorts uint8) bool {
		// Keep the bounds strictly positive: 0 means "use the default"
		// (the neutral-zero convention), which would change the window.
		lo = math.Abs(math.Mod(lo, 500)) + 1
		hi = lo + math.Abs(math.Mod(hi, 500))
		c := Config{
			Share: 0.2, Cohorts: int(cohorts%32) + 1,
			ExtraRTTMinMS: lo, ExtraRTTMaxMS: hi,
		}.WithDefaults()
		a := c.BuildCohorts(seed, 0)
		b := c.BuildCohorts(seed, 0)
		if len(a) != c.Cohorts {
			return false
		}
		for i := range a {
			tr := a[i].Trombone
			if tr.ExtraRTTMS < lo-1e-9 || tr.ExtraRTTMS > hi+1e-9 || tr.ExtraRTTMS < 0 {
				return false
			}
			if a[i] != b[i] {
				return false // not deterministic
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestCohortIdentityAndContention: cohort IDs and egress names are
// 1-based and stable; the mean-field contention divides the uplink by
// expected concurrency with the floor applied; zero uplink stays zero.
func TestCohortIdentityAndContention(t *testing.T) {
	c := Config{Share: 0.23, Cohorts: 12, EgressKbps: 25000}.WithDefaults()
	cohorts := c.BuildCohorts(61, c.PerSessionEgressKbps(c.ExpectedConcurrent(4000, 10, 6, 30*60e3)))
	if len(cohorts) != 12 {
		t.Fatalf("cohorts = %d", len(cohorts))
	}
	for i, co := range cohorts {
		if co.ID != i+1 {
			t.Errorf("cohort %d has ID %d", i, co.ID)
		}
		if want := "egress-" + []string{"0001", "0002", "0003", "0004", "0005", "0006",
			"0007", "0008", "0009", "0010", "0011", "0012"}[i]; co.EgressIP != want {
			t.Errorf("cohort %d egress %q, want %q", i+1, co.EgressIP, want)
		}
		if co.Trombone.EgressKbps < MinEgressKbps {
			t.Errorf("cohort %d egress bandwidth %g below floor", co.ID, co.Trombone.EgressKbps)
		}
	}
	if got := c.PerSessionEgressKbps(0); got != c.EgressKbps {
		t.Errorf("PerSessionEgressKbps clamps concurrency to 1, got %g", got)
	}
	if got := c.PerSessionEgressKbps(1e9); got != MinEgressKbps {
		t.Errorf("contended egress share %g, want the %d floor", got, MinEgressKbps)
	}
	if got := (Config{Share: 0.2}).WithDefaults().PerSessionEgressKbps(5); got != 0 {
		t.Errorf("uncontended config yields %g, want 0", got)
	}
	if conc := c.ExpectedConcurrent(4000, 10, 6, 30*60e3); conc < 1 {
		t.Errorf("ExpectedConcurrent = %g, want >= 1", conc)
	}
}

// TestUndefaultedEdgeCases drives the raw (un-defaulted) config paths:
// a missing cohort count acts as one cohort in Assign, BuildCohorts,
// and ExpectedConcurrent; a degenerate window or watch length yields
// the occupancy floor; an over-unity share clamps.
func TestUndefaultedEdgeCases(t *testing.T) {
	raw := Config{Share: 2} // no WithDefaults: Cohorts == 0
	if a := raw.Assign(0.99); !a.Proxied || a.Cohort != 1 {
		t.Errorf("cohortless assign = %+v, want cohort 1", a)
	}
	if got := len(raw.BuildCohorts(9, 0)); got != 1 {
		t.Errorf("cohortless BuildCohorts built %d cohorts, want 1", got)
	}
	if got := (Config{}).BuildCohorts(9, 0); got != nil {
		t.Errorf("disabled BuildCohorts built %d cohorts", len(got))
	}
	if got := raw.ExpectedConcurrent(1000, 10, 6, 0); got != 1 {
		t.Errorf("zero-window occupancy = %g, want the floor", got)
	}
	if got := raw.ExpectedConcurrent(2, 1, 1, 1e9); got != 1 {
		t.Errorf("sparse-cohort occupancy = %g, want the floor", got)
	}
}
