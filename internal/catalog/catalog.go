// Package catalog models the video-on-demand library: titles with a
// heavy-tailed duration distribution (paper Fig. 3a), Zipf-like popularity
// (Fig. 3b; top 10% of titles ≈ 66% of plays), six-second chunks, and an
// adaptive-bitrate ladder. Chunk identity (video, index, bitrate) is the
// cache key for the CDN substrate.
package catalog

import (
	"fmt"
	"math"

	"vidperf/internal/stats"
)

// Video is a single title.
type Video struct {
	ID          int
	Rank        int     // popularity rank; 0 is most popular
	DurationSec float64 // total length
	NumChunks   int     // ceil(duration / chunk duration)
}

// Config parameterizes catalog generation. Zero fields take defaults.
type Config struct {
	NumVideos     int     // default 6000
	ZipfExponent  float64 // default 0.9 (calibrated to top-10% ≈ 66% of plays)
	ChunkDuration float64 // seconds per chunk; default 6 (paper §3)
	// DurationMedian and DurationSigma parameterize the lognormal duration
	// distribution. Defaults: median 120 s, sigma 1.1, clamped to
	// [18 s, 2 h] to match Fig. 3a's support.
	DurationMedian float64
	DurationSigma  float64
	// Bitrates is the encoding ladder in kbps. Default is an 8-rung ladder
	// from 235 kbps to 3000 kbps.
	Bitrates []int
}

func (c Config) withDefaults() Config {
	if c.NumVideos == 0 {
		c.NumVideos = 6000
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 0.9
	}
	if c.ChunkDuration == 0 {
		c.ChunkDuration = 6
	}
	if c.DurationMedian == 0 {
		c.DurationMedian = 120
	}
	if c.DurationSigma == 0 {
		c.DurationSigma = 1.1
	}
	if len(c.Bitrates) == 0 {
		c.Bitrates = []int{235, 375, 560, 750, 1050, 1750, 2350, 3000}
	}
	return c
}

// Catalog is a generated video library plus its popularity model.
type Catalog struct {
	Videos        []Video
	Bitrates      []int   // kbps, ascending
	ChunkDuration float64 // seconds

	pop *stats.Zipf
}

// New generates a catalog from cfg using r for the duration samples.
func New(cfg Config, r *stats.Rand) *Catalog {
	cfg = cfg.withDefaults()
	c := &Catalog{
		Bitrates:      cfg.Bitrates,
		ChunkDuration: cfg.ChunkDuration,
		pop:           stats.NewZipf(cfg.NumVideos, cfg.ZipfExponent),
	}
	mu := math.Log(cfg.DurationMedian)
	c.Videos = make([]Video, cfg.NumVideos)
	for i := range c.Videos {
		d := r.LogNormal(mu, cfg.DurationSigma)
		if d < 3*cfg.ChunkDuration {
			d = 3 * cfg.ChunkDuration
		}
		if d > 7200 {
			d = 7200
		}
		c.Videos[i] = Video{
			ID:          i,
			Rank:        i, // rank order == index; popularity assigned by Zipf
			DurationSec: d,
			NumChunks:   int(math.Ceil(d / cfg.ChunkDuration)),
		}
	}
	return c
}

// Sample draws a video according to the Zipf popularity model.
func (c *Catalog) Sample(r *stats.Rand) *Video {
	return &c.Videos[c.pop.Sample(r)]
}

// Popularity returns the play probability of the video at rank i.
func (c *Catalog) Popularity(rank int) float64 { return c.pop.Prob(rank) }

// TopShare returns the probability mass of the most popular frac of titles.
func (c *Catalog) TopShare(frac float64) float64 { return c.pop.TopShare(frac) }

// ChunkKey uniquely identifies one chunk at one bitrate across the whole
// catalog; it is the CDN cache key.
func ChunkKey(videoID, chunkIndex, bitrateKbps int) uint64 {
	return uint64(videoID)<<32 | uint64(uint32(chunkIndex))<<12 | uint64(bitrateKbps/10)&0xfff
}

// ChunkSizeBytes returns the size of a chunk of the given duration encoded
// at bitrateKbps.
func ChunkSizeBytes(bitrateKbps int, durationSec float64) int64 {
	return int64(float64(bitrateKbps) * 1000 / 8 * durationSec)
}

// ChunkDurationSec returns the duration of chunk idx of v given the ladder
// chunk duration: all chunks are full length except possibly the last.
func (c *Catalog) ChunkDurationSec(v *Video, idx int) float64 {
	if idx < 0 || idx >= v.NumChunks {
		return 0
	}
	if idx == v.NumChunks-1 {
		rem := v.DurationSec - float64(v.NumChunks-1)*c.ChunkDuration
		if rem > 0 {
			return rem
		}
	}
	return c.ChunkDuration
}

// String implements fmt.Stringer for debugging.
func (v Video) String() string {
	return fmt.Sprintf("video{id=%d rank=%d dur=%.0fs chunks=%d}", v.ID, v.Rank, v.DurationSec, v.NumChunks)
}
