package catalog

import (
	"math"
	"testing"
	"testing/quick"

	"vidperf/internal/stats"
)

func testCatalog() *Catalog {
	return New(Config{NumVideos: 5000}, stats.NewRand(1))
}

func TestNewDefaults(t *testing.T) {
	c := testCatalog()
	if len(c.Videos) != 5000 {
		t.Fatalf("videos = %d", len(c.Videos))
	}
	if c.ChunkDuration != 6 {
		t.Errorf("chunk duration = %v, want 6", c.ChunkDuration)
	}
	if len(c.Bitrates) != 8 {
		t.Errorf("ladder rungs = %d, want 8", len(c.Bitrates))
	}
	for i := 1; i < len(c.Bitrates); i++ {
		if c.Bitrates[i] <= c.Bitrates[i-1] {
			t.Error("ladder not ascending")
		}
	}
}

func TestDurationsHeavyTailed(t *testing.T) {
	c := testCatalog()
	durs := make([]float64, len(c.Videos))
	for i, v := range c.Videos {
		durs[i] = v.DurationSec
		if v.DurationSec < 18 || v.DurationSec > 7200 {
			t.Fatalf("duration out of support: %v", v.DurationSec)
		}
		if v.NumChunks != int(math.Ceil(v.DurationSec/6)) {
			t.Fatalf("chunk count mismatch for %v", v)
		}
	}
	med := stats.Median(durs)
	if med < 80 || med > 180 {
		t.Errorf("median duration = %v, want ~120", med)
	}
	// Heavy tail: some videos much longer than the median (Fig. 3a spans
	// 10^1..10^4 seconds).
	if stats.Quantile(durs, 0.99) < 5*med {
		t.Errorf("p99 %v not heavy-tailed vs median %v", stats.Quantile(durs, 0.99), med)
	}
}

func TestPopularitySkewMatchesPaper(t *testing.T) {
	c := New(Config{NumVideos: 20000}, stats.NewRand(2))
	share := c.TopShare(0.10)
	// Paper §3: top 10% of videos ≈ 66% of playbacks.
	if share < 0.55 || share > 0.78 {
		t.Errorf("top-10%% share = %.3f, want ≈0.66", share)
	}
}

func TestSampleFollowsRank(t *testing.T) {
	c := testCatalog()
	r := stats.NewRand(3)
	counts := make([]int, len(c.Videos))
	for i := 0; i < 200000; i++ {
		counts[c.Sample(r).ID]++
	}
	if counts[0] <= counts[100] || counts[100] <= counts[4000] {
		t.Errorf("sampling not rank-ordered: %d %d %d", counts[0], counts[100], counts[4000])
	}
}

func TestChunkKeyUniqueness(t *testing.T) {
	seen := make(map[uint64]bool)
	bitrates := []int{235, 375, 560, 750, 1050, 1750, 2350, 3000}
	for vid := 0; vid < 50; vid++ {
		for idx := 0; idx < 40; idx++ {
			for _, br := range bitrates {
				k := ChunkKey(vid, idx, br)
				if seen[k] {
					t.Fatalf("duplicate key for (%d,%d,%d)", vid, idx, br)
				}
				seen[k] = true
			}
		}
	}
}

func TestChunkSizeBytes(t *testing.T) {
	// 1000 kbps for 6 s = 750 KB.
	if got := ChunkSizeBytes(1000, 6); got != 750000 {
		t.Errorf("size = %d, want 750000", got)
	}
	if got := ChunkSizeBytes(235, 6); got != int64(235*1000/8*6) {
		t.Errorf("size = %d", got)
	}
}

func TestChunkDurationSec(t *testing.T) {
	c := testCatalog()
	v := &Video{ID: 0, DurationSec: 20, NumChunks: 4} // 6+6+6+2
	for i := 0; i < 3; i++ {
		if d := c.ChunkDurationSec(v, i); d != 6 {
			t.Errorf("chunk %d duration = %v, want 6", i, d)
		}
	}
	if d := c.ChunkDurationSec(v, 3); math.Abs(d-2) > 1e-9 {
		t.Errorf("last chunk duration = %v, want 2", d)
	}
	if c.ChunkDurationSec(v, 4) != 0 || c.ChunkDurationSec(v, -1) != 0 {
		t.Error("out-of-range chunk duration should be 0")
	}
}

// Property: total chunk durations reconstruct the video duration.
func TestChunkDurationsSumProperty(t *testing.T) {
	c := testCatalog()
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		v := c.Sample(r)
		var sum float64
		for i := 0; i < v.NumChunks; i++ {
			d := c.ChunkDurationSec(v, i)
			if d <= 0 || d > c.ChunkDuration+1e-9 {
				return false
			}
			sum += d
		}
		return math.Abs(sum-v.DurationSec) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := New(Config{NumVideos: 100}, stats.NewRand(7))
	b := New(Config{NumVideos: 100}, stats.NewRand(7))
	for i := range a.Videos {
		if a.Videos[i] != b.Videos[i] {
			t.Fatalf("video %d differs between identical seeds", i)
		}
	}
}
