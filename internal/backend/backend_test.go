package backend

import (
	"testing"

	"vidperf/internal/stats"
)

func TestDefaults(t *testing.T) {
	s := New(Config{}, stats.NewRand(1))
	c := s.Config()
	if c.WANRTTms != 45 || c.ServiceMedianMS != 28 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestLatencyDistribution(t *testing.T) {
	s := New(Config{}, stats.NewRand(2))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = s.FetchLatencyMS()
	}
	med := stats.Median(xs)
	// Calibration: median D_BE should land near the paper's ~75-80 ms
	// miss penalty (WAN 45 + service ~28).
	if med < 55 || med > 100 {
		t.Errorf("median D_BE = %.1f ms, want ~73", med)
	}
	if stats.Min(xs) < 45 {
		t.Errorf("latency below WAN floor: %v", stats.Min(xs))
	}
	// Heavy-ish tail from the lognormal + stalls.
	if stats.Quantile(xs, 0.99) < med*1.8 {
		t.Errorf("tail too light: p99=%.1f med=%.1f", stats.Quantile(xs, 0.99), med)
	}
	if s.Requests != int64(len(xs)) {
		t.Errorf("request count = %d", s.Requests)
	}
}

func TestStallsRaiseTail(t *testing.T) {
	fast := New(Config{SlowProb: 1e-12}, stats.NewRand(3))
	slow := New(Config{SlowProb: 0.2, SlowPenaltyMS: 1000}, stats.NewRand(3))
	var fs, ss stats.Summary
	for i := 0; i < 5000; i++ {
		fs.Add(fast.FetchLatencyMS())
		ss.Add(slow.FetchLatencyMS())
	}
	if ss.Mean() < fs.Mean()+100 {
		t.Errorf("stalls did not raise mean: %v vs %v", ss.Mean(), fs.Mean())
	}
}
