// Package backend models the origin service behind the CDN. A cache miss
// at a CDN server triggers a backend request whose latency D_BE combines
// the WAN round trip from the PoP to the origin datacenter with the
// origin's own (lognormal) service time. The paper measures D_BE at the
// CDN and reports that misses raise median server latency from 2 ms to
// ~80 ms — a 40x penalty this model is calibrated to.
package backend

import (
	"math"

	"vidperf/internal/stats"
)

// Config parameterizes the backend latency model. Zero fields take
// defaults calibrated to the paper's Fig. 5 miss curve.
type Config struct {
	// WANRTTms is the PoP-to-origin network round trip (default 45 ms).
	WANRTTms float64
	// ServiceMedianMS is the origin's median service time (default 28 ms).
	ServiceMedianMS float64
	// ServiceSigma is the lognormal shape of the service time
	// (default 0.55, giving a moderately heavy tail).
	ServiceSigma float64
	// SlowProb is the probability of a pathological origin stall
	// (default 0.002) adding SlowPenaltyMS.
	SlowProb float64
	// SlowPenaltyMS is the stall magnitude (default 800 ms).
	SlowPenaltyMS float64
}

func (c Config) withDefaults() Config {
	if c.WANRTTms == 0 {
		c.WANRTTms = 45
	}
	if c.ServiceMedianMS == 0 {
		c.ServiceMedianMS = 28
	}
	if c.ServiceSigma == 0 {
		c.ServiceSigma = 0.55
	}
	if c.SlowProb == 0 {
		c.SlowProb = 0.002
	}
	if c.SlowPenaltyMS == 0 {
		c.SlowPenaltyMS = 800
	}
	return c
}

// Service is an origin latency sampler. It is not safe for concurrent use.
type Service struct {
	cfg Config
	r   *stats.Rand

	// Requests counts backend fetches (for the load take-away analysis).
	Requests int64
}

// New builds a backend service model.
func New(cfg Config, r *stats.Rand) *Service {
	return &Service{cfg: cfg.withDefaults(), r: r}
}

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// FetchLatencyMS samples one backend fetch's D_BE in milliseconds:
// WAN RTT + origin service time (+ rare stall).
func (s *Service) FetchLatencyMS() float64 {
	s.Requests++
	lat := s.cfg.WANRTTms + s.r.LogNormal(math.Log(s.cfg.ServiceMedianMS), s.cfg.ServiceSigma)
	if s.r.Bool(s.cfg.SlowProb) {
		lat += s.cfg.SlowPenaltyMS
	}
	return lat
}
