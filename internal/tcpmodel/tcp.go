// Package tcpmodel simulates the server-side TCP sender of one video
// session: IW10 slow start, AIMD congestion avoidance, fast retransmit,
// RFC 6298 SRTT/RTTVAR/RTO estimation, a droptail bottleneck queue whose
// overflow produces the bursty end-of-slow-start losses the paper observes
// on a session's first chunk (Fig. 15), and periodic tcp_info snapshots
// (CWND, SRTT, SRTTVAR, retx, MSS) exactly like the 500 ms kernel sampling
// the paper's CDN hosts perform.
//
// The model is a per-round fluid approximation: each round trip the sender
// transmits a window, the droptail queue at the bottleneck absorbs up to
// BufferBytes of standing data (adding queueing delay — the "self-loading"
// effect of §4.2), and segments beyond buffer capacity are lost. This keeps
// per-chunk costs at O(rounds) while reproducing the paper's loss and
// latency phenomenology.
package tcpmodel

import (
	"math"

	"vidperf/internal/stats"
)

// Params describes the network path as seen by one connection.
type Params struct {
	// BaseRTTms is the fixed two-way propagation + processing delay.
	BaseRTTms float64
	// JitterMS is the standard deviation of per-round RTT noise
	// (enterprise paths have large values; see netpath).
	JitterMS float64
	// BottleneckKbps is the path's bottleneck rate.
	BottleneckKbps float64
	// BufferBytes is the droptail queue size at the bottleneck. Zero
	// selects a default of one bandwidth-delay product.
	BufferBytes int64
	// RandomLossProb is a per-segment non-congestive loss probability
	// (wireless noise, enterprise middleboxes).
	RandomLossProb float64
	// RcvWindowBytes caps the window at the client's advertised receive
	// window (Flash-era clients commonly pinned it well below the path's
	// capacity, keeping many sessions loss-free and throughput-limited).
	// Zero means unlimited.
	RcvWindowBytes int64
	// MSS is the segment size in bytes (default 1460).
	MSS int
	// InitCwnd is the initial window in segments (default 10, IW10).
	InitCwnd int
	// Pacing enables server-side pacing (the §4.2 take-away, after
	// Trickle): bursts are smoothed so the bottleneck queue is charged at
	// drain rate rather than line rate, absorbing slow-start overshoot.
	Pacing bool
	// SlowStartAfterIdle resets the window after idle gaps (Linux default
	// on; video servers usually disable it — default false here).
	SlowStartAfterIdle bool
}

func (p Params) withDefaults() Params {
	if p.MSS == 0 {
		p.MSS = 1460
	}
	if p.InitCwnd == 0 {
		p.InitCwnd = 10
	}
	if p.BufferBytes == 0 {
		bdp := p.BottleneckKbps / 8 * p.BaseRTTms // bytes
		p.BufferBytes = int64(math.Max(bdp, float64(16*p.MSS)))
	}
	return p
}

// TCPInfo mirrors the kernel tcp_info fields the paper's CDN snapshots
// (Table 2, "CDN (TCP layer)").
type TCPInfo struct {
	AtMS         float64 // connection-relative sample time
	CWNDSegments int
	SRTTms       float64
	RTTVarMS     float64
	RetransTotal int // cumulative retransmitted segments
	MSS          int
}

// ThroughputKbps returns the paper's Eq. 3 estimate
// TP = MSS * CWND / SRTT, in kbps.
func (ti TCPInfo) ThroughputKbps() float64 {
	if ti.SRTTms <= 0 {
		return 0
	}
	return float64(ti.MSS*ti.CWNDSegments) * 8 / ti.SRTTms
}

// TransferResult reports one chunk's delivery.
type TransferResult struct {
	RTT0ms       float64 // round-trip experienced by the request/first byte
	FirstRoundMS float64 // duration of the first data round
	TotalMS      float64 // request-to-last-byte time on the wire
	LastByteMS   float64 // first-byte-to-last-byte time (player's D_LB view)
	SegmentsSent int
	SegmentsLost int // = retransmissions this chunk
	Rounds       int
	Timeouts     int
	CwndEnd      int
	SRTTEnd      float64
	// Snapshots are the tcp_info samples taken during this transfer
	// (every 500 ms of connection time, plus one at transfer end).
	Snapshots []TCPInfo
}

// LossRate returns SegmentsLost/SegmentsSent for the chunk.
func (t TransferResult) LossRate() float64 {
	if t.SegmentsSent == 0 {
		return 0
	}
	return float64(t.SegmentsLost) / float64(t.SegmentsSent)
}

// Conn is one long-lived sender. A video session uses a single Conn for
// all its chunks (the paper's sessions are one TCP connection).
type Conn struct {
	p Params
	r *stats.Rand

	cwnd     int // segments
	ssthresh int // segments
	srtt     float64
	rttvar   float64
	srttInit bool

	clockMS      float64
	lastSampleMS float64
	retransTotal int
	queuedBytes  float64 // standing queue at the bottleneck
	extraDelayMS float64 // time-varying path delay (cross-traffic congestion)

	// snaps is the reused backing array for TransferResult.Snapshots, so
	// steady-state chunk transfers allocate nothing for sampling.
	snaps []TCPInfo
}

// SampleIntervalMS is the tcp_info sampling period (paper: 500 ms).
const SampleIntervalMS = 500.0

// New creates a connection over the given path. r must not be shared with
// other concurrent components.
func New(p Params, r *stats.Rand) *Conn {
	p = p.withDefaults()
	return &Conn{
		p:        p,
		r:        r,
		cwnd:     p.InitCwnd,
		ssthresh: 1 << 30, // effectively unbounded until first loss
	}
}

// Params returns the path parameters the connection was built with.
func (c *Conn) Params() Params { return c.p }

// bdpBytes returns the path's current bandwidth-delay product. A
// congestion episode lengthens the path, so the pipe holds more bytes in
// flight — the window may (and does) grow to fill it.
func (c *Conn) bdpBytes() float64 {
	return c.p.BottleneckKbps / 8 * (c.p.BaseRTTms + c.extraDelayMS)
}

// rateBytesPerMS returns the bottleneck drain rate.
func (c *Conn) rateBytesPerMS() float64 { return c.p.BottleneckKbps / 8 }

// SetRandomLossProb overrides the path's per-segment random-loss
// probability from now on. Scripted scenarios (e.g. the paper's Fig. 13
// early-vs-late loss case study) use it to place loss episodes at chosen
// chunks.
func (c *Conn) SetRandomLossProb(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	c.p.RandomLossProb = p
}

// SetExtraDelayMS sets the current time-varying path delay component
// (e.g. a cross-traffic congestion episode on an enterprise uplink). It
// adds to every subsequent RTT sample until changed.
func (c *Conn) SetExtraDelayMS(ms float64) {
	if ms < 0 {
		ms = 0
	}
	c.extraDelayMS = ms
}

// rttSample returns one round's RTT given the current standing queue.
func (c *Conn) rttSample() float64 {
	jitter := c.r.Norm(0, c.p.JitterMS)
	if jitter < 0 {
		jitter = -jitter // latency noise only adds delay
	}
	queueDelay := 0.0
	if rate := c.rateBytesPerMS(); rate > 0 {
		queueDelay = c.queuedBytes / rate
	}
	return c.p.BaseRTTms + c.extraDelayMS + jitter + queueDelay
}

// updateRTT folds one round's RTT into SRTT/RTTVAR per RFC 6298. The
// kernel updates the EWMA once per ACK — a full window yields dozens of
// updates per round — so SRTT converges to a new path level within about
// one round. acks approximates the ACK count (delayed ACKs: one per two
// segments), capped to bound the loop.
func (c *Conn) updateRTT(sample float64, acks int) {
	if !c.srttInit {
		c.srtt = sample
		c.rttvar = sample / 2
		c.srttInit = true
		return
	}
	if acks < 1 {
		acks = 1
	}
	if acks > 32 {
		acks = 32
	}
	for i := 0; i < acks; i++ {
		c.rttvar = 0.75*c.rttvar + 0.25*math.Abs(c.srtt-sample)
		c.srtt = 0.875*c.srtt + 0.125*sample
	}
}

// RTOms returns the retransmission timeout per RFC 6298 with the Linux
// 200 ms floor.
func (c *Conn) RTOms() float64 {
	rto := c.srtt + 4*c.rttvar
	if rto < 200 {
		rto = 200
	}
	return rto
}

// RTOPaperms is the conservative RTO bound the paper's Eq. 5 uses for the
// persistent download-stack estimate: RTO = 200 ms + srtt + 4·srttvar.
func RTOPaperms(srttMS, rttvarMS float64) float64 {
	return 200 + srttMS + 4*rttvarMS
}

// Info returns a tcp_info snapshot at the current connection clock.
func (c *Conn) Info() TCPInfo {
	return TCPInfo{
		AtMS:         c.clockMS,
		CWNDSegments: c.cwnd,
		SRTTms:       c.srtt,
		RTTVarMS:     c.rttvar,
		RetransTotal: c.retransTotal,
		MSS:          c.p.MSS,
	}
}

// AdvanceIdle moves the connection clock forward without sending (the gap
// between chunk downloads while the playback buffer is full). The standing
// queue drains; optionally the window collapses (slow start after idle).
func (c *Conn) AdvanceIdle(ms float64) {
	if ms <= 0 {
		return
	}
	c.clockMS += ms
	drained := c.rateBytesPerMS() * ms
	c.queuedBytes = math.Max(0, c.queuedBytes-drained)
	if c.SSAfterIdleWouldTrigger(ms) {
		c.cwnd = c.p.InitCwnd
	}
}

// SSAfterIdleWouldTrigger reports whether an idle period of ms would reset
// the congestion window under the configured policy.
func (c *Conn) SSAfterIdleWouldTrigger(ms float64) bool {
	return c.p.SlowStartAfterIdle && ms > c.RTOms()
}

// maybeSample appends a snapshot if at least SampleIntervalMS of
// connection time has passed since the last one.
func (c *Conn) maybeSample() {
	if c.clockMS-c.lastSampleMS >= SampleIntervalMS {
		c.lastSampleMS = c.clockMS
		c.snaps = append(c.snaps, c.Info())
	}
}

// lossesInWindow counts lost segments for a window of n segments given the
// droptail overflow (burst beyond buffer capacity) plus random loss.
func (c *Conn) lossesInWindow(n int, windowBytes float64) int {
	lost := 0
	// Congestive loss: data beyond BDP + buffer cannot be absorbed.
	headroom := c.bdpBytes() + float64(c.p.BufferBytes)
	if c.p.Pacing {
		// Paced bursts arrive at drain rate, letting the queue service
		// traffic while it arrives: effective capacity roughly doubles
		// (Aggarwal et al.; Trickle).
		headroom += c.bdpBytes() + float64(c.p.BufferBytes)
	}
	if overflow := windowBytes - headroom; overflow > 0 {
		lost += int(math.Ceil(overflow / float64(c.p.MSS)))
	}
	// Random per-segment loss.
	if p := c.p.RandomLossProb; p > 0 {
		for i := 0; i < n-lost; i++ {
			if c.r.Bool(p) {
				lost++
			}
		}
	}
	if lost > n {
		lost = n
	}
	return lost
}

// Transfer delivers size bytes to the client and returns the chunk's
// delivery metrics. The connection's congestion state persists across
// calls, so a session's later chunks start with the grown window. The
// result's Snapshots slice is backed by a per-connection scratch buffer
// and is valid only until the next Transfer on this connection; callers
// that keep it longer must copy it.
func (c *Conn) Transfer(size int64) TransferResult {
	if size <= 0 {
		return TransferResult{CwndEnd: c.cwnd, SRTTEnd: c.srtt}
	}
	c.snaps = c.snaps[:0]
	res := TransferResult{}
	bytesLeft := float64(size)
	rate := c.rateBytesPerMS()

	for round := 0; bytesLeft > 0; round++ {
		windowBytes := float64(c.cwnd * c.p.MSS)
		sendBytes := math.Min(windowBytes, bytesLeft)
		nSegs := int(math.Ceil(sendBytes / float64(c.p.MSS)))

		// Queue occupancy while this window is in flight.
		c.queuedBytes = math.Max(0, windowBytes-c.bdpBytes())
		if c.queuedBytes > float64(c.p.BufferBytes) {
			c.queuedBytes = float64(c.p.BufferBytes)
		}

		rtt := c.rttSample()
		roundTime := rtt
		// A partial final window is serialization-limited, not ack-clocked.
		if sendBytes < windowBytes && rate > 0 {
			serial := sendBytes/rate + c.p.BaseRTTms/2
			roundTime = math.Min(rtt, math.Max(serial, 1))
		}

		lost := c.lossesInWindow(nSegs, sendBytes)
		delivered := sendBytes - float64(lost*c.p.MSS)
		if delivered < 0 {
			delivered = 0
		}

		c.updateRTT(rtt, nSegs/2)
		c.clockMS += roundTime
		res.Rounds++
		res.SegmentsSent += nSegs
		res.SegmentsLost += lost
		c.retransTotal += lost
		if round == 0 {
			res.RTT0ms = rtt
			res.FirstRoundMS = roundTime
		}
		res.TotalMS += roundTime
		c.maybeSample()

		bytesLeft -= delivered

		// Congestion control reaction.
		switch {
		case lost >= nSegs && nSegs > 0:
			// Whole window lost: retransmission timeout.
			res.Timeouts++
			timeout := c.RTOms()
			c.clockMS += timeout
			res.TotalMS += timeout
			c.ssthresh = maxInt(c.cwnd/2, 2)
			c.cwnd = c.p.InitCwnd
			c.maybeSample()
		case lost > 0:
			// Fast retransmit / fast recovery: multiplicative decrease,
			// one extra round to retransmit.
			c.ssthresh = maxInt(c.cwnd/2, 2)
			c.cwnd = c.ssthresh
			recovery := c.rttSample()
			c.updateRTT(recovery, 4)
			c.clockMS += recovery
			res.TotalMS += recovery
			res.Rounds++
			c.maybeSample()
		default:
			// Congestion-window validation (RFC 2861): an application-
			// limited round (partial window) must not grow the window —
			// chunked video is app-limited most of the time, which is why
			// most real sessions never push the path to loss.
			if sendBytes >= windowBytes {
				if c.cwnd < c.ssthresh {
					// Slow start: the window doubles each round until the
					// threshold (one increment per acked segment).
					c.cwnd = minInt(c.cwnd*2, c.ssthresh)
				} else {
					// Congestion avoidance: +1 segment per round.
					c.cwnd++
				}
			}
		}
		if c.cwnd < 1 {
			c.cwnd = 1
		}
		// Cap the window at what the path can physically hold plus buffer,
		// with a little probe headroom so AIMD keeps testing the knee —
		// and at the client's receive window, which often binds first.
		maxW := int((c.bdpBytes()+float64(c.p.BufferBytes))/float64(c.p.MSS)) + c.p.InitCwnd
		if c.p.RcvWindowBytes > 0 {
			if rw := int(c.p.RcvWindowBytes / int64(c.p.MSS)); rw < maxW {
				maxW = rw
			}
		}
		if maxW < 2 {
			maxW = 2
		}
		if c.cwnd > maxW {
			c.cwnd = maxW
		}
	}

	// Final mandatory per-chunk snapshot.
	c.snaps = append(c.snaps, c.Info())
	res.Snapshots = c.snaps
	res.CwndEnd = c.cwnd
	res.SRTTEnd = c.srtt
	if res.TotalMS > res.FirstRoundMS {
		res.LastByteMS = res.TotalMS - res.FirstRoundMS
	}
	// Serialization floor: data cannot arrive faster than the bottleneck.
	if rate > 0 {
		if floor := float64(size) / rate; res.LastByteMS < floor {
			res.LastByteMS = floor
			res.TotalMS = res.FirstRoundMS + floor
		}
	}
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
