package tcpmodel

import (
	"math"
	"testing"
	"testing/quick"

	"vidperf/internal/stats"
)

func cleanPath() Params {
	return Params{
		BaseRTTms:      40,
		JitterMS:       0,
		BottleneckKbps: 20000, // 20 Mbps
	}
}

func TestDefaults(t *testing.T) {
	c := New(Params{BaseRTTms: 40, BottleneckKbps: 10000}, stats.NewRand(1))
	p := c.Params()
	if p.MSS != 1460 {
		t.Errorf("MSS = %d", p.MSS)
	}
	if p.InitCwnd != 10 {
		t.Errorf("InitCwnd = %d", p.InitCwnd)
	}
	if p.BufferBytes <= 0 {
		t.Errorf("BufferBytes = %d", p.BufferBytes)
	}
}

func TestTransferDeliversAllBytes(t *testing.T) {
	c := New(cleanPath(), stats.NewRand(2))
	res := c.Transfer(750000) // one 6 s chunk at 1 Mbps
	if res.TotalMS <= 0 {
		t.Fatal("no time elapsed")
	}
	wantSegs := int(math.Ceil(750000.0 / 1460))
	if res.SegmentsSent < wantSegs {
		t.Errorf("sent %d segments, want >= %d", res.SegmentsSent, wantSegs)
	}
	if res.SegmentsLost != 0 {
		// Clean path with big buffer: slow-start overshoot may still lose;
		// but with BDP-sized buffer the first chunk CAN lose. Accept loss
		// but retx must never exceed sent.
		if res.SegmentsLost > res.SegmentsSent {
			t.Errorf("lost %d > sent %d", res.SegmentsLost, res.SegmentsSent)
		}
	}
}

func TestSlowStartGrowsWindow(t *testing.T) {
	c := New(cleanPath(), stats.NewRand(3))
	if c.Info().CWNDSegments != 10 {
		t.Fatalf("initial cwnd = %d", c.Info().CWNDSegments)
	}
	c.Transfer(300000)
	if c.Info().CWNDSegments <= 10 {
		t.Errorf("cwnd did not grow: %d", c.Info().CWNDSegments)
	}
}

func TestFirstChunkLosesMoreThanLater(t *testing.T) {
	// The Fig. 15 effect: slow-start overshoot concentrates losses on the
	// session's first chunk. Use a constrained path so overshoot occurs.
	p := Params{BaseRTTms: 50, BottleneckKbps: 8000, BufferBytes: 64 * 1460}
	var first, later stats.Summary
	for seed := uint64(0); seed < 60; seed++ {
		c := New(p, stats.NewRand(seed))
		r0 := c.Transfer(2000000)
		first.Add(r0.LossRate())
		for i := 0; i < 4; i++ {
			ri := c.Transfer(2000000)
			later.Add(ri.LossRate())
		}
	}
	if first.Mean() <= later.Mean() {
		t.Errorf("first-chunk loss %.4f not above later-chunk loss %.4f",
			first.Mean(), later.Mean())
	}
}

func TestSRTTReflectsSelfLoading(t *testing.T) {
	// When the window exceeds the BDP, standing queue inflates measured
	// SRTT above the base RTT (§4.2's self-loading caveat).
	p := Params{BaseRTTms: 40, BottleneckKbps: 5000, BufferBytes: 400 * 1460}
	c := New(p, stats.NewRand(4))
	c.Transfer(4000000)
	if c.Info().SRTTms <= 40 {
		t.Errorf("SRTT %.1f not inflated above base RTT", c.Info().SRTTms)
	}
}

func TestThroughputApproachesBottleneck(t *testing.T) {
	p := cleanPath() // 20 Mbps
	c := New(p, stats.NewRand(5))
	// Warm up the window, then measure a large transfer.
	c.Transfer(1000000)
	size := int64(10000000) // 10 MB
	res := c.Transfer(size)
	gotKbps := float64(size) * 8 / res.TotalMS
	if gotKbps > p.BottleneckKbps*1.05 {
		t.Errorf("throughput %.0f kbps exceeds bottleneck %.0f", gotKbps, p.BottleneckKbps)
	}
	if gotKbps < p.BottleneckKbps*0.5 {
		t.Errorf("throughput %.0f kbps too far below bottleneck %.0f", gotKbps, p.BottleneckKbps)
	}
}

func TestRandomLossCausesRetransmissions(t *testing.T) {
	p := cleanPath()
	p.RandomLossProb = 0.02
	c := New(p, stats.NewRand(6))
	res := c.Transfer(3000000)
	if res.SegmentsLost == 0 {
		t.Error("no losses despite 2% random loss")
	}
	rate := res.LossRate()
	if rate < 0.005 || rate > 0.10 {
		t.Errorf("loss rate %.4f implausible for p=0.02", rate)
	}
}

func TestRTOBounds(t *testing.T) {
	c := New(cleanPath(), stats.NewRand(7))
	if got := c.RTOms(); got != 200 {
		t.Errorf("pre-sample RTO = %v, want 200 floor", got)
	}
	c.Transfer(100000)
	if got := c.RTOms(); got < 200 {
		t.Errorf("RTO %v below floor", got)
	}
	if got := RTOPaperms(60, 5); got != 280 {
		t.Errorf("RTOPaperms = %v, want 280", got)
	}
}

func TestSnapshotsEvery500ms(t *testing.T) {
	// A long transfer on a slow path takes many seconds: expect roughly
	// duration/500ms samples (plus the final per-chunk one).
	p := Params{BaseRTTms: 80, BottleneckKbps: 2000}
	c := New(p, stats.NewRand(8))
	res := c.Transfer(3000000) // 12 s at 2 Mbps
	if res.TotalMS < 5000 {
		t.Fatalf("transfer unexpectedly fast: %v ms", res.TotalMS)
	}
	wantMin := int(res.TotalMS/SampleIntervalMS) / 2
	if len(res.Snapshots) < wantMin {
		t.Errorf("got %d snapshots over %.0f ms, want >= %d",
			len(res.Snapshots), res.TotalMS, wantMin)
	}
	// Snapshots must be time-ordered and carry MSS.
	for i, s := range res.Snapshots {
		if s.MSS != 1460 {
			t.Fatalf("snapshot %d MSS = %d", i, s.MSS)
		}
		if i > 0 && s.AtMS < res.Snapshots[i-1].AtMS {
			t.Fatal("snapshots out of order")
		}
	}
}

func TestAtLeastOneSnapshotPerChunk(t *testing.T) {
	c := New(cleanPath(), stats.NewRand(9))
	for i := 0; i < 5; i++ {
		res := c.Transfer(50000) // small, fast chunks
		if len(res.Snapshots) < 1 {
			t.Fatalf("chunk %d had no snapshot", i)
		}
	}
}

func TestEq3Throughput(t *testing.T) {
	ti := TCPInfo{CWNDSegments: 20, SRTTms: 50, MSS: 1460}
	want := float64(20*1460) * 8 / 50
	if got := ti.ThroughputKbps(); got != want {
		t.Errorf("Eq3 = %v, want %v", got, want)
	}
	if (TCPInfo{}).ThroughputKbps() != 0 {
		t.Error("zero SRTT should yield 0")
	}
}

func TestIdleDrainsQueueAndOptionallyResets(t *testing.T) {
	p := Params{BaseRTTms: 40, BottleneckKbps: 5000, BufferBytes: 400 * 1460}
	c := New(p, stats.NewRand(10))
	c.Transfer(4000000)
	grown := c.Info().CWNDSegments
	if grown <= 10 {
		t.Fatalf("window did not grow: %d", grown)
	}
	c.AdvanceIdle(5000)
	if c.Info().CWNDSegments != grown {
		t.Error("window reset despite SlowStartAfterIdle=false")
	}

	p.SlowStartAfterIdle = true
	c2 := New(p, stats.NewRand(10))
	c2.Transfer(4000000)
	c2.AdvanceIdle(5000)
	if c2.Info().CWNDSegments != 10 {
		t.Errorf("window = %d after idle, want reset to 10", c2.Info().CWNDSegments)
	}
}

func TestPacingReducesFirstChunkLoss(t *testing.T) {
	base := Params{BaseRTTms: 50, BottleneckKbps: 8000, BufferBytes: 64 * 1460}
	var unpaced, paced stats.Summary
	for seed := uint64(0); seed < 60; seed++ {
		c1 := New(base, stats.NewRand(seed))
		unpaced.Add(c1.Transfer(2000000).LossRate())
		pp := base
		pp.Pacing = true
		c2 := New(pp, stats.NewRand(seed))
		paced.Add(c2.Transfer(2000000).LossRate())
	}
	if paced.Mean() >= unpaced.Mean() {
		t.Errorf("pacing did not reduce loss: paced %.4f vs unpaced %.4f",
			paced.Mean(), unpaced.Mean())
	}
}

func TestZeroAndNegativeSize(t *testing.T) {
	c := New(cleanPath(), stats.NewRand(11))
	res := c.Transfer(0)
	if res.TotalMS != 0 || res.SegmentsSent != 0 {
		t.Errorf("zero-size transfer did work: %+v", res)
	}
	res = c.Transfer(-5)
	if res.TotalMS != 0 {
		t.Error("negative size transferred")
	}
}

func TestDeterminism(t *testing.T) {
	a := New(cleanPath(), stats.NewRand(12))
	b := New(cleanPath(), stats.NewRand(12))
	for i := 0; i < 5; i++ {
		ra, rb := a.Transfer(500000), b.Transfer(500000)
		if ra.TotalMS != rb.TotalMS || ra.SegmentsLost != rb.SegmentsLost {
			t.Fatalf("chunk %d diverged", i)
		}
	}
}

// Property: for any path and size, transfers conserve sanity — non-negative
// times, losses <= sent, last-byte time <= total, clock monotone.
func TestTransferInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		p := Params{
			BaseRTTms:      r.Uniform(5, 300),
			JitterMS:       r.Uniform(0, 30),
			BottleneckKbps: r.Uniform(500, 50000),
			RandomLossProb: r.Float64() * 0.05,
		}
		c := New(p, r.Split())
		prevClock := 0.0
		for i := 0; i < 8; i++ {
			size := int64(r.Intn(3000000) + 1)
			res := c.Transfer(size)
			if res.TotalMS < 0 || res.LastByteMS < 0 || res.FirstRoundMS < 0 {
				return false
			}
			if res.SegmentsLost > res.SegmentsSent {
				return false
			}
			if res.LastByteMS > res.TotalMS+1e-9 {
				return false
			}
			info := c.Info()
			if info.AtMS < prevClock {
				return false
			}
			prevClock = info.AtMS
			if info.CWNDSegments < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SRTT stays within sane bounds of the base RTT (never below,
// never beyond base + max queue + generous jitter margin).
func TestSRTTBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		base := r.Uniform(10, 200)
		p := Params{BaseRTTms: base, JitterMS: 5, BottleneckKbps: 5000}
		c := New(p, r.Split())
		c.Transfer(int64(r.Intn(4000000) + 1000))
		srtt := c.Info().SRTTms
		maxQueue := float64(c.Params().BufferBytes) / (p.BottleneckKbps / 8)
		return srtt >= base-1e-6 && srtt <= base+maxQueue+20*5+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
