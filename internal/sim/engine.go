// Package sim implements a minimal deterministic discrete-event simulation
// engine. The session runner uses it to interleave chunk requests from many
// concurrent video sessions at the CDN servers, so that shared state (the
// per-server caches and worker pools) sees requests in global time order,
// exactly as a production server fleet would.
//
// Time is a float64 in milliseconds. Events scheduled for the same instant
// fire in scheduling order (a monotonically increasing sequence number
// breaks ties), which keeps runs reproducible: (at, seq) is a strict total
// order, so the pop sequence is independent of the heap's internal layout.
//
// An Engine is strictly single-goroutine. Scaling comes from partitioning:
// a campaign splits into disjoint event systems (one per CDN server), each
// on its own Engine wrapped in a Shard, executed concurrently by RunShards.
package sim

// Event is a callback scheduled to run at a simulated time.
type Event func(now float64)

type item struct {
	at  float64
	seq uint64
	fn  Event
}

// eventHeap is a hand-rolled binary min-heap over (at, seq). It avoids
// container/heap's interface boxing, which allocated one escape per push
// on the hottest scheduling path in the simulator.
type eventHeap []item

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		smallest := i
		if l := 2*i + 1; l < n && h.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Engine is a future-event-list simulator. The zero value is ready to use.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
}

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time at. Events scheduled in the past
// run at the current time (the engine never moves backwards).
func (e *Engine) At(at float64, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events = append(e.events, item{at: at, seq: e.seq, fn: fn})
	e.events.siftUp(len(e.events) - 1)
}

// After schedules fn to run delay milliseconds from now.
func (e *Engine) After(delay float64, fn Event) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// pop removes and returns the earliest event, releasing the vacated
// slot's closure so finished callbacks do not linger in the backing array.
func (e *Engine) pop() item {
	h := e.events
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = item{}
	e.events = h[:n]
	e.events.siftDown(0)
	return top
}

// Step executes the single earliest event. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	it := e.pop()
	e.now = it.at
	it.fn(e.now)
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline. Later events remain queued
// and the clock advances to deadline if it had not yet reached it.
func (e *Engine) RunUntil(deadline float64) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
