// Package sim implements a minimal deterministic discrete-event simulation
// engine. The session runner uses it to interleave chunk requests from many
// concurrent video sessions at the CDN servers, so that shared state (the
// per-server caches and worker pools) sees requests in global time order,
// exactly as a production server fleet would.
//
// Time is a float64 in milliseconds. Events scheduled for the same instant
// fire in scheduling order (a monotonically increasing sequence number
// breaks ties), which keeps runs reproducible.
//
// An Engine is strictly single-goroutine. Scaling comes from partitioning:
// a campaign splits into disjoint event systems (one per PoP), each on its
// own Engine wrapped in a Shard, executed concurrently by RunShards.
package sim

import "container/heap"

// Event is a callback scheduled to run at a simulated time.
type Event func(now float64)

type item struct {
	at  float64
	seq uint64
	fn  Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a future-event-list simulator. The zero value is ready to use.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap
}

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time at. Events scheduled in the past
// run at the current time (the engine never moves backwards).
func (e *Engine) At(at float64, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, item{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run delay milliseconds from now.
func (e *Engine) After(delay float64, fn Event) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// Step executes the single earliest event. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	it := heap.Pop(&e.events).(item)
	e.now = it.at
	it.fn(e.now)
	return true
}

// Run executes events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline. Later events remain queued
// and the clock advances to deadline if it had not yet reached it.
func (e *Engine) RunUntil(deadline float64) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
