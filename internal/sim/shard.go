package sim

import (
	"runtime"
	"sort"
	"sync"
)

// Shard is one independent event timeline of a partitioned simulation.
// The session runner shards the campaign by server — sessions never cross
// servers, so each server, its connections, and its players form a closed
// event system that can run on its own Engine without synchronization.
//
// A Shard's Engine is single-goroutine like any other Engine; parallelism
// comes from running disjoint shards on separate goroutines (RunShards).
type Shard struct {
	ID int // the partition key (PoP*ServersPerPoP+slot for the session runner)
	// Weight is the shard's relative work estimate (the session runner
	// uses its session count). RunShards dispatches heavier shards first
	// so one hot shard does not become the run's serial tail; 0 means
	// unknown and sorts last.
	Weight int
	Engine Engine
}

// RunShards calls run(shard) for every shard, keeping at most parallelism
// invocations in flight. parallelism <= 0 means GOMAXPROCS; 1 executes the
// shards sequentially in slice order on the calling goroutine. Requests
// beyond GOMAXPROCS are clamped to it: extra goroutines cannot add CPU,
// but they would interleave allocation-heavy shard setups and inflate the
// live heap — the regression that made high parallelism a pessimization
// on small machines.
//
// When running in parallel, shards are dispatched heaviest-first (by
// Weight, ties in slice order) so the long shards start early and the
// short ones pack into the gaps — classic LPT scheduling.
//
// run must confine itself to the shard's own state: shards may not share
// mutable structures (engines, servers, datasets, RNG streams). Under that
// contract the results are independent of parallelism and of dispatch
// order, so a parallel run is byte-identical to a sequential one after a
// deterministic merge.
func RunShards(parallelism int, shards []*Shard, run func(*Shard)) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if max := runtime.GOMAXPROCS(0); parallelism > max {
		parallelism = max
	}
	if parallelism > len(shards) {
		parallelism = len(shards)
	}
	if parallelism <= 1 {
		for _, s := range shards {
			run(s)
		}
		return
	}
	order := make([]*Shard, len(shards))
	copy(order, shards)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Weight > order[j].Weight })
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for _, s := range order {
		sem <- struct{}{}
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			defer func() { <-sem }()
			run(s)
		}(s)
	}
	wg.Wait()
}
