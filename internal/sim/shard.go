package sim

import (
	"runtime"
	"sync"
)

// Shard is one independent event timeline of a partitioned simulation.
// The session runner shards the campaign by PoP — sessions never cross
// PoPs, so each PoP's servers, connections, and players form a closed
// event system that can run on its own Engine without synchronization.
//
// A Shard's Engine is single-goroutine like any other Engine; parallelism
// comes from running disjoint shards on separate goroutines (RunShards).
type Shard struct {
	ID     int // the partition key (the PoP ID for the session runner)
	Engine Engine
}

// RunShards calls run(shard) for every shard, keeping at most parallelism
// invocations in flight. parallelism <= 0 means GOMAXPROCS; 1 executes the
// shards sequentially in slice order on the calling goroutine.
//
// run must confine itself to the shard's own state: shards may not share
// mutable structures (engines, servers, datasets, RNG streams). Under that
// contract the results are independent of parallelism, so a parallel run
// is byte-identical to a sequential one after a deterministic merge.
func RunShards(parallelism int, shards []*Shard, run func(*Shard)) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(shards) {
		parallelism = len(shards)
	}
	if parallelism <= 1 {
		for _, s := range shards {
			run(s)
		}
		return
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for _, s := range shards {
		sem <- struct{}{}
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			defer func() { <-sem }()
			run(s)
		}(s)
	}
	wg.Wait()
}
