package sim

import (
	"sync/atomic"
	"testing"
)

// shardTrace runs a small self-scheduling workload on one shard and
// returns the event-time trace it produced.
func shardTrace(s *Shard) []float64 {
	var trace []float64
	for i := 0; i < 5; i++ {
		at := float64((s.ID + 1) * (i + 1))
		s.Engine.At(at, func(now float64) {
			trace = append(trace, now)
			if now < 100 {
				s.Engine.After(7, func(now float64) { trace = append(trace, now) })
			}
		})
	}
	s.Engine.Run()
	return trace
}

func TestRunShardsParallelismInvariant(t *testing.T) {
	results := map[int][][]float64{}
	for _, par := range []int{1, 3, 16} {
		shards := make([]*Shard, 6)
		for i := range shards {
			shards[i] = &Shard{ID: i}
		}
		traces := make([][]float64, len(shards))
		RunShards(par, shards, func(s *Shard) { traces[s.ID] = shardTrace(s) })
		results[par] = traces
	}
	for _, par := range []int{3, 16} {
		for i := range results[1] {
			a, b := results[1][i], results[par][i]
			if len(a) != len(b) {
				t.Fatalf("par=%d shard %d: %d events vs %d sequential", par, i, len(b), len(a))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("par=%d shard %d event %d: %v vs %v", par, i, j, b[j], a[j])
				}
			}
		}
	}
}

func TestRunShardsRunsEveryShardOnce(t *testing.T) {
	shards := make([]*Shard, 20)
	counts := make([]int64, len(shards))
	for i := range shards {
		shards[i] = &Shard{ID: i}
	}
	RunShards(4, shards, func(s *Shard) { atomic.AddInt64(&counts[s.ID], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("shard %d ran %d times", i, c)
		}
	}
}

func TestRunShardsZeroParallelism(t *testing.T) {
	var ran atomic.Int64
	RunShards(0, []*Shard{{ID: 0}, {ID: 1}}, func(*Shard) { ran.Add(1) })
	if ran.Load() != 2 {
		t.Fatalf("ran %d shards, want 2", ran.Load())
	}
}
