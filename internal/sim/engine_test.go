package sim

import (
	"testing"
	"testing/quick"

	"vidperf/internal/stats"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var got []int
	e.At(30, func(float64) { got = append(got, 3) })
	e.At(10, func(float64) { got = append(got, 1) })
	e.At(20, func(float64) { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v, want 30", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(float64) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var times []float64
	e.At(1, func(now float64) {
		times = append(times, now)
		e.After(4, func(now float64) {
			times = append(times, now)
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 5 {
		t.Fatalf("times = %v", times)
	}
}

func TestPastEventRunsNow(t *testing.T) {
	var e Engine
	e.At(10, func(now float64) {})
	e.Run()
	ran := false
	var at float64
	e.At(3, func(now float64) { ran = true; at = now })
	e.Run()
	if !ran || at != 10 {
		t.Fatalf("past event ran=%v at=%v, want at=10", ran, at)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	var e Engine
	var at float64
	e.After(-5, func(now float64) { at = now })
	e.Run()
	if at != 0 {
		t.Errorf("at = %v, want 0", at)
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var got []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func(now float64) { got = append(got, now) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("ran %d events, want 3", len(got))
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	e.RunUntil(100)
	if e.Pending() != 0 || e.Now() != 100 {
		t.Errorf("after drain: pending=%d now=%v", e.Pending(), e.Now())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}

// Property: for any random schedule, events execute in non-decreasing time
// order and the clock never moves backwards.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		var e Engine
		n := 5 + r.Intn(100)
		var last float64 = -1
		ok := true
		for i := 0; i < n; i++ {
			e.At(r.Uniform(0, 1000), func(now float64) {
				if now < last {
					ok = false
				}
				last = now
				// Occasionally schedule follow-up work.
				if r.Bool(0.3) {
					e.After(r.Uniform(0, 50), func(float64) {})
				}
			})
		}
		e.Run()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
