package clientstack

import (
	"math"

	"vidperf/internal/stats"
)

// StackProfile is a session's persistent download-stack character. The
// paper finds (§4.3): 17.6% of chunks see non-zero D_DS; the level is a
// property of the OS/browser pair (Table 5: Safari-on-Windows/Linux worst
// at ~1 s, Firefox ~280 ms); the first chunk pays an extra ~300 ms for
// Flash event-listener and data-path setup; and 0.32% of chunks are fully
// buffered by the stack and delivered late all at once.
type StackProfile struct {
	// PersistentDDSMS is the session's baseline per-chunk download-stack
	// latency (0 for clean sessions).
	PersistentDDSMS float64
	// FirstChunkExtraMS is the additional first-chunk latency from
	// progress-event registration and data-path setup.
	FirstChunkExtraMS float64
	// TransientProb is the per-chunk probability of a buffered-delivery
	// outlier (the Eq. 4 detection target).
	TransientProb float64
	// TransientMeanMS is the mean transient buffering delay.
	TransientMeanMS float64
	// FreezeProb is the per-chunk probability of an outright runtime
	// freeze; FreezeMinMS/FreezeMaxMS bound its duration. A small share
	// of persistent-stack sessions are "badly broken" (freezes on most
	// chunks) — the sessions behind the paper's >10%-re-buffering /
	// >500 ms D_DS bucket.
	FreezeProb  float64
	FreezeMinMS float64
	FreezeMaxMS float64
}

// stackTraits maps an OS/browser pair to (probability the session has a
// persistent stack problem, mean persistent D_DS when present). Values are
// calibrated so chunk-weighted means reproduce Table 5's ordering.
func stackTraits(p Platform) (prob, meanMS float64) {
	switch {
	case p.Browser == Safari && p.OS != MacOS:
		// Safari outside OS X: no native pipeline, worst case (~1s).
		return 0.85, 1200
	case p.Browser == Yandex || p.Browser == SeaMonkey:
		return 0.70, 700
	case p.Browser == Vivaldi || p.Browser == Opera:
		return 0.55, 450
	case p.Browser == OtherBrowser:
		return 0.50, 560
	case p.Browser == Firefox:
		// Firefox runs Flash out-of-process ("protected mode").
		return 0.35, 800
	case p.Browser == InternetExplorer || p.Browser == Edge:
		return 0.30, 420
	case p.Browser == Safari && p.OS == MacOS:
		return 0.10, 300
	default: // Chrome: integrated PPAPI Flash
		return 0.08, 250
	}
}

// NewStackProfile derives a session's download-stack profile from its
// platform.
func NewStackProfile(p Platform, r *stats.Rand) StackProfile {
	prob, mean := stackTraits(p)
	sp := StackProfile{
		FirstChunkExtraMS: r.LogNormal(math.Log(300), 0.45),
		TransientProb:     0.0032,
	}
	if r.Bool(prob) {
		sp.PersistentDDSMS = r.LogNormal(math.Log(mean), 0.5)
		if r.Bool(0.08) {
			// Badly broken runtime: freezes on most chunks.
			sp.FreezeProb = 0.5
			sp.FreezeMinMS, sp.FreezeMaxMS = 2000, 8000
		} else {
			sp.FreezeProb = 0.03
			sp.FreezeMinMS, sp.FreezeMaxMS = 1500, 4500
		}
	}
	sp.TransientMeanMS = 900
	return sp
}

// ChunkDDS is one chunk's download-stack outcome.
type ChunkDDS struct {
	// DDSms is the stack latency added to the chunk's first-byte delay.
	DDSms float64
	// DeliveryStretchMS additionally slows the whole delivery: a starved
	// progress-event loop doesn't just delay the first byte, it throttles
	// how fast bytes reach the player, which is how persistent stack
	// problems end up causing re-buffering (§4.3's QoE impact).
	DeliveryStretchMS float64
	// Transient marks a buffered-delivery outlier: the stack held the
	// chunk's bytes and released them at once, so the player additionally
	// sees a compressed last-byte delay (huge instantaneous throughput).
	Transient bool
	// TransientDelayMS is the buffering duration for transient chunks.
	TransientDelayMS float64
}

// Sample draws chunk chunkIdx's stack behaviour.
func (sp StackProfile) Sample(chunkIdx int, r *stats.Rand) ChunkDDS {
	var out ChunkDDS
	if sp.PersistentDDSMS > 0 {
		// Persistent sessions pay on (almost) every chunk, with wobble,
		// and the starved event loop stretches delivery too.
		out.DDSms = sp.PersistentDDSMS * r.Uniform(0.6, 1.5)
		out.DeliveryStretchMS = sp.PersistentDDSMS * r.Uniform(0.3, 0.8)
		// Occasionally the runtime freezes outright (GC pause, modal
		// dialog, plugin hang): seconds of stack delay on a clean
		// network — the stalls behind §4.3's "download stack problems
		// are worse for sessions with re-buffering".
		if r.Bool(sp.FreezeProb) {
			out.DDSms += r.Uniform(sp.FreezeMinMS, sp.FreezeMaxMS)
		}
	} else if r.Bool(0.04) {
		// Clean sessions still see occasional small stack delays
		// (GC pauses, event-loop hiccups).
		out.DDSms = r.Exp(60)
	}
	if chunkIdx == 0 {
		out.DDSms += sp.FirstChunkExtraMS
	}
	if r.Bool(sp.TransientProb) {
		out.Transient = true
		out.TransientDelayMS = r.Exp(sp.TransientMeanMS) + 300
		out.DDSms += out.TransientDelayMS
	}
	return out
}
