package clientstack

import (
	"math"

	"vidperf/internal/stats"
)

// RenderOutcome is one chunk's rendering-path result (the paper's avgfr,
// dropfr and vis player metrics).
type RenderOutcome struct {
	FramesTotal   int
	FramesDropped int
	AvgFPS        float64
	Visible       bool
	Hardware      bool // rendered on the GPU
}

// DroppedFrac returns the dropped-frame fraction.
func (o RenderOutcome) DroppedFrac() float64 {
	if o.FramesTotal == 0 {
		return 0
	}
	return float64(o.FramesDropped) / float64(o.FramesTotal)
}

// browserRenderOverhead returns the baseline CPU-path drop fraction due to
// the browser's Flash/plugin architecture, calibrated to Figs. 21–22:
// integrated-runtime browsers (Chrome, Safari/OS X) outperform
// out-of-process ones (Firefox protected mode), and unpopular browsers
// (Yandex, Vivaldi, Opera, Safari-on-Windows) are worst.
func browserRenderOverhead(p Platform) float64 {
	switch {
	case p.Browser == Safari && p.OS == MacOS:
		return 0.010 // native HLS
	case p.Browser == Chrome:
		return 0.015 // integrated PPAPI Flash
	case p.Browser == Edge:
		return 0.030
	case p.Browser == InternetExplorer:
		return 0.040
	case p.Browser == Firefox:
		return 0.035 // out-of-process Flash
	case p.Browser == Opera:
		return 0.090
	case p.Browser == Vivaldi:
		return 0.110
	case p.Browser == Safari: // Safari outside OS X
		return 0.130
	case p.Browser == Yandex:
		return 0.150
	case p.Browser == SeaMonkey:
		return 0.120
	default:
		return 0.100
	}
}

// RenderChunk models the demux/decode/render pipeline for one chunk.
//
// downloadRate is the paper's sec/sec measure: seconds of video delivered
// per wall-clock second (τ / (D_FB + D_LB)). Below 1.0 the decoder starves;
// the paper's Fig. 19 threshold of 1.5 sec/sec is where parse/decode slack
// suffices and drops flatten. CPU load raises drops steeply once the cores
// saturate (Fig. 20), bitrate adds per-frame decode cost, and hidden
// players drop frames by design to save CPU.
func RenderChunk(p Platform, visible bool, downloadRate float64, bitrateKbps int,
	fps float64, durationSec float64, bufferedSec float64, r *stats.Rand) RenderOutcome {

	total := int(math.Round(fps * durationSec))
	out := RenderOutcome{FramesTotal: total, Visible: visible, Hardware: p.GPU}
	if total == 0 {
		return out
	}

	if !visible {
		// Hidden tab or minimized window: frames dropped deliberately.
		out.FramesDropped = int(float64(total) * r.Uniform(0.85, 1.0))
		out.AvgFPS = fps * (1 - out.DroppedFrac())
		return out
	}

	var dropFrac float64
	if p.GPU {
		// Hardware rendering: near-zero drops regardless of load.
		dropFrac = r.Exp(0.004)
	} else {
		dropFrac = browserRenderOverhead(p)

		// Starvation term: frames that miss their presentation deadline
		// because data arrives slower than real time. Buffered video
		// hides modest shortfalls (the paper's 5.7% of low-rate chunks
		// with good framerate).
		if downloadRate < 1.5 {
			starve := (1.5 - math.Max(downloadRate, 0)) / 1.5 // 0..1
			shield := math.Min(bufferedSec/20.0, 0.8)         // buffer hides up to 80%
			dropFrac += 0.45 * starve * starve * (1 - shield) * 2.2
		}

		// CPU saturation: software decode demands ~0.35 of one core at the
		// top rung; against the machine's cores plus background load the
		// drop rate turns superlinear as utilization approaches 1
		// (Fig. 20's curve).
		decodeDemand := 0.35 * float64(bitrateKbps) / 3000.0 // of one core
		util := p.CPULoad + decodeDemand/float64(maxI(p.CPUCores, 1))
		if util > 0.6 {
			over := (util - 0.6) / 0.4
			dropFrac += 0.10 * over * over
		}
		if util > 1.0 {
			dropFrac += 0.25 * (util - 1.0)
		}
	}

	dropFrac *= r.Uniform(0.7, 1.35) // per-chunk noise
	if dropFrac < 0 {
		dropFrac = 0
	}
	if dropFrac > 0.95 {
		dropFrac = 0.95
	}
	out.FramesDropped = int(dropFrac * float64(total))
	out.AvgFPS = fps * (1 - out.DroppedFrac())
	return out
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
