package clientstack

import (
	"testing"

	"vidperf/internal/stats"
)

func TestStrings(t *testing.T) {
	if Windows.String() != "Windows" || MacOS.String() != "Mac" || Linux.String() != "Linux" {
		t.Error("OS strings wrong")
	}
	if Chrome.String() != "Chrome" || Yandex.String() != "Yandex" {
		t.Error("Browser strings wrong")
	}
	if (Platform{OS: Windows, Browser: Safari}).UserAgent() != "Safari/Windows" {
		t.Error("UserAgent wrong")
	}
}

func TestPopularBrowsers(t *testing.T) {
	for _, b := range []Browser{Chrome, Firefox, InternetExplorer, Safari, Edge} {
		if !b.Popular() {
			t.Errorf("%v should be popular", b)
		}
	}
	for _, b := range []Browser{Opera, Vivaldi, Yandex, SeaMonkey, OtherBrowser} {
		if b.Popular() {
			t.Errorf("%v should be unpopular", b)
		}
	}
}

func TestStackProfileOrdering(t *testing.T) {
	// Mean persistent D_DS (session-weighted) must reproduce Table 5's
	// ordering: Safari off-Mac >> Firefox/other >> Chrome.
	meanFor := func(p Platform) float64 {
		r := stats.NewRand(7)
		var s stats.Summary
		for i := 0; i < 4000; i++ {
			s.Add(NewStackProfile(p, r).PersistentDDSMS)
		}
		return s.Mean()
	}
	safariWin := meanFor(Platform{OS: Windows, Browser: Safari})
	firefoxWin := meanFor(Platform{OS: Windows, Browser: Firefox})
	chromeWin := meanFor(Platform{OS: Windows, Browser: Chrome})
	safariMac := meanFor(Platform{OS: MacOS, Browser: Safari})
	if !(safariWin > firefoxWin && firefoxWin > chromeWin) {
		t.Errorf("ordering violated: safariWin=%.0f firefoxWin=%.0f chromeWin=%.0f",
			safariWin, firefoxWin, chromeWin)
	}
	if safariMac >= safariWin/3 {
		t.Errorf("Safari on Mac (%.0f) should be far cleaner than on Windows (%.0f)",
			safariMac, safariWin)
	}
}

func TestFirstChunkExtra(t *testing.T) {
	r := stats.NewRand(8)
	sp := NewStackProfile(Platform{OS: Windows, Browser: Chrome}, r)
	if sp.FirstChunkExtraMS < 50 || sp.FirstChunkExtraMS > 3000 {
		t.Errorf("first-chunk extra %.0f ms implausible (median target ~300)", sp.FirstChunkExtraMS)
	}
	var first, later stats.Summary
	for i := 0; i < 3000; i++ {
		first.Add(sp.Sample(0, r).DDSms)
		later.Add(sp.Sample(3, r).DDSms)
	}
	if first.Mean() < later.Mean()+100 {
		t.Errorf("first chunk D_DS %.0f not well above later %.0f", first.Mean(), later.Mean())
	}
}

func TestTransientRate(t *testing.T) {
	r := stats.NewRand(9)
	sp := NewStackProfile(Platform{OS: Windows, Browser: Chrome}, r)
	n, transients := 200000, 0
	for i := 0; i < n; i++ {
		c := sp.Sample(2, r)
		if c.Transient {
			transients++
			if c.TransientDelayMS < 300 {
				t.Fatalf("transient delay %.0f below floor", c.TransientDelayMS)
			}
			if c.DDSms < c.TransientDelayMS {
				t.Fatal("transient delay not included in DDS")
			}
		}
	}
	got := float64(transients) / float64(n)
	// Paper: 0.32% of chunks.
	if got < 0.002 || got > 0.005 {
		t.Errorf("transient rate %.4f, want ~0.0032", got)
	}
}

func TestRenderHiddenPlayerDropsByDesign(t *testing.T) {
	r := stats.NewRand(10)
	p := Platform{OS: Windows, Browser: Chrome, CPUCores: 4}
	out := RenderChunk(p, false, 2.0, 1000, 30, 6, 30, r)
	if out.DroppedFrac() < 0.8 {
		t.Errorf("hidden player dropped only %.2f", out.DroppedFrac())
	}
	if out.Visible {
		t.Error("visibility flag wrong")
	}
}

func TestRenderGPUCleans(t *testing.T) {
	r := stats.NewRand(11)
	gpu := Platform{OS: Windows, Browser: Chrome, CPUCores: 4, GPU: true, CPULoad: 0.9}
	var s stats.Summary
	for i := 0; i < 2000; i++ {
		s.Add(RenderChunk(gpu, true, 0.8, 3000, 30, 6, 0, r).DroppedFrac())
	}
	if s.Mean() > 0.02 {
		t.Errorf("GPU rendering dropped %.3f on average, want ~0", s.Mean())
	}
}

func TestRenderRateThreshold(t *testing.T) {
	// Fig. 19: drops fall as download rate rises, flattening by 1.5 sec/sec.
	r := stats.NewRand(12)
	p := Platform{OS: Windows, Browser: Firefox, CPUCores: 4}
	meanAt := func(rate float64) float64 {
		var s stats.Summary
		for i := 0; i < 3000; i++ {
			s.Add(RenderChunk(p, true, rate, 1000, 30, 6, 2, r).DroppedFrac())
		}
		return s.Mean()
	}
	slow, mid, good, fast := meanAt(0.5), meanAt(1.2), meanAt(1.6), meanAt(3.0)
	if !(slow > mid && mid > good) {
		t.Errorf("drops not decreasing with rate: %.3f %.3f %.3f", slow, mid, good)
	}
	if slow < 0.15 {
		t.Errorf("starved chunks dropped only %.3f, want >15%%", slow)
	}
	// Beyond the threshold the curve flattens (Fig. 19's plateau).
	if good-fast > 0.02 {
		t.Errorf("rate beyond 1.5 still improves drops materially: %.3f -> %.3f", good, fast)
	}
}

func TestRenderBufferShieldsStarvation(t *testing.T) {
	r := stats.NewRand(13)
	p := Platform{OS: Windows, Browser: Chrome, CPUCores: 4}
	var bare, shielded stats.Summary
	for i := 0; i < 3000; i++ {
		bare.Add(RenderChunk(p, true, 0.8, 1000, 30, 6, 0, r).DroppedFrac())
		shielded.Add(RenderChunk(p, true, 0.8, 1000, 30, 6, 25, r).DroppedFrac())
	}
	if shielded.Mean() >= bare.Mean() {
		t.Errorf("buffer did not shield starvation: %.3f vs %.3f", shielded.Mean(), bare.Mean())
	}
}

func TestRenderCPULoadCurve(t *testing.T) {
	// Fig. 20: with software rendering, drops climb as background load
	// consumes the cores.
	r := stats.NewRand(14)
	meanAt := func(load float64) float64 {
		p := Platform{OS: MacOS, Browser: Firefox, CPUCores: 8, CPULoad: load}
		var s stats.Summary
		for i := 0; i < 3000; i++ {
			s.Add(RenderChunk(p, true, 3.0, 1500, 30, 6, 20, r).DroppedFrac())
		}
		return s.Mean()
	}
	low, mid, high := meanAt(0.1), meanAt(0.6), meanAt(0.95)
	if !(high > mid && mid >= low) {
		t.Errorf("drops not increasing with CPU load: %.3f %.3f %.3f", low, mid, high)
	}
	if high < low+0.01 {
		t.Errorf("CPU effect too weak: %.3f -> %.3f", low, high)
	}
}

func TestRenderBrowserOrdering(t *testing.T) {
	// Figs. 21–22: unpopular browsers drop more than Chrome at equal
	// conditions.
	r := stats.NewRand(15)
	meanFor := func(b Browser, os OS) float64 {
		p := Platform{OS: os, Browser: b, CPUCores: 4}
		var s stats.Summary
		for i := 0; i < 3000; i++ {
			s.Add(RenderChunk(p, true, 2.0, 1000, 30, 6, 20, r).DroppedFrac())
		}
		return s.Mean()
	}
	chrome := meanFor(Chrome, Windows)
	yandex := meanFor(Yandex, Windows)
	safariWin := meanFor(Safari, Windows)
	safariMac := meanFor(Safari, MacOS)
	if yandex < 2*chrome {
		t.Errorf("Yandex (%.3f) should drop far more than Chrome (%.3f)", yandex, chrome)
	}
	if safariWin < 2*safariMac {
		t.Errorf("Safari/Windows (%.3f) should drop far more than Safari/Mac (%.3f)", safariWin, safariMac)
	}
}

func TestRenderFrameAccounting(t *testing.T) {
	r := stats.NewRand(16)
	p := Platform{OS: Windows, Browser: Chrome, CPUCores: 4}
	out := RenderChunk(p, true, 2.0, 1000, 30, 6, 10, r)
	if out.FramesTotal != 180 {
		t.Errorf("frames = %d, want 180", out.FramesTotal)
	}
	if out.FramesDropped < 0 || out.FramesDropped > out.FramesTotal {
		t.Errorf("dropped %d of %d", out.FramesDropped, out.FramesTotal)
	}
	if out.AvgFPS < 0 || out.AvgFPS > 30 {
		t.Errorf("avg fps = %v", out.AvgFPS)
	}
	zero := RenderChunk(p, true, 2.0, 1000, 30, 0, 10, r)
	if zero.FramesTotal != 0 || zero.DroppedFrac() != 0 {
		t.Error("zero-duration chunk mishandled")
	}
}
