// Package clientstack models the two client-side execution paths the paper
// instruments: the download stack (player ← Flash ← browser ← OS), whose
// buffering inflates first-byte delay and fakes instantaneous throughput
// (§4.3), and the rendering path (demux → decode → render), which drops
// frames when the CPU cannot keep up (§4.4).
package clientstack

// OS is the client operating system family.
type OS int

// Operating systems observed in the paper's dataset (Windows 88.5%,
// OS X 9.38%, remainder Linux/other).
const (
	Windows OS = iota
	MacOS
	Linux
)

// String implements fmt.Stringer.
func (o OS) String() string {
	switch o {
	case Windows:
		return "Windows"
	case MacOS:
		return "Mac"
	case Linux:
		return "Linux"
	}
	return "Other"
}

// Browser is the client browser family.
type Browser int

// Browsers, major first (paper §3: Chrome 43%, Firefox 37%, IE 13%,
// Safari 6%, other 2%; the "other" bucket holds the long tail Fig. 22
// breaks out).
const (
	Chrome Browser = iota
	Firefox
	InternetExplorer
	Safari
	Edge
	Opera
	Vivaldi
	Yandex
	SeaMonkey
	OtherBrowser
)

// String implements fmt.Stringer.
func (b Browser) String() string {
	switch b {
	case Chrome:
		return "Chrome"
	case Firefox:
		return "Firefox"
	case InternetExplorer:
		return "IE"
	case Safari:
		return "Safari"
	case Edge:
		return "Edge"
	case Opera:
		return "Opera"
	case Vivaldi:
		return "Vivaldi"
	case Yandex:
		return "Yandex"
	case SeaMonkey:
		return "SeaMonkey"
	}
	return "Other"
}

// Popular reports whether the browser is one of the paper's four major
// families (everything else lands in the "Other" analysis bucket).
func (b Browser) Popular() bool {
	switch b {
	case Chrome, Firefox, InternetExplorer, Safari, Edge:
		return true
	}
	return false
}

// Platform is one client machine's execution environment.
type Platform struct {
	OS      OS
	Browser Browser
	// GPU reports hardware rendering availability; without it the CPU
	// decodes and renders every frame.
	GPU bool
	// CPUCores is the machine's core count.
	CPUCores int
	// CPULoad is the background utilization fraction of the machine's
	// cores in [0, 1) contributed by other applications.
	CPULoad float64
	// FlashInternal marks browsers that ship an integrated Flash runtime
	// (e.g. Chrome's PPAPI) or native HLS (Safari on OS X); these have the
	// most efficient delivery and rendering paths.
	FlashInternal bool
}

// UserAgent renders a compact OS/browser label used in session records.
func (p Platform) UserAgent() string {
	return p.Browser.String() + "/" + p.OS.String()
}
