package cdn

import (
	"math"
	"testing"

	"vidperf/internal/backend"
	"vidperf/internal/cache"
	"vidperf/internal/sim"
	"vidperf/internal/stats"
)

func newTestServer(cfg Config) *Server {
	r := stats.NewRand(42)
	be := backend.New(backend.Config{}, r.Split())
	return NewServer(0, 0, cfg, be, r.Split())
}

// serveSync runs one request to completion on a fresh engine and returns
// the result plus the engine time at first byte.
func serveSync(s *Server, req Request) (ServeResult, float64) {
	var eng sim.Engine
	var out ServeResult
	var at float64
	s.Serve(&eng, req, func(res ServeResult) { out = res; at = eng.Now() })
	eng.Run()
	return out, at
}

func TestMissThenHitLatencyGap(t *testing.T) {
	s := newTestServer(Config{})
	req := Request{Key: 1, SizeBytes: 500000, VideoID: 1, ChunkIndex: 0}

	miss, missAt := serveSync(s, req)
	if miss.Level != cache.LevelMiss {
		t.Fatalf("first serve level = %v, want miss", miss.Level)
	}
	if miss.DBEms <= 0 {
		t.Error("miss without backend latency")
	}
	if !miss.RetryTimer {
		t.Error("miss should trip the open-retry timer")
	}
	if missAt < miss.ServerLatencyMS()-1e-6 {
		t.Errorf("first byte at %v before server latency %v elapsed", missAt, miss.ServerLatencyMS())
	}

	hit, _ := serveSync(s, req)
	if hit.Level != cache.LevelRAM {
		t.Fatalf("second serve level = %v, want ram", hit.Level)
	}
	if hit.DBEms != 0 {
		t.Error("hit has backend latency")
	}
	// The paper's calibration: miss latency ~40x hit latency in the median.
	if miss.ServerLatencyMS() < 5*hit.ServerLatencyMS() {
		t.Errorf("miss %v not ≫ hit %v", miss.ServerLatencyMS(), hit.ServerLatencyMS())
	}
}

func TestRetryTimerSeparatesDiskFromRAM(t *testing.T) {
	// Fill RAM past capacity so an early object is evicted to disk,
	// then observe the ~10 ms retry gap on the disk hit.
	cfg := Config{RAMBytes: 1 << 20, DiskBytes: 1 << 30}
	s := newTestServer(cfg)
	reqA := Request{Key: 100, SizeBytes: 600000}
	serveSync(s, reqA) // miss -> cached (RAM+disk)
	serveSync(s, Request{Key: 101, SizeBytes: 600000})
	serveSync(s, Request{Key: 102, SizeBytes: 600000}) // evicts key 100 from RAM

	res, _ := serveSync(s, reqA)
	if res.Level != cache.LevelDisk {
		t.Fatalf("level = %v, want disk", res.Level)
	}
	if !res.RetryTimer {
		t.Error("disk read should trip the retry timer")
	}
	if res.DreadMS < 10 {
		t.Errorf("disk Dread %v below the 10 ms retry floor", res.DreadMS)
	}
	if res.DBEms != 0 {
		t.Error("disk hit charged backend latency")
	}
}

func TestHitStatsDistribution(t *testing.T) {
	s := newTestServer(Config{})
	var hitLat, missLat []float64
	for k := uint64(0); k < 300; k++ {
		req := Request{Key: k, SizeBytes: 400000}
		m, _ := serveSync(s, req)
		missLat = append(missLat, m.ServerLatencyMS())
		h, _ := serveSync(s, req)
		hitLat = append(hitLat, h.ServerLatencyMS())
	}
	medHit, medMiss := stats.Median(hitLat), stats.Median(missLat)
	// Paper: median 2 ms (hit) vs 80 ms (miss). Accept generous bands.
	if medHit > 6 {
		t.Errorf("median hit latency %.2f ms, want ~2", medHit)
	}
	if medMiss < 40 || medMiss > 160 {
		t.Errorf("median miss latency %.2f ms, want ~80", medMiss)
	}
	if medMiss/medHit < 10 {
		t.Errorf("miss/hit ratio %.1f, want order-of-magnitude", medMiss/medHit)
	}
}

func TestFIFOQueueWait(t *testing.T) {
	// One worker, two simultaneous requests: the second must wait for the
	// first's local work and record a larger Dwait.
	cfg := Config{Workers: 1}
	s := newTestServer(cfg)
	var eng sim.Engine
	var first, second ServeResult
	gotFirst := false
	s.Serve(&eng, Request{Key: 1, SizeBytes: 400000}, func(r ServeResult) { first = r; gotFirst = true })
	s.Serve(&eng, Request{Key: 2, SizeBytes: 400000}, func(r ServeResult) { second = r })
	eng.Run()
	if !gotFirst {
		t.Fatal("first request never finished")
	}
	if second.DwaitMS <= first.DwaitMS {
		t.Errorf("queued request Dwait %v not above first %v", second.DwaitMS, first.DwaitMS)
	}
}

func TestPinFirstChunks(t *testing.T) {
	s := newTestServer(Config{PinFirstChunks: true})
	res, _ := serveSync(s, Request{Key: 7, SizeBytes: 400000, ChunkIndex: 0})
	if !res.Pinned || res.Level != cache.LevelRAM || res.DBEms != 0 {
		t.Errorf("pinned first chunk not served from memory: %+v", res)
	}
	// Non-first chunks still miss.
	res2, _ := serveSync(s, Request{Key: 8, SizeBytes: 400000, ChunkIndex: 1})
	if res2.Pinned || res2.Level != cache.LevelMiss {
		t.Errorf("chunk 1 should miss: %+v", res2)
	}
}

func TestPrefetchWarmsNextChunks(t *testing.T) {
	s := newTestServer(Config{Prefetch: 2})
	req := Request{
		Key: 1, SizeBytes: 400000, ChunkIndex: 0,
		Next: []NextChunk{{Key: 2, SizeBytes: 400000}, {Key: 3, SizeBytes: 400000}, {Key: 4, SizeBytes: 400000}},
	}
	serveSync(s, req) // miss triggers prefetch of keys 2 and 3 (not 4)
	if !s.Cache().Contains(2) || !s.Cache().Contains(3) {
		t.Error("prefetch did not warm next chunks")
	}
	if s.Cache().Contains(4) {
		t.Error("prefetch exceeded configured depth")
	}
	res, _ := serveSync(s, Request{Key: 2, SizeBytes: 400000, ChunkIndex: 1})
	if res.Level == cache.LevelMiss {
		t.Error("prefetched chunk still missed")
	}
}

func TestServerMetrics(t *testing.T) {
	s := newTestServer(Config{})
	if !math.IsNaN(s.MeanDCDNms()) {
		t.Error("MeanDCDN before any request should be NaN")
	}
	serveSync(s, Request{Key: 1, SizeBytes: 100000})
	serveSync(s, Request{Key: 1, SizeBytes: 100000})
	if s.Served != 2 || s.BytesServed != 200000 {
		t.Errorf("served=%d bytes=%d", s.Served, s.BytesServed)
	}
	if s.RetryHits != 1 {
		t.Errorf("retry hits = %d, want 1 (the miss)", s.RetryHits)
	}
	if s.MeanDCDNms() <= 0 {
		t.Error("MeanDCDN not positive")
	}
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newTestServer(Config{Policy: "nope"})
}

func TestFleetMapping(t *testing.T) {
	f := NewFleet(FleetConfig{NumPoPs: 3, ServersPerPoP: 4}, 9)
	if f.NumServers() != 12 {
		t.Fatalf("servers = %d", f.NumServers())
	}
	// Cache-focused: same video -> same server, regardless of session.
	a := f.ServerFor(1, 77, 77, 111)
	b := f.ServerFor(1, 77, 77, 222)
	if a != b {
		t.Error("cache-focused mapping not session-independent")
	}
	if a.PoPID != 1 {
		t.Errorf("server PoP = %d, want 1", a.PoPID)
	}
	// Different videos spread across slots.
	servers := make(map[int]bool)
	for vid := 0; vid < 100; vid++ {
		servers[f.ServerFor(0, vid, vid, 1).ID] = true
	}
	if len(servers) < 3 {
		t.Errorf("mapping used only %d server(s)", len(servers))
	}
	// Out-of-range PoP falls back safely.
	if f.ServerFor(-1, 5, 5, 1) == nil || f.ServerFor(99, 5, 5, 1) == nil {
		t.Error("out-of-range PoP not handled")
	}
}

func TestFleetPartitioningSpreadsPopular(t *testing.T) {
	f := NewFleet(FleetConfig{NumPoPs: 1, ServersPerPoP: 8, PartitionTopRanks: 100}, 10)
	// A popular video (rank < 100) should land on many servers across
	// sessions; an unpopular one stays pinned.
	popServers := make(map[int]bool)
	coldServers := make(map[int]bool)
	for sess := uint64(0); sess < 200; sess++ {
		popServers[f.ServerFor(0, 5, 5, sess).ID] = true
		coldServers[f.ServerFor(0, 5000, 5000, sess).ID] = true
	}
	if len(popServers) < 4 {
		t.Errorf("popular video spread over %d servers, want several", len(popServers))
	}
	if len(coldServers) != 1 {
		t.Errorf("unpopular video on %d servers, want 1", len(coldServers))
	}
}

// Calibration: with RAM sized well below the hot set, a Zipf stream should
// produce the paper's layered outcome: most chunks from RAM, a meaningful
// disk share (retry timer), and a small backend miss rate.
func TestLayeredServeShares(t *testing.T) {
	cfg := Config{RAMBytes: 256 << 20, DiskBytes: 8 << 30}
	s := newTestServer(cfg)
	r := stats.NewRand(11)
	z := stats.NewZipf(3000, 0.9)
	var eng sim.Engine
	counts := map[cache.Level]int{}
	n := 8000
	for i := 0; i < n; i++ {
		key := uint64(z.Sample(r))
		req := Request{Key: key, SizeBytes: 450000}
		s.Serve(&eng, req, func(res ServeResult) { counts[res.Level]++ })
		eng.Run()
	}
	ram := float64(counts[cache.LevelRAM]) / float64(n)
	disk := float64(counts[cache.LevelDisk]) / float64(n)
	miss := float64(counts[cache.LevelMiss]) / float64(n)
	if ram < 0.4 {
		t.Errorf("RAM share %.2f too low", ram)
	}
	if disk <= 0.02 {
		t.Errorf("disk share %.2f too low for the retry-timer finding", disk)
	}
	if miss > 0.40 {
		t.Errorf("miss share %.2f too high", miss)
	}
	t.Logf("shares: ram=%.2f disk=%.2f miss=%.2f", ram, disk, miss)
}
