// Package cdn models the Apache-Traffic-Server-like caching proxy fleet
// the paper instruments: a FIFO request queue drained by a worker pool, a
// multi-level RAM+disk cache, the 10 ms asynchronous open-read-retry timer
// (the root cause of Fig. 5's bimodal Dread), backend fetches on misses,
// and the cache-focused client-to-server mapping that produces the
// load-performance paradox of §4.1.
//
// Every request is served with a per-chunk latency breakdown —
// Dwait, Dopen, Dread, D_BE — matching the paper's Table 2 CDN
// instrumentation.
package cdn

import (
	"math"

	"vidperf/internal/backend"
	"vidperf/internal/cache"
	"vidperf/internal/sim"
	"vidperf/internal/stats"
)

// Config parameterizes one CDN server. Zero fields take defaults
// calibrated to the paper's Fig. 5 (median hit 2 ms, miss ~80 ms,
// ~35% of chunks hitting the 10 ms retry timer).
type Config struct {
	RAMBytes  int64  // main-memory cache size (default 2 GiB)
	DiskBytes int64  // disk cache size (default 64 GiB)
	Policy    string // cache policy at both levels (default "lru")

	Workers     int     // threadpool size (default 16)
	OpenRetryMS float64 // ATS open-read retry timer (default 10 ms)

	RAMReadMedianMS  float64 // in-memory first-byte read (default 0.6 ms)
	DiskSeekMedianMS float64 // disk seek+open (default 4 ms)
	DiskReadMBps     float64 // disk sequential rate (default 400 MB/s)
	OpenMedianMS     float64 // header parse + cache-open attempt (default 0.5 ms)

	// Prefetch is the number of subsequent chunks fetched from the backend
	// after a miss (§4.1 take-away; default 0 = off).
	Prefetch int
	// PinFirstChunks serves chunk 0 of every video from memory
	// unconditionally (§4.3 take-away: cache the first chunk of every
	// video to cut startup delay).
	PinFirstChunks bool
}

func (c Config) withDefaults() Config {
	if c.RAMBytes == 0 {
		c.RAMBytes = 2 << 30
	}
	if c.DiskBytes == 0 {
		c.DiskBytes = 64 << 30
	}
	if c.Policy == "" {
		c.Policy = "lru"
	}
	if c.Workers == 0 {
		c.Workers = 16
	}
	if c.OpenRetryMS == 0 {
		c.OpenRetryMS = 10
	}
	if c.RAMReadMedianMS == 0 {
		c.RAMReadMedianMS = 0.6
	}
	if c.DiskSeekMedianMS == 0 {
		c.DiskSeekMedianMS = 4
	}
	if c.DiskReadMBps == 0 {
		c.DiskReadMBps = 400
	}
	if c.OpenMedianMS == 0 {
		c.OpenMedianMS = 0.5
	}
	return c
}

// Request identifies one chunk fetch arriving at a server.
type Request struct {
	Key        uint64
	SizeBytes  int64
	VideoID    int
	ChunkIndex int
	// Next lists the session's subsequent chunks (key+size), used only
	// when prefetching is enabled.
	Next []NextChunk
	// BackendFactor scales the backend latency D_BE of a miss on this
	// request (timeline brownout phases; 0 means unscaled). The latency
	// sample itself is drawn as usual, so a factor of 1 is byte-identical
	// to no factor at all.
	BackendFactor float64
}

// backendFactor resolves the request's effective D_BE multiplier.
func (r Request) backendFactor() float64 {
	if r.BackendFactor <= 0 {
		return 1
	}
	return r.BackendFactor
}

// NextChunk is a prefetch candidate.
type NextChunk struct {
	Key       uint64
	SizeBytes int64
}

// ServeResult is the per-chunk CDN-side latency breakdown (Table 2).
type ServeResult struct {
	DwaitMS float64 // FIFO queue wait before a worker picked the request
	DopenMS float64 // header read until first cache-open attempt
	DreadMS float64 // first-byte read incl. retry timer and disk/socket work
	DBEms   float64 // backend latency (0 on hits)

	Level      cache.Level // where the chunk was found
	RetryTimer bool        // the 10 ms open-retry fired
	Pinned     bool        // served from the pinned first-chunk store
}

// DCDNms is the CDN service latency D_CDN = Dwait + Dopen + Dread.
func (sr ServeResult) DCDNms() float64 { return sr.DwaitMS + sr.DopenMS + sr.DreadMS }

// ServerLatencyMS is the total server-side contribution to first-byte
// delay: D_CDN + D_BE.
func (sr ServeResult) ServerLatencyMS() float64 { return sr.DCDNms() + sr.DBEms }

// CacheHit reports whether the chunk was served without a backend fetch.
func (sr ServeResult) CacheHit() bool { return sr.Level != cache.LevelMiss }

// Server is one caching proxy.
type Server struct {
	ID    int
	PoPID int

	cfg     Config
	cache   *cache.MultiLevel
	backend *backend.Service
	r       *stats.Rand

	busy  int
	queue []pendingReq

	// Aggregate metrics for the load/performance analysis.
	Served      int64
	BytesServed int64
	RetryHits   int64
	BusyMS      float64
	SumDCDNms   float64
}

type pendingReq struct {
	req       Request
	arrivedMS float64
	done      func(ServeResult)
}

// NewServer builds a server with its own cache and backend sampler.
func NewServer(id, popID int, cfg Config, be *backend.Service, r *stats.Rand) *Server {
	cfg = cfg.withDefaults()
	ram, ok := cache.NewPolicy(cfg.Policy, cfg.RAMBytes)
	if !ok {
		panic("cdn: unknown cache policy " + cfg.Policy)
	}
	disk, _ := cache.NewPolicy(cfg.Policy, cfg.DiskBytes)
	return &Server{
		ID:      id,
		PoPID:   popID,
		cfg:     cfg,
		cache:   cache.NewMultiLevel(ram, disk),
		backend: be,
		r:       r,
	}
}

// Cache exposes the server's cache for inspection and warmup.
func (s *Server) Cache() *cache.MultiLevel { return s.cache }

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// MeanDCDNms returns the server's average D_CDN over all served requests.
func (s *Server) MeanDCDNms() float64 {
	if s.Served == 0 {
		return math.NaN()
	}
	return s.SumDCDNms / float64(s.Served)
}

// Serve schedules the handling of req on the simulation engine and calls
// done with the latency breakdown at the moment the chunk's first byte is
// written to the socket.
func (s *Server) Serve(eng *sim.Engine, req Request, done func(ServeResult)) {
	p := pendingReq{req: req, arrivedMS: eng.Now(), done: done}
	if s.busy < s.cfg.Workers {
		s.start(eng, p)
	} else {
		s.queue = append(s.queue, p)
	}
}

// start runs a request on a free worker at the current engine time.
func (s *Server) start(eng *sim.Engine, p pendingReq) {
	s.busy++
	// Queue wait: time in FIFO plus a small accept/dispatch overhead
	// (the paper observes Dwait < 1 ms for most chunks). The dispatch
	// overhead occupies the worker, so it is scheduled below.
	dispatch := s.r.Uniform(0.02, 0.4)
	res := ServeResult{
		DwaitMS: (eng.Now() - p.arrivedMS) + dispatch,
		DopenMS: s.r.LogNormal(math.Log(s.cfg.OpenMedianMS), 0.4),
	}

	if s.cfg.PinFirstChunks && p.req.ChunkIndex == 0 {
		res.Level = cache.LevelRAM
		res.Pinned = true
		res.DreadMS = s.ramReadMS()
		s.finish(eng, p, res, dispatch)
		return
	}

	res.Level = s.cache.Lookup(p.req.Key, p.req.SizeBytes)
	switch res.Level {
	case cache.LevelRAM:
		res.DreadMS = s.ramReadMS()
	case cache.LevelDisk:
		// Not in memory: the first open attempt fails and the async
		// retry timer fires before the disk read completes.
		res.RetryTimer = true
		s.RetryHits++
		res.DreadMS = s.cfg.OpenRetryMS + s.diskReadMS(p.req.SizeBytes)
	case cache.LevelMiss:
		res.RetryTimer = true
		s.RetryHits++
		res.DBEms = s.backend.FetchLatencyMS() * p.req.backendFactor()
		// Local work: retry timer + writing the backend's first bytes
		// through to the socket (backend fetch and delivery are
		// pipelined; the wait itself is accounted in D_BE).
		res.DreadMS = s.cfg.OpenRetryMS + s.r.Uniform(0.2, 1.0)
		key, size := p.req.Key, p.req.SizeBytes
		eng.After(res.DBEms, func(float64) {
			s.cache.Insert(key, size)
		})
		s.prefetch(eng, p.req)
	}
	s.finish(eng, p, res, dispatch)
}

// finish accounts for worker occupancy and schedules the completion
// callback at first-byte time.
func (s *Server) finish(eng *sim.Engine, p pendingReq, res ServeResult, dispatch float64) {
	localWork := dispatch + res.DopenMS + res.DreadMS
	firstByteDelay := localWork + res.DBEms

	s.Served++
	s.BytesServed += p.req.SizeBytes
	s.BusyMS += localWork
	s.SumDCDNms += res.DCDNms()

	// The worker is event-driven: it is released after the local work;
	// waiting on the backend does not occupy a thread.
	eng.After(localWork, func(float64) {
		s.busy--
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(eng, next)
		}
	})
	done := p.done
	eng.After(firstByteDelay, func(float64) { done(res) })
}

// prefetch warms the cache with the session's subsequent chunks after a
// miss (ablation A3). Prefetched fills arrive one backend latency later.
func (s *Server) prefetch(eng *sim.Engine, req Request) {
	n := s.cfg.Prefetch
	for i := 0; i < n && i < len(req.Next); i++ {
		nc := req.Next[i]
		if s.cache.Contains(nc.Key) {
			continue
		}
		lat := s.backend.FetchLatencyMS() * req.backendFactor()
		key, size := nc.Key, nc.SizeBytes
		eng.After(lat, func(float64) { s.cache.Insert(key, size) })
	}
}

func (s *Server) ramReadMS() float64 {
	return s.r.LogNormal(math.Log(s.cfg.RAMReadMedianMS), 0.5)
}

func (s *Server) diskReadMS(size int64) float64 {
	seek := s.r.LogNormal(math.Log(s.cfg.DiskSeekMedianMS), 0.6)
	transfer := float64(size) / (s.cfg.DiskReadMBps * 1000) // MB/s -> bytes/ms
	return seek + transfer
}
