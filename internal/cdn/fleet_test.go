package cdn

import (
	"testing"

	"vidperf/internal/sim"
)

// TestPoPFleetMatchesFullFleet is the sharding precondition: a PoP's
// servers must behave identically whether the PoP was built alone
// (NewPoPFleet) or as part of the whole deployment (NewFleet), because
// their RNG streams derive from (seed, popID) only.
func TestPoPFleetMatchesFullFleet(t *testing.T) {
	cfg := FleetConfig{NumPoPs: 4, ServersPerPoP: 3}
	full := NewFleet(cfg, 77)
	for pop := 0; pop < 4; pop++ {
		part := NewPoPFleet(cfg, 77, pop)
		if got := part.NumServers(); got != 3 {
			t.Fatalf("pop %d: partial fleet has %d servers", pop, got)
		}
		fullEng, partEng := &sim.Engine{}, &sim.Engine{}
		for i := 0; i < 50; i++ {
			req := Request{Key: uint64(i * 31), SizeBytes: 700000, VideoID: i, ChunkIndex: 0}
			var fullRes, partRes ServeResult
			full.ServerFor(pop, i, i, uint64(i)).Serve(fullEng, req, func(r ServeResult) { fullRes = r })
			part.ServerFor(pop, i, i, uint64(i)).Serve(partEng, req, func(r ServeResult) { partRes = r })
			fullEng.Run()
			partEng.Run()
			if fullRes != partRes {
				t.Fatalf("pop %d req %d: partial %+v vs full %+v", pop, i, partRes, fullRes)
			}
		}
	}
}

func TestPoPFleetClamping(t *testing.T) {
	cfg := FleetConfig{NumPoPs: 3, ServersPerPoP: 2}
	part := NewPoPFleet(cfg, 1, 2)
	if got := part.BuiltPoPs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("built PoPs = %v, want [2]", got)
	}
	// Requests for unbuilt or out-of-range PoPs fall back to the built one.
	for _, pop := range []int{-1, 0, 1, 2, 99} {
		srv := part.ServerFor(pop, 5, 5, 1)
		if srv == nil || srv.PoPID != 2 {
			t.Fatalf("pop %d mapped to %+v, want the built PoP 2", pop, srv)
		}
	}
	if part.PoPServers(0) != nil {
		t.Error("unbuilt PoP returned servers")
	}
	// An out-of-range popID to NewPoPFleet clamps to 0.
	if got := NewPoPFleet(cfg, 1, 99).BuiltPoPs(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("clamped built PoPs = %v, want [0]", got)
	}
}

func TestFleetServersOrderedByID(t *testing.T) {
	f := NewFleet(FleetConfig{NumPoPs: 3, ServersPerPoP: 4}, 5)
	srvs := f.Servers()
	if len(srvs) != 12 {
		t.Fatalf("got %d servers", len(srvs))
	}
	for i, srv := range srvs {
		if srv.ID != i {
			t.Fatalf("server at position %d has ID %d", i, srv.ID)
		}
	}
}
