package cdn

import (
	"vidperf/internal/backend"
	"vidperf/internal/stats"
)

// FleetConfig describes the CDN deployment: PoPs, servers per PoP, the
// per-server configuration, and the client-mapping policy.
type FleetConfig struct {
	NumPoPs       int // default 6 (geo.DefaultPoPs)
	ServersPerPoP int // default 14 (≈85 servers total, paper §3)

	Server  Config
	Backend backend.Config

	// PartitionTopRanks spreads videos with rank < PartitionTopRanks over
	// all servers of a PoP (per-session hashing) instead of pinning them
	// to one cache-focused server — the §4.1 load-balancing take-away
	// (ablation A4). 0 disables partitioning.
	PartitionTopRanks int
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.NumPoPs == 0 {
		c.NumPoPs = 6
	}
	if c.ServersPerPoP == 0 {
		c.ServersPerPoP = 14
	}
	return c
}

// Fleet is the deployed server set plus the traffic-engineering mapping.
type Fleet struct {
	cfg     FleetConfig
	Servers []*Server // indexed popID*ServersPerPoP + slot
}

// NewFleet builds all servers, each with an independent RNG stream and
// backend sampler derived from r.
func NewFleet(cfg FleetConfig, r *stats.Rand) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{cfg: cfg}
	for pop := 0; pop < cfg.NumPoPs; pop++ {
		for slot := 0; slot < cfg.ServersPerPoP; slot++ {
			id := pop*cfg.ServersPerPoP + slot
			be := backend.New(cfg.Backend, r.Split())
			f.Servers = append(f.Servers, NewServer(id, pop, cfg.Server, be, r.Split()))
		}
	}
	return f
}

// Config returns the effective fleet configuration.
func (f *Fleet) Config() FleetConfig { return f.cfg }

// NumServers returns the total server count.
func (f *Fleet) NumServers() int { return len(f.Servers) }

// ServerFor implements the paper's cache-focused traffic engineering:
// within the client's PoP, a video is consistently hashed to one server so
// that server's cache stays hot for it. When partitioning is enabled, the
// most popular ranks are instead spread per-session across the PoP's
// servers to balance load.
func (f *Fleet) ServerFor(popID, videoID, videoRank int, sessionID uint64) *Server {
	if popID < 0 || popID >= f.cfg.NumPoPs {
		popID = 0
	}
	var slot int
	if f.cfg.PartitionTopRanks > 0 && videoRank < f.cfg.PartitionTopRanks {
		slot = int(mix(uint64(videoID)*0x9e3779b97f4a7c15^sessionID) % uint64(f.cfg.ServersPerPoP))
	} else {
		slot = int(mix(uint64(videoID)) % uint64(f.cfg.ServersPerPoP))
	}
	return f.Servers[popID*f.cfg.ServersPerPoP+slot]
}

// PoPServers returns the servers of one PoP (for warmup and inspection).
func (f *Fleet) PoPServers(popID int) []*Server {
	if popID < 0 || popID >= f.cfg.NumPoPs {
		return nil
	}
	start := popID * f.cfg.ServersPerPoP
	return f.Servers[start : start+f.cfg.ServersPerPoP]
}

// mix is a 64-bit finalizer (splitmix64) used for consistent hashing.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
