package cdn

import (
	"fmt"

	"vidperf/internal/backend"
	"vidperf/internal/stats"
)

// FleetConfig describes the CDN deployment: PoPs, servers per PoP, the
// per-server configuration, and the client-mapping policy.
type FleetConfig struct {
	NumPoPs       int // default 6 (geo.DefaultPoPs)
	ServersPerPoP int // default 14 (≈85 servers total, paper §3)

	Server  Config
	Backend backend.Config

	// PartitionTopRanks spreads videos with rank < PartitionTopRanks over
	// all servers of a PoP (per-session hashing) instead of pinning them
	// to one cache-focused server — the §4.1 load-balancing take-away
	// (ablation A4). 0 disables partitioning.
	PartitionTopRanks int
}

// WithDefaults returns the effective configuration with zero fields
// replaced by their defaults. Callers that partition work by PoP use it to
// learn the effective NumPoPs before any server is built.
func (c FleetConfig) WithDefaults() FleetConfig {
	if c.NumPoPs == 0 {
		c.NumPoPs = 6
	}
	if c.ServersPerPoP == 0 {
		c.ServersPerPoP = 14
	}
	return c
}

// Fleet is the deployed server set plus the traffic-engineering mapping.
// A Fleet may be partial: NewPoPFleet builds only one PoP's servers, so
// shards of a partitioned simulation pay for exactly the servers their
// sessions can reach. Server identity (ID, RNG stream, backend sampler)
// depends only on (seed, popID, slot), never on which other PoPs exist,
// so a partial fleet's servers behave identically to the same servers
// inside a full fleet.
type Fleet struct {
	cfg  FleetConfig
	pops [][]*Server // indexed by PoP ID; nil for PoPs not built
}

// NewFleet builds every PoP's servers from the scenario seed.
func NewFleet(cfg FleetConfig, seed uint64) *Fleet {
	cfg = cfg.WithDefaults()
	f := &Fleet{cfg: cfg, pops: make([][]*Server, cfg.NumPoPs)}
	for pop := 0; pop < cfg.NumPoPs; pop++ {
		f.pops[pop] = buildPoP(cfg, seed, pop)
	}
	return f
}

// NewPoPFleet builds a partial fleet holding only popID's servers. An
// out-of-range popID clamps to 0, mirroring ServerFor's fallback.
func NewPoPFleet(cfg FleetConfig, seed uint64, popID int) *Fleet {
	cfg = cfg.WithDefaults()
	if popID < 0 || popID >= cfg.NumPoPs {
		popID = 0
	}
	f := &Fleet{cfg: cfg, pops: make([][]*Server, cfg.NumPoPs)}
	f.pops[popID] = buildPoP(cfg, seed, popID)
	return f
}

// buildPoP constructs one PoP's server slice. The PoP's RNG root is
// derived from (seed, popID) alone — not from a shared sequential stream —
// which is what makes sharded and whole-fleet construction agree.
func buildPoP(cfg FleetConfig, seed uint64, popID int) []*Server {
	r := stats.NewRand(mix(seed^0x5eed5eed5eed5eed) ^ mix(uint64(popID)+1))
	servers := make([]*Server, cfg.ServersPerPoP)
	for slot := 0; slot < cfg.ServersPerPoP; slot++ {
		id := popID*cfg.ServersPerPoP + slot
		be := backend.New(cfg.Backend, r.Split())
		servers[slot] = NewServer(id, popID, cfg.Server, be, r.Split())
	}
	return servers
}

// Config returns the effective fleet configuration.
func (f *Fleet) Config() FleetConfig { return f.cfg }

// NumServers returns the number of servers actually built.
func (f *Fleet) NumServers() int {
	n := 0
	for _, srvs := range f.pops {
		n += len(srvs)
	}
	return n
}

// Servers returns every built server in ID order.
func (f *Fleet) Servers() []*Server {
	out := make([]*Server, 0, f.NumServers())
	for _, srvs := range f.pops {
		out = append(out, srvs...)
	}
	return out
}

// BuiltPoPs lists the PoP IDs this fleet holds servers for, ascending.
func (f *Fleet) BuiltPoPs() []int {
	var out []int
	for pop, srvs := range f.pops {
		if srvs != nil {
			out = append(out, pop)
		}
	}
	return out
}

// ClampPoP maps an arbitrary PoP ID onto one this fleet serves: in-range
// built PoPs map to themselves, everything else to the first built PoP.
// Partitioners must use the same rule so every session lands on a shard
// whose fleet can serve it.
func (f *Fleet) ClampPoP(popID int) int {
	if popID >= 0 && popID < len(f.pops) && f.pops[popID] != nil {
		return popID
	}
	for pop, srvs := range f.pops {
		if srvs != nil {
			return pop
		}
	}
	panic("cdn: fleet has no servers")
}

// ServerFor implements the paper's cache-focused traffic engineering:
// within the client's PoP, a video is consistently hashed to one server so
// that server's cache stays hot for it. When partitioning is enabled, the
// most popular ranks are instead spread per-session across the PoP's
// servers to balance load.
func (f *Fleet) ServerFor(popID, videoID, videoRank int, sessionID uint64) *Server {
	popID = f.ClampPoP(popID)
	var slot int
	if f.cfg.PartitionTopRanks > 0 && videoRank < f.cfg.PartitionTopRanks {
		slot = int(mix(uint64(videoID)*0x9e3779b97f4a7c15^sessionID) % uint64(f.cfg.ServersPerPoP))
	} else {
		slot = int(mix(uint64(videoID)) % uint64(f.cfg.ServersPerPoP))
	}
	return f.pops[popID][slot]
}

// PoPServers returns the servers of one PoP (for warmup and inspection),
// or nil when the PoP is out of range or not built in this fleet.
func (f *Fleet) PoPServers(popID int) []*Server {
	if popID < 0 || popID >= len(f.pops) {
		return nil
	}
	return f.pops[popID]
}

// String summarizes the fleet (useful in shard logs).
func (f *Fleet) String() string {
	return fmt.Sprintf("fleet{%d/%d PoPs, %d servers}",
		len(f.BuiltPoPs()), f.cfg.NumPoPs, f.NumServers())
}

// mix is a 64-bit finalizer (splitmix64) used for consistent hashing and
// for deriving per-PoP RNG roots.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
