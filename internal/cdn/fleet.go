package cdn

import (
	"fmt"

	"vidperf/internal/backend"
	"vidperf/internal/stats"
)

// FleetConfig describes the CDN deployment: PoPs, servers per PoP, the
// per-server configuration, and the client-mapping policy.
type FleetConfig struct {
	NumPoPs       int // default 6 (geo.DefaultPoPs)
	ServersPerPoP int // default 14 (≈85 servers total, paper §3)

	Server  Config
	Backend backend.Config

	// PartitionTopRanks spreads videos with rank < PartitionTopRanks over
	// all servers of a PoP (per-session hashing) instead of pinning them
	// to one cache-focused server — the §4.1 load-balancing take-away
	// (ablation A4). 0 disables partitioning.
	PartitionTopRanks int
}

// WithDefaults returns the effective configuration with zero fields
// replaced by their defaults. Callers that partition work by PoP use it to
// learn the effective NumPoPs before any server is built.
func (c FleetConfig) WithDefaults() FleetConfig {
	if c.NumPoPs == 0 {
		c.NumPoPs = 6
	}
	if c.ServersPerPoP == 0 {
		c.ServersPerPoP = 14
	}
	return c
}

// Fleet is the deployed server set plus the traffic-engineering mapping.
// A Fleet may be partial: NewPoPFleet builds only one PoP's servers, so
// shards of a partitioned simulation pay for exactly the servers their
// sessions can reach. Server identity (ID, RNG stream, backend sampler)
// depends only on (seed, popID, slot), never on which other PoPs exist,
// so a partial fleet's servers behave identically to the same servers
// inside a full fleet.
type Fleet struct {
	cfg  FleetConfig
	pops [][]*Server // indexed by PoP ID; nil for PoPs not built
}

// NewFleet builds every PoP's servers from the scenario seed.
func NewFleet(cfg FleetConfig, seed uint64) *Fleet {
	cfg = cfg.WithDefaults()
	f := &Fleet{cfg: cfg, pops: make([][]*Server, cfg.NumPoPs)}
	for pop := 0; pop < cfg.NumPoPs; pop++ {
		f.pops[pop] = buildPoP(cfg, seed, pop)
	}
	return f
}

// NewPoPFleet builds a partial fleet holding only popID's servers. An
// out-of-range popID clamps to 0, mirroring ServerFor's fallback.
func NewPoPFleet(cfg FleetConfig, seed uint64, popID int) *Fleet {
	cfg = cfg.WithDefaults()
	if popID < 0 || popID >= cfg.NumPoPs {
		popID = 0
	}
	f := &Fleet{cfg: cfg, pops: make([][]*Server, cfg.NumPoPs)}
	f.pops[popID] = buildPoP(cfg, seed, popID)
	return f
}

// NewSlotFleet builds a partial fleet holding a single server: slot
// `slot` of PoP popID. The per-PoP RNG stream is advanced past the
// earlier slots exactly as buildPoP would, so the one server is
// identical to the same slot inside a full PoP — the property that lets
// the session runner shard below PoP granularity. An out-of-range popID
// clamps to 0 (mirroring ServerFor's fallback); slot must be a value
// SlotFor can return, i.e. in [0, ServersPerPoP).
func NewSlotFleet(cfg FleetConfig, seed uint64, popID, slot int) *Fleet {
	cfg = cfg.WithDefaults()
	if popID < 0 || popID >= cfg.NumPoPs {
		popID = 0
	}
	if slot < 0 || slot >= cfg.ServersPerPoP {
		panic("cdn: NewSlotFleet slot out of range")
	}
	f := &Fleet{cfg: cfg, pops: make([][]*Server, cfg.NumPoPs)}
	r := popRand(seed, popID)
	for s := 0; s < slot; s++ {
		r.Split() // backend stream of the earlier slot
		r.Split() // server stream of the earlier slot
	}
	servers := make([]*Server, cfg.ServersPerPoP)
	servers[slot] = buildSlot(cfg, popID, slot, r)
	f.pops[popID] = servers
	return f
}

// popRand derives a PoP's RNG root from (seed, popID) alone — not from a
// shared sequential stream — which is what makes sharded and whole-fleet
// construction agree.
func popRand(seed uint64, popID int) *stats.Rand {
	return stats.NewRand(mix(seed^0x5eed5eed5eed5eed) ^ mix(uint64(popID)+1))
}

// buildPoP constructs one PoP's server slice.
func buildPoP(cfg FleetConfig, seed uint64, popID int) []*Server {
	r := popRand(seed, popID)
	servers := make([]*Server, cfg.ServersPerPoP)
	for slot := 0; slot < cfg.ServersPerPoP; slot++ {
		servers[slot] = buildSlot(cfg, popID, slot, r)
	}
	return servers
}

// buildSlot constructs one server, drawing its backend and server RNG
// streams from the PoP stream in slot order.
func buildSlot(cfg FleetConfig, popID, slot int, r *stats.Rand) *Server {
	id := popID*cfg.ServersPerPoP + slot
	be := backend.New(cfg.Backend, r.Split())
	return NewServer(id, popID, cfg.Server, be, r.Split())
}

// Config returns the effective fleet configuration.
func (f *Fleet) Config() FleetConfig { return f.cfg }

// NumServers returns the number of servers actually built. Slot fleets
// count only their single server.
func (f *Fleet) NumServers() int {
	n := 0
	for _, srvs := range f.pops {
		for _, srv := range srvs {
			if srv != nil {
				n++
			}
		}
	}
	return n
}

// Servers returns every built server in ID order.
func (f *Fleet) Servers() []*Server {
	out := make([]*Server, 0, f.NumServers())
	for _, srvs := range f.pops {
		for _, srv := range srvs {
			if srv != nil {
				out = append(out, srv)
			}
		}
	}
	return out
}

// BuiltPoPs lists the PoP IDs this fleet holds servers for, ascending.
func (f *Fleet) BuiltPoPs() []int {
	var out []int
	for pop, srvs := range f.pops {
		if srvs != nil {
			out = append(out, pop)
		}
	}
	return out
}

// ClampPoP maps an arbitrary PoP ID onto one this fleet serves: in-range
// built PoPs map to themselves, everything else to the first built PoP.
// Partitioners must use the same rule so every session lands on a shard
// whose fleet can serve it.
func (f *Fleet) ClampPoP(popID int) int {
	if popID >= 0 && popID < len(f.pops) && f.pops[popID] != nil {
		return popID
	}
	for pop, srvs := range f.pops {
		if srvs != nil {
			return pop
		}
	}
	panic("cdn: fleet has no servers")
}

// ServerFor implements the paper's cache-focused traffic engineering:
// within the client's PoP, a video is consistently hashed to one server so
// that server's cache stays hot for it. When partitioning is enabled, the
// most popular ranks are instead spread per-session across the PoP's
// servers to balance load.
func (f *Fleet) ServerFor(popID, videoID, videoRank int, sessionID uint64) *Server {
	popID = f.ClampPoP(popID)
	return f.pops[popID][SlotFor(f.cfg, videoID, videoRank, sessionID)]
}

// SlotFor returns the server slot within a PoP that ServerFor maps the
// (video, session) pair to. It is exported so partitioners can bucket
// sessions at server granularity before any server exists; cfg must be
// the effective configuration (FleetConfig.WithDefaults). A session
// touches exactly one slot for its whole lifetime — the video is fixed
// and, for partitioned top ranks, the hash includes the session ID but
// not the chunk — which is what makes per-server sharding sound.
func SlotFor(cfg FleetConfig, videoID, videoRank int, sessionID uint64) int {
	if cfg.PartitionTopRanks > 0 && videoRank < cfg.PartitionTopRanks {
		return int(mix(uint64(videoID)*0x9e3779b97f4a7c15^sessionID) % uint64(cfg.ServersPerPoP))
	}
	return int(mix(uint64(videoID)) % uint64(cfg.ServersPerPoP))
}

// PoPServers returns the servers of one PoP (for warmup and inspection),
// or nil when the PoP is out of range or not built in this fleet.
func (f *Fleet) PoPServers(popID int) []*Server {
	if popID < 0 || popID >= len(f.pops) {
		return nil
	}
	return f.pops[popID]
}

// String summarizes the fleet (useful in shard logs).
func (f *Fleet) String() string {
	return fmt.Sprintf("fleet{%d/%d PoPs, %d servers}",
		len(f.BuiltPoPs()), f.cfg.NumPoPs, f.NumServers())
}

// mix is a 64-bit finalizer (splitmix64) used for consistent hashing and
// for deriving per-PoP RNG roots.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
