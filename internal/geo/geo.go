// Package geo models the geography of the measurement: CDN points of
// presence, client locations, great-circle distances, and the propagation
// component of round-trip latency. The paper's network findings (persistent
// tail latency from distance, the 75%/25% non-US/US split of tail prefixes,
// close-by enterprise prefixes with bad latency) all hinge on this geometry.
package geo

import "math"

// Coord is a latitude/longitude pair in degrees.
type Coord struct {
	Lat, Lon float64
}

const earthRadiusKM = 6371.0

// DistanceKM returns the great-circle (haversine) distance between a and b
// in kilometers.
func DistanceKM(a, b Coord) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dlat := lat2 - lat1
	dlon := (b.Lon - a.Lon) * math.Pi / 180
	h := math.Sin(dlat/2)*math.Sin(dlat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dlon/2)*math.Sin(dlon/2)
	return 2 * earthRadiusKM * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PropagationRTTms converts a one-way fiber distance to a round-trip
// propagation delay in milliseconds. Light in fiber covers ~200 km/ms;
// real paths are longer than great circles, so pathStretch (typically
// 1.5–2.5) inflates the geometric distance.
func PropagationRTTms(distanceKM, pathStretch float64) float64 {
	return 2 * distanceKM * pathStretch / 200.0
}

// PoP is a CDN point of presence.
type PoP struct {
	ID   int
	Name string
	Loc  Coord
}

// DefaultPoPs returns the US CDN footprint used by the default scenario:
// six metro PoPs roughly matching a commercial provider's national build.
func DefaultPoPs() []PoP {
	return []PoP{
		{0, "us-west-1 (Sunnyvale)", Coord{37.37, -122.04}},
		{1, "us-west-2 (Seattle)", Coord{47.61, -122.33}},
		{2, "us-central (Dallas)", Coord{32.78, -96.80}},
		{3, "us-east-1 (Ashburn)", Coord{39.04, -77.49}},
		{4, "us-east-2 (New York)", Coord{40.71, -74.01}},
		{5, "us-southeast (Atlanta)", Coord{33.75, -84.39}},
	}
}

// NearestPoP returns the index within pops of the PoP closest to loc and
// the distance to it in kilometers. It panics if pops is empty.
func NearestPoP(loc Coord, pops []PoP) (idx int, distKM float64) {
	if len(pops) == 0 {
		panic("geo: NearestPoP with no PoPs")
	}
	idx, distKM = 0, DistanceKM(loc, pops[0].Loc)
	for i := 1; i < len(pops); i++ {
		if d := DistanceKM(loc, pops[i].Loc); d < distKM {
			idx, distKM = i, d
		}
	}
	return idx, distKM
}

// City is a weighted population center clients are drawn from.
type City struct {
	Name    string
	Country string // ISO-3166 alpha-2
	Loc     Coord
	Weight  float64 // relative share of client sessions
}

// USCities returns the domestic population centers for client sampling,
// weighted approximately by metro population.
func USCities() []City {
	return []City{
		{"New York", "US", Coord{40.71, -74.01}, 19.8},
		{"Los Angeles", "US", Coord{34.05, -118.24}, 12.5},
		{"Chicago", "US", Coord{41.88, -87.63}, 9.5},
		{"Dallas", "US", Coord{32.78, -96.80}, 7.6},
		{"Houston", "US", Coord{29.76, -95.37}, 7.1},
		{"Washington DC", "US", Coord{38.91, -77.04}, 6.3},
		{"Philadelphia", "US", Coord{39.95, -75.17}, 6.1},
		{"Miami", "US", Coord{25.76, -80.19}, 6.1},
		{"Atlanta", "US", Coord{33.75, -84.39}, 6.0},
		{"Boston", "US", Coord{42.36, -71.06}, 4.9},
		{"Phoenix", "US", Coord{33.45, -112.07}, 4.8},
		{"San Francisco", "US", Coord{37.77, -122.42}, 4.7},
		{"Seattle", "US", Coord{47.61, -122.33}, 4.0},
		{"Minneapolis", "US", Coord{44.98, -93.27}, 3.6},
		{"Denver", "US", Coord{39.74, -104.99}, 2.9},
		{"Salt Lake City", "US", Coord{40.76, -111.89}, 1.2},
		{"Kansas City", "US", Coord{39.10, -94.58}, 2.1},
		{"Portland", "US", Coord{45.52, -122.68}, 2.5},
		{"Charlotte", "US", Coord{35.23, -80.84}, 2.6},
		{"Anchorage", "US", Coord{61.22, -149.90}, 0.4},
		{"Honolulu", "US", Coord{21.31, -157.86}, 1.0},
	}
}

// InternationalCities returns the non-US population centers. The paper's
// dataset is >93% North American but the tail-latency prefixes are 75%
// international, spread over 96 countries; a broad footprint with small
// weights reproduces that.
func InternationalCities() []City {
	return []City{
		{"Toronto", "CA", Coord{43.65, -79.38}, 6.2},
		{"Vancouver", "CA", Coord{49.28, -123.12}, 2.5},
		{"Mexico City", "MX", Coord{19.43, -99.13}, 4.0},
		{"London", "GB", Coord{51.51, -0.13}, 5.5},
		{"Paris", "FR", Coord{48.86, 2.35}, 3.2},
		{"Berlin", "DE", Coord{52.52, 13.41}, 3.0},
		{"Madrid", "ES", Coord{40.42, -3.70}, 2.2},
		{"Rome", "IT", Coord{41.90, 12.50}, 2.0},
		{"Amsterdam", "NL", Coord{52.37, 4.89}, 1.6},
		{"Stockholm", "SE", Coord{59.33, 18.07}, 1.1},
		{"Warsaw", "PL", Coord{52.23, 21.01}, 1.3},
		{"Moscow", "RU", Coord{55.76, 37.62}, 2.1},
		{"Istanbul", "TR", Coord{41.01, 28.98}, 1.6},
		{"Tel Aviv", "IL", Coord{32.09, 34.78}, 1.0},
		{"Dubai", "AE", Coord{25.20, 55.27}, 1.0},
		{"Mumbai", "IN", Coord{19.08, 72.88}, 2.8},
		{"Singapore", "SG", Coord{1.35, 103.82}, 1.5},
		{"Hong Kong", "HK", Coord{22.32, 114.17}, 1.5},
		{"Tokyo", "JP", Coord{35.68, 139.69}, 2.4},
		{"Seoul", "KR", Coord{37.57, 126.98}, 1.6},
		{"Taipei", "TW", Coord{25.03, 121.57}, 1.0},
		{"Manila", "PH", Coord{14.60, 120.98}, 1.2},
		{"Sydney", "AU", Coord{-33.87, 151.21}, 2.0},
		{"Auckland", "NZ", Coord{-36.85, 174.76}, 0.6},
		{"São Paulo", "BR", Coord{-23.55, -46.63}, 2.6},
		{"Buenos Aires", "AR", Coord{-34.60, -58.38}, 1.2},
		{"Bogotá", "CO", Coord{4.71, -74.07}, 0.9},
		{"Santiago", "CL", Coord{-33.45, -70.67}, 0.8},
		{"Johannesburg", "ZA", Coord{-26.20, 28.05}, 0.8},
		{"Lagos", "NG", Coord{6.52, 3.38}, 0.7},
		{"Cairo", "EG", Coord{30.04, 31.24}, 0.8},
		{"Nairobi", "KE", Coord{-1.29, 36.82}, 0.4},
	}
}
