package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	ny := Coord{40.71, -74.01}
	la := Coord{34.05, -118.24}
	sf := Coord{37.77, -122.42}
	london := Coord{51.51, -0.13}

	cases := []struct {
		name    string
		a, b    Coord
		wantKM  float64
		tolFrac float64
	}{
		{"NY-LA", ny, la, 3940, 0.03},
		{"SF-NY", sf, ny, 4130, 0.03},
		{"NY-London", ny, london, 5570, 0.03},
	}
	for _, c := range cases {
		got := DistanceKM(c.a, c.b)
		if math.Abs(got-c.wantKM)/c.wantKM > c.tolFrac {
			t.Errorf("%s: got %.0f km, want ~%.0f km", c.name, got, c.wantKM)
		}
	}
}

func TestDistanceZeroAndSymmetry(t *testing.T) {
	a := Coord{37, -122}
	if d := DistanceKM(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	b := Coord{40, -74}
	if math.Abs(DistanceKM(a, b)-DistanceKM(b, a)) > 1e-9 {
		t.Error("distance not symmetric")
	}
}

func TestPropagationRTT(t *testing.T) {
	// 1000 km at stretch 1.0: RTT = 2*1000/200 = 10 ms.
	if got := PropagationRTTms(1000, 1.0); got != 10 {
		t.Errorf("RTT = %v, want 10", got)
	}
	// Stretch scales linearly.
	if got := PropagationRTTms(1000, 2.0); got != 20 {
		t.Errorf("RTT = %v, want 20", got)
	}
}

func TestNearestPoP(t *testing.T) {
	pops := DefaultPoPs()
	// A client in Oakland should map to Sunnyvale (PoP 0).
	idx, d := NearestPoP(Coord{37.80, -122.27}, pops)
	if idx != 0 {
		t.Errorf("Oakland → PoP %d (%s), want 0", idx, pops[idx].Name)
	}
	if d <= 0 || d > 120 {
		t.Errorf("Oakland distance = %v km", d)
	}
	// A client in Boston should map to New York (PoP 4).
	idx, _ = NearestPoP(Coord{42.36, -71.06}, pops)
	if idx != 4 {
		t.Errorf("Boston → PoP %d (%s), want 4 (New York)", idx, pops[idx].Name)
	}
}

func TestNearestPoPPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NearestPoP(Coord{0, 0}, nil)
}

func TestCityTablesSane(t *testing.T) {
	us := USCities()
	intl := InternationalCities()
	if len(us) < 15 {
		t.Errorf("only %d US cities", len(us))
	}
	if len(intl) < 25 {
		t.Errorf("only %d international cities", len(intl))
	}
	for _, c := range us {
		if c.Country != "US" {
			t.Errorf("US city %s has country %s", c.Name, c.Country)
		}
		if c.Weight <= 0 {
			t.Errorf("city %s has non-positive weight", c.Name)
		}
	}
	countries := make(map[string]bool)
	for _, c := range intl {
		if c.Country == "US" {
			t.Errorf("international city %s marked US", c.Name)
		}
		countries[c.Country] = true
	}
	if len(countries) < 20 {
		t.Errorf("international footprint covers only %d countries", len(countries))
	}
}

// Property: haversine distance satisfies non-negativity, symmetry, and an
// upper bound of half the Earth's circumference.
func TestDistanceMetricProperty(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Coord{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := Coord{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		if math.IsNaN(a.Lat) || math.IsNaN(a.Lon) || math.IsNaN(b.Lat) || math.IsNaN(b.Lon) {
			return true
		}
		d := DistanceKM(a, b)
		return d >= 0 && d <= 20016 && math.Abs(d-DistanceKM(b, a)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: NearestPoP always returns the argmin.
func TestNearestPoPIsArgminProperty(t *testing.T) {
	pops := DefaultPoPs()
	f := func(lat, lon float64) bool {
		loc := Coord{math.Mod(lat, 90), math.Mod(lon, 180)}
		if math.IsNaN(loc.Lat) || math.IsNaN(loc.Lon) {
			return true
		}
		idx, d := NearestPoP(loc, pops)
		for _, p := range pops {
			if DistanceKM(loc, p.Loc) < d-1e-9 {
				return false
			}
		}
		return math.Abs(DistanceKM(loc, pops[idx].Loc)-d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
