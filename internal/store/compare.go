// compare.go regression-diffs two sweeps cell-by-cell: the same cell
// name in the base and candidate sweeps is compared metric-by-metric
// against per-metric thresholds, and a cell present in the base but
// missing from the candidate is itself a regression. A sweep diffed
// against itself always reports zero regressions.
package store

import (
	"fmt"
	"math"
	"sort"
)

// Threshold is the allowed worsening for one metric. A delta in the
// worse direction is a regression only when it exceeds the allowance —
// landing exactly on the edge passes.
type Threshold struct {
	// Metric names the extracted metric to compare.
	Metric string `json:"metric"`
	// LowerIsWorse flips the worse direction: by default a higher
	// candidate value is worse (latency, rebuffer, retry share); set for
	// metrics where shrinking is the failure (hit ratio).
	LowerIsWorse bool `json:"lower_is_worse,omitempty"`
	// MaxAbs is the allowed absolute worsening.
	MaxAbs float64 `json:"max_abs"`
	// MaxRel is the allowed worsening as a fraction of the base value's
	// magnitude; the effective allowance is max(MaxAbs, MaxRel·|base|).
	MaxRel float64 `json:"max_rel"`
}

// allowance is the largest worsening the threshold tolerates for one
// base value.
func (t Threshold) allowance(base float64) float64 {
	return math.Max(t.MaxAbs, t.MaxRel*math.Abs(base))
}

// DefaultThresholds guards the paper's headline QoE metrics: tail
// startup delay and rebuffering, cache hit ratio, and the timer-retry
// share, each with a small absolute floor so noise near zero does not
// trip the relative bound.
func DefaultThresholds() []Threshold {
	return []Threshold{
		{Metric: QuantileMetric("startup_ms", 0.95), MaxAbs: 5, MaxRel: 0.05},
		{Metric: QuantileMetric("rebuffer_rate", 0.95), MaxAbs: 0.005, MaxRel: 0.05},
		{Metric: MetricHitRatio, LowerIsWorse: true, MaxAbs: 0.01, MaxRel: 0.02},
		{Metric: MetricRetryShare, MaxAbs: 0.005, MaxRel: 0.05},
	}
}

// MetricDiff is one metric's comparison inside one cell.
type MetricDiff struct {
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	New    float64 `json:"new"`
	// Delta is New - Base, regardless of direction.
	Delta float64 `json:"delta"`
	// Regression marks a worsening beyond the metric's allowance.
	Regression bool `json:"regression"`
}

// CellDiff is one cell's comparison across all thresholded metrics.
type CellDiff struct {
	Cell    string       `json:"cell"`
	Metrics []MetricDiff `json:"metrics"`
	// Regressions counts this cell's regressed metrics.
	Regressions int `json:"regressions"`
}

// SweepDiff is the full comparison of two sweeps.
type SweepDiff struct {
	Base string `json:"base"`
	New  string `json:"new"`
	// Cells holds the per-cell diffs for cells present in both sweeps,
	// in cell-name order.
	Cells []CellDiff `json:"cells"`
	// Missing lists base cells absent from the candidate sweep (each one
	// counts as a regression); Added lists candidate cells the base
	// lacks (informational).
	Missing []string `json:"missing,omitempty"`
	Added   []string `json:"added,omitempty"`
	// Regressions totals regressed metrics across cells plus missing
	// cells. Zero means the candidate is no worse than the base
	// everywhere.
	Regressions int `json:"regressions"`
}

// CompareSweeps diffs the candidate sweep against the base sweep
// cell-by-cell under the given thresholds (nil selects
// DefaultThresholds). A threshold whose metric a cell pair lacks is
// skipped for that pair — sweeps run without diagnosis simply have no
// diag metrics to regress.
func (s *Store) CompareSweeps(base, candidate string, thresholds []Threshold) (*SweepDiff, error) {
	for _, name := range []string{base, candidate} {
		if _, ok := s.sweeps[name]; !ok {
			return nil, fmt.Errorf("store: unknown sweep %q (have %v)", name, s.Sweeps())
		}
	}
	if thresholds == nil {
		thresholds = DefaultThresholds()
	}
	baseCells := make(map[string]Entry)
	for _, e := range s.Entries(base) {
		baseCells[e.Cell] = e
	}
	newCells := make(map[string]Entry)
	for _, e := range s.Entries(candidate) {
		newCells[e.Cell] = e
	}

	d := &SweepDiff{Base: base, New: candidate}
	names := make([]string, 0, len(baseCells))
	for name := range baseCells {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		be := baseCells[name]
		ne, ok := newCells[name]
		if !ok {
			d.Missing = append(d.Missing, name)
			d.Regressions++
			continue
		}
		cd := CellDiff{Cell: name}
		for _, t := range thresholds {
			bv, bok := be.Metrics[t.Metric]
			nv, nok := ne.Metrics[t.Metric]
			if !bok || !nok {
				continue
			}
			md := MetricDiff{Metric: t.Metric, Base: bv, New: nv, Delta: nv - bv}
			worsening := md.Delta
			if t.LowerIsWorse {
				worsening = -md.Delta
			}
			if worsening > t.allowance(bv) {
				md.Regression = true
				cd.Regressions++
			}
			cd.Metrics = append(cd.Metrics, md)
		}
		d.Regressions += cd.Regressions
		d.Cells = append(d.Cells, cd)
	}
	for name := range newCells {
		if _, ok := baseCells[name]; !ok {
			d.Added = append(d.Added, name)
		}
	}
	sort.Strings(d.Added)
	return d, nil
}
