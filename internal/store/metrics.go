// metrics.go is the extractor registry: the pipeline that reduces a
// telemetry.Snapshot to the flat scalar metrics the store indexes and
// the query layer ranks by.
package store

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vidperf/internal/telemetry"
)

// Quantiles are the per-sketch quantile levels the default registry
// extracts, published as "<sketch>_p50" … "<sketch>_p99".
var Quantiles = []float64{0.50, 0.90, 0.95, 0.99}

// QuantileMetric names the extracted metric for one sketch and level,
// e.g. QuantileMetric("startup_ms", 0.95) = "startup_ms_p95".
func QuantileMetric(sketch string, q float64) string {
	return fmt.Sprintf("%s_p%d", sketch, int(math.Round(q*100)))
}

// Derived ratio metrics the default registry publishes alongside the
// raw counters.
const (
	// MetricHitRatio is chunks_hit / chunks.
	MetricHitRatio = "hit_ratio"
	// MetricRetryShare is chunks_retry_timer / chunks.
	MetricRetryShare = "retry_share"
	// DiagSharePrefix + <label> is sessions_diag=<label> / sessions, one
	// metric per diagnosis cause present in the snapshot.
	DiagSharePrefix = "diag_share_"
)

// Extractor folds metrics extracted from one snapshot into out. An
// extractor must be a pure function of the snapshot so that ingesting
// the same snapshot always produces the same metrics.
type Extractor func(sn *telemetry.Snapshot, out map[string]float64)

// Registry is an ordered list of named extractors. Later extractors
// see (and may overwrite) earlier ones' keys; registration order is
// the only order that matters, so extraction is deterministic.
type Registry struct {
	names []string
	fns   []Extractor
}

// Register appends an extractor under a diagnostic name. Registering a
// name twice replaces the earlier extractor in place, keeping its
// position.
func (r *Registry) Register(name string, fn Extractor) {
	for i, n := range r.names {
		if n == name {
			r.fns[i] = fn
			return
		}
	}
	r.names = append(r.names, name)
	r.fns = append(r.fns, fn)
}

// Names lists the registered extractors in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.names...) }

// Extract runs every extractor over the snapshot and returns the
// merged metric map.
func (r *Registry) Extract(sn *telemetry.Snapshot) map[string]float64 {
	out := make(map[string]float64)
	for _, fn := range r.fns {
		fn(sn, out)
	}
	return out
}

// DefaultRegistry builds the standard extractor pipeline:
//
//   - counters: every snapshot counter verbatim (sessions, chunks,
//     chunks_hit, sessions_diag=<label>, sessions_window=<name>, …)
//   - ratios: hit_ratio and retry_share over the chunk counters
//   - quantiles: p50/p90/p95/p99 of every sketch, named
//     "<sketch>_p<level>"; empty sketches contribute nothing
//   - diag-shares: diag_share_<label> per diagnosis cause, the fraction
//     of sessions attributed to that cause
func DefaultRegistry() *Registry {
	r := &Registry{}
	r.Register("counters", extractCounters)
	r.Register("ratios", extractRatios)
	r.Register("quantiles", extractQuantiles)
	r.Register("diag-shares", extractDiagShares)
	return r
}

func extractCounters(sn *telemetry.Snapshot, out map[string]float64) {
	for name, v := range sn.Counters {
		out[name] = float64(v)
	}
}

func extractRatios(sn *telemetry.Snapshot, out map[string]float64) {
	chunks := sn.Counter(telemetry.CounterChunks)
	if chunks == 0 {
		return
	}
	out[MetricHitRatio] = float64(sn.Counter(telemetry.CounterChunksHit)) / float64(chunks)
	out[MetricRetryShare] = float64(sn.Counter(telemetry.CounterChunksRetryTimer)) / float64(chunks)
}

func extractQuantiles(sn *telemetry.Snapshot, out map[string]float64) {
	names := make([]string, 0, len(sn.Sketches))
	for name := range sn.Sketches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sk := sn.Sketch(name)
		if sk.N() == 0 {
			continue
		}
		for _, q := range Quantiles {
			out[QuantileMetric(name, q)] = sk.Quantile(q)
		}
	}
}

// extractDiagShares derives cause shares from the dimensioned session
// counters, so it needs no knowledge of the diagnosis label set — any
// "sessions_diag=<label>" counter yields a "diag_share_<label>" metric.
func extractDiagShares(sn *telemetry.Snapshot, out map[string]float64) {
	sessions := sn.Counter(telemetry.CounterSessions)
	if sessions == 0 {
		return
	}
	prefix := telemetry.CounterSessions + "_" + telemetry.DiagDim + "="
	for name, v := range sn.Counters {
		if label, ok := strings.CutPrefix(name, prefix); ok {
			out[DiagSharePrefix+label] = float64(v) / float64(sessions)
		}
	}
}
