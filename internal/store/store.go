// Package store is the campaign store: an indexed, single-file archive
// of labelled telemetry snapshots that a query layer can filter, group,
// and rank without re-reading the raw snapshot files.
//
// Snapshots enter through Add / IngestSnapshotFile / IngestDir. At
// ingest time the metric extractor registry (metrics.go) reduces each
// snapshot to a flat map of scalar metrics — counters, derived ratios,
// sketch quantiles, diagnosis cause shares — and the store keeps only
// that reduction plus the snapshot's labels. Entries are keyed by
// (sweep, cell); re-ingesting a cell replaces its entry, so ingest is
// idempotent, and the on-disk form sorts entries by key, so the store's
// bytes are identical no matter what order cells were ingested in.
//
// Each sweep additionally carries the spec content hash from its
// directory manifest (experiment.Manifest). Ingesting a directory whose
// manifest hash disagrees with the sweep's recorded hash is refused, so
// cells from incompatible spec configurations never silently share a
// league table.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vidperf/internal/experiment"
	"vidperf/internal/telemetry"
)

// Schema is the store wire-format version Write emits and Load
// requires.
const Schema = 1

// Entry is one ingested snapshot, reduced to its labels and extracted
// scalar metrics.
type Entry struct {
	// Sweep is the campaign name the snapshot was ingested under.
	Sweep string `json:"sweep"`
	// Cell names the snapshot inside its sweep (the snapshot's "cell"
	// label, or the file's base name for loose snapshots).
	Cell string `json:"cell"`
	// Labels is the snapshot's label set verbatim (spec, cell, seed,
	// diagnosis, axis:<name>, …).
	Labels map[string]string `json:"labels,omitempty"`
	// Metrics is the extractor registry's reduction of the snapshot.
	Metrics map[string]float64 `json:"metrics"`
}

// Key is the entry's unique identity inside the store.
func (e *Entry) Key() string { return e.Sweep + "/" + e.Cell }

// SweepMeta records per-sweep provenance.
type SweepMeta struct {
	// Spec is the generating spec's name ("" for sweeps built from loose
	// snapshots without a manifest).
	Spec string `json:"spec,omitempty"`
	// SpecHash is the spec content hash from the sweep directory's
	// manifest ("" for loose snapshots). Two ingests into one sweep must
	// agree on it when both have one.
	SpecHash string `json:"spec_hash,omitempty"`
	// Baseline names the sweep's baseline cell when known.
	Baseline string `json:"baseline,omitempty"`
}

// Store is the in-memory campaign store. The zero value is empty and
// ready to use.
type Store struct {
	sweeps  map[string]SweepMeta
	entries map[string]Entry // by Entry.Key()
	reg     *Registry
}

// fileFormat is the serialized store: sweeps and entries only, with
// entries in key order.
type fileFormat struct {
	Schema  int                  `json:"schema"`
	Sweeps  map[string]SweepMeta `json:"sweeps,omitempty"`
	Entries []Entry              `json:"entries"`
}

// New returns an empty store using the default extractor registry.
func New() *Store { return &Store{reg: DefaultRegistry()} }

// SetRegistry replaces the extractor registry used by subsequent
// ingests. Entries already in the store keep their extracted metrics.
func (s *Store) SetRegistry(r *Registry) { s.reg = r }

func (s *Store) init() {
	if s.sweeps == nil {
		s.sweeps = make(map[string]SweepMeta)
	}
	if s.entries == nil {
		s.entries = make(map[string]Entry)
	}
	if s.reg == nil {
		s.reg = DefaultRegistry()
	}
}

// Len reports how many entries the store holds.
func (s *Store) Len() int { return len(s.entries) }

// Sweeps lists the sweep names in the store, sorted.
func (s *Store) Sweeps() []string {
	out := make([]string, 0, len(s.sweeps))
	for name := range s.sweeps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Sweep returns a sweep's provenance record.
func (s *Store) Sweep(name string) (SweepMeta, bool) {
	m, ok := s.sweeps[name]
	return m, ok
}

// Entries returns the sweep's entries in cell-key order ("" selects
// every sweep). The slice is a copy; mutating it does not touch the
// store.
func (s *Store) Entries(sweep string) []Entry {
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		if sweep == "" || e.Sweep == sweep {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// claimSweep records (or re-checks) a sweep's provenance. A sweep
// already ingested from a different spec content is refused; loose
// ingests (empty meta fields) never conflict and never erase recorded
// provenance.
func (s *Store) claimSweep(name string, meta SweepMeta) error {
	s.init()
	prev, ok := s.sweeps[name]
	if !ok {
		s.sweeps[name] = meta
		return nil
	}
	if prev.SpecHash != "" && meta.SpecHash != "" && prev.SpecHash != meta.SpecHash {
		return fmt.Errorf("store: sweep %q already holds spec %q (hash %.12s…); refusing to mix in spec %q (hash %.12s…) — ingest under a different sweep name",
			name, prev.Spec, prev.SpecHash, meta.Spec, meta.SpecHash)
	}
	if prev.SpecHash == "" && meta.SpecHash != "" {
		s.sweeps[name] = meta
	}
	return nil
}

// Add ingests one snapshot under sweep/cell, replacing any previous
// entry with the same key.
func (s *Store) Add(sweep, cell string, sn *telemetry.Snapshot) error {
	if sweep == "" || cell == "" {
		return fmt.Errorf("store: Add requires a sweep and cell name (got %q/%q)", sweep, cell)
	}
	if err := s.claimSweep(sweep, SweepMeta{Spec: sn.Label("spec")}); err != nil {
		return err
	}
	labels := make(map[string]string, len(sn.Labels))
	for k, v := range sn.Labels {
		labels[k] = v
	}
	e := Entry{Sweep: sweep, Cell: cell, Labels: labels, Metrics: s.reg.Extract(sn)}
	s.entries[e.Key()] = e
	return nil
}

// IngestSnapshotFile ingests one snapshot file. The cell name is the
// snapshot's "cell" label, falling back to the file's base name without
// extension, so loose snapshots (vodsim -stream output, serve
// checkpoints) ingest without a manifest.
func (s *Store) IngestSnapshotFile(sweep, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	sn, err := telemetry.ReadSnapshot(f)
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	cell := sn.Label("cell")
	if cell == "" {
		base := filepath.Base(path)
		cell = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return s.Add(sweep, cell, sn)
}

// IngestDir ingests every cell of a sweep directory written by
// experiment.RunCampaign, driven by its manifest.json: the manifest
// supplies the cell list and the spec content hash the sweep is claimed
// under. It returns how many cells were ingested. A directory whose
// manifest hash conflicts with the sweep's recorded provenance is
// refused before any cell is read.
func (s *Store) IngestDir(sweep, dir string) (int, error) {
	m, err := experiment.ReadManifestFile(dir)
	if err != nil {
		return 0, fmt.Errorf("store: ingest %s: %w (run sweep -out to produce a manifest)", dir, err)
	}
	if err := s.claimSweep(sweep, SweepMeta{Spec: m.Spec, SpecHash: m.SpecHash, Baseline: m.Baseline}); err != nil {
		return 0, err
	}
	for _, c := range m.Cells {
		f, err := os.Open(filepath.Join(dir, c.File))
		if err != nil {
			return 0, fmt.Errorf("store: ingest %s: %w", dir, err)
		}
		sn, err := telemetry.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return 0, fmt.Errorf("store: ingest %s: %w", filepath.Join(dir, c.File), err)
		}
		if err := s.Add(sweep, c.Name, sn); err != nil {
			return 0, err
		}
	}
	return len(m.Cells), nil
}

// Write serializes the store. Entries are emitted in key order and maps
// marshal with sorted keys, so the bytes depend only on the store's
// content — never on ingest order.
func (s *Store) Write(w io.Writer) error {
	ff := fileFormat{Schema: Schema, Entries: s.Entries("")}
	if len(s.sweeps) > 0 {
		ff.Sweeps = s.sweeps
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(&ff); err != nil {
		return fmt.Errorf("store: write: %w", err)
	}
	return bw.Flush()
}

// Save writes the store to path atomically (write-then-rename), so a
// crash mid-save never leaves a truncated store behind.
func (s *Store) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.Write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Load reads a store written by Write, rejecting other schemas.
func Load(r io.Reader) (*Store, error) {
	var ff fileFormat
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&ff); err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	if ff.Schema != Schema {
		return nil, fmt.Errorf("store: schema %d, want %d", ff.Schema, Schema)
	}
	s := New()
	s.init()
	for name, meta := range ff.Sweeps {
		s.sweeps[name] = meta
	}
	for _, e := range ff.Entries {
		s.entries[e.Key()] = e
	}
	return s, nil
}

// Open loads the store at path; a missing file yields an empty store,
// so "ingest into a new store" and "ingest into an existing one" are
// the same command.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return New(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
