package store

import (
	"testing"

	"vidperf/internal/telemetry"
)

// TestRegistryRegisterReplaces: registering under an existing name
// replaces the extractor in place, keeping registration order.
func TestRegistryRegisterReplaces(t *testing.T) {
	r := &Registry{}
	r.Register("a", func(sn *telemetry.Snapshot, out map[string]float64) { out["a"] = 1 })
	r.Register("b", func(sn *telemetry.Snapshot, out map[string]float64) { out["b"] = 2 })
	r.Register("a", func(sn *telemetry.Snapshot, out map[string]float64) { out["a"] = 3 })

	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v, want [a b]", names)
	}
	got := r.Extract(snap(nil, nil, nil))
	if got["a"] != 3 || got["b"] != 2 {
		t.Fatalf("Extract after replace = %v", got)
	}
}

// TestSetRegistry: a custom registry governs subsequent ingests.
func TestSetRegistry(t *testing.T) {
	r := &Registry{}
	r.Register("only", func(sn *telemetry.Snapshot, out map[string]float64) {
		out["only"] = float64(sn.Counters["sessions"])
	})
	s := New()
	s.SetRegistry(r)
	if err := s.Add("sw", "c", snap(map[string]string{"cell": "c"}, map[string]uint64{"sessions": 9}, nil)); err != nil {
		t.Fatal(err)
	}
	e := s.Entries("sw")[0]
	if len(e.Metrics) != 1 || e.Metrics["only"] != 9 {
		t.Fatalf("custom registry metrics = %v", e.Metrics)
	}
}

// TestDiagShareMetrics: dimensioned diagnosis counters become
// diag_share_<label> fractions of the session total.
func TestDiagShareMetrics(t *testing.T) {
	sn := snap(map[string]string{"cell": "c"}, map[string]uint64{
		telemetry.CounterSessions: 8,
		telemetry.CounterSessions + "_" + telemetry.DiagDim + "=healthy":        6,
		telemetry.CounterSessions + "_" + telemetry.DiagDim + "=server-latency": 2,
	}, nil)
	got := DefaultRegistry().Extract(sn)
	if got[DiagSharePrefix+"healthy"] != 0.75 {
		t.Fatalf("diag_share_healthy = %g, want 0.75", got[DiagSharePrefix+"healthy"])
	}
	if got[DiagSharePrefix+"server-latency"] != 0.25 {
		t.Fatalf("diag_share_server-latency = %g, want 0.25", got[DiagSharePrefix+"server-latency"])
	}
}

// TestSaveErrorPaths: Save into a nonexistent directory fails and
// leaves no temp file behind.
func TestSaveErrorPaths(t *testing.T) {
	s := New()
	if err := s.Save("/nonexistent-dir/sub/store.json"); err == nil {
		t.Fatal("Save into a missing directory succeeded")
	}
}
