// query.go is the store's query engine: filter entries by label,
// optionally group them by a spec axis (or any label), and rank the
// resulting rows by a scalar metric. Results are fully deterministic —
// rows sort by value with the row key as tie-break, so the same store
// content always yields the same table.
package store

import (
	"fmt"
	"sort"
)

// Query selects and orders store entries.
type Query struct {
	// Sweep restricts the query to one sweep ("" = all sweeps).
	Sweep string
	// Where filters entries to those whose labels match every pair
	// exactly. Keys are raw label names; a spec axis is addressed as
	// "axis:<name>" exactly as the snapshots label it.
	Where map[string]string
	// GroupBy aggregates matching entries by a label's value. A bare
	// axis name resolves to the "axis:<name>" label when any matching
	// entry carries it; otherwise the name is used as a label verbatim.
	// Entries lacking the label are dropped from grouped results.
	GroupBy string
	// Rank names the metric to order by (required). Entries lacking the
	// metric are skipped; a grouped row averages the metric over its
	// members.
	Rank string
	// Desc orders best-first by descending value instead of ascending.
	Desc bool
	// Limit caps the number of rows returned (0 = no cap).
	Limit int
}

// Row is one ranked result.
type Row struct {
	// Key identifies the row: "sweep/cell" for ungrouped queries, the
	// group's label value for grouped ones.
	Key string `json:"key"`
	// Value is the ranked metric (group mean for grouped queries).
	Value float64 `json:"value"`
	// N counts the entries aggregated into the row (1 when ungrouped).
	N int `json:"n"`
}

// Query runs q against the store. Rows come back sorted by Value
// (ascending, or descending with q.Desc) with Key as the tie-break.
func (s *Store) Query(q Query) ([]Row, error) {
	if q.Rank == "" {
		return nil, fmt.Errorf("store: query needs a rank metric (e.g. startup_ms_p95, rebuffer_rate_p99, hit_ratio)")
	}
	if q.Sweep != "" {
		if _, ok := s.sweeps[q.Sweep]; !ok {
			return nil, fmt.Errorf("store: unknown sweep %q (have %v)", q.Sweep, s.Sweeps())
		}
	}
	var matched []Entry
	for _, e := range s.Entries(q.Sweep) {
		if matchLabels(e.Labels, q.Where) {
			matched = append(matched, e)
		}
	}

	var rows []Row
	if q.GroupBy == "" {
		for _, e := range matched {
			v, ok := e.Metrics[q.Rank]
			if !ok {
				continue
			}
			rows = append(rows, Row{Key: e.Key(), Value: v, N: 1})
		}
	} else {
		label := resolveGroupLabel(matched, q.GroupBy)
		sums := make(map[string]*Row)
		for _, e := range matched {
			g, ok := e.Labels[label]
			if !ok {
				continue
			}
			v, ok := e.Metrics[q.Rank]
			if !ok {
				continue
			}
			r := sums[g]
			if r == nil {
				r = &Row{Key: g}
				sums[g] = r
			}
			r.Value += v
			r.N++
		}
		for _, r := range sums {
			r.Value /= float64(r.N)
			rows = append(rows, *r)
		}
	}

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Value != rows[j].Value {
			if q.Desc {
				return rows[i].Value > rows[j].Value
			}
			return rows[i].Value < rows[j].Value
		}
		return rows[i].Key < rows[j].Key
	})
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows, nil
}

// Metrics lists every metric name present in the sweep's entries (""
// = all sweeps), sorted — the vocabulary Query.Rank accepts.
func (s *Store) Metrics(sweep string) []string {
	seen := make(map[string]bool)
	for _, e := range s.Entries(sweep) {
		for name := range e.Metrics {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func matchLabels(labels, where map[string]string) bool {
	for k, v := range where {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// resolveGroupLabel maps a bare axis name to its "axis:<name>" label
// when the matched entries carry one, so `-group-by zipf_s` works
// without the caller knowing the label encoding.
func resolveGroupLabel(entries []Entry, name string) string {
	axis := "axis:" + name
	for _, e := range entries {
		if _, ok := e.Labels[axis]; ok {
			return axis
		}
	}
	return name
}
