package store

import (
	"strings"
	"testing"
)

// queryStore builds a store with two sweeps of handcrafted entries:
// sweep "zipf" with an axis and sweep "other" to prove isolation.
func queryStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	add := func(sweep, cell string, labels map[string]string, counters map[string]uint64) {
		t.Helper()
		if err := s.Add(sweep, cell, snap(labels, counters, nil)); err != nil {
			t.Fatal(err)
		}
	}
	add("zipf", "s=0.6", map[string]string{"axis:zipf_s": "0.6", "preset": "paper"},
		map[string]uint64{"sessions": 100, "chunks": 1000, "chunks_hit": 750})
	add("zipf", "s=0.9", map[string]string{"axis:zipf_s": "0.9", "preset": "paper"},
		map[string]uint64{"sessions": 100, "chunks": 1000, "chunks_hit": 900})
	add("zipf", "s=1.1", map[string]string{"axis:zipf_s": "1.1", "preset": "flash"},
		map[string]uint64{"sessions": 100, "chunks": 1000, "chunks_hit": 950})
	add("other", "s=0.6", map[string]string{"axis:zipf_s": "0.6"},
		map[string]uint64{"sessions": 100, "chunks": 1000, "chunks_hit": 250})
	return s
}

func keys(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.Key
	}
	return out
}

// TestQueryRankAndDirection: rows order by value ascending by default,
// descending with Desc, and Limit truncates after ordering.
func TestQueryRankAndDirection(t *testing.T) {
	s := queryStore(t)
	rows, err := s.Query(Query{Sweep: "zipf", Rank: MetricHitRatio})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(keys(rows), " "); got != "zipf/s=0.6 zipf/s=0.9 zipf/s=1.1" {
		t.Fatalf("ascending order = %q", got)
	}
	rows, err = s.Query(Query{Sweep: "zipf", Rank: MetricHitRatio, Desc: true, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(keys(rows), " "); got != "zipf/s=1.1 zipf/s=0.9" {
		t.Fatalf("descending limited order = %q", got)
	}
}

// TestQueryWhereFilter: label filters restrict the rows; an unmatched
// filter yields no rows rather than an error.
func TestQueryWhereFilter(t *testing.T) {
	s := queryStore(t)
	rows, err := s.Query(Query{Sweep: "zipf", Where: map[string]string{"preset": "paper"}, Rank: MetricHitRatio})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("preset=paper matched %d rows, want 2", len(rows))
	}
	rows, err = s.Query(Query{Sweep: "zipf", Where: map[string]string{"preset": "absent"}, Rank: MetricHitRatio})
	if err != nil || len(rows) != 0 {
		t.Fatalf("unmatched filter: rows=%d err=%v", len(rows), err)
	}
}

// TestQueryGroupByAxis: a bare axis name resolves to its axis:<name>
// label and rows aggregate by value; sweeps stay isolated via Sweep.
func TestQueryGroupByAxis(t *testing.T) {
	s := queryStore(t)
	rows, err := s.Query(Query{Sweep: "zipf", GroupBy: "zipf_s", Rank: MetricHitRatio})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(keys(rows), " "); got != "0.6 0.9 1.1" {
		t.Fatalf("grouped keys = %q", got)
	}
	// Without the sweep restriction, the two s=0.6 cells (hit ratios
	// 0.75 and 0.25) average into one group row.
	rows, err = s.Query(Query{GroupBy: "zipf_s", Rank: MetricHitRatio})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Key != "0.6" || rows[0].N != 2 || rows[0].Value != 0.5 {
		t.Fatalf("cross-sweep group row = %+v, want key 0.6 N=2 value 0.5", rows[0])
	}
}

// TestQueryErrors: a missing rank metric and an unknown sweep are
// loud, and entries lacking the ranked metric are skipped silently.
func TestQueryErrors(t *testing.T) {
	s := queryStore(t)
	if _, err := s.Query(Query{Sweep: "zipf"}); err == nil {
		t.Fatal("query without a rank metric succeeded")
	}
	if _, err := s.Query(Query{Sweep: "nope", Rank: MetricHitRatio}); err == nil {
		t.Fatal("query against an unknown sweep succeeded")
	}
	rows, err := s.Query(Query{Sweep: "zipf", Rank: "diag_share_healthy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rank on an absent metric returned %d rows, want 0", len(rows))
	}
}

// TestMetricsVocabulary: Metrics lists the rankable names, including
// derived ratios.
func TestMetricsVocabulary(t *testing.T) {
	s := queryStore(t)
	names := s.Metrics("zipf")
	want := map[string]bool{"sessions": false, "chunks": false, MetricHitRatio: false, MetricRetryShare: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("Metrics omits %q (got %v)", n, names)
		}
	}
}
