package store

import (
	"strings"
	"testing"
)

// compareStore builds base and candidate sweeps with one shared cell
// whose metrics the tests steer directly through counters.
// Chunk counts are powers of two so the hit ratios (and their deltas)
// are exact in float64 and the threshold-edge cases are sharp.
func compareStore(t *testing.T, baseHit, newHit uint64) *Store {
	t.Helper()
	s := New()
	if err := s.Add("base", "cell", snap(nil, map[string]uint64{"sessions": 100, "chunks": 1024, "chunks_hit": baseHit}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("new", "cell", snap(nil, map[string]uint64{"sessions": 100, "chunks": 1024, "chunks_hit": newHit}, nil)); err != nil {
		t.Fatal(err)
	}
	return s
}

func hitDiff(t *testing.T, d *SweepDiff) MetricDiff {
	t.Helper()
	for _, cd := range d.Cells {
		for _, md := range cd.Metrics {
			if md.Metric == MetricHitRatio {
				return md
			}
		}
	}
	t.Fatal("diff carries no hit_ratio metric")
	return MetricDiff{}
}

// TestCompareSelfIsClean: a sweep diffed against itself reports zero
// regressions under the default thresholds.
func TestCompareSelfIsClean(t *testing.T) {
	dir, _ := sweepDir(t, 60)
	s := New()
	if _, err := s.IngestDir("sw", dir); err != nil {
		t.Fatal(err)
	}
	d, err := s.CompareSweeps("sw", "sw", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 0 {
		t.Fatalf("self-diff reports %d regressions: %+v", d.Regressions, d)
	}
	if len(d.Cells) == 0 || len(d.Missing) != 0 || len(d.Added) != 0 {
		t.Fatalf("self-diff shape wrong: %+v", d)
	}
}

// TestCompareThresholdEdges: a worsening exactly on the allowance
// passes; one beyond it regresses.
func TestCompareThresholdEdges(t *testing.T) {
	th := []Threshold{{Metric: MetricHitRatio, LowerIsWorse: true, MaxAbs: 0.25}}

	// Base 768/1024 = 0.75; candidate 512/1024 = 0.5: worsening exactly
	// 0.25 — on the edge, allowed.
	d, err := compareStore(t, 768, 512).CompareSweeps("base", "new", th)
	if err != nil {
		t.Fatal(err)
	}
	if md := hitDiff(t, d); md.Regression || d.Regressions != 0 {
		t.Fatalf("edge-equal worsening flagged as regression: %+v", md)
	}

	// Candidate 511/1024: worsening just past 0.25 — regression.
	d, err = compareStore(t, 768, 511).CompareSweeps("base", "new", th)
	if err != nil {
		t.Fatal(err)
	}
	if md := hitDiff(t, d); !md.Regression || d.Regressions != 1 {
		t.Fatalf("worsening past the allowance not flagged: %+v", md)
	}

	// Improvement in the worse-is-lower metric is never a regression,
	// however large.
	d, err = compareStore(t, 512, 1024).CompareSweeps("base", "new", th)
	if err != nil {
		t.Fatal(err)
	}
	if md := hitDiff(t, d); md.Regression || d.Regressions != 0 {
		t.Fatalf("improvement flagged as regression: %+v", md)
	}
}

// TestCompareRelativeAllowance: MaxRel scales the allowance with the
// base value when it exceeds MaxAbs.
func TestCompareRelativeAllowance(t *testing.T) {
	th := []Threshold{{Metric: "sessions", MaxAbs: 1, MaxRel: 0.10}}
	s := New()
	base := snap(nil, map[string]uint64{"sessions": 100, "chunks": 10}, nil)
	within := snap(nil, map[string]uint64{"sessions": 110, "chunks": 10}, nil)
	beyond := snap(nil, map[string]uint64{"sessions": 111, "chunks": 10}, nil)
	if err := s.Add("base", "c", base); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("within", "c", within); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("beyond", "c", beyond); err != nil {
		t.Fatal(err)
	}
	d, err := s.CompareSweeps("base", "within", th)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 0 {
		t.Fatalf("+10%% on a 10%% relative allowance regressed: %+v", d)
	}
	d, err = s.CompareSweeps("base", "beyond", th)
	if err != nil {
		t.Fatal(err)
	}
	if d.Regressions != 1 {
		t.Fatalf("+11%% on a 10%% relative allowance passed: %+v", d)
	}
}

// TestCompareMissingAndAddedCells: a base cell absent from the
// candidate is a regression; an extra candidate cell is informational.
func TestCompareMissingAndAddedCells(t *testing.T) {
	s := New()
	counters := map[string]uint64{"sessions": 10, "chunks": 100, "chunks_hit": 50}
	for _, cell := range []string{"a", "b"} {
		if err := s.Add("base", cell, snap(nil, counters, nil)); err != nil {
			t.Fatal(err)
		}
	}
	for _, cell := range []string{"a", "c"} {
		if err := s.Add("new", cell, snap(nil, counters, nil)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := s.CompareSweeps("base", "new", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Missing) != 1 || d.Missing[0] != "b" || d.Regressions != 1 {
		t.Fatalf("missing cell not counted as a regression: %+v", d)
	}
	if len(d.Added) != 1 || d.Added[0] != "c" {
		t.Fatalf("added cell not reported: %+v", d)
	}
}

// TestCompareUnknownSweep: both sweep names must exist.
func TestCompareUnknownSweep(t *testing.T) {
	s := compareStore(t, 500, 500)
	if _, err := s.CompareSweeps("base", "ghost", nil); err == nil || !strings.Contains(err.Error(), "unknown sweep") {
		t.Fatalf("diff against an unknown sweep: %v", err)
	}
}
