package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"vidperf/internal/experiment"
	"vidperf/internal/telemetry"
)

// snap builds a minimal labelled snapshot for store tests.
func snap(labels map[string]string, counters map[string]uint64, sketches map[string][]float64) *telemetry.Snapshot {
	sn := &telemetry.Snapshot{
		Schema:     telemetry.SnapshotSchema,
		SketchK:    64,
		Labels:     labels,
		Sketches:   make(map[string]*telemetry.QuantileSketch),
		Histograms: make(map[string]*telemetry.Histogram),
		Counters:   counters,
	}
	for name, vals := range sketches {
		sk := telemetry.NewSketch(64)
		for _, v := range vals {
			sk.Add(v)
		}
		sn.Sketches[name] = sk
	}
	return sn
}

// sweepDir runs a tiny two-cell campaign into a temp dir and returns
// the dir and its manifest.
func sweepDir(t *testing.T, sessions int) (string, *experiment.Manifest) {
	t.Helper()
	sp, err := experiment.Load(strings.NewReader(`{
		"name": "store-test",
		"scenario": {"seed": 5, "sessions": ` + strconv.Itoa(sessions) + `, "prefixes": 40, "videos": 200},
		"axes": [{"name": "cold", "values": [false, true]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := experiment.RunCampaign(sp, experiment.RunOptions{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	m, err := experiment.ReadManifestFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	return dir, m
}

func mustCreate(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestAddIdempotent: re-adding the same cell replaces its entry rather
// than duplicating it, and the resulting bytes are unchanged.
func TestAddIdempotent(t *testing.T) {
	s := New()
	sn := snap(map[string]string{"cell": "a"}, map[string]uint64{"sessions": 10, "chunks": 100, "chunks_hit": 90}, nil)
	if err := s.Add("sw", "a", sn); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := s.Write(&first); err != nil {
		t.Fatal(err)
	}
	if err := s.Add("sw", "a", sn); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d entries after duplicate Add, want 1", s.Len())
	}
	var second bytes.Buffer
	if err := s.Write(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("re-ingesting an identical snapshot changed the store bytes")
	}
}

// TestIngestOrderIndependentBytes: a manifest-driven ingest and a
// cell-by-cell ingest in reverse order produce byte-identical stores.
func TestIngestOrderIndependentBytes(t *testing.T) {
	dir, m := sweepDir(t, 60)

	forward := New()
	n, err := forward.IngestDir("sw", dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(m.Cells) {
		t.Fatalf("ingested %d cells, manifest lists %d", n, len(m.Cells))
	}

	reverse := New()
	if err := reverse.claimSweep("sw", SweepMeta{Spec: m.Spec, SpecHash: m.SpecHash, Baseline: m.Baseline}); err != nil {
		t.Fatal(err)
	}
	for i := len(m.Cells) - 1; i >= 0; i-- {
		if err := reverse.IngestSnapshotFile("sw", filepath.Join(dir, m.Cells[i].File)); err != nil {
			t.Fatal(err)
		}
	}

	var a, b bytes.Buffer
	if err := forward.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := reverse.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("store bytes depend on ingest order")
	}

	// And the ranked query output matches too.
	q := Query{Sweep: "sw", GroupBy: "cold", Rank: "hit_ratio"}
	ra, err := forward.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := reverse.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) || len(ra) == 0 {
		t.Fatalf("query rows differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("row %d differs across ingest orders: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

// TestIngestDirRefusesMixedSpecs: one sweep name cannot hold cells
// from two different spec contents.
func TestIngestDirRefusesMixedSpecs(t *testing.T) {
	dirA, _ := sweepDir(t, 60)
	dirB, _ := sweepDir(t, 80)

	s := New()
	if _, err := s.IngestDir("sw", dirA); err != nil {
		t.Fatal(err)
	}
	if _, err := s.IngestDir("sw", dirB); err == nil {
		t.Fatal("ingesting a different spec under the same sweep name was allowed")
	} else if !strings.Contains(err.Error(), "refusing to mix") {
		t.Fatalf("unexpected refusal error: %v", err)
	}
	// The same directory re-ingests fine (idempotent), and a different
	// spec is fine under its own sweep name.
	if _, err := s.IngestDir("sw", dirA); err != nil {
		t.Fatalf("re-ingesting the same spec was refused: %v", err)
	}
	if _, err := s.IngestDir("sw2", dirB); err != nil {
		t.Fatalf("ingesting under a fresh sweep name was refused: %v", err)
	}
}

// TestSaveOpenRoundTrip: Save then Open reproduces the store exactly;
// Open on a missing path yields an empty store.
func TestSaveOpenRoundTrip(t *testing.T) {
	dir, _ := sweepDir(t, 60)
	s := New()
	if _, err := s.IngestDir("sw", dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "campaigns.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := s.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Save/Open round-trip changed the store bytes")
	}
	meta, ok := got.Sweep("sw")
	if !ok || meta.SpecHash == "" || meta.Spec != "store-test" {
		t.Fatalf("round-trip lost sweep provenance: %+v ok=%v", meta, ok)
	}

	empty, err := Open(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("Open of a missing path is not empty: %d entries", empty.Len())
	}
}

// TestIngestSnapshotFileLooseCell: a snapshot without a cell label
// falls back to the file's base name.
func TestIngestSnapshotFileLooseCell(t *testing.T) {
	dir := t.TempDir()
	sn := snap(nil, map[string]uint64{"sessions": 4, "chunks": 20, "chunks_hit": 10}, nil)
	path := filepath.Join(dir, "night-run.json")
	f := mustCreate(t, path)
	if err := telemetry.WriteSnapshot(f, sn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s := New()
	if err := s.IngestSnapshotFile("ops", path); err != nil {
		t.Fatal(err)
	}
	es := s.Entries("ops")
	if len(es) != 1 || es[0].Cell != "night-run" {
		t.Fatalf("loose snapshot entries = %+v, want one cell night-run", es)
	}
}
