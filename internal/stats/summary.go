package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN if xs is empty.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CV returns the coefficient of variation (std/mean) of xs, the statistic
// the paper uses to classify latency variability (CV > 1 is "high").
// It returns NaN for an empty slice or zero mean.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	return Std(xs) / m
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN if xs is empty.
// xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns the interquartile range (p75 - p25) of xs.
func IQR(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25)
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary accumulates streaming moments (Welford's algorithm) together
// with min and max, so hot paths can collect statistics without retaining
// every sample.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of samples added.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean, or NaN before any sample.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Var returns the running population variance, or NaN before any sample.
func (s *Summary) Var() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.m2 / float64(s.n)
}

// Std returns the running population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// CV returns the running coefficient of variation.
func (s *Summary) CV() float64 {
	if s.n == 0 || s.mean == 0 {
		return math.NaN()
	}
	return s.Std() / s.mean
}

// Min returns the smallest sample, or NaN before any sample.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample, or NaN before any sample.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]: next = (1-alpha)*prev + alpha*sample. TCP's SRTT uses
// alpha = 1/8 (RFC 6298); rate-based ABR estimators typically use larger
// alphas.
type EWMA struct {
	Alpha float64
	value float64
	init  bool
}

// Update folds sample into the average and returns the new value.
func (e *EWMA) Update(sample float64) float64 {
	if !e.init {
		e.value = sample
		e.init = true
		return e.value
	}
	e.value = (1-e.Alpha)*e.value + e.Alpha*sample
	return e.value
}

// Value returns the current average, or NaN before the first update.
func (e *EWMA) Value() float64 {
	if !e.init {
		return math.NaN()
	}
	return e.value
}

// Initialized reports whether Update has been called at least once.
func (e *EWMA) Initialized() bool { return e.init }
