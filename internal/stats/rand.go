// Package stats provides the deterministic random-number, distribution,
// and descriptive-statistics substrate used by every model in vidperf.
//
// All simulation components draw randomness through *Rand, a splitmix64
// generator with an explicit seed, so that a scenario seed fully determines
// the generated trace across Go versions and platforms (math/rand makes no
// such stability promise). The package also implements the empirical
// machinery the paper's analysis needs: quantiles, coefficient of variation,
// ECDF/CCDF curves, and binned scatter summaries (mean/median/IQR per bin).
package stats

import "math"

// Rand is a deterministic pseudo-random source based on splitmix64.
// It is not safe for concurrent use; give each concurrent component its
// own Rand derived via Split or NewRand.
type Rand struct {
	state uint64
	// spare holds a cached second normal variate from the polar method.
	spare    float64
	hasSpare bool
}

// NewRand returns a generator seeded with seed. Two generators with the
// same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives a new, statistically independent generator from r.
// It advances r once, so streams created by successive Splits differ.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the Marsaglia polar method.
func (r *Rand) Norm(mean, std float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + std*r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return mean + std*u*m
	}
}

// Exp returns an exponentially distributed float64 with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	// Guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// LogNormal returns a log-normally distributed value where mu and sigma are
// the mean and standard deviation of the underlying normal (i.e. the median
// of the result is exp(mu)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pareto returns a Pareto-distributed value with minimum xm and shape alpha.
// Smaller alpha means a heavier tail.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Choice returns an index in [0, len(weights)) sampled proportionally to
// weights. It panics if weights is empty or sums to a non-positive value.
func (r *Rand) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("stats: Choice with empty or non-positive weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes xs in place using the Fisher–Yates algorithm.
func Shuffle[T any](r *Rand, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
