package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from samples.
// The zero value is empty; build one with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs into an ECDF.
func NewECDF(xs []float64) *ECDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), or NaN for an empty ECDF.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Count of samples <= x.
	n := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(e.sorted))
}

// CCDFAt returns P(X > x) = 1 - At(x).
func (e *ECDF) CCDFAt(x float64) float64 { return 1 - e.At(x) }

// Quantile returns the q-th quantile of the samples.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(e.sorted, q)
}

// Points returns up to n (x, P(X<=x)) pairs evenly spaced in rank order,
// suitable for rendering the CDF curves the paper plots.
func (e *ECDF) Points(n int) []Point {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(e.sorted) - 1) / max(n-1, 1)
		pts = append(pts, Point{
			X: e.sorted[idx],
			Y: float64(idx+1) / float64(len(e.sorted)),
		})
	}
	return pts
}

// Point is a single (x, y) pair in a rendered series.
type Point struct {
	X, Y float64
}

// BinStat summarizes the samples whose key fell into one bin of a binned
// scatter plot (the paper's Figures 4, 7, 12, 14, 15 and 19 are all of
// this form: x-axis bins, y-axis mean/median with IQR error bars).
type BinStat struct {
	Lo, Hi float64 // bin edges, [Lo, Hi)
	N      int
	Mean   float64
	Median float64
	P25    float64
	P75    float64
}

// Center returns the bin midpoint.
func (b BinStat) Center() float64 { return (b.Lo + b.Hi) / 2 }

// BinnedStats buckets (x, y) samples into fixed-width bins of x spanning
// [lo, hi) and returns per-bin summaries of y. Bins with no samples are
// returned with N == 0 and NaN statistics so the caller can still render
// a uniform axis.
func BinnedStats(xs, ys []float64, lo, hi, width float64) []BinStat {
	if len(xs) != len(ys) {
		panic("stats: BinnedStats length mismatch")
	}
	if width <= 0 || hi <= lo {
		panic("stats: BinnedStats invalid bins")
	}
	nbins := int(math.Ceil((hi - lo) / width))
	buckets := make([][]float64, nbins)
	for i, x := range xs {
		if x < lo || x >= hi {
			continue
		}
		b := int((x - lo) / width)
		if b >= nbins { // float edge case at hi boundary
			b = nbins - 1
		}
		buckets[b] = append(buckets[b], ys[i])
	}
	out := make([]BinStat, nbins)
	for b := range buckets {
		bs := BinStat{Lo: lo + float64(b)*width, Hi: lo + float64(b+1)*width}
		vals := buckets[b]
		bs.N = len(vals)
		if len(vals) == 0 {
			bs.Mean, bs.Median, bs.P25, bs.P75 = math.NaN(), math.NaN(), math.NaN(), math.NaN()
		} else {
			sort.Float64s(vals)
			bs.Mean = Mean(vals)
			bs.Median = quantileSorted(vals, 0.5)
			bs.P25 = quantileSorted(vals, 0.25)
			bs.P75 = quantileSorted(vals, 0.75)
		}
		out[b] = bs
	}
	return out
}

// GroupedMean returns the mean of ys grouped by integer key (e.g. chunk ID),
// for keys 0..maxKey inclusive. Missing keys yield NaN.
func GroupedMean(keys []int, ys []float64, maxKey int) []float64 {
	if len(keys) != len(ys) {
		panic("stats: GroupedMean length mismatch")
	}
	sums := make([]float64, maxKey+1)
	counts := make([]int, maxKey+1)
	for i, k := range keys {
		if k < 0 || k > maxKey {
			continue
		}
		sums[k] += ys[i]
		counts[k]++
	}
	out := make([]float64, maxKey+1)
	for k := range out {
		if counts[k] == 0 {
			out[k] = math.NaN()
		} else {
			out[k] = sums[k] / float64(counts[k])
		}
	}
	return out
}
