package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasics(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := Std(xs); got != 2 {
		t.Errorf("Std = %v, want 2", got)
	}
}

func TestCV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if got := CV(xs); got != 0 {
		t.Errorf("CV of constants = %v, want 0", got)
	}
	if !math.IsNaN(CV([]float64{1, -1})) {
		t.Error("CV with zero mean should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
}

func TestMedianIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if got := Median(xs); got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
	if got := IQR(xs); got != 4 {
		t.Errorf("IQR = %v, want 4", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestSummaryMatchesBatch(t *testing.T) {
	r := NewRand(99)
	xs := make([]float64, 5000)
	var s Summary
	for i := range xs {
		xs[i] = r.Norm(5, 2)
		s.Add(xs[i])
	}
	if !almostEq(s.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Summary mean %v != batch %v", s.Mean(), Mean(xs))
	}
	if !almostEq(s.Var(), Variance(xs), 1e-6) {
		t.Errorf("Summary var %v != batch %v", s.Var(), Variance(xs))
	}
	if s.Min() != Min(xs) || s.Max() != Max(xs) {
		t.Error("Summary min/max mismatch")
	}
	if s.N() != len(xs) {
		t.Error("Summary N mismatch")
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if !math.IsNaN(e.Value()) {
		t.Error("EWMA before update should be NaN")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Errorf("first update = %v, want 10", e.Value())
	}
	e.Update(20)
	if e.Value() != 15 {
		t.Errorf("second update = %v, want 15", e.Value())
	}
}

// Property: for any non-empty sample, quantiles are monotone in q and
// bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa <= qb && qa >= Min(xs) && qb <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Welford summary mean equals batch mean for any finite input.
func TestSummaryMeanProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var s Summary
		for _, x := range xs {
			s.Add(x)
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return almostEq(s.Mean(), Mean(xs), 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZipfTopShare(t *testing.T) {
	// Calibration check: with ~10k titles and s≈0.9 the top 10% of ranks
	// should hold roughly the paper's 66% of probability mass.
	z := NewZipf(10000, 0.9)
	share := z.TopShare(0.1)
	if share < 0.55 || share > 0.75 {
		t.Errorf("top-10%% share = %v, want ~0.66", share)
	}
}

func TestZipfSampleSkew(t *testing.T) {
	z := NewZipf(1000, 1.0)
	r := NewRand(123)
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		k := z.Sample(r)
		if k < 0 || k >= 1000 {
			t.Fatalf("sample out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Errorf("popularity not decreasing: c0=%d c10=%d c500=%d",
			counts[0], counts[10], counts[500])
	}
	// Empirical frequency of rank 0 should be near its analytic probability.
	got := float64(counts[0]) / float64(n)
	if !almostEq(got, z.Prob(0), 0.01) {
		t.Errorf("rank-0 frequency %v vs prob %v", got, z.Prob(0))
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(500, 0.8)
	var sum float64
	for i := 0; i < 500; i++ {
		sum += z.Prob(i)
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Errorf("probabilities sum to %v", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(500) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5})
	if e.At(0) != 0 {
		t.Errorf("At(0) = %v", e.At(0))
	}
	if e.At(3) != 0.6 {
		t.Errorf("At(3) = %v, want 0.6", e.At(3))
	}
	if e.At(5) != 1 {
		t.Errorf("At(5) = %v, want 1", e.At(5))
	}
	if got := e.CCDFAt(3); !almostEq(got, 0.4, 1e-12) {
		t.Errorf("CCDFAt(3) = %v, want 0.4", got)
	}
	if e.N() != 5 {
		t.Error("N mismatch")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{5, 1, 3, 2, 4})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatal("points not monotone")
		}
	}
	if pts[4].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[4].Y)
	}
}

// Property: ECDF is monotone non-decreasing in x and bounded in [0,1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, x1, x2 float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 || math.IsNaN(x1) || math.IsNaN(x2) {
			return true
		}
		e := NewECDF(xs)
		a, b := x1, x2
		if a > b {
			a, b = b, a
		}
		pa, pb := e.At(a), e.At(b)
		return pa <= pb && pa >= 0 && pb <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBinnedStats(t *testing.T) {
	xs := []float64{5, 15, 15, 25, 95}
	ys := []float64{1, 2, 4, 8, 16}
	bins := BinnedStats(xs, ys, 0, 100, 10)
	if len(bins) != 10 {
		t.Fatalf("got %d bins, want 10", len(bins))
	}
	if bins[0].N != 1 || bins[0].Mean != 1 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	if bins[1].N != 2 || bins[1].Mean != 3 || bins[1].Median != 3 {
		t.Errorf("bin1 = %+v", bins[1])
	}
	if bins[9].N != 1 || bins[9].Mean != 16 {
		t.Errorf("bin9 = %+v", bins[9])
	}
	if bins[5].N != 0 || !math.IsNaN(bins[5].Mean) {
		t.Errorf("empty bin should be NaN: %+v", bins[5])
	}
	if bins[1].Center() != 15 {
		t.Errorf("Center = %v", bins[1].Center())
	}
}

func TestBinnedStatsIgnoresOutOfRange(t *testing.T) {
	bins := BinnedStats([]float64{-5, 200}, []float64{1, 2}, 0, 100, 50)
	for _, b := range bins {
		if b.N != 0 {
			t.Errorf("out-of-range sample landed in bin %+v", b)
		}
	}
}

func TestGroupedMean(t *testing.T) {
	keys := []int{0, 0, 1, 3, 9}
	ys := []float64{2, 4, 6, 8, 10}
	m := GroupedMean(keys, ys, 4)
	if m[0] != 3 || m[1] != 6 || m[3] != 8 {
		t.Errorf("GroupedMean = %v", m)
	}
	if !math.IsNaN(m[2]) {
		t.Error("missing key should be NaN")
	}
	if len(m) != 5 {
		t.Errorf("len = %d, want 5 (key 9 out of range dropped)", len(m))
	}
}

// Property: every bin's median lies within [P25, P75] and N sums to the
// number of in-range samples.
func TestBinnedStatsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		n := 50 + r.Intn(200)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Uniform(0, 100)
			ys[i] = r.Norm(0, 10)
		}
		bins := BinnedStats(xs, ys, 0, 100, 10)
		total := 0
		for _, b := range bins {
			total += b.N
			if b.N > 0 && (b.Median < b.P25 || b.Median > b.P75) {
				return false
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuantileAgainstSort(t *testing.T) {
	r := NewRand(1234)
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	// With 1001 points, quantile q lands exactly on index 1000q.
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 1} {
		want := sorted[int(q*1000)]
		if got := Quantile(xs, q); !almostEq(got, want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}
