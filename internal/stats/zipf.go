package stats

import (
	"math"
	"sort"
)

// Zipf samples ranks 0..N-1 with probability proportional to
// 1/(rank+1)^S. It is the popularity model for the video catalog: the
// paper reports that the top 10% of videos receive about 66% of plays,
// which a Zipf exponent near 0.9 reproduces for catalogs of ~10^4 titles.
type Zipf struct {
	cum []float64 // cumulative unnormalized weights, len N
}

// NewZipf builds a sampler over n ranks with exponent s > 0.
// It panics if n <= 0 or s <= 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 || s <= 0 {
		panic("stats: NewZipf requires n > 0 and s > 0")
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Sample draws a rank in [0, N). Rank 0 is the most popular.
func (z *Zipf) Sample(r *Rand) int {
	x := r.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, x)
}

// Prob returns the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	w := z.cum[i]
	if i > 0 {
		w -= z.cum[i-1]
	}
	return w / z.cum[len(z.cum)-1]
}

// TopShare returns the fraction of probability mass held by the most
// popular frac of ranks (e.g. TopShare(0.1) is the share of the top 10%).
func (z *Zipf) TopShare(frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	k := int(frac * float64(len(z.cum)))
	if k <= 0 {
		k = 1
	}
	if k > len(z.cum) {
		k = len(z.cum)
	}
	return z.cum[k-1] / z.cum[len(z.cum)-1]
}
