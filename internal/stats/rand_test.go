package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRand(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64UniformMean(t *testing.T) {
	r := NewRand(11)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", s.Mean())
	}
	if math.Abs(s.Std()-math.Sqrt(1.0/12)) > 0.005 {
		t.Errorf("uniform std = %v, want ~%v", s.Std(), math.Sqrt(1.0/12))
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit %d distinct values, want 7", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRand(9)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Norm(10, 3))
	}
	if math.Abs(s.Mean()-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", s.Mean())
	}
	if math.Abs(s.Std()-3) > 0.05 {
		t.Errorf("normal std = %v, want ~3", s.Std())
	}
}

func TestExpMoments(t *testing.T) {
	r := NewRand(13)
	var s Summary
	for i := 0; i < 200000; i++ {
		v := r.Exp(50)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		s.Add(v)
	}
	if math.Abs(s.Mean()-50) > 1 {
		t.Errorf("exp mean = %v, want ~50", s.Mean())
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRand(17)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.LogNormal(math.Log(20), 0.5)
	}
	med := Median(xs)
	if math.Abs(med-20) > 0.5 {
		t.Errorf("lognormal median = %v, want ~20", med)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRand(19)
	n, above := 200000, 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1, 2)
		if v < 1 {
			t.Fatalf("Pareto below xm: %v", v)
		}
		if v > 10 {
			above++
		}
	}
	// P(X > 10) = (1/10)^2 = 0.01 for alpha=2, xm=1.
	got := float64(above) / float64(n)
	if math.Abs(got-0.01) > 0.003 {
		t.Errorf("Pareto tail mass = %v, want ~0.01", got)
	}
}

func TestBool(t *testing.T) {
	r := NewRand(23)
	hits := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / 100000
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", got)
	}
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestChoiceWeights(t *testing.T) {
	r := NewRand(29)
	w := []float64{1, 3, 6}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(w)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("Choice weight %d: got %v want ~%v", i, got, want)
		}
	}
}

func TestShufflePermutation(t *testing.T) {
	r := NewRand(31)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	Shuffle(r, xs)
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

// Property: Float64 always lands in [0,1) regardless of seed.
func TestFloat64RangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Uniform(lo,hi) stays within its bounds for any ordered pair.
func TestUniformBoundsProperty(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi == lo || math.IsInf(hi-lo, 0) {
			return true
		}
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Uniform(lo, hi)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
