package diagnose_test

import (
	"bytes"
	"testing"

	"vidperf/internal/diagnose"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// TestDiagnosisByteIdenticalAcrossParallelism runs the same diagnosed
// campaign at -parallel 1 and 8 and requires byte-identical snapshots:
// classification happens inside each PoP shard's accumulator, so the
// per-label counters and sketches must obey the same determinism rule as
// every other streamed aggregate.
func TestDiagnosisByteIdenticalAcrossParallelism(t *testing.T) {
	run := func(parallel int) []byte {
		sc := workload.Scenario{
			Seed: 7, NumSessions: 800, NumPrefixes: 200, Parallelism: parallel,
		}
		res, err := session.Execute(sc, session.Options{
			Telemetry: true, SketchK: 64, Diagnose: &diagnose.Config{},
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		sn := res.Snapshot
		var buf bytes.Buffer
		if err := telemetry.WriteSnapshot(&buf, sn); err != nil {
			t.Fatalf("parallel=%d: write: %v", parallel, err)
		}
		return buf.Bytes()
	}

	seq, par := run(1), run(8)
	if !bytes.Equal(seq, par) {
		t.Fatal("diagnosis-enabled snapshots differ between -parallel 1 and 8")
	}

	// And the labels actually cover the campaign: every session carries
	// exactly one label.
	sn, err := telemetry.ReadSnapshot(bytes.NewReader(seq))
	if err != nil {
		t.Fatal(err)
	}
	var labelled uint64
	for _, l := range diagnose.Labels() {
		labelled += sn.Counter(telemetry.DiagSessionsKey(l))
	}
	if sessions := sn.Counter(telemetry.CounterSessions); labelled != sessions {
		t.Fatalf("label counts sum to %d, want the session count %d", labelled, sessions)
	}
}
