// Package diagnose answers the paper's headline question for every
// finished session: which layer hurt it? It classifies each session's
// dominant bottleneck into one of seven labels, combining the §4.3
// detection methods already in internal/core (the Eq. 4 download-stack
// outlier screen and the Eq. 5 persistent-stack bound) with threshold
// rules over the joined per-chunk CDN and TCP fields.
//
// The label taxonomy mirrors the paper's §4–§6 structure:
//
//   - cache-miss-fetch: server layer, §4.1 / Fig. 5 — the session's slow
//     chunks were cache misses whose backend fetch (D_BE) dominated the
//     server latency; the cache, not the origin, is the problem.
//   - backend-latency: server layer, §4.1 / Fig. 5's retry-timer mode —
//     slow chunks spent their server time in the CDN's own service path
//     (D_wait queueing, D_open/D_read including the ATS open-read retry
//     timer) or in abnormally slow backend fetches.
//   - network-throughput: network layer, §4.2 / Figs. 7–10 — delivery
//     time is dominated by the path (self-loading, long RTT, enterprise
//     egress), with no loss or stack evidence.
//   - network-loss: network layer, §4.2 / Figs. 11–13 — slow chunks
//     carried retransmissions above the loss threshold.
//   - proxy-tromboned: network layer, §3 + §4.2 / Table 4 — the session
//     shows the proxy signature (CDN-seen IP disagrees with the player
//     beacon) and a high-CV(SRTT) path: it trombones through a shared
//     proxy/VPN egress whose queueing colours every chunk.
//   - client-stack: client layer, §4.3 / Figs. 16–17 — chunks flagged by
//     the Eq. 4 outlier screen or with an Eq. 5 lower bound above the
//     configured floor; the download stack buffered data the player
//     blamed on the network.
//   - live-edge-limited: live scenarios only (internal/live) — the
//     session's dominant stall was the publish clock: it caught up with
//     the live edge and had to wait for chunks that did not exist yet.
//     The medium, not any delivery layer, set the pace.
//   - abr-limited: §4.4 / Fig. 19 — the session played smoothly but the
//     adaptation algorithm left bitrate on the table (average bitrate
//     below the configured share of the ladder top with no stalls).
//   - healthy: none of the above; startup, re-buffering and bitrate all
//     within thresholds.
//
// Classification is a pure function of (SessionRecord, []ChunkRecord,
// Config): no randomness, no global state, map-free iteration — the same
// inputs always yield the same label, which is what lets the streaming
// telemetry path count labels byte-identically at any shard parallelism.
package diagnose

import (
	"math"

	"vidperf/internal/core"
)

// Label names one diagnosed bottleneck layer.
type Label string

// The nine diagnosis labels, from the server outward to the client.
const (
	CacheMissFetch    Label = "cache-miss-fetch"
	BackendLatency    Label = "backend-latency"
	NetworkThroughput Label = "network-throughput"
	NetworkLoss       Label = "network-loss"
	ProxyTromboned    Label = "proxy-tromboned"
	ClientStack       Label = "client-stack"
	LiveEdgeLimited   Label = "live-edge-limited"
	ABRLimited        Label = "abr-limited"
	Healthy           Label = "healthy"
)

// Labels returns every label in canonical report order. Telemetry
// accumulators iterate this slice (never a map) when building per-label
// state, so merged snapshots are reproducible.
func Labels() []Label {
	return []Label{
		CacheMissFetch, BackendLatency, NetworkThroughput,
		NetworkLoss, ProxyTromboned, ClientStack, LiveEdgeLimited,
		ABRLimited, Healthy,
	}
}

// Config holds the classifier thresholds. The zero value of every field
// selects the documented default, so Config{} is the standard classifier.
type Config struct {
	// StartupDegradedMS marks a session degraded when its startup delay
	// exceeds this (default 10000 ms ≈ 1.7× the default 6 s buffering
	// threshold). Sessions that never started playback (NaN startup) are
	// always degraded.
	StartupDegradedMS float64

	// RebufferDegraded marks a session degraded when its re-buffering
	// ratio (fraction of session time stalled) exceeds this (default
	// 0.01 — the paper reports re-buffering as rare, so 1% is already an
	// outlier).
	RebufferDegraded float64

	// LadderTopKbps is the top rung of the encoding ladder (default 3000,
	// the paper's §3 ladder) used by the abr-limited screen.
	LadderTopKbps float64

	// ABRLowShare: a smooth session whose average bitrate is below this
	// share of LadderTopKbps is abr-limited rather than healthy
	// (default 0.5).
	ABRLowShare float64

	// LossRate is the per-chunk retransmission-rate threshold above which
	// a slow chunk is charged to network loss (default 0.05).
	LossRate float64

	// DDSBoundMS charges a slow chunk to the client stack when its Eq. 5
	// lower bound on download-stack latency exceeds this (default 150 ms,
	// well past one RTO of slack the bound already subtracts).
	DDSBoundMS float64

	// ServerShare charges a slow chunk to the server when the server-side
	// latency D_CDN + D_BE makes up at least this share of the chunk's
	// total delivery time D_FB + D_LB (default 0.3).
	ServerShare float64

	// LiveLagShare labels a degraded live session live-edge-limited when
	// its publish-clock wait is at least this share of its total stall
	// budget (lag + re-buffering time), i.e. the clock — not the delivery
	// path — dominated the stalls (default 0.5).
	LiveLagShare float64

	// ProxyCVMin labels a degraded session proxy-tromboned when it shows
	// the §3/§4.2 proxy signature: the CDN-seen IP disagrees with the
	// beacon (rule-i evidence, not ground truth) AND the session's
	// CV(SRTT) is at least this (default 0.8 — Table 4's high-CV tail).
	// Tromboned paths mix detour queueing into every chunk, so blaming a
	// single delivery layer would mis-charge the concentrator's queue.
	ProxyCVMin float64
}

// WithDefaults returns the config with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.StartupDegradedMS == 0 {
		c.StartupDegradedMS = 10000
	}
	if c.RebufferDegraded == 0 {
		c.RebufferDegraded = 0.01
	}
	if c.LadderTopKbps == 0 {
		c.LadderTopKbps = 3000
	}
	if c.ABRLowShare == 0 {
		c.ABRLowShare = 0.5
	}
	if c.LossRate == 0 {
		c.LossRate = 0.05
	}
	if c.DDSBoundMS == 0 {
		c.DDSBoundMS = 150
	}
	if c.ServerShare == 0 {
		c.ServerShare = 0.3
	}
	if c.LiveLagShare == 0 {
		c.LiveLagShare = 0.5
	}
	if c.ProxyCVMin == 0 {
		c.ProxyCVMin = 0.8
	}
	return c
}

// Diagnosis is one session's classification with the evidence counts the
// vote was decided on (tests and reports read these; the streaming path
// keeps only Label).
type Diagnosis struct {
	Label Label

	// Degraded reports whether the session failed the QoE screen (the
	// healthy/abr-limited labels mean it did not).
	Degraded bool

	// SlowChunks is how many chunks entered the layer vote.
	SlowChunks int

	// Per-layer chunk votes (ServerSlow = MissFetchSlow + BackendSlow).
	MissFetchSlow  int
	BackendSlow    int
	ThroughputSlow int
	LossSlow       int
	StackSlow      int
}

// ServerSlow returns the combined server-layer vote.
func (d Diagnosis) ServerSlow() int { return d.MissFetchSlow + d.BackendSlow }

// Classify labels one finished session. chunks must be the session's
// records in ChunkID order (the order every core.RecordSink receives).
func Classify(s core.SessionRecord, chunks []core.ChunkRecord, cfg Config) Diagnosis {
	cfg = cfg.WithDefaults()
	var d Diagnosis

	d.Degraded = math.IsNaN(s.StartupMS) ||
		s.StartupMS > cfg.StartupDegradedMS ||
		s.RebufferRate > cfg.RebufferDegraded
	if !d.Degraded {
		if s.AvgBitrateKbps < cfg.ABRLowShare*cfg.LadderTopKbps {
			d.Label = ABRLimited
		} else {
			d.Label = Healthy
		}
		return d
	}

	// Live sessions whose stalls mostly came from waiting on the publish
	// clock are limited by the medium itself: no layer vote could blame a
	// delivery component for chunks that did not exist yet. The share test
	// keeps genuinely network- or server-stalled live sessions (small lag,
	// big re-buffering) in the regular vote below.
	if s.Live && s.LiveEdgeLagMS > 0 &&
		s.LiveEdgeLagMS >= cfg.LiveLagShare*(s.LiveEdgeLagMS+s.RebufDurMS) {
		d.Label = LiveEdgeLimited
		return d
	}

	// Sessions with the proxy signature — CDN-vs-beacon IP mismatch (the
	// same rule-i evidence the §3 detector uses, never the ground-truth
	// flag) plus a high-CV(SRTT) path — are tromboning through a shared
	// egress: the detour's queueing colours every chunk, so the per-chunk
	// vote would scatter blame across layers that all sit behind the
	// concentrator.
	if s.HTTPClientIP != "" && s.HTTPClientIP != s.BeaconIP && s.SRTTCV >= cfg.ProxyCVMin {
		d.Label = ProxyTromboned
		return d
	}

	// Eq. 4 runs once per session: outlier membership feeds the per-chunk
	// layer rule below.
	outlier := make([]bool, len(chunks))
	for _, i := range core.DetectStackOutliers(chunks).Outliers {
		outlier[i] = true
	}

	// Vote over the slow chunks — the ones that drained the buffer
	// (Eq. 2 score < 1) or had a stall charged to them.
	voted := false
	for i := range chunks {
		c := &chunks[i]
		if c.PerfScore() < 1 || c.BufCount > 0 {
			d.voteChunk(c, outlier[i], cfg)
			voted = true
		}
	}
	if !voted {
		// Degraded with no individually-slow chunk (e.g. a slow first
		// chunk below the score threshold, or a truncated session): vote
		// over everything the session fetched.
		for i := range chunks {
			d.voteChunk(&chunks[i], outlier[i], cfg)
		}
	}

	d.Label = d.resolve()
	return d
}

// voteChunk charges one chunk to a layer. Rule order is fixed — stack and
// loss have direct evidence, the server split needs the latency
// decomposition, and throughput is the residual network explanation.
func (d *Diagnosis) voteChunk(c *core.ChunkRecord, stackOutlier bool, cfg Config) {
	d.SlowChunks++
	switch {
	case stackOutlier || core.EstimateDDSms(*c) > cfg.DDSBoundMS:
		d.StackSlow++
	case c.LossRate() > cfg.LossRate:
		d.LossSlow++
	case c.ServerLatencyMS() >= cfg.ServerShare*(c.DFBms+c.DLBms):
		// Server layer; split by which server component dominated. A miss
		// whose backend fetch is at least the CDN's own service time is
		// the cost of the miss itself; everything else (queueing, disk
		// reads, the open-read retry timer, slow hits) is the server's
		// own latency.
		if !c.CacheHit && c.DBEms >= c.DCDNms() {
			d.MissFetchSlow++
		} else {
			d.BackendSlow++
		}
	default:
		d.ThroughputSlow++
	}
}

// resolve picks the winning layer. Ties break in evidence-specificity
// order — stack (Eq. 4/5 are the most specific detectors), then loss
// (direct retransmission counts), then the server decomposition, then
// throughput as the residual — so classification never depends on
// iteration order.
func (d *Diagnosis) resolve() Label {
	if d.SlowChunks == 0 {
		// Degraded without a single fetched chunk: nothing ever arrived,
		// which is network territory by elimination.
		return NetworkThroughput
	}
	best, n := ClientStack, d.StackSlow
	if d.LossSlow > n {
		best, n = NetworkLoss, d.LossSlow
	}
	if server := d.ServerSlow(); server > n {
		n = server
		if d.MissFetchSlow >= d.BackendSlow {
			best = CacheMissFetch
		} else {
			best = BackendLatency
		}
	}
	if d.ThroughputSlow > n {
		best = NetworkThroughput
	}
	return best
}
