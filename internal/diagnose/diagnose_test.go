package diagnose

import (
	"math"
	"testing"

	"vidperf/internal/core"
)

// smooth returns a session that passes the QoE screen at high bitrate.
func smooth() core.SessionRecord {
	return core.SessionRecord{StartupMS: 500, RebufferRate: 0, AvgBitrateKbps: 2500}
}

// degraded returns a session that fails the QoE screen on re-buffering.
func degraded() core.SessionRecord {
	return core.SessionRecord{StartupMS: 900, RebufferRate: 0.05, AvgBitrateKbps: 1200}
}

// chunk returns a healthy fast chunk (score ≫ 1, hit, no loss).
func chunk() core.ChunkRecord {
	return core.ChunkRecord{
		DurationSec: 6, DFBms: 40, DLBms: 400, SizeBytes: 1 << 20,
		DwaitMS: 0.2, DopenMS: 0.3, DreadMS: 0.5, CacheHit: true, CacheLevel: "ram",
		SRTTms: 40, SRTTVarMS: 5, MSS: 1460, CWND: 30, SegsSent: 700,
	}
}

// slowChunk returns a slow chunk (score < 1 via a huge last-byte delay)
// with no server, loss, or stack evidence — the network-throughput
// residual.
func slowChunk() core.ChunkRecord {
	c := chunk()
	c.DFBms, c.DLBms = 100, 8000
	return c
}

// TestClassifyPerLabel drives one synthetic session through every label.
func TestClassifyPerLabel(t *testing.T) {
	missFetch := chunk()
	missFetch.CacheHit, missFetch.CacheLevel = false, "miss"
	missFetch.DwaitMS, missFetch.DopenMS, missFetch.DreadMS = 50, 50, 100
	missFetch.DBEms = 2500
	missFetch.DFBms, missFetch.DLBms = 3000, 4000 // score 6/7 < 1; server share 2700/7000

	backend := chunk()
	backend.DreadMS = 2700 // slow hit: the CDN's own read path
	backend.DFBms, backend.DLBms = 3000, 4000

	lossy := slowChunk()
	lossy.SegsSent, lossy.SegsLost = 100, 10

	stack := chunk()
	// Eq. 5: DDS >= 1000 − 1 − RTO(200+50+20) = 729 > the 150 ms floor.
	stack.DwaitMS, stack.DopenMS, stack.DreadMS = 0.4, 0.3, 0.3
	stack.DFBms, stack.DLBms = 1000, 5500
	stack.SRTTms, stack.SRTTVarMS = 50, 5

	abrLtd := smooth()
	abrLtd.AvgBitrateKbps = 900

	cases := []struct {
		name   string
		sess   core.SessionRecord
		chunks []core.ChunkRecord
		want   Label
	}{
		{"healthy", smooth(), []core.ChunkRecord{chunk(), chunk()}, Healthy},
		{"abr-limited", abrLtd, []core.ChunkRecord{chunk(), chunk()}, ABRLimited},
		{"cache-miss-fetch", degraded(), []core.ChunkRecord{missFetch, chunk()}, CacheMissFetch},
		{"backend-latency", degraded(), []core.ChunkRecord{backend, chunk()}, BackendLatency},
		{"network-throughput", degraded(), []core.ChunkRecord{slowChunk(), chunk()}, NetworkThroughput},
		{"network-loss", degraded(), []core.ChunkRecord{lossy, chunk()}, NetworkLoss},
		{"client-stack", degraded(), []core.ChunkRecord{stack, chunk()}, ClientStack},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := Classify(c.sess, c.chunks, Config{})
			if d.Label != c.want {
				t.Fatalf("label = %q, want %q (diagnosis %+v)", d.Label, c.want, d)
			}
		})
	}
}

// TestDegradedScreenBoundaries pins the strict-inequality semantics of
// the QoE screen: values exactly at a threshold stay on the healthy side.
func TestDegradedScreenBoundaries(t *testing.T) {
	cfg := Config{}.WithDefaults()
	cases := []struct {
		name string
		sess core.SessionRecord
		want Label
	}{
		{"startup at threshold", core.SessionRecord{StartupMS: cfg.StartupDegradedMS, AvgBitrateKbps: 2500}, Healthy},
		{"startup above threshold", core.SessionRecord{StartupMS: cfg.StartupDegradedMS + 1, AvgBitrateKbps: 2500}, NetworkThroughput},
		{"rebuffer at threshold", core.SessionRecord{StartupMS: 500, RebufferRate: cfg.RebufferDegraded, AvgBitrateKbps: 2500}, Healthy},
		{"rebuffer above threshold", core.SessionRecord{StartupMS: 500, RebufferRate: cfg.RebufferDegraded + 0.001, AvgBitrateKbps: 2500}, NetworkThroughput},
		{"bitrate at abr threshold", core.SessionRecord{StartupMS: 500, AvgBitrateKbps: cfg.ABRLowShare * cfg.LadderTopKbps}, Healthy},
		{"bitrate below abr threshold", core.SessionRecord{StartupMS: 500, AvgBitrateKbps: cfg.ABRLowShare*cfg.LadderTopKbps - 1}, ABRLimited},
		{"never started", core.SessionRecord{StartupMS: math.NaN(), AvgBitrateKbps: 2500}, NetworkThroughput},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// The degraded cases carry one residual slow chunk so the vote
			// has something to attribute; the point here is the screen.
			d := Classify(c.sess, []core.ChunkRecord{slowChunk()}, Config{})
			if d.Label != c.want {
				t.Fatalf("label = %q, want %q", d.Label, c.want)
			}
		})
	}
}

// TestLayerRuleBoundaries pins each per-chunk threshold exactly at its
// boundary value.
func TestLayerRuleBoundaries(t *testing.T) {
	cfg := Config{}.WithDefaults()

	// Loss rate strictly above LossRate flips the chunk to loss.
	atLoss := slowChunk()
	atLoss.SegsSent, atLoss.SegsLost = 100, int(cfg.LossRate*100) // == threshold
	overLoss := slowChunk()
	overLoss.SegsSent, overLoss.SegsLost = 100, int(cfg.LossRate*100)+1

	// Server latency at exactly ServerShare of delivery time counts as
	// server (>=). Build DFB+DLB = 10000 and server = 3000, keeping DFB
	// within one RTO of the server latency so Eq. 5 stays silent.
	atServer := chunk()
	atServer.DFBms, atServer.DLBms = 3100, 6900
	atServer.CacheHit, atServer.CacheLevel = false, "miss"
	atServer.DwaitMS, atServer.DopenMS, atServer.DreadMS = 500, 500, 500
	atServer.DBEms = cfg.ServerShare*10000 - 1500 // server total exactly 3000
	underServer := atServer
	underServer.DBEms -= 4 // just below the share → residual throughput

	// DBE exactly equal to DCDN on a miss stays cache-miss-fetch (>=).
	split := chunk()
	split.DFBms, split.DLBms = 3100, 4900
	split.CacheHit, split.CacheLevel = false, "miss"
	split.DwaitMS, split.DopenMS, split.DreadMS = 500, 500, 500
	split.DBEms = 1500 // == DCDN
	belowSplit := split
	belowSplit.DBEms = 1499 // CDN service dominates → backend-latency

	cases := []struct {
		name  string
		chunk core.ChunkRecord
		want  Label
	}{
		{"loss at threshold is not loss", atLoss, NetworkThroughput},
		{"loss above threshold", overLoss, NetworkLoss},
		{"server share at threshold", atServer, CacheMissFetch},
		{"server share below threshold", underServer, NetworkThroughput},
		{"DBE == DCDN on miss", split, CacheMissFetch},
		{"DBE < DCDN on miss", belowSplit, BackendLatency},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := Classify(degraded(), []core.ChunkRecord{c.chunk}, Config{})
			if d.Label != c.want {
				t.Fatalf("label = %q, want %q (diagnosis %+v)", d.Label, c.want, d)
			}
		})
	}

	// Eq. 5 bound exactly at DDSBoundMS is not stack; just above is.
	// DDS = DFB − DCDN − DBE − (200 + srtt + 4·srttvar); with srtt=50,
	// var=5, DCDN=1: DDS = DFB − 271.
	at := chunk()
	at.DwaitMS, at.DopenMS, at.DreadMS = 0.4, 0.3, 0.3
	at.SRTTms, at.SRTTVarMS = 50, 5
	at.DFBms = 271 + cfg.DDSBoundMS
	at.DLBms = 8000
	d := Classify(degraded(), []core.ChunkRecord{at}, Config{})
	if d.Label != NetworkThroughput {
		t.Fatalf("DDS at bound: label = %q, want %q", d.Label, NetworkThroughput)
	}
	above := at
	above.DFBms += 2
	d = Classify(degraded(), []core.ChunkRecord{above}, Config{})
	if d.Label != ClientStack {
		t.Fatalf("DDS above bound: label = %q, want %q", d.Label, ClientStack)
	}
}

// TestVoteMajorityAndTieBreak: the majority layer wins; exact ties
// resolve in the fixed specificity order (stack, loss, server,
// throughput).
func TestVoteMajorityAndTieBreak(t *testing.T) {
	lossy := slowChunk()
	lossy.SegsSent, lossy.SegsLost = 100, 20

	// Two loss chunks vs one throughput chunk: loss wins the majority.
	d := Classify(degraded(), []core.ChunkRecord{lossy, lossy, slowChunk()}, Config{})
	if d.Label != NetworkLoss {
		t.Fatalf("majority: label = %q, want %q", d.Label, NetworkLoss)
	}
	if d.SlowChunks != 3 || d.LossSlow != 2 || d.ThroughputSlow != 1 {
		t.Fatalf("vote counts wrong: %+v", d)
	}

	// One of each: the tie breaks toward loss over throughput.
	d = Classify(degraded(), []core.ChunkRecord{lossy, slowChunk()}, Config{})
	if d.Label != NetworkLoss {
		t.Fatalf("tie: label = %q, want %q", d.Label, NetworkLoss)
	}
}

// TestFallbacks covers degraded sessions the slow-chunk screen cannot
// see: no slow chunk at all (vote over everything) and no chunks at all.
func TestFallbacks(t *testing.T) {
	// Degraded session whose chunks are all individually fast: the vote
	// falls back to every chunk; fast hits resolve to throughput
	// (residual) since no layer shows evidence.
	d := Classify(degraded(), []core.ChunkRecord{chunk(), chunk()}, Config{})
	if d.SlowChunks != 2 {
		t.Fatalf("fallback did not vote over all chunks: %+v", d)
	}

	// No chunks at all: network by elimination.
	d = Classify(degraded(), nil, Config{})
	if d.Label != NetworkThroughput || d.SlowChunks != 0 {
		t.Fatalf("empty session: %+v", d)
	}
}

// TestConfigDefaults: the zero config resolves to the documented
// defaults and explicit values survive.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.StartupDegradedMS != 10000 || c.RebufferDegraded != 0.01 ||
		c.LadderTopKbps != 3000 || c.ABRLowShare != 0.5 ||
		c.LossRate != 0.05 || c.DDSBoundMS != 150 || c.ServerShare != 0.3 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	custom := Config{LossRate: 0.2}.WithDefaults()
	if custom.LossRate != 0.2 || custom.DDSBoundMS != 150 {
		t.Fatalf("explicit value overwritten: %+v", custom)
	}
}

// TestLabelsCanonicalOrder pins the order every per-label aggregate
// iterates in; reordering would silently change merged snapshot bytes.
func TestLabelsCanonicalOrder(t *testing.T) {
	want := []Label{CacheMissFetch, BackendLatency, NetworkThroughput,
		NetworkLoss, ProxyTromboned, ClientStack, LiveEdgeLimited, ABRLimited, Healthy}
	got := Labels()
	if len(got) != len(want) {
		t.Fatalf("Labels() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Labels()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestClassifyPure: same inputs, same diagnosis — the property the
// sharded streaming path depends on.
func TestClassifyPure(t *testing.T) {
	s := degraded()
	chunks := []core.ChunkRecord{slowChunk(), chunk(), slowChunk()}
	first := Classify(s, chunks, Config{})
	for i := 0; i < 10; i++ {
		if got := Classify(s, chunks, Config{}); got != first {
			t.Fatalf("classification not pure: %+v vs %+v", got, first)
		}
	}
}
