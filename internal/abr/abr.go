// Package abr implements the bitrate-adaptation algorithms the paper's
// sessions run and the variants its §4.3 take-aways discuss: a tuned
// hybrid (rate + buffer) production algorithm, a pure rate-based
// moving-average picker, a buffer-based (BBA-like) picker, a fixed-rate
// baseline, and estimator variants that either trust the client's
// instantaneous download throughput (vulnerable to download-stack
// buffering), exclude stack outliers, or use the server-side CWND/SRTT
// signal (Eq. 3).
package abr

import "vidperf/internal/stats"

// Context carries the signals available when choosing the next chunk's
// bitrate.
type Context struct {
	Ladder     []int // ascending kbps
	ChunkIndex int
	BufferSec  float64

	// LastChunkKbps is the previous chunk's client-observed instantaneous
	// throughput (chunk bits / D_LB) — inflated by stack buffering.
	LastChunkKbps float64
	// SmoothedKbps is the client's EWMA throughput estimate.
	SmoothedKbps float64
	// ServerKbps is the server-side Eq. 3 estimate MSS·CWND/SRTT.
	ServerKbps float64
	// StackOutlier marks the previous chunk as a detected download-stack
	// outlier (Eq. 4); outlier-aware estimators ignore its sample.
	StackOutlier bool
}

// Algorithm picks the bitrate for the next chunk.
type Algorithm interface {
	Name() string
	// Next returns a bitrate from ctx.Ladder.
	Next(ctx Context) int
}

// clampToLadder returns the highest rung <= kbps, or the lowest rung.
func clampToLadder(ladder []int, kbps float64) int {
	best := ladder[0]
	for _, b := range ladder {
		if float64(b) <= kbps {
			best = b
		}
	}
	return best
}

// Fixed always returns the same bitrate (clamped to the ladder).
type Fixed struct{ Kbps int }

// Name implements Algorithm.
func (f Fixed) Name() string { return "fixed" }

// Next implements Algorithm.
func (f Fixed) Next(ctx Context) int {
	return clampToLadder(ctx.Ladder, float64(f.Kbps))
}

// RateBased picks the top rung under a safety-scaled throughput estimate.
type RateBased struct {
	// Safety scales the estimate (default 0.8).
	Safety float64
	// UseInstantaneous trusts the last chunk's instantaneous throughput
	// instead of the smoothed estimate — the over-shooting failure mode
	// of §4.3.
	UseInstantaneous bool
	// ExcludeOutliers skips samples flagged as stack outliers
	// (the paper's recommendation 2).
	ExcludeOutliers bool
}

// Name implements Algorithm.
func (a RateBased) Name() string {
	switch {
	case a.UseInstantaneous && a.ExcludeOutliers:
		return "rate-instant-screened"
	case a.UseInstantaneous:
		return "rate-instant"
	case a.ExcludeOutliers:
		return "rate-smoothed-screened"
	default:
		return "rate-smoothed"
	}
}

// Next implements Algorithm.
func (a RateBased) Next(ctx Context) int {
	safety := a.Safety
	if safety == 0 {
		safety = 0.8
	}
	if ctx.ChunkIndex == 0 {
		return startRung(ctx.Ladder)
	}
	est := ctx.SmoothedKbps
	if a.UseInstantaneous {
		est = ctx.LastChunkKbps
	}
	if a.ExcludeOutliers && ctx.StackOutlier {
		// Ignore the poisoned sample; fall back to the smoothed view.
		est = ctx.SmoothedKbps
		if a.UseInstantaneous {
			// Even the smoothed estimate absorbed the outlier; damp it.
			est = ctx.SmoothedKbps * 0.9
		}
	}
	return clampToLadder(ctx.Ladder, est*safety)
}

// ServerSignal is the paper's recommendation 1: rate adaptation driven by
// the server-side CWND/SRTT throughput estimate, immune to client stack
// distortion.
type ServerSignal struct{ Safety float64 }

// Name implements Algorithm.
func (ServerSignal) Name() string { return "server-signal" }

// Next implements Algorithm.
func (a ServerSignal) Next(ctx Context) int {
	safety := a.Safety
	if safety == 0 {
		safety = 0.8
	}
	if ctx.ChunkIndex == 0 || ctx.ServerKbps <= 0 {
		return startRung(ctx.Ladder)
	}
	return clampToLadder(ctx.Ladder, ctx.ServerKbps*safety)
}

// BufferBased maps buffer occupancy linearly onto the ladder between a
// reservoir and a cushion (after Huang et al.'s BBA).
type BufferBased struct {
	ReservoirSec float64 // below: minimum rate (default 10)
	CushionSec   float64 // above: maximum rate (default 30)
}

// Name implements Algorithm.
func (BufferBased) Name() string { return "buffer-based" }

// Next implements Algorithm.
func (a BufferBased) Next(ctx Context) int {
	res, cus := a.ReservoirSec, a.CushionSec
	if res == 0 {
		res = 10
	}
	if cus == 0 {
		cus = 30
	}
	if ctx.BufferSec <= res {
		return ctx.Ladder[0]
	}
	if ctx.BufferSec >= cus {
		return ctx.Ladder[len(ctx.Ladder)-1]
	}
	frac := (ctx.BufferSec - res) / (cus - res)
	idx := int(frac * float64(len(ctx.Ladder)-1))
	return ctx.Ladder[idx]
}

// Hybrid is the tuned production algorithm: a screened, smoothed rate
// estimate bounded by buffer state — conservative at startup and when the
// buffer is shallow, aggressive when deep. This is the default the
// simulated sessions run.
type Hybrid struct {
	Safety       float64 // default 0.85
	LowBufferSec float64 // below: step down one rung (default 8)
	HighBuffer   float64 // above: allow one rung above estimate (default 25)
}

// Name implements Algorithm.
func (Hybrid) Name() string { return "hybrid" }

// Next implements Algorithm.
func (a Hybrid) Next(ctx Context) int {
	safety := a.Safety
	if safety == 0 {
		safety = 0.85
	}
	low, high := a.LowBufferSec, a.HighBuffer
	if low == 0 {
		low = 8
	}
	if high == 0 {
		high = 25
	}
	if ctx.ChunkIndex == 0 {
		return startRung(ctx.Ladder)
	}
	est := ctx.SmoothedKbps
	if ctx.StackOutlier {
		est *= 0.9 // damp the poisoned EWMA
	}
	pick := clampToLadder(ctx.Ladder, est*safety)
	idx := ladderIndex(ctx.Ladder, pick)
	switch {
	case ctx.BufferSec < 4:
		// Panic: the buffer is nearly dry — refill at the bottom rung
		// rather than stall again (production players do exactly this).
		idx = 0
	case ctx.BufferSec < low:
		idx -= 2
		if idx < 0 {
			idx = 0
		}
	case ctx.BufferSec > high && idx < len(ctx.Ladder)-1:
		idx++
	}
	return ctx.Ladder[idx]
}

// startRung is the conservative initial bitrate (second rung): low enough
// to start fast, high enough to avoid a guaranteed upswitch.
func startRung(ladder []int) int {
	if len(ladder) > 1 {
		return ladder[1]
	}
	return ladder[0]
}

func ladderIndex(ladder []int, kbps int) int {
	for i, b := range ladder {
		if b == kbps {
			return i
		}
	}
	return 0
}

// Estimator maintains the client-side throughput EWMA the rate-based
// algorithms consume (the "moving average of previous N chunks" of §4.3).
type Estimator struct {
	ewma stats.EWMA
}

// NewEstimator returns an estimator with smoothing factor alpha
// (default 0.3 when alpha <= 0).
func NewEstimator(alpha float64) *Estimator {
	if alpha <= 0 {
		alpha = 0.3
	}
	return &Estimator{ewma: stats.EWMA{Alpha: alpha}}
}

// Observe folds one chunk's instantaneous throughput sample in.
func (e *Estimator) Observe(kbps float64) { e.ewma.Update(kbps) }

// Kbps returns the smoothed estimate, or 0 before any sample.
func (e *Estimator) Kbps() float64 {
	if !e.ewma.Initialized() {
		return 0
	}
	return e.ewma.Value()
}
