package abr

import "testing"

var ladder = []int{235, 375, 560, 750, 1050, 1750, 2350, 3000}

func ctx(chunk int, buf, last, smooth float64) Context {
	return Context{
		Ladder: ladder, ChunkIndex: chunk, BufferSec: buf,
		LastChunkKbps: last, SmoothedKbps: smooth,
	}
}

func TestFixed(t *testing.T) {
	if got := (Fixed{Kbps: 1050}).Next(ctx(3, 10, 0, 0)); got != 1050 {
		t.Errorf("fixed = %d", got)
	}
	// Off-ladder values clamp to the highest rung below.
	if got := (Fixed{Kbps: 1100}).Next(ctx(3, 10, 0, 0)); got != 1050 {
		t.Errorf("clamped fixed = %d", got)
	}
	if got := (Fixed{Kbps: 100}).Next(ctx(3, 10, 0, 0)); got != 235 {
		t.Errorf("floor fixed = %d", got)
	}
}

func TestRateBasedStartsConservative(t *testing.T) {
	a := RateBased{}
	if got := a.Next(ctx(0, 0, 0, 0)); got != 375 {
		t.Errorf("start rung = %d, want 375", got)
	}
}

func TestRateBasedTracksSmoothedEstimate(t *testing.T) {
	a := RateBased{}
	// 0.8 * 2500 = 2000 -> rung 1750.
	if got := a.Next(ctx(5, 20, 9999, 2500)); got != 1750 {
		t.Errorf("pick = %d, want 1750", got)
	}
}

func TestInstantaneousOvershoots(t *testing.T) {
	// A stack-buffered chunk reports a huge instantaneous throughput; the
	// naive instantaneous picker overshoots while the screened one holds.
	naive := RateBased{UseInstantaneous: true}
	screened := RateBased{UseInstantaneous: true, ExcludeOutliers: true}
	c := ctx(5, 20, 80000, 1500)
	c.StackOutlier = true
	if got := naive.Next(c); got != 3000 {
		t.Errorf("naive pick = %d, want overshoot to 3000", got)
	}
	if got := screened.Next(c); got > 1050 {
		t.Errorf("screened pick = %d, want <= 1050", got)
	}
}

func TestServerSignal(t *testing.T) {
	a := ServerSignal{}
	c := ctx(5, 20, 80000, 9000) // client signals poisoned
	c.ServerKbps = 1400          // Eq. 3 view
	if got := a.Next(c); got != 1050 {
		t.Errorf("server-signal pick = %d, want 1050 (0.8*1400=1120)", got)
	}
	// Falls back to the start rung without a server sample.
	c.ServerKbps = 0
	if got := a.Next(c); got != 375 {
		t.Errorf("fallback = %d", got)
	}
}

func TestBufferBased(t *testing.T) {
	a := BufferBased{}
	if got := a.Next(ctx(5, 5, 0, 0)); got != 235 {
		t.Errorf("reservoir pick = %d", got)
	}
	if got := a.Next(ctx(5, 40, 0, 0)); got != 3000 {
		t.Errorf("cushion pick = %d", got)
	}
	mid := a.Next(ctx(5, 20, 0, 0))
	if mid <= 235 || mid >= 3000 {
		t.Errorf("mid-buffer pick = %d, want interior rung", mid)
	}
}

func TestHybridBufferGuards(t *testing.T) {
	a := Hybrid{}
	// Deep buffer: one rung above the estimate's rung.
	deep := a.Next(ctx(5, 30, 0, 2000)) // 0.85*2000=1700 -> 1050... check below
	shallow := a.Next(ctx(5, 2, 0, 2000))
	basec := a.Next(ctx(5, 15, 0, 2000))
	if !(shallow < basec && basec < deep) {
		t.Errorf("buffer guards wrong: shallow=%d base=%d deep=%d", shallow, basec, deep)
	}
}

func TestHybridDampsOutlier(t *testing.T) {
	a := Hybrid{}
	clean := ctx(5, 15, 0, 2200)
	poisoned := clean
	poisoned.StackOutlier = true
	if a.Next(poisoned) > a.Next(clean) {
		t.Error("outlier damping raised the pick")
	}
}

func TestAllStartConservative(t *testing.T) {
	algos := []Algorithm{RateBased{}, Hybrid{}, ServerSignal{}}
	for _, a := range algos {
		if got := a.Next(ctx(0, 0, 0, 0)); got != 375 {
			t.Errorf("%s start rung = %d, want 375", a.Name(), got)
		}
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Algorithm{
		"fixed":                  Fixed{},
		"rate-smoothed":          RateBased{},
		"rate-instant":           RateBased{UseInstantaneous: true},
		"rate-instant-screened":  RateBased{UseInstantaneous: true, ExcludeOutliers: true},
		"rate-smoothed-screened": RateBased{ExcludeOutliers: true},
		"server-signal":          ServerSignal{},
		"buffer-based":           BufferBased{},
		"hybrid":                 Hybrid{},
	}
	for want, a := range cases {
		if a.Name() != want {
			t.Errorf("Name() = %q, want %q", a.Name(), want)
		}
	}
}

func TestEstimator(t *testing.T) {
	e := NewEstimator(0.5)
	if e.Kbps() != 0 {
		t.Error("estimator should start at 0")
	}
	e.Observe(1000)
	e.Observe(2000)
	if e.Kbps() != 1500 {
		t.Errorf("ewma = %v, want 1500", e.Kbps())
	}
	if NewEstimator(0) == nil {
		t.Error("default alpha constructor failed")
	}
}

func TestPicksAlwaysOnLadder(t *testing.T) {
	algos := []Algorithm{
		Fixed{Kbps: 999}, RateBased{}, RateBased{UseInstantaneous: true},
		BufferBased{}, Hybrid{}, ServerSignal{},
	}
	onLadder := func(v int) bool {
		for _, b := range ladder {
			if b == v {
				return true
			}
		}
		return false
	}
	for _, a := range algos {
		for chunk := 0; chunk < 4; chunk++ {
			for _, buf := range []float64{0, 5, 15, 50} {
				for _, est := range []float64{0, 100, 800, 5000, 1e7} {
					c := ctx(chunk, buf, est, est)
					c.ServerKbps = est
					if got := a.Next(c); !onLadder(got) {
						t.Fatalf("%s picked off-ladder %d", a.Name(), got)
					}
				}
			}
		}
	}
}
