package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"vidperf/internal/timeline"
)

// SnapshotSchema is the wire-format version WriteSnapshot emits and
// ReadSnapshot requires.
const SnapshotSchema = 1

// Snapshot is the merged, serializable state of one streamed campaign:
// the named quantile sketches, histograms, and counters. It is the
// exchange format between cmd/vodsim -stream and cmd/analyze -snapshot.
//
// JSON encoding is deterministic: maps marshal with sorted keys and the
// sketch/histogram states are themselves deterministic, so two snapshots
// of the same campaign are byte-identical regardless of how many shards
// ran concurrently.
type Snapshot struct {
	Schema  int `json:"schema"`
	SketchK int `json:"sketch_k"`
	// VirtualMS stamps the snapshot with the virtual-clock time it covers
	// up to. Continuous service mode (internal/serve) sets it on window and
	// checkpoint snapshots; batch runs leave it zero and the field is
	// omitted, so existing snapshot bytes are unchanged.
	VirtualMS float64 `json:"virtual_ms,omitempty"`
	// Labels carries free-form provenance (spec name, cell name, seed…)
	// attached by campaign drivers. Maps marshal with sorted keys, so
	// labels do not disturb snapshot determinism; they are ignored by the
	// figure renderers and surfaced by cmd/analyze -compare.
	Labels map[string]string `json:"labels,omitempty"`
	// Windows lists the timeline windows (in time order) the windowed
	// counters and sketches key on; empty for runs without a timeline.
	Windows    []timeline.Window          `json:"windows,omitempty"`
	Sketches   map[string]*QuantileSketch `json:"sketches"`
	Histograms map[string]*Histogram      `json:"histograms"`
	Counters   map[string]uint64          `json:"counters"`
}

// Label returns the named label ("" if absent).
func (s *Snapshot) Label(name string) string { return s.Labels[name] }

// Sketch returns the named sketch, or an empty one if the snapshot lacks
// it, so consumers can render partial snapshots without nil checks.
func (s *Snapshot) Sketch(name string) *QuantileSketch {
	if sk, ok := s.Sketches[name]; ok && sk != nil {
		return sk
	}
	return NewSketch(s.SketchK)
}

// Histogram returns the named histogram, or nil if absent.
func (s *Snapshot) Histogram(name string) *Histogram { return s.Histograms[name] }

// Counter returns the named counter (zero if absent).
func (s *Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// WriteSnapshot serializes the snapshot as a single JSON object.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(s); err != nil {
		return fmt.Errorf("telemetry: write snapshot: %w", err)
	}
	return bw.Flush()
}

// ReadSnapshot loads a snapshot written by WriteSnapshot, rejecting
// payloads that are not schema-1 telemetry snapshots (a JSONL trace, for
// instance, fails here with a clear error instead of rendering nonsense).
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("telemetry: read snapshot: %w", err)
	}
	if s.Schema != SnapshotSchema {
		return nil, fmt.Errorf("telemetry: snapshot schema %d, want %d (is this a telemetry snapshot, not a trace?)",
			s.Schema, SnapshotSchema)
	}
	return &s, nil
}
