// Package telemetry is the online, one-pass metrics subsystem: it folds
// the runner's per-session and per-chunk records into bounded-memory,
// mergeable aggregates — deterministic KLL-style quantile sketches
// (QuantileSketch), fixed-bin histograms (Histogram), and dimensioned
// counters (CounterSet) keyed by PoP, cache level, bitrate, and org type —
// covering every distribution the paper's §4–§5 analyses consume (startup
// time, D_FB, D_LB, SRTT, server latency, re-buffering ratio, hit ratio).
// A campaign streamed through an Accumulator needs O(sketch) memory
// instead of O(records), which is what lets a single machine characterize
// 10M+ sessions the way the paper's pipeline processed its 523M-chunk
// production trace.
//
// # Determinism rule
//
// Every aggregate here is deterministic given its insertion order: the
// quantile sketch uses a fixed compaction schedule with an alternating
// offset (no randomness), and merging two sketches is a pure function of
// the two states. The sharded session runner feeds one Accumulator per
// PoP shard — each shard's engine is deterministic, so each accumulator's
// insertion order is too — and Campaign.Snapshot merges the per-shard
// accumulators in canonical (ascending) PoP order, never in shard
// completion order. Under that rule a streamed snapshot serializes to
// byte-identical JSON at every Scenario.Parallelism setting, the same
// guarantee core.Merge gives the exact path. Anything that consumes or
// extends this package must preserve it: merge in canonical PoP order,
// and never let goroutine scheduling pick the order aggregates combine.
//
// # Wiring
//
// session.Execute(sc, session.Options{Sinks: campaign.Sink}) streams a campaign;
// Campaign.Snapshot() returns the merged Snapshot, which
// WriteSnapshot/ReadSnapshot serialize as JSON (cmd/vodsim -stream writes
// one, cmd/analyze -snapshot reads one, and internal/analysis's Stream*
// functions compute the sketch-backed counterparts of the exact analyses).
//
// # Diagnosis mode
//
// NewCampaignWith (or NewAccumulatorWith) with a non-nil Config.Diagnose
// additionally classifies every
// consumed session with internal/diagnose (a pure function of the
// session's records, so the determinism rule is preserved) and maintain
// one exact session counter ("sessions_diag=<label>") plus per-label
// startup/re-buffering/bitrate sketches ("startup_ms_diag=<label>", …)
// per diagnosis label — the state behind cmd/analyze -diagnose and the
// diag_share_* rows of the A/B comparison.
//
// # Windowed mode
//
// NewCampaignWith with a Windows list (derived from a scenario's
// timeline, internal/timeline) additionally charges every consumed
// session — by its arrival time, a value fixed at planning, so the
// determinism rule is preserved — to one named timeline window: one
// exact session counter ("sessions_window=<name>"), per-window QoE
// sketches ("startup_ms_window=<name>", …), and, with diagnosis on too,
// per-window per-label counters
// ("sessions_window=<name>_diag=<label>"). This is the state behind
// cmd/analyze -windows: QoE before/during/after an injected fault,
// without ever materializing a record.
package telemetry
