package telemetry

import (
	"bytes"
	"testing"
)

func snapshotBytesOf(t *testing.T, sn *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sn); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

// TestMergeSnapshotsAccumulates: folding two sub-campaign snapshots adds
// their counters, pools their sketch samples, and sums their histograms
// — the aggregates a fold must carry exactly.
func TestMergeSnapshotsAccumulates(t *testing.T) {
	a := NewAccumulatorWith(Config{SketchK: 32})
	b := NewAccumulatorWith(Config{SketchK: 32})
	both := NewAccumulatorWith(Config{SketchK: 32})
	for id := uint64(1); id <= 10; id++ {
		rec := windowSession(id, float64(id*100), float64(400+id*20))
		if id <= 5 {
			a.ConsumeSession(rec, nil)
		} else {
			b.ConsumeSession(rec, nil)
		}
		both.ConsumeSession(rec, nil)
	}
	merged, err := MergeSnapshots(nil, a.snapshot())
	if err != nil {
		t.Fatalf("MergeSnapshots(nil, a): %v", err)
	}
	merged, err = MergeSnapshots(merged, b.snapshot())
	if err != nil {
		t.Fatalf("MergeSnapshots(merged, b): %v", err)
	}
	want := both.snapshot()
	for _, c := range []string{CounterSessions, CounterChunks} {
		if merged.Counter(c) != want.Counter(c) {
			t.Errorf("counter %s = %d, want %d", c, merged.Counter(c), want.Counter(c))
		}
	}
	if got, w := merged.Sketch(MetricStartupMS).N(), want.Sketch(MetricStartupMS).N(); got != w {
		t.Errorf("startup sketch N = %d, want %d", got, w)
	}
	if h, hw := merged.Histogram(MetricStartupMS), want.Histogram(MetricStartupMS); h.N() != hw.N() || h.Mean() != hw.Mean() {
		t.Errorf("startup histogram (N=%d mean=%g), want (N=%d mean=%g)", h.N(), h.Mean(), hw.N(), hw.Mean())
	}
}

// TestMergeSnapshotsNilDstClones: starting a fold from nil deep-copies
// the source — the fold's later mutations must never leak back into the
// window snapshot it started from.
func TestMergeSnapshotsNilDstClones(t *testing.T) {
	a := NewAccumulatorWith(Config{SketchK: 32})
	for id := uint64(1); id <= 6; id++ {
		a.ConsumeSession(windowSession(id, float64(id*50), 600), nil)
	}
	src := a.snapshot()
	before := snapshotBytesOf(t, src)

	fold, err := MergeSnapshots(nil, src)
	if err != nil {
		t.Fatalf("MergeSnapshots(nil, src): %v", err)
	}
	if !bytes.Equal(snapshotBytesOf(t, fold), before) {
		t.Fatal("fold started from nil is not byte-identical to its source")
	}

	b := NewAccumulatorWith(Config{SketchK: 32})
	for id := uint64(7); id <= 12; id++ {
		b.ConsumeSession(windowSession(id, float64(id*50), 900), nil)
	}
	if _, err := MergeSnapshots(fold, b.snapshot()); err != nil {
		t.Fatalf("MergeSnapshots(fold, b): %v", err)
	}
	if !bytes.Equal(snapshotBytesOf(t, src), before) {
		t.Fatal("merging into the fold mutated the source snapshot")
	}
}

// TestMergeSnapshotsRejectsMismatchedShapes: sketch-k and histogram
// geometry mismatches are hard errors, not silent corruption.
func TestMergeSnapshotsRejectsMismatchedShapes(t *testing.T) {
	a := NewAccumulatorWith(Config{SketchK: 32})
	a.ConsumeSession(windowSession(1, 100, 500), nil)
	b := NewAccumulatorWith(Config{SketchK: 64})
	b.ConsumeSession(windowSession(2, 200, 500), nil)
	if _, err := MergeSnapshots(a.snapshot(), b.snapshot()); err == nil {
		t.Fatal("merging sketch k=64 into k=32 did not error")
	}

	h1 := NewHistogram(0, 100, 10)
	h2 := NewHistogram(0, 200, 10)
	s1 := &Snapshot{Schema: SnapshotSchema, SketchK: 32,
		Sketches: map[string]*QuantileSketch{}, Counters: map[string]uint64{},
		Histograms: map[string]*Histogram{"m": h1}}
	s2 := &Snapshot{Schema: SnapshotSchema, SketchK: 32,
		Sketches: map[string]*QuantileSketch{}, Counters: map[string]uint64{},
		Histograms: map[string]*Histogram{"m": h2}}
	if _, err := MergeSnapshots(s1, s2); err == nil {
		t.Fatal("merging histograms with different bounds did not error")
	}
}

// TestWithoutWindowsMatchesUnwindowedRun pins the identity serve's
// cumulative fold stands on: a windowed run's snapshot, with every
// window-keyed entry stripped, is byte-identical to the snapshot the
// same record stream produces with no windows configured at all.
func TestWithoutWindowsMatchesUnwindowedRun(t *testing.T) {
	windowed := NewAccumulatorWith(Config{SketchK: 32, Windows: testWindows()})
	plain := NewAccumulatorWith(Config{SketchK: 32})
	for id := uint64(1); id <= 30; id++ {
		rec := windowSession(id, float64(id*90), float64(300+id*15))
		windowed.ConsumeSession(rec, nil)
		plain.ConsumeSession(rec, nil)
	}
	wsn := windowed.snapshot()
	if len(wsn.Windows) == 0 {
		t.Fatal("windowed snapshot carries no window list")
	}
	stripped := WithoutWindows(wsn)
	if stripped.Windows != nil {
		t.Fatal("WithoutWindows kept the window list")
	}
	if !bytes.Equal(snapshotBytesOf(t, stripped), snapshotBytesOf(t, plain.snapshot())) {
		t.Fatal("window-stripped snapshot differs from the unwindowed run")
	}
	for name := range stripped.Sketches {
		if containsWindowMark(name) {
			t.Errorf("window-keyed sketch %q survived stripping", name)
		}
	}
	for name := range stripped.Counters {
		if containsWindowMark(name) {
			t.Errorf("window-keyed counter %q survived stripping", name)
		}
	}
}

func containsWindowMark(name string) bool {
	return bytes.Contains([]byte(name), []byte(windowKeyMark))
}

// TestSnapshotVirtualMSRoundTrip: the serve-mode stamp survives the wire
// and stays omitted for batch snapshots (zero value).
func TestSnapshotVirtualMSRoundTrip(t *testing.T) {
	a := NewAccumulatorWith(Config{SketchK: 32})
	a.ConsumeSession(windowSession(1, 100, 500), nil)
	sn := a.snapshot()
	if b := snapshotBytesOf(t, sn); bytes.Contains(b, []byte("virtual_ms")) {
		t.Fatal("batch snapshot carries virtual_ms")
	}
	sn.VirtualMS = 3600000
	rt, err := ReadSnapshot(bytes.NewReader(snapshotBytesOf(t, sn)))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if rt.VirtualMS != 3600000 {
		t.Fatalf("VirtualMS round-tripped to %g", rt.VirtualMS)
	}
}
