// merge.go folds whole snapshots together — the operation continuous
// service mode (internal/serve) performs once per closed window: the
// cumulative state is the running fold of the per-window snapshots, and
// the /windows view is the fold of the ring. Per-key sketch and counter
// merges are independent of each other, so the folded state depends only
// on the sequence of MergeSnapshots calls, never on map iteration order,
// preserving the byte-identity invariant.
package telemetry

import (
	"fmt"
	"strings"
)

// MergeSnapshots folds src into dst and returns dst. A nil dst starts a
// new fold as a deep copy of src, so `acc, _ = MergeSnapshots(acc, sn)`
// accumulates from acc == nil. src is never modified and shares no
// mutable state with the result. Windows concatenate in call order;
// VirtualMS takes the maximum of the two stamps; labels are not merged
// (provenance belongs to the fold's owner, not its inputs).
func MergeSnapshots(dst, src *Snapshot) (*Snapshot, error) {
	if src == nil {
		return dst, nil
	}
	if dst == nil {
		dst = &Snapshot{
			Schema:     SnapshotSchema,
			SketchK:    src.SketchK,
			Sketches:   make(map[string]*QuantileSketch, len(src.Sketches)),
			Histograms: make(map[string]*Histogram, len(src.Histograms)),
			Counters:   make(map[string]uint64, len(src.Counters)),
		}
	}
	if src.SketchK != dst.SketchK {
		return dst, fmt.Errorf("telemetry: merging snapshot with sketch k=%d into k=%d", src.SketchK, dst.SketchK)
	}
	for name, sk := range src.Sketches {
		if sk == nil {
			continue
		}
		if d, ok := dst.Sketches[name]; ok {
			d.Merge(sk)
		} else {
			dst.Sketches[name] = sk.Clone()
		}
	}
	for name, h := range src.Histograms {
		if h == nil {
			continue
		}
		d, ok := dst.Histograms[name]
		if !ok {
			dst.Histograms[name] = h.Clone()
			continue
		}
		dlo, dhi, dbins := d.Bounds()
		slo, shi, sbins := h.Bounds()
		if dlo != slo || dhi != shi || dbins != sbins {
			return dst, fmt.Errorf("telemetry: merging histogram %s [%g,%g)/%d into [%g,%g)/%d",
				name, slo, shi, sbins, dlo, dhi, dbins)
		}
		d.Merge(h)
	}
	for name, n := range src.Counters {
		dst.Counters[name] += n
	}
	dst.Windows = append(dst.Windows, src.Windows...)
	if src.VirtualMS > dst.VirtualMS {
		dst.VirtualMS = src.VirtualMS
	}
	return dst, nil
}

// windowKeyMark matches any sketch or counter key carrying the window
// dimension ("<base>_window=<name>" and the two-dimensional
// "sessions_window=<name>_diag=<label>" forms alike).
var windowKeyMark = "_" + WindowDim + "="

// WithoutWindows returns a view of the snapshot with every window-keyed
// sketch and counter, the window list, and the virtual-time stamp
// removed. The base aggregates are shared with s, not copied — the
// result is a read-only filter, safe to merge from but not to mutate.
//
// Windowed attribution only adds window-keyed state next to the base
// aggregates, so stripping it from a windowed run's snapshot yields
// exactly the snapshot the same run would have produced without windows;
// this identity is what lets serve's cumulative fold match the
// equivalent batch run byte for byte.
func WithoutWindows(s *Snapshot) *Snapshot {
	out := &Snapshot{
		Schema:     s.Schema,
		SketchK:    s.SketchK,
		Sketches:   make(map[string]*QuantileSketch, len(s.Sketches)),
		Histograms: make(map[string]*Histogram, len(s.Histograms)),
		Counters:   make(map[string]uint64, len(s.Counters)),
	}
	for name, sk := range s.Sketches {
		if !strings.Contains(name, windowKeyMark) {
			out.Sketches[name] = sk
		}
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h
	}
	for name, n := range s.Counters {
		if !strings.Contains(name, windowKeyMark) {
			out.Counters[name] = n
		}
	}
	return out
}
