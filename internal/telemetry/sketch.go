package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// QuantileSketch is a streaming quantile summary in the KLL family with a
// fixed, deterministic compaction schedule: level h holds items of weight
// 2^h, and when a level reaches k items it sorts them and promotes every
// other one to the level above, starting from an offset that alternates
// between compactions (the deterministic counterpart of KLL's coin flip).
// The state after any sequence of Add and Merge calls is a pure function
// of that sequence, which is what lets the sharded runner produce
// byte-identical snapshots at any parallelism (see the package doc's
// determinism rule).
//
// Memory is O(k·log(n/k)). The worst-case normalized rank error of
// Quantile is bounded by ErrorBound (≈ 4/k); with the default k=256 that
// is under 1.6% of rank. NaN inputs are ignored.
type QuantileSketch struct {
	k      int
	n      uint64
	min    float64
	max    float64
	levels [][]float64 // levels[h] holds items of weight 1<<h
	parity []bool      // next compaction offset per level
}

// DefaultSketchK is the compaction parameter used when callers pass k <= 0.
const DefaultSketchK = 256

// NewSketch returns an empty sketch. k is clamped to an even value >= 8;
// k <= 0 selects DefaultSketchK.
func NewSketch(k int) *QuantileSketch {
	if k <= 0 {
		k = DefaultSketchK
	}
	if k < 8 {
		k = 8
	}
	if k%2 == 1 {
		k++
	}
	return &QuantileSketch{k: k, min: math.Inf(1), max: math.Inf(-1)}
}

// K returns the compaction parameter.
func (s *QuantileSketch) K() int { return s.k }

// N returns how many finite samples have been added (including via Merge).
func (s *QuantileSketch) N() uint64 { return s.n }

// Min returns the smallest sample seen, or NaN for an empty sketch.
func (s *QuantileSketch) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample seen, or NaN for an empty sketch.
func (s *QuantileSketch) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Add folds one sample into the sketch. NaN is ignored.
func (s *QuantileSketch) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	if len(s.levels) == 0 {
		s.levels = [][]float64{make([]float64, 0, s.k)}
		s.parity = []bool{false}
	}
	s.n++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.levels[0] = append(s.levels[0], v)
	s.compactAll()
}

// Clone returns an independent deep copy of the sketch — identical state
// (including the compaction parity), so the copy continues the stream
// exactly as the original would. Checkpointing and snapshot folding in
// continuous service mode rely on this.
func (s *QuantileSketch) Clone() *QuantileSketch {
	c := &QuantileSketch{
		k:   s.k,
		n:   s.n,
		min: s.min,
		max: s.max,
	}
	if s.levels != nil {
		c.levels = make([][]float64, len(s.levels))
		for h, lvl := range s.levels {
			c.levels[h] = append(make([]float64, 0, s.k), lvl...)
		}
		c.parity = append([]bool(nil), s.parity...)
	}
	return c
}

// Merge folds o into s. o is not modified. The result depends only on the
// two states and their order, so callers that need reproducible output
// must merge in a canonical order (the telemetry pipeline uses ascending
// PoP ID).
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil || o.n == 0 {
		return
	}
	for len(s.levels) < len(o.levels) {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.parity = append(s.parity, false)
	}
	for h := range o.levels {
		s.levels[h] = append(s.levels[h], o.levels[h]...)
	}
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.compactAll()
}

// compactAll restores the per-level capacity invariant bottom-up. A
// compaction at level h may overfill h+1; the ascending sweep reaches it
// next, so one pass suffices.
func (s *QuantileSketch) compactAll() {
	for h := 0; h < len(s.levels); h++ {
		if len(s.levels[h]) >= s.k {
			s.compact(h)
		}
	}
}

// compact sorts level h and promotes every other item of its even-length
// prefix to level h+1, alternating the starting offset between calls. An
// odd leftover (the level's maximum) stays behind at full fidelity, so
// compaction error comes only from the pairwise halving.
func (s *QuantileSketch) compact(h int) {
	if h+1 == len(s.levels) {
		s.levels = append(s.levels, make([]float64, 0, s.k))
		s.parity = append(s.parity, false)
	}
	buf := s.levels[h]
	sort.Float64s(buf)
	m := len(buf) &^ 1
	off := 0
	if s.parity[h] {
		off = 1
	}
	s.parity[h] = !s.parity[h]
	for i := off; i < m; i += 2 {
		s.levels[h+1] = append(s.levels[h+1], buf[i])
	}
	s.levels[h] = buf[:copy(buf, buf[m:])]
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1), or NaN
// for an empty sketch. The estimate is always one of the retained samples;
// its rank differs from the true rank by at most ErrorBound()·N().
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	type weighted struct {
		v float64
		w uint64
	}
	total := 0
	for _, lvl := range s.levels {
		total += len(lvl)
	}
	items := make([]weighted, 0, total)
	for h, lvl := range s.levels {
		w := uint64(1) << uint(h)
		for _, v := range lvl {
			items = append(items, weighted{v, w})
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].v < items[j].v })
	if q <= 0 {
		return items[0].v
	}
	if q >= 1 {
		return items[len(items)-1].v
	}
	target := q * float64(s.n-1)
	var cum float64
	for _, it := range items {
		cum += float64(it.w)
		if cum > target {
			return it.v
		}
	}
	return items[len(items)-1].v
}

// CDFAt estimates P(X <= x), or NaN for an empty sketch.
func (s *QuantileSketch) CDFAt(x float64) float64 {
	if s.n == 0 {
		return math.NaN()
	}
	var cum uint64
	for h, lvl := range s.levels {
		w := uint64(1) << uint(h)
		for _, v := range lvl {
			if v <= x {
				cum += w
			}
		}
	}
	return float64(cum) / float64(s.n)
}

// ErrorBound returns the documented worst-case normalized rank error of
// Quantile and CDFAt: 4/k. The alternating compaction offset cancels
// consecutive compaction errors at each level, bounding the outstanding
// error per level by that level's item weight; summed over levels that is
// under 2N/k, and the bound doubles it as a safety margin for the parity
// disturbance merges introduce. The parity tests assert the streaming and
// exact analyses agree within this bound on the shared campaign.
func (s *QuantileSketch) ErrorBound() float64 {
	return math.Min(1, 4/float64(s.k))
}

// sketchWire is the JSON encoding of a sketch. Levels and parity encode
// the exact internal state, so decode(encode(s)) continues the stream
// deterministically.
type sketchWire struct {
	K      int         `json:"k"`
	N      uint64      `json:"n"`
	Min    float64     `json:"min"`
	Max    float64     `json:"max"`
	Parity []bool      `json:"parity,omitempty"`
	Levels [][]float64 `json:"levels,omitempty"`
}

// MarshalJSON encodes the sketch state. An empty sketch writes min/max as
// 0 (JSON has no infinities); UnmarshalJSON restores the sentinels.
func (s *QuantileSketch) MarshalJSON() ([]byte, error) {
	w := sketchWire{K: s.k, N: s.n, Parity: s.parity, Levels: s.levels}
	if s.n > 0 {
		w.Min, w.Max = s.min, s.max
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores a sketch written by MarshalJSON.
func (s *QuantileSketch) UnmarshalJSON(b []byte) error {
	var w sketchWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	fresh := NewSketch(w.K)
	*s = *fresh
	if w.N == 0 {
		return nil
	}
	if len(w.Levels) != len(w.Parity) {
		return fmt.Errorf("telemetry: sketch has %d levels but %d parity bits",
			len(w.Levels), len(w.Parity))
	}
	var held uint64
	for h, lvl := range w.Levels {
		held += uint64(len(lvl)) << uint(h)
	}
	if held != w.N {
		return fmt.Errorf("telemetry: sketch levels hold weight %d, want n=%d", held, w.N)
	}
	s.n = w.N
	s.min, s.max = w.Min, w.Max
	s.levels = w.Levels
	s.parity = w.Parity
	s.compactAll()
	return nil
}
