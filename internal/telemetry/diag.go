// diag.go folds per-session root-cause diagnosis (internal/diagnose)
// into the streaming aggregates: one label-dimensioned session counter
// ("sessions_diag=<label>") and three per-label QoE sketches (startup,
// re-buffering ratio, average bitrate), so campaigns can report not only
// how QoE is distributed but which layer hurt the degraded sessions —
// without ever materializing a record.
package telemetry

import (
	"math"

	"vidperf/internal/core"
	"vidperf/internal/diagnose"
)

// MetricAvgBitrateKbps is the base name of the per-label average-bitrate
// sketches ("avg_bitrate_kbps_diag=<label>"). There is no undimensioned
// sketch of this name; it exists only under the diag dimension.
const MetricAvgBitrateKbps = "avg_bitrate_kbps"

// DiagDim is the dimension name diagnosis counters and sketches key on.
const DiagDim = "diag"

// DiagSessionsKey returns the session counter key for one label,
// "sessions_diag=<label>".
func DiagSessionsKey(label diagnose.Label) string {
	return DimKey(CounterSessions, DiagDim, string(label))
}

// DiagSketchKey returns the per-label sketch name for one base metric,
// e.g. DiagSketchKey(MetricStartupMS, diagnose.Healthy) =
// "startup_ms_diag=healthy".
func DiagSketchKey(base string, label diagnose.Label) string {
	return DimKey(base, DiagDim, string(label))
}

// diagMetricBases are the per-label sketch families, in canonical order.
var diagMetricBases = []string{MetricStartupMS, MetricRebufferRate, MetricAvgBitrateKbps}

// diagSketchNames lists every per-label sketch in canonical order
// (labels outer, metric families inner), the order Merge iterates.
func diagSketchNames() []string {
	labels := diagnose.Labels()
	out := make([]string, 0, len(labels)*len(diagMetricBases))
	for _, l := range labels {
		for _, base := range diagMetricBases {
			out = append(out, DiagSketchKey(base, l))
		}
	}
	return out
}

// enableDiagnosis switches the accumulator into diagnosis mode: every
// consumed session is classified and folded into the per-label state.
// Call before the first ConsumeSession; the per-label sketches are
// created eagerly so empty labels still merge and snapshot
// deterministically.
func (a *Accumulator) enableDiagnosis(cfg diagnose.Config) {
	c := cfg.WithDefaults()
	a.diag = &c
	a.diagNames = diagSketchNames()
	for _, name := range a.diagNames {
		a.sketches[name] = NewSketch(a.k)
	}
}

// consumeDiagnosis classifies one finished session, folds its QoE into
// the label's counters and sketches, and returns the label so windowed
// mode can cross it with the session's arrival window.
func (a *Accumulator) consumeDiagnosis(s core.SessionRecord, chunks []core.ChunkRecord) string {
	label := diagnose.Classify(s, chunks, *a.diag).Label
	a.counters.Inc(DiagSessionsKey(label))
	if !math.IsNaN(s.StartupMS) {
		a.sketches[DiagSketchKey(MetricStartupMS, label)].Add(s.StartupMS)
	}
	a.sketches[DiagSketchKey(MetricRebufferRate, label)].Add(s.RebufferRate)
	a.sketches[DiagSketchKey(MetricAvgBitrateKbps, label)].Add(s.AvgBitrateKbps)
	return string(label)
}
