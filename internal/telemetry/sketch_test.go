package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"vidperf/internal/stats"
)

// permutation returns a deterministic shuffle of 0..n-1, so a value's
// true rank is the value itself.
func permutation(n int, seed uint64) []float64 {
	r := stats.NewRand(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
	return xs
}

func TestSketchSmallStreamIsNearExact(t *testing.T) {
	s := NewSketch(256)
	for _, v := range permutation(101, 1) {
		s.Add(v)
	}
	if s.N() != 101 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Min() != 0 || s.Max() != 100 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Quantile(0); got != 0 {
		t.Errorf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("q1 = %v", got)
	}
	// Below k no compaction happens, so quantiles are order statistics.
	if got := s.Quantile(0.5); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := s.Quantile(0.9); math.Abs(got-90) > 1 {
		t.Errorf("p90 = %v, want ~90", got)
	}
}

func TestSketchRankErrorWithinBound(t *testing.T) {
	const n = 200000
	s := NewSketch(256)
	for _, v := range permutation(n, 7) {
		s.Add(v)
	}
	bound := s.ErrorBound() * n
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := s.Quantile(q)
		want := q * (n - 1)
		if math.Abs(got-want) > bound {
			t.Errorf("q=%.2f: rank %v off true %v by more than bound %v", q, got, want, bound)
		}
	}
	if got := s.CDFAt(n / 2); math.Abs(got-0.5) > s.ErrorBound() {
		t.Errorf("CDFAt(mid) = %v", got)
	}
}

func TestSketchMergePreservesBound(t *testing.T) {
	const n, parts = 120000, 8
	xs := permutation(n, 11)
	shards := make([]*QuantileSketch, parts)
	for i := range shards {
		shards[i] = NewSketch(256)
	}
	for i, v := range xs {
		shards[i%parts].Add(v)
	}
	merged := NewSketch(256)
	var total uint64
	for _, sh := range shards {
		total += sh.N()
		merged.Merge(sh)
	}
	if merged.N() != uint64(n) || total != uint64(n) {
		t.Fatalf("merged N = %d", merged.N())
	}
	bound := merged.ErrorBound() * n
	for _, q := range []float64{0.05, 0.5, 0.95} {
		got := merged.Quantile(q)
		want := q * (n - 1)
		if math.Abs(got-want) > bound {
			t.Errorf("q=%.2f: rank %v off true %v by more than bound %v", q, got, want, bound)
		}
	}
}

func TestSketchDeterministicState(t *testing.T) {
	build := func() []byte {
		s := NewSketch(64)
		for _, v := range permutation(50000, 3) {
			s.Add(v)
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("identical insertion orders produced different sketch states")
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	s := NewSketch(32)
	for _, v := range permutation(10000, 5) {
		s.Add(v)
	}
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back QuantileSketch
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("sketch JSON round-trip not byte-identical")
	}
	if back.N() != s.N() || back.Quantile(0.5) != s.Quantile(0.5) {
		t.Fatalf("round-trip changed state: n %d vs %d", back.N(), s.N())
	}
}

func TestSketchRejectsCorruptWire(t *testing.T) {
	// Levels holding less weight than the claimed n must not decode.
	bad := `{"k":32,"n":100,"min":0,"max":1,"parity":[false],"levels":[[0.5]]}`
	var s QuantileSketch
	if err := json.Unmarshal([]byte(bad), &s); err == nil {
		t.Fatal("corrupt sketch decoded without error")
	}
}

func TestSketchEmptyAndNaN(t *testing.T) {
	s := NewSketch(0)
	if s.K() != DefaultSketchK {
		t.Fatalf("default k = %d", s.K())
	}
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty sketch should answer NaN")
	}
	s.Add(math.NaN())
	if s.N() != 0 {
		t.Error("NaN was counted")
	}
	s.Add(2)
	s.Merge(nil)
	s.Merge(NewSketch(0))
	if s.N() != 1 || s.Quantile(0.5) != 2 {
		t.Errorf("state after nil/empty merges: n=%d", s.N())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10) // 0.0 .. 9.9 uniform
	}
	h.Add(-1)         // under
	h.Add(10)         // over (hi-exclusive)
	h.Add(math.NaN()) // ignored
	if h.N() != 102 {
		t.Fatalf("N = %d", h.N())
	}
	bins, under, over := h.Counts()
	if under != 1 || over != 1 {
		t.Fatalf("under/over = %d/%d", under, over)
	}
	for i, c := range bins {
		if c != 10 {
			t.Fatalf("bin %d count %d, want 10", i, c)
		}
	}
	if med := h.Quantile(0.5); math.Abs(med-5) > 1 {
		t.Errorf("median = %v", med)
	}
	o := NewHistogram(0, 10, 10)
	o.Add(5)
	h.Merge(o)
	if h.N() != 103 {
		t.Errorf("merged N = %d", h.N())
	}
}

func TestHistogramMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	a, b := NewHistogram(0, 10, 10), NewHistogram(0, 20, 10)
	b.Add(1)
	a.Merge(b)
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(0, 1, 20)
	for _, v := range permutation(1000, 9) {
		h.Add(v / 1000)
	}
	b1, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("histogram JSON round-trip not byte-identical")
	}
}

func TestCounterDimensions(t *testing.T) {
	cs := NewCounterSet()
	cs.Inc(IntDimKey("chunks", "pop", 3))
	cs.Inc(IntDimKey("chunks", "pop", 3))
	cs.Inc(IntDimKey("chunks", "pop", 10))
	cs.Inc(DimKey("chunks", "cache", "ram"))
	o := NewCounterSet()
	o.AddN(IntDimKey("chunks", "pop", 3), 5)
	cs.Merge(o)

	rows := CountersByDim(cs.Map(), "chunks", "pop")
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Zero-padding keeps numeric order under the lexicographic sort.
	if rows[0].IntValue() != 3 || rows[0].N != 7 || rows[1].IntValue() != 10 {
		t.Fatalf("rows = %+v", rows)
	}
	if got := CountersByDim(cs.Map(), "chunks", "cache"); len(got) != 1 || got[0].Value != "ram" {
		t.Fatalf("cache rows = %+v", got)
	}
	if got := CountersByDim(cs.Map(), "sessions", "pop"); len(got) != 0 {
		t.Fatalf("unexpected rows %+v", got)
	}
}
