package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CounterSet is a bag of named monotonic counters. Dimensioned counters
// use keys of the form "<base>_<dim>=<value>" (built by DimKey), e.g.
// "chunks_cache=ram" or "sessions_pop=003"; numeric dimension values are
// zero-padded so lexicographic key order matches numeric order and JSON
// output (sorted keys) is stable. Merging adds counts, so the result is
// independent of merge order.
type CounterSet struct {
	c map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet { return &CounterSet{c: map[string]uint64{}} }

// Inc adds one to the named counter.
func (cs *CounterSet) Inc(key string) { cs.c[key]++ }

// AddN adds n to the named counter.
func (cs *CounterSet) AddN(key string, n uint64) { cs.c[key] += n }

// Get returns the counter's value (zero if never incremented).
func (cs *CounterSet) Get(key string) uint64 { return cs.c[key] }

// Merge adds o's counts into cs.
func (cs *CounterSet) Merge(o *CounterSet) {
	if o == nil {
		return
	}
	for k, v := range o.c {
		cs.c[k] += v
	}
}

// Map returns a copy of the counters.
func (cs *CounterSet) Map() map[string]uint64 {
	out := make(map[string]uint64, len(cs.c))
	for k, v := range cs.c {
		out[k] = v
	}
	return out
}

// DimKey builds the canonical dimensioned-counter key "<base>_<dim>=<value>".
func DimKey(base, dim, value string) string { return base + "_" + dim + "=" + value }

// IntDimKey is DimKey for integer dimension values, zero-padded to five
// digits so sorted keys are in numeric order.
func IntDimKey(base, dim string, value int) string {
	return DimKey(base, dim, fmt.Sprintf("%05d", value))
}

// DimCount is one (dimension value, count) row extracted from a counter
// map.
type DimCount struct {
	Value string
	N     uint64
}

// IntValue parses the dimension value as an integer (zero-padded values
// from IntDimKey parse cleanly). It returns -1 if the value is not
// numeric.
func (d DimCount) IntValue() int {
	v, err := strconv.Atoi(d.Value)
	if err != nil {
		return -1
	}
	return v
}

// CountersByDim extracts every counter of the form "<base>_<dim>=<value>"
// from a counter map, sorted by value so the output order is
// deterministic.
func CountersByDim(counters map[string]uint64, base, dim string) []DimCount {
	prefix := base + "_" + dim + "="
	var out []DimCount
	for k, n := range counters {
		if v, ok := strings.CutPrefix(k, prefix); ok {
			out = append(out, DimCount{Value: v, N: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}
