package telemetry_test

// parity_test.go pins the streaming and exact paths together: one shared
// campaign runs once with a TeeSink feeding both a materialized Dataset
// and the telemetry Campaign, then every sketch-backed quantile is
// checked against the exact ECDF within the sketch's documented rank
// error, every counter against the exact count, and the snapshot bytes
// against themselves across parallelism settings.

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"vidperf/internal/analysis"
	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/session"
	"vidperf/internal/stats"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// parityScenario is the shared 6000-session campaign (the same shape
// bench_test.go and the figures tests use).
func parityScenario() workload.Scenario {
	return workload.Scenario{
		Seed:              2016,
		NumSessions:       6000,
		NumPrefixes:       900,
		MeanWatchedChunks: 12,
		Catalog:           catalog.Config{NumVideos: 3000},
	}
}

var (
	parityOnce sync.Once
	parityDS   *core.Dataset
	paritySnap *telemetry.Snapshot
)

// parityRun executes the shared campaign once, teeing every finished
// session into both paths so they see literally the same records.
func parityRun(t *testing.T) (*core.Dataset, *telemetry.Snapshot) {
	t.Helper()
	parityOnce.Do(func() {
		camp := telemetry.NewCampaign(0)
		var col core.Collector
		_, err := session.Execute(parityScenario(), session.Options{Sinks: func(popID int) core.RecordSink {
			ds := &core.Dataset{}
			col.Add(ds)
			return core.TeeSink(ds, camp.Sink(popID))
		}})
		if err != nil {
			panic(err)
		}
		parityDS = col.Merge()
		paritySnap = camp.Snapshot()
	})
	if parityDS == nil || paritySnap == nil {
		t.Fatal("shared campaign failed")
	}
	return parityDS, paritySnap
}

// assertQuantileParity checks that each sketch quantile lands between the
// exact quantiles one rank-error band to either side.
func assertQuantileParity(t *testing.T, name string, sk *telemetry.QuantileSketch, exact []float64) {
	t.Helper()
	if uint64(len(exact)) != sk.N() {
		t.Fatalf("%s: sketch n=%d, exact n=%d", name, sk.N(), len(exact))
	}
	if sk.N() == 0 {
		t.Fatalf("%s: no samples", name)
	}
	e := stats.NewECDF(exact)
	eps := sk.ErrorBound()
	for _, q := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		got := sk.Quantile(q)
		lo := e.Quantile(math.Max(0, q-eps))
		hi := e.Quantile(math.Min(1, q+eps))
		if got < lo || got > hi {
			t.Errorf("%s q=%.2f: sketch %v outside exact band [%v, %v] (eps=%.4f)",
				name, q, got, lo, hi, eps)
		}
	}
	if sk.Min() != stats.Min(exact) || sk.Max() != stats.Max(exact) {
		t.Errorf("%s: sketch min/max %v/%v, exact %v/%v",
			name, sk.Min(), sk.Max(), stats.Min(exact), stats.Max(exact))
	}
}

// TestStreamingQuantileParity checks every sketch the accumulator
// maintains against the distribution recomputed from the exact dataset.
func TestStreamingQuantileParity(t *testing.T) {
	ds, sn := parityRun(t)

	var startup, rebuf []float64
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		if !math.IsNaN(s.StartupMS) {
			startup = append(startup, s.StartupMS)
		}
		rebuf = append(rebuf, s.RebufferRate)
	}
	chunkMetric := func(f func(*core.ChunkRecord) float64, keep func(*core.ChunkRecord) bool) []float64 {
		var out []float64
		for i := range ds.Chunks {
			c := &ds.Chunks[i]
			if keep == nil || keep(c) {
				out = append(out, f(c))
			}
		}
		return out
	}
	hit := func(c *core.ChunkRecord) bool { return c.CacheHit }
	miss := func(c *core.ChunkRecord) bool { return !c.CacheHit }

	assertQuantileParity(t, telemetry.MetricStartupMS, sn.Sketch(telemetry.MetricStartupMS), startup)
	assertQuantileParity(t, telemetry.MetricRebufferRate, sn.Sketch(telemetry.MetricRebufferRate), rebuf)
	assertQuantileParity(t, telemetry.MetricDFBMS, sn.Sketch(telemetry.MetricDFBMS),
		chunkMetric(func(c *core.ChunkRecord) float64 { return c.DFBms }, nil))
	assertQuantileParity(t, telemetry.MetricDLBMS, sn.Sketch(telemetry.MetricDLBMS),
		chunkMetric(func(c *core.ChunkRecord) float64 { return c.DLBms }, nil))
	assertQuantileParity(t, telemetry.MetricSRTTMS, sn.Sketch(telemetry.MetricSRTTMS),
		chunkMetric(func(c *core.ChunkRecord) float64 { return c.SRTTms }, nil))
	assertQuantileParity(t, telemetry.MetricServerMS, sn.Sketch(telemetry.MetricServerMS),
		chunkMetric((*core.ChunkRecord).ServerLatencyMS, nil))
	assertQuantileParity(t, telemetry.MetricServerHitMS, sn.Sketch(telemetry.MetricServerHitMS),
		chunkMetric((*core.ChunkRecord).ServerLatencyMS, hit))
	assertQuantileParity(t, telemetry.MetricServerMissMS, sn.Sketch(telemetry.MetricServerMissMS),
		chunkMetric((*core.ChunkRecord).ServerLatencyMS, miss))
	assertQuantileParity(t, telemetry.MetricDwaitMS, sn.Sketch(telemetry.MetricDwaitMS),
		chunkMetric(func(c *core.ChunkRecord) float64 { return c.DwaitMS }, nil))
	assertQuantileParity(t, telemetry.MetricDopenMS, sn.Sketch(telemetry.MetricDopenMS),
		chunkMetric(func(c *core.ChunkRecord) float64 { return c.DopenMS }, nil))
	assertQuantileParity(t, telemetry.MetricDreadMS, sn.Sketch(telemetry.MetricDreadMS),
		chunkMetric(func(c *core.ChunkRecord) float64 { return c.DreadMS }, nil))
}

// TestStreamingCountersExact checks that the dimensioned counters — which
// unlike the sketches are exact — equal the dataset-derived counts.
func TestStreamingCountersExact(t *testing.T) {
	ds, sn := parityRun(t)

	neverStarted := uint64(0)
	orgSessions := map[string]uint64{}
	popChunks := map[int]uint64{}
	popHits := map[int]uint64{}
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		if math.IsNaN(s.StartupMS) {
			neverStarted++
		}
		orgSessions[s.OrgType]++
	}
	var hits, retries uint64
	levelChunks := map[string]uint64{}
	bitrateChunks := map[int]uint64{}
	for i := range ds.Chunks {
		c := &ds.Chunks[i]
		s := ds.Session(c.SessionID)
		popChunks[s.PoP]++
		if c.CacheHit {
			hits++
			popHits[s.PoP]++
		}
		if c.RetryTimer {
			retries++
		}
		levelChunks[c.CacheLevel]++
		bitrateChunks[c.BitrateKbps]++
	}

	if got := sn.Counter(telemetry.CounterSessions); got != uint64(len(ds.Sessions)) {
		t.Errorf("sessions counter %d, want %d", got, len(ds.Sessions))
	}
	if got := sn.Counter(telemetry.CounterChunks); got != uint64(len(ds.Chunks)) {
		t.Errorf("chunks counter %d, want %d", got, len(ds.Chunks))
	}
	if got := sn.Counter(telemetry.CounterSessionsNeverStart); got != neverStarted {
		t.Errorf("never-started counter %d, want %d", got, neverStarted)
	}
	if got := sn.Counter(telemetry.CounterChunksHit); got != hits {
		t.Errorf("hit counter %d, want %d", got, hits)
	}
	if got := sn.Counter(telemetry.CounterChunksRetryTimer); got != retries {
		t.Errorf("retry counter %d, want %d", got, retries)
	}

	mix := analysis.StreamHitRatios(sn)
	if want := float64(hits) / float64(len(ds.Chunks)); mix.Overall != want {
		t.Errorf("overall hit ratio %v, want %v", mix.Overall, want)
	}
	if len(mix.ByPoP) != len(popChunks) {
		t.Fatalf("%d PoP rows, want %d", len(mix.ByPoP), len(popChunks))
	}
	for _, row := range mix.ByPoP {
		if row.Chunks != popChunks[row.PoP] || row.Hits != popHits[row.PoP] {
			t.Errorf("pop %d: %d/%d chunks/hits, want %d/%d",
				row.PoP, row.Chunks, row.Hits, popChunks[row.PoP], popHits[row.PoP])
		}
	}
	for _, d := range mix.ByLevel {
		if d.N != levelChunks[d.Value] {
			t.Errorf("cache level %q: %d, want %d", d.Value, d.N, levelChunks[d.Value])
		}
	}
	if len(mix.ByLevel) != len(levelChunks) {
		t.Errorf("%d cache levels, want %d", len(mix.ByLevel), len(levelChunks))
	}
	for _, d := range mix.Bitrates {
		if d.N != bitrateChunks[d.IntValue()] {
			t.Errorf("bitrate %d: %d, want %d", d.IntValue(), d.N, bitrateChunks[d.IntValue()])
		}
	}
	for _, d := range mix.Orgs {
		if d.N != orgSessions[d.Value] {
			t.Errorf("org %q: %d, want %d", d.Value, d.N, orgSessions[d.Value])
		}
	}
}

// TestStreamingTableParity compares the headline numbers of the
// sketch-backed Fig. 5 analysis against the exact one.
func TestStreamingTableParity(t *testing.T) {
	ds, sn := parityRun(t)
	exact := analysis.BreakdownCDNLatency(ds)
	stream := analysis.StreamBreakdownCDNLatency(sn)

	if stream.RetryTimerChunkShare != exact.RetryTimerChunkShare {
		t.Errorf("retry share %v, want exact %v",
			stream.RetryTimerChunkShare, exact.RetryTimerChunkShare)
	}
	eps := stream.TotalHit.ErrorBound()
	if lo, hi := exact.TotalHit.Quantile(0.5-eps), exact.TotalHit.Quantile(0.5+eps); stream.MedianHitMS < lo || stream.MedianHitMS > hi {
		t.Errorf("median hit %v outside exact band [%v, %v]", stream.MedianHitMS, lo, hi)
	}
	if lo, hi := exact.TotalMiss.Quantile(0.5-eps), exact.TotalMiss.Quantile(0.5+eps); stream.MedianMissMS < lo || stream.MedianMissMS > hi {
		t.Errorf("median miss %v outside exact band [%v, %v]", stream.MedianMissMS, lo, hi)
	}
	// The paper's headline 40x hit/miss gap must survive sketching.
	if stream.MedianMissMS/stream.MedianHitMS < 10 {
		t.Errorf("hit/miss gap %vx lost in streaming path", stream.MedianMissMS/stream.MedianHitMS)
	}

	// Histogram means are exact (running sums), so they must match the
	// dataset to float tolerance.
	var rebuf stats.Summary
	for i := range ds.Sessions {
		rebuf.Add(ds.Sessions[i].RebufferRate)
	}
	h := sn.Histogram(telemetry.MetricRebufferRate)
	if h == nil || h.N() != uint64(len(ds.Sessions)) {
		t.Fatalf("rebuffer histogram missing or short: %+v", h)
	}
	if math.Abs(h.Mean()-rebuf.Mean()) > 1e-9 {
		t.Errorf("histogram mean %v, exact %v", h.Mean(), rebuf.Mean())
	}
}

// TestStreamingByteIdentical is the subsystem's determinism guarantee: a
// streamed campaign serializes to exactly the same snapshot bytes at any
// parallelism, because per-shard insertion orders are deterministic and
// shards merge in canonical PoP order.
func TestStreamingByteIdentical(t *testing.T) {
	snapshotBytes := func(par int) []byte {
		sc := workload.Scenario{
			Seed:        21,
			NumSessions: 1000,
			NumPrefixes: 300,
			Catalog:     catalog.Config{NumVideos: 800},
			Parallelism: par,
		}
		camp := telemetry.NewCampaign(0)
		if _, err := session.Execute(sc, session.Options{Sinks: camp.Sink}); err != nil {
			t.Fatalf("Execute(par=%d): %v", par, err)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteSnapshot(&buf, camp.Snapshot()); err != nil {
			t.Fatalf("WriteSnapshot(par=%d): %v", par, err)
		}
		return buf.Bytes()
	}
	seq := snapshotBytes(1)
	for _, par := range []int{2, 8} {
		if got := snapshotBytes(par); !bytes.Equal(seq, got) {
			t.Fatalf("Parallelism=%d snapshot differs from sequential (%d vs %d bytes)",
				par, len(got), len(seq))
		}
	}
	// And the serialized snapshot must survive a read-write cycle.
	sn, err := telemetry.ReadSnapshot(bytes.NewReader(seq))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteSnapshot(&buf, sn); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, buf.Bytes()) {
		t.Fatal("snapshot read-write cycle not byte-identical")
	}
}
