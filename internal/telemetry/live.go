// live.go folds live-mode QoE (internal/live) into the streaming
// aggregates: the join-time and live-edge-lag distributions, a
// per-channel session counter, and the campaign-wide switch count. Live
// mode is opt-in (Config.Live) with eagerly created sketches, so
// non-live snapshots carry not a byte of live state and live snapshots
// merge deterministically at any parallelism.
package telemetry

import (
	"math"

	"vidperf/internal/core"
)

// Metric names of the live-mode sketches.
const (
	// MetricJoinTimeMS is the per-session join time: arrival to first
	// frame of an in-progress channel (the live analogue of startup
	// delay; sessions that never start are excluded, as for startup_ms).
	MetricJoinTimeMS = "join_time_ms"
	// MetricLiveEdgeLagMS is the per-session total time spent waiting on
	// the publish clock — stalls caused by the medium rather than the
	// delivery path.
	MetricLiveEdgeLagMS = "live_edge_lag_ms"
)

// CounterLiveSwitches counts mid-stream channel switches across the
// campaign.
const CounterLiveSwitches = "live_switches"

// LiveChannelDim is the dimension name per-channel counters key on
// ("sessions_channel=00003").
const LiveChannelDim = "channel"

// LiveChannelSessionsKey returns the per-channel session counter key.
func LiveChannelSessionsKey(ch int) string {
	return IntDimKey(CounterSessions, LiveChannelDim, ch)
}

// liveMetricNames lists the live sketches in canonical order; merges
// iterate this slice (never a map), like every other sketch family.
var liveMetricNames = []string{MetricJoinTimeMS, MetricLiveEdgeLagMS}

// enableLive switches the accumulator into live mode. Call before the
// first ConsumeSession; the sketches are created eagerly so empty
// shards still merge and snapshot deterministically.
func (a *Accumulator) enableLive() {
	a.live = true
	a.liveNames = append([]string(nil), liveMetricNames...)
	for _, name := range a.liveNames {
		a.sketches[name] = NewSketch(a.k)
	}
}

// consumeLive folds one finished live session into the live aggregates.
func (a *Accumulator) consumeLive(s core.SessionRecord) {
	if !s.Live {
		return
	}
	a.counters.Inc(LiveChannelSessionsKey(s.LiveChannel))
	a.counters.AddN(CounterLiveSwitches, uint64(s.LiveSwitches))
	if !math.IsNaN(s.StartupMS) {
		a.sketches[MetricJoinTimeMS].Add(s.StartupMS)
	}
	a.sketches[MetricLiveEdgeLagMS].Add(s.LiveEdgeLagMS)
}
