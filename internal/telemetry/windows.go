// windows.go folds timeline windows (internal/timeline) into the
// streaming aggregates: every finished session is charged — by its
// arrival time — to one window of the campaign's event timeline, with a
// per-window session counter, per-window QoE sketches (startup,
// re-buffering ratio, average bitrate), and, when diagnosis is also
// enabled, per-window per-label cause counters. cmd/analyze -windows
// renders the before/during/after tables from this state, which is how a
// fault-injection campaign shows QoE degrading inside a phase and
// recovering afterwards without ever materializing a record.
package telemetry

import (
	"math"

	"vidperf/internal/core"
	"vidperf/internal/timeline"
)

// WindowDim is the dimension name windowed counters and sketches key on.
const WindowDim = "window"

// WindowSessionsKey returns the session counter key for one window,
// "sessions_window=<name>".
func WindowSessionsKey(name string) string {
	return DimKey(CounterSessions, WindowDim, name)
}

// WindowSketchKey returns the per-window sketch name for one base
// metric, e.g. WindowSketchKey(MetricStartupMS, "w01-outage") =
// "startup_ms_window=w01-outage".
func WindowSketchKey(base, name string) string {
	return DimKey(base, WindowDim, name)
}

// WindowDiagSessionsKey returns the two-dimensional cause counter key
// "sessions_window=<name>_diag=<label>" — parseable by CountersByDim
// with base "sessions_window=<name>" and dimension "diag".
func WindowDiagSessionsKey(window, label string) string {
	return DimKey(WindowSessionsKey(window), DiagDim, label)
}

// windowMetricBases are the per-window sketch families, in canonical
// order — the same QoE trio the diagnosis dimension maintains.
var windowMetricBases = []string{MetricStartupMS, MetricRebufferRate, MetricAvgBitrateKbps}

// enableWindows switches the accumulator into windowed mode: every
// consumed session is charged to the window containing its arrival time.
// Call before the first ConsumeSession; per-window sketches are created
// eagerly so empty windows still merge and snapshot deterministically.
func (a *Accumulator) enableWindows(ws []timeline.Window) {
	if len(ws) == 0 {
		return
	}
	a.windows = append([]timeline.Window(nil), ws...)
	a.windowNames = a.windowNames[:0]
	for _, w := range a.windows {
		for _, base := range windowMetricBases {
			name := WindowSketchKey(base, w.Name)
			a.windowNames = append(a.windowNames, name)
			a.sketches[name] = NewSketch(a.k)
		}
	}
}

// consumeWindow charges one finished session to its arrival window.
func (a *Accumulator) consumeWindow(s core.SessionRecord, diagLabel string) {
	i := timeline.WindowAt(a.windows, s.ArrivalMS)
	if i < 0 {
		// Arrivals outside every window (possible only if the windows do
		// not span the arrival window) are counted so the coverage
		// invariant surfaces the gap instead of hiding it.
		a.counters.Inc(CounterSessionsUnwindowed)
		return
	}
	w := a.windows[i].Name
	a.counters.Inc(WindowSessionsKey(w))
	if !math.IsNaN(s.StartupMS) {
		a.sketches[WindowSketchKey(MetricStartupMS, w)].Add(s.StartupMS)
	}
	a.sketches[WindowSketchKey(MetricRebufferRate, w)].Add(s.RebufferRate)
	a.sketches[WindowSketchKey(MetricAvgBitrateKbps, w)].Add(s.AvgBitrateKbps)
	if diagLabel != "" {
		a.counters.Inc(WindowDiagSessionsKey(w, diagLabel))
	}
}
