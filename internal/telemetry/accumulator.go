package telemetry

import (
	"math"
	"sync"

	"vidperf/internal/core"
	"vidperf/internal/diagnose"
	"vidperf/internal/timeline"
)

// Metric names of the quantile sketches an Accumulator maintains — one
// per distribution the §4–§5 analyses consume.
const (
	MetricStartupMS    = "startup_ms"     // per-session startup delay (started sessions only)
	MetricRebufferRate = "rebuffer_rate"  // per-session fraction of time stalled
	MetricDFBMS        = "dfb_ms"         // per-chunk first-byte delay
	MetricDLBMS        = "dlb_ms"         // per-chunk last-byte delay
	MetricSRTTMS       = "srtt_ms"        // per-chunk kernel SRTT snapshot
	MetricServerMS     = "server_ms"      // per-chunk D_CDN + D_BE
	MetricServerHitMS  = "server_hit_ms"  // server latency, cache hits
	MetricServerMissMS = "server_miss_ms" // server latency, cache misses
	MetricDwaitMS      = "dwait_ms"       // Fig. 5 breakdown components
	MetricDopenMS      = "dopen_ms"
	MetricDreadMS      = "dread_ms"
)

// metricNames lists every sketch in canonical order; merges iterate this
// slice (never a map) so the combined state is reproducible.
var metricNames = []string{
	MetricStartupMS, MetricRebufferRate, MetricDFBMS, MetricDLBMS,
	MetricSRTTMS, MetricServerMS, MetricServerHitMS, MetricServerMissMS,
	MetricDwaitMS, MetricDopenMS, MetricDreadMS,
}

// Counter names (see CounterSet for the dimensioned-key convention; the
// dimensions in use are pop, cache, bitrate, and org).
const (
	CounterSessions           = "sessions" // also the base of _pop= / _org= / _window= keys
	CounterSessionsNeverStart = "sessions_never_started"
	CounterChunks             = "chunks" // also the base of _pop= / _cache= / _bitrate= keys
	CounterChunksHit          = "chunks_hit"
	CounterChunksRetryTimer   = "chunks_retry_timer"
	// CounterSessionsUnwindowed counts sessions whose arrival fell
	// outside every timeline window — always zero when the windows span
	// the arrival window; non-zero breaks the -windows coverage check.
	CounterSessionsUnwindowed = "sessions_unwindowed"
)

// histogram shapes, shared by every accumulator so snapshots merge.
const (
	startupHistMaxMS = 20000
	startupHistBins  = 200
	rebufHistBins    = 100
)

// Accumulator folds finished sessions into the campaign's bounded-memory
// aggregates. It implements core.RecordSink; the sharded runner gives
// each PoP shard its own Accumulator, so no locking is needed on the
// record path.
type Accumulator struct {
	k        int
	sketches map[string]*QuantileSketch
	hists    map[string]*Histogram
	counters *CounterSet

	// Diagnosis mode (see diag.go): non-nil diag classifies every
	// consumed session; diagNames is the canonical order the per-label
	// sketches merge in.
	diag      *diagnose.Config
	diagNames []string

	// Windowed mode (see windows.go): sessions are charged by arrival
	// time to these timeline windows; windowNames is the canonical order
	// the per-window sketches merge in.
	windows     []timeline.Window
	windowNames []string

	// Live mode (see live.go): join-time and live-edge-lag sketches plus
	// per-channel counters; liveNames is their canonical merge order.
	live      bool
	liveNames []string

	// Proxy mode (see proxy.go): proxied-vs-direct QoE sketches plus
	// per-egress counters; proxyNames is their canonical merge order.
	proxy      bool
	proxyNames []string
}

// Config assembles an accumulator's optional modes next to its sketch
// parameter: per-session diagnosis (nil = off) and timeline-window
// attribution (nil = off). The zero value is a plain accumulator with
// the default sketch parameter.
type Config struct {
	// SketchK is the quantile-sketch compaction parameter (<= 0 selects
	// DefaultSketchK).
	SketchK int
	// Diagnose, when non-nil, classifies every consumed session with
	// internal/diagnose (see diag.go).
	Diagnose *diagnose.Config
	// Windows, when non-empty, charges every consumed session to the
	// timeline window containing its arrival (see windows.go).
	Windows []timeline.Window
	// Live, when true, folds live-mode QoE (join time, live-edge lag,
	// per-channel counters) into the aggregates (see live.go).
	Live bool
	// Proxy, when true, folds proxied-population QoE (proxied-vs-direct
	// splits, per-egress counters) into the aggregates (see proxy.go).
	Proxy bool
}

// NewAccumulator returns an empty accumulator. Dimension counters key on
// each record's own PoP/org/cache fields, so one accumulator serves one
// shard or a whole merged campaign alike. k is the quantile-sketch
// compaction parameter (<= 0 selects DefaultSketchK).
func NewAccumulator(k int) *Accumulator {
	a := &Accumulator{
		k:        k,
		sketches: make(map[string]*QuantileSketch, len(metricNames)),
		hists: map[string]*Histogram{
			MetricStartupMS:    NewHistogram(0, startupHistMaxMS, startupHistBins),
			MetricRebufferRate: NewHistogram(0, 1, rebufHistBins),
		},
		counters: NewCounterSet(),
	}
	for _, m := range metricNames {
		a.sketches[m] = NewSketch(k)
	}
	return a
}

// NewAccumulatorWith returns an accumulator with the configured optional
// modes enabled (per-session diagnosis, timeline windows).
func NewAccumulatorWith(cfg Config) *Accumulator {
	a := NewAccumulator(cfg.SketchK)
	if cfg.Diagnose != nil {
		a.enableDiagnosis(*cfg.Diagnose)
	}
	a.enableWindows(cfg.Windows)
	if cfg.Live {
		a.enableLive()
	}
	if cfg.Proxy {
		a.enableProxy()
	}
	return a
}

// ConsumeSession implements core.RecordSink: it folds one finished
// session and its chunks into the aggregates and retains nothing.
func (a *Accumulator) ConsumeSession(s core.SessionRecord, chunks []core.ChunkRecord) {
	a.counters.Inc(CounterSessions)
	a.counters.Inc(IntDimKey(CounterSessions, "pop", s.PoP))
	a.counters.Inc(DimKey(CounterSessions, "org", s.OrgType))
	// StartupMS is NaN for sessions that never started playback; those go
	// to a dedicated counter instead of the startup distribution.
	if math.IsNaN(s.StartupMS) {
		a.counters.Inc(CounterSessionsNeverStart)
	} else {
		a.sketches[MetricStartupMS].Add(s.StartupMS)
		a.hists[MetricStartupMS].Add(s.StartupMS)
	}
	a.sketches[MetricRebufferRate].Add(s.RebufferRate)
	a.hists[MetricRebufferRate].Add(s.RebufferRate)
	diagLabel := ""
	if a.diag != nil {
		diagLabel = a.consumeDiagnosis(s, chunks)
	}
	if len(a.windows) > 0 {
		a.consumeWindow(s, diagLabel)
	}
	if a.live {
		a.consumeLive(s)
	}
	if a.proxy {
		a.consumeProxy(s)
	}

	for i := range chunks {
		c := &chunks[i]
		a.counters.Inc(CounterChunks)
		a.counters.Inc(IntDimKey(CounterChunks, "pop", s.PoP))
		a.counters.Inc(DimKey(CounterChunks, "cache", c.CacheLevel))
		a.counters.Inc(IntDimKey(CounterChunks, "bitrate", c.BitrateKbps))
		server := c.ServerLatencyMS()
		if c.CacheHit {
			a.counters.Inc(CounterChunksHit)
			a.counters.Inc(IntDimKey(CounterChunksHit, "pop", s.PoP))
			a.sketches[MetricServerHitMS].Add(server)
		} else {
			a.sketches[MetricServerMissMS].Add(server)
		}
		if c.RetryTimer {
			a.counters.Inc(CounterChunksRetryTimer)
		}
		a.sketches[MetricDFBMS].Add(c.DFBms)
		a.sketches[MetricDLBMS].Add(c.DLBms)
		a.sketches[MetricSRTTMS].Add(c.SRTTms)
		a.sketches[MetricServerMS].Add(server)
		a.sketches[MetricDwaitMS].Add(c.DwaitMS)
		a.sketches[MetricDopenMS].Add(c.DopenMS)
		a.sketches[MetricDreadMS].Add(c.DreadMS)
	}
}

// Merge folds o into a, iterating the canonical metric list so the result
// depends only on operand order.
func (a *Accumulator) Merge(o *Accumulator) {
	if o == nil {
		return
	}
	for _, m := range metricNames {
		a.sketches[m].Merge(o.sketches[m])
	}
	for _, m := range a.diagNames {
		a.sketches[m].Merge(o.sketches[m])
	}
	for _, m := range a.windowNames {
		a.sketches[m].Merge(o.sketches[m])
	}
	for _, m := range a.liveNames {
		a.sketches[m].Merge(o.sketches[m])
	}
	for _, m := range a.proxyNames {
		a.sketches[m].Merge(o.sketches[m])
	}
	for name, h := range a.hists {
		h.Merge(o.hists[name])
	}
	a.counters.Merge(o.counters)
}

// snapshot packages the accumulator's state.
func (a *Accumulator) snapshot() *Snapshot {
	return &Snapshot{
		Schema:     SnapshotSchema,
		SketchK:    NewSketch(a.k).K(),
		Windows:    a.windows,
		Sketches:   a.sketches,
		Histograms: a.hists,
		Counters:   a.counters.Map(),
	}
}

// Campaign owns the per-shard accumulators of one streamed run. Its Sink
// method is a session.SinkFactory; every call mints a fresh accumulator,
// and Snapshot merges them in the order the runner created them — the
// runner's canonical ascending (PoP, server-slot) plan order, which is
// what keeps streamed output byte-identical at any parallelism.
type Campaign struct {
	mu   sync.Mutex
	cfg  Config
	accs []*Accumulator
}

// NewCampaign returns an empty campaign with the given sketch parameter
// (<= 0 selects DefaultSketchK).
func NewCampaign(k int) *Campaign {
	return NewCampaignWith(Config{SketchK: k})
}

// NewCampaignWith returns an empty campaign whose per-PoP accumulators
// run in the configured modes (diagnosis and/or timeline windows).
func NewCampaignWith(cfg Config) *Campaign {
	if cfg.Diagnose != nil {
		withDefaults := cfg.Diagnose.WithDefaults()
		cfg.Diagnose = &withDefaults
	}
	return &Campaign{cfg: cfg}
}

// newAccumulator builds one shard accumulator in the campaign's mode.
func (c *Campaign) newAccumulator() *Accumulator {
	return NewAccumulatorWith(c.cfg)
}

// Sink returns a fresh accumulator for one shard. Every call gets its own
// accumulator — shards of the same PoP must not share one, since each
// feeds its sink from its own goroutine. Snapshot later merges the
// accumulators in Sink-call order, so callers must mint sinks in their
// canonical shard order (the session runner's sequential plan phase
// does). Sink is safe for concurrent use regardless.
func (c *Campaign) Sink(popID int) core.RecordSink {
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.newAccumulator()
	c.accs = append(c.accs, a)
	return a
}

// Snapshot merges the shard accumulators in Sink-call order and returns
// the campaign-wide state. Call it only after the run completes.
func (c *Campaign) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	merged := c.newAccumulator()
	for _, a := range c.accs {
		merged.Merge(a)
	}
	return merged.snapshot()
}
