package telemetry

import (
	"math"
	"sort"
	"sync"

	"vidperf/internal/core"
	"vidperf/internal/diagnose"
)

// Metric names of the quantile sketches an Accumulator maintains — one
// per distribution the §4–§5 analyses consume.
const (
	MetricStartupMS    = "startup_ms"     // per-session startup delay (started sessions only)
	MetricRebufferRate = "rebuffer_rate"  // per-session fraction of time stalled
	MetricDFBMS        = "dfb_ms"         // per-chunk first-byte delay
	MetricDLBMS        = "dlb_ms"         // per-chunk last-byte delay
	MetricSRTTMS       = "srtt_ms"        // per-chunk kernel SRTT snapshot
	MetricServerMS     = "server_ms"      // per-chunk D_CDN + D_BE
	MetricServerHitMS  = "server_hit_ms"  // server latency, cache hits
	MetricServerMissMS = "server_miss_ms" // server latency, cache misses
	MetricDwaitMS      = "dwait_ms"       // Fig. 5 breakdown components
	MetricDopenMS      = "dopen_ms"
	MetricDreadMS      = "dread_ms"
)

// metricNames lists every sketch in canonical order; merges iterate this
// slice (never a map) so the combined state is reproducible.
var metricNames = []string{
	MetricStartupMS, MetricRebufferRate, MetricDFBMS, MetricDLBMS,
	MetricSRTTMS, MetricServerMS, MetricServerHitMS, MetricServerMissMS,
	MetricDwaitMS, MetricDopenMS, MetricDreadMS,
}

// Counter names (see CounterSet for the dimensioned-key convention; the
// dimensions in use are pop, cache, bitrate, and org).
const (
	CounterSessions           = "sessions" // also the base of _pop= / _org= keys
	CounterSessionsNeverStart = "sessions_never_started"
	CounterChunks             = "chunks" // also the base of _pop= / _cache= / _bitrate= keys
	CounterChunksHit          = "chunks_hit"
	CounterChunksRetryTimer   = "chunks_retry_timer"
)

// histogram shapes, shared by every accumulator so snapshots merge.
const (
	startupHistMaxMS = 20000
	startupHistBins  = 200
	rebufHistBins    = 100
)

// Accumulator folds finished sessions into the campaign's bounded-memory
// aggregates. It implements core.RecordSink; the sharded runner gives
// each PoP shard its own Accumulator, so no locking is needed on the
// record path.
type Accumulator struct {
	k        int
	sketches map[string]*QuantileSketch
	hists    map[string]*Histogram
	counters *CounterSet

	// Diagnosis mode (see diag.go): non-nil diag classifies every
	// consumed session; diagNames is the canonical order the per-label
	// sketches merge in.
	diag      *diagnose.Config
	diagNames []string
}

// NewAccumulator returns an empty accumulator. Dimension counters key on
// each record's own PoP/org/cache fields, so one accumulator serves one
// shard or a whole merged campaign alike. k is the quantile-sketch
// compaction parameter (<= 0 selects DefaultSketchK).
func NewAccumulator(k int) *Accumulator {
	a := &Accumulator{
		k:        k,
		sketches: make(map[string]*QuantileSketch, len(metricNames)),
		hists: map[string]*Histogram{
			MetricStartupMS:    NewHistogram(0, startupHistMaxMS, startupHistBins),
			MetricRebufferRate: NewHistogram(0, 1, rebufHistBins),
		},
		counters: NewCounterSet(),
	}
	for _, m := range metricNames {
		a.sketches[m] = NewSketch(k)
	}
	return a
}

// NewDiagAccumulator returns an accumulator that additionally classifies
// every consumed session with internal/diagnose and maintains the
// per-label counters and QoE sketches (see diag.go).
func NewDiagAccumulator(k int, cfg diagnose.Config) *Accumulator {
	a := NewAccumulator(k)
	a.enableDiagnosis(cfg)
	return a
}

// ConsumeSession implements core.RecordSink: it folds one finished
// session and its chunks into the aggregates and retains nothing.
func (a *Accumulator) ConsumeSession(s core.SessionRecord, chunks []core.ChunkRecord) {
	a.counters.Inc(CounterSessions)
	a.counters.Inc(IntDimKey(CounterSessions, "pop", s.PoP))
	a.counters.Inc(DimKey(CounterSessions, "org", s.OrgType))
	// StartupMS is NaN for sessions that never started playback; those go
	// to a dedicated counter instead of the startup distribution.
	if math.IsNaN(s.StartupMS) {
		a.counters.Inc(CounterSessionsNeverStart)
	} else {
		a.sketches[MetricStartupMS].Add(s.StartupMS)
		a.hists[MetricStartupMS].Add(s.StartupMS)
	}
	a.sketches[MetricRebufferRate].Add(s.RebufferRate)
	a.hists[MetricRebufferRate].Add(s.RebufferRate)
	if a.diag != nil {
		a.consumeDiagnosis(s, chunks)
	}

	for i := range chunks {
		c := &chunks[i]
		a.counters.Inc(CounterChunks)
		a.counters.Inc(IntDimKey(CounterChunks, "pop", s.PoP))
		a.counters.Inc(DimKey(CounterChunks, "cache", c.CacheLevel))
		a.counters.Inc(IntDimKey(CounterChunks, "bitrate", c.BitrateKbps))
		server := c.ServerLatencyMS()
		if c.CacheHit {
			a.counters.Inc(CounterChunksHit)
			a.counters.Inc(IntDimKey(CounterChunksHit, "pop", s.PoP))
			a.sketches[MetricServerHitMS].Add(server)
		} else {
			a.sketches[MetricServerMissMS].Add(server)
		}
		if c.RetryTimer {
			a.counters.Inc(CounterChunksRetryTimer)
		}
		a.sketches[MetricDFBMS].Add(c.DFBms)
		a.sketches[MetricDLBMS].Add(c.DLBms)
		a.sketches[MetricSRTTMS].Add(c.SRTTms)
		a.sketches[MetricServerMS].Add(server)
		a.sketches[MetricDwaitMS].Add(c.DwaitMS)
		a.sketches[MetricDopenMS].Add(c.DopenMS)
		a.sketches[MetricDreadMS].Add(c.DreadMS)
	}
}

// Merge folds o into a, iterating the canonical metric list so the result
// depends only on operand order.
func (a *Accumulator) Merge(o *Accumulator) {
	if o == nil {
		return
	}
	for _, m := range metricNames {
		a.sketches[m].Merge(o.sketches[m])
	}
	for _, m := range a.diagNames {
		a.sketches[m].Merge(o.sketches[m])
	}
	for name, h := range a.hists {
		h.Merge(o.hists[name])
	}
	a.counters.Merge(o.counters)
}

// snapshot packages the accumulator's state.
func (a *Accumulator) snapshot() *Snapshot {
	return &Snapshot{
		Schema:     SnapshotSchema,
		SketchK:    NewSketch(a.k).K(),
		Sketches:   a.sketches,
		Histograms: a.hists,
		Counters:   a.counters.Map(),
	}
}

// Campaign owns the per-PoP accumulators of one streamed run. Its Sink
// method is a session.SinkFactory; after the run, Snapshot merges the
// shards in canonical (ascending) PoP order — the determinism rule that
// keeps streamed output byte-identical at any parallelism.
type Campaign struct {
	mu     sync.Mutex
	k      int
	diag   *diagnose.Config
	perPoP map[int]*Accumulator
}

// NewCampaign returns an empty campaign with the given sketch parameter
// (<= 0 selects DefaultSketchK).
func NewCampaign(k int) *Campaign {
	return &Campaign{k: k, perPoP: map[int]*Accumulator{}}
}

// NewDiagCampaign returns a campaign whose per-PoP accumulators classify
// every session with internal/diagnose, so the merged snapshot carries
// the per-label cause counters and QoE sketches.
func NewDiagCampaign(k int, cfg diagnose.Config) *Campaign {
	c := NewCampaign(k)
	withDefaults := cfg.WithDefaults()
	c.diag = &withDefaults
	return c
}

// newAccumulator builds one shard accumulator in the campaign's mode.
func (c *Campaign) newAccumulator() *Accumulator {
	if c.diag != nil {
		return NewDiagAccumulator(c.k, *c.diag)
	}
	return NewAccumulator(c.k)
}

// Sink returns the accumulator for popID, creating it on first use. It is
// safe for concurrent use, though the session runner calls it from the
// sequential plan phase.
func (c *Campaign) Sink(popID int) core.RecordSink {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.perPoP[popID]
	if !ok {
		a = c.newAccumulator()
		c.perPoP[popID] = a
	}
	return a
}

// Snapshot merges the per-PoP accumulators in ascending PoP order and
// returns the campaign-wide state. Call it only after the run completes.
func (c *Campaign) Snapshot() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	pops := make([]int, 0, len(c.perPoP))
	for p := range c.perPoP {
		pops = append(pops, p)
	}
	sort.Ints(pops)
	merged := c.newAccumulator()
	for _, p := range pops {
		merged.Merge(c.perPoP[p])
	}
	return merged.snapshot()
}
