package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
)

// Histogram is a fixed-bin histogram over [lo, hi) with underflow and
// overflow buckets. Unlike the quantile sketch it is exact for counting
// queries at bin granularity, and two histograms with the same shape merge
// by adding counts, so the result is independent of merge order.
type Histogram struct {
	lo, hi float64
	counts []uint64
	under  uint64
	over   uint64
	n      uint64
	sum    float64
}

// NewHistogram returns an empty histogram with the given range and bin
// count (bins is clamped to >= 1; hi must exceed lo or NewHistogram
// panics — the shapes are compile-time constants in this codebase).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo {
		panic(fmt.Sprintf("telemetry: NewHistogram(%g, %g): empty range", lo, hi))
	}
	if bins < 1 {
		bins = 1
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]uint64, bins)}
}

// Add folds one sample into the histogram. NaN is ignored.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.n++
	h.sum += v
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		b := int(float64(len(h.counts)) * (v - h.lo) / (h.hi - h.lo))
		if b >= len(h.counts) { // float edge case at the hi boundary
			b = len(h.counts) - 1
		}
		h.counts[b]++
	}
}

// Clone returns an independent deep copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// Merge adds o's counts into h. The two histograms must have the same
// range and bin count; Merge panics otherwise (mixed shapes are a
// programming error, not a data condition).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	if o.lo != h.lo || o.hi != h.hi || len(o.counts) != len(h.counts) {
		panic(fmt.Sprintf("telemetry: merging histogram [%g,%g)/%d into [%g,%g)/%d",
			o.lo, o.hi, len(o.counts), h.lo, h.hi, len(h.counts)))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.under += o.under
	h.over += o.over
	h.n += o.n
	h.sum += o.sum
}

// N returns the number of samples added.
func (h *Histogram) N() uint64 { return h.n }

// Mean returns the running mean, or NaN for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

// Bounds returns the histogram range and bin count.
func (h *Histogram) Bounds() (lo, hi float64, bins int) { return h.lo, h.hi, len(h.counts) }

// Counts returns the per-bin counts plus the underflow and overflow
// buckets. The slice is the histogram's own storage; treat it as
// read-only.
func (h *Histogram) Counts() (bins []uint64, under, over uint64) {
	return h.counts, h.under, h.over
}

// Quantile returns the q-th quantile estimated by linear interpolation
// within the containing bin. Underflow clamps to lo and overflow to hi;
// an empty histogram returns NaN. Resolution is one bin width, so prefer
// QuantileSketch when the tail matters.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	width := (h.hi - h.lo) / float64(len(h.counts))
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.hi
}

// histWire is the JSON encoding of a histogram.
type histWire struct {
	Lo     float64  `json:"lo"`
	Hi     float64  `json:"hi"`
	Counts []uint64 `json:"counts"`
	Under  uint64   `json:"under,omitempty"`
	Over   uint64   `json:"over,omitempty"`
	N      uint64   `json:"n"`
	Sum    float64  `json:"sum"`
}

// MarshalJSON encodes the full histogram state.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histWire{
		Lo: h.lo, Hi: h.hi, Counts: h.counts,
		Under: h.under, Over: h.over, N: h.n, Sum: h.sum,
	})
}

// UnmarshalJSON restores a histogram written by MarshalJSON.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.Hi <= w.Lo || len(w.Counts) == 0 {
		return fmt.Errorf("telemetry: bad histogram shape [%g,%g)/%d", w.Lo, w.Hi, len(w.Counts))
	}
	var held uint64
	for _, c := range w.Counts {
		held += c
	}
	if held+w.Under+w.Over != w.N {
		return fmt.Errorf("telemetry: histogram counts sum to %d, want n=%d",
			held+w.Under+w.Over, w.N)
	}
	*h = Histogram{lo: w.Lo, hi: w.Hi, counts: w.Counts,
		under: w.Under, over: w.Over, n: w.N, sum: w.Sum}
	return nil
}
