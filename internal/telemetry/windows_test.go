package telemetry

import (
	"bytes"
	"math"
	"testing"

	"vidperf/internal/core"
	"vidperf/internal/diagnose"
	"vidperf/internal/timeline"
)

func testWindows() []timeline.Window {
	return timeline.Timeline{Phases: []timeline.Phase{
		{Name: "outage", StartMS: 1000, EndMS: 2000},
	}}.Windows(3000) // w00-pre, w01-outage, w02-post
}

func windowSession(id uint64, arrival, startup float64) core.SessionRecord {
	return core.SessionRecord{
		SessionID: id, ArrivalMS: arrival, StartupMS: startup,
		RebufferRate: 0.01, AvgBitrateKbps: 1500, NumChunks: 1,
	}
}

// TestWindowAttribution: sessions land in the window containing their
// arrival; counters and sketches fill per window; NaN startups stay out
// of the startup sketch but the session still counts.
func TestWindowAttribution(t *testing.T) {
	a := NewAccumulatorWith(Config{SketchK: 32, Windows: testWindows()})
	a.ConsumeSession(windowSession(1, 500, 800), nil)
	a.ConsumeSession(windowSession(2, 1500, 2500), nil)
	a.ConsumeSession(windowSession(3, 1999.999, 2400), nil)
	never := windowSession(4, 2500, math.NaN())
	a.ConsumeSession(never, nil)

	sn := a.snapshot()
	if got := sn.Counter(WindowSessionsKey("w00-pre")); got != 1 {
		t.Fatalf("pre sessions = %d", got)
	}
	if got := sn.Counter(WindowSessionsKey("w01-outage")); got != 2 {
		t.Fatalf("outage sessions = %d", got)
	}
	if got := sn.Counter(WindowSessionsKey("w02-post")); got != 1 {
		t.Fatalf("post sessions = %d", got)
	}
	if got := sn.Counter(CounterSessionsUnwindowed); got != 0 {
		t.Fatalf("unwindowed = %d", got)
	}
	if got := sn.Sketch(WindowSketchKey(MetricStartupMS, "w01-outage")).N(); got != 2 {
		t.Fatalf("outage startup samples = %d", got)
	}
	// The never-started session is counted but not sketched.
	if got := sn.Sketch(WindowSketchKey(MetricStartupMS, "w02-post")).N(); got != 0 {
		t.Fatalf("post startup samples = %d, want 0 (NaN excluded)", got)
	}
	if got := sn.Sketch(WindowSketchKey(MetricRebufferRate, "w02-post")).N(); got != 1 {
		t.Fatalf("post rebuffer samples = %d", got)
	}
	if len(sn.Windows) != 3 {
		t.Fatalf("snapshot windows = %v", sn.Windows)
	}
}

// TestWindowOutOfRangeCounts: an arrival outside every window goes to
// the unwindowed counter so the coverage check can fail loudly.
func TestWindowOutOfRangeCounts(t *testing.T) {
	a := NewAccumulatorWith(Config{SketchK: 32, Windows: testWindows()})
	a.ConsumeSession(windowSession(1, 9999, 800), nil)
	if got := a.counters.Get(CounterSessionsUnwindowed); got != 1 {
		t.Fatalf("unwindowed = %d", got)
	}
}

// TestWindowDiagCross: with diagnosis and windows both on, per-window
// per-label counters appear and sum to the window's session count.
func TestWindowDiagCross(t *testing.T) {
	a := NewAccumulatorWith(Config{
		SketchK: 32, Diagnose: &diagnose.Config{}, Windows: testWindows(),
	})
	a.ConsumeSession(windowSession(1, 1500, 800), nil)
	a.ConsumeSession(windowSession(2, 1600, 700), nil)
	var sum uint64
	for _, l := range diagnose.Labels() {
		sum += a.counters.Get(WindowDiagSessionsKey("w01-outage", string(l)))
	}
	if sum != 2 {
		t.Fatalf("outage-window label counts sum to %d, want 2", sum)
	}
}

// TestWindowedMergeOrderIndependentBytes extends the shard-determinism
// contract to windowed state: with a fixed session-to-shard assignment,
// the wall-clock interleaving of the shards' consumption must not change
// the merged snapshot's bytes — each shard sees its own stream in
// session order, the merge walks shards in canonical order, and that is
// all the bytes may depend on.
func TestWindowedMergeOrderIndependentBytes(t *testing.T) {
	cfg := Config{SketchK: 32, Diagnose: &diagnose.Config{}, Windows: testWindows()}
	rec := func(id uint64) core.SessionRecord {
		return windowSession(id, float64(id*70), float64(500+id*10))
	}
	build := func(interleaved bool) []byte {
		s1 := NewAccumulatorWith(cfg)
		s2 := NewAccumulatorWith(cfg)
		if interleaved {
			for id := uint64(1); id <= 40; id++ {
				if id%2 == 0 {
					s2.ConsumeSession(rec(id), nil)
				} else {
					s1.ConsumeSession(rec(id), nil)
				}
			}
		} else {
			// Shard 1 drains fully before shard 2 starts — the sequential
			// schedule. Each shard still sees its sessions in id order.
			for id := uint64(1); id <= 40; id += 2 {
				s1.ConsumeSession(rec(id), nil)
			}
			for id := uint64(2); id <= 40; id += 2 {
				s2.ConsumeSession(rec(id), nil)
			}
		}
		merged := NewAccumulatorWith(cfg)
		merged.Merge(s1)
		merged.Merge(s2)
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, merged.snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(false), build(true)) {
		t.Fatal("windowed snapshot bytes depend on shard scheduling")
	}
}
