package telemetry

import (
	"bytes"
	"math"
	"testing"

	"vidperf/internal/core"
)

func proxySession(id uint64, cohort int, mismatch bool) core.SessionRecord {
	rec := core.SessionRecord{
		SessionID: id, SRTTCV: 0.2, StartupMS: 600,
		HTTPClientIP: "10.0.0.1", BeaconIP: "10.0.0.1",
	}
	if cohort > 0 {
		rec.Proxied = true
		rec.ProxyCohort = cohort
		rec.HTTPClientIP = "egress-0001"
		rec.BeaconIP = "egress-0001"
		rec.SRTTCV = 0.8
		rec.StartupMS = 2400
		if mismatch {
			rec.BeaconIP = "10.9.0.1"
		}
	}
	return rec
}

// TestProxyAccumulator: proxy mode splits the CV(SRTT)/startup sketches
// by ground-truth placement, counts proxied and IP-mismatch sessions,
// and keys a per-egress counter; NaN startups are skipped.
func TestProxyAccumulator(t *testing.T) {
	a := NewAccumulatorWith(Config{SketchK: 32, Proxy: true})
	a.ConsumeSession(proxySession(1, 0, false), nil)
	a.ConsumeSession(proxySession(2, 1, true), nil)
	a.ConsumeSession(proxySession(3, 1, false), nil)
	a.ConsumeSession(proxySession(4, 2, true), nil)
	nan := proxySession(5, 2, false)
	nan.StartupMS = math.NaN()
	a.ConsumeSession(nan, nil)

	sn := a.snapshot()
	if got := sn.Counter(CounterSessionsProxied); got != 4 {
		t.Errorf("%s = %d, want 4", CounterSessionsProxied, got)
	}
	if got := sn.Counter(CounterSessionsIPMismatch); got != 2 {
		t.Errorf("%s = %d, want 2", CounterSessionsIPMismatch, got)
	}
	if got := sn.Counter(ProxyEgressSessionsKey(1)); got != 2 {
		t.Errorf("egress 1 sessions = %d, want 2", got)
	}
	if got := sn.Counter(ProxyEgressSessionsKey(2)); got != 2 {
		t.Errorf("egress 2 sessions = %d, want 2", got)
	}
	if n := sn.Sketch(MetricSRTTCVProxied).N(); n != 4 {
		t.Errorf("proxied CV sketch holds %d sessions, want 4", n)
	}
	if n := sn.Sketch(MetricSRTTCVClear).N(); n != 1 {
		t.Errorf("direct CV sketch holds %d sessions, want 1", n)
	}
	if n := sn.Sketch(MetricStartupProxied).N(); n != 3 {
		t.Errorf("proxied startup sketch holds %d (NaN not skipped?), want 3", n)
	}
}

// TestProxyAccumulatorEagerAndMergeable: proxy sketches exist even on an
// empty accumulator (the eager-shape invariant), a non-proxy
// accumulator carries none of them, and a sharded consume merges to the
// sequential accumulator's exact snapshot bytes.
func TestProxyAccumulatorEagerAndMergeable(t *testing.T) {
	empty := NewAccumulatorWith(Config{SketchK: 32, Proxy: true}).snapshot()
	for _, name := range proxyMetricNames {
		if _, ok := empty.Sketches[name]; !ok {
			t.Errorf("empty proxy snapshot lacks sketch %s", name)
		}
	}
	plain := NewAccumulatorWith(Config{SketchK: 32}).snapshot()
	for _, name := range proxyMetricNames {
		if _, ok := plain.Sketches[name]; ok {
			t.Errorf("non-proxy snapshot carries sketch %s", name)
		}
	}

	seq := NewAccumulatorWith(Config{SketchK: 32, Proxy: true})
	s1 := NewAccumulatorWith(Config{SketchK: 32, Proxy: true})
	s2 := NewAccumulatorWith(Config{SketchK: 32, Proxy: true})
	for id := uint64(1); id <= 12; id++ {
		rec := proxySession(id, int(id%3), id%4 == 0)
		seq.ConsumeSession(rec, nil)
		if id <= 6 {
			s1.ConsumeSession(rec, nil)
		} else {
			s2.ConsumeSession(rec, nil)
		}
	}
	s1.Merge(s2)
	if !bytes.Equal(snapshotBytesOf(t, s1.snapshot()), snapshotBytesOf(t, seq.snapshot())) {
		t.Fatal("sharded proxy accumulation is not byte-identical to sequential")
	}
}
