// proxy.go folds proxied-population QoE (internal/proxypop) into the
// streaming aggregates: the CV(SRTT) and startup distributions split by
// proxied vs direct sessions (the Fig. 9/Table 4 comparison), the
// proxied-session and IP-mismatch counters the §3 detector rates are
// judged against, and a per-egress-cohort session counter. Proxy mode
// is opt-in (Config.Proxy) with eagerly created sketches, so non-proxied
// snapshots carry not a byte of proxy state and proxied snapshots merge
// deterministically at any parallelism.
package telemetry

import (
	"math"

	"vidperf/internal/core"
)

// Metric names of the proxy-mode sketches: the per-session CV(SRTT) and
// startup distributions, split by ground-truth proxy placement.
const (
	MetricSRTTCVProxied  = "srtt_cv_proxied"
	MetricSRTTCVClear    = "srtt_cv_clear"
	MetricStartupProxied = "startup_proxied_ms"
	MetricStartupClear   = "startup_clear_ms"
)

// Proxy-mode counters: sessions behind a shared egress, and the subset
// whose beacon IP disagrees with the CDN-seen egress (§3 rule i
// evidence).
const (
	CounterSessionsProxied    = "sessions_proxied"
	CounterSessionsIPMismatch = "sessions_ip_mismatch"
)

// ProxyEgressDim is the dimension name per-cohort counters key on
// ("sessions_egress=00003").
const ProxyEgressDim = "egress"

// ProxyEgressSessionsKey returns the per-cohort session counter key.
func ProxyEgressSessionsKey(cohort int) string {
	return IntDimKey(CounterSessions, ProxyEgressDim, cohort)
}

// proxyMetricNames lists the proxy sketches in canonical order; merges
// iterate this slice (never a map), like every other sketch family.
var proxyMetricNames = []string{
	MetricSRTTCVProxied, MetricSRTTCVClear,
	MetricStartupProxied, MetricStartupClear,
}

// enableProxy switches the accumulator into proxy mode. Call before the
// first ConsumeSession; the sketches are created eagerly so empty
// shards still merge and snapshot deterministically.
func (a *Accumulator) enableProxy() {
	a.proxy = true
	a.proxyNames = append([]string(nil), proxyMetricNames...)
	for _, name := range a.proxyNames {
		a.sketches[name] = NewSketch(a.k)
	}
}

// consumeProxy folds one finished session into the proxied-vs-direct
// aggregates. Proxied/ProxyCohort are the model's ground-truth labels —
// telemetry may read them (it is scoring infrastructure, not a
// detector); only internal/proxydetect is barred from them.
func (a *Accumulator) consumeProxy(s core.SessionRecord) {
	cv, startup := a.sketches[MetricSRTTCVClear], a.sketches[MetricStartupClear]
	if s.Proxied {
		cv, startup = a.sketches[MetricSRTTCVProxied], a.sketches[MetricStartupProxied]
		a.counters.Inc(CounterSessionsProxied)
		a.counters.Inc(ProxyEgressSessionsKey(s.ProxyCohort))
	}
	if s.HTTPClientIP != "" && s.HTTPClientIP != s.BeaconIP {
		a.counters.Inc(CounterSessionsIPMismatch)
	}
	cv.Add(s.SRTTCV)
	if !math.IsNaN(s.StartupMS) {
		startup.Add(s.StartupMS)
	}
}
