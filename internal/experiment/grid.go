package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"vidperf/internal/workload"
)

// Cell is one point of the expanded campaign grid: a name built from its
// axis values, the fully-resolved scenario (seed included), and the axis
// assignment that produced it.
type Cell struct {
	// Name is "base" for an axis-less spec, else the ordered
	// "axis=value" pairs joined with ",", e.g. "cache_policy=lru,ram_gb=0.5".
	Name string
	// Index is the cell's position in grid order (first axis slowest).
	Index int
	// Scenario is ready to run: base scenario + axis overlays + the
	// cell's seed.
	Scenario workload.Scenario
	// Axes maps axis name to the rendered value, for labels and reports.
	Axes map[string]string
}

// FileName returns the cell's snapshot file name: the cell name with
// characters that are awkward in paths replaced by "-", plus ".json".
func (c Cell) FileName() string {
	var b strings.Builder
	for _, r := range c.Name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '=', r == '+', r == '-':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	return b.String() + ".json"
}

// renderAxisValue formats one axis value for cell names: strings lose
// their quotes; everything else is re-marshalled through Go's canonical
// JSON encoding so equivalent spellings collapse to one name ("1.0" in
// a spec file and 1.0 in a preset both render "1" — cell names, file
// names, and per-cell seeds must not depend on which source spelled the
// value). Unparseable values fall back to their raw text.
func renderAxisValue(v json.RawMessage) string {
	var s string
	if err := json.Unmarshal(v, &s); err == nil {
		return s
	}
	var parsed any
	if err := json.Unmarshal(v, &parsed); err == nil {
		if b, err := json.Marshal(parsed); err == nil {
			return string(b)
		}
	}
	return strings.TrimSpace(string(v))
}

// DeriveSeed maps (base seed, cell name) to the cell's scenario seed in
// SeedPerCell mode: an FNV-1a fold of the name through a splitmix64
// finalizer. It is a pure function, so campaigns regenerate identically
// run to run and cells keep their seeds when unrelated axes are added.
func DeriveSeed(base uint64, cellName string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(cellName); i++ {
		h ^= uint64(cellName[i])
		h *= fnvPrime
	}
	return splitmix(base ^ h)
}

// splitmix is the splitmix64 finalizer (same construction the CDN fleet
// uses for per-PoP RNG roots).
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Expand crosses the spec's axes into the cell grid, first axis slowest
// (row-major in declaration order). Cell scenarios are the base scenario
// with each axis overlay applied left to right; in SeedPerCell mode the
// seed is then re-derived from the cell name. Expansion is deterministic:
// the same spec always yields the same cells, names, and seeds.
func (s *Spec) Expand() ([]Cell, error) {
	base := s.Scenario.Apply(workload.Scenario{})
	tl, err := s.Timeline.Build()
	if err != nil {
		return nil, fmt.Errorf("experiment: spec %s: %w", s.Name, err)
	}
	base.Timeline = tl
	lv, err := s.Live.Build()
	if err != nil {
		return nil, fmt.Errorf("experiment: spec %s: %w", s.Name, err)
	}
	base.Live = lv
	px, err := s.Proxy.Build()
	if err != nil {
		return nil, fmt.Errorf("experiment: spec %s: %w", s.Name, err)
	}
	base.Proxy = px
	if len(s.Axes) == 0 {
		return []Cell{{Name: "base", Scenario: base, Axes: map[string]string{}}}, nil
	}
	n := 1
	for _, ax := range s.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("experiment: spec %s: axis %q has no values", s.Name, ax.Name)
		}
		if n > 10000/len(ax.Values) {
			return nil, fmt.Errorf("experiment: spec %s: grid exceeds 10000 cells", s.Name)
		}
		n *= len(ax.Values)
	}
	cells := make([]Cell, 0, n)
	idx := make([]int, len(s.Axes))
	for i := 0; i < n; i++ {
		sc := base
		parts := make([]string, len(s.Axes))
		axes := make(map[string]string, len(s.Axes))
		for a, ax := range s.Axes {
			v := ax.Values[idx[a]]
			overlay, err := axisOverlay(ax.Name, v)
			if err != nil {
				return nil, fmt.Errorf("experiment: spec %s: %w", s.Name, err)
			}
			sc = overlay.Apply(sc)
			rendered := renderAxisValue(v)
			parts[a] = ax.Name + "=" + rendered
			axes[ax.Name] = rendered
		}
		name := strings.Join(parts, ",")
		if s.SeedMode == SeedPerCell {
			sc.Seed = DeriveSeed(base.Seed, name)
		}
		cells = append(cells, Cell{Name: name, Index: i, Scenario: sc, Axes: axes})
		for a := len(s.Axes) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(s.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return cells, nil
}
