// manifest.go records a sweep directory's provenance: which spec (by
// name and content hash) generated the cell snapshots, which cells exist
// under which file names and seeds, and the reporting configuration.
// cmd/sweep writes it next to the snapshots; internal/store requires it
// to ingest a directory in one command and to refuse mixing cells from
// different specs under one sweep name.
package experiment

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ManifestSchema is the manifest wire-format version WriteManifest emits
// and ReadManifest requires. It is independent of the spec and snapshot
// schemas.
const ManifestSchema = 1

// ManifestFileName is the fixed file name a sweep directory's manifest
// is written under.
const ManifestFileName = "manifest.json"

// ManifestCell is one cell's provenance entry: its grid name, snapshot
// file name, and fully-resolved scenario seed.
type ManifestCell struct {
	Name string `json:"name"`
	File string `json:"file"`
	Seed uint64 `json:"seed"`
	// Axes maps axis name to the rendered value (empty for the axis-less
	// "base" cell).
	Axes map[string]string `json:"axes,omitempty"`
}

// Manifest is the sweep directory's provenance record.
type Manifest struct {
	Schema int `json:"schema"`
	// Spec is the generating spec's name (the snapshots' "spec" label).
	Spec string `json:"spec"`
	// SpecHash fingerprints the effective spec content (overrides like
	// sweep -sessions included): two sweeps mix in one store only when
	// their hashes agree, so cells from incompatible configurations never
	// silently land in one league table.
	SpecHash string `json:"spec_hash"`
	// SketchK and Diagnosis echo the reporting configuration every cell
	// ran with.
	SketchK   int  `json:"sketch_k"`
	Diagnosis bool `json:"diagnosis,omitempty"`
	// Baseline names the spec's baseline cell.
	Baseline string `json:"baseline"`
	// Cells lists every cell in grid order.
	Cells []ManifestCell `json:"cells"`
}

// Hash fingerprints the spec's effective content: the SHA-256 of its
// canonical JSON form. Struct fields marshal in declaration order and
// maps with sorted keys, so the hash is a pure function of the spec's
// content — the same spec hashes identically across runs, processes,
// and machines, and any override (a different session count, a toggled
// diagnosis flag) changes it.
func (s *Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data (strings, numbers, raw JSON); Marshal
		// cannot fail on one that Load or the preset table produced.
		panic(fmt.Sprintf("experiment: marshal spec %s: %v", s.Name, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// BuildManifest assembles the manifest for a spec and its expanded
// cells.
func BuildManifest(spec *Spec, cells []Cell) *Manifest {
	m := &Manifest{
		Schema:    ManifestSchema,
		Spec:      spec.Name,
		SpecHash:  spec.Hash(),
		SketchK:   spec.EffectiveSketchK(),
		Diagnosis: spec.Diagnosis,
		Baseline:  spec.Baseline,
		Cells:     make([]ManifestCell, len(cells)),
	}
	if m.Baseline == "" && len(cells) > 0 {
		m.Baseline = cells[spec.BaselineIndex(cells)].Name
	}
	for i, c := range cells {
		m.Cells[i] = ManifestCell{
			Name: c.Name,
			File: c.FileName(),
			Seed: c.Scenario.Seed,
			Axes: c.Axes,
		}
	}
	return m
}

// WriteManifest serializes the manifest as a single JSON object.
func WriteManifest(w io.Writer, m *Manifest) error {
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(m); err != nil {
		return fmt.Errorf("experiment: write manifest: %w", err)
	}
	return bw.Flush()
}

// ReadManifest loads a manifest written by WriteManifest, rejecting
// payloads of any other schema.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&m); err != nil {
		return nil, fmt.Errorf("experiment: read manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("experiment: manifest schema %d, want %d", m.Schema, ManifestSchema)
	}
	return &m, nil
}

// ReadManifestFile is ReadManifest on dir/ManifestFileName.
func ReadManifestFile(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestFileName))
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	defer f.Close()
	m, err := ReadManifest(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Join(dir, ManifestFileName), err)
	}
	return m, nil
}

// claimOutDir guards a sweep output directory against silent
// cross-spec overwrites: a directory already holding a manifest from a
// different spec content is refused, while re-running the identical
// spec (same hash) into its own directory remains legal. On success the
// manifest is written up front, so even a partially-failed campaign
// leaves its provenance on disk.
func claimOutDir(dir string, m *Manifest) error {
	path := filepath.Join(dir, ManifestFileName)
	if f, err := os.Open(path); err == nil {
		prev, rerr := ReadManifest(f)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("experiment: %s exists but is unreadable (%v); refusing to overwrite a directory of unknown provenance", path, rerr)
		}
		if prev.SpecHash != m.SpecHash {
			return fmt.Errorf("experiment: %s already holds sweep %q (spec hash %.12s…); refusing to overwrite it with spec %q (hash %.12s…) — use a fresh -out directory",
				dir, prev.Spec, prev.SpecHash, m.Spec, m.SpecHash)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("experiment: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	if err := WriteManifest(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
