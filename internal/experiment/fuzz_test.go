package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeSpec throws arbitrary bytes at the strict spec decoder. The
// contract under fuzzing: Load either returns an error or a spec that
// validates and expands — never a panic, and never a half-parsed spec
// that fails later in the pipeline. (The strict decoding rules — unknown
// fields, unknown axes, trailing garbage, bad schema — are each pinned
// by example in spec_test.go; the fuzzer hunts for inputs that dodge all
// of them.)
func FuzzDecodeSpec(f *testing.F) {
	// Seed with every shipped spec file (the valid shapes) plus the
	// malformed shapes the strict decoder exists to reject.
	files, err := filepath.Glob("../../examples/specs/*.json")
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	for _, s := range []string{
		``,
		`{}`,
		`null`,
		`{"name":"x"}`,
		`{"name":"x","schema":99}`,
		`{"name":"x","session":100}`, // typo'd field
		`{"name":"x","axes":[{"name":"nope","values":[1]}]}`,            // unknown axis
		`{"name":"x","axes":[{"name":"abr","values":["hybrid"]}]} true`, // trailing garbage
		`{"name":"x","preset":"no-such-preset"}`,
		`{"preset":"paper-baseline"}`,
		`{"name":"x","seed_mode":"banana"}`,
		`{"name":"x","sketch_k":3}`,
		`{"name":"x","diagnosis":true}`,
		`{"name":"x","axes":[{"name":"cold","values":[false,true]},{"name":"cold","values":[true]}]}`,
		`{"name":"x","baseline":"missing-cell"}`,
		`{"name":"x","scenario":{"seed":18446744073709551615}}`,
		`{"name":"x","scenario":{"bitrates":[235,3000]},"axes":[{"name":"zipf_s","values":[0.6,1.1]}]}`,
		`{"name":"x","live":{"channels":8}}`,
		`{"name":"x","live":{"channels":0}}`,
		`{"name":"x","live":{"channels":-1}}`,
		`{"name":"x","live":{"channels":4,"switch_per_min":100}}`,
		`{"name":"x","live":{"channels":4,"chunk_seconds":6}}`, // typo'd live field
		`{"name":"x","live":{"channels":4,"join":"zipf","join_zipf_s":1.1}}`,
		`{"name":"x","serve":{"window_min":5},"live":{"channels":4}}`, // mutually exclusive
		`{"name":"x","proxy":{"share":0.23}}`,
		`{"name":"x","proxy":{"share":0}}`,    // a proxy block must enable the model
		`{"name":"x","proxy":{"share":1.5}}`,  // share out of range
		`{"name":"x","proxy":{"shares":0.2}}`, // typo'd proxy field
		`{"name":"x","proxy":{"share":0.2,"cohorts":4096,"egress_kbps":25000}}`,
		`{"name":"x","proxy":{"share":0.2,"extra_rtt_min_ms":200,"extra_rtt_max_ms":25}}`, // min > max
		`{"name":"x","proxy":{"share":0.2},"live":{"channels":4}}`,                        // proxy composes with live
		`{"name":"x","proxy":{"share":0.2},"serve":{"window_min":5}}`,                     // proxy composes with serve
	} {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking or half-parsing is not
		}
		if sp.Name == "" {
			t.Fatalf("Load accepted a nameless spec from %q", data)
		}
		if sp.Schema != SpecSchema {
			t.Fatalf("Load returned schema %d from %q", sp.Schema, data)
		}
		cells, err := sp.Expand()
		if err != nil {
			t.Fatalf("loaded spec fails to expand: %v (input %q)", err, data)
		}
		if len(cells) == 0 {
			t.Fatalf("loaded spec expands to zero cells (input %q)", data)
		}
		if sp.BaselineIndex(cells) < 0 {
			t.Fatalf("loaded spec has no baseline cell (input %q)", data)
		}
	})
}
