// timeline.go is the JSON face of internal/timeline: the "timeline"
// block of an experiment spec. Like the rest of the spec format it is
// strict — unknown fields are rejected by the spec decoder — and uses
// campaign-friendly units (minutes for phase bounds, matching the
// arrival_window_min scenario knob).
package experiment

import (
	"fmt"

	"vidperf/internal/timeline"
)

// TimelineSpec is the spec-file encoding of a campaign event timeline.
type TimelineSpec struct {
	// Phases are the timed fault/degradation regimes, in chronological
	// order (the builder validates ordering and non-overlap).
	Phases []PhaseSpec `json:"phases"`
}

// PhaseSpec is one phase of the timeline block. Bounds are minutes of
// virtual time since campaign start; every effect field is optional and
// its zero value means "unchanged" (factors use 0, not 1, as neutral —
// the same convention the scenario spec uses for its knobs).
type PhaseSpec struct {
	Name        string  `json:"name"`
	StartMin    float64 `json:"start_min"`
	DurationMin float64 `json:"duration_min"`

	// PoP outage and failover.
	PoPDown            []int   `json:"pop_down,omitempty"`
	FailoverPoP        int     `json:"failover_pop,omitempty"`
	FailoverExtraRTTms float64 `json:"failover_extra_rtt_ms,omitempty"`

	// Backend brownout.
	BackendLatencyFactor float64 `json:"backend_latency_factor,omitempty"`

	// Cache degradation.
	CacheCapacityFactor float64 `json:"cache_capacity_factor,omitempty"`

	// Network-path degradation.
	ExtraLossProb    float64 `json:"extra_loss_prob,omitempty"`
	ThroughputFactor float64 `json:"throughput_factor,omitempty"`
	ExtraRTTms       float64 `json:"extra_rtt_ms,omitempty"`

	// Flash crowd.
	ArrivalRateFactor float64 `json:"arrival_rate_factor,omitempty"`
}

// Build converts the spec block into a validated timeline.Timeline.
func (t *TimelineSpec) Build() (timeline.Timeline, error) {
	var tl timeline.Timeline
	if t == nil {
		return tl, nil
	}
	for _, p := range t.Phases {
		tl.Phases = append(tl.Phases, timeline.Phase{
			Name:    p.Name,
			StartMS: p.StartMin * 60 * 1000,
			EndMS:   (p.StartMin + p.DurationMin) * 60 * 1000,
			Effects: timeline.Effects{
				PoPDown:              append([]int(nil), p.PoPDown...),
				FailoverPoP:          p.FailoverPoP,
				FailoverExtraRTTms:   p.FailoverExtraRTTms,
				BackendLatencyFactor: p.BackendLatencyFactor,
				CacheCapacityFactor:  p.CacheCapacityFactor,
				ExtraLossProb:        p.ExtraLossProb,
				ThroughputFactor:     p.ThroughputFactor,
				ExtraRTTms:           p.ExtraRTTms,
				ArrivalRateFactor:    p.ArrivalRateFactor,
			},
		})
	}
	if err := tl.Validate(); err != nil {
		return timeline.Timeline{}, fmt.Errorf("timeline block: %w", err)
	}
	return tl, nil
}
