package experiment

import (
	"strings"
	"testing"
)

// TestTimelineSpecDecodes: a spec with a timeline block loads, builds a
// validated timeline into every cell's scenario, and the run labels the
// snapshot.
func TestTimelineSpecDecodes(t *testing.T) {
	sp, err := Load(strings.NewReader(`{
		"name": "tl",
		"scenario": {"seed": 3, "sessions": 100},
		"timeline": {"phases": [
			{"name": "brownout", "start_min": 5, "duration_min": 5, "backend_latency_factor": 4},
			{"name": "crowd", "start_min": 15, "duration_min": 5, "arrival_rate_factor": 3}
		]}
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	cells, err := sp.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	tl := cells[0].Scenario.Timeline
	if len(tl.Phases) != 2 {
		t.Fatalf("cell timeline has %d phases", len(tl.Phases))
	}
	if p := tl.Phases[0]; p.Name != "brownout" || p.StartMS != 5*60e3 || p.EndMS != 10*60e3 ||
		p.Effects.BackendLatencyFactor != 4 {
		t.Fatalf("phase 0 = %+v", p)
	}
	if p := tl.Phases[1]; p.Effects.ArrivalRateFactor != 3 {
		t.Fatalf("phase 1 = %+v", p)
	}
}

// TestTimelineSpecStrict: unknown fields inside the timeline block are
// rejected like every other spec typo.
func TestTimelineSpecStrict(t *testing.T) {
	_, err := Load(strings.NewReader(`{
		"name": "tl",
		"timeline": {"phases": [
			{"name": "a", "start_min": 0, "duration_min": 5, "backend_factor": 4}
		]}
	}`))
	if err == nil || !strings.Contains(err.Error(), "backend_factor") {
		t.Fatalf("Load accepted unknown phase field: %v", err)
	}
}

// TestTimelineSpecRejectsOverlap: phase overlap fails at load time, with
// both phases named.
func TestTimelineSpecRejectsOverlap(t *testing.T) {
	_, err := Load(strings.NewReader(`{
		"name": "tl",
		"timeline": {"phases": [
			{"name": "a", "start_min": 0, "duration_min": 10},
			{"name": "b", "start_min": 5, "duration_min": 10}
		]}
	}`))
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("Load accepted overlapping phases: %v", err)
	}
}

// TestTimelineSpecRejectsBadPoPs: PoP references outside the cell's
// fleet fail validation — including when an axis shrinks the fleet.
func TestTimelineSpecRejectsBadPoPs(t *testing.T) {
	_, err := Load(strings.NewReader(`{
		"name": "tl",
		"timeline": {"phases": [
			{"name": "outage", "start_min": 0, "duration_min": 5, "pop_down": [9]}
		]}
	}`))
	if err == nil || !strings.Contains(err.Error(), "PoP 9") {
		t.Fatalf("Load accepted PoP 9 outage in the default 6-PoP fleet: %v", err)
	}
	_, err = Load(strings.NewReader(`{
		"name": "tl",
		"timeline": {"phases": [
			{"name": "outage", "start_min": 0, "duration_min": 5, "pop_down": [4]}
		]},
		"axes": [{"name": "pops", "values": [6, 3]}]
	}`))
	if err == nil || !strings.Contains(err.Error(), "PoP 4") {
		t.Fatalf("Load accepted an outage the pops=3 cell cannot host: %v", err)
	}
}

// TestTimelinePresetOverlay: a spec file can replace its preset's
// timeline wholesale.
func TestTimelinePresetOverlay(t *testing.T) {
	sp, err := Load(strings.NewReader(`{
		"name": "my-outage",
		"preset": "pop-outage",
		"timeline": {"phases": [
			{"name": "later", "start_min": 25, "duration_min": 5, "pop_down": [1]}
		]}
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(sp.Timeline.Phases) != 1 || sp.Timeline.Phases[0].Name != "later" {
		t.Fatalf("preset timeline not overridden: %+v", sp.Timeline)
	}
	if !sp.Diagnosis {
		t.Fatal("preset diagnosis flag lost in overlay")
	}
	// And without a file timeline the preset's survives.
	sp, err = Load(strings.NewReader(`{"preset": "pop-outage"}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(sp.Timeline.Phases) != 1 || sp.Timeline.Phases[0].Name != "outage" {
		t.Fatalf("preset timeline = %+v", sp.Timeline)
	}
}

// TestNilTimelineBuildsEmpty: specs without the block build the zero
// timeline.
func TestNilTimelineBuildsEmpty(t *testing.T) {
	var ts *TimelineSpec
	tl, err := ts.Build()
	if err != nil {
		t.Fatalf("Build(nil): %v", err)
	}
	if !tl.Empty() {
		t.Fatalf("Build(nil) = %+v, want empty", tl)
	}
}
