package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"vidperf/internal/diagnose"
	"vidperf/internal/session"
	"vidperf/internal/telemetry"
)

// RunOptions configures one campaign execution.
type RunOptions struct {
	// Workers caps how many cells simulate concurrently (<= 0 runs the
	// cells sequentially). Each cell additionally shards by PoP inside
	// session.Execute per its Scenario.Parallelism, so the total
	// concurrency is Workers × per-cell shards; campaign drivers that
	// fan out across cells usually pin Scenario.Parallelism to 1.
	Workers int
	// OutDir, when non-empty, receives one snapshot file per cell named
	// Cell.FileName(). The directory is created if missing.
	OutDir string
	// Progress, when non-nil, is called as each cell finishes (from the
	// finishing goroutine; keep it cheap and thread-safe).
	Progress func(cell Cell, err error)
}

// CellResult pairs a cell with its snapshot.
type CellResult struct {
	Cell     Cell
	Snapshot *telemetry.Snapshot
	// Path is the snapshot file written for this cell ("" when
	// RunOptions.OutDir was empty).
	Path string
}

// CampaignResult is the outcome of RunCampaign: per-cell snapshots in
// grid order plus the index of the baseline cell for delta reports.
type CampaignResult struct {
	Spec  *Spec
	Cells []CellResult
	// BaselineIndex locates the spec's baseline cell in Cells (-1 only
	// for an empty grid, which Expand never produces).
	BaselineIndex int
}

// Baseline returns the baseline cell's result.
func (r *CampaignResult) Baseline() *CellResult {
	if r.BaselineIndex < 0 || r.BaselineIndex >= len(r.Cells) {
		return nil
	}
	return &r.Cells[r.BaselineIndex]
}

// RunCampaign expands the spec and executes every cell through the
// streaming-telemetry pipeline, at most opt.Workers cells at a time.
// Each cell's snapshot carries spec/cell/seed labels and is independent
// of scheduling, so the campaign's outputs are byte-stable across
// Workers settings and runs. The first cell error aborts scheduling of
// unstarted cells and is returned after in-flight cells drain.
//
// With OutDir set, the directory additionally receives a manifest.json
// recording the generating spec (name, content hash, cell list, seeds)
// before any cell runs — the record internal/store ingests a sweep by.
// A directory already claimed by a different spec's manifest is refused
// rather than silently overwritten.
func RunCampaign(spec *Spec, opt RunOptions) (*CampaignResult, error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if opt.OutDir != "" {
		if err := os.MkdirAll(opt.OutDir, 0o755); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		if err := claimOutDir(opt.OutDir, BuildManifest(spec, cells)); err != nil {
			return nil, err
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))
	next := make(chan int)
	var wg sync.WaitGroup
	var abort sync.Once
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res, err := RunCell(spec, cells[i], opt.OutDir)
				results[i] = res
				errs[i] = err
				if err != nil {
					abort.Do(func() { close(stop) })
				}
				if opt.Progress != nil {
					opt.Progress(cells[i], err)
				}
			}
		}()
	}
feed:
	for i := range cells {
		select {
		case next <- i:
		case <-stop:
			break feed
		}
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: cell %s: %w", cells[i].Name, err)
		}
	}
	return &CampaignResult{
		Spec:          spec,
		Cells:         results,
		BaselineIndex: spec.BaselineIndex(cells),
	}, nil
}

// RunCell executes one cell and, when outDir is non-empty, writes its
// labelled snapshot to outDir/Cell.FileName().
func RunCell(spec *Spec, cell Cell, outDir string) (CellResult, error) {
	opt := session.Options{Telemetry: true, SketchK: spec.EffectiveSketchK()}
	if spec.Diagnosis {
		opt.Diagnose = &diagnose.Config{}
	}
	run, err := session.Execute(cell.Scenario, opt)
	if err != nil {
		return CellResult{Cell: cell}, err
	}
	sn := run.Snapshot
	sn.Labels = map[string]string{
		"spec": spec.Name,
		"cell": cell.Name,
		"seed": strconv.FormatUint(cell.Scenario.Seed, 10),
	}
	if spec.Diagnosis {
		sn.Labels["diagnosis"] = "on"
	}
	if spec.Timeline != nil {
		sn.Labels["timeline"] = fmt.Sprintf("%d-phase", len(spec.Timeline.Phases))
	}
	if spec.Live != nil {
		sn.Labels["live"] = fmt.Sprintf("%d-channel", spec.Live.Channels)
	}
	if spec.Proxy != nil {
		sn.Labels["proxy"] = fmt.Sprintf("share=%g", spec.Proxy.Share)
	}
	for name, value := range cell.Axes {
		sn.Labels["axis:"+name] = value
	}
	res := CellResult{Cell: cell, Snapshot: sn}
	if outDir != "" {
		res.Path = filepath.Join(outDir, cell.FileName())
		f, err := os.Create(res.Path)
		if err != nil {
			return res, err
		}
		if err := telemetry.WriteSnapshot(f, sn); err != nil {
			f.Close()
			return res, err
		}
		if err := f.Close(); err != nil {
			return res, err
		}
	}
	return res, nil
}
