// serve.go is the spec face of continuous service mode: a spec may carry
// a "serve" block that `vodsim serve -spec` maps onto internal/serve's
// engine configuration. The block is ignored by the batch campaign
// drivers (cmd/sweep, vodsim -spec) — it configures how the scenario is
// served, not what is simulated — but it travels with the spec so one
// file describes both the world and its service posture.
package experiment

import "fmt"

// ServeSpec is the "serve" block: continuous-service knobs in
// campaign-friendly units. Zero fields take internal/serve's defaults
// (window length from the scenario's arrival window, sessions per window
// from the scenario's session count, ring 12).
type ServeSpec struct {
	// WindowMin is the virtual length of one service window, in minutes.
	WindowMin float64 `json:"window_min,omitempty"`
	// SessionsPerWindow is the number of sessions each window generates.
	SessionsPerWindow int `json:"sessions_per_window,omitempty"`
	// Ring is how many closed windows the /windows endpoint retains.
	Ring int `json:"ring,omitempty"`
	// Pace is the virtual-to-wall speed factor (0 = max speed).
	Pace float64 `json:"pace,omitempty"`
	// CheckpointEveryWindows writes a checkpoint after every n-th window
	// (0 = only on demand and at shutdown).
	CheckpointEveryWindows int `json:"checkpoint_every_windows,omitempty"`
}

// WindowMS returns the window length in milliseconds (0 when unset).
func (s *ServeSpec) WindowMS() float64 { return s.WindowMin * 60 * 1000 }

// validate rejects impossible serve blocks.
func (s *ServeSpec) validate(specName string) error {
	if s.WindowMin < 0 {
		return fmt.Errorf("experiment: spec %s: serve window_min must be >= 0 (got %g)", specName, s.WindowMin)
	}
	if s.SessionsPerWindow < 0 {
		return fmt.Errorf("experiment: spec %s: serve sessions_per_window must be >= 0 (got %d)", specName, s.SessionsPerWindow)
	}
	if s.Ring < 0 {
		return fmt.Errorf("experiment: spec %s: serve ring must be >= 0 (got %d)", specName, s.Ring)
	}
	if s.Pace < 0 {
		return fmt.Errorf("experiment: spec %s: serve pace must be >= 0 (got %g)", specName, s.Pace)
	}
	if s.CheckpointEveryWindows < 0 {
		return fmt.Errorf("experiment: spec %s: serve checkpoint_every_windows must be >= 0 (got %d)", specName, s.CheckpointEveryWindows)
	}
	return nil
}
