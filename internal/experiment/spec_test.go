package experiment

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vidperf/internal/workload"
)

func load(t *testing.T, src string) *Spec {
	t.Helper()
	sp, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Load(%s): %v", src, err)
	}
	return sp
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"top-level typo", `{"name":"x","axis":[]}`, "axis"},
		{"scenario typo", `{"name":"x","scenario":{"session":5}}`, "session"},
		{"unknown axis", `{"name":"x","axes":[{"name":"warp","values":[1]}]}`, "warp"},
		{"axis value type", `{"name":"x","axes":[{"name":"sessions","values":["many"]}]}`, "sessions"},
		{"trailing garbage", `{"name":"x"} {"name":"y"}`, "trailing"},
		{"bad seed mode", `{"name":"x","seed_mode":"random"}`, "seed_mode"},
		{"duplicate axis", `{"name":"x","axes":[{"name":"abr","values":["hybrid"]},{"name":"abr","values":["fixed-low"]}]}`, "duplicate"},
		{"empty axis", `{"name":"x","axes":[{"name":"abr","values":[]}]}`, "no values"},
		{"missing name", `{"scenario":{"sessions":5}}`, "no name"},
		{"bad baseline", `{"name":"x","axes":[{"name":"cold","values":[false,true]}],"baseline":"cold=maybe"}`, "baseline"},
		{"unknown preset", `{"name":"x","preset":"warp-speed"}`, "preset"},
		{"tiny sketch k", `{"name":"x","sketch_k":2}`, "sketch_k"},
	}
	for _, c := range cases {
		_, err := Load(strings.NewReader(c.src))
		if err == nil {
			t.Errorf("%s: accepted %s", c.name, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestZeroFieldsInheritDefaults(t *testing.T) {
	sp := load(t, `{"name":"x","scenario":{"sessions":123}}`)
	cells, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Name != "base" {
		t.Fatalf("axis-less spec expanded to %v", cells)
	}
	sc := cells[0].Scenario
	if sc.NumSessions != 123 {
		t.Errorf("NumSessions = %d, want 123", sc.NumSessions)
	}
	// Unset fields stay zero, so the scenario inherits WithDefaults at
	// Build time — the same contract as a Go Scenario literal.
	want := workload.Scenario{NumSessions: 123}
	if !reflect.DeepEqual(sc, want) {
		t.Errorf("spec scenario = %+v, want zero-but-sessions %+v", sc, want)
	}
	eff := sc.WithDefaults()
	if eff.NumPrefixes != 2500 || eff.MaxBufferSec != 18 || eff.ABRName != "hybrid" {
		t.Errorf("defaults not inherited: prefixes=%d buffer=%g abr=%q",
			eff.NumPrefixes, eff.MaxBufferSec, eff.ABRName)
	}
}

func TestApplyCoversUnits(t *testing.T) {
	sp := load(t, `{"name":"x","scenario":{
		"seed": 7, "ram_gb": 0.5, "disk_gb": 2, "arrival_window_min": 2,
		"cache_policy": "gd-size", "open_retry_ms": 5, "zipf_s": 1.1,
		"cold": true, "pin_first_chunks": true, "abr": "buffer-based"}}`)
	cells, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sc := cells[0].Scenario
	if sc.Seed != 7 {
		t.Errorf("Seed = %d", sc.Seed)
	}
	if sc.Fleet.Server.RAMBytes != 1<<29 {
		t.Errorf("RAMBytes = %d, want %d", sc.Fleet.Server.RAMBytes, 1<<29)
	}
	if sc.Fleet.Server.DiskBytes != 2<<30 {
		t.Errorf("DiskBytes = %d, want %d", sc.Fleet.Server.DiskBytes, int64(2<<30))
	}
	if sc.ArrivalWindowMS != 120000 {
		t.Errorf("ArrivalWindowMS = %g, want 120000", sc.ArrivalWindowMS)
	}
	if sc.Fleet.Server.Policy != "gd-size" || sc.Fleet.Server.OpenRetryMS != 5 {
		t.Errorf("server config = %+v", sc.Fleet.Server)
	}
	if sc.Catalog.ZipfExponent != 1.1 || !sc.ColdStart || !sc.Fleet.Server.PinFirstChunks {
		t.Errorf("scenario = %+v", sc)
	}
	if sc.ABRName != "buffer-based" {
		t.Errorf("ABRName = %q", sc.ABRName)
	}
}

func TestGridExpansion(t *testing.T) {
	src := `{"name":"grid","scenario":{"sessions":10},"axes":[
		{"name":"cache_policy","values":["lru","lfu","gd-size"]},
		{"name":"ram_gb","values":[0.5,2]}]}`
	sp := load(t, src)
	cells, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("3x2 grid expanded to %d cells", len(cells))
	}
	wantNames := []string{
		"cache_policy=lru,ram_gb=0.5", "cache_policy=lru,ram_gb=2",
		"cache_policy=lfu,ram_gb=0.5", "cache_policy=lfu,ram_gb=2",
		"cache_policy=gd-size,ram_gb=0.5", "cache_policy=gd-size,ram_gb=2",
	}
	for i, c := range cells {
		if c.Name != wantNames[i] {
			t.Errorf("cell %d = %q, want %q (row-major, first axis slowest)", i, c.Name, wantNames[i])
		}
		if c.Index != i {
			t.Errorf("cell %q index = %d, want %d", c.Name, c.Index, i)
		}
		if c.Scenario.NumSessions != 10 {
			t.Errorf("cell %q lost base scenario: %+v", c.Name, c.Scenario)
		}
	}
	if cells[1].Scenario.Fleet.Server.RAMBytes != 2<<30 ||
		cells[0].Scenario.Fleet.Server.RAMBytes != 1<<29 {
		t.Errorf("axis values misapplied: %d / %d",
			cells[0].Scenario.Fleet.Server.RAMBytes, cells[1].Scenario.Fleet.Server.RAMBytes)
	}
	// Expansion is a pure function of the spec.
	again, err := load(t, src).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, again) {
		t.Error("two expansions of the same spec differ")
	}
}

func TestPerCellSeedsStableAndDistinct(t *testing.T) {
	src := `{"name":"seeds","seed_mode":"per-cell","scenario":{"seed":42},
		"axes":[{"name":"abr","values":["hybrid","buffer-based","fixed-low"]}]}`
	cells, err := load(t, src).Expand()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]string{}
	for _, c := range cells {
		want := DeriveSeed(42, c.Name)
		if c.Scenario.Seed != want {
			t.Errorf("cell %q seed = %d, want DeriveSeed = %d", c.Name, c.Scenario.Seed, want)
		}
		if prev, dup := seen[c.Scenario.Seed]; dup {
			t.Errorf("cells %q and %q share seed %d", prev, c.Name, c.Scenario.Seed)
		}
		seen[c.Scenario.Seed] = c.Name
	}
	again, _ := load(t, src).Expand()
	for i := range cells {
		if cells[i].Scenario.Seed != again[i].Scenario.Seed {
			t.Errorf("cell %q seed unstable across expansions", cells[i].Name)
		}
	}
	// Shared mode (the default) pins every cell to the base seed.
	shared, err := load(t, `{"name":"s","scenario":{"seed":42},
		"axes":[{"name":"abr","values":["hybrid","buffer-based"]}]}`).Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range shared {
		if c.Scenario.Seed != 42 {
			t.Errorf("shared-mode cell %q seed = %d, want 42", c.Name, c.Scenario.Seed)
		}
	}
}

func TestBooleanAxisOverridesBase(t *testing.T) {
	// An explicit false must override a true base — the pointer-typed
	// spec fields exist for exactly this.
	src := `{"name":"cold","scenario":{"cold":true},
		"axes":[{"name":"cold","values":[false,true]}]}`
	cells, err := load(t, src).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Scenario.ColdStart != false || cells[1].Scenario.ColdStart != true {
		t.Errorf("cold axis cells = %v/%v, want false/true",
			cells[0].Scenario.ColdStart, cells[1].Scenario.ColdStart)
	}
}

func TestPresetOverlay(t *testing.T) {
	sp := load(t, `{"preset":"zipf-sweep","scenario":{"sessions":500}}`)
	if sp.Name != "zipf-sweep" {
		t.Errorf("Name = %q", sp.Name)
	}
	if sp.Scenario.Sessions != 500 {
		t.Errorf("override lost: sessions = %d", sp.Scenario.Sessions)
	}
	if sp.Scenario.Seed == nil || *sp.Scenario.Seed != 11 {
		t.Errorf("preset seed lost: %v", sp.Scenario.Seed)
	}
	if len(sp.Axes) != 1 || sp.Axes[0].Name != "zipf_s" {
		t.Errorf("preset axes lost: %+v", sp.Axes)
	}
	if sp.Baseline != "zipf_s=0.9" {
		t.Errorf("preset baseline lost: %q", sp.Baseline)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, name := range Presets() {
		sp, ok := Preset(name)
		if !ok {
			t.Fatalf("Preset(%q) missing", name)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		cells, err := sp.Expand()
		if err != nil {
			t.Errorf("preset %s: %v", name, err)
			continue
		}
		if sp.BaselineIndex(cells) < 0 {
			t.Errorf("preset %s: baseline %q resolves to no cell", name, sp.Baseline)
		}
	}
}

func TestShippedSpecFilesLoad(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("expected the shipped spec set under examples/specs/, found %v", paths)
	}
	for _, p := range paths {
		sp, err := LoadFile(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		cells, err := sp.Expand()
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if sp.BaselineIndex(cells) < 0 {
			t.Errorf("%s: baseline %q resolves to no cell", p, sp.Baseline)
		}
	}
}

func TestCellFileName(t *testing.T) {
	c := Cell{Name: `abr=buffer-based,ram_gb=0.5`}
	if got := c.FileName(); got != "abr=buffer-based-ram_gb=0.5.json" {
		t.Errorf("FileName = %q", got)
	}
	weird := Cell{Name: `a/b c,d`}
	if got := weird.FileName(); strings.ContainsAny(got, "/ ,") {
		t.Errorf("FileName %q keeps unsafe characters", got)
	}
}

func TestAxisValueRendering(t *testing.T) {
	for _, c := range []struct {
		raw, want string
	}{
		// "1.0" must collapse to "1": a preset's float64(1.0) marshals
		// as "1", and cell names/seeds may not depend on the spelling.
		{`"lru"`, "lru"}, {`0.5`, "0.5"}, {`2`, "2"}, {`false`, "false"}, {`1.0`, "1"},
	} {
		if got := renderAxisValue(json.RawMessage(c.raw)); got != c.want {
			t.Errorf("renderAxisValue(%s) = %q, want %q", c.raw, got, c.want)
		}
	}
}
