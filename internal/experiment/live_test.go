package experiment

import (
	"strings"
	"testing"

	"vidperf/internal/live"
)

// TestLiveBlockLoads: a spec with a live block decodes strictly, builds
// into a validated live.Config with defaults filled, and flows into the
// expanded cells' scenarios.
func TestLiveBlockLoads(t *testing.T) {
	sp, err := Load(strings.NewReader(`{
		"name": "ln",
		"scenario": {"sessions": 500},
		"live": {"channels": 12, "chunk_sec": 4, "switch_per_min": 2,
		         "join": "zipf", "join_zipf_s": 0.9, "join_behind_chunks": 3}
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if sp.Live == nil {
		t.Fatal("live block dropped")
	}
	cells, err := sp.Expand()
	if err != nil || len(cells) != 1 {
		t.Fatalf("Expand: %d cells, err %v", len(cells), err)
	}
	lc := cells[0].Scenario.Live
	want := live.Config{
		Channels: 12, ChunkDurationSec: 4, SwitchPerMin: 2,
		JoinDist: live.JoinZipf, JoinZipfS: 0.9, JoinBehindChunks: 3,
	}
	if lc != want {
		t.Fatalf("cell live config = %+v, want %+v", lc, want)
	}
	if !lc.Enabled() {
		t.Fatal("cell live config not enabled")
	}
}

// TestLiveBlockDefaults: an all-defaults live block inherits the
// internal/live calibrated defaults through Build.
func TestLiveBlockDefaults(t *testing.T) {
	sp, err := Load(strings.NewReader(`{"name": "ln", "live": {"channels": 4}}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	cells, err := sp.Expand()
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	lc := cells[0].Scenario.Live
	if lc.ChunkDurationSec != live.DefaultChunkDurationSec ||
		lc.JoinDist != live.JoinUniform ||
		lc.JoinBehindChunks != live.DefaultJoinBehindChunks {
		t.Fatalf("defaults not applied: %+v", lc)
	}
}

// TestLiveBlockPresetOverride: a file's live block replaces the preset's
// (whole-block override, like timeline and serve), and the shipped live
// presets carry their blocks through Load.
func TestLiveBlockPresetOverride(t *testing.T) {
	sp, err := Load(strings.NewReader(`{
		"preset": "live-steady",
		"name": "ln-from-preset",
		"live": {"channels": 3}
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if sp.Live == nil || sp.Live.Channels != 3 {
		t.Fatalf("live block after preset merge = %+v", sp.Live)
	}

	for _, preset := range []string{"live-steady", "channel-switch-storm"} {
		sp, err := Load(strings.NewReader(`{"preset": "` + preset + `"}`))
		if err != nil {
			t.Fatalf("Load(%s): %v", preset, err)
		}
		if sp.Live == nil || sp.Live.Channels == 0 {
			t.Fatalf("%s: live block = %+v", preset, sp.Live)
		}
		if !sp.Diagnosis {
			t.Errorf("%s: diagnosis off; the live presets must carry the live-edge-limited cause share", preset)
		}
	}
}

// TestLiveBlockValidation: impossible live blocks and the live/serve
// conflict are load-time errors.
func TestLiveBlockValidation(t *testing.T) {
	for name, doc := range map[string]string{
		"zero channels":     `{"name": "x", "live": {"channels": 0}}`,
		"negative channels": `{"name": "x", "live": {"channels": -3}}`,
		"too many channels": `{"name": "x", "live": {"channels": 5000}}`,
		"chunk too short":   `{"name": "x", "live": {"channels": 4, "chunk_sec": 0.2}}`,
		"chunk too long":    `{"name": "x", "live": {"channels": 4, "chunk_sec": 300}}`,
		"switch rate":       `{"name": "x", "live": {"channels": 4, "switch_per_min": 100}}`,
		"bad join dist":     `{"name": "x", "live": {"channels": 4, "join": "lognormal"}}`,
		"negative zipf s":   `{"name": "x", "live": {"channels": 4, "join_zipf_s": -1}}`,
		"negative behind":   `{"name": "x", "live": {"channels": 4, "join_behind_chunks": -1}}`,
		"unknown field":     `{"name": "x", "live": {"channels": 4, "chunk_seconds": 6}}`,
		"with serve": `{"name": "x",
			"serve": {"window_min": 5},
			"live": {"channels": 4}}`,
	} {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: spec loaded without error", name)
		}
	}
}
