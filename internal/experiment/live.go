// live.go is the JSON face of internal/live: the "live" block of an
// experiment spec. Like the rest of the spec format it is strict —
// unknown fields are rejected by the spec decoder — and every field but
// channels is optional, inheriting internal/live's calibrated defaults.
package experiment

import (
	"fmt"

	"vidperf/internal/live"
)

// LiveSpec is the spec-file encoding of a live-channel configuration.
// A spec with a live block turns the campaign's sessions into live
// viewers: every channel publishes chunk i at i·chunk_sec on a shared
// virtual-time publish clock, sessions join in progress at the live
// edge, and a session that drains its buffer waits on the clock (live-
// edge lag) instead of re-buffering on the delivery path.
type LiveSpec struct {
	// Channels is the number of live channels (required, >= 1 — a spec
	// that carries a live block means to turn live mode on).
	Channels int `json:"channels"`

	// ChunkSec is the live chunk duration in seconds; one chunk is
	// published per channel every ChunkSec (0 selects the default 6 s).
	ChunkSec float64 `json:"chunk_sec,omitempty"`

	// SwitchPerMin is the per-session channel-switch rate (expected
	// switches per viewing minute; 0 = sessions never switch).
	SwitchPerMin float64 `json:"switch_per_min,omitempty"`

	// Join selects the channel-popularity distribution sessions join by:
	// "uniform" (default) or "zipf".
	Join string `json:"join,omitempty"`

	// JoinZipfS is the Zipf exponent when join is "zipf" (0 selects the
	// default 1.1).
	JoinZipfS float64 `json:"join_zipf_s,omitempty"`

	// JoinBehindChunks is how many chunks behind the live edge a joining
	// session starts (0 selects the default 2; the small buffer of lead
	// every live player keeps).
	JoinBehindChunks int `json:"join_behind_chunks,omitempty"`
}

// Build converts the spec block into a validated live.Config. A nil
// receiver (no live block) builds the zero config, which disables live
// mode.
func (l *LiveSpec) Build() (live.Config, error) {
	var cfg live.Config
	if l == nil {
		return cfg, nil
	}
	cfg = live.Config{
		Channels:         l.Channels,
		ChunkDurationSec: l.ChunkSec,
		SwitchPerMin:     l.SwitchPerMin,
		JoinDist:         l.Join,
		JoinZipfS:        l.JoinZipfS,
		JoinBehindChunks: l.JoinBehindChunks,
	}
	if cfg.Channels < 1 {
		return live.Config{}, fmt.Errorf("live block: channels must be >= 1 (got %d)", cfg.Channels)
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return live.Config{}, fmt.Errorf("live block: %w", err)
	}
	return cfg, nil
}
