package experiment

import (
	"encoding/json"
	"sort"
)

// presets is the built-in spec registry. Each entry is a complete,
// validated Spec; files under examples/specs/ either restate them (so
// they are greppable documentation) or extend them via "preset".
var presets = map[string]Spec{
	// The steady-state campaign the paper measures: every knob at its
	// calibrated default, one cell. This is the spec the CI determinism
	// gate replays at -parallel 1 and 8 and byte-compares.
	"paper-baseline": {
		Name:        "paper-baseline",
		Description: "Paper §3 steady-state campaign at laptop scale; all knobs at calibrated defaults.",
		Scenario:    ScenarioSpec{Seed: u64(1)},
	},

	// Freshly deployed CDN vs the pre-warmed steady state (ablation; the
	// paper measures only the warm regime).
	"cold-start": {
		Name:        "cold-start",
		Description: "Warm (paper regime) vs cold CDN caches: miss rate, Dread, and startup deltas.",
		Scenario:    ScenarioSpec{Seed: u64(21), Sessions: 4000, Prefixes: 600, Videos: 1500},
		Axes:        []Axis{{Name: "cold", Values: vals(false, true)}},
		Baseline:    "cold=false",
	},

	// A release-day surge: cold caches crossed with the same session
	// volume compressed from a 30-minute window into 2 minutes, against
	// a hotter catalog. The grid separates the two effects: the surge
	// alone barely moves per-chunk latency (the worker pools have
	// headroom — Dwait stays sub-ms, as the paper reports), while cold
	// caches dominate every miss-path metric.
	"flash-crowd": {
		Name:        "flash-crowd",
		Description: "Release-day flash crowd: cold caches crossed with a 30-minute vs 2-minute arrival window on a skewed catalog.",
		Scenario:    ScenarioSpec{Seed: u64(31), Sessions: 4000, Prefixes: 600, Videos: 1500, ZipfS: 1.1},
		Axes: []Axis{
			{Name: "cold", Values: vals(false, true)},
			{Name: "arrival_window_min", Values: vals(30, 2)},
		},
		Baseline: "cold=false,arrival_window_min=30",
	},

	// The §4.3 adaptation-signal ablation (old cmd/sweep -factor abr).
	"abr-ablation": {
		Name:        "abr-ablation",
		Description: "ABR algorithm ablation: bitrate vs re-buffering across the internal/abr variants.",
		Scenario:    ScenarioSpec{Seed: u64(14), Sessions: 2000, Prefixes: 400, Videos: 1500},
		Axes: []Axis{{Name: "abr", Values: vals(
			"hybrid", "buffer-based", "rate-smoothed", "rate-instant", "server-signal")}},
		Baseline: "abr=hybrid",
	},

	// Eviction policy × RAM size grid (§4.1 take-away: GD-Size over LRU).
	"cache-policy-matrix": {
		Name:        "cache-policy-matrix",
		Description: "Cache eviction policy crossed with RAM size: hit ratio and retry-timer share.",
		Scenario:    ScenarioSpec{Seed: u64(12), Sessions: 2000, Prefixes: 400, Videos: 1500},
		Axes: []Axis{
			{Name: "cache_policy", Values: vals("lru", "lfu", "gd-size")},
			{Name: "ram_gb", Values: vals(0.5, 2)},
		},
		Baseline: "cache_policy=lru,ram_gb=2",
	},

	// A PoP failing mid-campaign: PoP 2 is out for the middle ten
	// minutes of the 30-minute window, its arrivals anycast-failed-over
	// to PoP 0 on a visibly longer path. Diagnosis is on so analyze
	// -windows can show the label mix shifting during the outage and
	// recovering after it (the acceptance evidence for timed fault
	// injection).
	"pop-outage": {
		Name:        "pop-outage",
		Description: "PoP 2 outage minutes 10-20 with failover to PoP 0: per-window QoE dip and recovery.",
		Scenario:    ScenarioSpec{Seed: u64(41), Sessions: 4000, Prefixes: 600, Videos: 1500},
		Diagnosis:   true,
		Timeline: &TimelineSpec{Phases: []PhaseSpec{{
			Name: "outage", StartMin: 10, DurationMin: 10,
			PoPDown: []int{2}, FailoverPoP: 0, FailoverExtraRTTms: 120,
		}}},
	},

	// An origin brownout under cold caches: every miss pays 6x the
	// backend latency for the middle ten minutes. Cold caches keep the
	// miss rate high enough that the brownout dominates the window's
	// first-byte delays — the paper's "misses raise median latency 40x"
	// sensitivity, made transient.
	"backend-brownout": {
		Name:        "backend-brownout",
		Description: "6x origin-latency brownout minutes 10-20 on cold caches: windowed D_BE and startup spike.",
		Scenario:    ScenarioSpec{Seed: u64(42), Sessions: 4000, Prefixes: 600, Videos: 1500, Cold: b(true)},
		Diagnosis:   true,
		Timeline: &TimelineSpec{Phases: []PhaseSpec{{
			Name: "brownout", StartMin: 10, DurationMin: 10,
			BackendLatencyFactor: 6,
		}}},
	},

	// A network-path degradation that sets in and lifts: sessions
	// arriving in the middle ten minutes see a third of their bottleneck
	// rate, 1.5% extra segment loss, and 60 ms extra RTT — the §4.2
	// congestion-episode picture as a campaign-wide transient instead of
	// a per-prefix process.
	"degrade-recover": {
		Name:        "degrade-recover",
		Description: "Path degradation minutes 10-20 (throughput/3, +1.5% loss, +60 ms RTT), then recovery.",
		Scenario:    ScenarioSpec{Seed: u64(43), Sessions: 4000, Prefixes: 600, Videos: 1500},
		Diagnosis:   true,
		Timeline: &TimelineSpec{Phases: []PhaseSpec{{
			Name: "degrade", StartMin: 10, DurationMin: 10,
			ThroughputFactor: 0.33, ExtraLossProb: 0.015, ExtraRTTms: 60,
		}}},
	},

	// A steady live/linear campaign: eight channels on the shared publish
	// clock, no switching. Diagnosis is on so the cause-share table shows
	// the live-edge-limited label — degraded sessions whose stalls were
	// the publish clock, not any delivery layer. This is the spec the CI
	// live-determinism gate replays at -parallel 1 and 8 and byte-compares.
	"live-steady": {
		Name:        "live-steady",
		Description: "Eight live channels, no switching: join time, live-edge lag, and per-channel audience mix.",
		Scenario:    ScenarioSpec{Seed: u64(51), Sessions: 4000, Prefixes: 600, Videos: 1500},
		Diagnosis:   true,
		Live:        &LiveSpec{Channels: 8},
	},

	// Channel-surfing under a skewed audience: twelve channels joined by
	// a Zipf draw, with sessions switching twice a minute. Switch storms
	// fragment per-session cache locality while the publish clock keeps
	// the hot edge synchronized — the stress case for the live path.
	"channel-switch-storm": {
		Name:        "channel-switch-storm",
		Description: "Twelve zipf-joined live channels with two switches per viewing minute: switch-storm stress on the live edge.",
		Scenario:    ScenarioSpec{Seed: u64(52), Sessions: 4000, Prefixes: 600, Videos: 1500},
		Diagnosis:   true,
		Live: &LiveSpec{
			Channels: 12, SwitchPerMin: 2,
			Join: "zipf", JoinZipfS: 1.1,
		},
	},

	// A proxied-enterprise population: 23% of sessions behind twelve
	// shared-egress cohorts (the paper's §3 measurement), each tromboning
	// its members through a 25 Mbit/s concentrator. Diagnosis is on so
	// the cause table shows the proxy-tromboned label; the trace feeds
	// `analyze detect-proxies` (the §3 rules + ablation). This is the
	// spec the CI proxy-determinism gate replays at -parallel 1 and 8 and
	// byte-compares.
	"proxied-enterprise": {
		Name:        "proxied-enterprise",
		Description: "23% of sessions behind twelve shared-egress proxy cohorts: tromboned paths, §3 detection signals, CV(SRTT) tail inflation.",
		Scenario:    ScenarioSpec{Seed: u64(61), Sessions: 4000, Prefixes: 600, Videos: 1500},
		Diagnosis:   true,
		Proxy:       &ProxySpec{Share: 0.23, Cohorts: 12, EgressKbps: 25000},
	},

	// The old hardcoded cmd/sweep zipf factor, ported verbatim: same
	// seed, same scale, same exponents. internal/experiment's parity
	// test pins this preset's cells to the old construction.
	"zipf-sweep": {
		Name:        "zipf-sweep",
		Description: "Popularity skew (Zipf exponent) vs cache behaviour; port of the old sweep -factor zipf.",
		Scenario:    ScenarioSpec{Seed: u64(11), Sessions: 2000, Prefixes: 400, Videos: 1500},
		Axes:        []Axis{{Name: "zipf_s", Values: vals(0.6, 0.8, 0.9, 1.0, 1.1)}},
		Baseline:    "zipf_s=0.9",
	},
}

// Preset returns a copy of the named built-in spec.
func Preset(name string) (Spec, bool) {
	s, ok := presets[name]
	return s, ok
}

// Presets lists the built-in spec names, sorted.
func Presets() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func u64(v uint64) *uint64 { return &v }

func b(v bool) *bool { return &v }

// vals marshals literal axis values; a value json can't encode is a
// programming error in the preset table, so it panics at init.
func vals(vs ...any) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		out[i] = b
	}
	return out
}
