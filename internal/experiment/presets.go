package experiment

import (
	"encoding/json"
	"sort"
)

// presets is the built-in spec registry. Each entry is a complete,
// validated Spec; files under examples/specs/ either restate them (so
// they are greppable documentation) or extend them via "preset".
var presets = map[string]Spec{
	// The steady-state campaign the paper measures: every knob at its
	// calibrated default, one cell. This is the spec the CI determinism
	// gate replays at -parallel 1 and 8 and byte-compares.
	"paper-baseline": {
		Name:        "paper-baseline",
		Description: "Paper §3 steady-state campaign at laptop scale; all knobs at calibrated defaults.",
		Scenario:    ScenarioSpec{Seed: u64(1)},
	},

	// Freshly deployed CDN vs the pre-warmed steady state (ablation; the
	// paper measures only the warm regime).
	"cold-start": {
		Name:        "cold-start",
		Description: "Warm (paper regime) vs cold CDN caches: miss rate, Dread, and startup deltas.",
		Scenario:    ScenarioSpec{Seed: u64(21), Sessions: 4000, Prefixes: 600, Videos: 1500},
		Axes:        []Axis{{Name: "cold", Values: vals(false, true)}},
		Baseline:    "cold=false",
	},

	// A release-day surge: cold caches crossed with the same session
	// volume compressed from a 30-minute window into 2 minutes, against
	// a hotter catalog. The grid separates the two effects: the surge
	// alone barely moves per-chunk latency (the worker pools have
	// headroom — Dwait stays sub-ms, as the paper reports), while cold
	// caches dominate every miss-path metric.
	"flash-crowd": {
		Name:        "flash-crowd",
		Description: "Release-day flash crowd: cold caches crossed with a 30-minute vs 2-minute arrival window on a skewed catalog.",
		Scenario:    ScenarioSpec{Seed: u64(31), Sessions: 4000, Prefixes: 600, Videos: 1500, ZipfS: 1.1},
		Axes: []Axis{
			{Name: "cold", Values: vals(false, true)},
			{Name: "arrival_window_min", Values: vals(30, 2)},
		},
		Baseline: "cold=false,arrival_window_min=30",
	},

	// The §4.3 adaptation-signal ablation (old cmd/sweep -factor abr).
	"abr-ablation": {
		Name:        "abr-ablation",
		Description: "ABR algorithm ablation: bitrate vs re-buffering across the internal/abr variants.",
		Scenario:    ScenarioSpec{Seed: u64(14), Sessions: 2000, Prefixes: 400, Videos: 1500},
		Axes: []Axis{{Name: "abr", Values: vals(
			"hybrid", "buffer-based", "rate-smoothed", "rate-instant", "server-signal")}},
		Baseline: "abr=hybrid",
	},

	// Eviction policy × RAM size grid (§4.1 take-away: GD-Size over LRU).
	"cache-policy-matrix": {
		Name:        "cache-policy-matrix",
		Description: "Cache eviction policy crossed with RAM size: hit ratio and retry-timer share.",
		Scenario:    ScenarioSpec{Seed: u64(12), Sessions: 2000, Prefixes: 400, Videos: 1500},
		Axes: []Axis{
			{Name: "cache_policy", Values: vals("lru", "lfu", "gd-size")},
			{Name: "ram_gb", Values: vals(0.5, 2)},
		},
		Baseline: "cache_policy=lru,ram_gb=2",
	},

	// The old hardcoded cmd/sweep zipf factor, ported verbatim: same
	// seed, same scale, same exponents. internal/experiment's parity
	// test pins this preset's cells to the old construction.
	"zipf-sweep": {
		Name:        "zipf-sweep",
		Description: "Popularity skew (Zipf exponent) vs cache behaviour; port of the old sweep -factor zipf.",
		Scenario:    ScenarioSpec{Seed: u64(11), Sessions: 2000, Prefixes: 400, Videos: 1500},
		Axes:        []Axis{{Name: "zipf_s", Values: vals(0.6, 0.8, 0.9, 1.0, 1.1)}},
		Baseline:    "zipf_s=0.9",
	},
}

// Preset returns a copy of the named built-in spec.
func Preset(name string) (Spec, bool) {
	s, ok := presets[name]
	return s, ok
}

// Presets lists the built-in spec names, sorted.
func Presets() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func u64(v uint64) *uint64 { return &v }

// vals marshals literal axis values; a value json can't encode is a
// programming error in the preset table, so it panics at init.
func vals(vs ...any) []json.RawMessage {
	out := make([]json.RawMessage, len(vs))
	for i, v := range vs {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		out[i] = b
	}
	return out
}
