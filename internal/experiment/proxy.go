// proxy.go is the JSON face of internal/proxypop: the "proxy" block of
// an experiment spec. Like the rest of the spec format it is strict —
// unknown fields are rejected by the spec decoder — and every field but
// share is optional, inheriting internal/proxypop's calibrated defaults.
package experiment

import (
	"fmt"

	"vidperf/internal/proxypop"
)

// ProxySpec is the spec-file encoding of a proxied-population
// configuration. A spec with a proxy block places the configured share
// of sessions behind shared-egress cohorts: each cohort presents one
// egress IP to the CDN and trombones its members' traffic through the
// concentrator (extra RTT, inflated jitter, shared-egress queueing,
// optional uplink contention). The block composes freely with live and
// serve modes — proxied enterprises watch linear channels and stream
// against a continuous service like anyone else.
type ProxySpec struct {
	// Share is the fraction of sessions behind a shared egress
	// (required, in (0, 1] — a spec that carries a proxy block means to
	// turn the model on; the paper's trace measured ≈0.23).
	Share float64 `json:"share"`

	// Cohorts is the number of shared-egress identities the proxied
	// share splits into (0 selects the default 12).
	Cohorts int `json:"cohorts,omitempty"`

	// ExtraRTTMinMS / ExtraRTTMaxMS bound the per-cohort trombone RTT
	// penalty in milliseconds (0 selects the defaults 25 / 200,
	// mirroring the enterprise backhaul detour).
	ExtraRTTMinMS float64 `json:"extra_rtt_min_ms,omitempty"`
	ExtraRTTMaxMS float64 `json:"extra_rtt_max_ms,omitempty"`

	// JitterFactor multiplies prefix jitter on tromboned paths (0
	// selects the default 3).
	JitterFactor float64 `json:"jitter_factor,omitempty"`

	// EgressKbps is each cohort's shared uplink capacity, divided among
	// the expected concurrent members (0 = uncontended egress).
	EgressKbps float64 `json:"egress_kbps,omitempty"`

	// BeaconMismatchProb is the share of proxied sessions whose player
	// beacon still reports the true client address — the §3 rule-(i)
	// evidence (0 selects the default 0.7).
	BeaconMismatchProb float64 `json:"beacon_mismatch_prob,omitempty"`
}

// Build converts the spec block into a validated proxypop.Config. A nil
// receiver (no proxy block) builds the zero config, which disables the
// model.
func (p *ProxySpec) Build() (proxypop.Config, error) {
	var cfg proxypop.Config
	if p == nil {
		return cfg, nil
	}
	cfg = proxypop.Config{
		Share:              p.Share,
		Cohorts:            p.Cohorts,
		ExtraRTTMinMS:      p.ExtraRTTMinMS,
		ExtraRTTMaxMS:      p.ExtraRTTMaxMS,
		JitterFactor:       p.JitterFactor,
		EgressKbps:         p.EgressKbps,
		BeaconMismatchProb: p.BeaconMismatchProb,
	}
	if cfg.Share <= 0 {
		return proxypop.Config{}, fmt.Errorf("proxy block: share must be > 0 (got %g)", cfg.Share)
	}
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return proxypop.Config{}, fmt.Errorf("proxy block: %w", err)
	}
	return cfg, nil
}
