package experiment

import (
	"strings"
	"testing"
)

// TestServeBlockLoads: a spec with a serve block decodes strictly, the
// block survives preset merging, and its units convert as documented.
func TestServeBlockLoads(t *testing.T) {
	sp, err := Load(strings.NewReader(`{
		"name": "svc",
		"scenario": {"sessions": 500},
		"serve": {"window_min": 5, "sessions_per_window": 250, "ring": 6,
		          "pace": 60, "checkpoint_every_windows": 4}
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	sv := sp.Serve
	if sv == nil {
		t.Fatal("serve block dropped")
	}
	if sv.WindowMS() != 5*60*1000 {
		t.Fatalf("WindowMS = %g", sv.WindowMS())
	}
	if sv.SessionsPerWindow != 250 || sv.Ring != 6 || sv.Pace != 60 || sv.CheckpointEveryWindows != 4 {
		t.Fatalf("serve block = %+v", sv)
	}
	// The block does not disturb batch expansion.
	cells, err := sp.Expand()
	if err != nil || len(cells) != 1 {
		t.Fatalf("Expand: %d cells, err %v", len(cells), err)
	}
}

// TestServeBlockPresetOverride: a file's serve block replaces the
// preset's (whole-block override, like timeline).
func TestServeBlockPresetOverride(t *testing.T) {
	sp, err := Load(strings.NewReader(`{
		"preset": "paper-baseline",
		"name": "svc-from-preset",
		"serve": {"window_min": 2}
	}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if sp.Serve == nil || sp.Serve.WindowMin != 2 {
		t.Fatalf("serve block after preset merge = %+v", sp.Serve)
	}
}

// TestServeBlockValidation: impossible serve blocks and the
// serve/timeline conflict are load-time errors.
func TestServeBlockValidation(t *testing.T) {
	for name, doc := range map[string]string{
		"negative window": `{"name": "x", "serve": {"window_min": -1}}`,
		"negative ring":   `{"name": "x", "serve": {"ring": -2}}`,
		"negative pace":   `{"name": "x", "serve": {"pace": -0.5}}`,
		"negative every":  `{"name": "x", "serve": {"checkpoint_every_windows": -1}}`,
		"with timeline": `{"name": "x",
			"serve": {"window_min": 5},
			"timeline": {"phases": [{"name": "p", "start_min": 1, "duration_min": 1}]}}`,
		"unknown field": `{"name": "x", "serve": {"window_minutes": 5}}`,
	} {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: spec loaded without error", name)
		}
	}
}
