package experiment

import (
	"fmt"
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// specDocPath locates docs/SPECS.md relative to this package.
const specDocPath = "../../docs/SPECS.md"

// jsonTags collects the JSON field names of every struct in the spec
// format, recursing into nested spec structs.
func jsonTags(t reflect.Type, out map[string]bool) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		tag := strings.Split(f.Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		out[tag] = true
		ft := f.Type
		for ft.Kind() == reflect.Pointer || ft.Kind() == reflect.Slice {
			ft = ft.Elem()
		}
		if ft.Kind() == reflect.Struct && ft.PkgPath() == t.PkgPath() {
			jsonTags(ft, out)
		}
	}
}

// specFormatTags returns every JSON field name reachable from Spec.
func specFormatTags() map[string]bool {
	tags := map[string]bool{}
	jsonTags(reflect.TypeOf(Spec{}), tags)
	return tags
}

// TestSpecsDocCoversFields pins docs/SPECS.md to the Go spec format in
// both directions: every JSON field that exists in Go must appear in
// the doc as a `backticked` token, and every field-table row in the
// doc must name a field (or preset) that still exists. Adding a spec
// field without documenting it — or documenting one that was removed —
// fails here.
func TestSpecsDocCoversFields(t *testing.T) {
	doc, err := os.ReadFile(specDocPath)
	if err != nil {
		t.Fatalf("spec reference missing: %v", err)
	}
	text := string(doc)

	tags := specFormatTags()
	for tag := range tags {
		if !strings.Contains(text, "`"+tag+"`") {
			t.Errorf("spec field %q is not documented in docs/SPECS.md", tag)
		}
	}

	// Reverse direction: the first backticked token of every table row
	// must be a live spec field or a live preset name.
	known := map[string]bool{}
	for tag := range tags {
		known[tag] = true
	}
	for _, p := range Presets() {
		known[p] = true
	}
	rowToken := regexp.MustCompile("^\\| `([a-z0-9_-]+)`")
	for i, line := range strings.Split(text, "\n") {
		m := rowToken.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if !known[m[1]] {
			t.Errorf("docs/SPECS.md line %d documents %q, which is neither a spec field nor a preset", i+1, m[1])
		}
	}
}

// TestSpecsDocListsPresets: every built-in preset must be in the doc's
// preset table.
func TestSpecsDocListsPresets(t *testing.T) {
	doc, err := os.ReadFile(specDocPath)
	if err != nil {
		t.Fatalf("spec reference missing: %v", err)
	}
	for _, p := range Presets() {
		if !strings.Contains(string(doc), fmt.Sprintf("`%s`", p)) {
			t.Errorf("preset %q is not documented in docs/SPECS.md", p)
		}
	}
}
