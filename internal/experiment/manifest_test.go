package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// manifestSpec is a tiny two-cell spec for manifest tests.
func manifestSpec(t *testing.T) *Spec {
	t.Helper()
	sp, err := Load(strings.NewReader(`{
		"name": "manifest-test",
		"scenario": {"seed": 3, "sessions": 60, "prefixes": 40, "videos": 200},
		"axes": [{"name": "cold", "values": [false, true]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestSpecHashStableAndContentSensitive: the hash is a pure function of
// spec content — identical specs agree, any override changes it.
func TestSpecHashStableAndContentSensitive(t *testing.T) {
	a, b := manifestSpec(t), manifestSpec(t)
	if a.Hash() != b.Hash() {
		t.Fatalf("identical specs hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	b.Scenario.Sessions = 61
	if a.Hash() == b.Hash() {
		t.Fatal("session-count override did not change the spec hash")
	}
	c := manifestSpec(t)
	c.Diagnosis = true
	if a.Hash() == c.Hash() {
		t.Fatal("diagnosis toggle did not change the spec hash")
	}
}

// TestManifestRoundTrip: BuildManifest covers every cell in grid order
// and the codec round-trips it exactly.
func TestManifestRoundTrip(t *testing.T) {
	sp := manifestSpec(t)
	cells, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	m := BuildManifest(sp, cells)
	if m.Spec != "manifest-test" || m.SpecHash != sp.Hash() {
		t.Fatalf("manifest provenance = %q/%q", m.Spec, m.SpecHash)
	}
	if len(m.Cells) != len(cells) {
		t.Fatalf("manifest cells = %d, want %d", len(m.Cells), len(cells))
	}
	if m.Baseline != cells[0].Name {
		t.Fatalf("default baseline = %q, want first cell %q", m.Baseline, cells[0].Name)
	}
	for i, c := range cells {
		mc := m.Cells[i]
		if mc.Name != c.Name || mc.File != c.FileName() || mc.Seed != c.Scenario.Seed {
			t.Fatalf("cell %d manifest entry %+v does not match cell %+v", i, mc, c)
		}
	}

	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.SpecHash != m.SpecHash || len(got.Cells) != len(m.Cells) || got.Cells[1].Name == "" {
		t.Fatalf("round-trip mangled the manifest: %+v", got)
	}
}

// TestRunCampaignWritesManifestAndRefusesForeignDir: -out directories
// carry a manifest; re-running the same spec is legal, a different spec
// is refused before simulating anything.
func TestRunCampaignWritesManifestAndRefusesForeignDir(t *testing.T) {
	sp := manifestSpec(t)
	dir := t.TempDir()
	if _, err := RunCampaign(sp, RunOptions{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifestFile(dir)
	if err != nil {
		t.Fatalf("sweep dir has no readable manifest: %v", err)
	}
	for _, c := range m.Cells {
		if _, err := os.Stat(filepath.Join(dir, c.File)); err != nil {
			t.Errorf("manifest names missing snapshot %s: %v", c.File, err)
		}
	}

	// Same spec again: allowed (idempotent re-run).
	if _, err := RunCampaign(sp, RunOptions{OutDir: dir}); err != nil {
		t.Fatalf("re-running the identical spec was refused: %v", err)
	}

	// Different spec content into the same directory: refused.
	other := manifestSpec(t)
	other.Scenario.Sessions = 61
	if _, err := RunCampaign(other, RunOptions{OutDir: dir}); err == nil {
		t.Fatal("RunCampaign overwrote a directory claimed by a different spec")
	} else if !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("unexpected refusal error: %v", err)
	}
}

// TestCampaignBaseline: Baseline() resolves the baseline cell and is
// nil-safe on an out-of-range index.
func TestCampaignBaseline(t *testing.T) {
	sp := manifestSpec(t)
	res, err := RunCampaign(sp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Baseline()
	if b == nil || b.Cell.Name != res.Cells[res.BaselineIndex].Cell.Name {
		t.Fatalf("Baseline() = %v, want cell at index %d", b, res.BaselineIndex)
	}
	empty := &CampaignResult{BaselineIndex: -1}
	if empty.Baseline() != nil {
		t.Fatal("Baseline() on an empty result is not nil")
	}
}
