package experiment

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/session"
	"vidperf/internal/workload"
)

// oldZipfScenario replicates, verbatim, the scenario the pre-spec
// cmd/sweep hardcoded for its zipf factor (baseScenario(11) at the
// default -sessions 2000 plus the per-point ZipfExponent). The parity
// tests below pin examples/specs/zipf-sweep.json to this construction,
// so the spec port cannot silently drift from the sweep it replaced.
func oldZipfScenario(alpha float64) workload.Scenario {
	sc := workload.Scenario{
		Seed:        11,
		NumSessions: 2000,
		NumPrefixes: 400,
		Catalog:     catalog.Config{NumVideos: 1500},
		Parallelism: 0,
	}
	sc.Catalog.ZipfExponent = alpha
	return sc
}

var oldZipfAlphas = []float64{0.6, 0.8, 0.9, 1.0, 1.1}

func loadZipfSpec(t *testing.T) *Spec {
	t.Helper()
	sp, err := LoadFile(filepath.Join("..", "..", "examples", "specs", "zipf-sweep.json"))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestZipfSpecMatchesOldSweep asserts the shipped spec expands to
// exactly the scenarios the hardcoded sweep built — every cell, every
// field.
func TestZipfSpecMatchesOldSweep(t *testing.T) {
	cells, err := loadZipfSpec(t).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(oldZipfAlphas) {
		t.Fatalf("zipf-sweep expands to %d cells, old sweep had %d points", len(cells), len(oldZipfAlphas))
	}
	for i, alpha := range oldZipfAlphas {
		want := oldZipfScenario(alpha)
		if !reflect.DeepEqual(cells[i].Scenario, want) {
			t.Errorf("cell %q scenario = %+v, want old hardcoded %+v", cells[i].Name, cells[i].Scenario, want)
		}
	}
}

// TestZipfSpecFileMatchesPreset asserts the shipped file and the
// built-in preset expand to the same cells — same names (and therefore
// same snapshot file names and per-cell seeds) and same scenarios —
// even where the two sources spell a value differently ("1.0" vs 1.0).
func TestZipfSpecFileMatchesPreset(t *testing.T) {
	fileCells, err := loadZipfSpec(t).Expand()
	if err != nil {
		t.Fatal(err)
	}
	ps, ok := Preset("zipf-sweep")
	if !ok {
		t.Fatal("zipf-sweep preset missing")
	}
	presetCells, err := ps.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fileCells, presetCells) {
		t.Errorf("file cells %+v != preset cells %+v", fileCells, presetCells)
	}
}

// TestZipfSpecRunParity runs one zipf cell through the campaign runner
// (at reduced scale) and byte-compares its snapshot against a direct
// telemetry-mode session.Execute of the old hardcoded scenario — the spec-driven
// pipeline must add labels and nothing else.
func TestZipfSpecRunParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation parity in -short mode")
	}
	sp := loadZipfSpec(t)
	// Same reduction on both sides: parity is about the plumbing, not
	// the campaign scale.
	sp.Scenario.Sessions = 400
	sp.Scenario.Prefixes = 120
	sp.Scenario.Videos = 500
	res, err := RunCampaign(sp, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	for i, alpha := range oldZipfAlphas {
		old := oldZipfScenario(alpha)
		old.NumSessions, old.NumPrefixes, old.Catalog.NumVideos = 400, 120, 500
		wantRes, err := session.Execute(old, session.Options{Telemetry: true, SketchK: sp.EffectiveSketchK()})
		if err != nil {
			t.Fatal(err)
		}
		want := wantRes.Snapshot
		got := res.Cells[i].Snapshot
		if got.Label("cell") != res.Cells[i].Cell.Name || got.Label("spec") != "zipf-sweep" {
			t.Errorf("cell %d labels = %v", i, got.Labels)
		}
		got.Labels = nil
		a, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("cell %q snapshot differs from old hardcoded run (alpha=%g)", res.Cells[i].Cell.Name, alpha)
		}
	}
}

// TestCampaignWorkerCountInvariant runs the same two-cell campaign
// sequentially and with concurrent workers: every cell's snapshot must
// be byte-identical, the campaign-level counterpart of the per-run
// -parallel guarantee the CI determinism gate checks.
func TestCampaignWorkerCountInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation determinism in -short mode")
	}
	src := `{"name":"det","scenario":{"seed":5,"sessions":300,"prefixes":100,"videos":400},
		"axes":[{"name":"abr","values":["hybrid","buffer-based"]}]}`
	run := func(workers int) []string {
		sp := load(t, src)
		res, err := RunCampaign(sp, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(res.Cells))
		for i, c := range res.Cells {
			b, err := json.Marshal(c.Snapshot)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(b)
		}
		return out
	}
	seq, par := run(1), run(2)
	if !reflect.DeepEqual(seq, par) {
		t.Error("campaign snapshots differ between Workers=1 and Workers=2")
	}
}

// TestCampaignCellErrorNamesCell verifies a bad cell (unknown ABR) fails
// the campaign with the offending cell in the error.
func TestCampaignCellErrorNamesCell(t *testing.T) {
	sp := load(t, `{"name":"bad","scenario":{"sessions":10,"prefixes":10,"videos":10},
		"axes":[{"name":"abr","values":["hybrid","warp-drive"]}]}`)
	_, err := RunCampaign(sp, RunOptions{Workers: 2})
	if err == nil {
		t.Fatal("campaign with unknown ABR succeeded")
	}
	if want := "abr=warp-drive"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name cell %q", err, want)
	}
}
