package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// SpecSchema is the spec-format version Load accepts. It is independent
// of the telemetry snapshot schema.
const SpecSchema = 1

// SeedMode selects how cells of one campaign derive their scenario seed.
const (
	// SeedShared gives every cell the spec's base seed, so cells differ
	// only in the swept axes — a paired comparison (the mode the old
	// hardcoded cmd/sweep used). This is the default.
	SeedShared = "shared"
	// SeedPerCell derives each cell's seed from (base seed, cell name)
	// via DeriveSeed, decorrelating the cells' random streams while
	// staying reproducible run to run.
	SeedPerCell = "per-cell"
)

// Spec is one declarative campaign: a base scenario, optional sweep axes,
// and the reporting configuration. The zero value of every scenario field
// inherits workload.Scenario's defaults (Scenario.WithDefaults), so a
// spec states only what it changes — exactly like constructing a
// Scenario literal in Go.
type Spec struct {
	// Schema must be SpecSchema (or 0, which Load fills in) so future
	// format changes fail loudly instead of half-parsing.
	Schema int `json:"schema,omitempty"`

	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Preset names a built-in spec (see Presets) this spec starts from;
	// the file's own scenario fields and axes then override it. A file
	// that is just {"preset": "paper-baseline"} replays the preset.
	Preset string `json:"preset,omitempty"`

	// Scenario is the base cell configuration before axes apply.
	Scenario ScenarioSpec `json:"scenario,omitempty"`

	// SketchK is the telemetry quantile-sketch compaction parameter
	// (0 selects telemetry.DefaultSketchK; error bound ≈ 4/k).
	SketchK int `json:"sketch_k,omitempty"`

	// SeedMode is SeedShared (default) or SeedPerCell.
	SeedMode string `json:"seed_mode,omitempty"`

	// Diagnosis, when true, classifies every session's dominant
	// bottleneck (internal/diagnose) during the streamed run, so each
	// cell's snapshot carries per-label cause counters and QoE sketches
	// — the campaign can then report *why* a cell degraded, not just
	// that it did. It is an output toggle, not a scenario knob: the
	// simulated world is identical either way.
	Diagnosis bool `json:"diagnosis,omitempty"`

	// Timeline injects faults and degradations at scheduled virtual
	// times (internal/timeline): PoP outages with failover, backend
	// brownouts, cache-capacity shrinks, network-path degradation, and
	// flash-crowd arrival surges, each a timed phase. It also turns on
	// windowed telemetry: every cell's snapshot carries per-window QoE
	// (and, with diagnosis, cause-label) state for cmd/analyze -windows.
	// The timeline is shared by every cell of the grid; it is not an
	// axis.
	Timeline *TimelineSpec `json:"timeline,omitempty"`

	// Serve configures continuous service mode (`vodsim serve -spec`):
	// window length, sessions per window, ring size, pace, checkpoint
	// interval. Batch drivers ignore it; it is incompatible with a
	// timeline (phase injection is a batch-campaign feature).
	Serve *ServeSpec `json:"serve,omitempty"`

	// Live turns the campaign into a live/linear one (internal/live):
	// sessions join one of the configured channels at the live edge and
	// may only fetch chunks the shared publish clock has released, so a
	// drained buffer waits on the clock (live-edge lag) instead of the
	// delivery path. Live campaigns additionally record join_time_ms and
	// live_edge_lag_ms sketches plus per-channel session counters. It is
	// incompatible with serve mode (live campaigns are batch campaigns);
	// like the timeline it is shared by every cell, not an axis.
	Live *LiveSpec `json:"live,omitempty"`

	// Proxy places a share of sessions behind shared-egress proxy/NAT
	// cohorts (internal/proxypop): tromboned paths with extra RTT and
	// inflated jitter, one egress IP per cohort, and the §3 detector
	// signals recorded per session. Unlike timeline and live it composes
	// with both serve and live modes — proxied enterprises exist in
	// every campaign shape. Shared by every cell, not an axis.
	Proxy *ProxySpec `json:"proxy,omitempty"`

	// Axes are crossed into the cell grid in declaration order (first
	// axis slowest). A spec with no axes is a single cell named "base".
	Axes []Axis `json:"axes,omitempty"`

	// Baseline names the cell the delta report diffs against (default:
	// the first cell in grid order).
	Baseline string `json:"baseline,omitempty"`
}

// Axis is one swept dimension: a scenario field name (the ScenarioSpec
// JSON name, e.g. "abr", "ram_gb", "zipf_s") and the values it takes.
type Axis struct {
	Name   string            `json:"name"`
	Values []json.RawMessage `json:"values"`
}

// ScenarioSpec is the JSON face of workload.Scenario: the sweepable knobs
// with snake_case names and campaign-friendly units (GB, minutes). Zero
// values inherit — first from the preset/base scenario, ultimately from
// Scenario.WithDefaults — so Apply only writes fields the spec set.
// Booleans and the seed are pointers so an explicit false/0 still
// overrides (an axis like "cold": [false, true] must produce two
// distinct cells).
type ScenarioSpec struct {
	Seed     *uint64 `json:"seed,omitempty"`
	Sessions int     `json:"sessions,omitempty"`
	Prefixes int     `json:"prefixes,omitempty"`
	Parallel int     `json:"parallel,omitempty"`

	// Catalog.
	Videos   int     `json:"videos,omitempty"`
	ZipfS    float64 `json:"zipf_s,omitempty"`
	ChunkSec float64 `json:"chunk_sec,omitempty"`
	Bitrates []int   `json:"bitrates,omitempty"`

	// Client behaviour and mix.
	ABR               string  `json:"abr,omitempty"`
	MeanWatchedChunks float64 `json:"mean_watched_chunks,omitempty"`
	StartThresholdSec float64 `json:"start_threshold_sec,omitempty"`
	MaxBufferSec      float64 `json:"max_buffer_sec,omitempty"`
	ArrivalWindowMin  float64 `json:"arrival_window_min,omitempty"`
	NonUSFrac         float64 `json:"non_us_frac,omitempty"`
	EnterpriseFrac    float64 `json:"enterprise_frac,omitempty"`
	SmallBizFrac      float64 `json:"small_biz_frac,omitempty"`
	ProxyFrac         float64 `json:"proxy_frac,omitempty"`
	GPUFrac           float64 `json:"gpu_frac,omitempty"`

	// CDN fleet and server.
	PoPs              int     `json:"pops,omitempty"`
	ServersPerPoP     int     `json:"servers_per_pop,omitempty"`
	RAMGB             float64 `json:"ram_gb,omitempty"`
	DiskGB            float64 `json:"disk_gb,omitempty"`
	CachePolicy       string  `json:"cache_policy,omitempty"`
	Workers           int     `json:"workers,omitempty"`
	OpenRetryMS       float64 `json:"open_retry_ms,omitempty"`
	Prefetch          int     `json:"prefetch,omitempty"`
	PinFirstChunks    *bool   `json:"pin_first_chunks,omitempty"`
	PartitionTopRanks int     `json:"partition_top_ranks,omitempty"`

	Cold *bool `json:"cold,omitempty"`
}

// Apply overlays the spec's set fields onto base and returns the result.
// Zero (or nil) fields leave base untouched.
func (s ScenarioSpec) Apply(base workload.Scenario) workload.Scenario {
	sc := base
	if s.Seed != nil {
		sc.Seed = *s.Seed
	}
	if s.Sessions != 0 {
		sc.NumSessions = s.Sessions
	}
	if s.Prefixes != 0 {
		sc.NumPrefixes = s.Prefixes
	}
	if s.Parallel != 0 {
		sc.Parallelism = s.Parallel
	}
	if s.Videos != 0 {
		sc.Catalog.NumVideos = s.Videos
	}
	if s.ZipfS != 0 {
		sc.Catalog.ZipfExponent = s.ZipfS
	}
	if s.ChunkSec != 0 {
		sc.Catalog.ChunkDuration = s.ChunkSec
	}
	if len(s.Bitrates) != 0 {
		sc.Catalog.Bitrates = append([]int(nil), s.Bitrates...)
	}
	if s.ABR != "" {
		sc.ABRName = s.ABR
	}
	if s.MeanWatchedChunks != 0 {
		sc.MeanWatchedChunks = s.MeanWatchedChunks
	}
	if s.StartThresholdSec != 0 {
		sc.StartThresholdSec = s.StartThresholdSec
	}
	if s.MaxBufferSec != 0 {
		sc.MaxBufferSec = s.MaxBufferSec
	}
	if s.ArrivalWindowMin != 0 {
		sc.ArrivalWindowMS = s.ArrivalWindowMin * 60 * 1000
	}
	if s.NonUSFrac != 0 {
		sc.NonUSFrac = s.NonUSFrac
	}
	if s.EnterpriseFrac != 0 {
		sc.EnterprisePrefixFrac = s.EnterpriseFrac
	}
	if s.SmallBizFrac != 0 {
		sc.SmallBizPrefixFrac = s.SmallBizFrac
	}
	if s.ProxyFrac != 0 {
		sc.ResidentialProxyFrac = s.ProxyFrac
	}
	if s.GPUFrac != 0 {
		sc.GPUFrac = s.GPUFrac
	}
	if s.PoPs != 0 {
		sc.Fleet.NumPoPs = s.PoPs
	}
	if s.ServersPerPoP != 0 {
		sc.Fleet.ServersPerPoP = s.ServersPerPoP
	}
	if s.RAMGB != 0 {
		sc.Fleet.Server.RAMBytes = int64(s.RAMGB * float64(1<<30))
	}
	if s.DiskGB != 0 {
		sc.Fleet.Server.DiskBytes = int64(s.DiskGB * float64(1<<30))
	}
	if s.CachePolicy != "" {
		sc.Fleet.Server.Policy = s.CachePolicy
	}
	if s.Workers != 0 {
		sc.Fleet.Server.Workers = s.Workers
	}
	if s.OpenRetryMS != 0 {
		sc.Fleet.Server.OpenRetryMS = s.OpenRetryMS
	}
	if s.Prefetch != 0 {
		sc.Fleet.Server.Prefetch = s.Prefetch
	}
	if s.PinFirstChunks != nil {
		sc.Fleet.Server.PinFirstChunks = *s.PinFirstChunks
	}
	if s.PartitionTopRanks != 0 {
		sc.Fleet.PartitionTopRanks = s.PartitionTopRanks
	}
	if s.Cold != nil {
		sc.ColdStart = *s.Cold
	}
	return sc
}

// merge overlays o's set fields onto s (o wins), field by field, so a
// spec file refines its preset the same way Apply refines a scenario.
func (s ScenarioSpec) merge(o ScenarioSpec) ScenarioSpec {
	var raw map[string]json.RawMessage
	b, err := json.Marshal(o)
	if err == nil && json.Unmarshal(b, &raw) == nil {
		// Re-decode o's set fields over a copy of s: omitempty drops o's
		// unset fields, so only explicit values overwrite.
		out := s
		if json.Unmarshal(b, &out) == nil {
			return out
		}
	}
	return o
}

// decodeStrict decodes one JSON value rejecting unknown fields and
// trailing garbage.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return fmt.Errorf("trailing data after spec object")
	}
	return nil
}

// Load parses and validates a spec, resolving its preset (if any) and
// rejecting unknown fields — a typo like "session" instead of "sessions"
// fails here, not as a silently-default campaign.
func Load(r io.Reader) (*Spec, error) {
	var s Spec
	if err := decodeStrict(r, &s); err != nil {
		return nil, fmt.Errorf("experiment: parse spec: %w", err)
	}
	if s.Schema != 0 && s.Schema != SpecSchema {
		return nil, fmt.Errorf("experiment: spec schema %d, want %d", s.Schema, SpecSchema)
	}
	s.Schema = SpecSchema
	if s.Preset != "" {
		base, ok := Preset(s.Preset)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown preset %q (have %v)", s.Preset, Presets())
		}
		merged := base
		merged.Preset = s.Preset
		if s.Name != "" {
			merged.Name = s.Name
		}
		if s.Description != "" {
			merged.Description = s.Description
		}
		if s.SketchK != 0 {
			merged.SketchK = s.SketchK
		}
		if s.SeedMode != "" {
			merged.SeedMode = s.SeedMode
		}
		if s.Diagnosis {
			merged.Diagnosis = true
		}
		if s.Timeline != nil {
			merged.Timeline = s.Timeline
		}
		if s.Serve != nil {
			merged.Serve = s.Serve
		}
		if s.Live != nil {
			merged.Live = s.Live
		}
		if s.Proxy != nil {
			merged.Proxy = s.Proxy
		}
		if len(s.Axes) != 0 {
			merged.Axes = s.Axes
		}
		if s.Baseline != "" {
			merged.Baseline = s.Baseline
		}
		merged.Scenario = base.Scenario.merge(s.Scenario)
		s = merged
		// The preset literal carries schema 0; the loaded spec must not.
		s.Schema = SpecSchema
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile is Load on a file path.
func LoadFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks everything Expand relies on: a name, a legal seed mode
// and sketch parameter, well-formed axes (known scenario fields, values
// that decode into them, no duplicate axis), and a baseline that names a
// cell of the grid.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("experiment: spec has no name")
	}
	switch s.SeedMode {
	case "", SeedShared, SeedPerCell:
	default:
		return fmt.Errorf("experiment: spec %s: seed_mode %q, want %q or %q",
			s.Name, s.SeedMode, SeedShared, SeedPerCell)
	}
	if s.SketchK != 0 && s.SketchK < 8 {
		return fmt.Errorf("experiment: spec %s: sketch_k must be 0 or >= 8 (got %d)",
			s.Name, s.SketchK)
	}
	if s.Serve != nil {
		if err := s.Serve.validate(s.Name); err != nil {
			return err
		}
		if s.Timeline != nil {
			return fmt.Errorf("experiment: spec %s: serve and timeline are mutually exclusive (phase injection is a batch-campaign feature)", s.Name)
		}
		if s.Live != nil {
			return fmt.Errorf("experiment: spec %s: serve and live are mutually exclusive (live channels are a batch-campaign feature)", s.Name)
		}
	}
	seen := map[string]bool{}
	for _, ax := range s.Axes {
		if ax.Name == "" {
			return fmt.Errorf("experiment: spec %s: axis with no name", s.Name)
		}
		if seen[ax.Name] {
			return fmt.Errorf("experiment: spec %s: duplicate axis %q", s.Name, ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("experiment: spec %s: axis %q has no values", s.Name, ax.Name)
		}
		for _, v := range ax.Values {
			if _, err := axisOverlay(ax.Name, v); err != nil {
				return fmt.Errorf("experiment: spec %s: %w", s.Name, err)
			}
		}
	}
	cells, err := s.Expand()
	if err != nil {
		return err
	}
	// The timeline's intrinsic invariants were checked by Expand (via
	// Build); PoP references are checked per cell because an axis may
	// sweep the fleet size.
	for _, c := range cells {
		if err := c.Scenario.Timeline.ValidatePoPs(c.Scenario.Fleet.WithDefaults().NumPoPs); err != nil {
			return fmt.Errorf("experiment: spec %s: cell %s: %w", s.Name, c.Name, err)
		}
	}
	if s.Baseline != "" {
		if s.BaselineIndex(cells) < 0 {
			names := make([]string, len(cells))
			for i, c := range cells {
				names[i] = c.Name
			}
			return fmt.Errorf("experiment: spec %s: baseline %q names no cell (cells: %v)",
				s.Name, s.Baseline, names)
		}
	}
	return nil
}

// BaselineIndex returns the index of the spec's baseline cell in cells
// (the first cell when unspecified), or -1 if the named baseline is
// absent.
func (s *Spec) BaselineIndex(cells []Cell) int {
	if s.Baseline == "" {
		if len(cells) == 0 {
			return -1
		}
		return 0
	}
	for i, c := range cells {
		if c.Name == s.Baseline {
			return i
		}
	}
	return -1
}

// axisOverlay builds the one-field ScenarioSpec {"name": value}. Axis
// names are exactly the ScenarioSpec JSON names, so the strict decoder
// is the single source of truth for which axes exist and which value
// types they take.
func axisOverlay(name string, value json.RawMessage) (ScenarioSpec, error) {
	var overlay ScenarioSpec
	obj, err := json.Marshal(map[string]json.RawMessage{name: value})
	if err != nil {
		return overlay, err
	}
	if err := decodeStrict(bytes.NewReader(obj), &overlay); err != nil {
		return overlay, fmt.Errorf("axis %q = %s: %w", name, value, err)
	}
	return overlay, nil
}

// EffectiveSketchK resolves the spec's sketch parameter.
func (s *Spec) EffectiveSketchK() int {
	if s.SketchK <= 0 {
		return telemetry.DefaultSketchK
	}
	return s.SketchK
}
