// Package experiment turns measurement campaigns into data: a JSON
// scenario-spec format that maps onto workload.Scenario, named presets
// for the paper's comparative setups (paper-baseline, cold-start,
// flash-crowd, abr-ablation, cache-policy-matrix, zipf-sweep), a grid
// expander that crosses axes (abr × ram_gb × zipf_s × …) into experiment
// cells with deterministic per-cell seeds, and a campaign runner that
// executes cells through the streaming-telemetry pipeline
// (session.Execute in telemetry mode) with bounded parallelism — one named snapshot
// per cell plus an A/B delta against a declared baseline cell.
//
// The paper's value is comparative (§4–§6 contrast cache levels, org
// types, bitrates, and PoPs); this package is the substrate that lets
// every such contrast be written as a spec file under examples/specs/
// and replayed by cmd/sweep, cmd/vodsim -spec, and cmd/analyze -compare
// instead of living as hardcoded Go.
//
// A spec with "diagnosis": true additionally classifies every session's
// dominant bottleneck (internal/diagnose) during the run: cell snapshots
// then carry per-label cause counters and QoE sketches, and the A/B
// delta report includes per-label cause-share rows — campaigns can
// assert why a cell degraded, not just that it did.
//
// A spec with a "timeline" block (TimelineSpec) injects faults and
// degradations at scheduled virtual times (internal/timeline): PoP
// outages with failover, backend brownouts, cache-capacity shrinks,
// network-path degradation, and flash-crowd arrival surges, each a
// timed phase. The timeline presets (pop-outage, backend-brownout,
// degrade-recover) ship ready to run; cell snapshots gain per-window
// telemetry for cmd/analyze -windows. docs/SPECS.md is the normative
// field reference, pinned by a test against this package's types.
//
// Determinism: a cell's snapshot depends only on its scenario (seed
// included) and sketch parameter — never on how many cells ran
// concurrently or in what order — because each cell is an independent
// session.Execute telemetry run and those are byte-identical at any
// parallelism. Per-cell seeds derive from (base seed, cell name) via a
// splitmix64 finalizer, so regenerating a campaign reproduces it bit for
// bit.
package experiment
