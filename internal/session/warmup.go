package session

import (
	"vidperf/internal/catalog"
	"vidperf/internal/cdn"
)

// WarmFleet pre-populates every built PoP's caches with the catalog
// content that maps to them; see WarmPoP for the warming policy. On a
// partial fleet (cdn.NewPoPFleet) it warms just that PoP, which is how
// each shard of a sharded run warms only the servers it owns.
func WarmFleet(fleet *cdn.Fleet, cat *catalog.Catalog) {
	for _, pop := range fleet.BuiltPoPs() {
		WarmPoP(fleet, cat, pop)
	}
}

// WarmPoP pre-populates one PoP's caches with the catalog content that
// maps to its servers, in ascending popularity order (least popular
// first) so LRU recency ends up matching popularity. This simulates a CDN
// that has been serving the catalog for weeks — the regime the paper
// measures (average miss rate ~2%) — without paying for millions of
// warmup sessions. Warming is deterministic in (catalog, fleet config,
// popID): it draws no randomness, so a PoP warms identically whether it
// is part of a full fleet or a single-PoP shard.
//
// Warming covers the ladder rungs sessions actually converge to (>= 750
// kbps for all titles, every rung for the most popular quartile) plus the
// conservative startup rung for each title's first chunks. Cold rungs on
// cold titles are exactly the requests that miss — the paper's unpopular-
// content findings need that residue.
func WarmPoP(fleet *cdn.Fleet, cat *catalog.Catalog, pop int) {
	if len(cat.Bitrates) == 0 || fleet.PoPServers(pop) == nil {
		return
	}
	startRung := cat.Bitrates[0]
	if len(cat.Bitrates) > 1 {
		startRung = cat.Bitrates[1]
	}
	topQuartile := len(cat.Videos) / 4
	// The deep tail (bottom 5% of ranks, ~2% of requests — matching the
	// paper's ~2% average miss rate) was never requested in the cache's
	// history: those titles are fully cold everywhere, giving the paper's
	// persistent all-miss sessions (§4.1 finding 2) and Fig. 6a's rank
	// gradient.
	coldTail := len(cat.Videos) * 95 / 100

	for rank := coldTail - 1; rank >= 0; rank-- {
		v := &cat.Videos[rank]
		targets := warmTargets(fleet, pop, v.ID, rank)
		for ci := 0; ci < v.NumChunks; ci++ {
			dur := cat.ChunkDurationSec(v, ci)
			for _, br := range cat.Bitrates {
				warmAll := rank < topQuartile
				if br < 750 && !warmAll && !(ci < 3 && br == startRung) {
					continue
				}
				key := catalog.ChunkKey(v.ID, ci, br)
				size := catalog.ChunkSizeBytes(br, dur)
				for _, srv := range targets {
					srv.Cache().Insert(key, size)
				}
			}
		}
	}
}

// warmTargets returns the server(s) a video's chunks live on: one under
// cache-focused mapping, all of the PoP's servers when the rank is
// load-partitioned.
func warmTargets(fleet *cdn.Fleet, pop, videoID, rank int) []*cdn.Server {
	cfg := fleet.Config()
	if cfg.PartitionTopRanks > 0 && rank < cfg.PartitionTopRanks {
		return fleet.PoPServers(pop)
	}
	return []*cdn.Server{fleet.ServerFor(pop, videoID, rank, 0)}
}
