package session

import (
	"math"

	"vidperf/internal/cache"
	"vidperf/internal/catalog"
	"vidperf/internal/cdn"
)

// WarmFleet pre-populates every built PoP's caches with the catalog
// content that maps to them; see WarmPoP for the warming policy. On a
// partial fleet (cdn.NewPoPFleet, cdn.NewSlotFleet) it warms just the
// servers that exist, which is how each shard of a sharded run warms only
// the server it owns.
func WarmFleet(fleet *cdn.Fleet, cat *catalog.Catalog) {
	for _, pop := range fleet.BuiltPoPs() {
		WarmPoP(fleet, cat, pop)
	}
}

// WarmPoP pre-populates one PoP's caches with the catalog content that
// maps to its built servers, in ascending popularity order (least popular
// first) so LRU recency ends up matching popularity. This simulates a CDN
// that has been serving the catalog for weeks — the regime the paper
// measures (average miss rate ~2%) — without paying for millions of
// warmup sessions. Warming is deterministic in (catalog, fleet config,
// popID): it draws no randomness, so a server warms identically whether
// it is part of a full fleet, a single-PoP shard, or a single-slot shard.
//
// Warming covers the ladder rungs sessions actually converge to (>= 750
// kbps for all titles, every rung for the most popular quartile) plus the
// conservative startup rung for each title's first chunks. Cold rungs on
// cold titles are exactly the requests that miss — the paper's unpopular-
// content findings need that residue.
//
// For LRU levels (the default policy) warming exploits the insert
// sequence's structure instead of replaying it: the keys are unique and
// never re-accessed, so the final cache state is exactly the maximal
// suffix of the eligible inserts that fits the capacity, in insertion
// order. A first reverse pass sizes that suffix per (server, level); a
// second forward pass inserts only the survivors — no evictions, no
// arena churn, and the arena and index are pre-sized to their final
// cardinality. Non-LRU levels fall back to inserting everything, since
// their eviction order is not a suffix rule.
func WarmPoP(fleet *cdn.Fleet, cat *catalog.Catalog, pop int) {
	servers := fleet.PoPServers(pop)
	if len(cat.Bitrates) == 0 || servers == nil {
		return
	}
	p := newWarmPlan(servers)
	cfg := fleet.Config()
	p.walk(cat, cfg, true)  // size the surviving suffix per (server, level)
	p.reserve()             // pre-size arenas and indexes to final cardinality
	p.walk(cat, cfg, false) // insert the survivors in original recency order
}

// warmPlan carries the per-slot, per-level suffix bookkeeping between the
// two warming passes. All slices are indexed by server slot; slots whose
// server is nil (owned by other shards) are never visited.
type warmPlan struct {
	servers []*cdn.Server

	// Per-slot LRU handles (nil when the level runs a non-LRU policy and
	// takes the insert-everything fallback).
	ram, disk []*cache.LRU

	// Reverse-pass state: remaining byte budget, survivor count, and the
	// reverse visit index of the first eligible insert that did not fit
	// (everything before it in insert order is evicted by the end, so the
	// forward pass skips it). stop stays MaxInt when everything fits.
	remRAM, remDisk   []int64
	nRAM, nDisk       []int
	stopRAM, stopDisk []int
	doneRAM, doneDisk []bool

	cnt []int // reverse-pass visits per slot; the forward pass counts down
	fwd []int // forward-pass visits per slot
}

func newWarmPlan(servers []*cdn.Server) *warmPlan {
	n := len(servers)
	p := &warmPlan{
		servers: servers,
		ram:     make([]*cache.LRU, n), disk: make([]*cache.LRU, n),
		remRAM: make([]int64, n), remDisk: make([]int64, n),
		nRAM: make([]int, n), nDisk: make([]int, n),
		stopRAM: make([]int, n), stopDisk: make([]int, n),
		doneRAM: make([]bool, n), doneDisk: make([]bool, n),
		cnt: make([]int, n), fwd: make([]int, n),
	}
	for slot, srv := range servers {
		if srv == nil {
			continue
		}
		ml := srv.Cache()
		if lru, ok := ml.RAM.(*cache.LRU); ok {
			p.ram[slot] = lru
			p.remRAM[slot] = lru.Capacity()
		}
		if lru, ok := ml.Disk.(*cache.LRU); ok {
			p.disk[slot] = lru
			p.remDisk[slot] = lru.Capacity()
		}
		p.stopRAM[slot] = math.MaxInt
		p.stopDisk[slot] = math.MaxInt
	}
	return p
}

// reserve pre-sizes every LRU level for its survivor count, plus
// headroom for the run itself: backend fills keep inserting after warmup
// (RAM churns at capacity, an under-filled disk grows), and reserving
// exactly the survivor count would make the first such insert re-double
// the arena it just sized.
func (p *warmPlan) reserve() {
	headroom := func(n int) int { return n + n/16 + 64 }
	for slot := range p.servers {
		if p.ram[slot] != nil {
			p.ram[slot].Reserve(headroom(p.nRAM[slot]))
		}
		if p.disk[slot] != nil {
			p.disk[slot].Reserve(headroom(p.nDisk[slot]))
		}
	}
}

// visit processes one (slot, key, size) warm insert. In the reverse pass
// it plays the greedy maximal-suffix admission per LRU level; in the
// forward pass it performs the surviving inserts (and, for non-LRU
// levels, every insert) in the original order, so recency matches what a
// full replay would leave behind.
func (p *warmPlan) visit(reverse bool, slot int, key uint64, size int64) {
	if reverse {
		i := p.cnt[slot]
		p.cnt[slot]++
		if lru := p.ram[slot]; lru != nil && size > 0 && size <= lru.Capacity() {
			if !p.doneRAM[slot] {
				if size <= p.remRAM[slot] {
					p.remRAM[slot] -= size
					p.nRAM[slot]++
				} else {
					p.doneRAM[slot] = true
					p.stopRAM[slot] = i
				}
			}
		}
		if lru := p.disk[slot]; lru != nil && size > 0 && size <= lru.Capacity() {
			if !p.doneDisk[slot] {
				if size <= p.remDisk[slot] {
					p.remDisk[slot] -= size
					p.nDisk[slot]++
				} else {
					p.doneDisk[slot] = true
					p.stopDisk[slot] = i
				}
			}
		}
		return
	}
	f := p.fwd[slot]
	p.fwd[slot]++
	rev := p.cnt[slot] - 1 - f
	ml := p.servers[slot].Cache()
	// Mirror MultiLevel.Insert's disk-then-RAM order.
	if lru := p.disk[slot]; lru != nil {
		if rev < p.stopDisk[slot] {
			lru.Put(key, size)
		}
	} else {
		ml.Disk.Put(key, size)
	}
	if lru := p.ram[slot]; lru != nil {
		if rev < p.stopRAM[slot] {
			lru.Put(key, size)
		}
	} else {
		ml.RAM.Put(key, size)
	}
}

// walk enumerates the warm insert sequence — forward in the order WarmPoP
// documents, or exactly reversed — and feeds each (slot, key, size) to
// visit. Both passes must enumerate the identical per-slot sequences for
// the suffix arithmetic to line up, so all policy filters live here.
// Videos pinned to a slot whose server is not built are skipped at the
// rank level, which is what keeps a single-slot shard's warmup cost
// proportional to its own share of the catalog.
func (p *warmPlan) walk(cat *catalog.Catalog, cfg cdn.FleetConfig, reverse bool) {
	startRung := cat.Bitrates[0]
	if len(cat.Bitrates) > 1 {
		startRung = cat.Bitrates[1]
	}
	topQuartile := len(cat.Videos) / 4
	// The deep tail (bottom 5% of ranks, ~2% of requests — matching the
	// paper's ~2% average miss rate) was never requested in the cache's
	// history: those titles are fully cold everywhere, giving the paper's
	// persistent all-miss sessions (§4.1 finding 2) and Fig. 6a's rank
	// gradient.
	coldTail := len(cat.Videos) * 95 / 100

	for i := 0; i < coldTail; i++ {
		rank := coldTail - 1 - i
		if reverse {
			rank = i
		}
		v := &cat.Videos[rank]
		partitioned := cfg.PartitionTopRanks > 0 && rank < cfg.PartitionTopRanks
		single := -1
		if !partitioned {
			single = cdn.SlotFor(cfg, v.ID, rank, 0)
			if p.servers[single] == nil {
				continue
			}
		}
		warmAll := rank < topQuartile
		for c := 0; c < v.NumChunks; c++ {
			ci := c
			if reverse {
				ci = v.NumChunks - 1 - c
			}
			dur := cat.ChunkDurationSec(v, ci)
			for b := range cat.Bitrates {
				bi := b
				if reverse {
					bi = len(cat.Bitrates) - 1 - b
				}
				br := cat.Bitrates[bi]
				if br < 750 && !warmAll && !(ci < 3 && br == startRung) {
					continue
				}
				key := catalog.ChunkKey(v.ID, ci, br)
				size := catalog.ChunkSizeBytes(br, dur)
				if partitioned {
					for slot, srv := range p.servers {
						if srv != nil {
							p.visit(reverse, slot, key, size)
						}
					}
				} else {
					p.visit(reverse, single, key, size)
				}
			}
		}
	}
}
