// Package session is the end-to-end runner: it executes a workload
// scenario on the discrete-event engine, wiring each session's ABR,
// TCP connection, download stack, player, and rendering path to the shared
// CDN fleet, and emits the joined per-chunk/per-session instrumentation
// records (internal/core) that every analysis consumes.
//
// One session is one TCP connection issuing a linear sequence of chunk
// requests (the paper's session model); the engine interleaves thousands
// of sessions so the servers' caches and worker pools see a realistic
// request mix.
//
// Execution is sharded at server granularity. A session's chunks all land
// on one server — the slot is a pure function of (video, session), see
// cdn.SlotFor — and servers within a PoP share no mutable state, so the
// campaign splits into one closed event system per (PoP, server slot)
// pair: the runner plans the partition, executes each shard on its own
// sim.Engine — up to Scenario.Parallelism engines concurrently — and
// merges the per-shard outputs in the canonical ascending (PoP, slot)
// order. Because every random stream derives from (seed, PoP, slot) or
// (seed, session ID) alone, the merged trace is byte-identical at any
// parallelism level. See ARCHITECTURE.md, "Performance model".
package session

import (
	"fmt"

	"vidperf/internal/abr"
	"vidperf/internal/cdn"
	"vidperf/internal/core"
	"vidperf/internal/sim"
	"vidperf/internal/timeline"
	"vidperf/internal/workload"
)

// NewABR builds the adaptation algorithm by name. It returns an error for
// unknown names so CLIs can report flag typos.
func NewABR(name string) (abr.Algorithm, error) {
	switch name {
	case "hybrid", "":
		return abr.Hybrid{}, nil
	case "rate-smoothed":
		return abr.RateBased{}, nil
	case "rate-instant":
		return abr.RateBased{UseInstantaneous: true}, nil
	case "rate-instant-screened":
		return abr.RateBased{UseInstantaneous: true, ExcludeOutliers: true}, nil
	case "rate-smoothed-screened":
		return abr.RateBased{ExcludeOutliers: true}, nil
	case "buffer-based":
		return abr.BufferBased{}, nil
	case "server-signal":
		return abr.ServerSignal{}, nil
	case "fixed-low":
		return abr.Fixed{Kbps: 235}, nil
	case "fixed-high":
		return abr.Fixed{Kbps: 3000}, nil
	}
	return nil, fmt.Errorf("session: unknown ABR algorithm %q", name)
}

// SinkFactory builds the core.RecordSink for one shard. The runner calls
// it once per non-empty shard — several times per PoP, since shards are
// per server slot — during the sequential plan phase in ascending
// (PoP, slot) order, so factories need no locking of their own and may
// rely on call order as the canonical merge order. The returned sink
// receives the shard's finished sessions from that shard's goroutine
// only.
type SinkFactory func(popID int) core.RecordSink

// runOnPopulationWithSinks is the execution core every Execute mode
// shares: it runs an already-built population into per-shard sinks in
// three phases — plan (partition sessions by server), execute (one
// engine per shard, Scenario.Parallelism shards at a time), merge
// (canonical order). When prog is non-nil,
// every shard sink is wrapped to tick its counters and shard completion
// is published as shards drain. The wrapping changes no record content
// or ordering, so the byte-identity guarantees are untouched.
func runOnPopulationWithSinks(pop *workload.Population, factory SinkFactory, prog *Progress) error {
	shards, err := planShards(pop, countingFactory(factory, prog))
	if err != nil {
		return err
	}
	if prog != nil {
		prog.ShardsTotal.Store(int64(len(shards)))
	}
	executeShards(pop.Scenario.Parallelism, shards, prog)
	return nil
}

// slotShard is one server's slice of the campaign: the sessions it
// serves, its private single-server fleet partition, engine, and record
// sink. Shards share only the immutable population.
type slotShard struct {
	pop   *workload.Population
	refs  []workload.SessionRef
	popID int
	slot  int
	algo  abr.Algorithm
	shard sim.Shard
	sink  core.RecordSink

	// recPool recycles finished sessions' ChunkRecord buffers (sinks copy
	// what they keep, per the core.RecordSink contract) so steady-state
	// execution allocates no per-chunk storage. srtt is the finish-time
	// scratch for the per-session SRTT series.
	recPool [][]core.ChunkRecord
	srtt    []float64
}

// getRecords hands out a recycled chunk-record buffer, or a fresh one
// sized for the session's planned watch length.
func (sh *slotShard) getRecords(capHint int) []core.ChunkRecord {
	if n := len(sh.recPool); n > 0 {
		b := sh.recPool[n-1]
		sh.recPool = sh.recPool[:n-1]
		return b
	}
	return make([]core.ChunkRecord, 0, capHint)
}

// putRecords returns a finished session's buffer to the pool. The caller
// must be done with every record in it.
func (sh *slotShard) putRecords(b []core.ChunkRecord) {
	sh.recPool = append(sh.recPool, b[:0])
}

// planShards partitions the campaign by (PoP, server slot) and validates
// the scenario. It is the phase where configuration errors surface,
// before any of the expensive per-shard work starts. Sink factories run
// here, sequentially in ascending (PoP, slot) order.
func planShards(pop *workload.Population, factory SinkFactory) ([]*slotShard, error) {
	sc := pop.Scenario
	cfg := sc.Fleet.WithDefaults()
	if err := sc.Timeline.Validate(); err != nil {
		return nil, err
	}
	if err := sc.Timeline.ValidatePoPs(cfg.NumPoPs); err != nil {
		return nil, err
	}
	if err := sc.Live.Validate(); err != nil {
		return nil, err
	}
	if err := sc.Proxy.Validate(); err != nil {
		return nil, err
	}
	parts, plannedChunks := pop.PartitionBySlot(cfg)
	shards := make([]*slotShard, 0, len(parts))
	for bucket, refs := range parts {
		if len(refs) == 0 {
			continue
		}
		algo, err := NewABR(sc.ABRName)
		if err != nil {
			return nil, err
		}
		popID, slot := bucket/cfg.ServersPerPoP, bucket%cfg.ServersPerPoP
		sink := factory(popID)
		if r, ok := sink.(core.RecordReserver); ok {
			r.ReserveRecords(len(refs), plannedChunks[bucket])
		}
		shards = append(shards, &slotShard{
			pop:   pop,
			refs:  refs,
			popID: popID,
			slot:  slot,
			algo:  algo,
			shard: sim.Shard{ID: bucket, Weight: plannedChunks[bucket]},
			sink:  sink,
		})
	}
	return shards, nil
}

// executeShards runs every shard's event loop, at most parallelism at a
// time. Shard weights (session counts) let the scheduler start the
// heaviest shards first so the run's tail is not one hot server.
func executeShards(parallelism int, shards []*slotShard, prog *Progress) {
	byID := make(map[int]*slotShard, len(shards))
	simShards := make([]*sim.Shard, 0, len(shards))
	for _, sh := range shards {
		byID[sh.shard.ID] = sh
		simShards = append(simShards, &sh.shard)
	}
	sim.RunShards(parallelism, simShards, func(s *sim.Shard) {
		byID[s.ID].run()
		if prog != nil {
			prog.ShardsDone.Add(1)
		}
	})
}

// run builds the shard's single-server fleet partition, warms it,
// schedules the shard's session arrivals, and drains the event loop.
// Everything it touches is shard-private except the read-only population.
// Session state (TCP connection, player, ABR estimator) is created at
// arrival time and becomes garbage once the session's records are handed
// to the sink, so a streaming sink keeps the shard's live heap
// proportional to concurrently playing sessions rather than to the whole
// campaign.
func (sh *slotShard) run() {
	sc := sh.pop.Scenario
	fleet := cdn.NewSlotFleet(sc.Fleet, sc.Seed, sh.popID, sh.slot)
	if !sc.ColdStart {
		WarmPoP(fleet, sh.pop.Catalog, sh.popID)
	}
	eng := &sh.shard.Engine
	scheduleTimelineEvents(eng, fleet, sh.popID, sc.Timeline, sc.ArrivalOffsetMS)
	for _, ref := range sh.refs {
		id := ref.ID
		eng.At(ref.ArrivalMS, func(float64) {
			plan := sh.pop.PlanSession(id)
			newSessionState(sh, plan, fleet, eng).requestNextChunk()
		})
	}
	eng.Run()
}

// scheduleTimelineEvents installs the timeline's per-server mutations as
// engine events inside one shard: cache-capacity shrink at each phase
// start and restore at its end. They are scheduled before any arrival,
// so at equal timestamps the capacity change is applied before sessions
// arriving at that exact instant — the same deterministic order on every
// run and at every parallelism, since each shard mutates only its own
// servers inside its own event system. A partial fleet's server slice
// has nil entries for slots other shards own; they are skipped. Phase
// times are window-relative; offsetMS (Scenario.ArrivalOffsetMS) shifts
// them onto the same virtual clock as the offset arrivals.
func scheduleTimelineEvents(eng *sim.Engine, fleet *cdn.Fleet, popID int, tl timeline.Timeline, offsetMS float64) {
	for _, ph := range tl.Phases {
		f := ph.Effects.CacheCapacityFactor
		if f <= 0 || f == 1 {
			continue
		}
		servers := fleet.PoPServers(popID)
		resize := func(factor float64) func(float64) {
			return func(float64) {
				for _, srv := range servers {
					if srv == nil {
						continue
					}
					cfg := srv.Config()
					srv.Cache().Resize(scaleBytes(cfg.RAMBytes, factor), scaleBytes(cfg.DiskBytes, factor))
				}
			}
		}
		eng.At(offsetMS+ph.StartMS, resize(f))
		eng.At(offsetMS+ph.EndMS, resize(1))
	}
}

// scaleBytes scales a byte capacity, clamping at one byte.
func scaleBytes(b int64, factor float64) int64 {
	scaled := int64(float64(b) * factor)
	if scaled < 1 {
		scaled = 1
	}
	return scaled
}
