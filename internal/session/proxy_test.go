package session

import (
	"bytes"
	"testing"

	"vidperf/internal/core"
	"vidperf/internal/proxypop"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// proxiedScenario mirrors the proxied-enterprise preset at test scale:
// 23% of sessions behind shared-egress cohorts with contended uplinks.
func proxiedScenario(seed uint64, par int) workload.Scenario {
	sc := smallScenario(seed)
	sc.Parallelism = par
	sc.Proxy = proxypop.Config{Share: 0.23, Cohorts: 3, EgressKbps: 25000}
	return sc
}

// TestProxyByteIdenticalAcrossParallelism extends the determinism
// invariant to proxied populations: with cohort assignment, tromboned
// paths, and egress contention in play, both the JSONL trace and the
// telemetry snapshot must still serialize to exactly the sequential
// run's bytes at any parallelism.
func TestProxyByteIdenticalAcrossParallelism(t *testing.T) {
	trace := func(par int) []byte {
		ds := mustRun(t, proxiedScenario(61, par))
		var buf bytes.Buffer
		if err := core.WriteJSONL(&buf, ds); err != nil {
			t.Fatalf("WriteJSONL(par=%d): %v", par, err)
		}
		return buf.Bytes()
	}
	seqTrace := trace(1)
	for _, par := range []int{2, 8} {
		if got := trace(par); !bytes.Equal(seqTrace, got) {
			t.Fatalf("Parallelism=%d trace differs from sequential (%d vs %d bytes)",
				par, len(got), len(seqTrace))
		}
	}

	snap := func(par int) []byte {
		res, err := Execute(proxiedScenario(61, par), Options{Telemetry: true, SketchK: 64})
		if err != nil {
			t.Fatalf("Execute(par=%d): %v", par, err)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteSnapshot(&buf, res.Snapshot); err != nil {
			t.Fatalf("WriteSnapshot(par=%d): %v", par, err)
		}
		return buf.Bytes()
	}
	seqSnap := snap(1)
	for _, par := range []int{2, 8} {
		if got := snap(par); !bytes.Equal(seqSnap, got) {
			t.Fatalf("Parallelism=%d snapshot differs from sequential (%d vs %d bytes)",
				par, len(got), len(seqSnap))
		}
	}
}

// TestProxySessionRecordInvariants checks the per-session proxy fields:
// proxied sessions carry a cohort in [1, Cohorts] and that cohort's
// egress identity as their HTTP client IP; direct sessions carry no
// proxy state; the realized proxied share tracks the configured one;
// and the rule-(i) evidence (HTTP-vs-beacon IP disagreement) appears
// only on proxied sessions in a proxy-block world.
func TestProxySessionRecordInvariants(t *testing.T) {
	sc := proxiedScenario(19, 1)
	ds := mustRun(t, sc)
	cfg := sc.Proxy.WithDefaults()
	cohorts := cfg.BuildCohorts(sc.Seed, 0)
	proxied := 0
	for i := range ds.Sessions {
		rec := &ds.Sessions[i]
		if !rec.Proxied {
			if rec.ProxyCohort != 0 {
				t.Fatalf("direct session %d carries cohort %d", rec.SessionID, rec.ProxyCohort)
			}
			if rec.HTTPClientIP != rec.BeaconIP {
				t.Fatalf("direct session %d has mismatched IPs %q vs %q in a proxy-block world",
					rec.SessionID, rec.HTTPClientIP, rec.BeaconIP)
			}
			continue
		}
		proxied++
		if rec.ProxyCohort < 1 || rec.ProxyCohort > cfg.Cohorts {
			t.Fatalf("session %d cohort %d outside [1, %d]", rec.SessionID, rec.ProxyCohort, cfg.Cohorts)
		}
		if want := cohorts[rec.ProxyCohort-1].EgressIP; rec.HTTPClientIP != want {
			t.Fatalf("session %d egress %q, want cohort %d's %q",
				rec.SessionID, rec.HTTPClientIP, rec.ProxyCohort, want)
		}
	}
	if proxied == 0 {
		t.Fatal("proxied campaign produced no proxied sessions")
	}
	share := float64(proxied) / float64(len(ds.Sessions))
	if share < cfg.Share-0.05 || share > cfg.Share+0.05 {
		t.Errorf("realized proxied share %.3f far from configured %.3f", share, cfg.Share)
	}
}

// TestProxyDisabledByteIdenticalToPlain pins the "zero value changes
// nothing" invariant: a scenario with a disabled proxy block must
// produce byte-for-byte the trace of one that never mentions proxies.
func TestProxyDisabledByteIdenticalToPlain(t *testing.T) {
	plain := mustRun(t, smallScenario(23))
	withZero := smallScenario(23)
	withZero.Proxy = proxypop.Config{}
	zero := mustRun(t, withZero)

	var a, b bytes.Buffer
	if err := core.WriteJSONL(&a, plain); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteJSONL(&b, zero); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("zero-valued proxy config changed the trace bytes")
	}
}

// TestProxyComposesWithLive: the proxy block must thread through live
// campaigns too — proxied live sessions exist, carry both live and
// proxy state, and the combined run stays byte-identical across
// parallelism.
func TestProxyComposesWithLive(t *testing.T) {
	mk := func(par int) workload.Scenario {
		sc := steadyLiveScenario(29, par)
		sc.Proxy = proxypop.Config{Share: 0.3, Cohorts: 2}
		return sc
	}
	ds := mustRun(t, mk(1))
	both := 0
	for i := range ds.Sessions {
		rec := &ds.Sessions[i]
		if rec.Live && rec.Proxied {
			both++
		}
	}
	if both == 0 {
		t.Fatal("no session is both live and proxied")
	}
	var a, b bytes.Buffer
	if err := core.WriteJSONL(&a, ds); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteJSONL(&b, mustRun(t, mk(8))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("proxied live campaign not byte-identical across parallelism")
	}
}
