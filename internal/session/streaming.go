package session

import (
	"vidperf/internal/diagnose"
	"vidperf/internal/telemetry"
	"vidperf/internal/timeline"
	"vidperf/internal/workload"
)

// TelemetryOptions configures one streamed run.
type TelemetryOptions struct {
	// SketchK is the quantile-sketch compaction parameter (<= 0 selects
	// telemetry.DefaultSketchK).
	SketchK int
	// Diagnose, when non-nil, classifies every finished session with
	// internal/diagnose and adds the per-label cause counters and QoE
	// sketches to the snapshot. Use &diagnose.Config{} for the default
	// thresholds.
	Diagnose *diagnose.Config
	// Windows, when non-empty, overrides the report windows the campaign
	// accumulators charge sessions to. Window bounds are on the virtual
	// clock (i.e. they must account for Scenario.ArrivalOffsetMS, since
	// window attribution keys on each session's absolute arrival). When
	// nil, windows derive from the scenario's timeline as before.
	Windows []timeline.Window
	// Progress, when non-nil, receives live atomic counters (sessions,
	// chunks, shard queue) while the run is in flight. It is reset at the
	// start of the run.
	Progress *Progress
}

// RunTelemetry executes the scenario in streaming mode and returns the
// merged campaign snapshot: one telemetry.Campaign supplies the per-PoP
// accumulator sinks and the shards are merged in canonical PoP order, so
// the snapshot is byte-identical at every Scenario.Parallelism setting.
// sketchK is the quantile-sketch compaction parameter (<= 0 selects
// telemetry.DefaultSketchK). This is the single-cell primitive both
// cmd/vodsim -stream/-spec and the experiment campaign runner build on.
func RunTelemetry(sc workload.Scenario, sketchK int) (*telemetry.Snapshot, error) {
	return RunTelemetryOpts(sc, TelemetryOptions{SketchK: sketchK})
}

// RunTelemetryOpts is RunTelemetry with the full option set (per-session
// diagnosis included). Diagnosis happens inside each shard's accumulator,
// so the byte-identical-at-any-parallelism guarantee carries over to the
// per-label state.
//
// A scenario with a timeline additionally runs in windowed mode: the
// campaign's accumulators charge each session to the timeline window
// containing its arrival, so the snapshot carries the per-window
// counters and QoE sketches cmd/analyze -windows renders. Window
// attribution happens per shard and merges like every other aggregate,
// so it too is byte-identical at any parallelism. Timeline-derived
// windows are shifted by Scenario.ArrivalOffsetMS onto the virtual
// clock; explicit opt.Windows are taken as-is.
func RunTelemetryOpts(sc workload.Scenario, opt TelemetryOptions) (*telemetry.Snapshot, error) {
	eff := sc.WithDefaults()
	windows := opt.Windows
	if windows == nil {
		windows = eff.Timeline.Windows(eff.ArrivalWindowMS)
		if eff.ArrivalOffsetMS != 0 {
			for i := range windows {
				windows[i].StartMS += eff.ArrivalOffsetMS
				windows[i].EndMS += eff.ArrivalOffsetMS
			}
		}
	}
	camp := telemetry.NewCampaignWith(telemetry.Config{
		SketchK:  opt.SketchK,
		Diagnose: opt.Diagnose,
		Windows:  windows,
	})
	if opt.Progress != nil {
		opt.Progress.Reset()
	}
	if _, err := NewABR(sc.ABRName); err != nil {
		return nil, err
	}
	if err := runOnPopulationWithSinks(workload.Build(sc), camp.Sink, opt.Progress); err != nil {
		return nil, err
	}
	return camp.Snapshot(), nil
}
