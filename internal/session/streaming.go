package session

import (
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// RunTelemetry executes the scenario in streaming mode and returns the
// merged campaign snapshot: one telemetry.Campaign supplies the per-PoP
// accumulator sinks and the shards are merged in canonical PoP order, so
// the snapshot is byte-identical at every Scenario.Parallelism setting.
// sketchK is the quantile-sketch compaction parameter (<= 0 selects
// telemetry.DefaultSketchK). This is the single-cell primitive both
// cmd/vodsim -stream/-spec and the experiment campaign runner build on.
func RunTelemetry(sc workload.Scenario, sketchK int) (*telemetry.Snapshot, error) {
	camp := telemetry.NewCampaign(sketchK)
	if err := RunWithSinks(sc, camp.Sink); err != nil {
		return nil, err
	}
	return camp.Snapshot(), nil
}
