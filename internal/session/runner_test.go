package session

import (
	"bytes"
	"math"
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
	"vidperf/internal/workload"
)

// smallScenario keeps unit tests fast while exercising every path.
func smallScenario(seed uint64) workload.Scenario {
	return workload.Scenario{
		Seed:        seed,
		NumSessions: 300,
		NumPrefixes: 150,
		Catalog:     catalog.Config{NumVideos: 800},
	}
}

func mustRun(t *testing.T, sc workload.Scenario) *core.Dataset {
	t.Helper()
	res, err := Execute(sc, Options{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res.Dataset
}

func TestRunProducesConsistentDataset(t *testing.T) {
	ds := mustRun(t, smallScenario(1))
	if len(ds.Sessions) != 300 {
		t.Fatalf("sessions = %d", len(ds.Sessions))
	}
	if len(ds.Chunks) == 0 {
		t.Fatal("no chunks")
	}
	byS := ds.ChunksBySession()
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		idxs := byS[s.SessionID]
		if len(idxs) != s.NumChunks {
			t.Fatalf("session %d: %d chunk records vs NumChunks %d",
				s.SessionID, len(idxs), s.NumChunks)
		}
		if s.NumChunks < 1 {
			t.Fatalf("session %d fetched no chunks", s.SessionID)
		}
		for j, ci := range idxs {
			c := &ds.Chunks[ci]
			if c.ChunkID != j {
				t.Fatalf("session %d chunk order broken at %d", s.SessionID, j)
			}
			if c.DFBms <= 0 || c.DLBms < 0 {
				t.Fatalf("bad delays: %+v", c)
			}
			if c.SizeBytes <= 0 || c.BitrateKbps <= 0 {
				t.Fatalf("bad chunk meta: %+v", c)
			}
			if c.SRTTms <= 0 || c.CWND < 1 || c.MSS == 0 {
				t.Fatalf("missing tcp_info: %+v", c)
			}
			if c.SegsLost > c.SegsSent {
				t.Fatalf("loss accounting: %+v", c)
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	a := mustRun(t, smallScenario(7))
	b := mustRun(t, smallScenario(7))
	if len(a.Chunks) != len(b.Chunks) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a.Chunks), len(b.Chunks))
	}
	for i := range a.Chunks {
		if a.Chunks[i] != b.Chunks[i] {
			t.Fatalf("chunk %d differs between identical runs", i)
		}
	}
}

// TestParallelismByteIdentical is the tentpole guarantee: a sharded run
// at any parallelism serializes to exactly the bytes of the sequential
// run at the same seed.
func TestParallelismByteIdentical(t *testing.T) {
	serialize := func(par int) []byte {
		sc := smallScenario(21)
		sc.Parallelism = par
		ds := mustRun(t, sc)
		var buf bytes.Buffer
		if err := core.WriteJSONL(&buf, ds); err != nil {
			t.Fatalf("WriteJSONL(par=%d): %v", par, err)
		}
		return buf.Bytes()
	}
	seq := serialize(1)
	for _, par := range []int{2, 8} {
		if got := serialize(par); !bytes.Equal(seq, got) {
			t.Fatalf("Parallelism=%d trace differs from sequential (%d vs %d bytes)",
				par, len(got), len(seq))
		}
	}
}

// TestRunShardsCoverEverySession checks the plan phase: the PoP partition
// must neither drop nor duplicate sessions.
func TestRunShardsCoverEverySession(t *testing.T) {
	ds := mustRun(t, smallScenario(23))
	seen := map[uint64]bool{}
	for i := range ds.Sessions {
		id := ds.Sessions[i].SessionID
		if seen[id] {
			t.Fatalf("session %d appears twice", id)
		}
		seen[id] = true
	}
	for id := uint64(1); id <= 300; id++ {
		if !seen[id] {
			t.Fatalf("session %d missing from merged dataset", id)
		}
	}
}

func TestRunUnknownABRReturnsError(t *testing.T) {
	sc := smallScenario(1)
	sc.ABRName = "definitely-not-an-abr"
	if _, err := Execute(sc, Options{}); err == nil {
		t.Fatal("Run accepted an unknown ABR name")
	}
}

func TestEquationOneComposition(t *testing.T) {
	// D_FB must decompose per Eq. 1: rtt0 = DFB − DCDN − DBE − DDS > 0,
	// and the analysis-visible upper bound must cover the truth.
	ds := mustRun(t, smallScenario(3))
	for i := range ds.Chunks {
		c := &ds.Chunks[i]
		rtt0 := c.DFBms - c.DCDNms() - c.DBEms - c.TruthDDSms
		if rtt0 <= 0 {
			t.Fatalf("Eq.1 violated: rtt0=%v for %+v", rtt0, c)
		}
		if c.RTT0UpperBoundMS() < rtt0-1e-9 {
			t.Fatalf("rtt0 upper bound %v below truth %v", c.RTT0UpperBoundMS(), rtt0)
		}
	}
}

func TestQoEMetricsSane(t *testing.T) {
	ds := mustRun(t, smallScenario(5))
	startups := 0
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		if !math.IsNaN(s.StartupMS) {
			startups++
			if s.StartupMS <= 0 {
				t.Fatalf("non-positive startup %v", s.StartupMS)
			}
		}
		if s.RebufferRate < 0 || s.RebufferRate > 1 {
			t.Fatalf("rebuffer rate %v", s.RebufferRate)
		}
		if s.AvgBitrateKbps < 235 || s.AvgBitrateKbps > 3000 {
			t.Fatalf("avg bitrate %v off ladder range", s.AvgBitrateKbps)
		}
		if s.SRTTMinMS <= 0 || s.SRTTMeanMS < s.SRTTMinMS {
			t.Fatalf("srtt summary wrong: %+v", s)
		}
	}
	if startups < 290 {
		t.Errorf("only %d/300 sessions started playback", startups)
	}
}

func TestFirstChunkRetxHigher(t *testing.T) {
	// Fig. 15's shape must survive end-to-end.
	ds := mustRun(t, workload.Scenario{Seed: 11, NumSessions: 1500, NumPrefixes: 300, Catalog: catalog.Config{NumVideos: 1500}})
	var first, later stats.Summary
	for i := range ds.Chunks {
		c := &ds.Chunks[i]
		if c.ChunkID == 0 {
			first.Add(c.LossRate())
		} else if c.ChunkID >= 2 {
			later.Add(c.LossRate())
		}
	}
	if first.Mean() <= later.Mean() {
		t.Errorf("first-chunk retx %.4f not above later %.4f", first.Mean(), later.Mean())
	}
}

func TestCacheMissesCostMore(t *testing.T) {
	ds := mustRun(t, smallScenario(13))
	var hit, miss stats.Summary
	for i := range ds.Chunks {
		c := &ds.Chunks[i]
		if c.CacheHit {
			hit.Add(c.ServerLatencyMS())
		} else {
			miss.Add(c.ServerLatencyMS())
		}
	}
	if miss.N() == 0 || hit.N() == 0 {
		t.Fatal("expected both hits and misses")
	}
	if miss.Mean() < 3*hit.Mean() {
		t.Errorf("miss latency %.1f not ≫ hit %.1f", miss.Mean(), hit.Mean())
	}
}

func TestProxyMixSupportsPreprocessing(t *testing.T) {
	ds := mustRun(t, workload.Scenario{Seed: 17, NumSessions: 2000, NumPrefixes: 400, Catalog: catalog.Config{NumVideos: 1500}})
	res := core.FilterProxies(ds, core.ProxyFilterConfig{})
	// Paper: 77% of sessions survive preprocessing. Accept a band.
	if res.KeptFraction < 0.6 || res.KeptFraction > 0.92 {
		t.Errorf("kept fraction = %.2f, want ~0.77", res.KeptFraction)
	}
	if res.IPMismatch == 0 {
		t.Error("no IP-mismatch proxies generated")
	}
	if len(res.Kept.Chunks) == 0 {
		t.Error("filtering dropped all chunks")
	}
}

func TestNewABRNames(t *testing.T) {
	for _, name := range []string{"", "hybrid", "rate-smoothed", "rate-instant",
		"rate-instant-screened", "rate-smoothed-screened", "buffer-based",
		"server-signal", "fixed-low", "fixed-high"} {
		if _, err := NewABR(name); err != nil {
			t.Errorf("NewABR(%q): %v", name, err)
		}
	}
	if _, err := NewABR("nope"); err == nil {
		t.Error("unknown ABR accepted")
	}
}

func TestScriptedLossPlacement(t *testing.T) {
	base := Script{
		Seed:   1,
		Path:   tcpParams(),
		Chunks: 10, BitrateKbps: 1050,
		ServerLatencyMS: 2,
	}
	early := base
	early.LossProbByChunk = map[int]float64{0: 0.2}
	late := base
	late.LossProbByChunk = map[int]float64{4: 0.2}

	recsE := RunScripted(early)
	recsL := RunScripted(late)
	if len(recsE) != 10 || len(recsL) != 10 {
		t.Fatal("wrong chunk counts")
	}
	if recsE[0].LossRate() == 0 {
		t.Error("early script placed no loss at chunk 0")
	}
	if recsL[4].LossRate() == 0 {
		t.Error("late script placed no loss at chunk 4")
	}
	for i := 1; i < 10; i++ {
		if i != 4 && recsL[i].SegsLost > recsL[i].SegsSent/10 {
			t.Errorf("late script leaked heavy loss to chunk %d", i)
		}
	}
	// The paper's Fig. 13 claim: early loss rebuffers, late loss does not.
	rebufE, rebufL := 0, 0
	for i := range recsE {
		rebufE += recsE[i].BufCount
		rebufL += recsL[i].BufCount
	}
	if rebufE < rebufL {
		t.Errorf("early-loss session rebuffered less (%d) than late (%d)", rebufE, rebufL)
	}
}

func TestScriptedTransient(t *testing.T) {
	s := Script{
		Seed: 2, Path: tcpParams(),
		Chunks: 22, BitrateKbps: 1750, ServerLatencyMS: 2,
		TransientAtChunk: map[int]float64{7: 1500},
	}
	recs := RunScripted(s)
	c7 := recs[7]
	if !c7.TruthTransient || c7.TruthDDSms != 1500 {
		t.Fatalf("transient not injected: %+v", c7)
	}
	// The signature the Eq. 4 detector looks for: DFB spike + TPinst spike.
	var dfbs, tps []float64
	for i, c := range recs {
		if i != 7 {
			dfbs = append(dfbs, c.DFBms)
			tps = append(tps, c.InstantThroughputKbps())
		}
	}
	if c7.DFBms < stats.Mean(dfbs)+2*stats.Std(dfbs) {
		t.Error("transient chunk DFB not an outlier")
	}
	if c7.InstantThroughputKbps() < stats.Mean(tps)+2*stats.Std(tps) {
		t.Error("transient chunk TPinst not an outlier")
	}
}

func tcpParams() tcpmodel.Params {
	return tcpmodel.Params{
		BaseRTTms:      45,
		JitterMS:       1,
		BottleneckKbps: 12000,
		// Generous buffer so scripted runs only lose where scripted.
		BufferBytes: 4 << 20,
	}
}

// TestExecuteSinksMatchesDataset pins the sink seam: streaming the
// campaign into per-shard Dataset sinks and merging must reproduce the
// materialized dataset mode exactly.
func TestExecuteSinksMatchesDataset(t *testing.T) {
	want := mustRun(t, smallScenario(29))

	var col core.Collector
	_, err := Execute(smallScenario(29), Options{Sinks: func(popID int) core.RecordSink {
		ds := &core.Dataset{}
		col.Add(ds)
		return ds
	}})
	if err != nil {
		t.Fatalf("Execute(Sinks): %v", err)
	}
	got := col.Merge()
	if len(got.Sessions) != len(want.Sessions) || len(got.Chunks) != len(want.Chunks) {
		t.Fatalf("sizes differ: %s vs %s", got, want)
	}
	for i := range want.Chunks {
		if got.Chunks[i] != want.Chunks[i] {
			t.Fatalf("chunk %d differs between sink and collect paths", i)
		}
	}
	for i := range want.Sessions {
		a, b := got.Sessions[i], want.Sessions[i]
		// NaN != NaN, so compare startup separately.
		sa, sb := a.StartupMS, b.StartupMS
		a.StartupMS, b.StartupMS = 0, 0
		if a != b || (math.IsNaN(sa) != math.IsNaN(sb)) || (!math.IsNaN(sa) && sa != sb) {
			t.Fatalf("session %d differs between sink and collect paths", i)
		}
	}
}

// TestExecuteRejectsUnknownABR pins the fail-fast validation: the ABR
// name is checked before any world generation, in every mode.
func TestExecuteRejectsUnknownABR(t *testing.T) {
	sc := smallScenario(1)
	sc.ABRName = "definitely-not-an-abr"
	_, err := Execute(sc, Options{Sinks: func(int) core.RecordSink { return &core.Dataset{} }})
	if err == nil {
		t.Fatal("Execute accepted an unknown ABR name")
	}
}

// TestExecuteRejectsContradictoryOptions: option combinations that
// contradict the selected mode fail fast instead of silently ignoring
// knobs.
func TestExecuteRejectsContradictoryOptions(t *testing.T) {
	sinks := func(int) core.RecordSink { return &core.Dataset{} }
	if _, err := Execute(smallScenario(1), Options{Telemetry: true, Sinks: sinks}); err == nil {
		t.Fatal("Execute accepted Telemetry+Sinks")
	}
	if _, err := Execute(smallScenario(1), Options{SketchK: 64}); err == nil {
		t.Fatal("Execute accepted SketchK without Telemetry")
	}
}
