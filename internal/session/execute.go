// execute.go is the package's single public entry point. Every way of
// running a campaign — materializing the joined dataset, streaming into
// bounded-memory telemetry, or feeding caller-owned sinks — goes through
// Execute; the Options struct selects the mode and carries every knob
// that used to be its own Run* variant.
package session

import (
	"fmt"

	"vidperf/internal/core"
	"vidperf/internal/diagnose"
	"vidperf/internal/telemetry"
	"vidperf/internal/timeline"
	"vidperf/internal/workload"
)

// Options configures one Execute call. The zero value runs the scenario
// in dataset mode: every record is materialized and returned as
// Result.Dataset.
type Options struct {
	// Telemetry selects streaming-telemetry mode: finished sessions fold
	// into mergeable sketches, histograms, and counters as each shard
	// produces them, no record is materialized, and Execute returns the
	// merged campaign snapshot as Result.Snapshot. One telemetry.Campaign
	// supplies the per-PoP accumulator sinks and the shards merge in
	// canonical PoP order, so the snapshot is byte-identical at every
	// Scenario.Parallelism setting. This is the single-cell primitive
	// cmd/vodsim -stream/-spec, cmd/sweep, and internal/serve build on.
	Telemetry bool
	// SketchK is the quantile-sketch compaction parameter in telemetry
	// mode (<= 0 selects telemetry.DefaultSketchK; error bound ≈ 4/k).
	SketchK int
	// Diagnose, when non-nil, classifies every finished session with
	// internal/diagnose and adds the per-label cause counters and QoE
	// sketches to the snapshot (telemetry mode only). Use
	// &diagnose.Config{} for the default thresholds. Diagnosis happens
	// inside each shard's accumulator, so the byte-identical-at-any-
	// parallelism guarantee carries over to the per-label state.
	Diagnose *diagnose.Config
	// Windows, when non-empty, overrides the report windows the campaign
	// accumulators charge sessions to (telemetry mode only). Window
	// bounds are on the virtual clock (i.e. they must account for
	// Scenario.ArrivalOffsetMS, since window attribution keys on each
	// session's absolute arrival). When nil, windows derive from the
	// scenario's timeline, shifted by Scenario.ArrivalOffsetMS onto the
	// virtual clock.
	Windows []timeline.Window
	// Sinks, when non-nil, selects custom-sink mode: finished sessions
	// flow into the per-shard sinks the factory builds instead of any
	// Result payload. With an O(1)-memory sink this is the path that
	// characterizes campaigns far larger than RAM. Mutually exclusive
	// with Telemetry (the telemetry campaign owns the sinks there).
	Sinks SinkFactory
	// Progress, when non-nil, receives live atomic counters (sessions,
	// chunks, shard queue) while the run is in flight. It is reset at
	// the start of the run.
	Progress *Progress
}

// Result is Execute's payload: exactly one field is non-nil, matching
// the selected mode (both are nil in custom-sink mode, where the
// caller's sinks received the records).
type Result struct {
	// Dataset is the full materialized record set (dataset mode).
	Dataset *core.Dataset
	// Snapshot is the merged campaign telemetry (telemetry mode).
	Snapshot *telemetry.Snapshot
}

// Execute runs the scenario in the mode Options selects. The ABR name is
// validated before the population is built so flag typos fail fast
// instead of after seconds of world generation; option combinations that
// contradict the selected mode fail the same way.
func Execute(sc workload.Scenario, opt Options) (Result, error) {
	if _, err := NewABR(sc.ABRName); err != nil {
		return Result{}, err
	}
	if opt.Sinks != nil && opt.Telemetry {
		return Result{}, fmt.Errorf("session: Options.Sinks and Options.Telemetry are mutually exclusive (the telemetry campaign owns the sinks)")
	}
	if !opt.Telemetry && (opt.SketchK != 0 || opt.Diagnose != nil || opt.Windows != nil) {
		return Result{}, fmt.Errorf("session: Options.SketchK, Diagnose, and Windows configure telemetry mode; set Options.Telemetry")
	}
	if opt.Progress != nil {
		opt.Progress.Reset()
	}
	switch {
	case opt.Sinks != nil:
		return Result{}, runOnPopulationWithSinks(workload.Build(sc), opt.Sinks, opt.Progress)
	case opt.Telemetry:
		sn, err := executeTelemetry(sc, opt)
		if err != nil {
			return Result{}, err
		}
		return Result{Snapshot: sn}, nil
	default:
		var col core.SpanCollector
		err := runOnPopulationWithSinks(workload.Build(sc), func(int) core.RecordSink {
			return col.NewSink()
		}, opt.Progress)
		if err != nil {
			return Result{}, err
		}
		return Result{Dataset: col.Dataset()}, nil
	}
}

// executeTelemetry is the telemetry-mode body: one campaign supplies the
// per-shard accumulator sinks and the merged snapshot is the result.
//
// A scenario with a timeline additionally runs in windowed mode: the
// campaign's accumulators charge each session to the timeline window
// containing its arrival, so the snapshot carries the per-window
// counters and QoE sketches `analyze windows` renders. Window
// attribution happens per shard and merges like every other aggregate,
// so it too is byte-identical at any parallelism.
func executeTelemetry(sc workload.Scenario, opt Options) (*telemetry.Snapshot, error) {
	eff := sc.WithDefaults()
	windows := opt.Windows
	if windows == nil {
		windows = eff.Timeline.Windows(eff.ArrivalWindowMS)
		if eff.ArrivalOffsetMS != 0 {
			for i := range windows {
				windows[i].StartMS += eff.ArrivalOffsetMS
				windows[i].EndMS += eff.ArrivalOffsetMS
			}
		}
	}
	camp := telemetry.NewCampaignWith(telemetry.Config{
		SketchK:  opt.SketchK,
		Diagnose: opt.Diagnose,
		Windows:  windows,
		Live:     eff.Live.Enabled(),
		Proxy:    eff.Proxy.Enabled(),
	})
	if err := runOnPopulationWithSinks(workload.Build(sc), camp.Sink, opt.Progress); err != nil {
		return nil, err
	}
	return camp.Snapshot(), nil
}
