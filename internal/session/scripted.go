package session

import (
	"math"

	"vidperf/internal/core"
	"vidperf/internal/player"
	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
)

// Script describes a fully controlled single session, used by the paper's
// case-study figures: Fig. 13 (early vs late loss, all else equal) and
// Fig. 17 (a download-stack-buffered chunk in an otherwise clean session).
type Script struct {
	Seed             uint64
	Path             tcpmodel.Params
	Chunks           int
	BitrateKbps      int
	ChunkDurationSec float64 // default 6

	// LossProbByChunk overrides the path's random-loss probability for
	// given chunk indices (others use the path default).
	LossProbByChunk map[int]float64
	// TransientAtChunk injects a download-stack buffering event of the
	// given delay (ms) at the given chunk indices.
	TransientAtChunk map[int]float64

	// ServerLatencyMS is the fixed D_CDN for every chunk (cache hits).
	ServerLatencyMS float64
	// StartThresholdSec is the player start/resume threshold (default 6).
	StartThresholdSec float64
}

// RunScripted executes the script sequentially (one session needs no
// event interleaving) and returns its chunk records.
func RunScripted(s Script) []core.ChunkRecord {
	if s.ChunkDurationSec == 0 {
		s.ChunkDurationSec = 6
	}
	if s.StartThresholdSec == 0 {
		s.StartThresholdSec = 6
	}
	r := stats.NewRand(s.Seed ^ 0x5c819fed)
	conn := tcpmodel.New(s.Path, r.Split())
	play := player.New(s.StartThresholdSec)
	defaultLoss := s.Path.RandomLossProb

	var recs []core.ChunkRecord
	now := 0.0
	prevRebufN, prevRebufMS := 0, 0.0
	for idx := 0; idx < s.Chunks; idx++ {
		if p, ok := s.LossProbByChunk[idx]; ok {
			conn.SetRandomLossProb(p)
		} else {
			conn.SetRandomLossProb(defaultLoss)
		}
		size := int64(float64(s.BitrateKbps) * 1000 / 8 * s.ChunkDurationSec)
		tr := conn.Transfer(size)

		dds, transient := 0.0, false
		if d, ok := s.TransientAtChunk[idx]; ok {
			dds, transient = d, true
		}
		dfb := tr.RTT0ms + s.ServerLatencyMS + dds
		dlb := tr.LastByteMS
		if transient {
			dlb = math.Max(5, dlb-dds)
		}
		tLast := now + dfb + dlb
		play.AdvanceTo(tLast)
		play.OnChunkDownloaded(tLast, s.ChunkDurationSec)

		info := conn.Info()
		recs = append(recs, core.ChunkRecord{
			SessionID: s.Seed, ChunkID: idx,
			DFBms: dfb, DLBms: dlb,
			BitrateKbps: s.BitrateKbps, SizeBytes: size,
			DurationSec: s.ChunkDurationSec,
			BufCount:    play.RebufCount() - prevRebufN,
			BufDurMS:    play.RebufDurMS() - prevRebufMS,
			Visible:     true,
			DwaitMS:     0.1, DopenMS: 0.3,
			DreadMS: s.ServerLatencyMS - 0.4, CacheHit: true, CacheLevel: "ram",
			CWND: info.CWNDSegments, SRTTms: info.SRTTms,
			SRTTVarMS: info.RTTVarMS, MSS: info.MSS,
			RetxTotal: info.RetransTotal,
			SegsSent:  tr.SegmentsSent, SegsLost: tr.SegmentsLost,
			TruthDDSms: dds, TruthTransient: transient,
		})
		prevRebufN, prevRebufMS = play.RebufCount(), play.RebufDurMS()
		now = tLast
	}
	return recs
}
