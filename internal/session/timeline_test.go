package session

import (
	"bytes"
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/core"
	"vidperf/internal/telemetry"
	"vidperf/internal/timeline"
	"vidperf/internal/workload"
)

// fullEffectsTimeline exercises every phase-effect channel at once:
// a flash-crowd surge, a PoP outage with failover, a backend brownout
// with a cache shrink, and a network degradation — three phases, two
// gaps, all within the default 30-minute arrival window.
func fullEffectsTimeline() timeline.Timeline {
	return timeline.Timeline{Phases: []timeline.Phase{
		{Name: "crowd", StartMS: 2 * 60e3, EndMS: 6 * 60e3,
			Effects: timeline.Effects{ArrivalRateFactor: 3}},
		{Name: "outage", StartMS: 10 * 60e3, EndMS: 16 * 60e3,
			Effects: timeline.Effects{
				PoPDown: []int{2}, FailoverPoP: 0, FailoverExtraRTTms: 80,
				BackendLatencyFactor: 4, CacheCapacityFactor: 0.25,
			}},
		{Name: "degrade", StartMS: 20 * 60e3, EndMS: 26 * 60e3,
			Effects: timeline.Effects{
				ThroughputFactor: 0.4, ExtraLossProb: 0.01, ExtraRTTms: 50,
			}},
	}}
}

func timelineScenario(seed uint64) workload.Scenario {
	sc := workload.Scenario{
		Seed:        seed,
		NumSessions: 400,
		NumPrefixes: 150,
		Catalog:     catalog.Config{NumVideos: 800},
	}
	sc.Timeline = fullEffectsTimeline()
	return sc
}

// TestTimelineParallelismByteIdentical extends the tentpole guarantee to
// timeline runs: with every effect channel active — including the
// arrival warp, PoP failover and mid-run cache resizes — the merged
// trace and the telemetry snapshot must serialize to exactly the bytes
// of the sequential run.
func TestTimelineParallelismByteIdentical(t *testing.T) {
	trace := func(par int) []byte {
		sc := timelineScenario(31)
		sc.Parallelism = par
		ds := mustRun(t, sc)
		var buf bytes.Buffer
		if err := core.WriteJSONL(&buf, ds); err != nil {
			t.Fatalf("WriteJSONL(par=%d): %v", par, err)
		}
		return buf.Bytes()
	}
	seq := trace(1)
	for _, par := range []int{2, 8} {
		if got := trace(par); !bytes.Equal(seq, got) {
			t.Fatalf("Parallelism=%d timeline trace differs from sequential (%d vs %d bytes)",
				par, len(got), len(seq))
		}
	}

	snap := func(par int) []byte {
		sc := timelineScenario(31)
		sc.Parallelism = par
		res, err := Execute(sc, Options{Telemetry: true, SketchK: 64})
		if err != nil {
			t.Fatalf("Execute(par=%d): %v", par, err)
		}
		sn := res.Snapshot
		var buf bytes.Buffer
		if err := telemetry.WriteSnapshot(&buf, sn); err != nil {
			t.Fatalf("WriteSnapshot(par=%d): %v", par, err)
		}
		return buf.Bytes()
	}
	seqSnap := snap(1)
	for _, par := range []int{2, 8} {
		if got := snap(par); !bytes.Equal(seqSnap, got) {
			t.Fatalf("Parallelism=%d timeline snapshot differs from sequential", par)
		}
	}
}

// TestTimelineFailoverRedirectsArrivals: no session arriving during the
// outage phase may be served by the down PoP, sessions outside it keep
// their native PoP, and the partitioner must agree with the plans (a
// disagreement would strand sessions on shards without their servers).
func TestTimelineFailoverRedirectsArrivals(t *testing.T) {
	sc := timelineScenario(5)
	ds := mustRun(t, sc)
	pop := workload.Build(sc)
	outage := sc.Timeline.Phases[1]
	redirected := 0
	for i := range ds.Sessions {
		s := &ds.Sessions[i]
		plan := pop.PlanSession(s.SessionID)
		native := plan.Prefix.PoP
		inOutage := outage.Contains(s.ArrivalMS)
		switch {
		case inOutage && native == 2:
			if s.PoP != 0 {
				t.Fatalf("session %d arrived at %.0f ms on down PoP 2 but was served by PoP %d",
					s.SessionID, s.ArrivalMS, s.PoP)
			}
			if !plan.FailedOver {
				t.Fatalf("session %d redirected without FailedOver", s.SessionID)
			}
			redirected++
		default:
			if s.PoP != native {
				t.Fatalf("session %d (arrival %.0f ms) served by PoP %d, native %d",
					s.SessionID, s.ArrivalMS, s.PoP, native)
			}
		}
		if got := pop.SessionPoP(s.SessionID); got != s.PoP {
			t.Fatalf("SessionPoP(%d) = %d, record says %d (partitioner disagrees with plan)",
				s.SessionID, got, s.PoP)
		}
	}
	if redirected == 0 {
		t.Fatal("no session was redirected by the outage phase (effect never fired)")
	}
}

// TestTimelineFlashCrowdConcentratesArrivals: the factor-3 surge phase
// must hold roughly 3x its proportional share of arrivals.
func TestTimelineFlashCrowdConcentratesArrivals(t *testing.T) {
	sc := timelineScenario(9).WithDefaults()
	pop := workload.Build(sc)
	crowd := sc.Timeline.Phases[0]
	in := 0
	for id := uint64(1); id <= uint64(sc.NumSessions); id++ {
		if crowd.Contains(pop.SessionArrival(id)) {
			in++
		}
	}
	// Rate mass: 4 min at 3x + 26 min at 1x = 38; the surge holds 12/38 ≈
	// 31.6% of arrivals vs 13.3% nominal. Allow generous sampling noise.
	share := float64(in) / float64(sc.NumSessions)
	if share < 0.24 || share > 0.40 {
		t.Fatalf("surge-phase arrival share = %.3f, want ≈ 0.316", share)
	}
}

// TestTimelineDegradesQoEInWindow: sessions arriving in the degradation
// phase must see materially worse QoE than the rest, and the windowed
// snapshot must cover every session.
func TestTimelineDegradesQoEInWindow(t *testing.T) {
	sc := timelineScenario(13)
	res, err := Execute(sc, Options{Telemetry: true, SketchK: 64})
	if err != nil {
		t.Fatal(err)
	}
	sn := res.Snapshot
	if len(sn.Windows) != 7 { // pre, crowd, gap, outage, gap, degrade, post
		t.Fatalf("snapshot windows = %d, want 7 (%v)", len(sn.Windows), sn.Windows)
	}
	var assigned uint64
	for _, w := range sn.Windows {
		assigned += sn.Counter(telemetry.WindowSessionsKey(w.Name))
	}
	if total := sn.Counter(telemetry.CounterSessions); assigned != total {
		t.Fatalf("windows cover %d of %d sessions", assigned, total)
	}
	if un := sn.Counter(telemetry.CounterSessionsUnwindowed); un != 0 {
		t.Fatalf("%d sessions fell outside every window", un)
	}
	degraded := sn.Sketch(telemetry.WindowSketchKey(telemetry.MetricStartupMS, "w05-degrade"))
	pre := sn.Sketch(telemetry.WindowSketchKey(telemetry.MetricStartupMS, "w00-pre"))
	post := sn.Sketch(telemetry.WindowSketchKey(telemetry.MetricStartupMS, "w06-post"))
	if degraded.N() == 0 || pre.N() == 0 || post.N() == 0 {
		t.Fatalf("empty window sketches: degrade=%d pre=%d post=%d", degraded.N(), pre.N(), post.N())
	}
	if d, p, q := degraded.Quantile(0.5), pre.Quantile(0.5), post.Quantile(0.5); d < 1.3*p || d < 1.3*q {
		t.Fatalf("degrade-window startup p50 %.0f ms not visibly worse than pre %.0f / post %.0f",
			d, p, q)
	}
}

// TestTimelineCacheShrinkRaisesMisses: the outage phase quarters every
// cache; the same scenario without the shrink must see a higher overall
// hit ratio. (The shrink also co-occurs with the backend brownout, so
// compare against a timeline identical except for the cache factor.)
func TestTimelineCacheShrinkRaisesMisses(t *testing.T) {
	run := func(cacheFactor float64) float64 {
		sc := timelineScenario(17)
		sc.Timeline.Phases[1].Effects.CacheCapacityFactor = cacheFactor
		res, err := Execute(sc, Options{Telemetry: true, SketchK: 64})
		if err != nil {
			t.Fatal(err)
		}
		sn := res.Snapshot
		return float64(sn.Counter(telemetry.CounterChunksHit)) /
			float64(sn.Counter(telemetry.CounterChunks))
	}
	shrunk := run(0.02) // 2% capacity during the phase
	intact := run(0)    // unchanged
	if shrunk >= intact {
		t.Fatalf("hit ratio with shrink %.4f >= without %.4f (resize never bit)", shrunk, intact)
	}
}

// TestTimelineValidationSurfacesInRun: an invalid timeline must fail in
// the plan phase with a clear error, not run half-configured.
func TestTimelineValidationSurfacesInRun(t *testing.T) {
	sc := smallScenario(1)
	sc.Timeline = timeline.Timeline{Phases: []timeline.Phase{
		{Name: "a", StartMS: 0, EndMS: 10e3},
		{Name: "b", StartMS: 5e3, EndMS: 15e3},
	}}
	if _, err := Execute(sc, Options{}); err == nil {
		t.Fatal("Run accepted an overlapping timeline")
	}
	sc = smallScenario(1)
	sc.Timeline = timeline.Timeline{Phases: []timeline.Phase{
		{Name: "a", StartMS: 0, EndMS: 10e3,
			Effects: timeline.Effects{PoPDown: []int{99}}},
	}}
	if _, err := Execute(sc, Options{}); err == nil {
		t.Fatal("Run accepted an out-of-fleet PoP outage")
	}
}
