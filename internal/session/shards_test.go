package session

import (
	"bytes"
	"sync"
	"testing"

	"vidperf/internal/core"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// singlePoPScenario forces every session onto one PoP, so any
// parallelism beyond 1 can only come from sub-PoP (per-server-slot)
// shards — the granularity this PR introduced.
func singlePoPScenario(seed uint64, par int) workload.Scenario {
	sc := smallScenario(seed)
	sc.Fleet.NumPoPs = 1
	sc.Parallelism = par
	return sc
}

// TestSubPoPShardingByteIdentical pins the determinism guarantee at
// server granularity: with a single PoP the shards are individual server
// slots, and both the JSONL trace and the telemetry snapshot must still
// serialize to exactly the sequential run's bytes at any parallelism.
func TestSubPoPShardingByteIdentical(t *testing.T) {
	trace := func(par int) []byte {
		ds := mustRun(t, singlePoPScenario(37, par))
		var buf bytes.Buffer
		if err := core.WriteJSONL(&buf, ds); err != nil {
			t.Fatalf("WriteJSONL(par=%d): %v", par, err)
		}
		return buf.Bytes()
	}
	seqTrace := trace(1)
	for _, par := range []int{2, 8} {
		if got := trace(par); !bytes.Equal(seqTrace, got) {
			t.Fatalf("Parallelism=%d single-PoP trace differs from sequential (%d vs %d bytes)",
				par, len(got), len(seqTrace))
		}
	}

	snap := func(par int) []byte {
		res, err := Execute(singlePoPScenario(37, par), Options{Telemetry: true, SketchK: 64})
		if err != nil {
			t.Fatalf("Execute(par=%d): %v", par, err)
		}
		sn := res.Snapshot
		var buf bytes.Buffer
		if err := telemetry.WriteSnapshot(&buf, sn); err != nil {
			t.Fatalf("WriteSnapshot(par=%d): %v", par, err)
		}
		return buf.Bytes()
	}
	seqSnap := snap(1)
	for _, par := range []int{2, 8} {
		if got := snap(par); !bytes.Equal(seqSnap, got) {
			t.Fatalf("Parallelism=%d single-PoP snapshot differs from sequential (%d vs %d bytes)",
				par, len(got), len(seqSnap))
		}
	}
}

// aliasProbeSink deliberately violates the RecordSink contract by
// retaining the chunks slices it is handed, alongside honest deep
// copies. It also checks, at delivery time, the invariant a buffer-pool
// bug would break first: every record in the slice belongs to the
// session being delivered, in contiguous chunk order. Safe for
// concurrent shards.
type aliasProbeSink struct {
	t    *testing.T
	mu   sync.Mutex
	kept map[uint64][]core.ChunkRecord // deep copies, per the contract
	raw  map[uint64][]core.ChunkRecord // aliased retention, against the contract
}

func (s *aliasProbeSink) ConsumeSession(rec core.SessionRecord, chunks []core.ChunkRecord) {
	for i := range chunks {
		if chunks[i].SessionID != rec.SessionID {
			s.t.Errorf("session %d delivered a chunk of session %d at position %d (recycled buffer aliased into a live session)",
				rec.SessionID, chunks[i].SessionID, i)
		}
		if chunks[i].ChunkID != i {
			s.t.Errorf("session %d chunk order broken at %d (got ChunkID %d)",
				rec.SessionID, i, chunks[i].ChunkID)
		}
	}
	cp := make([]core.ChunkRecord, len(chunks))
	copy(cp, chunks)
	s.mu.Lock()
	s.kept[rec.SessionID] = cp
	s.raw[rec.SessionID] = chunks
	s.mu.Unlock()
}

// TestRecycledChunkBuffersSafe pins the runner's buffer pooling: chunk
// slices handed to the sink are complete and correct at call time (the
// deep copies match a collect-mode reference run exactly), recycling
// really happens (the illegally retained slices get overwritten by
// later sessions — the contract's "valid only for the duration of the
// call" is load-bearing, not theoretical), and no recycled buffer is
// ever handed to a still-live session (the delivery-time invariant
// above).
func TestRecycledChunkBuffersSafe(t *testing.T) {
	sc := smallScenario(41)
	ref := mustRun(t, sc)

	sink := &aliasProbeSink{
		t:    t,
		kept: map[uint64][]core.ChunkRecord{},
		raw:  map[uint64][]core.ChunkRecord{},
	}
	if _, err := Execute(sc, Options{Sinks: func(int) core.RecordSink { return sink }}); err != nil {
		t.Fatalf("Execute(Sinks): %v", err)
	}

	byS := ref.ChunksBySession()
	for i := range ref.Sessions {
		id := ref.Sessions[i].SessionID
		got := sink.kept[id]
		idxs := byS[id]
		if len(got) != len(idxs) {
			t.Fatalf("session %d: %d chunks via pooled sink, %d in reference", id, len(got), len(idxs))
		}
		for j, ci := range idxs {
			if got[j] != ref.Chunks[ci] {
				t.Fatalf("session %d chunk %d differs between pooled sink and reference", id, j)
			}
		}
	}

	// Recycling must actually have occurred: with ~300 sessions spread
	// over the fleet's server-slot shards, most shards consume several
	// sessions, so most illegally retained slices must by now show some
	// other session's data.
	recycled := 0
	for id, raw := range sink.raw {
		kept := sink.kept[id]
		same := len(raw) >= len(kept)
		if same {
			for j := range kept {
				if raw[j] != kept[j] {
					same = false
					break
				}
			}
		}
		if !same {
			recycled++
		}
	}
	if recycled == 0 {
		t.Fatal("no retained chunk slice was ever recycled; the buffer pool appears inactive")
	}
}
