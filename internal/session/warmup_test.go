package session

import (
	"testing"

	"vidperf/internal/catalog"
	"vidperf/internal/cdn"
	"vidperf/internal/core"
	"vidperf/internal/stats"
	"vidperf/internal/workload"
)

func TestWarmFleetPopulatesCaches(t *testing.T) {
	fleet := cdn.NewFleet(cdn.FleetConfig{NumPoPs: 2, ServersPerPoP: 3}, 1)
	cat := catalog.New(catalog.Config{NumVideos: 200, DurationMedian: 60}, stats.NewRand(1))
	WarmFleet(fleet, cat)

	// Every server with mapped content must hold bytes.
	warmed := 0
	for _, srv := range fleet.Servers() {
		if srv.Cache().Disk.Size() > 0 {
			warmed++
		}
	}
	if warmed != fleet.NumServers() {
		t.Errorf("only %d/%d servers warmed", warmed, fleet.NumServers())
	}

	// The most popular video's mid-ladder chunk must be resident on its
	// mapped server in every PoP; a cold-tail video must not be.
	for pop := 0; pop < 2; pop++ {
		v0 := &cat.Videos[0]
		srv := fleet.ServerFor(pop, v0.ID, v0.Rank, 0)
		key := catalog.ChunkKey(v0.ID, 0, 1750)
		if !srv.Cache().Contains(key) {
			t.Errorf("pop %d: popular chunk not warmed", pop)
		}
		cold := &cat.Videos[len(cat.Videos)-1] // rank beyond the 95% cold cut
		coldSrv := fleet.ServerFor(pop, cold.ID, cold.Rank, 0)
		coldKey := catalog.ChunkKey(cold.ID, 0, 1750)
		if coldSrv.Cache().Contains(coldKey) {
			t.Errorf("pop %d: cold-tail chunk unexpectedly warmed", pop)
		}
	}
}

func TestWarmFleetTopQuartileGetsAllRungs(t *testing.T) {
	fleet := cdn.NewFleet(cdn.FleetConfig{NumPoPs: 1, ServersPerPoP: 2}, 2)
	cat := catalog.New(catalog.Config{NumVideos: 100, DurationMedian: 60}, stats.NewRand(2))
	WarmFleet(fleet, cat)

	v0 := &cat.Videos[0] // top quartile: all rungs warmed
	srv := fleet.ServerFor(0, v0.ID, v0.Rank, 0)
	for _, br := range cat.Bitrates {
		if !srv.Cache().Contains(catalog.ChunkKey(v0.ID, 1, br)) {
			t.Errorf("top video missing rung %d", br)
		}
	}
	// A mid-catalog (below quartile, above cold cut) video: low rungs are
	// cold except the startup rung on early chunks.
	vMid := &cat.Videos[60]
	srvMid := fleet.ServerFor(0, vMid.ID, vMid.Rank, 0)
	if srvMid.Cache().Contains(catalog.ChunkKey(vMid.ID, 5, 235)) {
		t.Error("mid video's 235 kbps rung should be cold")
	}
	if !srvMid.Cache().Contains(catalog.ChunkKey(vMid.ID, 0, 375)) {
		t.Error("mid video's startup rung should be warmed for chunk 0")
	}
	if !srvMid.Cache().Contains(catalog.ChunkKey(vMid.ID, 5, 1750)) {
		t.Error("mid video's 1750 kbps rung should be warmed")
	}
}

func TestWarmFleetPartitionedSpreadsPopular(t *testing.T) {
	fleet := cdn.NewFleet(cdn.FleetConfig{
		NumPoPs: 1, ServersPerPoP: 4, PartitionTopRanks: 10,
	}, 3)
	cat := catalog.New(catalog.Config{NumVideos: 100, DurationMedian: 60}, stats.NewRand(3))
	WarmFleet(fleet, cat)

	// Partitioned top titles must be resident on every server of the PoP.
	key := catalog.ChunkKey(cat.Videos[0].ID, 0, 1750)
	for _, srv := range fleet.PoPServers(0) {
		if !srv.Cache().Contains(key) {
			t.Errorf("server %d missing partitioned popular chunk", srv.ID)
		}
	}
}

func TestColdStartRaisesMissRate(t *testing.T) {
	base := workload.Scenario{
		Seed: 5, NumSessions: 800, NumPrefixes: 200,
		Catalog: catalog.Config{NumVideos: 800},
	}
	warm := mustRun(t, base)
	cold := base
	cold.ColdStart = true
	coldDS := mustRun(t, cold)

	missRate := func(ds *core.Dataset) float64 {
		miss := 0
		for i := range ds.Chunks {
			if !ds.Chunks[i].CacheHit {
				miss++
			}
		}
		return float64(miss) / float64(len(ds.Chunks))
	}
	w, c := missRate(warm), missRate(coldDS)
	if c < 3*w {
		t.Errorf("cold start miss rate %.3f not ≫ warm %.3f", c, w)
	}
	if w > 0.25 {
		t.Errorf("warm miss rate %.3f too high", w)
	}
}
