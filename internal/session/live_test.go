package session

import (
	"bytes"
	"sync"
	"testing"

	"vidperf/internal/core"
	"vidperf/internal/live"
	"vidperf/internal/telemetry"
	"vidperf/internal/workload"
)

// steadyLiveScenario mirrors the live-steady preset at test scale on a
// single PoP, so parallelism beyond 1 exercises the per-server-slot
// shards against the shared publish clock.
func steadyLiveScenario(seed uint64, par int) workload.Scenario {
	sc := smallScenario(seed)
	sc.Fleet.NumPoPs = 1
	sc.Parallelism = par
	sc.Live = live.Config{Channels: 8}
	return sc
}

// stormLiveScenario mirrors the channel-switch-storm preset at test
// scale across the full fleet: zipf-joined channels with heavy
// mid-stream switching.
func stormLiveScenario(seed uint64, par int) workload.Scenario {
	sc := smallScenario(seed)
	sc.Parallelism = par
	sc.Live = live.Config{
		Channels: 12, SwitchPerMin: 4,
		JoinDist: live.JoinZipf, JoinZipfS: 1.1,
	}
	return sc
}

// TestLiveByteIdenticalAcrossParallelism extends the determinism
// invariant to live mode: with every session gating on the shared
// publish clock (and, in the storm scenario, switching channels
// mid-stream), both the JSONL trace and the telemetry snapshot must
// still serialize to exactly the sequential run's bytes at any
// parallelism — including sub-PoP server-slot shards.
func TestLiveByteIdenticalAcrossParallelism(t *testing.T) {
	for name, mk := range map[string]func(uint64, int) workload.Scenario{
		"live-steady":          steadyLiveScenario,
		"channel-switch-storm": stormLiveScenario,
	} {
		trace := func(par int) []byte {
			ds := mustRun(t, mk(61, par))
			var buf bytes.Buffer
			if err := core.WriteJSONL(&buf, ds); err != nil {
				t.Fatalf("%s: WriteJSONL(par=%d): %v", name, par, err)
			}
			return buf.Bytes()
		}
		seqTrace := trace(1)
		for _, par := range []int{2, 8} {
			if got := trace(par); !bytes.Equal(seqTrace, got) {
				t.Fatalf("%s: Parallelism=%d trace differs from sequential (%d vs %d bytes)",
					name, par, len(got), len(seqTrace))
			}
		}

		snap := func(par int) []byte {
			res, err := Execute(mk(61, par), Options{Telemetry: true, SketchK: 64})
			if err != nil {
				t.Fatalf("%s: Execute(par=%d): %v", name, par, err)
			}
			var buf bytes.Buffer
			if err := telemetry.WriteSnapshot(&buf, res.Snapshot); err != nil {
				t.Fatalf("%s: WriteSnapshot(par=%d): %v", name, par, err)
			}
			return buf.Bytes()
		}
		seqSnap := snap(1)
		for _, par := range []int{2, 8} {
			if got := snap(par); !bytes.Equal(seqSnap, got) {
				t.Fatalf("%s: Parallelism=%d snapshot differs from sequential (%d vs %d bytes)",
					name, par, len(got), len(seqSnap))
			}
		}
	}
}

// TestLivePublishClockNeverViolated is the published-only invariant: no
// live chunk request is ever issued before the publish clock releases
// its target, across joins, buffer refills, and channel switches. The
// probe observes every live issue; the run uses Parallelism 1 because
// the hook is package-level state.
func TestLivePublishClockNeverViolated(t *testing.T) {
	var (
		mu     sync.Mutex
		issues int
		bad    int
	)
	liveProbe = func(sessionID uint64, absChunk int, issueMS, publishMS float64) {
		mu.Lock()
		issues++
		if issueMS < publishMS {
			bad++
			if bad == 1 {
				t.Errorf("session %d issued chunk %d at %g ms, published at %g ms",
					sessionID, absChunk, issueMS, publishMS)
			}
		}
		mu.Unlock()
	}
	defer func() { liveProbe = nil }()

	mustRun(t, stormLiveScenario(7, 1))
	if issues == 0 {
		t.Fatal("probe observed no live chunk issues")
	}
	if bad > 0 {
		t.Fatalf("%d of %d live chunk issues violated the publish clock", bad, issues)
	}
}

// TestLiveSessionRecordInvariants checks the per-session live fields: a
// live campaign marks every session live with a non-negative join chunk
// no further than the arrival-time edge, and the accrued live-edge lag
// is non-negative and bounded by the session's span on the publish clock
// (each fetched chunk can wait at most one publish period).
func TestLiveSessionRecordInvariants(t *testing.T) {
	sc := stormLiveScenario(19, 1)
	ds := mustRun(t, sc)
	lc := sc.Live.WithDefaults()
	byS := ds.ChunksBySession()
	switches := 0
	for i := range ds.Sessions {
		rec := &ds.Sessions[i]
		if !rec.Live {
			t.Fatalf("session %d not marked live in a live campaign", rec.SessionID)
		}
		if rec.LiveJoinChunk < 0 || rec.LiveJoinChunk > lc.EdgeChunk(rec.ArrivalMS) {
			t.Errorf("session %d join chunk %d outside [0, edge=%d] at arrival %g",
				rec.SessionID, rec.LiveJoinChunk, lc.EdgeChunk(rec.ArrivalMS), rec.ArrivalMS)
		}
		if rec.LiveEdgeLagMS < 0 {
			t.Errorf("session %d negative live-edge lag %g", rec.SessionID, rec.LiveEdgeLagMS)
		}
		if bound := float64(len(byS[rec.SessionID])) * lc.ChunkDurMS(); rec.LiveEdgeLagMS > bound {
			t.Errorf("session %d live-edge lag %g ms exceeds %d chunks x %g ms",
				rec.SessionID, rec.LiveEdgeLagMS, len(byS[rec.SessionID]), lc.ChunkDurMS())
		}
		if rec.LiveSwitches < 0 {
			t.Errorf("session %d negative switch count", rec.SessionID)
		}
		switches += rec.LiveSwitches
	}
	if switches == 0 {
		t.Error("switch-storm campaign recorded zero channel switches")
	}

	// The steady campaign must never switch, and VoD sessions must not
	// carry live state at all.
	steady := mustRun(t, steadyLiveScenario(19, 1))
	for i := range steady.Sessions {
		if n := steady.Sessions[i].LiveSwitches; n != 0 {
			t.Fatalf("steady live session switched %d times with SwitchPerMin=0", n)
		}
	}
	vod := mustRun(t, smallScenario(19))
	for i := range vod.Sessions {
		rec := &vod.Sessions[i]
		if rec.Live || rec.LiveEdgeLagMS != 0 || rec.LiveSwitches != 0 {
			t.Fatalf("VoD session %d carries live state: %+v", rec.SessionID, rec)
		}
	}
}

// TestLiveDisabledByteIdenticalToVoD pins the "zero value changes
// nothing" invariant: a scenario with a disabled live block must
// produce byte-for-byte the trace of one that never mentions live.
func TestLiveDisabledByteIdenticalToVoD(t *testing.T) {
	plain := mustRun(t, smallScenario(23))
	withZero := smallScenario(23)
	withZero.Live = live.Config{}
	zero := mustRun(t, withZero)

	var a, b bytes.Buffer
	if err := core.WriteJSONL(&a, plain); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteJSONL(&b, zero); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("zero-valued live config changed the trace bytes")
	}
}
