package session

import (
	"math"

	"vidperf/internal/abr"
	"vidperf/internal/catalog"
	"vidperf/internal/cdn"
	"vidperf/internal/clientstack"
	"vidperf/internal/core"
	"vidperf/internal/netpath"
	"vidperf/internal/player"
	"vidperf/internal/sim"
	"vidperf/internal/stats"
	"vidperf/internal/tcpmodel"
	"vidperf/internal/workload"
)

// sessionState is one in-flight session. Its randomness derives from
// (scenario seed, session ID) only, and it touches only its own shard's
// engine, fleet partition, and sink. Its chunk-record buffer is borrowed
// from the shard's pool and returned when the session finishes.
type sessionState struct {
	shard *slotShard
	pop   *workload.Population
	plan  workload.SessionPlan
	algo  abr.Algorithm
	fleet *cdn.Fleet
	eng   *sim.Engine
	sink  core.RecordSink

	r      *stats.Rand
	conn   *tcpmodel.Conn
	cong   *netpath.Congestion
	play   *player.Player
	est    *abr.Estimator
	server *cdn.Server

	chunkIdx    int
	records     []core.ChunkRecord
	sumKbpsDur  float64
	sumDur      float64
	lastOutlier bool
	prevRebufN  int
	prevRebufMS float64

	// Live-mode state: the channel currently tuned (nil for VoD), the
	// absolute channel chunk the next request targets, and the accrued
	// publish-clock wait. The serving server stays pinned to the join
	// channel (plan.Video) so a session never crosses its shard; only
	// the cache keys follow liveVideo across switches.
	liveVideo    *catalog.Video
	liveAbs      int
	liveChannel  int
	liveSwitches int
	liveLagMS    float64
}

// liveProbe, when non-nil, observes every live chunk issue as
// (sessionID, absolute chunk, issue time, publish time). It exists for
// the publish-clock property tests, which run at Parallelism 1; the
// hook is package-level state, so it must stay nil in production runs.
var liveProbe func(sessionID uint64, absChunk int, issueMS, publishMS float64)

func newSessionState(sh *slotShard, plan workload.SessionPlan,
	fleet *cdn.Fleet, eng *sim.Engine) *sessionState {

	pop := sh.pop
	r := stats.NewRand(pop.Scenario.Seed ^ (plan.ID * 0xdeadbeefcafef00d))
	prof := plan.Prefix.Profile
	if plan.Proxied {
		// Tromboned sessions overlay the shared-egress queueing process
		// on the prefix's congestion knobs. Org is preserved, so the
		// per-session scale draws below are position-identical to the
		// direct world.
		prof = pop.ProxyCohort(plan.ProxyCohort).Trombone.CongestionProfile(prof)
	}
	st := &sessionState{
		shard:   sh,
		pop:     pop,
		plan:    plan,
		algo:    sh.algo,
		fleet:   fleet,
		eng:     eng,
		sink:    sh.sink,
		r:       r,
		conn:    tcpmodel.New(plan.PathParams, r.Split()),
		cong:    prof.NewCongestion(r),
		play:    player.New(pop.Scenario.StartThresholdSec),
		est:     abr.NewEstimator(0.3),
		records: sh.getRecords(plan.WatchChunks),
	}
	if plan.Live {
		st.liveVideo = pop.LiveVideo(plan.LiveChannel)
		st.liveChannel = plan.LiveChannel
		st.liveAbs = plan.LiveJoinChunk
	}
	return st
}

// abrContext assembles the signals the adaptation algorithm sees.
func (s *sessionState) abrContext() abr.Context {
	info := s.conn.Info()
	return abr.Context{
		Ladder:        s.pop.Catalog.Bitrates,
		ChunkIndex:    s.chunkIdx,
		BufferSec:     s.play.BufferSec(),
		LastChunkKbps: s.lastInstantKbps(),
		SmoothedKbps:  s.est.Kbps(),
		ServerKbps:    info.ThroughputKbps(),
		StackOutlier:  s.lastOutlier,
	}
}

func (s *sessionState) lastInstantKbps() float64 {
	if len(s.records) == 0 {
		return 0
	}
	return s.records[len(s.records)-1].InstantThroughputKbps()
}

// requestNextChunk issues the HTTP GET for the current chunk. In live
// mode it first gates on the publish clock: an unpublished target chunk
// means the player idles until the clock releases it, accruing
// live-edge lag. The gate runs before any RNG draw, so the retry at
// publish time consumes exactly the draws a single issue would.
func (s *sessionState) requestNextChunk() {
	if s.liveVideo != nil {
		pub := s.pop.Scenario.ArrivalOffsetMS + s.pop.Scenario.Live.PublishMS(s.liveAbs)
		if now := s.eng.Now(); now < pub {
			wait := pub - now
			s.liveLagMS += wait
			s.conn.AdvanceIdle(wait)
			s.eng.At(pub, func(float64) { s.requestNextChunk() })
			return
		}
	}

	idx := s.chunkIdx
	bitrate := s.algo.Next(s.abrContext())
	video, chunkIdx := s.plan.Video, idx
	var dur float64
	if s.liveVideo != nil {
		// Live chunks are constant-length (a channel has no "last chunk")
		// and are addressed by absolute channel position, so every viewer
		// at the edge asks the cache for the same key.
		video, chunkIdx = s.liveVideo, s.liveAbs
		dur = s.pop.Scenario.Live.ChunkDurationSec
		if liveProbe != nil {
			liveProbe(s.plan.ID, s.liveAbs, s.eng.Now(),
				s.pop.Scenario.ArrivalOffsetMS+s.pop.Scenario.Live.PublishMS(s.liveAbs))
		}
	} else {
		dur = s.pop.Catalog.ChunkDurationSec(video, idx)
	}
	size := catalog.ChunkSizeBytes(bitrate, dur)
	key := catalog.ChunkKey(video.ID, chunkIdx, bitrate)

	// Path state for this chunk: cross-traffic episode level. A congested
	// uplink both delays and drops, so the episode raises the loss rate.
	extra := s.cong.Step(s.r)
	s.conn.SetExtraDelayMS(extra)
	s.conn.SetRandomLossProb(s.plan.PathParams.RandomLossProb + netpath.LossBoost(extra))

	req := cdn.Request{
		Key: key, SizeBytes: size,
		VideoID: video.ID, ChunkIndex: chunkIdx,
		Next:          s.prefetchList(idx, bitrate),
		BackendFactor: s.plan.BackendFactor,
	}
	s.server = s.fleet.ServerFor(s.plan.ServingPoP, s.plan.Video.ID, s.plan.Video.Rank, s.plan.ID)
	t0 := s.eng.Now()
	s.server.Serve(s.eng, req, func(res cdn.ServeResult) {
		s.onServed(t0, idx, bitrate, dur, size, res)
	})
}

// prefetchList names the session's next two chunks for servers with
// prefetching enabled. Live sessions never prefetch: the next chunk may
// not be published yet, and fetching ahead of the clock would break the
// published-only invariant.
func (s *sessionState) prefetchList(idx, bitrate int) []cdn.NextChunk {
	if s.liveVideo != nil || s.fleet.Config().Server.Prefetch == 0 {
		return nil
	}
	var out []cdn.NextChunk
	for n := idx + 1; n <= idx+2 && n < s.plan.WatchChunks; n++ {
		d := s.pop.Catalog.ChunkDurationSec(s.plan.Video, n)
		out = append(out, cdn.NextChunk{
			Key:       catalog.ChunkKey(s.plan.Video.ID, n, bitrate),
			SizeBytes: catalog.ChunkSizeBytes(bitrate, d),
		})
	}
	return out
}

// onServed fires when the server has the chunk's first byte ready; the
// network transfer and client-side handling follow.
func (s *sessionState) onServed(t0 float64, idx, bitrate int, dur float64, size int64, res cdn.ServeResult) {
	tr := s.conn.Transfer(size)
	dds := s.plan.Stack.Sample(idx, s.r)

	// Eq. 1 composition: D_FB = rtt0 + D_CDN + D_BE + D_DS.
	dfb := tr.RTT0ms + res.ServerLatencyMS() + dds.DDSms
	dlb := tr.LastByteMS + dds.DeliveryStretchMS
	if dds.Transient {
		// The stack held the early bytes and released them late: the
		// player sees a late first byte and a compressed download window.
		dlb = math.Max(5, dlb-dds.TransientDelayMS)
	}
	tLastByte := t0 + dfb + dlb

	// Player-side accounting.
	s.play.AdvanceTo(tLastByte)
	bufferedBefore := s.play.BufferSec()
	s.play.OnChunkDownloaded(tLastByte, dur)

	// Rendering path.
	visible := !s.r.Bool(s.plan.HiddenProb)
	rate := 0.0
	if dfb+dlb > 0 {
		rate = dur / ((dfb + dlb) / 1000)
	}
	render := clientstack.RenderChunk(s.plan.Platform, visible, rate, bitrate,
		s.pop.Scenario.FPS, dur, bufferedBefore, s.r)

	info := s.conn.Info()
	rec := core.ChunkRecord{
		SessionID: s.plan.ID, ChunkID: idx,
		DFBms: dfb, DLBms: dlb,
		BitrateKbps: bitrate, SizeBytes: size, DurationSec: dur,
		BufCount: s.play.RebufCount() - s.prevRebufN,
		BufDurMS: s.play.RebufDurMS() - s.prevRebufMS,
		Visible:  visible,
		AvgFPS:   render.AvgFPS, DroppedFrames: render.FramesDropped,
		TotalFrames: render.FramesTotal, HardwareRender: render.Hardware,
		DwaitMS: res.DwaitMS, DopenMS: res.DopenMS, DreadMS: res.DreadMS,
		DBEms: res.DBEms, CacheHit: res.CacheHit(),
		CacheLevel: res.Level.String(), RetryTimer: res.RetryTimer,
		CWND: info.CWNDSegments, SRTTms: info.SRTTms, SRTTVarMS: info.RTTVarMS,
		MSS: info.MSS, RetxTotal: info.RetransTotal,
		SegsSent: tr.SegmentsSent, SegsLost: tr.SegmentsLost,
		ProxyCohort: s.plan.ProxyCohort,
		TruthDDSms:  dds.DDSms, TruthTransient: dds.Transient,
	}
	s.records = append(s.records, rec)
	s.prevRebufN = s.play.RebufCount()
	s.prevRebufMS = s.play.RebufDurMS()
	s.sumKbpsDur += float64(bitrate) * dur
	s.sumDur += dur

	// Feed the ABR estimator with the player's (possibly poisoned) view.
	if dlb > 0 {
		s.est.Observe(float64(size) * 8 / dlb)
	}
	s.lastOutlier = dds.Transient

	s.chunkIdx++
	if s.chunkIdx >= s.plan.WatchChunks {
		s.finish()
		return
	}
	// Viewers abandon on bad QoE (Krishnan & Sitaraman): each stall risks
	// losing the viewer, which is why heavily re-buffering sessions are
	// not over-represented at high chunk IDs.
	if rec.BufCount > 0 && s.r.Bool(0.35) {
		s.finish()
		return
	}

	if s.liveVideo != nil {
		s.liveAbs++
		s.maybeSwitchChannel(tLastByte)
	}

	// Steady state: request the next chunk immediately unless the buffer
	// is full, in which case wait for it to drain to the high-water mark.
	nextAt := tLastByte
	if over := s.play.BufferSec() - s.pop.Scenario.MaxBufferSec; over > 0 {
		wait := over * 1000
		nextAt += wait
		s.conn.AdvanceIdle(wait)
	}
	s.eng.At(nextAt, func(float64) { s.requestNextChunk() })
}

// maybeSwitchChannel draws the per-chunk channel-switch decision. A
// switch re-tunes the session to a different channel at the live edge
// (minus the join margin) without flushing the player buffer — a
// seamless switch, so the cost shows up at the cache (a new hot edge)
// rather than as a startup event. The publish clock is global, so the
// re-join target is always already published and never behind a chunk
// the session could have seen on the new channel later.
func (s *sessionState) maybeSwitchChannel(nowMS float64) {
	lc := s.pop.Scenario.Live
	if lc.Channels <= 1 || lc.SwitchPerMin <= 0 {
		return
	}
	if !s.r.Bool(lc.SwitchProb()) {
		return
	}
	next := s.r.Intn(lc.Channels - 1)
	if next >= s.liveChannel {
		next++
	}
	s.liveChannel = next
	s.liveVideo = s.pop.LiveVideo(next)
	s.liveSwitches++
	s.liveAbs = lc.JoinChunk(nowMS - s.pop.Scenario.ArrivalOffsetMS)
}

// finish closes the session and writes its records into the dataset.
func (s *sessionState) finish() {
	s.play.Finish()
	cs := core.ComputeSessionChunkStats(s.records)

	// The session's SRTT series is the per-chunk kernel snapshot (Table 2,
	// "CDN TCP layer"), one equally-weighted sample per chunk. The slice
	// is shard-level scratch: sessions finish one at a time within a
	// shard's engine, and the stats helpers retain nothing.
	srttSeries := s.shard.srtt[:0]
	for i := range s.records {
		srttSeries = append(srttSeries, s.records[i].SRTTms)
	}
	s.shard.srtt = srttSeries[:0]
	var srttMin, srttMean, srttStd, srttCV float64
	if len(srttSeries) > 0 {
		srttMin = stats.Min(srttSeries)
		srttMean = stats.Mean(srttSeries)
		srttStd = stats.Std(srttSeries)
		if srttMean > 0 {
			srttCV = srttStd / srttMean
		}
	}
	avgKbps := 0.0
	if s.sumDur > 0 {
		avgKbps = s.sumKbpsDur / s.sumDur
	}
	pl := s.plan
	rec := core.SessionRecord{
		SessionID:      pl.ID,
		HTTPClientIP:   pl.HTTPIP,
		BeaconIP:       pl.ClientIP,
		UserAgent:      pl.Platform.UserAgent(),
		OS:             pl.Platform.OS.String(),
		Browser:        pl.Platform.Browser.String(),
		PopularBrowser: pl.Platform.Browser.Popular(),
		VideoID:        pl.Video.ID,
		VideoRank:      pl.Video.Rank,
		VideoLenSec:    pl.Video.DurationSec,
		NumChunks:      len(s.records),
		PrefixID:       pl.Prefix.ID,
		Prefix:         pl.Prefix.Label,
		Country:        pl.Prefix.Country,
		US:             pl.Prefix.US,
		PoP:            pl.ServingPoP,
		ServerID:       s.serverID(),
		OrgName:        pl.Prefix.Profile.OrgName,
		OrgType:        pl.Prefix.Profile.Org.String(),
		ConnType:       workload.ConnTypeLabel(pl.Prefix),
		DistanceKM:     pl.Prefix.DistKM,
		ArrivalMS:      pl.ArrivalMS,
		StartupMS:      s.play.StartupMS() - pl.ArrivalMS,
		RebufCount:     s.play.RebufCount(),
		RebufDurMS:     s.play.RebufDurMS(),
		RebufferRate:   s.play.RebufferRate(),
		AvgBitrateKbps: avgKbps,
		PlayedSec:      s.play.PlayedSec(),
		SRTTMinMS:      srttMin,
		SRTTMeanMS:     srttMean,
		SRTTStdMS:      srttStd,
		SRTTCV:         srttCV,
		RetxRate:       cs.RetxRate(),
		HadLoss:        cs.AnyLoss,
		GPU:            pl.Platform.GPU,
		CPUCores:       pl.Platform.CPUCores,
		CPULoad:        pl.Platform.CPULoad,
	}
	if !s.play.Started() {
		rec.StartupMS = math.NaN()
	}
	if pl.Live {
		rec.Live = true
		rec.LiveChannel = pl.LiveChannel
		rec.LiveJoinChunk = pl.LiveJoinChunk
		rec.LiveSwitches = s.liveSwitches
		rec.LiveEdgeLagMS = s.liveLagMS
	}
	if pl.Proxied {
		rec.Proxied = true
		rec.ProxyCohort = pl.ProxyCohort
	}
	s.sink.ConsumeSession(rec, s.records)
	// The sink contract says chunks are valid only for the duration of the
	// call, so the buffer can be recycled for the shard's next session.
	s.shard.putRecords(s.records)
	s.records = nil
}

func (s *sessionState) serverID() int {
	if s.server != nil {
		return s.server.ID
	}
	return -1
}
