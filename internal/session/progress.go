package session

import (
	"sync/atomic"

	"vidperf/internal/core"
)

// Progress is a set of atomic counters a long-running caller (the serve
// engine, a progress bar) can poll while a run is in flight. The runner
// publishes into it from shard goroutines; readers see monotonically
// increasing values with no locking. All fields reset to zero via Reset
// between runs.
type Progress struct {
	// Sessions and Chunks count finished sessions and their emitted chunk
	// records across all shards of the current run.
	Sessions atomic.Uint64
	Chunks   atomic.Uint64
	// ShardsDone / ShardsTotal track shard completion; their difference is
	// the depth of the shard work queue (shards planned but not yet
	// drained).
	ShardsDone  atomic.Int64
	ShardsTotal atomic.Int64
}

// Reset zeroes every counter. Call it between runs; never while a run
// that publishes into p is in flight.
func (p *Progress) Reset() {
	p.Sessions.Store(0)
	p.Chunks.Store(0)
	p.ShardsDone.Store(0)
	p.ShardsTotal.Store(0)
}

// QueueDepth returns the number of planned shards not yet drained.
func (p *Progress) QueueDepth() int64 {
	d := p.ShardsTotal.Load() - p.ShardsDone.Load()
	if d < 0 {
		return 0
	}
	return d
}

// countingSink wraps a shard's record sink, ticking the shared Progress
// counters as sessions finish. It forwards the RecordReserver capability
// so pre-sizing still reaches the wrapped sink.
type countingSink struct {
	inner core.RecordSink
	prog  *Progress
}

func (c *countingSink) ConsumeSession(s core.SessionRecord, chunks []core.ChunkRecord) {
	c.inner.ConsumeSession(s, chunks)
	c.prog.Sessions.Add(1)
	c.prog.Chunks.Add(uint64(len(chunks)))
}

func (c *countingSink) ReserveRecords(sessions, chunks int) {
	if r, ok := c.inner.(core.RecordReserver); ok {
		r.ReserveRecords(sessions, chunks)
	}
}

// countingFactory wraps a sink factory so every shard sink it builds
// publishes into prog. A nil prog returns the factory unchanged.
func countingFactory(factory SinkFactory, prog *Progress) SinkFactory {
	if prog == nil {
		return factory
	}
	return func(popID int) core.RecordSink {
		return &countingSink{inner: factory(popID), prog: prog}
	}
}
