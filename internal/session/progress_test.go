package session

import (
	"testing"

	"vidperf/internal/core"
	"vidperf/internal/telemetry"
)

// TestProgressPublishedDuringRun drives a streamed run with a Progress
// attached and checks the counters land on the run's true totals: every
// session and chunk ticked, every planned shard drained.
func TestProgressPublishedDuringRun(t *testing.T) {
	sc := smallScenario(3)
	sc.Parallelism = 2
	var prog Progress
	// Pre-poison the counters: Execute must Reset before
	// publishing, or a reused Progress double-counts across windows.
	prog.Sessions.Store(99)
	prog.ShardsTotal.Store(99)

	res, err := Execute(sc, Options{Telemetry: true, SketchK: 64, Progress: &prog})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sn := res.Snapshot

	if got, want := prog.Sessions.Load(), sn.Counter(telemetry.CounterSessions); got != want {
		t.Fatalf("Progress.Sessions = %d, snapshot says %d", got, want)
	}
	if got, want := prog.Chunks.Load(), sn.Counter(telemetry.CounterChunks); got != want {
		t.Fatalf("Progress.Chunks = %d, snapshot says %d", got, want)
	}
	if prog.ShardsTotal.Load() == 0 {
		t.Fatal("no shards were planned")
	}
	if done, total := prog.ShardsDone.Load(), prog.ShardsTotal.Load(); done != total {
		t.Fatalf("ShardsDone = %d, ShardsTotal = %d after the run", done, total)
	}
	if d := prog.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth = %d after the run", d)
	}
}

func TestProgressResetAndQueueDepth(t *testing.T) {
	var p Progress
	p.Sessions.Store(5)
	p.Chunks.Store(50)
	p.ShardsTotal.Store(8)
	p.ShardsDone.Store(3)
	if d := p.QueueDepth(); d != 5 {
		t.Fatalf("QueueDepth = %d, want 5", d)
	}
	p.Reset()
	if p.Sessions.Load() != 0 || p.Chunks.Load() != 0 ||
		p.ShardsTotal.Load() != 0 || p.ShardsDone.Load() != 0 {
		t.Fatal("Reset left a counter non-zero")
	}
	// A racing reader can observe done > total mid-reset; depth clamps at
	// zero rather than going negative.
	p.ShardsDone.Store(2)
	if d := p.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth = %d with done > total, want 0", d)
	}
}

// reservingSink records ReserveRecords calls so the forwarding in
// countingSink is observable.
type reservingSink struct {
	core.Dataset
	reservedSessions int
	reservedChunks   int
}

func (r *reservingSink) ReserveRecords(sessions, chunks int) {
	r.reservedSessions += sessions
	r.reservedChunks += chunks
}

func TestCountingSinkForwardsReserve(t *testing.T) {
	inner := &reservingSink{}
	var prog Progress
	cs := &countingSink{inner: inner, prog: &prog}
	cs.ReserveRecords(10, 200)
	if inner.reservedSessions != 10 || inner.reservedChunks != 200 {
		t.Fatalf("reserve not forwarded: got (%d, %d)", inner.reservedSessions, inner.reservedChunks)
	}
	cs.ConsumeSession(core.SessionRecord{}, make([]core.ChunkRecord, 3))
	if prog.Sessions.Load() != 1 || prog.Chunks.Load() != 3 {
		t.Fatalf("counters = (%d, %d), want (1, 3)", prog.Sessions.Load(), prog.Chunks.Load())
	}
	if len(inner.Sessions) != 1 || len(inner.Chunks) != 3 {
		t.Fatal("records did not reach the wrapped sink")
	}

	// A sink without the reserve capability is tolerated, not crashed.
	plain := &countingSink{inner: &core.Dataset{}, prog: &prog}
	plain.ReserveRecords(1, 1)
}

func TestCountingFactory(t *testing.T) {
	base := SinkFactory(func(popID int) core.RecordSink { return &core.Dataset{} })
	// nil progress: the factory passes through untouched.
	if sink := countingFactory(base, nil)(0); sink == nil {
		t.Fatal("nil-progress factory built no sink")
	} else if _, wrapped := sink.(*countingSink); wrapped {
		t.Fatal("nil-progress factory still wrapped the sink")
	}
	var prog Progress
	sink := countingFactory(base, &prog)(0)
	cs, ok := sink.(*countingSink)
	if !ok {
		t.Fatalf("factory built %T, want *countingSink", sink)
	}
	cs.ConsumeSession(core.SessionRecord{}, nil)
	if prog.Sessions.Load() != 1 {
		t.Fatal("wrapped sink does not publish into the progress")
	}
}
