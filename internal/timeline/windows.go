package timeline

import "fmt"

// Window is one named segment of the arrival window, derived from the
// timeline's phase boundaries: the stretch before the first phase, each
// phase, the gaps between phases, and the stretch after the last one.
// Sessions are charged to the window containing their arrival time, which
// is what lets reports contrast QoE before/during/after an injected
// event. Names are key-safe (they appear inside telemetry counter keys)
// and carry a zero-padded index so lexicographic order equals time order.
type Window struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	EndMS   float64 `json:"end_ms"`
}

// Contains reports whether t falls inside the window's half-open span.
func (w Window) Contains(t float64) bool { return t >= w.StartMS && t < w.EndMS }

// windowName builds the canonical window name "w<idx>-<label>"; the
// two-digit index keeps sorted telemetry keys in time order (a timeline
// would need >50 phases to exceed 99 windows, far past any sane spec).
func windowName(idx int, label string) string {
	return fmt.Sprintf("w%02d-%s", idx, label)
}

// Windows cuts the arrival window [0, campaignMS) into named segments at
// the timeline's phase boundaries. Phases are clamped to the arrival
// window; phases entirely outside it produce no window (arrivals cannot
// land there). Gap segments are named "pre" before the first phase,
// "gap" between phases, and "post" after the last one. An empty timeline
// yields no windows at all — windowed telemetry stays off.
func (t Timeline) Windows(campaignMS float64) []Window {
	if t.Empty() || campaignMS <= 0 {
		return nil
	}
	var out []Window
	add := func(label string, start, end float64) {
		if end > start {
			out = append(out, Window{Name: windowName(len(out), label), StartMS: start, EndMS: end})
		}
	}
	cursor := 0.0
	first := true
	for _, p := range t.Phases {
		start, end := p.StartMS, p.EndMS
		if start >= campaignMS {
			break
		}
		if end > campaignMS {
			end = campaignMS
		}
		gapLabel := "gap"
		if first {
			gapLabel = "pre"
		}
		add(gapLabel, cursor, start)
		add(p.Name, start, end)
		cursor = end
		first = false
	}
	add("post", cursor, campaignMS)
	return out
}

// WindowAt returns the index in ws of the window containing t, or -1.
// ws must be the contiguous ascending output of Windows. The final
// window is treated as closed on the right so a float-rounding landing
// exactly on the campaign end still gets assigned (the coverage
// invariant — every session in exactly one window — must not hinge on
// ulp-level arithmetic).
func WindowAt(ws []Window, t float64) int {
	for i := range ws {
		if ws[i].Contains(t) {
			return i
		}
	}
	if n := len(ws); n > 0 && t >= ws[n-1].StartMS && t <= ws[n-1].EndMS {
		return n - 1
	}
	return -1
}

// WarpArrival maps a session's nominal uniform arrival draw u in
// [0, campaignMS) to its actual arrival time under the timeline's
// piecewise-constant arrival-rate function (ArrivalRateFactor inside
// phases, 1 outside): the inverse cumulative-rate transform, so a phase
// with factor m receives m× the arrival density while the total session
// count is unchanged. It is a pure, strictly monotonic function — no RNG
// draws — so warped campaigns stay byte-identical at any parallelism and
// an all-factor-1 timeline is the identity. Hot paths that warp once per
// session should build the segments once with NewArrivalWarp instead.
func (t Timeline) WarpArrival(u, campaignMS float64) float64 {
	return t.NewArrivalWarp(campaignMS).At(u)
}

// ArrivalWarp is the precomputed arrival-rate transform of one timeline
// over one campaign window: the constant-rate segments and their total
// mass, built once and shared by every per-session warp (the planner
// warps twice per session — scheduling and arrival — so this sits on
// the hot path of million-session campaigns). A nil ArrivalWarp is the
// identity.
type ArrivalWarp struct {
	campaignMS float64
	segs       []rateSegment
	total      float64
}

// NewArrivalWarp precomputes the warp. It returns nil — the identity —
// for an empty timeline, a degenerate window, or a timeline with no
// rate mass, so callers can cheaply skip the transform.
func (t Timeline) NewArrivalWarp(campaignMS float64) *ArrivalWarp {
	if t.Empty() || campaignMS <= 0 {
		return nil
	}
	w := &ArrivalWarp{campaignMS: campaignMS, segs: t.rateSegments(campaignMS)}
	for _, s := range w.segs {
		w.total += s.rate * (s.end - s.start)
	}
	if w.total <= 0 {
		return nil
	}
	return w
}

// At maps one nominal uniform draw through the precomputed warp.
func (w *ArrivalWarp) At(u float64) float64 {
	if w == nil {
		return u
	}
	// Target cumulative mass, proportional to the nominal position.
	target := u / w.campaignMS * w.total
	var acc float64
	for _, s := range w.segs {
		m := s.rate * (s.end - s.start)
		if acc+m >= target && s.rate > 0 {
			at := s.start + (target-acc)/s.rate
			if at >= s.end { // guard float round-up at segment edges
				at = s.end
			}
			return at
		}
		acc += m
	}
	return w.campaignMS
}

// rateSegment is one constant-rate stretch of the arrival window.
type rateSegment struct {
	start, end, rate float64
}

// rateSegments builds the piecewise-constant rate function over
// [0, campaignMS): factor-1 gaps interleaved with the phases' arrival
// factors, phases clamped to the window.
func (t Timeline) rateSegments(campaignMS float64) []rateSegment {
	var segs []rateSegment
	add := func(start, end, rate float64) {
		if end > start {
			segs = append(segs, rateSegment{start: start, end: end, rate: rate})
		}
	}
	cursor := 0.0
	for _, p := range t.Phases {
		start, end := p.StartMS, p.EndMS
		if start >= campaignMS {
			break
		}
		if end > campaignMS {
			end = campaignMS
		}
		add(cursor, start, 1)
		add(start, end, p.Effects.ArrivalRate())
		cursor = end
	}
	add(cursor, campaignMS, 1)
	return segs
}
